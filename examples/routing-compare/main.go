// Routing comparison: NHop vs Nbc vs Enhanced-Nbc on the same
// network at an equal total virtual-channel budget, reproducing the
// qualitative result of the paper's reference [13] that motivates
// its focus on Enhanced-Nbc. For each algorithm the example reports
// simulated latency at rising load plus the per-class virtual-channel
// usage that explains the differences.
package main

import (
	"fmt"
	"log"

	"starperf/internal/desim"
	"starperf/internal/routing"
	"starperf/internal/stargraph"
)

func main() {
	const (
		n, v, m = 5, 6, 32
	)
	star := stargraph.MustNew(n)
	rates := []float64{0.004, 0.008, 0.012, 0.016}

	for _, kind := range []routing.Kind{routing.NHop, routing.Nbc, routing.EnhancedNbc} {
		spec, err := routing.New(kind, star, v)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s (V1=%d adaptive, V2=%d escape)\n", kind, spec.V1, spec.V2)
		for _, rate := range rates {
			res, err := desim.Run(desim.Config{
				Top: star, Spec: spec, Rate: rate, MsgLen: m, Seed: 99,
				WarmupCycles: 8000, MeasureCycles: 30000, DrainCycles: 90000,
			})
			if err != nil {
				log.Fatal(err)
			}
			notes := ""
			if res.Saturated() {
				notes = "  ** saturated **"
			}
			fmt.Printf("  rate %.4f: latency %8.2f  blocked %.3f  levels %v%s\n",
				rate, res.Latency.Mean(),
				float64(res.BlockedAttempts)/float64(res.Attempts),
				res.ClassBLevelUse, notes)
		}
		fmt.Println()
	}
	fmt.Println("Enhanced-Nbc sustains the highest load: its class-a channels absorb")
	fmt.Println("contention while NHop funnels every message through one exact level.")
}
