// Saturation study: how the model's saturation rate scales with the
// virtual-channel count and the message length — the capacity summary
// behind the three panels of Figure 1 (V = 6, 9, 12 saturate at
// successively higher rates; M = 64 saturates at roughly half the
// rate of M = 32).
package main

import (
	"fmt"
	"log"

	"starperf/internal/model"
	"starperf/internal/routing"
	"starperf/internal/stargraph"
)

func main() {
	const n = 5
	star := stargraph.MustNew(n)
	paths, err := model.NewStarPaths(n)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("model saturation rate (messages/node/cycle), S%d Enhanced-Nbc\n\n", n)
	fmt.Printf("%-6s", "V\\M")
	msgs := []int{16, 32, 64, 128}
	for _, m := range msgs {
		fmt.Printf("%-10d", m)
	}
	fmt.Println()
	for _, v := range []int{5, 6, 9, 12, 16} {
		fmt.Printf("%-6d", v)
		for _, m := range msgs {
			s, err := model.SaturationRate(model.Config{
				Paths: paths, Top: star, Kind: routing.EnhancedNbc, V: v, MsgLen: m,
			}, 1e-5, 0.5)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-10.5f", s)
		}
		fmt.Println()
	}

	// The physical ceiling for comparison: each channel moves one
	// flit per cycle, so λg cannot exceed (n−1)/(d̄·M).
	fmt.Printf("\nphysical channel-capacity ceiling (n−1)/(d̄·M):\n%-6s", "")
	for _, m := range msgs {
		fmt.Printf("%-10.5f", float64(star.Degree())/(star.AvgDistance()*float64(m)))
	}
	fmt.Println()
	fmt.Println("\nThe model saturates well below the physical ceiling because it")
	fmt.Println("treats a channel as an M/G/1 server whose service time is the whole")
	fmt.Println("network latency (the paper's eq. 13 approximation).")
}
