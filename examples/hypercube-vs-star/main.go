// Hypercube-vs-star: the comparison the paper names as its next
// objective — the 5-star (120 nodes, degree 4, diameter 6) against
// the nearest hypercube Q7 (128 nodes, degree 7, diameter 7) under
// the same routing scheme, message length and virtual-channel count,
// evaluated by both the analytical model and the simulator.
package main

import (
	"fmt"
	"log"
	"os"

	"starperf/internal/experiments"
)

func main() {
	panel, err := experiments.StarVsHypercube(32, 6, 8, experiments.SimOptions{
		Warmup:  6000,
		Measure: 20000,
		Drain:   80000,
		Seeds:   []uint64{1, 2},
	})
	if err != nil {
		log.Fatal(err)
	}
	experiments.RenderPanel(os.Stdout, panel)
	fmt.Println()
	fmt.Println("Q7's lower diameter and higher degree give it lower latency and a")
	fmt.Println("higher saturation rate at equal V and M; the star's advantage in the")
	fmt.Println("paper's framing is sub-logarithmic degree/diameter *scaling*, i.e.")
	fmt.Println("hardware cost, not raw per-node performance at this size.")
}
