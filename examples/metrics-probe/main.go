// Metrics probe: attach the observability layer to one simulation and
// read the simulator's empirical counterparts of the model's terms —
// per-hop blocking probability (P_block, eq. 6), mean block wait
// (w̄, eq. 15), channel utilization and VC occupancy — then dump the
// last few lifecycle events of the bounded trace ring.
//
// The observer is passive: the printed latency statistics are
// byte-identical to an unobserved run of the same config.
package main

import (
	"fmt"
	"log"
	"os"

	"starperf/internal/desim"
	"starperf/internal/obs"
	"starperf/internal/routing"
	"starperf/internal/stargraph"
)

func main() {
	const (
		n    = 4    // S4: 24 nodes — small enough to saturate quickly
		v    = 4    // virtual channels per physical channel
		m    = 16   // message length in flits
		rate = 0.05 // messages per node per cycle: heavy load, so
		// blocking episodes are plentiful in every counter
	)

	star := stargraph.MustNew(n)
	col := obs.New(obs.Options{SampleEvery: 128, TraceCap: 2048})
	res, err := desim.Run(desim.Config{
		Top:           star,
		Spec:          routing.MustNew(routing.EnhancedNbc, star, v),
		Policy:        routing.PreferClassA,
		Rate:          rate,
		MsgLen:        m,
		Seed:          7,
		WarmupCycles:  2000,
		MeasureCycles: 10000,
		Observer:      col,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s V=%d M=%d rate=%.3f: latency %.1f over %d delivered\n\n",
		star.Name(), v, m, rate, res.Latency.Mean(), res.Delivered)

	// The per-hop counters mirror the model's per-hop service chain:
	// hop 0 is the first network channel after injection.
	fmt.Println("per-hop blocking (simulator counterparts of eqs. 6/15):")
	fmt.Println("  hop   grants  P_block     w̄   P_block·w̄")
	ct := col.Counters()
	for h, st := range ct.PerHop {
		fmt.Printf("  %3d %8d   %.4f  %5.2f      %.4f\n",
			h, st.Grants, st.BlockProb(), st.MeanWait(), st.WaitPerGrant())
	}
	fmt.Printf("  ejection: %d grants, %d blocked episodes\n\n",
		ct.Ejection.Grants, ct.Ejection.Blocked)

	sum := col.Summary()
	fmt.Printf("gauges over %d samples: channel util %.3f (peak %.3f), "+
		"VC occupancy %.3f, peak queue %d\n\n",
		sum.Samples, sum.MeanChanUtil, sum.PeakChanUtil,
		sum.MeanVCOccupancy, sum.PeakQueue)

	trace := col.Trace()
	tail := trace
	if len(tail) > 5 {
		tail = tail[len(tail)-5:]
	}
	fmt.Printf("last %d of %d ring-buffered events (%d evicted):\n",
		len(tail), len(trace), col.TraceDropped())
	for _, ev := range tail {
		fmt.Println("  " + ev.String())
	}

	// The same stream exports as deterministic JSONL / CSV — here the
	// gauge series header plus the first two rows, to keep the demo
	// short.
	mtr := col.Metrics()
	if len(mtr.Samples) > 2 {
		mtr.Samples = mtr.Samples[:2]
	}
	fmt.Println("\ngauge series CSV (first rows):")
	if err := mtr.WriteSeriesCSV(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
