// Latency sweep: trace a full latency-versus-load curve for one
// configuration — the textual equivalent of one curve of the paper's
// Figure 1 — with the model's saturation point located by bisection
// and the simulator run either side of it.
package main

import (
	"errors"
	"fmt"
	"log"

	"starperf/internal/desim"
	"starperf/internal/model"
	"starperf/internal/routing"
	"starperf/internal/stargraph"
)

func main() {
	const (
		n, v, m = 5, 9, 32
		points  = 12
	)
	star := stargraph.MustNew(n)
	paths, err := model.NewStarPaths(n)
	if err != nil {
		log.Fatal(err)
	}
	base := model.Config{Paths: paths, Top: star, Kind: routing.EnhancedNbc, V: v, MsgLen: m}

	sat, err := model.SaturationRate(base, 1e-5, 0.2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("S%d V=%d M=%d: model saturation rate ≈ %.5f msg/node/cycle\n\n", n, v, m, sat)
	fmt.Printf("%-10s %-12s %-12s %s\n", "rate", "model", "sim", "notes")

	spec := routing.MustNew(routing.EnhancedNbc, star, v)
	for i := 1; i <= points; i++ {
		rate := sat * 1.25 * float64(i) / float64(points)
		cfg := base
		cfg.Rate = rate
		ms := "saturated"
		if r, err := model.Evaluate(cfg); err == nil {
			ms = fmt.Sprintf("%.2f", r.Latency)
		} else if !errors.Is(err, model.ErrSaturated) {
			log.Fatal(err)
		}
		res, err := desim.Run(desim.Config{
			Top: star, Spec: spec, Rate: rate, MsgLen: m, Seed: 7,
			WarmupCycles: 8000, MeasureCycles: 30000, DrainCycles: 90000,
		})
		if err != nil {
			log.Fatal(err)
		}
		notes := ""
		if res.Saturated() {
			notes = "sim saturated"
		}
		fmt.Printf("%-10.5f %-12s %-12.2f %s\n", rate, ms, res.Latency.Mean(), notes)
	}
}
