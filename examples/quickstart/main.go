// Quickstart: evaluate the analytical model and the flit-level
// simulator at one operating point of the paper's setting — the
// 5-star (120 nodes) with V = 6 virtual channels, Enhanced-Nbc
// routing and 32-flit messages — and compare the two latency
// predictions.
package main

import (
	"fmt"
	"log"

	"starperf/internal/desim"
	"starperf/internal/model"
	"starperf/internal/routing"
	"starperf/internal/stargraph"
)

func main() {
	const (
		n    = 5     // S5: 120 nodes, degree 4, diameter 6
		v    = 6     // virtual channels per physical channel
		m    = 32    // message length in flits
		rate = 0.008 // messages per node per cycle
	)

	star := stargraph.MustNew(n)
	fmt.Printf("network %s: %d nodes, degree %d, diameter %d, d̄ = %.4f\n",
		star.Name(), star.N(), star.Degree(), star.Diameter(), star.AvgDistance())

	// Analytical model (the paper's contribution).
	paths, err := model.NewStarPaths(n)
	if err != nil {
		log.Fatal(err)
	}
	pred, err := model.Evaluate(model.Config{
		Paths: paths, Top: star, Kind: routing.EnhancedNbc,
		V: v, MsgLen: m, Rate: rate,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model:      latency %.2f cycles (network %.2f, source wait %.2f, V̄ %.3f)\n",
		pred.Latency, pred.NetLatency, pred.SourceWait, pred.Multiplexing)

	// Flit-level simulation (the paper's validation vehicle).
	res, err := desim.Run(desim.Config{
		Top:           star,
		Spec:          routing.MustNew(routing.EnhancedNbc, star, v),
		Rate:          rate,
		MsgLen:        m,
		Seed:          1,
		WarmupCycles:  10000,
		MeasureCycles: 50000,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulation: latency %.2f cycles over %d messages (V̄ %.3f)\n",
		res.Latency.Mean(), res.MeasuredDelivered, res.Multiplexing)
	fmt.Printf("model error: %+.1f%%\n",
		100*(pred.Latency-res.Latency.Mean())/res.Latency.Mean())
}
