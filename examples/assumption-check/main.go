// Assumption check: the model rests on a handful of assumptions
// (§4 of the paper). This example measures each of them in the
// simulator instead of taking them on faith:
//
//  1. uniform destinations + symmetry ⇒ all channels carry the same
//     rate λc = λg·d̄/(n−1)    (eq. 3)
//  2. minimal routing ⇒ mean hops = d̄                    (eq. 2)
//  3. virtual-channel occupancy follows the truncated geometric
//     distribution                                         (eq. 18)
//  4. multiplexing degree follows Dally's formula           (eq. 19)
//
// and shows assumption 1 breaking on a mesh, which is why the model
// has no mesh variant.
package main

import (
	"fmt"
	"log"

	"starperf/internal/desim"
	"starperf/internal/mesh"
	"starperf/internal/model"
	"starperf/internal/queueing"
	"starperf/internal/routing"
	"starperf/internal/stargraph"
)

func main() {
	const (
		v    = 6
		m    = 32
		rate = 0.01
	)
	star := stargraph.MustNew(5)
	res, err := desim.Run(desim.Config{
		Top: star, Spec: routing.MustNew(routing.EnhancedNbc, star, v),
		Rate: rate, MsgLen: m, Seed: 2,
		WarmupCycles: 10000, MeasureCycles: 60000,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("assumption 1 — even channel rates (eq. 3)")
	lambdaC := rate * star.AvgDistance() / float64(star.Degree())
	fmt.Printf("  predicted λc  %.6f msg/channel/cycle\n", lambdaC)
	fmt.Printf("  measured  λc  %.6f (CV across channels %.4f)\n\n",
		res.ChannelRate, res.ChannelGrantCV)

	fmt.Println("assumption 2 — minimal paths (eq. 2)")
	fmt.Printf("  d̄ exact      %.4f\n", star.AvgDistance())
	fmt.Printf("  mean hops     %.4f\n\n", res.HopCount.Mean())

	fmt.Println("assumption 3 — VC occupancy (eq. 18, at the model's converged S̄)")
	paths, err := model.NewStarPaths(5)
	if err != nil {
		log.Fatal(err)
	}
	pred, err := model.Evaluate(model.Config{
		Paths: paths, Top: star, Kind: routing.EnhancedNbc,
		V: v, MsgLen: m, Rate: rate,
	})
	if err != nil {
		log.Fatal(err)
	}
	var total float64
	for _, c := range res.VCBusyHist {
		total += float64(c)
	}
	fmt.Printf("  v     measured   eq.18\n")
	for i, c := range res.VCBusyHist {
		fmt.Printf("  %-5d %-10.4f %-10.4f\n", i, float64(c)/total, pred.VCOccupancy[i])
	}
	fmt.Println("  (the geometric tail is close, but the measured distribution is")
	fmt.Println("   less dispersed than a birth–death chain with service time S̄ —")
	fmt.Println("   one term of the model's error budget; see the hybrid mode)")

	fmt.Println("\nassumption 3b — channel holding time (eq. 13 approximates it by S̄)")
	fmt.Printf("  measured hold  %.2f cycles (min %.0f)\n", res.VCHolding.Mean(), res.VCHolding.Min())
	fmt.Printf("  eq. 13 uses    %.2f (model S̄);  cut-through model uses %d (M)\n",
		pred.NetLatency, m)

	fmt.Println("\nassumption 4 — multiplexing degree (eq. 19)")
	fmt.Printf("  measured V̄   %.4f\n", res.Multiplexing)
	fmt.Printf("  eq. 19 V̄     %.4f\n\n", queueing.Multiplexing(pred.VCOccupancy))

	fmt.Println("counter-example — a 5x2 mesh breaks assumption 1:")
	mg := mesh.MustNew(5, 2)
	mres, err := desim.Run(desim.Config{
		Top: mg, Spec: routing.MustNew(routing.EnhancedNbc, mg, v),
		Rate: rate, MsgLen: m, Seed: 2,
		WarmupCycles: 10000, MeasureCycles: 60000,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  star  channel CV %.4f   (symmetric: model applies)\n", res.ChannelGrantCV)
	fmt.Printf("  mesh  channel CV %.4f   (centre ≫ border: eq. 3 invalid)\n", mres.ChannelGrantCV)
}
