// Torus study: the analytical model generalised to the k-ary n-cube
// — the reference topology of the wormhole-modelling literature the
// paper builds on (Agarwal 91; Sarbazi-Azad et al. 01). The example
// sweeps an 8-ary 2-cube (64 nodes) by model and simulation, then
// measures its accepted-throughput curve past saturation.
package main

import (
	"errors"
	"fmt"
	"log"
	"os"

	"starperf/internal/desim"
	"starperf/internal/experiments"
	"starperf/internal/model"
	"starperf/internal/routing"
	"starperf/internal/torus"
)

func main() {
	const (
		k, n = 8, 2
		v    = 8 // ⌈H/2⌉+1 = 5 escape levels + 3 adaptive
		m    = 32
	)
	g := torus.MustNew(k, n)
	paths, err := model.NewTorusPaths(k, n)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d nodes, degree %d, diameter %d, d̄ = %.3f\n\n",
		g.Name(), g.N(), g.Degree(), g.Diameter(), g.AvgDistance())

	spec := routing.MustNew(routing.EnhancedNbc, g, v)
	fmt.Printf("latency vs load (Enhanced-Nbc, V=%d, M=%d):\n", v, m)
	fmt.Printf("%-10s %-12s %s\n", "rate", "model", "sim")
	for _, rate := range []float64{0.002, 0.004, 0.006, 0.008, 0.010, 0.012} {
		ms := "saturated"
		r, err := model.Evaluate(model.Config{
			Paths: paths, Top: g, Kind: routing.EnhancedNbc, V: v, MsgLen: m, Rate: rate,
		})
		if err == nil {
			ms = fmt.Sprintf("%.2f", r.Latency)
		} else if !errors.Is(err, model.ErrSaturated) {
			log.Fatal(err)
		}
		res, err := desim.Run(desim.Config{
			Top: g, Spec: spec, Rate: rate, MsgLen: m, Seed: 4,
			WarmupCycles: 6000, MeasureCycles: 20000, DrainCycles: 60000,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10.4f %-12s %.2f\n", rate, ms, res.Latency.Mean())
	}

	fmt.Printf("\naccepted throughput past saturation:\n")
	rows, err := experiments.ThroughputSweep(experiments.ThroughputConfig{
		Top: g, Kind: routing.EnhancedNbc, V: v, MsgLen: m, Points: 8, MaxRate: 0.03,
		Sim: experiments.SimOptions{Warmup: 4000, Measure: 12000, Drain: 30000, Seeds: []uint64{9}},
	})
	if err != nil {
		log.Fatal(err)
	}
	experiments.RenderThroughput(os.Stdout, rows)
}
