package starperf

// Facade error-contract tests: every validation failure across the
// facade must match ErrInvalidConfig via errors.Is, saturation must
// match ErrSaturated (and nothing else), and stranded destinations
// must surface as *UnreachableError via errors.As — see the contract
// in api.go.

import (
	"errors"
	"testing"

	"starperf/internal/hypercube"
	"starperf/internal/routing"
	"starperf/internal/stargraph"
)

// TestInvalidConfigSentinel sweeps one rejected input per subsystem
// and requires the shared sentinel.
func TestInvalidConfigSentinel(t *testing.T) {
	s4 := stargraph.MustNew(4)
	paths, err := NewStarPaths(4)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		err  func() error
	}{
		{"stargraph", func() error { _, err := NewStarGraph(1); return err }},
		{"hypercube", func() error { _, err := NewHypercube(0); return err }},
		{"torus", func() error { _, err := NewTorus(3, 2); return err }},
		{"mesh", func() error { _, err := NewMesh(1, 2); return err }},
		{"routing-few-vcs", func() error { _, err := NewRouting(EnhancedNbc, s4, 1); return err }},
		{"routing-unknown-kind", func() error { _, err := NewRouting(RoutingKind(99), s4, 6); return err }},
		{"simulate-rate", func() error {
			_, err := Simulate(SimConfig{Top: s4, Spec: routing.MustNew(EnhancedNbc, s4, 4),
				Rate: -1, MsgLen: 8, MeasureCycles: 100})
			return err
		}},
		{"simulate-bufcap", func() error {
			_, err := Simulate(SimConfig{Top: s4, Spec: routing.MustNew(EnhancedNbc, s4, 4),
				Rate: 0.01, MsgLen: 8, MeasureCycles: 100, BufCap: -1})
			return err
		}},
		{"predict-msglen", func() error {
			_, err := Predict(ModelConfig{Paths: paths, Top: s4, Kind: EnhancedNbc, V: 6,
				MsgLen: 0, Rate: 0.001})
			return err
		}},
		{"faults-negative", func() error {
			_, err := NewFaultPlan(s4, 1, FaultOptions{FailLinks: -1})
			return err
		}},
		{"figure1-panel", func() error { _, err := Figure1Panel(Figure1Config{Panel: 'z'}); return err }},
		{"saturation-rate", func() error {
			// MsgLen 0 is invalid at every probe: the old float-only
			// signature reported "saturates at lo" for this.
			_, err := SaturationRate(ModelConfig{Paths: paths, Top: s4, Kind: EnhancedNbc,
				V: 6, MsgLen: 0}, 1e-4, 0.1)
			return err
		}},
		{"throughput-top", func() error {
			_, err := ThroughputSweep(ThroughputConfig{Kind: EnhancedNbc, V: 4, MsgLen: 8, MaxRate: 0.01})
			return err
		}},
		{"bounds-msglen", func() error {
			_, err := PredictBounds(BoundsConfig{Top: s4, Kind: EnhancedNbc, V: 6,
				MsgLen: 0, Rate: 0.001})
			return err
		}},
		{"bounds-capacity-bracket", func() error {
			_, err := BoundsCapacity(BoundsConfig{Top: s4, Kind: EnhancedNbc, V: 6,
				MsgLen: 32}, -1, 1)
			return err
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.err()
			if err == nil {
				t.Fatal("invalid input accepted")
			}
			if !errors.Is(err, ErrInvalidConfig) {
				t.Fatalf("error %q does not match ErrInvalidConfig", err)
			}
			if errors.Is(err, ErrSaturated) {
				t.Fatalf("validation error %q also matches ErrSaturated", err)
			}
		})
	}
}

// TestSaturatedSentinel drives the model past saturation and checks
// the class separation.
func TestSaturatedSentinel(t *testing.T) {
	paths, err := NewStarPaths(4)
	if err != nil {
		t.Fatal(err)
	}
	s4 := stargraph.MustNew(4)
	_, err = Predict(ModelConfig{Paths: paths, Top: s4, Kind: EnhancedNbc, V: 6,
		MsgLen: 32, Rate: 10})
	if err == nil {
		t.Fatal("rate 10 msgs/node/cycle converged")
	}
	if !errors.Is(err, ErrSaturated) {
		t.Fatalf("error %q does not match ErrSaturated", err)
	}
	if errors.Is(err, ErrInvalidConfig) {
		t.Fatalf("saturation error %q also matches ErrInvalidConfig", err)
	}
}

// TestUnboundableSentinel drives the bound engine past its capacity
// and checks the class separation: unboundable is neither a
// validation failure nor model saturation.
func TestUnboundableSentinel(t *testing.T) {
	s4 := stargraph.MustNew(4)
	_, err := PredictBounds(BoundsConfig{Top: s4, Kind: EnhancedNbc, V: 6,
		MsgLen: 32, Rate: 0.03})
	if err == nil {
		t.Fatal("rate 0.03 msgs/node/cycle with 32-flit messages produced a finite bound")
	}
	if !errors.Is(err, ErrUnboundable) {
		t.Fatalf("error %q does not match ErrUnboundable", err)
	}
	if errors.Is(err, ErrInvalidConfig) || errors.Is(err, ErrSaturated) {
		t.Fatalf("unboundable error %q also matches a validation/saturation sentinel", err)
	}
}

// TestUnreachableTyped checks the errors.As leg of the contract via a
// disconnecting fault plan.
func TestUnreachableTyped(t *testing.T) {
	g := hypercube.MustNew(2)
	plan := &FaultPlan{
		Links:             []FaultLink{{Node: 0, Dim: 0}, {Node: 0, Dim: 1}},
		AllowDisconnected: true,
	}
	ft, err := ApplyFaults(g, plan)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Simulate(SimConfig{
		Top: ft, Spec: routing.Spec{Kind: NHop, V2: 2, MaxNeg: 1},
		Rate: 0.05, MsgLen: 4, Seed: 1,
		WarmupCycles: 100, MeasureCycles: 2000,
	})
	var ue *UnreachableError
	if !errors.As(err, &ue) {
		t.Fatalf("want *UnreachableError, got %v", err)
	}
	if errors.Is(err, ErrInvalidConfig) || errors.Is(err, ErrSaturated) {
		t.Fatalf("unreachable error %q matches a validation/saturation sentinel", err)
	}
}
