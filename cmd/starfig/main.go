// Command starfig regenerates the paper's evaluation artefacts and
// this repository's extension panels as text tables (or CSV):
//
//	-panel a|b|c   Figure 1(a,b,c): S5 latency vs rate, V=6/9/12
//	-panel grid    §5 validation grid (several n, M, V)
//	-panel compare star-vs-hypercube future-work panel
//	-panel a1      ablation: blocking-mixture placement (model)
//	-panel a2      ablation: VC selection policies (simulation)
//	-panel a3      ablation: NHop vs Nbc vs Enhanced-Nbc
//	-panel tput    accepted-vs-offered throughput curve
//	-panel x7      wormhole vs virtual cut-through switching
//	-panel a4      ablation: service-time variance approximation (model)
//	-panel star    generalised Figure 1 for any -n (S4..S7)
//	-panel tails   latency percentiles (p50/p95/p99) vs load
//	-panel levels  class-b level usage: NHop vs Nbc vs Enhanced-Nbc
//	-panel bounds  worst-case bound vs model mean vs simulated p99.9
//
// Usage:
//
//	starfig -panel a [-points 15] [-seeds 3] [-measure 50000] [-workers 8] [-csv] [-plot]
//	        [-metrics sidecar.csv] [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//
// -metrics attaches a passive observer to the first replication of
// every sweep point and writes a per-point metrics sidecar next to the
// panel (CSV, or JSON when the path ends in .json) — channel
// utilization, VC occupancy, queue depths and the per-hop blocking
// counters that mirror the model's P_block/w̄ terms. It applies to the
// curve panels rendered through the shared emitter (a|b|c, compare,
// a2, a3, x7, star).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"starperf/internal/experiments"
	"starperf/internal/obs"
	"starperf/internal/routing"
	"starperf/internal/stargraph"
)

func main() {
	panel := flag.String("panel", "a", "a|b|c|grid|compare|a1|a2|a3|a4|tput|x7|star|tails|levels|bounds")
	points := flag.Int("points", 15, "points per curve")
	seeds := flag.Int("seeds", 3, "simulation replications")
	workers := flag.Int("workers", runtime.NumCPU(), "parallel simulation workers (output is identical for any value)")
	warmup := flag.Int64("warmup", 8000, "warm-up cycles")
	measure := flag.Int64("measure", 30000, "measurement cycles")
	csv := flag.Bool("csv", false, "emit CSV instead of a table")
	plot := flag.Bool("plot", false, "append an ASCII plot of the panel")
	v := flag.Int("v", 6, "virtual channels (compare/a1/a2/a3/tput panels)")
	m := flag.Int("m", 32, "message length (compare/a1/a2/a3/tput panels)")
	maxRate := flag.Float64("maxrate", 0.03, "sweep ceiling (tput panel)")
	starN := flag.Int("n", 6, "star size (star panel)")
	metricsPath := flag.String("metrics", "", "write a per-point metrics sidecar (CSV, or JSON for .json paths)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fail(err)
		}
		defer pprof.StopCPUProfile()
	}
	defer func() {
		if *memprofile == "" {
			return
		}
		f, err := os.Create(*memprofile)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fail(err)
		}
	}()

	opts := experiments.SimOptions{Warmup: *warmup, Measure: *measure, Workers: *workers}
	for s := 1; s <= *seeds; s++ {
		opts.Seeds = append(opts.Seeds, uint64(s))
	}
	if *metricsPath != "" {
		opts.Observe = &obs.Options{TraceCap: -1}
	}

	emit := func(p *experiments.Panel, err error) {
		if err != nil {
			fail(err)
		}
		if *metricsPath != "" {
			write := experiments.WriteMetricsSidecarCSV
			if strings.HasSuffix(*metricsPath, ".json") {
				write = experiments.WriteMetricsSidecarJSON
			}
			writeSidecar(*metricsPath, p, write)
		}
		if *csv {
			experiments.RenderPanelCSV(os.Stdout, p)
		} else {
			experiments.RenderPanel(os.Stdout, p)
			if *plot {
				fmt.Println()
				experiments.RenderASCIIPlot(os.Stdout, p, 72, 22)
			}
			if bad := experiments.ShapeChecks(p, 0.40); len(bad) > 0 {
				fmt.Println("\nshape-check warnings:")
				for _, b := range bad {
					fmt.Println("  -", b)
				}
			} else {
				fmt.Println("\nshape checks: all qualitative properties hold")
			}
		}
	}

	switch *panel {
	case "a", "b", "c":
		emit(experiments.Figure1Panel(experiments.Figure1Config{
			Panel: (*panel)[0], Points: *points, Sim: opts,
		}))
	case "grid":
		rows, err := experiments.ValidationGrid(opts)
		if err != nil {
			fail(err)
		}
		experiments.RenderGrid(os.Stdout, rows)
	case "compare":
		emit(experiments.StarVsHypercube(*m, *v, *points, opts))
	case "a1":
		rows, err := experiments.AblationMixture(*v, *m, *points)
		if err != nil {
			fail(err)
		}
		experiments.RenderMixture(os.Stdout, rows)
	case "a2":
		emit(experiments.AblationSelection(*v, *m, *points, opts))
	case "a3":
		emit(experiments.AblationAlgorithms(*v, *m, *points, opts))
	case "levels":
		rows, err := experiments.LevelUsage(*v, *m, 0.008, opts)
		if err != nil {
			fail(err)
		}
		experiments.RenderLevels(os.Stdout, rows)
	case "tails":
		g, err := stargraph.New(5)
		if err != nil {
			fail(err)
		}
		rows, err := experiments.TailLatency(g, routing.EnhancedNbc, *v, *m,
			*points, *maxRate, opts)
		if err != nil {
			fail(err)
		}
		experiments.RenderTails(os.Stdout, rows)
	case "bounds":
		rows, err := experiments.BoundsFigure(experiments.BoundsFigureConfig{
			V: *v, MsgLen: *m, Points: *points, Sim: opts,
		})
		if err != nil {
			fail(err)
		}
		if *csv {
			experiments.RenderBoundsCSV(os.Stdout, rows)
		} else {
			experiments.RenderBounds(os.Stdout, rows)
		}
	case "star":
		emit(experiments.StarPanel(*starN, *v, []int{*m}, 0, *points, opts))
	case "a4":
		rows, err := experiments.AblationVariance(*v, *m, *points)
		if err != nil {
			fail(err)
		}
		experiments.RenderVariance(os.Stdout, rows)
	case "x7":
		emit(experiments.SwitchingComparison(*v, *m, *points, opts))
	case "tput":
		g, err := stargraph.New(5)
		if err != nil {
			fail(err)
		}
		rows, err := experiments.ThroughputSweep(experiments.ThroughputConfig{
			Top: g, Kind: routing.EnhancedNbc, V: *v, MsgLen: *m,
			Points: *points, MaxRate: *maxRate, Sim: opts,
		})
		if err != nil {
			fail(err)
		}
		experiments.RenderThroughput(os.Stdout, rows)
	default:
		fail(fmt.Errorf("unknown panel %q", *panel))
	}
}

// writeSidecar writes the panel's per-point metrics sidecar to path.
func writeSidecar(path string, p *experiments.Panel, write func(w io.Writer, p *experiments.Panel) error) {
	f, err := os.Create(path)
	if err != nil {
		fail(err)
	}
	if err := write(f, p); err != nil {
		f.Close()
		fail(err)
	}
	if err := f.Close(); err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "starfig: %v\n", err)
	os.Exit(1)
}
