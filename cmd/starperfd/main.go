// Command starperfd serves the starperf model, simulator and sweep
// harness over HTTP (see internal/server for the API):
//
//	POST /v1/predict      analytical model, synchronous
//	POST /v1/simulate     flit-level simulation, async job
//	POST /v1/sweep        Figure 1 panel, async job
//	GET  /v1/jobs/{id}    poll an async job
//	GET  /healthz         liveness
//	GET  /metricsz        pool, cache and per-route latency stats
//
// Results are content-addressed: the job id is a hash of the
// canonicalised request, identical requests hit the cache with
// byte-identical bodies, and concurrent duplicates share one
// computation. -cachedir enables the on-disk tier so results survive
// restarts.
//
// -journal makes the daemon crash-safe: every job lifecycle
// transition is fsynced into an append-only journal under the given
// directory, and on boot the daemon replays whatever a crash
// interrupted — every accepted job still reaches done/failed exactly
// once, with the same content-addressed result bytes.
//
// -self and -peers make the daemon one member of a sharded cluster
// (see internal/cluster): jobs hash onto a consistent-hash ring over
// the member addresses, non-owners forward to the owner (failing over
// down the ring when it is unreachable, computing locally as the last
// resort), and finished results are filled from peer caches after
// verification. Every member must be started with the same member
// set — -self plus -peers must spell the same cluster on every node.
//
// Usage:
//
//	starperfd [-addr :8080] [-workers N] [-queue 256] [-cachedir DIR]
//	          [-cachebytes 67108864] [-jobtimeout 0] [-maxbody 1048576]
//	          [-journal DIR] [-self host:port -peers host:port,...]
//	          [-chaosnet plan.json]
//
// -chaosnet (drills only) loads a netx fault plan and routes this
// node's peer traffic through it — scripts/cluster_partition.sh uses
// it to sever and corrupt a real multi-process ring.
//
// The server drains in-flight jobs on SIGINT/SIGTERM before exiting.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"starperf/internal/cache"
	"starperf/internal/cluster"
	"starperf/internal/journal"
	"starperf/internal/netx"
	"starperf/internal/server"
)

// splitPeers parses the -peers flag: a comma-separated address list,
// blank entries dropped so a trailing comma is harmless.
func splitPeers(list string) []string {
	var peers []string
	for _, p := range strings.Split(list, ",") {
		if p = strings.TrimSpace(p); p != "" {
			peers = append(peers, p)
		}
	}
	return peers
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", runtime.NumCPU(), "job pool workers")
	queue := flag.Int("queue", 256, "job queue depth (excess submissions get 429)")
	cachedir := flag.String("cachedir", "", "on-disk result cache directory (empty: memory only)")
	cachebytes := flag.Int64("cachebytes", 64<<20, "memory cache bound in bytes")
	jobtimeout := flag.Duration("jobtimeout", 0, "per-job wall-clock budget (0: none)")
	maxbody := flag.Int64("maxbody", 1<<20, "request body limit in bytes")
	drain := flag.Duration("drain", 30*time.Second, "shutdown drain budget")
	journaldir := flag.String("journal", "", "durable job journal directory (empty: no crash recovery)")
	self := flag.String("self", "", "this node's advertised host:port on the cluster ring (empty: unclustered)")
	peers := flag.String("peers", "", "comma-separated peer host:port list (requires -self)")
	vnodes := flag.Int("vnodes", 0, "virtual nodes per ring member (0: default; must match across the cluster)")
	chaosnet := flag.String("chaosnet", "", "netx fault plan JSON: peer traffic crosses a fault-injecting transport (drills only)")
	flag.Parse()

	var ring *cluster.Ring
	if *self != "" || *peers != "" {
		var err error
		ring, err = cluster.New(cluster.Config{
			Self:         *self,
			Peers:        splitPeers(*peers),
			VirtualNodes: *vnodes,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "starperfd: %v\n", err)
			os.Exit(1)
		}
	}

	// -chaosnet routes this node's PEER traffic through a seeded netx
	// fault fabric (client traffic is untouched): the out-of-process
	// partition drill starts every member with the same plan file and
	// observes what the cluster serves while its internal network
	// misbehaves.
	var peerHTTP *http.Client
	if *chaosnet != "" {
		raw, err := os.ReadFile(*chaosnet)
		if err != nil {
			fmt.Fprintf(os.Stderr, "starperfd: reading -chaosnet plan: %v\n", err)
			os.Exit(1)
		}
		var plan netx.Plan
		if err := json.Unmarshal(raw, &plan); err != nil {
			fmt.Fprintf(os.Stderr, "starperfd: parsing -chaosnet plan %s: %v\n", *chaosnet, err)
			os.Exit(1)
		}
		peerHTTP = netx.New(plan).Client(*self, nil)
		log.Printf("starperfd: CHAOS: peer traffic crosses the fault plan in %s (seed %d)", *chaosnet, plan.Seed)
	}

	var jnl *journal.Journal
	var jrec *journal.Recovery
	if *journaldir != "" {
		var err error
		jnl, jrec, err = journal.Open(journal.Options{Dir: *journaldir})
		if err != nil {
			fmt.Fprintf(os.Stderr, "starperfd: opening journal: %v\n", err)
			os.Exit(1)
		}
		defer jnl.Close()
	}

	srv, err := server.New(server.Config{
		Workers:      *workers,
		QueueDepth:   *queue,
		JobTimeout:   *jobtimeout,
		Cache:        cache.Config{MaxBytes: *cachebytes, Dir: *cachedir},
		MaxBodyBytes: *maxbody,
		Journal:      jnl,
		Ring:         ring,
		PeerHTTP:     peerHTTP,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "starperfd: %v\n", err)
		os.Exit(1)
	}
	if jnl != nil {
		rec := srv.Recover(jrec)
		log.Printf("starperfd: journal %s replayed: %d records in %d segments, %d corrupt lines skipped; recovery: %d requeued, %d already satisfied, %d unrecoverable",
			*journaldir, jrec.Records, jrec.Segments, jrec.CorruptSkipped,
			rec.Requeued, rec.Skipped, rec.Failed)
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("starperfd listening on %s (workers=%d queue=%d cachedir=%q)",
		*addr, *workers, *queue, *cachedir)
	if ring != nil {
		log.Printf("starperfd: cluster member %s of ring %v (%d virtual nodes/member)",
			ring.Self(), ring.Members(), ring.VirtualNodes())
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)

	select {
	case err := <-errc:
		// ListenAndServe only returns on failure to serve.
		fmt.Fprintf(os.Stderr, "starperfd: %v\n", err)
		os.Exit(1)
	case sig := <-sigc:
		log.Printf("starperfd: %v, draining (budget %v)", sig, *drain)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("starperfd: http shutdown: %v", err)
	}
	if err := srv.Close(ctx); err != nil {
		log.Printf("starperfd: job drain incomplete: %v", err)
		os.Exit(1)
	}
	log.Printf("starperfd: drained, bye")
}
