// Command starmodel evaluates the paper's analytical latency model
// at one operating point or over a rate sweep, on a star graph (the
// paper's setting), a hypercube, or a k-ary n-cube.
//
// Usage:
//
//	starmodel [-n 5 | -cube 7 | -torus-k 8 -torus-n 2] [-v 6] [-m 32]
//	          [-kind enbc|nbc|nhop]
//	          [-blocking window|paper-in|paper-out]
//	          [-rate 0.008 | -sweep 0.015 -points 15]
//	          [-sat] [-bounds]
//
// With -bounds the worst-case delay-bound engine (internal/bounds)
// runs next to the model: each operating point prints the mean
// latency the model predicts and the per-class worst-case bounds no
// flow can exceed; past the engine's capacity it prints
// "unboundable".
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"starperf/internal/bounds"
	"starperf/internal/hypercube"
	"starperf/internal/model"
	"starperf/internal/routing"
	"starperf/internal/stargraph"
	"starperf/internal/topology"
	"starperf/internal/torus"
)

func parseKind(s string) (routing.Kind, error) {
	switch s {
	case "enbc", "enhanced-nbc":
		return routing.EnhancedNbc, nil
	case "nbc":
		return routing.Nbc, nil
	case "nhop":
		return routing.NHop, nil
	}
	return 0, fmt.Errorf("unknown routing kind %q", s)
}

func parseBlocking(s string) (model.BlockingModel, error) {
	switch s {
	case "window":
		return model.Window, nil
	case "paper-in":
		return model.PaperInsidePower, nil
	case "paper-out":
		return model.PaperOutsidePower, nil
	}
	return 0, fmt.Errorf("unknown blocking model %q", s)
}

func main() {
	n := flag.Int("n", 5, "star graph symbols (ignored with -cube/-torus)")
	cube := flag.Int("cube", 0, "use a hypercube of this dimension instead")
	torusK := flag.Int("torus-k", 0, "use a k-ary n-cube with this (even) radix")
	torusN := flag.Int("torus-n", 2, "torus dimensions (with -torus-k)")
	v := flag.Int("v", 6, "virtual channels per physical channel")
	m := flag.Int("m", 32, "message length in flits")
	kindS := flag.String("kind", "enbc", "routing algorithm: enbc|nbc|nhop")
	blockS := flag.String("blocking", "window", "blocking model: window|paper-in|paper-out")
	rate := flag.Float64("rate", 0.008, "per-node generation rate λg (messages/cycle)")
	sweep := flag.Float64("sweep", 0, "sweep rates from 0 to this value instead of -rate")
	points := flag.Int("points", 15, "points in the sweep")
	sat := flag.Bool("sat", false, "also report the model's saturation rate")
	boundsF := flag.Bool("bounds", false, "also print worst-case delay bounds per operating point")
	classes := flag.Bool("classes", false, "print the per-class latency decomposition at -rate")
	flag.Parse()

	kind, err := parseKind(*kindS)
	if err != nil {
		fail(err)
	}
	blocking, err := parseBlocking(*blockS)
	if err != nil {
		fail(err)
	}
	var paths model.PathStructure
	var top topology.Topology
	switch {
	case *cube > 0:
		cp, err := model.NewCubePaths(*cube)
		if err != nil {
			fail(err)
		}
		g, err := hypercube.New(*cube)
		if err != nil {
			fail(err)
		}
		paths, top = cp, g
	case *torusK > 0:
		tp, err := model.NewTorusPaths(*torusK, *torusN)
		if err != nil {
			fail(err)
		}
		g, err := torus.New(*torusK, *torusN)
		if err != nil {
			fail(err)
		}
		paths, top = tp, g
	default:
		sp, err := model.NewStarPaths(*n)
		if err != nil {
			fail(err)
		}
		g, err := stargraph.New(*n)
		if err != nil {
			fail(err)
		}
		paths, top = sp, g
	}
	base := model.Config{
		Paths: paths, Top: top, Kind: kind, V: *v, MsgLen: *m, Blocking: blocking,
	}

	eval := func(r float64) {
		cfg := base
		cfg.Rate = r
		res, err := model.Evaluate(cfg)
		if errors.Is(err, model.ErrSaturated) {
			fmt.Printf("%-10.5f saturated\n", r)
		} else if err != nil {
			fail(err)
		} else {
			fmt.Printf("%-10.5f latency=%-10.3f S=%-10.3f Ws=%-8.3f w=%-8.3f Vbar=%-7.4f util=%-7.4f pblock=%-9.6f iters=%d\n",
				r, res.Latency, res.NetLatency, res.SourceWait, res.ChannelWait,
				res.Multiplexing, res.Utilization, res.MeanBlocking, res.Iterations)
		}
		if *boundsF {
			printBounds(top, kind, *v, *m, r)
		}
	}

	fmt.Printf("model: %s V=%d M=%d %s blocking=%s (d̄=%.4f)\n",
		top.Name(), *v, *m, kind, blocking, top.AvgDistance())
	if *sweep > 0 {
		for i := 1; i <= *points; i++ {
			eval(*sweep * float64(i) / float64(*points))
		}
	} else {
		eval(*rate)
	}
	if *classes {
		cfg := base
		cfg.Rate = *rate
		res, err := model.Evaluate(cfg)
		if err != nil {
			fail(err)
		}
		fmt.Printf("per-class decomposition at λg=%.5f (class | h | weight | S_i | blocking):\n", *rate)
		for _, c := range res.PerClass {
			fmt.Printf("  %-16s h=%-3d w=%-8.5f S=%-9.3f B=%.3f\n",
				c.Label, c.H, c.Weight, c.NetLatency, c.Blocking)
		}
	}
	if *sat {
		s, err := model.SaturationRate(base, 1e-5, 0.2)
		if err != nil {
			fail(err)
		}
		fmt.Printf("saturation rate ≈ %.5f messages/node/cycle\n", s)
	}
}

// printBounds runs the worst-case engine at one operating point and
// prints the per-class bounds under the model line.
func printBounds(top topology.Topology, kind routing.Kind, v, m int, rate float64) {
	res, err := bounds.Evaluate(bounds.Config{
		Top: top, Kind: kind, V: v, MsgLen: m, Rate: rate,
	})
	if errors.Is(err, bounds.ErrUnboundable) {
		fmt.Printf("  bound: unboundable (no finite worst case at λg=%.5f)\n", rate)
		return
	}
	if err != nil {
		fail(err)
	}
	fmt.Printf("  bound: worst=%-10.1f util=%-7.4f T=%-9.3f %s iters=%d\n",
		res.WorstCase, res.Utilization, res.HopDelay, compLabel(res.Feedforward), res.Iterations)
	for _, fb := range res.Classes {
		fmt.Printf("    h=%-3d flows=%-5d bound=%.1f\n", fb.Hops, fb.Flows, fb.Bound)
	}
}

func compLabel(ff bool) string {
	if ff {
		return "feedforward"
	}
	return "cyclic"
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "starmodel: %v\n", err)
	os.Exit(1)
}
