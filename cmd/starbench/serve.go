package main

import (
	"context"
	"fmt"
	"os"
	"testing"

	"starperf/internal/cache"
	"starperf/internal/jobs"
)

// The serve suite: microbenchmarks of the serving layer's hot paths —
// content hashing (every request pays it), the two-tier cache, and
// the job pool's dispatch round trip. Written to BENCH_serve.json in
// the same machine-shaped, timestamp-free format as the sim suite.

// serveRequest is a representative predict request body for the
// hashing benchmark (shape matches internal/server's wire schema).
func serveRequest(i int) map[string]any {
	return map[string]any{
		"topo":    map[string]any{"kind": "star", "n": 5},
		"routing": "",
		"v":       6,
		"msg_len": 32,
		"rate":    0.004 + float64(i%7)*1e-6,
	}
}

// serveBench measures one serving-layer operation.
type serveBench struct {
	Name string
	Run  func(b *testing.B)
}

func serveBenches() ([]serveBench, error) {
	memCache, err := cache.New(cache.Config{})
	if err != nil {
		return nil, err
	}
	val := make([]byte, 1024)
	for i := range val {
		val[i] = byte(i)
	}
	hot, err := cache.New(cache.Config{})
	if err != nil {
		return nil, err
	}
	hot.Put("sha256:hot", val)
	pool := jobs.NewPool(jobs.PoolConfig{Workers: 4, QueueDepth: 64})

	return []serveBench{
		{"hash_predict", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := jobs.Hash("predict", serveRequest(i)); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"cache_put_get_1k", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				key := fmt.Sprintf("sha256:%032x", i%128)
				memCache.Put(key, val)
				if _, ok := memCache.Get(key); !ok {
					b.Fatal("put entry missing")
				}
			}
		}},
		{"cache_hit_1k", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, ok := hot.Get("sha256:hot"); !ok {
					b.Fatal("hot entry missing")
				}
			}
		}},
		{"pool_do_roundtrip", func(b *testing.B) {
			b.ReportAllocs()
			ctx := context.Background()
			for i := 0; i < b.N; i++ {
				if _, err := pool.Do(ctx, "bench", func(context.Context) (any, error) {
					return i, nil
				}); err != nil {
					b.Fatal(err)
				}
			}
		}},
	}, nil
}

// runServeSuite measures the serve benchmarks and writes the JSON
// report to out ("-" for stdout).
func runServeSuite(out string) {
	benches, err := serveBenches()
	if err != nil {
		fmt.Fprintf(os.Stderr, "starbench: %v\n", err)
		os.Exit(1)
	}
	type serveRow struct {
		name        string
		nsPerOp     int64
		allocsPerOp int64
		bytesPerOp  int64
	}
	rows := make([]serveRow, 0, len(benches))
	for _, sb := range benches {
		r := testing.Benchmark(sb.Run)
		if r.N == 0 {
			fmt.Fprintf(os.Stderr, "starbench: %s ran zero iterations\n", sb.Name)
			os.Exit(1)
		}
		rows = append(rows, serveRow{sb.Name, r.NsPerOp(), r.AllocsPerOp(), r.AllocedBytesPerOp()})
		fmt.Fprintf(os.Stderr, "starbench: %-18s %12d ns/op %8d allocs/op\n",
			sb.Name, r.NsPerOp(), r.AllocsPerOp())
	}

	w := os.Stdout
	if out != "-" {
		f, err := os.Create(out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "starbench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	fmt.Fprintln(w, "{")
	fmt.Fprintln(w, `  "workload": "serving-layer hot paths: canonical content hash, two-tier cache, 4-worker pool dispatch",`)
	fmt.Fprintln(w, `  "command": "go run ./cmd/starbench -suite serve -out BENCH_serve.json",`)
	fmt.Fprintln(w, `  "variants": [`)
	for i, r := range rows {
		comma := ","
		if i == len(rows)-1 {
			comma = ""
		}
		fmt.Fprintf(w, "    {\"name\": %q, \"ns_per_op\": %d, \"allocs_per_op\": %d, \"bytes_per_op\": %d}%s\n",
			r.name, r.nsPerOp, r.allocsPerOp, r.bytesPerOp, comma)
	}
	fmt.Fprintln(w, "  ]")
	fmt.Fprintln(w, "}")
}
