package main

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"starperf/internal/journal"
)

// The journal suite: microbenchmarks of the durability layer —
// fsynced appends (the price every accepted job pays), appends with
// fsync off (isolating the encoding + write cost), group-committed
// appends (64 concurrent appenders sharing fsyncs, and the explicit
// AppendBatch API — both reported per record so they read directly
// against append_fsync), and cold-start replay of a populated log.
// Written to BENCH_journal.json in the same machine-shaped,
// timestamp-free format as the other suites. CI's bench-journal gate
// holds append_fsync_batch64 to ≥5× append_fsync per record.

// journalRecord is a representative accepted record: a content hash
// id plus a small canonical request body.
func journalRecord(i int) journal.Record {
	return journal.Record{
		Type: journal.TypeAccepted,
		ID:   fmt.Sprintf("sha256:%064x", i),
		Kind: "simulate",
		Req:  []byte(fmt.Sprintf(`{"msg_len":8,"rate":0.002,"seed":%d,"topo":{"kind":"star","n":3},"v":4}`, i)),
	}
}

// journalOp appends one lifecycle record: even iterations accept job
// i/2, odd iterations complete it. Alternating keeps the pending set
// bounded the way a live pool does — an append-only stream of unique
// accepted records would make every post-rotation compaction rewrite
// the whole history, measuring a pathology instead of the WAL.
func journalOp(j *journal.Journal, i int) error {
	if i%2 == 0 {
		return j.Append(journalRecord(i / 2))
	}
	return j.Append(journal.Record{Type: journal.TypeDone, ID: fmt.Sprintf("sha256:%064x", i/2)})
}

type journalBench struct {
	Name string
	Run  func(b *testing.B)
}

func journalBenches() []journalBench {
	return []journalBench{
		{"append_fsync", func(b *testing.B) {
			dir, err := os.MkdirTemp("", "starbench-journal-*")
			if err != nil {
				b.Fatal(err)
			}
			defer os.RemoveAll(dir)
			j, _, err := journal.Open(journal.Options{Dir: dir})
			if err != nil {
				b.Fatal(err)
			}
			defer j.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := journalOp(j, i); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"append_nosync", func(b *testing.B) {
			dir, err := os.MkdirTemp("", "starbench-journal-*")
			if err != nil {
				b.Fatal(err)
			}
			defer os.RemoveAll(dir)
			j, _, err := journal.Open(journal.Options{Dir: dir, NoSync: true})
			if err != nil {
				b.Fatal(err)
			}
			defer j.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := journalOp(j, i); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"append_fsync_batch64", func(b *testing.B) {
			// 64 concurrent appenders against one durable journal: the
			// group committer coalesces their records into shared
			// write+fsync units, so the per-record cost (ns/op — b.N
			// counts records, not commits) amortises the sync across
			// the batch. The ISSUE 8 acceptance bar is ≥10× the serial
			// append_fsync figure.
			dir, err := os.MkdirTemp("", "starbench-journal-*")
			if err != nil {
				b.Fatal(err)
			}
			defer os.RemoveAll(dir)
			j, _, err := journal.Open(journal.Options{Dir: dir})
			if err != nil {
				b.Fatal(err)
			}
			defer j.Close()
			b.ReportAllocs()
			b.ResetTimer()
			var next atomic.Int64
			var wg sync.WaitGroup
			for g := 0; g < 64; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						i := int(next.Add(1)) - 1
						if i >= b.N {
							return
						}
						if err := journalOp(j, i); err != nil {
							b.Error(err)
							return
						}
					}
				}()
			}
			wg.Wait()
		}},
		{"appendbatch_fsync_64", func(b *testing.B) {
			// The explicit batch API: one AppendBatch call per 64
			// records — the journal half of POST /v1/jobs:batch — so
			// one fsync covers the whole set by construction. Reported
			// per record (b.N counts records) like the variants above.
			dir, err := os.MkdirTemp("", "starbench-journal-*")
			if err != nil {
				b.Fatal(err)
			}
			defer os.RemoveAll(dir)
			j, _, err := journal.Open(journal.Options{Dir: dir})
			if err != nil {
				b.Fatal(err)
			}
			defer j.Close()
			b.ReportAllocs()
			b.ResetTimer()
			recs := make([]journal.Record, 0, 64)
			flush := func() {
				if len(recs) == 0 {
					return
				}
				if err := j.AppendBatch(recs); err != nil {
					b.Fatal(err)
				}
				recs = recs[:0]
			}
			for i := 0; i < b.N; i++ {
				if i%2 == 0 {
					recs = append(recs, journalRecord(i/2))
				} else {
					recs = append(recs, journal.Record{Type: journal.TypeDone, ID: fmt.Sprintf("sha256:%064x", i/2)})
				}
				if len(recs) == 64 {
					flush()
				}
			}
			flush()
		}},
		{"replay_1k_records", func(b *testing.B) {
			dir, err := os.MkdirTemp("", "starbench-journal-*")
			if err != nil {
				b.Fatal(err)
			}
			defer os.RemoveAll(dir)
			j, _, err := journal.Open(journal.Options{Dir: dir, NoSync: true})
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < 1000; i++ {
				if err := j.Append(journalRecord(i)); err != nil {
					b.Fatal(err)
				}
			}
			j.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				jr, rec, err := journal.Open(journal.Options{Dir: dir, NoSync: true})
				if err != nil {
					b.Fatal(err)
				}
				if rec.Records < 1000 {
					b.Fatalf("replayed %d records, want ≥1000", rec.Records)
				}
				jr.Close()
				// Every Open leaves a fresh (empty) live segment; drop
				// them so each iteration replays the same directory.
				b.StopTimer()
				ents, err := os.ReadDir(dir)
				if err != nil {
					b.Fatal(err)
				}
				for _, e := range ents {
					if fi, err := e.Info(); err == nil && fi.Size() == 0 {
						os.Remove(filepath.Join(dir, e.Name()))
					}
				}
				b.StartTimer()
			}
		}},
	}
}

// runJournalSuite measures the journal benchmarks and writes the JSON
// report to out ("-" for stdout).
func runJournalSuite(out string) {
	type jRow struct {
		name        string
		nsPerOp     int64
		allocsPerOp int64
		bytesPerOp  int64
	}
	benches := journalBenches()
	rows := make([]jRow, 0, len(benches))
	for _, jb := range benches {
		r := testing.Benchmark(jb.Run)
		if r.N == 0 {
			fmt.Fprintf(os.Stderr, "starbench: %s ran zero iterations\n", jb.Name)
			os.Exit(1)
		}
		rows = append(rows, jRow{jb.Name, r.NsPerOp(), r.AllocsPerOp(), r.AllocedBytesPerOp()})
		fmt.Fprintf(os.Stderr, "starbench: %-18s %12d ns/op %8d allocs/op\n",
			jb.Name, r.NsPerOp(), r.AllocsPerOp())
	}

	w := os.Stdout
	if out != "-" {
		f, err := os.Create(out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "starbench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	fmt.Fprintln(w, "{")
	fmt.Fprintln(w, `  "workload": "durable job journal: fsynced append, unsynced append, group-committed appends (64 concurrent appenders / 64-record AppendBatch, per record), cold replay of 1k records",`)
	fmt.Fprintln(w, `  "command": "go run ./cmd/starbench -suite journal -out BENCH_journal.json",`)
	fmt.Fprintln(w, `  "variants": [`)
	for i, r := range rows {
		comma := ","
		if i == len(rows)-1 {
			comma = ""
		}
		fmt.Fprintf(w, "    {\"name\": %q, \"ns_per_op\": %d, \"allocs_per_op\": %d, \"bytes_per_op\": %d}%s\n",
			r.name, r.nsPerOp, r.allocsPerOp, r.bytesPerOp, comma)
	}
	fmt.Fprintln(w, "  ]")
	fmt.Fprintln(w, "}")
}
