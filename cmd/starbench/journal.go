package main

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"starperf/internal/journal"
)

// The journal suite: microbenchmarks of the durability layer —
// fsynced appends (the price every accepted job pays), appends with
// fsync off (isolating the encoding + write cost), and cold-start
// replay of a populated log. Written to BENCH_journal.json in the
// same machine-shaped, timestamp-free format as the other suites.

// journalRecord is a representative accepted record: a content hash
// id plus a small canonical request body.
func journalRecord(i int) journal.Record {
	return journal.Record{
		Type: journal.TypeAccepted,
		ID:   fmt.Sprintf("sha256:%064x", i),
		Kind: "simulate",
		Req:  []byte(fmt.Sprintf(`{"msg_len":8,"rate":0.002,"seed":%d,"topo":{"kind":"star","n":3},"v":4}`, i)),
	}
}

// journalOp appends one lifecycle record: even iterations accept job
// i/2, odd iterations complete it. Alternating keeps the pending set
// bounded the way a live pool does — an append-only stream of unique
// accepted records would make every post-rotation compaction rewrite
// the whole history, measuring a pathology instead of the WAL.
func journalOp(j *journal.Journal, i int) error {
	if i%2 == 0 {
		return j.Append(journalRecord(i / 2))
	}
	return j.Append(journal.Record{Type: journal.TypeDone, ID: fmt.Sprintf("sha256:%064x", i/2)})
}

type journalBench struct {
	Name string
	Run  func(b *testing.B)
}

func journalBenches() []journalBench {
	return []journalBench{
		{"append_fsync", func(b *testing.B) {
			dir, err := os.MkdirTemp("", "starbench-journal-*")
			if err != nil {
				b.Fatal(err)
			}
			defer os.RemoveAll(dir)
			j, _, err := journal.Open(journal.Options{Dir: dir})
			if err != nil {
				b.Fatal(err)
			}
			defer j.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := journalOp(j, i); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"append_nosync", func(b *testing.B) {
			dir, err := os.MkdirTemp("", "starbench-journal-*")
			if err != nil {
				b.Fatal(err)
			}
			defer os.RemoveAll(dir)
			j, _, err := journal.Open(journal.Options{Dir: dir, NoSync: true})
			if err != nil {
				b.Fatal(err)
			}
			defer j.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := journalOp(j, i); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"replay_1k_records", func(b *testing.B) {
			dir, err := os.MkdirTemp("", "starbench-journal-*")
			if err != nil {
				b.Fatal(err)
			}
			defer os.RemoveAll(dir)
			j, _, err := journal.Open(journal.Options{Dir: dir, NoSync: true})
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < 1000; i++ {
				if err := j.Append(journalRecord(i)); err != nil {
					b.Fatal(err)
				}
			}
			j.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				jr, rec, err := journal.Open(journal.Options{Dir: dir, NoSync: true})
				if err != nil {
					b.Fatal(err)
				}
				if rec.Records < 1000 {
					b.Fatalf("replayed %d records, want ≥1000", rec.Records)
				}
				jr.Close()
				// Every Open leaves a fresh (empty) live segment; drop
				// them so each iteration replays the same directory.
				b.StopTimer()
				ents, err := os.ReadDir(dir)
				if err != nil {
					b.Fatal(err)
				}
				for _, e := range ents {
					if fi, err := e.Info(); err == nil && fi.Size() == 0 {
						os.Remove(filepath.Join(dir, e.Name()))
					}
				}
				b.StartTimer()
			}
		}},
	}
}

// runJournalSuite measures the journal benchmarks and writes the JSON
// report to out ("-" for stdout).
func runJournalSuite(out string) {
	type jRow struct {
		name        string
		nsPerOp     int64
		allocsPerOp int64
		bytesPerOp  int64
	}
	benches := journalBenches()
	rows := make([]jRow, 0, len(benches))
	for _, jb := range benches {
		r := testing.Benchmark(jb.Run)
		if r.N == 0 {
			fmt.Fprintf(os.Stderr, "starbench: %s ran zero iterations\n", jb.Name)
			os.Exit(1)
		}
		rows = append(rows, jRow{jb.Name, r.NsPerOp(), r.AllocsPerOp(), r.AllocedBytesPerOp()})
		fmt.Fprintf(os.Stderr, "starbench: %-18s %12d ns/op %8d allocs/op\n",
			jb.Name, r.NsPerOp(), r.AllocsPerOp())
	}

	w := os.Stdout
	if out != "-" {
		f, err := os.Create(out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "starbench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	fmt.Fprintln(w, "{")
	fmt.Fprintln(w, `  "workload": "durable job journal: fsynced append, unsynced append, cold replay of 1k records",`)
	fmt.Fprintln(w, `  "command": "go run ./cmd/starbench -suite journal -out BENCH_journal.json",`)
	fmt.Fprintln(w, `  "variants": [`)
	for i, r := range rows {
		comma := ","
		if i == len(rows)-1 {
			comma = ""
		}
		fmt.Fprintf(w, "    {\"name\": %q, \"ns_per_op\": %d, \"allocs_per_op\": %d, \"bytes_per_op\": %d}%s\n",
			r.name, r.nsPerOp, r.allocsPerOp, r.bytesPerOp, comma)
	}
	fmt.Fprintln(w, "  ]")
	fmt.Fprintln(w, "}")
}
