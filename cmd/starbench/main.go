// Command starbench measures the simulator's per-cycle cost and the
// overhead of the observability layer on a fixed S_4 workload (the
// same EnhancedNbc/V=4/rate 0.02 configuration the determinism test
// pins), then writes the result as JSON.
//
// The checked-in BENCH_sim.json at the repo root is regenerated with:
//
//	go run ./cmd/starbench -out BENCH_sim.json
//
// -suite serve switches to the serving-layer microbenchmarks
// (content hashing, the two-tier result cache, job-pool dispatch),
// whose reference numbers live in BENCH_serve.json:
//
//	go run ./cmd/starbench -suite serve -out BENCH_serve.json
//
// -suite journal measures the durability layer (fsynced vs unsynced
// append, cold replay), written to BENCH_journal.json:
//
//	go run ./cmd/starbench -suite journal -out BENCH_journal.json
//
// -suite bounds measures the worst-case delay-bound engine
// (internal/bounds) across topology sizes, written to
// BENCH_bounds.json:
//
//	go run ./cmd/starbench -suite bounds -out BENCH_bounds.json
//
// The output is machine-shaped (ns/op varies across hosts) but
// structurally stable: no timestamps or host details, so diffs show
// only the measured numbers. The observer_overhead_pct field is the
// enabled-collector ("counters") overhead over the nil-observer
// baseline ("off"); the observability layer's ≤5% budget applies to
// the nil-observer path, which is the "off" variant itself.
package main

import (
	"flag"
	"fmt"
	"os"
	"testing"

	"starperf/internal/desim"
	"starperf/internal/obs"
	"starperf/internal/routing"
	"starperf/internal/stargraph"
)

// benchConfig mirrors bench_obs_test.go: the fixed S_4 workload.
func benchConfig() desim.Config {
	s4 := stargraph.MustNew(4)
	return desim.Config{
		Top:           s4,
		Spec:          routing.MustNew(routing.EnhancedNbc, s4, 4),
		Policy:        routing.PreferClassA,
		Rate:          0.02,
		MsgLen:        8,
		Seed:          12345,
		WarmupCycles:  1000,
		MeasureCycles: 5000,
	}
}

type variant struct {
	Name string
	Cfg  desim.Config
}

type row struct {
	nsPerOp     int64
	nsPerCycle  float64
	allocsPerOp int64
	bytesPerOp  int64
}

func measure(cfg desim.Config) (row, error) {
	var cycles int64
	var runErr error
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := desim.Run(cfg)
			if err != nil {
				runErr = err
				b.FailNow()
			}
			cycles = res.Cycles
		}
	})
	if runErr != nil {
		return row{}, runErr
	}
	if r.N == 0 || cycles == 0 {
		return row{}, fmt.Errorf("benchmark ran zero iterations")
	}
	return row{
		nsPerOp:     r.NsPerOp(),
		nsPerCycle:  float64(r.NsPerOp()) / float64(cycles),
		allocsPerOp: r.AllocsPerOp(),
		bytesPerOp:  r.AllocedBytesPerOp(),
	}, nil
}

func main() {
	out := flag.String("out", "", "output path (- for stdout; default BENCH_<suite>.json)")
	suite := flag.String("suite", "sim", "benchmark suite: sim, serve or journal")
	flag.Parse()

	switch *suite {
	case "serve":
		if *out == "" {
			*out = "BENCH_serve.json"
		}
		runServeSuite(*out)
		return
	case "journal":
		if *out == "" {
			*out = "BENCH_journal.json"
		}
		runJournalSuite(*out)
		return
	case "bounds":
		if *out == "" {
			*out = "BENCH_bounds.json"
		}
		runBoundsSuite(*out)
		return
	case "sim":
		if *out == "" {
			*out = "BENCH_sim.json"
		}
	default:
		fmt.Fprintf(os.Stderr, "starbench: unknown suite %q (want sim, serve, journal or bounds)\n", *suite)
		os.Exit(1)
	}

	variants := []variant{
		{"off", benchConfig()},
	}
	counters := benchConfig()
	counters.Observer = obs.New(obs.Options{TraceCap: -1})
	variants = append(variants, variant{"counters", counters})
	full := benchConfig()
	full.Observer = obs.New(obs.Options{})
	variants = append(variants, variant{"full", full})
	traced := benchConfig()
	traced.TraceCap = 64
	variants = append(variants, variant{"trace64", traced})

	rows := make([]row, len(variants))
	for i, v := range variants {
		r, err := measure(v.Cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "starbench: %s: %v\n", v.Name, err)
			os.Exit(1)
		}
		rows[i] = r
		fmt.Fprintf(os.Stderr, "starbench: %-8s %12d ns/op %8.1f ns/cycle %8d allocs/op\n",
			v.Name, r.nsPerOp, r.nsPerCycle, r.allocsPerOp)
	}

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "starbench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}

	// Hand-formatted JSON: fixed key order, no timestamps.
	overhead := 100 * (float64(rows[1].nsPerOp)/float64(rows[0].nsPerOp) - 1)
	fmt.Fprintln(w, "{")
	fmt.Fprintln(w, `  "workload": "S4 EnhancedNbc V=4 rate=0.02 M=8 warmup=1000 measure=5000 seed=12345",`)
	fmt.Fprintln(w, `  "command": "go run ./cmd/starbench -out BENCH_sim.json",`)
	fmt.Fprintf(w, "  \"observer_overhead_pct\": %.2f,\n", overhead)
	fmt.Fprintln(w, `  "variants": [`)
	for i, v := range variants {
		r := rows[i]
		comma := ","
		if i == len(variants)-1 {
			comma = ""
		}
		fmt.Fprintf(w, "    {\"name\": %q, \"ns_per_op\": %d, \"ns_per_cycle\": %.1f, \"allocs_per_op\": %d, \"bytes_per_op\": %d}%s\n",
			v.Name, r.nsPerOp, r.nsPerCycle, r.allocsPerOp, r.bytesPerOp, comma)
	}
	fmt.Fprintln(w, "  ]")
	fmt.Fprintln(w, "}")
}
