package main

import (
	"fmt"
	"os"
	"testing"

	"starperf/internal/bounds"
	"starperf/internal/hypercube"
	"starperf/internal/routing"
	"starperf/internal/stargraph"
	"starperf/internal/topology"
	"starperf/internal/torus"
)

// The bounds suite: cost of one worst-case delay-bound evaluation
// (internal/bounds.Evaluate) across topology sizes — the quadratic
// load enumeration dominates, so the flows column is the natural
// x-axis. Written to BENCH_bounds.json in the same machine-shaped,
// timestamp-free format as the other suites.

// boundsBench is one evaluation workload.
type boundsBench struct {
	Name string
	Cfg  bounds.Config
}

func boundsBenches() ([]boundsBench, error) {
	mk := func(name string, top topology.Topology, kind routing.Kind, v, m int, rate float64) boundsBench {
		return boundsBench{Name: name, Cfg: bounds.Config{
			Top: top, Kind: kind, V: v, MsgLen: m, Rate: rate,
		}}
	}
	s4, err := stargraph.New(4)
	if err != nil {
		return nil, err
	}
	s5, err := stargraph.New(5)
	if err != nil {
		return nil, err
	}
	q6, err := hypercube.New(6)
	if err != nil {
		return nil, err
	}
	t82, err := torus.New(8, 2)
	if err != nil {
		return nil, err
	}
	return []boundsBench{
		mk("star_s4", s4, routing.EnhancedNbc, 6, 32, 0.002),
		mk("star_s5", s5, routing.EnhancedNbc, 8, 32, 0.0005),
		mk("cube_q6", q6, routing.EnhancedNbc, 5, 16, 0.002),
		mk("torus_8x2", t82, routing.Nbc, 6, 16, 0.002),
	}, nil
}

// runBoundsSuite measures the bounds benchmarks and writes the JSON
// report to out ("-" for stdout).
func runBoundsSuite(out string) {
	benches, err := boundsBenches()
	if err != nil {
		fmt.Fprintf(os.Stderr, "starbench: %v\n", err)
		os.Exit(1)
	}
	type boundsRow struct {
		name        string
		flows       int
		channels    int
		iterations  int
		nsPerOp     int64
		nsPerFlow   float64
		allocsPerOp int64
		bytesPerOp  int64
	}
	rows := make([]boundsRow, 0, len(benches))
	for _, bb := range benches {
		res, err := bounds.Evaluate(bb.Cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "starbench: %s: %v\n", bb.Name, err)
			os.Exit(1)
		}
		cfg := bb.Cfg
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := bounds.Evaluate(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
		if r.N == 0 {
			fmt.Fprintf(os.Stderr, "starbench: %s ran zero iterations\n", bb.Name)
			os.Exit(1)
		}
		rows = append(rows, boundsRow{
			name:        bb.Name,
			flows:       res.Flows,
			channels:    res.Channels,
			iterations:  res.Iterations,
			nsPerOp:     r.NsPerOp(),
			nsPerFlow:   float64(r.NsPerOp()) / float64(res.Flows),
			allocsPerOp: r.AllocsPerOp(),
			bytesPerOp:  r.AllocedBytesPerOp(),
		})
		fmt.Fprintf(os.Stderr, "starbench: %-10s %12d ns/op %8.1f ns/flow %6d flows %8d allocs/op\n",
			bb.Name, r.NsPerOp(), float64(r.NsPerOp())/float64(res.Flows), res.Flows, r.AllocsPerOp())
	}

	w := os.Stdout
	if out != "-" {
		f, err := os.Create(out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "starbench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	fmt.Fprintln(w, "{")
	fmt.Fprintln(w, `  "workload": "one worst-case delay-bound evaluation per topology (quadratic flow enumeration + fixed-point composition)",`)
	fmt.Fprintln(w, `  "command": "go run ./cmd/starbench -suite bounds -out BENCH_bounds.json",`)
	fmt.Fprintln(w, `  "variants": [`)
	for i, r := range rows {
		comma := ","
		if i == len(rows)-1 {
			comma = ""
		}
		fmt.Fprintf(w, "    {\"name\": %q, \"flows\": %d, \"channels\": %d, \"iterations\": %d, \"ns_per_op\": %d, \"ns_per_flow\": %.1f, \"allocs_per_op\": %d, \"bytes_per_op\": %d}%s\n",
			r.name, r.flows, r.channels, r.iterations, r.nsPerOp, r.nsPerFlow, r.allocsPerOp, r.bytesPerOp, comma)
	}
	fmt.Fprintln(w, "  ]")
	fmt.Fprintln(w, "}")
}
