// Command starsim runs the flit-level wormhole simulator on a star
// graph, hypercube or k-ary n-cube and reports latency and channel
// statistics.
//
// Usage:
//
//	starsim [-n 5 | -cube 7 | -torus-k 8 -torus-n 2] [-v 6] [-m 32]
//	        [-rate 0.008] [-kind enbc|nbc|nhop]
//	        [-policy prefer-a|random|lowest-b|deterministic]
//	        [-seed 1] [-warmup 10000] [-measure 50000] [-drain 0]
//	        [-pattern uniform|hotspot] [-hotfrac 0.1]
//	        [-trace out.jsonl] [-metrics out.csv] [-hops out.csv]
//	        [-sample-every 256] [-trace-cap 4096]
//	        [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//
// The observability flags attach an obs.Collector to the run: -trace
// writes the message-lifecycle ring as JSON Lines, -metrics the
// cycle-sampled gauge series as CSV, and -hops the per-hop blocking
// counters (the simulator's P_block/w̄ counterparts) as CSV.
// Observation is passive, so the printed statistics are identical
// with and without these flags. -cpuprofile/-memprofile write
// standard pprof profiles of the run.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"

	"starperf/internal/desim"
	"starperf/internal/hypercube"
	"starperf/internal/mesh"
	"starperf/internal/obs"
	"starperf/internal/routing"
	"starperf/internal/stargraph"
	"starperf/internal/topology"
	"starperf/internal/torus"
	"starperf/internal/traffic"
)

func main() {
	n := flag.Int("n", 5, "star graph symbols (ignored with -cube/-torus)")
	cube := flag.Int("cube", 0, "use a hypercube of this dimension instead")
	torusK := flag.Int("torus-k", 0, "use a k-ary n-cube with this (even) radix")
	torusN := flag.Int("torus-n", 2, "torus dimensions (with -torus-k)")
	meshK := flag.Int("mesh-k", 0, "use a k-ary n-mesh with this radix")
	meshN := flag.Int("mesh-n", 2, "mesh dimensions (with -mesh-k)")
	v := flag.Int("v", 6, "virtual channels per physical channel")
	m := flag.Int("m", 32, "message length in flits")
	rate := flag.Float64("rate", 0.008, "per-node generation rate λg")
	kindS := flag.String("kind", "enbc", "routing algorithm: enbc|nbc|nhop")
	policyS := flag.String("policy", "prefer-a", "VC selection: prefer-a|random|lowest-b")
	seed := flag.Uint64("seed", 1, "RNG seed")
	warmup := flag.Int64("warmup", 10000, "warm-up cycles")
	measure := flag.Int64("measure", 50000, "measurement window cycles")
	drain := flag.Int64("drain", 0, "drain limit cycles (0 = auto)")
	patternS := flag.String("pattern", "uniform", "traffic pattern: uniform|hotspot")
	hotfrac := flag.Float64("hotfrac", 0.1, "hotspot traffic fraction")
	tracePath := flag.String("trace", "", "write the message-lifecycle trace as JSONL to this file")
	metricsPath := flag.String("metrics", "", "write the cycle-sampled gauge series as CSV to this file")
	hopsPath := flag.String("hops", "", "write per-hop blocking counters as CSV to this file")
	sampleEvery := flag.Int64("sample-every", 256, "gauge sampling interval in cycles")
	traceCap := flag.Int("trace-cap", 4096, "trace ring capacity in events")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fail(err)
		}
		defer pprof.StopCPUProfile()
	}

	var top topology.Topology
	switch {
	case *cube > 0:
		g, err := hypercube.New(*cube)
		if err != nil {
			fail(err)
		}
		top = g
	case *torusK > 0:
		g, err := torus.New(*torusK, *torusN)
		if err != nil {
			fail(err)
		}
		top = g
	case *meshK > 0:
		g, err := mesh.New(*meshK, *meshN)
		if err != nil {
			fail(err)
		}
		top = g
	default:
		g, err := stargraph.New(*n)
		if err != nil {
			fail(err)
		}
		top = g
	}

	var kind routing.Kind
	switch *kindS {
	case "enbc":
		kind = routing.EnhancedNbc
	case "nbc":
		kind = routing.Nbc
	case "nhop":
		kind = routing.NHop
	default:
		fail(fmt.Errorf("unknown kind %q", *kindS))
	}
	var policy routing.Policy
	switch *policyS {
	case "prefer-a":
		policy = routing.PreferClassA
	case "random":
		policy = routing.RandomAny
	case "lowest-b":
		policy = routing.LowestEscapeFirst
	case "deterministic":
		policy = routing.FirstProfitable
	default:
		fail(fmt.Errorf("unknown policy %q", *policyS))
	}
	spec, err := routing.New(kind, top, *v)
	if err != nil {
		fail(err)
	}
	var pattern traffic.Pattern
	switch *patternS {
	case "uniform":
	case "hotspot":
		pattern = traffic.Hotspot{N: top.N(), Hot: 0, Fraction: *hotfrac}
	default:
		fail(fmt.Errorf("unknown pattern %q", *patternS))
	}

	var col *obs.Collector
	cfg := desim.Config{
		Top: top, Spec: spec, Policy: policy, Pattern: pattern,
		Rate: *rate, MsgLen: *m, Seed: *seed,
		WarmupCycles: *warmup, MeasureCycles: *measure, DrainCycles: *drain,
	}
	if *tracePath != "" || *metricsPath != "" || *hopsPath != "" {
		col = obs.New(obs.Options{SampleEvery: *sampleEvery, TraceCap: *traceCap})
		cfg.Observer = col
	}
	res, err := desim.Run(cfg)
	if err != nil {
		fail(err)
	}
	if col != nil {
		writeArtifact(*tracePath, col.WriteTraceJSONL)
		writeArtifact(*metricsPath, col.Metrics().WriteSeriesCSV)
		writeArtifact(*hopsPath, col.Counters().WriteHopCSV)
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fail(err)
		}
	}

	fmt.Printf("simulation: %s V=%d M=%d %s policy=%s rate=%.5f seed=%d\n",
		top.Name(), *v, *m, kind, policy, *rate, *seed)
	fmt.Printf("  cycles            %d\n", res.Cycles)
	fmt.Printf("  generated         %d\n", res.Generated)
	fmt.Printf("  delivered         %d (measured %d)\n", res.Delivered, res.MeasuredDelivered)
	fmt.Printf("  latency           %.3f ± %.3f (sd), min %.0f max %.0f\n",
		res.Latency.Mean(), res.Latency.StdDev(), res.Latency.Min(), res.Latency.Max())
	fmt.Printf("  latency p50/p99   %d / %d\n",
		res.LatencyHist.Quantile(0.50), res.LatencyHist.Quantile(0.99))
	fmt.Printf("  network latency   %.3f\n", res.NetLatency.Mean())
	fmt.Printf("  queue time        %.3f\n", res.QueueTime.Mean())
	fmt.Printf("  hops              %.3f (d̄=%.3f)\n", res.HopCount.Mean(), top.AvgDistance())
	fmt.Printf("  multiplexing      %.4f\n", res.Multiplexing)
	fmt.Printf("  VC holding        %.3f (min %.0f)\n", res.VCHolding.Mean(), res.VCHolding.Min())
	fmt.Printf("  hop wait          %.3f\n", res.HopWait.Mean())
	fmt.Printf("  blocked attempts  %d/%d (%.4f)\n", res.BlockedAttempts, res.Attempts,
		float64(res.BlockedAttempts)/float64(max(res.Attempts, 1)))
	fmt.Printf("  class a/b use     %d / %d\n", res.ClassAUse, res.ClassBUse)
	fmt.Printf("  class-b levels    %v\n", res.ClassBLevelUse)
	fmt.Printf("  max queue         %d (end %d)\n", res.MaxQueueLen, res.EndQueueLen)
	fmt.Printf("  drained           %v\n", res.Drained)
	if res.SuggestedWarmup >= 0 {
		fmt.Printf("  MSER warmup hint  %d cycles\n", res.SuggestedWarmup)
	}
	if res.Saturated() {
		fmt.Printf("  ** operating point is beyond saturation **\n")
	}
}

func max(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// writeArtifact writes one observer export to path (no-op when the
// flag was left empty).
func writeArtifact(path string, write func(w io.Writer) error) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fail(err)
	}
	if err := write(f); err != nil {
		f.Close()
		fail(err)
	}
	if err := f.Close(); err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "starsim: %v\n", err)
	os.Exit(1)
}
