// Command starlint is the repo-specific static-analysis pass: it
// type-checks every package of the module with the standard library's
// go/parser and go/types and enforces the correctness rules in
// internal/lint (simulator determinism, numerical safety, API error
// hygiene, paper-equation documentation).
//
// Usage:
//
//	starlint [-json] [-rules r1,r2] [-list] [packages]
//
// The package arguments accept ./... (the whole module, the default)
// or directory paths, optionally with a /... suffix. Exit status is 0
// when the tree is clean, 1 when findings were reported, and 2 when
// loading or type-checking failed.
//
// Findings are suppressed in place with
//
//	//lint:ignore rule reason
//
// on, or directly above, the offending line.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"starperf/internal/lint"
)

func main() {
	os.Exit(run())
}

func run() int {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array")
	ruleList := flag.String("rules", "", "comma-separated rule names to run (default: all)")
	list := flag.Bool("list", false, "list the available rules and exit")
	flag.Parse()

	rules := lint.DefaultRules()
	if *list {
		for _, r := range rules {
			fmt.Printf("%-10s %s\n", r.Name(), r.Doc())
		}
		return 0
	}
	if *ruleList != "" {
		want := make(map[string]bool)
		for _, name := range strings.Split(*ruleList, ",") {
			want[strings.TrimSpace(name)] = true
		}
		var kept []lint.Rule
		for _, r := range rules {
			if want[r.Name()] {
				kept = append(kept, r)
				delete(want, r.Name())
			}
		}
		for name := range want {
			fmt.Fprintf(os.Stderr, "starlint: unknown rule %q\n", name)
			return 2
		}
		rules = kept
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "starlint:", err)
		return 2
	}
	root, modPath, err := lint.FindModule(cwd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "starlint:", err)
		return 2
	}
	loader := lint.NewLoader(root, modPath)
	pkgs, err := loader.LoadAll()
	if err != nil {
		fmt.Fprintln(os.Stderr, "starlint:", err)
		return 2
	}
	pkgs, err = filterPackages(pkgs, flag.Args(), cwd, root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "starlint:", err)
		return 2
	}

	findings := lint.Run(pkgs, rules)
	for i := range findings {
		if rel, err := filepath.Rel(cwd, findings[i].File); err == nil && !strings.HasPrefix(rel, "..") {
			findings[i].File = rel
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []lint.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(os.Stderr, "starlint:", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "starlint: %d finding(s)\n", len(findings))
		}
		return 1
	}
	return 0
}

// filterPackages narrows pkgs to the requested patterns: "./..." (or
// no arguments) keeps everything; "dir" keeps the package in that
// directory; "dir/..." keeps the packages under it.
func filterPackages(pkgs []*lint.Package, patterns []string, cwd, root string) ([]*lint.Package, error) {
	if len(patterns) == 0 {
		return pkgs, nil
	}
	var kept []*lint.Package
	seen := make(map[string]bool)
	for _, pat := range patterns {
		recursive := false
		if strings.HasSuffix(pat, "/...") {
			recursive = true
			pat = strings.TrimSuffix(pat, "/...")
			if pat == "." || pat == "" {
				return pkgs, nil
			}
		}
		dir := pat
		if !filepath.IsAbs(dir) {
			dir = filepath.Join(cwd, dir)
		}
		dir = filepath.Clean(dir)
		matched := false
		for _, p := range pkgs {
			ok := p.Dir == dir
			if recursive && !ok {
				ok = strings.HasPrefix(p.Dir, dir+string(filepath.Separator))
			}
			if ok {
				matched = true
				if !seen[p.Path] {
					seen[p.Path] = true
					kept = append(kept, p)
				}
			}
		}
		if !matched {
			return nil, fmt.Errorf("pattern %q matched no packages under %s", pat, root)
		}
	}
	return kept, nil
}
