// Command starlint is the repo-specific static-analysis pass: it
// type-checks every package of the module with the standard library's
// go/parser and go/types and enforces the correctness rules in
// internal/lint (simulator determinism, numerical safety, API error
// hygiene, paper-equation documentation).
//
// Usage:
//
//	starlint [-json] [-rules r1,r2 | -rules -r1,-r2] [-unused-ignores] [-list] [packages]
//
// The package arguments accept ./... (the whole module, the default)
// or directory paths, optionally with a /... suffix. -rules selects
// rules by name; prefixing every name with "-" inverts the set and
// excludes them instead (the two styles cannot be mixed).
// -unused-ignores additionally reports //lint:ignore directives that
// suppressed nothing (stale suppressions outliving the code they
// excused). Every run ends with a summary line on stderr,
//
//	starlint: N findings, M suppressed
//
// so CI logs stay greppable. Exit status is 0 when the tree is clean,
// 1 when findings were reported, and 2 when loading or type-checking
// failed.
//
// Findings are suppressed in place with
//
//	//lint:ignore rule reason
//
// on, or directly above, the offending line.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"starperf/internal/lint"
)

func main() {
	os.Exit(run())
}

func run() int {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array")
	ruleList := flag.String("rules", "",
		"comma-separated rule names to run, or -name,-name to exclude (default: all)")
	unusedIgnores := flag.Bool("unused-ignores", false,
		"also report //lint:ignore directives that suppress nothing")
	list := flag.Bool("list", false, "list the available rules and exit")
	flag.Parse()

	rules := lint.DefaultRules()
	if *list {
		for _, r := range rules {
			fmt.Printf("%-12s %s\n", r.Name(), r.Doc())
		}
		return 0
	}
	if *ruleList != "" {
		var err error
		rules, err = selectRules(rules, *ruleList)
		if err != nil {
			fmt.Fprintln(os.Stderr, "starlint:", err)
			return 2
		}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "starlint:", err)
		return 2
	}
	root, modPath, err := lint.FindModule(cwd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "starlint:", err)
		return 2
	}
	loader := lint.NewLoader(root, modPath)
	pkgs, err := loader.LoadAll()
	if err != nil {
		fmt.Fprintln(os.Stderr, "starlint:", err)
		return 2
	}
	pkgs, err = filterPackages(pkgs, flag.Args(), cwd, root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "starlint:", err)
		return 2
	}

	res := lint.RunDetail(pkgs, rules)
	findings := res.Findings
	if *unusedIgnores {
		findings = append(findings, res.UnusedIgnores...)
	}
	for i := range findings {
		if rel, err := filepath.Rel(cwd, findings[i].File); err == nil && !strings.HasPrefix(rel, "..") {
			findings[i].File = rel
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []lint.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(os.Stderr, "starlint:", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	// The summary line is printed on every run — clean or not — so CI
	// logs can be grepped for "starlint:" and always hit exactly one
	// accounting line.
	fmt.Fprintf(os.Stderr, "starlint: %d findings, %d suppressed\n",
		len(findings), res.Suppressed)
	if len(findings) > 0 {
		return 1
	}
	return 0
}

// selectRules narrows rules per the -rules spec: either a keep-list
// of names, or (when every name carries a "-" prefix) an exclude
// list. Mixing the two styles is an error, as is an unknown name in
// either.
func selectRules(rules []lint.Rule, spec string) ([]lint.Rule, error) {
	names := strings.Split(spec, ",")
	include, exclude := make(map[string]bool), make(map[string]bool)
	for _, name := range names {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(name, "-"); ok {
			exclude[rest] = true
		} else {
			include[name] = true
		}
	}
	if len(include) > 0 && len(exclude) > 0 {
		return nil, fmt.Errorf("-rules cannot mix selections and -exclusions (%q)", spec)
	}
	known := make(map[string]bool, len(rules))
	for _, r := range rules {
		known[r.Name()] = true
	}
	for name := range include {
		if !known[name] {
			return nil, fmt.Errorf("unknown rule %q", name)
		}
	}
	for name := range exclude {
		if !known[name] {
			return nil, fmt.Errorf("unknown rule %q", name)
		}
	}
	var kept []lint.Rule
	for _, r := range rules {
		if len(exclude) > 0 {
			if !exclude[r.Name()] {
				kept = append(kept, r)
			}
		} else if include[r.Name()] {
			kept = append(kept, r)
		}
	}
	return kept, nil
}

// filterPackages narrows pkgs to the requested patterns: "./..." (or
// no arguments) keeps everything; "dir" keeps the package in that
// directory; "dir/..." keeps the packages under it.
func filterPackages(pkgs []*lint.Package, patterns []string, cwd, root string) ([]*lint.Package, error) {
	if len(patterns) == 0 {
		return pkgs, nil
	}
	var kept []*lint.Package
	seen := make(map[string]bool)
	for _, pat := range patterns {
		recursive := false
		if strings.HasSuffix(pat, "/...") {
			recursive = true
			pat = strings.TrimSuffix(pat, "/...")
			if pat == "." || pat == "" {
				return pkgs, nil
			}
		}
		dir := pat
		if !filepath.IsAbs(dir) {
			dir = filepath.Join(cwd, dir)
		}
		dir = filepath.Clean(dir)
		matched := false
		for _, p := range pkgs {
			ok := p.Dir == dir
			if recursive && !ok {
				ok = strings.HasPrefix(p.Dir, dir+string(filepath.Separator))
			}
			if ok {
				matched = true
				if !seen[p.Path] {
					seen[p.Path] = true
					kept = append(kept, p)
				}
			}
		}
		if !matched {
			return nil, fmt.Errorf("pattern %q matched no packages under %s", pat, root)
		}
	}
	return kept, nil
}
