// Command starinfo prints the topological properties of a star graph
// S_n that the analytical model rests on: size, degree, diameter,
// exact average distance, the distance distribution, the
// negative-hop virtual-channel requirement, and the destination
// cycle-type classes with their minimal-path counts.
//
// Usage:
//
//	starinfo [-n 5] [-classes]
package main

import (
	"flag"
	"fmt"
	"os"

	"starperf/internal/model"
	"starperf/internal/perm"
	"starperf/internal/stargraph"
	"starperf/internal/topology"
)

func main() {
	n := flag.Int("n", 5, "number of symbols (nodes = n!)")
	classes := flag.Bool("classes", false, "list destination cycle-type classes")
	flag.Parse()

	if *n < 2 || *n > 12 {
		fmt.Fprintf(os.Stderr, "starinfo: n must be in [2,12]\n")
		os.Exit(1)
	}
	diam := stargraph.Diameter(*n)
	fmt.Printf("star graph S%d\n", *n)
	fmt.Printf("  nodes            %d\n", perm.Factorial(*n))
	fmt.Printf("  degree           %d\n", *n-1)
	fmt.Printf("  diameter         %d\n", diam)
	fmt.Printf("  avg distance     %.6f\n", stargraph.AvgDistanceN(*n))
	fmt.Printf("  max neg hops     %d\n", topology.MaxNegativeHops(diam))
	fmt.Printf("  min escape VCs   %d\n", topology.MinEscapeVCs(diam))
	fmt.Printf("  distance histogram:\n")
	for h, c := range stargraph.DistanceDistribution(*n) {
		fmt.Printf("    h=%-3d %d\n", h, c)
	}
	if *classes {
		sp, err := model.NewStarPaths(*n)
		if err != nil {
			fmt.Fprintf(os.Stderr, "starinfo: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("  destination classes (cycle type | distance | population | minimal paths):\n")
		for i, c := range sp.Classes() {
			fmt.Printf("    %-16s h=%-3d count=%-8d paths=%.0f\n",
				c.Label, c.H, c.Count, sp.NumPaths(i))
		}
	}
}
