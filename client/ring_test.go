package client

// Ring-aware client behaviour against fake cluster nodes: LearnRing
// bootstraps membership from /healthz, job polls prefer the id's
// owner, and a dead owner makes the poll fall down the successor
// order. The nodes here are hand-rolled handlers, not real servers —
// the point is the client's routing, pinned against addresses known
// before the handlers run (listeners first, job id second).

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"starperf/internal/cluster"
)

// fakeNode is one scripted cluster member. jobID is set by the test
// after the addresses (and therefore the ring) are known.
type fakeNode struct {
	addr    string
	ts      *httptest.Server
	jobID   atomic.Value // string
	submits atomic.Int64
	polls   atomic.Int64
}

// newFakeCluster starts n fake members that agree on membership and
// serve: /healthz with the ring, POST /v1/simulate with 202 and the
// scripted job id, GET /v1/jobs/{id} with a done envelope.
func newFakeCluster(t *testing.T, n int) []*fakeNode {
	t.Helper()
	listeners := make([]net.Listener, n)
	members := make([]string, n)
	for i := range listeners {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = l
		members[i] = l.Addr().String()
	}
	nodes := make([]*fakeNode, n)
	for i, l := range listeners {
		node := &fakeNode{addr: members[i]}
		node.jobID.Store("")
		mux := http.NewServeMux()
		mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
			_ = json.NewEncoder(w).Encode(map[string]any{
				"ok": true,
				"cluster": map[string]any{
					"self":          node.addr,
					"members":       members,
					"virtual_nodes": 64,
				},
			})
		})
		mux.HandleFunc("POST /v1/simulate", func(w http.ResponseWriter, r *http.Request) {
			node.submits.Add(1)
			w.WriteHeader(http.StatusAccepted)
			_ = json.NewEncoder(w).Encode(map[string]any{
				"id": node.jobID.Load(), "status": "queued",
			})
		})
		mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
			node.polls.Add(1)
			_ = json.NewEncoder(w).Encode(map[string]any{
				"id": r.PathValue("id"), "status": "done", "result": map[string]any{},
			})
		})
		node.ts = &httptest.Server{Listener: l, Config: &http.Server{Handler: mux}}
		node.ts.Start()
		t.Cleanup(node.ts.Close)
		nodes[i] = node
	}
	return nodes
}

// addrs extracts the member list.
func addrs(nodes []*fakeNode) []string {
	out := make([]string, len(nodes))
	for i, n := range nodes {
		out[i] = n.addr
	}
	return out
}

// idOwnedBy finds a job id the given member owns on the ring over
// members, so tests steer placement deterministically.
func idOwnedBy(t *testing.T, members []string, want string) string {
	t.Helper()
	ring, err := cluster.New(cluster.Config{Self: members[0], Peers: members})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100000; i++ {
		id := fmt.Sprintf("sha256:%064x", i)
		if ring.Owner(id) == want {
			return id
		}
	}
	t.Fatalf("no id owned by %s in 100000 tries", want)
	return ""
}

// TestLearnRingPrefersOwnerForPolls: after LearnRing, the poll for a
// job goes straight to the id's ring owner, not the bootstrap node.
func TestLearnRingPrefersOwnerForPolls(t *testing.T) {
	nodes := newFakeCluster(t, 2)
	bootstrap, owner := nodes[0], nodes[1]
	jobID := idOwnedBy(t, addrs(nodes), owner.addr)
	for _, n := range nodes {
		n.jobID.Store(jobID)
	}

	c, _ := newRecordingClient(t, bootstrap.ts.URL, Config{})
	if err := c.LearnRing(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Simulate(context.Background(), SimulateRequest{}); err != nil {
		t.Fatal(err)
	}
	if got := bootstrap.submits.Load(); got != 1 {
		t.Fatalf("bootstrap submits = %d, want 1 (submit goes to the configured node)", got)
	}
	if owner.polls.Load() != 1 || bootstrap.polls.Load() != 0 {
		t.Fatalf("polls: owner=%d bootstrap=%d, want the owner polled, the bootstrap spared",
			owner.polls.Load(), bootstrap.polls.Load())
	}
}

// TestPollFailsOverWhenOwnerDies: a poll whose preferred owner is
// dead advances to the next ring successor instead of failing.
func TestPollFailsOverWhenOwnerDies(t *testing.T) {
	nodes := newFakeCluster(t, 2)
	survivor, owner := nodes[0], nodes[1]
	jobID := idOwnedBy(t, addrs(nodes), owner.addr)
	for _, n := range nodes {
		n.jobID.Store(jobID)
	}

	c, _ := newRecordingClient(t, survivor.ts.URL, Config{})
	if err := c.LearnRing(context.Background()); err != nil {
		t.Fatal(err)
	}
	owner.ts.Close() // the owner dies before the job is polled
	if _, err := c.Simulate(context.Background(), SimulateRequest{}); err != nil {
		t.Fatalf("poll with dead owner: %v", err)
	}
	if got := survivor.polls.Load(); got != 1 {
		t.Fatalf("survivor polls = %d, want the failed-over poll", got)
	}
}

// TestLearnRingNoopOnUnclusteredServer: a plain single-node server
// (no cluster block in /healthz) leaves the client ringless and
// fully functional.
func TestLearnRingNoopOnUnclusteredServer(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_ = json.NewEncoder(w).Encode(map[string]bool{"ok": true})
	}))
	defer ts.Close()
	c, _ := newRecordingClient(t, ts.URL, Config{})
	if err := c.LearnRing(context.Background()); err != nil {
		t.Fatal(err)
	}
	if c.ring != nil {
		t.Fatal("client invented a ring from a ringless healthz")
	}
	if got := c.targets("sha256:anything"); len(got) != 1 || got[0] != c.base {
		t.Fatalf("targets = %v, want just the base URL", got)
	}
}

// TestRetryAfterOverridesJitterCap: an explicit Retry-After is obeyed
// verbatim even when it exceeds MaxBackoff — the cap bounds the
// client's own guessing, never the server's explicit schedule.
func TestRetryAfterOverridesJitterCap(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "9")
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprint(w, `{"error":"busy","class":"overloaded"}`)
			return
		}
		fmt.Fprint(w, `{"ok":true}`)
	}))
	defer ts.Close()

	c, sleeps := newRecordingClient(t, ts.URL, Config{MaxBackoff: 100 * time.Millisecond})
	if err := c.Health(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(*sleeps) != 1 || (*sleeps)[0] != 9*time.Second {
		t.Fatalf("sleeps = %v, want the server's 9s schedule over the 100ms jitter cap", *sleeps)
	}

	// And without Retry-After, the jitter cap binds.
	calls.Store(0)
	ts2 := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprint(w, `{"error":"busy","class":"overloaded"}`)
			return
		}
		fmt.Fprint(w, `{"ok":true}`)
	}))
	defer ts2.Close()
	c, sleeps = newRecordingClient(t, ts2.URL, Config{MaxBackoff: 100 * time.Millisecond})
	if err := c.Health(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(*sleeps) != 1 || (*sleeps)[0] > 100*time.Millisecond {
		t.Fatalf("sleeps = %v, want one jittered wait within the 100ms cap", *sleeps)
	}
}

// Test429StormGivesUpBeforeDeadline: under a sustained 429 storm
// whose Retry-After exceeds the caller's patience, the client fails
// fast with the deadline error — before the deadline, not by blocking
// out the remaining budget and failing after it.
func Test429StormGivesUpBeforeDeadline(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "5")
		w.WriteHeader(http.StatusTooManyRequests)
		fmt.Fprint(w, `{"error":"storm","class":"overloaded"}`)
	}))
	defer ts.Close()

	// Real sleeps, real deadline: the early give-up must beat both.
	c, err := New(Config{BaseURL: ts.URL, MaxAttempts: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	patience := 250 * time.Millisecond
	ctx, cancel := context.WithTimeout(context.Background(), patience)
	defer cancel()
	start := time.Now()
	err = c.Health(ctx)
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("storm error = %v, want context.DeadlineExceeded", err)
	}
	if elapsed >= patience {
		t.Fatalf("gave up after %v, deadline was %v: the client burned its caller's budget", elapsed, patience)
	}
}
