// Package client is the public Go client for starperfd. It speaks the
// server's JSON API with the retry discipline a well-behaved caller
// owes an overloaded service: exponential backoff with full jitter,
// Retry-After honoured verbatim, context deadlines respected, and
// retries only where they are safe.
//
// Safety of retries comes from the server's content addressing: a
// request's job id is a hash of its canonical body, so resubmitting
// the same request can never duplicate work — the server dedupes
// in-flight copies and serves finished ones from its cache,
// byte-identically. That makes every request here idempotent and
// every 429/503/504/network failure retryable.
//
// Against a sharded cluster the client is ring-aware: LearnRing
// bootstraps the membership from any node's /healthz, job polls
// prefer the id's ring owner, and a dead node makes the client fall
// down the same successor order the servers themselves fail over on.
// A client that never calls LearnRing still works — every node
// answers every request, forwarding internally — it just pays an
// extra hop.
//
// Only stdlib dependencies (plus the module's own pure-stdlib ring
// package), deliberately: the package is importable from anywhere
// without dragging the simulator along.
package client

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"starperf/internal/cluster"
)

// Config describes a Client. BaseURL is required; everything else
// has workable defaults.
type Config struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTPClient, when set, replaces http.DefaultClient.
	HTTPClient *http.Client
	// MaxAttempts bounds tries per request, first attempt included
	// (default 4).
	MaxAttempts int
	// BaseBackoff and MaxBackoff bound the exponential backoff
	// schedule (defaults 100ms and 5s). The actual sleep is drawn
	// uniformly from [0, min(MaxBackoff, BaseBackoff·2^attempt)] —
	// full jitter, so a thundering herd decorrelates.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// PollInterval paces job polling between backoff-worthy events
	// (default 50ms).
	PollInterval time.Duration
	// Seed seeds the jitter source; 0 derives one from the clock.
	// Fixing it makes backoff schedules reproducible in tests.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.HTTPClient == nil {
		c.HTTPClient = http.DefaultClient
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 4
	}
	if c.BaseBackoff <= 0 {
		c.BaseBackoff = 100 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 5 * time.Second
	}
	if c.PollInterval <= 0 {
		c.PollInterval = 50 * time.Millisecond
	}
	return c
}

// Client is a starperfd API client, safe for concurrent use.
type Client struct {
	base   string
	scheme string // member base URLs are scheme://addr
	http   *http.Client
	cfg    Config
	sleep  func(ctx context.Context, d time.Duration) error
	jit    func(max time.Duration) time.Duration

	mu   sync.RWMutex
	ring *cluster.Ring // nil until LearnRing finds a clustered server
}

// New validates cfg and builds a Client.
func New(cfg Config) (*Client, error) {
	if strings.TrimSpace(cfg.BaseURL) == "" {
		return nil, fmt.Errorf("%w: BaseURL required", ErrConfig)
	}
	cfg = cfg.withDefaults()
	scheme := "http"
	if u, err := url.Parse(cfg.BaseURL); err == nil && u.Scheme != "" {
		scheme = u.Scheme
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	rng := rand.New(rand.NewSource(seed))
	var mu sync.Mutex
	return &Client{
		base:   strings.TrimRight(cfg.BaseURL, "/"),
		scheme: scheme,
		http:   cfg.HTTPClient,
		cfg:    cfg,
		sleep:  sleepCtx,
		jit: func(max time.Duration) time.Duration {
			if max <= 0 {
				return 0
			}
			mu.Lock()
			defer mu.Unlock()
			return time.Duration(rng.Int63n(int64(max) + 1))
		},
	}, nil
}

// healthEnvelope mirrors the server's /healthz body; Cluster is
// present on a clustered node.
type healthEnvelope struct {
	OK      bool `json:"ok"`
	Cluster *struct {
		Self         string   `json:"self"`
		Members      []string `json:"members"`
		VirtualNodes int      `json:"virtual_nodes"`
	} `json:"cluster"`
}

// LearnRing bootstraps cluster membership from the configured node's
// /healthz and rebuilds the same consistent-hash ring the servers
// route by, so subsequent job polls go straight to each id's owner
// and fall down the cluster's own failover order when it is dead.
// Against an unclustered server it is a no-op. Call it again to pick
// up a changed member set (membership is static per deployment, so
// once per process is typical).
func (c *Client) LearnRing(ctx context.Context) error {
	body, _, err := c.do(ctx, http.MethodGet, "/healthz", nil)
	if err != nil {
		return err
	}
	var env healthEnvelope
	if err := json.Unmarshal(body, &env); err != nil {
		return fmt.Errorf("%w: healthz body: %v", ErrProtocol, err)
	}
	if env.Cluster == nil || len(env.Cluster.Members) == 0 {
		return nil
	}
	// The ring's key placement depends only on the member set and the
	// virtual-node count, not on which member calls itself Self — any
	// member works as the client's vantage point.
	ring, err := cluster.New(cluster.Config{
		Self:         env.Cluster.Members[0],
		Peers:        env.Cluster.Members,
		VirtualNodes: env.Cluster.VirtualNodes,
	})
	if err != nil {
		return fmt.Errorf("%w: rebuilding ring: %v", ErrProtocol, err)
	}
	c.mu.Lock()
	c.ring = ring
	c.mu.Unlock()
	return nil
}

// targets returns the preference-ordered base URLs for a request:
// for a known job id, the id's ring successors (owner first); for
// everything else, the bootstrap node then the other members. The
// bootstrap URL always appears so a ring learned from a stale
// /healthz can never strand the client. Without a ring the list is
// the bootstrap node alone.
func (c *Client) targets(id string) []string {
	c.mu.RLock()
	ring := c.ring
	c.mu.RUnlock()
	if ring == nil {
		return []string{c.base}
	}
	out := make([]string, 0, ring.Size()+1)
	seen := make(map[string]bool, ring.Size()+1)
	add := func(base string) {
		if !seen[base] {
			seen[base] = true
			out = append(out, base)
		}
	}
	if id != "" {
		for _, m := range ring.Successors(id) {
			add(c.scheme + "://" + m)
		}
	} else {
		add(c.base)
		for _, m := range ring.Members() {
			add(c.scheme + "://" + m)
		}
	}
	add(c.base)
	return out
}

// sleepCtx sleeps for d or until ctx is done, whichever is first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// The client's error surface is classified so callers match classes,
// never strings: configuration mistakes wrap ErrConfig, replies that
// break the API contract wrap ErrProtocol, jobs the server reports as
// failed wrap ErrJobFailed, and non-2xx responses are *APIError.
var (
	// ErrConfig classifies client-side configuration mistakes caught
	// before any request is made.
	ErrConfig = errors.New("client: invalid configuration")
	// ErrProtocol classifies well-formed HTTP exchanges whose payload
	// violates the server's API contract (e.g. a job with no id).
	ErrProtocol = errors.New("client: protocol error")
	// ErrJobFailed classifies jobs the server accepted but reports as
	// failed; the server's message is appended.
	ErrJobFailed = errors.New("client: job failed")
	// ErrTornBody classifies a transport failure that struck after
	// some response bytes had already been read — a mid-body
	// connection reset. It is kept distinct from a clean pre-response
	// failure because retrying a torn read is only safe when the
	// request is idempotent and the reassembled result can be
	// verified; starperfd requests are both (content-hash ids, and
	// X-Starperf-Result-Sum checked on every retried body), so the
	// client does retry — but a caller layering non-idempotent work on
	// top can tell the two apart.
	ErrTornBody = errors.New("client: connection lost mid-body")
)

// APIError is a non-2xx response decoded from the server's error
// envelope. Status is the HTTP code; Class the machine-readable
// error class from the v1 wire contract ("invalid_config",
// "queue_full", "saturated", "unreachable", "timeout", "internal").
type APIError struct {
	Status  int
	Class   string
	Message string

	retryAfter time.Duration // server-provided schedule, consumed by backoff
}

func (e *APIError) Error() string {
	return fmt.Sprintf("starperfd: %d %s: %s", e.Status, e.Class, e.Message)
}

// Is maps wire classes back onto the client's sentinel errors: a
// server-side invalid_config rejection matches ErrConfig, so callers
// classify a bad request the same way whether the client or the
// server caught it.
func (e *APIError) Is(target error) bool {
	return target == ErrConfig && e.Class == "invalid_config"
}

// Temporary reports whether the failure is worth retrying: server
// overload, shutdown, breaker, or a timed-out job.
func (e *APIError) Temporary() bool {
	switch e.Status {
	case http.StatusTooManyRequests, http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// errorEnvelope mirrors the server's error body. Error is raw because
// two generations of the wire contract share the "error" key: the v1
// envelope nests an object ({"error":{"class","message",...}}), the
// pre-PR-8 shape held the message as a string with class alongside.
// The client decodes both, so it can talk to one release older
// servers during a rolling upgrade.
type errorEnvelope struct {
	Error json.RawMessage `json:"error"`
	Class string          `json:"class"` // legacy flat shape only
}

// wireError is the nested object of the v1 envelope.
type wireError struct {
	Class        string `json:"class"`
	Message      string `json:"message"`
	RetryAfterMS int64  `json:"retry_after_ms"`
}

// jobEnvelope mirrors the server's async job body.
type jobEnvelope struct {
	ID     string          `json:"id"`
	Status string          `json:"status"`
	Error  string          `json:"error,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
}

// attemptResult carries one HTTP attempt's outcome to the retry loop.
type attemptResult struct {
	status int
	body   []byte
	header http.Header
	netErr error // transport-level failure; always retryable
}

// do runs one request with the full retry discipline against the
// default target list. Non-retryable API errors return *APIError at
// once.
func (c *Client) do(ctx context.Context, method, path string, reqBody []byte) ([]byte, http.Header, error) {
	return c.doTargets(ctx, method, c.targets(""), path, reqBody)
}

// doTargets runs one request against a preference-ordered target
// list. A transport error or a 5xx advances to the next target — the
// node is dead or failing, exactly the condition the server-side ring
// fails over on. A 429 stays put: that is backpressure from a healthy
// node, and hopping away from it would dodge the admission control
// the cluster relies on. The retry budget spans all targets.
func (c *Client) doTargets(ctx context.Context, method string, bases []string, path string, reqBody []byte) ([]byte, http.Header, error) {
	var lastErr error
	target := 0
	for attempt := 0; attempt < c.cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			if err := c.backoff(ctx, attempt, lastErr); err != nil {
				return nil, nil, err
			}
		}
		res := c.attempt(ctx, method, bases[target%len(bases)], path, reqBody)
		if res.netErr != nil {
			if ctx.Err() != nil {
				return nil, nil, ctx.Err()
			}
			lastErr = fmt.Errorf("client: %s %s: %w", method, path, res.netErr)
			target++
			continue
		}
		if res.status >= 200 && res.status < 300 {
			// A success body that advertises a content sum must match
			// it (PR 12). A mismatch means the bytes were damaged in
			// flight (truncated, corrupted); returning them would hand
			// the caller a partial or wrong result that parses as a
			// real one. Treated like a transport failure: fail over and
			// retry — the recomputed answer is byte-identical, so the
			// next intact copy is the same result.
			if sum := res.header.Get(resultSumHeader); sum != "" && !sumMatches(res.body, sum) {
				lastErr = fmt.Errorf("%w: %s %s: body does not match advertised %s", ErrProtocol, method, path, resultSumHeader)
				target++
				continue
			}
			return res.body, res.header, nil
		}
		apiErr := decodeAPIError(res.status, res.body)
		if !apiErr.Temporary() {
			return nil, nil, apiErr
		}
		if ra := parseRetryAfter(res.header); ra > 0 {
			apiErr.retryAfter = ra // header overrides the envelope's ms hint
		}
		lastErr = apiErr
		if res.status >= 500 {
			target++
		}
	}
	return nil, nil, fmt.Errorf("client: giving up after %d attempts: %w", c.cfg.MaxAttempts, lastErr)
}

// attempt performs exactly one HTTP round trip against base.
func (c *Client) attempt(ctx context.Context, method, base, path string, reqBody []byte) attemptResult {
	var rd io.Reader
	if reqBody != nil {
		rd = bytes.NewReader(reqBody)
	}
	req, err := http.NewRequestWithContext(ctx, method, base+path, rd)
	if err != nil {
		return attemptResult{netErr: err}
	}
	if reqBody != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	// Tell the server how patient we are, so it can shed a doomed
	// request immediately instead of queueing it past our deadline.
	if t, ok := ctx.Deadline(); ok {
		if left := time.Until(t); left > 0 {
			req.Header.Set("X-Starperf-Deadline", left.Round(time.Millisecond).String())
		}
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return attemptResult{netErr: err}
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		if len(body) > 0 {
			// The connection died mid-body: some bytes arrived, then
			// the transport failed. Classify distinctly (ErrTornBody)
			// so the retry decision is explicit, and never surface the
			// partial bytes.
			return attemptResult{netErr: fmt.Errorf("%w after %d bytes: %w", ErrTornBody, len(body), err)}
		}
		return attemptResult{netErr: err}
	}
	return attemptResult{status: resp.StatusCode, body: body, header: resp.Header}
}

// resultSumHeader mirrors the server's X-Starperf-Result-Sum header:
// the "sha256:<hex>" content sum of a result body, verified on every
// response that carries it before the bytes are surfaced or a retry
// of a torn read is trusted.
const resultSumHeader = "X-Starperf-Result-Sum"

// resultSum renders the content sum of a body in the header's
// "sha256:<hex>" shape.
func resultSum(body []byte) string {
	sum := sha256.Sum256(body)
	return "sha256:" + hex.EncodeToString(sum[:])
}

// sumMatches verifies a response body against its advertised content
// sum. Two shapes cross the wire under the same header: sync routes
// whose body is the result bytes themselves (sum covers the body),
// and job envelopes whose "result" field holds the bytes (sum covers
// that field). A body matching neither way is damaged — truncation
// breaks the envelope parse, a flipped byte breaks the sum.
func sumMatches(body []byte, sum string) bool {
	if resultSum(body) == sum {
		return true
	}
	var env jobEnvelope
	if err := json.Unmarshal(body, &env); err != nil || env.Result == nil {
		return false
	}
	return resultSum(env.Result) == sum
}

// retryAfter rides along on temporary APIErrors so backoff can
// honour the server's explicit schedule.
type retryAfterCarrier interface{ RetryAfter() time.Duration }

func (e *APIError) RetryAfter() time.Duration { return e.retryAfter }

// backoff sleeps before retry n: the server's Retry-After when it
// gave one, otherwise full-jitter exponential backoff. A wait that
// cannot finish inside the context deadline fails immediately — a
// caller with 200ms of patience told to come back in 5s learns the
// request is doomed now, not after blocking out its whole budget.
func (c *Client) backoff(ctx context.Context, attempt int, lastErr error) error {
	var d time.Duration
	var carrier retryAfterCarrier
	if errors.As(lastErr, &carrier) && carrier.RetryAfter() > 0 {
		d = carrier.RetryAfter()
	} else {
		max := c.cfg.BaseBackoff << uint(attempt-1)
		if max > c.cfg.MaxBackoff || max <= 0 {
			max = c.cfg.MaxBackoff
		}
		d = c.jit(max)
	}
	if t, ok := ctx.Deadline(); ok && d >= time.Until(t) {
		return context.DeadlineExceeded
	}
	return c.sleep(ctx, d)
}

// parseRetryAfter reads the delay-seconds form of Retry-After (the
// only form starperfd emits).
func parseRetryAfter(h http.Header) time.Duration {
	v := h.Get("Retry-After")
	if v == "" {
		return 0
	}
	secs, err := strconv.Atoi(v)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// decodeAPIError maps a non-2xx body to an *APIError: the v1 nested
// envelope first, the legacy flat shape second, tolerating non-JSON
// bodies from intermediaries. A v1 retry_after_ms seeds the retry
// schedule (the Retry-After header, when present, overrides it with
// the server's coarser but authoritative figure).
func decodeAPIError(status int, body []byte) *APIError {
	var env errorEnvelope
	if err := json.Unmarshal(body, &env); err != nil || len(env.Error) == 0 {
		return &APIError{Status: status, Class: "unknown", Message: strings.TrimSpace(string(body))}
	}
	var nested wireError
	if err := json.Unmarshal(env.Error, &nested); err == nil && nested.Class != "" {
		return &APIError{
			Status: status, Class: nested.Class, Message: nested.Message,
			retryAfter: time.Duration(nested.RetryAfterMS) * time.Millisecond,
		}
	}
	var legacy string
	if err := json.Unmarshal(env.Error, &legacy); err == nil && legacy != "" {
		return &APIError{Status: status, Class: env.Class, Message: legacy}
	}
	return &APIError{Status: status, Class: "unknown", Message: strings.TrimSpace(string(body))}
}

// Health checks GET /healthz.
func (c *Client) Health(ctx context.Context) error {
	_, _, err := c.do(ctx, http.MethodGet, "/healthz", nil)
	return err
}

// Predict evaluates the analytical model synchronously.
func (c *Client) Predict(ctx context.Context, req PredictRequest) (*PredictResult, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	out, _, err := c.do(ctx, http.MethodPost, "/v1/predict", body)
	if err != nil {
		return nil, err
	}
	var res PredictResult
	if err := json.Unmarshal(out, &res); err != nil {
		return nil, fmt.Errorf("%w: predict response: %v", ErrProtocol, err)
	}
	return &res, nil
}

// PredictBounds evaluates the worst-case delay-bound engine
// synchronously. An unboundable operating point is reported in the
// result (Unboundable true), not as an error.
func (c *Client) PredictBounds(ctx context.Context, req BoundsRequest) (*BoundsResult, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	out, _, err := c.do(ctx, http.MethodPost, "/v1/bounds", body)
	if err != nil {
		return nil, err
	}
	var res BoundsResult
	if err := json.Unmarshal(out, &res); err != nil {
		return nil, fmt.Errorf("%w: bounds response: %v", ErrProtocol, err)
	}
	return &res, nil
}

// Simulate submits a flit-level simulation and waits for its result,
// polling the job endpoint until done or ctx expires.
func (c *Client) Simulate(ctx context.Context, req SimulateRequest) (*SimulateResult, error) {
	raw, err := c.runJob(ctx, "/v1/simulate", req)
	if err != nil {
		return nil, err
	}
	var res SimulateResult
	if err := json.Unmarshal(raw, &res); err != nil {
		return nil, fmt.Errorf("%w: simulate result: %v", ErrProtocol, err)
	}
	return &res, nil
}

// Sweep submits a Figure 1 panel sweep and waits for its result.
func (c *Client) Sweep(ctx context.Context, req SweepRequest) (*SweepResult, error) {
	raw, err := c.runJob(ctx, "/v1/sweep", req)
	if err != nil {
		return nil, err
	}
	var res SweepResult
	if err := json.Unmarshal(raw, &res); err != nil {
		return nil, fmt.Errorf("%w: sweep result: %v", ErrProtocol, err)
	}
	return &res, nil
}

// runJob drives one async endpoint end to end: submit (with retries),
// then poll GET /v1/jobs/{id} until the job is terminal. Submissions
// are safe to retry blind — the id is a content hash, so the server
// coalesces duplicates instead of re-running them.
func (c *Client) runJob(ctx context.Context, path string, req any) (json.RawMessage, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	out, _, err := c.do(ctx, http.MethodPost, path, body)
	if err != nil {
		return nil, err
	}
	var job jobEnvelope
	if err := json.Unmarshal(out, &job); err != nil {
		return nil, fmt.Errorf("%w: job envelope: %v", ErrProtocol, err)
	}
	if job.ID == "" {
		return nil, fmt.Errorf("%w: job submission returned no id", ErrProtocol)
	}
	for {
		switch job.Status {
		case "done":
			if job.Result != nil {
				return job.Result, nil
			}
			// Accepted-from-cache responses omit the body; one poll
			// fetches it.
		case "failed":
			return nil, fmt.Errorf("%w: job %s: %s", ErrJobFailed, job.ID, job.Error)
		}
		if err := c.sleep(ctx, c.cfg.PollInterval); err != nil {
			return nil, err
		}
		// Poll the id's ring owner first (it holds the job), falling
		// down the successor order when it is unreachable.
		out, _, err := c.doTargets(ctx, http.MethodGet, c.targets(job.ID), "/v1/jobs/"+job.ID, nil)
		if err != nil {
			return nil, err
		}
		if err := json.Unmarshal(out, &job); err != nil {
			return nil, fmt.Errorf("%w: job poll: %v", ErrProtocol, err)
		}
	}
}
