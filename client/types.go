package client

// Typed mirrors of the starperfd wire schema. These are hand-copied
// rather than imported so the package stays stdlib-only and free of
// the simulator's internals; the server's compat test pins that the
// two sets marshal identically (field for field, tag for tag), so a
// drift between them is a test failure, not a runtime surprise.

// TopoSpec names a topology on the wire.
type TopoSpec struct {
	// Kind is "star", "hypercube", "torus" or "mesh".
	Kind string `json:"kind"`
	// N is the star size n (S_n) or the hypercube dimension m.
	N int `json:"n,omitempty"`
	// K and Dim are the k-ary n-cube/mesh arity and dimension.
	K   int `json:"k,omitempty"`
	Dim int `json:"dim,omitempty"`
}

// PredictRequest is POST /v1/predict: one analytical-model
// evaluation, answered synchronously.
type PredictRequest struct {
	Topo    TopoSpec `json:"topo"`
	Routing string   `json:"routing,omitempty"`
	V       int      `json:"v"`
	MsgLen  int      `json:"msg_len"`
	Rate    float64  `json:"rate"`
}

// PredictResult is the predict response body.
type PredictResult struct {
	Saturated     bool    `json:"saturated"`
	LatencyCycles float64 `json:"latency_cycles"`
	NetLatency    float64 `json:"net_latency"`
	SourceWait    float64 `json:"source_wait"`
	ChannelWait   float64 `json:"channel_wait"`
	Multiplexing  float64 `json:"multiplexing"`
	Utilization   float64 `json:"utilization"`
	MeanBlocking  float64 `json:"mean_blocking"`
	Converged     bool    `json:"converged"`
}

// BoundsRequest is POST /v1/bounds: one worst-case delay-bound
// evaluation, answered synchronously.
type BoundsRequest struct {
	Topo    TopoSpec `json:"topo"`
	Routing string   `json:"routing,omitempty"`
	V       int      `json:"v"`
	MsgLen  int      `json:"msg_len"`
	Rate    float64  `json:"rate"`
	BufCap  int      `json:"buf_cap,omitempty"`
	LinkBW  float64  `json:"link_bw,omitempty"`
}

// BoundsResult is the bounds response body. When Unboundable is true
// no finite worst-case bound exists at the operating point.
type BoundsResult struct {
	Unboundable bool          `json:"unboundable"`
	WorstBound  float64       `json:"worst_bound"`
	Classes     []BoundsClass `json:"classes,omitempty"`
	Utilization float64       `json:"utilization"`
	HopDelay    float64       `json:"hop_delay"`
	Residual    float64       `json:"residual"`
	Feedforward bool          `json:"feedforward"`
	Iterations  int           `json:"iterations"`
	Flows       int           `json:"flows"`
	Channels    int           `json:"channels"`
}

// BoundsClass is one per-hop-count flow class's bound.
type BoundsClass struct {
	Hops  int     `json:"hops"`
	Flows int     `json:"flows"`
	Bound float64 `json:"bound"`
}

// SimulateRequest is POST /v1/simulate: one flit-level simulation,
// answered through the job API.
type SimulateRequest struct {
	Topo      TopoSpec `json:"topo"`
	Routing   string   `json:"routing,omitempty"`
	V         int      `json:"v"`
	MsgLen    int      `json:"msg_len"`
	Rate      float64  `json:"rate"`
	BufCap    int      `json:"buf_cap,omitempty"`
	Seed      uint64   `json:"seed,omitempty"`
	Warmup    int64    `json:"warmup,omitempty"`
	Measure   int64    `json:"measure,omitempty"`
	Drain     int64    `json:"drain,omitempty"`
	MaxMsgAge int64    `json:"max_msg_age,omitempty"`
}

// SimulateResult is the simulate job's result body.
type SimulateResult struct {
	MeanLatency  float64 `json:"mean_latency"`
	MinLatency   float64 `json:"min_latency"`
	MaxLatency   float64 `json:"max_latency"`
	P50Latency   int     `json:"p50_latency"`
	P95Latency   int     `json:"p95_latency"`
	P99Latency   int     `json:"p99_latency"`
	Measured     uint64  `json:"measured"`
	Delivered    uint64  `json:"delivered"`
	AcceptedRate float64 `json:"accepted_rate"`
	Cycles       int64   `json:"cycles"`
	Saturated    bool    `json:"saturated"`
	Aborted      bool    `json:"aborted"`
	AbortReason  string  `json:"abort_reason,omitempty"`
}

// SweepRequest is POST /v1/sweep: one Figure 1 panel.
type SweepRequest struct {
	Panel   string   `json:"panel"`
	Points  int      `json:"points,omitempty"`
	Seeds   []uint64 `json:"seeds,omitempty"`
	Warmup  int64    `json:"warmup,omitempty"`
	Measure int64    `json:"measure,omitempty"`
	Workers int      `json:"workers,omitempty"`
}

// SweepResult is the sweep job's result body.
type SweepResult struct {
	Title  string        `json:"title"`
	XLabel string        `json:"x_label"`
	Series []SweepSeries `json:"series"`
}

// SweepSeries is one curve (fixed V and message length) of a panel.
type SweepSeries struct {
	Name   string       `json:"name"`
	V      int          `json:"v"`
	MsgLen int          `json:"msg_len"`
	Points []SweepPoint `json:"points"`
}

// SweepPoint is one operating point of a sweep series.
type SweepPoint struct {
	Rate           float64  `json:"rate"`
	Model          *float64 `json:"model"`
	ModelSaturated bool     `json:"model_saturated"`
	Sim            *float64 `json:"sim"`
	SimHW          float64  `json:"sim_hw"`
	SimSaturated   bool     `json:"sim_saturated"`
	Failed         bool     `json:"failed,omitempty"`
	Err            string   `json:"error,omitempty"`
}
