package client_test

// End-to-end tests of the public client against the real serving
// stack, plus the wire-compat pin: the client's typed mirrors must
// marshal byte-identically to the server's request types — same
// canonical JSON, same content hash — or the two halves have drifted.

import (
	"bytes"
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"starperf/client"
	"starperf/internal/jobs"
	"starperf/internal/server"
)

func newStack(t *testing.T, cfg server.Config) (*server.Server, *client.Client) {
	t.Helper()
	if cfg.Cache.Dir == "" {
		cfg.Cache.Dir = t.TempDir()
	}
	s, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	c, err := client.New(client.Config{
		BaseURL: ts.URL, Seed: 7,
		BaseBackoff: 5 * time.Millisecond, PollInterval: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Close(ctx); err != nil {
			t.Errorf("server close: %v", err)
		}
	})
	return s, c
}

func TestClientPredictEndToEnd(t *testing.T) {
	_, c := newStack(t, server.Config{Workers: 2})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := c.Health(ctx); err != nil {
		t.Fatal(err)
	}
	req := client.PredictRequest{
		Topo: client.TopoSpec{Kind: "star", N: 4}, V: 4, MsgLen: 16, Rate: 0.004,
	}
	first, err := c.Predict(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if first.Saturated || !(first.LatencyCycles > 0) || !first.Converged {
		t.Fatalf("implausible predict result: %+v", first)
	}
	second, err := c.Predict(ctx, req) // cache hit server-side
	if err != nil {
		t.Fatal(err)
	}
	if *first != *second {
		t.Fatalf("repeat predict differs:\n %+v\n %+v", first, second)
	}
}

func TestClientBoundsEndToEnd(t *testing.T) {
	_, c := newStack(t, server.Config{Workers: 2})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	req := client.BoundsRequest{
		Topo: client.TopoSpec{Kind: "star", N: 4}, V: 6, MsgLen: 32, Rate: 0.004,
	}
	first, err := c.PredictBounds(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if first.Unboundable || !(first.WorstBound > 0) || len(first.Classes) == 0 {
		t.Fatalf("implausible bounds result: %+v", first)
	}
	second, err := c.PredictBounds(ctx, req) // cache hit server-side
	if err != nil {
		t.Fatal(err)
	}
	if first.WorstBound != second.WorstBound || len(first.Classes) != len(second.Classes) {
		t.Fatalf("repeat bounds differs:\n %+v\n %+v", first, second)
	}
	// Far past capacity: a typed in-band answer, not an error.
	over, err := c.PredictBounds(ctx, client.BoundsRequest{
		Topo: client.TopoSpec{Kind: "star", N: 4}, V: 6, MsgLen: 32, Rate: 0.03,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !over.Unboundable {
		t.Fatalf("rate past capacity reported boundable: %+v", over)
	}
}

func TestClientSimulateEndToEnd(t *testing.T) {
	_, c := newStack(t, server.Config{Workers: 2})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	res, err := c.Simulate(ctx, client.SimulateRequest{
		Topo: client.TopoSpec{Kind: "star", N: 3}, V: 4, MsgLen: 8, Rate: 0.002, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !(res.MeanLatency > 0) || res.Delivered == 0 {
		t.Fatalf("implausible simulate result: %+v", res)
	}
}

// TestClientRetriesThroughOverload: a single-worker pool wedged on a
// blocked job turns the first submission into 429 queue_full; the
// client must back off and land the job once the wedge clears.
func TestClientRetriesThroughOverload(t *testing.T) {
	s, c := newStack(t, server.Config{Workers: 1, QueueDepth: 1})
	gate := make(chan struct{})
	if _, err := s.Pool().Submit("sha256:wedge1", func(ctx context.Context) (any, error) {
		select {
		case <-gate:
		case <-ctx.Done():
		}
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}
	// Wait for the worker to hold the wedge, then fill the queue.
	deadline := time.Now().Add(5 * time.Second)
	for s.Pool().Stats().Running == 0 {
		if time.Now().After(deadline) {
			t.Fatal("wedge never started")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := s.Pool().Submit("sha256:wedge2", func(ctx context.Context) (any, error) {
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		_, err := c.Simulate(ctx, client.SimulateRequest{
			Topo: client.TopoSpec{Kind: "star", N: 3}, V: 4, MsgLen: 8, Rate: 0.002, Seed: 9,
		})
		done <- err
	}()
	time.Sleep(30 * time.Millisecond) // let at least one attempt hit the full queue
	close(gate)
	if err := <-done; err != nil {
		t.Fatalf("client did not ride out the overload: %v", err)
	}
}

// TestWireCompat pins the mirrors to the server's schema: identical
// canonical JSON and identical content hashes for identical values.
func TestWireCompat(t *testing.T) {
	cp := client.PredictRequest{Topo: client.TopoSpec{Kind: "star", N: 5}, Routing: "nbc", V: 3, MsgLen: 32, Rate: 0.01}
	sp := server.PredictRequest{Topo: server.TopoSpec{Kind: "star", N: 5}, Routing: "nbc", V: 3, MsgLen: 32, Rate: 0.01}
	assertSameWire(t, "predict", cp, sp)

	cb := client.BoundsRequest{Topo: client.TopoSpec{Kind: "hypercube", N: 4}, Routing: "nbc", V: 4, MsgLen: 16, Rate: 0.003, BufCap: 2, LinkBW: 1}
	sb := server.BoundsRequest{Topo: server.TopoSpec{Kind: "hypercube", N: 4}, Routing: "nbc", V: 4, MsgLen: 16, Rate: 0.003, BufCap: 2, LinkBW: 1}
	assertSameWire(t, "bounds", cb, sb)

	cs := client.SimulateRequest{Topo: client.TopoSpec{Kind: "torus", K: 4, Dim: 2}, V: 2, MsgLen: 16, Rate: 0.005, BufCap: 2, Seed: 3, Warmup: 100, Measure: 200, Drain: 300, MaxMsgAge: 50}
	ss := server.SimulateRequest{Topo: server.TopoSpec{Kind: "torus", K: 4, Dim: 2}, V: 2, MsgLen: 16, Rate: 0.005, BufCap: 2, Seed: 3, Warmup: 100, Measure: 200, Drain: 300, MaxMsgAge: 50}
	assertSameWire(t, "simulate", cs, ss)

	cw := client.SweepRequest{Panel: "b", Points: 6, Seeds: []uint64{1, 2}, Warmup: 10, Measure: 20, Workers: 2}
	sw := server.SweepRequest{Panel: "b", Points: 6, Seeds: []uint64{1, 2}, Warmup: 10, Measure: 20, Workers: 2}
	assertSameWire(t, "sweep", cw, sw)
}

func assertSameWire(t *testing.T, kind string, clientReq, serverReq any) {
	t.Helper()
	cb, err := jobs.CanonicalJSON(clientReq)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := jobs.CanonicalJSON(serverReq)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cb, sb) {
		t.Fatalf("%s mirrors drifted:\n client %s\n server %s", kind, cb, sb)
	}
	ch, err := jobs.Hash(kind, clientReq)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := jobs.Hash(kind, serverReq)
	if err != nil {
		t.Fatal(err)
	}
	if ch != sh {
		t.Fatalf("%s content hashes drifted: %s vs %s", kind, ch, sh)
	}
}
