package client

// Batched ingestion: POST /v1/jobs:batch submits many jobs in one
// round trip (one server-side admission decision, one journal fsync
// for the accepted set), and WaitBatch polls the whole set on a
// shared schedule. Content addressing keeps blind retries safe here
// exactly as it does for single submissions — a resubmitted batch
// dedupes item by item onto the jobs the first attempt created.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"time"
)

// maxBatchItems mirrors the server's per-request batch limit;
// SubmitBatch splits larger workloads into sequential chunks itself.
const maxBatchItems = 256

// BatchItem is one submission in a batch: the job kind ("predict",
// "simulate" or "sweep") and the config its standalone route would
// take (a PredictRequest, SimulateRequest or SweepRequest — or any
// value marshalling to the same JSON).
type BatchItem struct {
	Kind   string `json:"kind"`
	Config any    `json:"config"`
}

// BatchStatus is one item's submission outcome. Exactly one of
// (ID, Err) is meaningful: an accepted (or cache-satisfied) item has
// its content-hash ID and the server's status for it; a rejected item
// carries the *APIError the same request would have drawn standalone
// — a shed item's Err is Temporary() with the server's Retry-After
// hint, so the caller can resubmit just the rejected remainder.
type BatchStatus struct {
	ID     string
	Status string
	Err    error
}

// batchWire mirrors the server's request and response bodies.
type batchWireItem struct {
	Kind   string          `json:"kind"`
	Config json.RawMessage `json:"config"`
}

type batchWireRequest struct {
	Items []batchWireItem `json:"items"`
}

type batchWireResult struct {
	ID     string     `json:"id"`
	Status string     `json:"status"`
	Error  *wireError `json:"error"`
}

type batchWireResponse struct {
	Items []batchWireResult `json:"items"`
}

// SubmitBatch submits items through POST /v1/jobs:batch, splitting
// past the server's 256-item limit into sequential chunks. The
// returned slice matches items index for index. A non-nil error means
// a whole chunk's HTTP exchange failed terminally (its items carry
// the error too); per-item rejections — invalid configs, shed items —
// are not errors of the batch, they are Err entries on their items.
func (c *Client) SubmitBatch(ctx context.Context, items []BatchItem) ([]BatchStatus, error) {
	out := make([]BatchStatus, len(items))
	var firstErr error
	for start := 0; start < len(items); start += maxBatchItems {
		end := start + maxBatchItems
		if end > len(items) {
			end = len(items)
		}
		if err := c.submitChunk(ctx, items[start:end], out[start:end]); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return out, firstErr
}

// submitChunk runs one ≤256-item POST and fills out[i] per item.
func (c *Client) submitChunk(ctx context.Context, items []BatchItem, out []BatchStatus) error {
	req := batchWireRequest{Items: make([]batchWireItem, len(items))}
	for i, it := range items {
		cfg, err := json.Marshal(it.Config)
		if err != nil {
			return fmt.Errorf("%w: batch item %d config: %v", ErrConfig, i, err)
		}
		req.Items[i] = batchWireItem{Kind: it.Kind, Config: cfg}
	}
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	raw, _, err := c.do(ctx, http.MethodPost, "/v1/jobs:batch", body)
	if err != nil {
		for i := range out {
			out[i] = BatchStatus{Err: err}
		}
		return err
	}
	var resp batchWireResponse
	if err := json.Unmarshal(raw, &resp); err != nil {
		return fmt.Errorf("%w: batch response: %v", ErrProtocol, err)
	}
	if len(resp.Items) != len(items) {
		return fmt.Errorf("%w: batch answered %d items for %d", ErrProtocol, len(resp.Items), len(items))
	}
	for i, r := range resp.Items {
		if r.Error != nil {
			// The per-item entry is the envelope a standalone non-2xx
			// would carry; map it onto the same *APIError surface so
			// errors.Is/Temporary work identically either way.
			out[i] = BatchStatus{Err: &APIError{
				Status:     itemStatus(r.Error.Class),
				Class:      r.Error.Class,
				Message:    r.Error.Message,
				retryAfter: time.Duration(r.Error.RetryAfterMS) * time.Millisecond,
			}}
			continue
		}
		if r.ID == "" {
			out[i] = BatchStatus{Err: fmt.Errorf("%w: batch item %d has neither id nor error", ErrProtocol, i)}
			continue
		}
		out[i] = BatchStatus{ID: r.ID, Status: r.Status}
	}
	return nil
}

// itemStatus reconstructs the HTTP status a per-item error class
// would have carried standalone, so APIError.Temporary classifies
// batch rejections exactly like whole-request ones.
func itemStatus(class string) int {
	switch class {
	case "invalid_config":
		return http.StatusBadRequest
	case "queue_full":
		return http.StatusTooManyRequests
	case "saturated", "unreachable":
		return http.StatusUnprocessableEntity
	case "timeout":
		return http.StatusGatewayTimeout
	default:
		return http.StatusInternalServerError
	}
}

// JobResult is one job's terminal outcome from WaitBatch: the raw
// result bytes on success, ErrJobFailed (or the poll's own error) in
// Err otherwise.
type JobResult struct {
	ID     string
	Result json.RawMessage
	Err    error
}

// WaitBatch polls every id until all are terminal or ctx expires,
// pacing the whole set on one PollInterval schedule — one pass polls
// each still-pending job once (ring-aware, owner first), so a batch
// of n jobs costs one round of polls per interval, not n independent
// pollers. Results match ids index for index; ids the context
// outlived carry ctx's error.
func (c *Client) WaitBatch(ctx context.Context, ids []string) []JobResult {
	out := make([]JobResult, len(ids))
	pending := make([]int, 0, len(ids))
	for i, id := range ids {
		out[i].ID = id
		if id == "" {
			out[i].Err = fmt.Errorf("%w: empty job id", ErrConfig)
			continue
		}
		pending = append(pending, i)
	}
	for len(pending) > 0 {
		next := pending[:0]
		for _, i := range pending {
			id := ids[i]
			raw, _, err := c.doTargets(ctx, http.MethodGet, c.targets(id), "/v1/jobs/"+id, nil)
			if err != nil {
				out[i].Err = err
				continue
			}
			var job jobEnvelope
			if err := json.Unmarshal(raw, &job); err != nil {
				out[i].Err = fmt.Errorf("client: job poll: %w", err)
				continue
			}
			switch {
			case job.Status == "done" && job.Result != nil:
				out[i].Result = job.Result
			case job.Status == "failed":
				out[i].Err = fmt.Errorf("%w: job %s: %s", ErrJobFailed, id, job.Error)
			default:
				next = append(next, i)
			}
		}
		pending = next
		if len(pending) == 0 {
			break
		}
		if err := c.sleep(ctx, c.cfg.PollInterval); err != nil {
			for _, i := range pending {
				out[i].Err = err
			}
			break
		}
	}
	return out
}
