package client

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"starperf/internal/netx"
)

// newRecordingClient builds a seeded client whose sleeps are recorded
// instead of slept, so retry tests run instantly and deterministically.
func newRecordingClient(t *testing.T, url string, cfg Config) (*Client, *[]time.Duration) {
	t.Helper()
	cfg.BaseURL = url
	if cfg.Seed == 0 {
		cfg.Seed = 42
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var sleeps []time.Duration
	c.sleep = func(ctx context.Context, d time.Duration) error {
		sleeps = append(sleeps, d)
		return ctx.Err()
	}
	return c, &sleeps
}

func TestRetriesHonourRetryAfter(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "7")
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprint(w, `{"error":"overloaded","class":"overloaded"}`)
			return
		}
		fmt.Fprint(w, `{"ok":true}`)
	}))
	defer ts.Close()

	c, sleeps := newRecordingClient(t, ts.URL, Config{})
	if err := c.Health(context.Background()); err != nil {
		t.Fatalf("health after retries: %v", err)
	}
	if calls.Load() != 3 {
		t.Fatalf("attempts = %d, want 3", calls.Load())
	}
	// Both backoffs must follow the server's schedule exactly.
	if len(*sleeps) != 2 || (*sleeps)[0] != 7*time.Second || (*sleeps)[1] != 7*time.Second {
		t.Fatalf("sleeps = %v, want [7s 7s]", *sleeps)
	}
}

func TestFullJitterBackoffBounds(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusGatewayTimeout) // no Retry-After
		fmt.Fprint(w, `{"error":"timeout","class":"timeout"}`)
	}))
	defer ts.Close()

	base := 100 * time.Millisecond
	c, sleeps := newRecordingClient(t, ts.URL, Config{MaxAttempts: 4, BaseBackoff: base, MaxBackoff: time.Minute})
	err := c.Health(context.Background())
	if err == nil {
		t.Fatal("succeeded against an always-504 server")
	}
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusGatewayTimeout {
		t.Fatalf("error %v does not unwrap to the 504", err)
	}
	if calls.Load() != 4 {
		t.Fatalf("attempts = %d, want MaxAttempts", calls.Load())
	}
	// Full jitter: each sleep is uniform in [0, base·2^(n-1)].
	for i, d := range *sleeps {
		if max := base << uint(i); d < 0 || d > max {
			t.Fatalf("sleep %d = %v outside [0, %v]", i, d, max)
		}
	}
}

func TestSameSeedSameBackoffSchedule(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprint(w, `{"error":"x","class":"overloaded"}`)
	}))
	defer ts.Close()
	run := func() []time.Duration {
		c, sleeps := newRecordingClient(t, ts.URL, Config{Seed: 99, MaxAttempts: 5})
		_ = c.Health(context.Background())
		return *sleeps
	}
	a, b := run(), run()
	if len(a) != 4 || fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("same seed diverged: %v vs %v", a, b)
	}
}

func TestNoRetryOnClientError(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusBadRequest)
		fmt.Fprint(w, `{"error":"bad topo","class":"invalid_config"}`)
	}))
	defer ts.Close()

	c, _ := newRecordingClient(t, ts.URL, Config{})
	_, err := c.Predict(context.Background(), PredictRequest{})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != 400 || apiErr.Class != "invalid_config" {
		t.Fatalf("err = %v", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("a 400 was retried: %d attempts", calls.Load())
	}
}

func TestNetworkErrorsRetry(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		fmt.Fprint(w, `{"ok":true}`)
	}))
	defer ts.Close()

	c, _ := newRecordingClient(t, ts.URL, Config{})
	// A transport that fails twice before delegating to the real one.
	var fails atomic.Int64
	c.http = &http.Client{Transport: netx.RoundTripFunc(func(r *http.Request) (*http.Response, error) {
		if fails.Add(1) <= 2 {
			return nil, errors.New("connection reset by peer")
		}
		return http.DefaultTransport.RoundTrip(r)
	})}
	if err := c.Health(context.Background()); err != nil {
		t.Fatalf("health through flaky transport: %v", err)
	}
	if calls.Load() != 1 || fails.Load() != 3 {
		t.Fatalf("server calls %d / transport tries %d, want 1 / 3", calls.Load(), fails.Load())
	}
}

func TestContextCancelStopsRetries(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "30")
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprint(w, `{"error":"x","class":"overloaded"}`)
	}))
	defer ts.Close()

	c, err := New(Config{BaseURL: ts.URL, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	err = c.Health(ctx) // real sleeps: the 30s Retry-After must lose to ctx
	if err == nil {
		t.Fatal("succeeded against an always-503 server")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("retry loop ignored the context for %v", elapsed)
	}
}

func TestDeadlineHeaderPropagates(t *testing.T) {
	var sawDeadline atomic.Bool
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if h := r.Header.Get("X-Starperf-Deadline"); h != "" {
			if d, err := time.ParseDuration(h); err == nil && d > 0 {
				sawDeadline.Store(true)
			}
		}
		fmt.Fprint(w, `{"ok":true}`)
	}))
	defer ts.Close()

	c, _ := newRecordingClient(t, ts.URL, Config{})
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := c.Health(ctx); err != nil {
		t.Fatal(err)
	}
	if !sawDeadline.Load() {
		t.Fatal("client did not announce its deadline to the server")
	}
}

func TestJobPolling(t *testing.T) {
	var polls atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/simulate", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusAccepted)
		fmt.Fprint(w, `{"id":"sha256:abc","status":"queued"}`)
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		if polls.Add(1) < 3 {
			fmt.Fprint(w, `{"id":"sha256:abc","status":"running"}`)
			return
		}
		fmt.Fprint(w, `{"id":"sha256:abc","status":"done","result":{"mean_latency":12.5}}`)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	c, _ := newRecordingClient(t, ts.URL, Config{})
	res, err := c.Simulate(context.Background(), SimulateRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanLatency != 12.5 {
		t.Fatalf("result = %+v", res)
	}
	if polls.Load() != 3 {
		t.Fatalf("polls = %d, want 3", polls.Load())
	}
}

func TestJobFailureSurfaces(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sweep", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusAccepted)
		fmt.Fprint(w, `{"id":"sha256:def","status":"queued"}`)
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"id":"sha256:def","status":"failed","error":"panel exploded"}`)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	c, _ := newRecordingClient(t, ts.URL, Config{})
	_, err := c.Sweep(context.Background(), SweepRequest{Panel: "a"})
	if err == nil {
		t.Fatal("failed job did not surface an error")
	}
	if !strings.Contains(err.Error(), "panel exploded") {
		t.Fatalf("err %q does not carry the job's failure", err)
	}
}

func TestNewRequiresBaseURL(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New accepted an empty BaseURL")
	}
}
