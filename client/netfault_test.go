package client_test

// Client behaviour under injected network faults: mid-body connection
// resets, truncated and corrupted JSON, and black holes, all drawn
// from seeded netx plans against the real serving stack. The
// properties pinned here are the retry contract's hard edges — torn
// reads are classified and retried (safe: content-hash idempotency
// plus checksum verification), damaged bodies are never surfaced,
// retries never outlive the caller's deadline.

import (
	"context"
	"errors"
	"net/http/httptest"
	"testing"
	"time"

	"starperf/client"
	"starperf/internal/netx"
	"starperf/internal/server"
)

// chaosReq is small enough to finish instantly and big enough (well
// past 32 response bytes) that every body fault lands inside it.
var chaosReq = client.PredictRequest{
	Topo: client.TopoSpec{Kind: "star", N: 4}, V: 4, MsgLen: 16, Rate: 0.004,
}

// newChaosStack runs a real server and a client whose transport goes
// through the given netx plan.
func newChaosStack(t *testing.T, plan netx.Plan) (*netx.Net, *client.Client) {
	t.Helper()
	cfg := server.Config{Workers: 2}
	cfg.Cache.Dir = t.TempDir()
	s, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	net := netx.New(plan)
	c, err := client.New(client.Config{
		BaseURL:      ts.URL,
		HTTPClient:   net.Client("client", nil),
		Seed:         7,
		BaseBackoff:  time.Millisecond,
		MaxBackoff:   5 * time.Millisecond,
		PollInterval: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Close(ctx); err != nil {
			t.Errorf("server close: %v", err)
		}
	})
	return net, c
}

// healAfterFirstOp makes the fabric inject on exactly the first
// request and run clean from the second on.
func healAfterFirstOp(net *netx.Net) {
	net.Observe(func(o netx.Obs) {
		if o.Op >= 1 {
			net.Heal()
		}
	})
}

// TestClientRetriesMidBodyReset: the first response dies mid-body;
// the retry must land the complete result, and the torn attempt must
// never leak partial bytes into it.
func TestClientRetriesMidBodyReset(t *testing.T) {
	net, c := newChaosStack(t, netx.Plan{Seed: 11, Default: netx.Rule{PReset: 1}})
	healAfterFirstOp(net)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := c.Predict(ctx, chaosReq)
	if err != nil {
		t.Fatalf("predict through mid-body reset: %v", err)
	}
	if res.Saturated || !(res.LatencyCycles > 0) || !res.Converged {
		t.Fatalf("implausible result after retry: %+v", res)
	}
	if st := net.Stats(); st.Resets != 1 {
		t.Fatalf("resets = %d, want exactly 1", st.Resets)
	}
}

// TestClientClassifiesTornBody: a reset that never clears surfaces as
// ErrTornBody — the caller can tell "connection died after bytes
// arrived" apart from a clean pre-response failure — and no result is
// returned.
func TestClientClassifiesTornBody(t *testing.T) {
	_, c := newChaosStack(t, netx.Plan{Seed: 11, Default: netx.Rule{PReset: 1}})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := c.Predict(ctx, chaosReq)
	if err == nil {
		t.Fatal("predict succeeded through a permanent mid-body reset")
	}
	if !errors.Is(err, client.ErrTornBody) {
		t.Fatalf("err = %v, want ErrTornBody", err)
	}
	if res != nil {
		t.Fatalf("partial result surfaced alongside the error: %+v", res)
	}
}

// TestClientTruncatedJSONTypedProtocolError: a truncated body reads
// as a clean early EOF, so only the checksum catches it. The client
// must reject it (typed ErrProtocol), retry, and — when every copy is
// truncated — give up without ever surfacing the partial JSON.
func TestClientTruncatedJSONTypedProtocolError(t *testing.T) {
	_, c := newChaosStack(t, netx.Plan{Seed: 3, Default: netx.Rule{PTruncate: 1}})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := c.Predict(ctx, chaosReq)
	if err == nil {
		t.Fatal("predict succeeded on permanently truncated bodies")
	}
	if !errors.Is(err, client.ErrProtocol) {
		t.Fatalf("err = %v, want ErrProtocol", err)
	}
	if res != nil {
		t.Fatalf("truncated result surfaced: %+v", res)
	}
}

// TestClientTruncateRecoversOnRetry: one truncated copy, then a clean
// network — the retry must deliver the full result.
func TestClientTruncateRecoversOnRetry(t *testing.T) {
	net, c := newChaosStack(t, netx.Plan{Seed: 3, Default: netx.Rule{PTruncate: 1}})
	healAfterFirstOp(net)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := c.Predict(ctx, chaosReq)
	if err != nil {
		t.Fatalf("predict through truncation: %v", err)
	}
	if !(res.LatencyCycles > 0) || !res.Converged {
		t.Fatalf("implausible result after retry: %+v", res)
	}
	if st := net.Stats(); st.Truncated != 1 {
		t.Fatalf("truncated = %d, want exactly 1", st.Truncated)
	}
}

// TestClientCorruptBodyNeverSurfaced: a flipped byte parses as valid
// JSON often enough that only the checksum catches it; the client
// must retry past it and return the intact bytes.
func TestClientCorruptBodyNeverSurfaced(t *testing.T) {
	net, c := newChaosStack(t, netx.Plan{Seed: 5, Default: netx.Rule{PCorrupt: 1}})
	healAfterFirstOp(net)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := c.Predict(ctx, chaosReq)
	if err != nil {
		t.Fatalf("predict through corruption: %v", err)
	}
	if !(res.LatencyCycles > 0) || !res.Converged {
		t.Fatalf("implausible result after retry: %+v", res)
	}
	if st := net.Stats(); st.Corrupted != 1 {
		t.Fatalf("corrupted = %d, want exactly 1", st.Corrupted)
	}
}

// TestClientRetryHonorsCallerDeadline: a black-holed request must end
// at the caller's deadline with the caller's error — not hang, not
// keep retrying past it.
func TestClientRetryHonorsCallerDeadline(t *testing.T) {
	_, c := newChaosStack(t, netx.Plan{Seed: 9, Default: netx.Rule{PBlackhole: 1}})
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Predict(ctx, chaosReq)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("deadline ignored: took %v", elapsed)
	}
}
