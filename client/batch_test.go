package client

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

func TestSubmitBatchMixedOutcomes(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/jobs:batch" {
			t.Errorf("path = %s, want /v1/jobs:batch", r.URL.Path)
		}
		var req batchWireRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			t.Errorf("request body: %v", err)
		}
		if len(req.Items) != 3 {
			t.Errorf("items = %d, want 3", len(req.Items))
		}
		fmt.Fprint(w, `{"items":[
			{"id":"sha256:aa","status":"queued"},
			{"error":{"class":"invalid_config","message":"bad rate"}},
			{"error":{"class":"queue_full","message":"shed","retry_after_ms":1500}}
		]}`)
	}))
	defer ts.Close()

	c, _ := newRecordingClient(t, ts.URL, Config{})
	out, err := c.SubmitBatch(context.Background(), []BatchItem{
		{Kind: "predict", Config: PredictRequest{Topo: TopoSpec{Kind: "star", N: 3}, V: 4, MsgLen: 8, Rate: 0.001}},
		{Kind: "predict", Config: map[string]any{"rate": -1}},
		{Kind: "simulate", Config: SimulateRequest{Topo: TopoSpec{Kind: "star", N: 3}, V: 4, MsgLen: 8, Rate: 0.001}},
	})
	if err != nil {
		t.Fatalf("SubmitBatch: %v", err)
	}
	if out[0].Err != nil || out[0].ID != "sha256:aa" || out[0].Status != "queued" {
		t.Fatalf("item 0 = %+v, want accepted sha256:aa", out[0])
	}
	if !errors.Is(out[1].Err, ErrConfig) {
		t.Fatalf("item 1 err = %v, want ErrConfig via invalid_config", out[1].Err)
	}
	var apiErr *APIError
	if !errors.As(out[2].Err, &apiErr) || !apiErr.Temporary() {
		t.Fatalf("item 2 err = %v, want temporary *APIError", out[2].Err)
	}
	if apiErr.Status != http.StatusTooManyRequests {
		t.Fatalf("item 2 status = %d, want 429", apiErr.Status)
	}
	if got := apiErr.RetryAfter(); got != 1500*time.Millisecond {
		t.Fatalf("item 2 retry-after = %v, want 1.5s", got)
	}
}

func TestSubmitBatchChunksPastServerLimit(t *testing.T) {
	var calls atomic.Int64
	var sizes []int
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		var req batchWireRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			t.Errorf("request body: %v", err)
		}
		sizes = append(sizes, len(req.Items))
		resp := batchWireResponse{Items: make([]batchWireResult, len(req.Items))}
		for i := range resp.Items {
			resp.Items[i] = batchWireResult{ID: fmt.Sprintf("sha256:%02x", i), Status: "queued"}
		}
		json.NewEncoder(w).Encode(resp)
	}))
	defer ts.Close()

	c, _ := newRecordingClient(t, ts.URL, Config{})
	items := make([]BatchItem, maxBatchItems+10)
	for i := range items {
		items[i] = BatchItem{Kind: "predict", Config: PredictRequest{Topo: TopoSpec{Kind: "star", N: 3}, V: 4, MsgLen: 8, Rate: 0.001}}
	}
	out, err := c.SubmitBatch(context.Background(), items)
	if err != nil {
		t.Fatalf("SubmitBatch: %v", err)
	}
	if calls.Load() != 2 {
		t.Fatalf("HTTP calls = %d, want 2 chunks", calls.Load())
	}
	if sizes[0] != maxBatchItems || sizes[1] != 10 {
		t.Fatalf("chunk sizes = %v, want [%d 10]", sizes, maxBatchItems)
	}
	for i, st := range out {
		if st.Err != nil || st.ID == "" {
			t.Fatalf("item %d = %+v, want accepted", i, st)
		}
	}
}

func TestSubmitBatchCountMismatchIsProtocolError(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"items":[{"id":"sha256:aa","status":"queued"}]}`)
	}))
	defer ts.Close()

	c, _ := newRecordingClient(t, ts.URL, Config{})
	_, err := c.SubmitBatch(context.Background(), []BatchItem{
		{Kind: "predict", Config: map[string]any{}},
		{Kind: "predict", Config: map[string]any{}},
	})
	if !errors.Is(err, ErrProtocol) {
		t.Fatalf("err = %v, want ErrProtocol on 1 answer for 2 items", err)
	}
}

func TestWaitBatchPollsSharedSchedule(t *testing.T) {
	// Job a completes on the second poll round, job b on the first;
	// job c fails. One PollInterval sleep separates the rounds.
	var polls atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		round := polls.Add(1)
		switch id := r.PathValue("id"); id {
		case "sha256:aa":
			if round <= 3 {
				fmt.Fprintf(w, `{"id":%q,"status":"running"}`, id)
			} else {
				fmt.Fprintf(w, `{"id":%q,"status":"done","result":{"n":1}}`, id)
			}
		case "sha256:bb":
			fmt.Fprintf(w, `{"id":%q,"status":"done","result":{"n":2}}`, id)
		case "sha256:cc":
			fmt.Fprintf(w, `{"id":%q,"status":"failed","error":"boom"}`, id)
		default:
			t.Errorf("unexpected poll for %s", id)
		}
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	c, sleeps := newRecordingClient(t, ts.URL, Config{PollInterval: 25 * time.Millisecond})
	out := c.WaitBatch(context.Background(), []string{"sha256:aa", "sha256:bb", "sha256:cc"})
	if string(out[1].Result) != `{"n":2}` {
		t.Fatalf("job b result = %s, want {\"n\":2}", out[1].Result)
	}
	if string(out[0].Result) != `{"n":1}` {
		t.Fatalf("job a result = %s, want {\"n\":1}", out[0].Result)
	}
	if !errors.Is(out[2].Err, ErrJobFailed) {
		t.Fatalf("job c err = %v, want ErrJobFailed", out[2].Err)
	}
	// Round 1 polls all three (b done, c failed), round 2 polls a
	// alone: exactly one inter-round sleep at PollInterval.
	if len(*sleeps) != 1 || (*sleeps)[0] != 25*time.Millisecond {
		t.Fatalf("sleeps = %v, want one 25ms inter-round sleep", *sleeps)
	}
}

func TestWaitBatchContextExpiry(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"id":"sha256:aa","status":"running"}`)
	}))
	defer ts.Close()

	c, _ := newRecordingClient(t, ts.URL, Config{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out := c.WaitBatch(ctx, []string{"sha256:aa", ""})
	if !errors.Is(out[0].Err, context.Canceled) {
		t.Fatalf("pending job err = %v, want context.Canceled", out[0].Err)
	}
	if !errors.Is(out[1].Err, ErrConfig) {
		t.Fatalf("empty id err = %v, want ErrConfig", out[1].Err)
	}
}
