package client

// Decoding tests for the v1 error envelope (and its legacy
// predecessor): non-2xx bodies become *APIError, invalid_config maps
// onto the ErrConfig sentinel, and retry_after_ms seeds the retry
// schedule when the Retry-After header is absent.

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// TestDecodeV1Envelope: the nested shape carries class, message and
// the millisecond retry hint.
func TestDecodeV1Envelope(t *testing.T) {
	e := decodeAPIError(429, []byte(`{"error":{"class":"queue_full","message":"try later","retry_after_ms":1500}}`))
	if e.Class != "queue_full" || e.Message != "try later" {
		t.Fatalf("decoded %+v", e)
	}
	if e.retryAfter != 1500*time.Millisecond {
		t.Fatalf("retryAfter %v, want 1.5s", e.retryAfter)
	}
	if !e.Temporary() {
		t.Fatal("429 queue_full not temporary")
	}
}

// TestDecodeLegacyEnvelope: the pre-PR-8 flat shape still decodes, so
// the client can talk to one release older servers.
func TestDecodeLegacyEnvelope(t *testing.T) {
	e := decodeAPIError(400, []byte(`{"error":"bad topo","class":"invalid_config"}`))
	if e.Class != "invalid_config" || e.Message != "bad topo" {
		t.Fatalf("decoded %+v", e)
	}
}

// TestDecodeGarbageBody: a non-JSON body from an intermediary still
// produces a usable APIError.
func TestDecodeGarbageBody(t *testing.T) {
	e := decodeAPIError(502, []byte("<html>bad gateway</html>"))
	if e.Class != "unknown" || e.Status != 502 {
		t.Fatalf("decoded %+v", e)
	}
}

// TestInvalidConfigMatchesErrConfig: a server-side invalid_config
// rejection satisfies errors.Is(err, ErrConfig) — callers classify a
// bad request identically whether the client or the server caught it.
func TestInvalidConfigMatchesErrConfig(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusBadRequest)
		fmt.Fprint(w, `{"error":{"class":"invalid_config","message":"bad topology"}}`)
	}))
	defer ts.Close()
	c, err := New(Config{BaseURL: ts.URL})
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Predict(context.Background(), PredictRequest{})
	if !errors.Is(err, ErrConfig) {
		t.Fatalf("server invalid_config does not match ErrConfig: %v", err)
	}
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != 400 {
		t.Fatalf("want *APIError with status 400, got %v", err)
	}
	// Other classes must NOT match ErrConfig.
	other := &APIError{Status: 429, Class: "queue_full"}
	if errors.Is(other, ErrConfig) {
		t.Fatal("queue_full matched ErrConfig")
	}
}

// TestRetryAfterBodyFallback: with no Retry-After header, the
// envelope's retry_after_ms drives the backoff schedule.
func TestRetryAfterBodyFallback(t *testing.T) {
	var calls int
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls++
		if calls == 1 {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprint(w, `{"error":{"class":"queue_full","message":"busy","retry_after_ms":1}}`)
			return
		}
		fmt.Fprint(w, `{"ok":true}`)
	}))
	defer ts.Close()
	c, err := New(Config{BaseURL: ts.URL, MaxAttempts: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Health(context.Background()); err != nil {
		t.Fatalf("health after retry: %v", err)
	}
	if calls != 2 {
		t.Fatalf("%d calls, want 2", calls)
	}
}
