// Package starperf reproduces "Analytical Performance Modelling of
// Adaptive Wormhole Routing in the Star Interconnection Network"
// (Kiasari, Sarbazi-Azad, Ould-Khaoua; IPDPS 2006): the first
// analytical model of mean message latency in wormhole-switched star
// graphs under the fully adaptive Enhanced-Nbc routing algorithm,
// validated against a flit-level discrete-event simulator.
//
// The library lives under internal/: the star-graph and hypercube
// topologies, the NHop/Nbc/Enhanced-Nbc routing family, the
// cycle-accurate wormhole simulator, the queueing building blocks,
// the analytical model itself, and the experiment harness that
// regenerates every panel of the paper's Figure 1 plus the extension
// studies. The top-level bench_test.go exposes one benchmark per
// reproduced figure panel; see DESIGN.md for the experiment index and
// EXPERIMENTS.md for paper-vs-measured results.
package starperf
