package cluster

import (
	"errors"
	"fmt"
	"testing"

	"starperf/internal/cfgerr"
)

// testKeys returns n distinct sha256-shaped job ids.
func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("sha256:%064x", i)
	}
	return keys
}

func mustRing(t *testing.T, cfg Config) *Ring {
	t.Helper()
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestRingAgreesAcrossMembers pins the property the cluster stands
// on: every member, given the same membership (however spelled),
// places every key identically.
func TestRingAgreesAcrossMembers(t *testing.T) {
	members := []string{"a:1", "b:2", "c:3"}
	rings := []*Ring{
		mustRing(t, Config{Self: "a:1", Peers: []string{"b:2", "c:3"}}),
		mustRing(t, Config{Self: "b:2", Peers: []string{"c:3", "a:1"}}),
		mustRing(t, Config{Self: "c:3", Peers: []string{"a:1", "b:2", "c:3"}}), // self in peers too
	}
	for _, r := range rings {
		if got := r.Members(); len(got) != len(members) {
			t.Fatalf("members = %v, want %v", got, members)
		}
	}
	for _, key := range testKeys(256) {
		owner := rings[0].Owner(key)
		order := fmt.Sprint(rings[0].Successors(key))
		for _, r := range rings {
			if r.Owner(key) != owner {
				t.Fatalf("ring of %s owns %s to %s, ring of %s to %s",
					rings[0].Self(), key, owner, r.Self(), r.Owner(key))
			}
			if fmt.Sprint(r.Successors(key)) != order {
				t.Fatalf("successor order diverged for %s", key)
			}
		}
	}
}

// TestSuccessorsCoverAllMembersOwnerFirst checks the failover order's
// shape: owner first, every member exactly once.
func TestSuccessorsCoverAllMembersOwnerFirst(t *testing.T) {
	r := mustRing(t, Config{Self: "a:1", Peers: []string{"b:2", "c:3", "d:4"}})
	for _, key := range testKeys(64) {
		succ := r.Successors(key)
		if len(succ) != r.Size() {
			t.Fatalf("successors %v do not cover the %d members", succ, r.Size())
		}
		if succ[0] != r.Owner(key) {
			t.Fatalf("successors %v do not start with owner %s", succ, r.Owner(key))
		}
		seen := map[string]bool{}
		for _, s := range succ {
			if seen[s] {
				t.Fatalf("successors %v repeat %s", succ, s)
			}
			seen[s] = true
		}
	}
}

// TestRingBalance checks virtual nodes spread keys: no member of a
// 3-node ring owns less than half or more than double its fair share.
func TestRingBalance(t *testing.T) {
	r := mustRing(t, Config{Self: "a:1", Peers: []string{"b:2", "c:3"}})
	counts := map[string]int{}
	keys := testKeys(3000)
	for _, key := range keys {
		counts[r.Owner(key)]++
	}
	fair := len(keys) / r.Size()
	for _, m := range r.Members() {
		if counts[m] < fair/2 || counts[m] > fair*2 {
			t.Fatalf("member %s owns %d of %d keys (fair share %d): ring is unbalanced",
				m, counts[m], len(keys), fair)
		}
	}
}

// TestRingConsistency pins the "consistent" in consistent hashing:
// removing one member only remaps the keys that member owned.
func TestRingConsistency(t *testing.T) {
	full := mustRing(t, Config{Self: "a:1", Peers: []string{"b:2", "c:3", "d:4"}})
	without := mustRing(t, Config{Self: "a:1", Peers: []string{"b:2", "c:3"}})
	for _, key := range testKeys(512) {
		was := full.Owner(key)
		now := without.Owner(key)
		if was != "d:4" && now != was {
			t.Fatalf("key %s moved %s → %s though its owner never left", key, was, now)
		}
		if was == "d:4" && now != full.Successors(key)[1] {
			t.Fatalf("orphaned key %s went to %s, want the old ring's first successor %s",
				key, now, full.Successors(key)[1])
		}
	}
}

// TestSingleNodeRing: a peerless ring owns everything itself.
func TestSingleNodeRing(t *testing.T) {
	r := mustRing(t, Config{Self: "a:1"})
	for _, key := range testKeys(16) {
		if !r.Owns(key) {
			t.Fatalf("single-node ring does not own %s", key)
		}
		if succ := r.Successors(key); len(succ) != 1 || succ[0] != "a:1" {
			t.Fatalf("successors = %v", succ)
		}
	}
}

func TestRingConfigErrors(t *testing.T) {
	cases := []Config{
		{},                                 // no self
		{Self: "  "},                       // blank self
		{Self: "a:1", Peers: []string{""}}, // blank peer
		{Self: "a:1", VirtualNodes: -1},    // negative vnodes
		{Self: "a:1", VirtualNodes: MaxVirtualNodes + 1}, // over cap
	}
	for i, cfg := range cases {
		if _, err := New(cfg); !errors.Is(err, cfgerr.ErrInvalid) {
			t.Errorf("case %d: err = %v, want cfgerr.ErrInvalid", i, err)
		}
	}
}

func TestVirtualNodesDefaultAndOverride(t *testing.T) {
	r := mustRing(t, Config{Self: "a:1"})
	if r.VirtualNodes() != DefaultVirtualNodes {
		t.Fatalf("default vnodes = %d", r.VirtualNodes())
	}
	r = mustRing(t, Config{Self: "a:1", VirtualNodes: 7})
	if r.VirtualNodes() != 7 || len(r.points) != 7 {
		t.Fatalf("vnodes = %d, points = %d, want 7", r.VirtualNodes(), len(r.points))
	}
}
