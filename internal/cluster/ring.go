// Package cluster is the static-membership consistent-hash ring
// behind the sharded starperfd deployment: a deterministic mapping
// from content-hash job ids ("sha256:<hex>", internal/jobs.Hash) to
// the cluster member that owns them, plus the failover order every
// other member agrees on.
//
// Determinism is the whole point. Every node (and the public client)
// builds the ring from the same member list and must place every key
// identically, or two nodes would both believe they own a job and the
// cluster would duplicate work it was built to share. The ring
// therefore depends only on its inputs: member addresses and the
// virtual-node count, hashed with SHA-256. No clock, no randomness,
// no map iteration — the same Config yields the same ring on every
// build, every machine, every run.
//
// Correctness under ownership mistakes is inherited from content
// addressing, not from the ring: any replica's recompute of a job id
// is byte-identical (pinned by the serving-layer tests), so a stale
// member list or a mid-failover race costs duplicated work, never a
// wrong answer. That is what makes static membership enough here —
// the ring is a routing optimisation over a cluster that is already
// correct with no routing at all.
//
// Virtual nodes smooth the key distribution: each member is hashed
// onto the ring VirtualNodes times, so the expected load imbalance
// between members shrinks roughly with 1/sqrt(VirtualNodes·members).
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
	"strconv"
	"strings"

	"starperf/internal/cfgerr"
)

// DefaultVirtualNodes is the per-member virtual-node count when
// Config leaves it zero: enough to keep the expected imbalance of a
// small static cluster within a few percent, cheap enough that ring
// construction stays microseconds.
const DefaultVirtualNodes = 64

// MaxVirtualNodes bounds the configurable virtual-node count.
const MaxVirtualNodes = 4096

// Config describes a ring. Self is required; Peers lists the other
// members (Self may appear in it too — membership is the deduplicated
// union). Every member of the cluster must be configured with the
// same member set and VirtualNodes, or their rings disagree.
type Config struct {
	// Self is this node's advertised address ("host:port"), the name
	// peers reach it by.
	Self string
	// Peers are the other members' advertised addresses.
	Peers []string
	// VirtualNodes is the per-member point count on the ring
	// (default DefaultVirtualNodes, max MaxVirtualNodes).
	VirtualNodes int
}

// point is one virtual node: a position on the 64-bit ring and the
// member it routes to.
type point struct {
	hash uint64
	node string
}

// Ring is an immutable consistent-hash ring. Construct with New;
// safe for concurrent use (it is never mutated after construction).
type Ring struct {
	self         string
	members      []string // sorted, deduplicated, includes self
	virtualNodes int
	points       []point // sorted by hash, ties broken by node
}

// New validates cfg and builds its ring.
func New(cfg Config) (*Ring, error) {
	self := strings.TrimSpace(cfg.Self)
	if self == "" {
		return nil, cfgerr.New("cluster: Self address is required")
	}
	if cfg.VirtualNodes < 0 || cfg.VirtualNodes > MaxVirtualNodes {
		return nil, cfgerr.Errorf("cluster: VirtualNodes %d outside 0..%d", cfg.VirtualNodes, MaxVirtualNodes)
	}
	vn := cfg.VirtualNodes
	if vn == 0 {
		vn = DefaultVirtualNodes
	}
	members := make([]string, 0, len(cfg.Peers)+1)
	members = append(members, self)
	for _, p := range cfg.Peers {
		p = strings.TrimSpace(p)
		if p == "" {
			return nil, cfgerr.New("cluster: empty peer address")
		}
		members = append(members, p)
	}
	sort.Strings(members)
	members = dedupeSorted(members)
	r := &Ring{self: self, members: members, virtualNodes: vn}
	r.points = make([]point, 0, len(members)*vn)
	for _, m := range members {
		for i := 0; i < vn; i++ {
			r.points = append(r.points, point{hash: pointHash(m, i), node: m})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		return r.points[a].node < r.points[b].node // deterministic tie-break
	})
	return r, nil
}

// dedupeSorted removes adjacent duplicates from a sorted slice.
func dedupeSorted(s []string) []string {
	out := s[:0]
	for i, v := range s {
		if i == 0 || v != s[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// pointHash places virtual node i of member m on the 64-bit ring.
func pointHash(m string, i int) uint64 {
	sum := sha256.Sum256([]byte(m + "#" + strconv.Itoa(i)))
	return binary.BigEndian.Uint64(sum[:8])
}

// keyHash places a job id on the ring.
func keyHash(key string) uint64 {
	sum := sha256.Sum256([]byte(key))
	return binary.BigEndian.Uint64(sum[:8])
}

// Self returns this node's advertised address.
func (r *Ring) Self() string { return r.self }

// Members returns the full member list, sorted. The slice is shared;
// callers must not mutate it.
func (r *Ring) Members() []string { return r.members }

// Size returns the member count.
func (r *Ring) Size() int { return len(r.members) }

// VirtualNodes returns the per-member virtual-node count, which
// clients need to rebuild an identical ring.
func (r *Ring) VirtualNodes() int { return r.virtualNodes }

// start returns the index of the first ring point at or clockwise of
// key's position (wrapping past the top).
func (r *Ring) start(key string) int {
	h := keyHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return i
}

// Owner returns the member that owns key: the node of the first
// virtual node clockwise of the key's hash.
func (r *Ring) Owner(key string) string {
	return r.points[r.start(key)].node
}

// Successors returns every member in key's preference order: the
// owner first, then each further member in the order their virtual
// nodes appear clockwise. This is the failover order — when the owner
// is unreachable the job falls to Successors(key)[1], and so on; all
// members agree on it, so two nodes failing over the same job
// converge on the same substitute.
func (r *Ring) Successors(key string) []string {
	out := make([]string, 0, len(r.members))
	seen := make(map[string]bool, len(r.members))
	for i, n := r.start(key), 0; n < len(r.points); i, n = (i+1)%len(r.points), n+1 {
		node := r.points[i].node
		if !seen[node] {
			seen[node] = true
			out = append(out, node)
			if len(out) == len(r.members) {
				break
			}
		}
	}
	return out
}

// Owns reports whether this node owns key.
func (r *Ring) Owns(key string) bool { return r.Owner(key) == r.self }
