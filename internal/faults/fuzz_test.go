package faults

import (
	"sync"
	"testing"

	"starperf/internal/hypercube"
	"starperf/internal/stargraph"
	"starperf/internal/topology"
)

// fuzzTops caches the small topologies the fuzzer degrades, so fuzz
// executions do not rebuild node tables; all are immutable after
// construction and safe for the fuzzer's parallel workers.
var fuzzTops sync.Map // int -> topology.Topology

func fuzzTop(sel int) topology.Topology {
	if g, ok := fuzzTops.Load(sel); ok {
		return g.(topology.Topology)
	}
	var g topology.Topology
	switch sel {
	case 0:
		g = stargraph.MustNew(3)
	case 1:
		g = stargraph.MustNew(4)
	case 2:
		g = hypercube.MustNew(3)
	default:
		g = hypercube.MustNew(4)
	}
	got, _ := fuzzTops.LoadOrStore(sel, g)
	return got.(topology.Topology)
}

// oracleDistances computes the all-pairs distances of a degraded
// topology by BFS over the wrapper's own adjacency (Neighbor and
// HasChannel), independent of the Faulted distance table it checks.
func oracleDistances(f *Faulted) []int {
	n, deg := f.N(), f.Degree()
	dist := make([]int, n*n)
	for i := range dist {
		dist[i] = -1
	}
	for src := 0; src < n; src++ {
		if !f.NodeUp(src) {
			continue
		}
		row := dist[src*n : (src+1)*n]
		row[src] = 0
		queue := []int{src}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for dim := 0; dim < deg; dim++ {
				if !f.HasChannel(cur, dim) {
					continue
				}
				nbr := f.Neighbor(cur, dim)
				if nbr < 0 || row[nbr] >= 0 {
					continue
				}
				row[nbr] = row[cur] + 1
				queue = append(queue, nbr)
			}
		}
	}
	return dist
}

// FuzzFaultReachability cross-checks the Faulted wrapper against an
// independent BFS oracle on arbitrary seed-drawn fault plans over
// S_3, S_4, Q_3 and Q_4: the precomputed distance table, the
// symmetry of the masks, the reachability verdict and the stranded
// set must all agree with plain BFS over the wrapper's adjacency.
func FuzzFaultReachability(f *testing.F) {
	f.Add(uint8(0), uint64(1), uint8(1), uint8(0))
	f.Add(uint8(1), uint64(42), uint8(3), uint8(1))
	f.Add(uint8(2), uint64(7), uint8(2), uint8(2))
	f.Add(uint8(3), uint64(99), uint8(5), uint8(0))
	f.Fuzz(func(t *testing.T, topSel uint8, seed uint64, failLinks, failNodes uint8) {
		top := fuzzTop(int(topSel % 4))
		opts := Options{
			FailLinks:         int(failLinks % 8),
			FailNodes:         int(failNodes % 3),
			AllowDisconnected: true,
		}
		if opts.FailNodes > top.N()-2 {
			opts.FailNodes = top.N() - 2
		}
		plan, err := NewPlan(top, seed, opts)
		if err != nil {
			t.Skip() // topology too small to host the drawn fault count
		}
		ft, err := Apply(top, plan)
		if err != nil {
			t.Fatalf("Apply rejected its own NewPlan output: %v", err)
		}

		n := top.N()
		oracle := oracleDistances(ft)
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				want := oracle[a*n+b]
				if !ft.NodeUp(a) || !ft.NodeUp(b) {
					want = -1
					if a == b && ft.NodeUp(a) {
						want = 0
					}
				}
				if got := ft.Distance(a, b); got != want {
					t.Fatalf("%s: Distance(%d,%d) = %d, BFS oracle says %d",
						ft.Name(), a, b, got, want)
				}
			}
		}

		// masks are physically symmetric: a channel exists iff some
		// reverse channel exists
		for node := 0; node < n; node++ {
			for dim := 0; dim < top.Degree(); dim++ {
				if !ft.HasChannel(node, dim) {
					continue
				}
				nbr := ft.Neighbor(node, dim)
				back := false
				for d := 0; d < top.Degree(); d++ {
					if ft.HasChannel(nbr, d) && ft.Neighbor(nbr, d) == node {
						back = true
					}
				}
				if !back {
					t.Fatalf("%s: channel (%d,%d) alive but no reverse channel", ft.Name(), node, dim)
				}
			}
		}

		// the reachability verdict must match the oracle's view from
		// the lowest live node
		r := CheckReachability(top, plan)
		start := -1
		live := 0
		for node := 0; node < n; node++ {
			if ft.NodeUp(node) {
				live++
				if start < 0 {
					start = node
				}
			}
		}
		if r.Live != live {
			t.Fatalf("Live = %d, oracle counts %d", r.Live, live)
		}
		var stranded []int
		for node := 0; node < n; node++ {
			if ft.NodeUp(node) && node != start && oracle[start*n+node] < 0 {
				stranded = append(stranded, node)
			}
		}
		if r.Connected != (len(stranded) == 0) {
			t.Fatalf("Connected = %v but oracle strands %v", r.Connected, stranded)
		}
		if len(r.Stranded) != len(stranded) {
			t.Fatalf("Stranded = %v, oracle says %v", r.Stranded, stranded)
		}
		for i := range stranded {
			if r.Stranded[i] != stranded[i] {
				t.Fatalf("Stranded = %v, oracle says %v", r.Stranded, stranded)
			}
		}
	})
}
