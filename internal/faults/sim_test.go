package faults_test

import (
	"errors"
	"math"
	"testing"

	"starperf/internal/desim"
	"starperf/internal/faults"
	"starperf/internal/hypercube"
	"starperf/internal/routing"
	"starperf/internal/stargraph"
)

// TestFaultedStarDeadlockFree is the acceptance scenario: a
// simulation on S4 with one failed link must complete, stay
// deadlock-free under Enhanced-Nbc, and be byte-identical across two
// runs with the same fault seed.
func TestFaultedStarDeadlockFree(t *testing.T) {
	g := stargraph.MustNew(4)
	plan, err := faults.NewPlan(g, 5, faults.Options{FailLinks: 1})
	if err != nil {
		t.Fatal(err)
	}
	ft, err := faults.Apply(g, plan)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := routing.New(routing.EnhancedNbc, ft, 6)
	if err != nil {
		t.Fatal(err)
	}
	run := func() *desim.Result {
		res, err := desim.Run(desim.Config{
			Top: ft, Spec: spec, Policy: routing.PreferClassA,
			Rate: 0.02, MsgLen: 16, Seed: 11,
			WarmupCycles: 2000, MeasureCycles: 8000,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	r1 := run()
	if r1.Deadlocked || r1.Aborted {
		t.Fatalf("faulted S4 not deadlock-free: Deadlocked=%v Aborted=%v (%s)",
			r1.Deadlocked, r1.Aborted, r1.AbortReason)
	}
	if r1.Delivered == 0 || r1.MeasuredDelivered == 0 || !r1.Drained {
		t.Fatalf("degraded network did not deliver: %+v", r1)
	}
	r2 := run()
	if r1.Delivered != r2.Delivered || r1.Generated != r2.Generated ||
		math.Float64bits(r1.Latency.Mean()) != math.Float64bits(r2.Latency.Mean()) ||
		math.Float64bits(r1.Latency.Variance()) != math.Float64bits(r2.Latency.Variance()) ||
		r1.Cycles != r2.Cycles {
		t.Fatal("two runs with the same fault seed diverged")
	}
}

// TestFlapsForceMisroutes drives S4 through an aggressive flap
// schedule (links down 75% of every window) and checks the simulator
// exercises the non-minimal fallback, delivers traffic, and stays
// deterministic.
func TestFlapsForceMisroutes(t *testing.T) {
	g := stargraph.MustNew(4)
	plan, err := faults.NewPlan(g, 23, faults.Options{
		Flaps: 6, FlapPeriod: 128, FlapDown: 96,
	})
	if err != nil {
		t.Fatal(err)
	}
	ft := faults.MustApply(g, plan)
	spec, err := routing.New(routing.EnhancedNbc, ft, 6)
	if err != nil {
		t.Fatal(err)
	}
	run := func() *desim.Result {
		res, err := desim.Run(desim.Config{
			Top: ft, Spec: spec, Policy: routing.PreferClassA,
			Rate: 0.02, MsgLen: 8, Seed: 3,
			WarmupCycles: 2000, MeasureCycles: 8000,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	res := run()
	if res.Deadlocked || res.Aborted {
		t.Fatalf("flapping S4 aborted: %s", res.AbortReason)
	}
	if res.Misroutes == 0 {
		t.Fatal("aggressive flaps produced no misroutes — fallback never exercised")
	}
	if res.MeasuredDelivered == 0 {
		t.Fatal("no deliveries under flaps")
	}
	if res2 := run(); res2.Misroutes != res.Misroutes || res2.Delivered != res.Delivered {
		t.Fatal("flap schedule is not deterministic across runs")
	}
}

// TestUnreachableDestinationTyped strands a node with an
// AllowDisconnected plan and checks the simulator rejects traffic to
// it at injection with the typed routing.UnreachableError.
func TestUnreachableDestinationTyped(t *testing.T) {
	g := hypercube.MustNew(2)
	plan := &faults.Plan{
		Links:             []faults.Link{{Node: 0, Dim: 0}, {Node: 0, Dim: 1}},
		AllowDisconnected: true,
	}
	ft := faults.MustApply(g, plan)
	spec := routing.Spec{Kind: routing.NHop, V2: 2, MaxNeg: 1}
	_, err := desim.Run(desim.Config{
		Top: ft, Spec: spec,
		Rate: 0.05, MsgLen: 4, Seed: 1,
		WarmupCycles: 100, MeasureCycles: 2000,
	})
	var ue *routing.UnreachableError
	if !errors.As(err, &ue) {
		t.Fatalf("want *routing.UnreachableError, got %v", err)
	}
	if ue.Src != 0 && ue.Dst != 0 {
		t.Fatalf("stranded node 0 not involved: %+v", ue)
	}
}

// TestDeadNodeTrafficSkipped fails a node and checks the default
// pattern never addresses it: the run completes with no unreachable
// errors and the dead node receives nothing.
func TestDeadNodeTrafficSkipped(t *testing.T) {
	g := hypercube.MustNew(3)
	ft := faults.MustApply(g, &faults.Plan{Nodes: []int{5}})
	spec, err := routing.New(routing.NHop, ft, 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := desim.Run(desim.Config{
		Top: ft, Spec: spec,
		Rate: 0.03, MsgLen: 8, Seed: 2,
		WarmupCycles: 1000, MeasureCycles: 5000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Aborted || res.Deadlocked || res.MeasuredDelivered == 0 {
		t.Fatalf("degraded Q3 run unhealthy: %+v", res)
	}
}
