package faults

import (
	"reflect"
	"strings"
	"testing"

	"starperf/internal/hypercube"
	"starperf/internal/stargraph"
	"starperf/internal/topology"
)

func TestNewPlanDeterministic(t *testing.T) {
	g := stargraph.MustNew(4)
	opts := Options{FailLinks: 2, FailNodes: 1, Flaps: 1}
	p1, err := NewPlan(g, 42, opts)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := NewPlan(g, 42, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p1, p2) {
		t.Fatalf("same seed, different plans:\n%+v\n%+v", p1, p2)
	}
	p3, err := NewPlan(g, 43, opts)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(p1, p3) {
		t.Fatal("different seeds drew identical plans")
	}
	if len(p1.Links) != 2 || len(p1.Nodes) != 1 || len(p1.Flaps) != 1 {
		t.Fatalf("plan shape: %+v", p1)
	}
	// without AllowDisconnected, drawn plans must leave the network connected
	if r := CheckReachability(g, p1); !r.Connected {
		t.Fatalf("NewPlan returned a disconnecting plan: %+v", r)
	}
}

func TestNewPlanRejectsBadOptions(t *testing.T) {
	g := hypercube.MustNew(3)
	for _, opts := range []Options{
		{FailLinks: -1},
		{FailNodes: g.N() - 1},                     // fewer than two live nodes
		{Flaps: 1, FlapPeriod: 100, FlapDown: 100}, // down == period
		{Flaps: 1, FlapPeriod: -5},
	} {
		if _, err := NewPlan(g, 1, opts); err == nil {
			t.Errorf("NewPlan accepted %+v", opts)
		}
	}
}

func TestApplyFailsBothDirections(t *testing.T) {
	g := hypercube.MustNew(3)
	plan := &Plan{Links: []Link{{Node: 0, Dim: 1}}} // 0 <-> 2
	f, err := Apply(g, plan)
	if err != nil {
		t.Fatal(err)
	}
	if f.Neighbor(0, 1) != -1 || f.HasChannel(0, 1) {
		t.Fatal("forward channel survived the fault")
	}
	if f.Neighbor(2, 1) != -1 || f.HasChannel(2, 1) {
		t.Fatal("reverse channel survived the fault")
	}
	// the other channels are untouched
	if f.Neighbor(0, 0) != g.Neighbor(0, 0) || !f.HasChannel(0, 0) {
		t.Fatal("healthy channel masked")
	}
	// the base topology is not mutated
	if g.Neighbor(0, 1) != 2 {
		t.Fatal("base topology mutated")
	}
	var _ topology.Topology = f
	var _ topology.Partial = f
}

func TestApplyNodeFault(t *testing.T) {
	g := hypercube.MustNew(3)
	const dead = 5
	f, err := Apply(g, &Plan{Nodes: []int{dead}})
	if err != nil {
		t.Fatal(err)
	}
	if f.NodeUp(dead) || !f.NodeUp(0) {
		t.Fatal("NodeUp mask wrong")
	}
	for dim := 0; dim < g.Degree(); dim++ {
		if f.HasChannel(dead, dim) {
			t.Fatalf("dead node kept channel dim %d", dim)
		}
		nbr := g.Neighbor(dead, dim)
		for d := 0; d < g.Degree(); d++ {
			if g.Neighbor(nbr, d) == dead && f.HasChannel(nbr, d) {
				t.Fatalf("channel into dead node (%d,%d) survived", nbr, d)
			}
		}
	}
	if f.Distance(0, dead) != -1 || f.Distance(dead, 0) != -1 {
		t.Fatal("distance to a dead node must be -1")
	}
	// Q3 minus one node stays connected among live nodes
	if r := f.Reachability(); !r.Connected || r.Live != g.N()-1 {
		t.Fatalf("reachability: %+v", r)
	}
}

func TestApplyRejectsDisconnectingPlan(t *testing.T) {
	g := hypercube.MustNew(2) // 4-cycle
	plan := &Plan{Links: []Link{{Node: 0, Dim: 0}, {Node: 0, Dim: 1}}}
	_, err := Apply(g, plan)
	if err == nil {
		t.Fatal("disconnecting plan accepted")
	}
	if !strings.Contains(err.Error(), "stranded") {
		t.Fatalf("error does not report the stranded component: %v", err)
	}
	plan.AllowDisconnected = true
	f, err := Apply(g, plan)
	if err != nil {
		t.Fatal(err)
	}
	r := f.Reachability()
	if r.Connected || r.Live != 4 || len(r.Stranded) != 3 {
		t.Fatalf("reachability of isolated node 0: %+v", r)
	}
	if f.Distance(0, 3) != -1 {
		t.Fatal("stranded pair must report distance -1")
	}
}

func TestApplyRejectsBadLinksAndFlaps(t *testing.T) {
	g := hypercube.MustNew(3)
	for _, plan := range []*Plan{
		{Links: []Link{{Node: -1, Dim: 0}}},
		{Links: []Link{{Node: 0, Dim: 99}}},
		{Nodes: []int{g.N()}},
		{Flaps: []Flap{{Node: 0, Dim: 0, Period: 8, Down: 8}}},
		{Flaps: []Flap{{Node: 0, Dim: 0, Period: 0, Down: 0}}},
		{Flaps: []Flap{{Node: 0, Dim: 99, Period: 8, Down: 2}}},
		// flap on a permanently failed link is contradictory
		{Links: []Link{{Node: 0, Dim: 0}}, Flaps: []Flap{{Node: 0, Dim: 0, Period: 8, Down: 2}}},
	} {
		if _, err := Apply(g, plan); err == nil {
			t.Errorf("Apply accepted invalid plan %+v", plan)
		}
	}
}

func TestDistancesRecomputed(t *testing.T) {
	g := stargraph.MustNew(4)
	plan, err := NewPlan(g, 7, Options{FailLinks: 2})
	if err != nil {
		t.Fatal(err)
	}
	f, err := Apply(g, plan)
	if err != nil {
		t.Fatal(err)
	}
	if f.Diameter() < g.Diameter() {
		t.Fatalf("degraded diameter %d below pristine %d", f.Diameter(), g.Diameter())
	}
	grew := false
	for a := 0; a < g.N(); a++ {
		for b := 0; b < g.N(); b++ {
			df, db := f.Distance(a, b), g.Distance(a, b)
			if df < db {
				t.Fatalf("d(%d,%d): faulted %d < pristine %d", a, b, df, db)
			}
			if df != f.Distance(b, a) {
				t.Fatalf("asymmetric faulted distance (%d,%d)", a, b)
			}
			if df > db {
				grew = true
			}
		}
	}
	if !grew {
		t.Fatal("failing two links changed no distance — masks not applied?")
	}
	// every profitable dim must step exactly one closer on the degraded graph
	for a := 0; a < g.N(); a++ {
		for b := 0; b < g.N(); b++ {
			if a == b {
				continue
			}
			dims := f.ProfitableDims(a, b, nil)
			if len(dims) == 0 {
				t.Fatalf("no profitable dim for reachable pair (%d,%d)", a, b)
			}
			for _, dim := range dims {
				nbr := f.Neighbor(a, dim)
				if nbr < 0 || f.Distance(nbr, b) != f.Distance(a, b)-1 {
					t.Fatalf("dim %d at (%d,%d) not minimal", dim, a, b)
				}
			}
		}
	}
}

func TestColorPreserved(t *testing.T) {
	g := stargraph.MustNew(4)
	plan, err := NewPlan(g, 3, Options{FailLinks: 1, FailNodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	f := MustApply(g, plan)
	for node := 0; node < g.N(); node++ {
		if f.Color(node) != g.Color(node) {
			t.Fatalf("masking changed the bipartition at node %d", node)
		}
	}
}

func TestFlapWindowCoversBothDirections(t *testing.T) {
	g := hypercube.MustNew(3)
	plan := &Plan{Flaps: []Flap{{Node: 1, Dim: 2, Period: 64, Down: 16, Phase: 5}}}
	f := MustApply(g, plan)
	nbr := g.Neighbor(1, 2)
	check := func(node, dim int) {
		period, down, phase, ok := f.FlapWindow(node, dim)
		if !ok || period != 64 || down != 16 || phase != 5 {
			t.Fatalf("FlapWindow(%d,%d) = %d/%d/%d ok=%v", node, dim, period, down, phase, ok)
		}
	}
	check(1, 2)
	// the reverse channel of the same physical link flaps identically
	var revDim = -1
	for d := 0; d < g.Degree(); d++ {
		if g.Neighbor(nbr, d) == 1 {
			revDim = d
		}
	}
	check(nbr, revDim)
	if _, _, _, ok := f.FlapWindow(0, 0); ok {
		t.Fatal("non-flapping channel reported a window")
	}
	// flaps are transient: they do not enter the static masks
	if !f.HasChannel(1, 2) || f.Neighbor(1, 2) != nbr {
		t.Fatal("flap leaked into the static channel mask")
	}
}

func TestApplyDeterministic(t *testing.T) {
	g := stargraph.MustNew(4)
	plan, err := NewPlan(g, 11, Options{FailLinks: 2, Flaps: 1})
	if err != nil {
		t.Fatal(err)
	}
	f1 := MustApply(g, plan)
	f2 := MustApply(g, plan)
	if f1.Name() != f2.Name() || f1.Diameter() != f2.Diameter() ||
		f1.AvgDistance() != f2.AvgDistance() {
		t.Fatal("Apply is not deterministic")
	}
	for i := 0; i < g.N()*g.N(); i++ {
		if f1.Distance(i/g.N(), i%g.N()) != f2.Distance(i/g.N(), i%g.N()) {
			t.Fatal("distance tables differ between identical applications")
		}
	}
}
