// Package faults implements deterministic fault injection for the
// simulator's topologies: seed-driven fault plans (permanently failed
// links, failed nodes, transient link flaps with periodic up/down
// windows) and a Faulted wrapper that presents the degraded network
// through the ordinary topology.Topology interface, so the routing
// layer and the flit-level simulator run on it unchanged.
//
// Masking is physical: failing a link removes the channel in both
// directions, and failing a node removes every channel incident to
// it. Because every base topology is bipartite and its links are
// transpositions of the bipartition, masking preserves bipartiteness,
// so the negative-hop deadlock-freedom argument survives — provided
// distances and the diameter are recomputed on the masked graph,
// which Faulted does by breadth-first search at construction. Plans
// that disconnect the network are rejected (or, with
// Plan.AllowDisconnected, accepted and reported), mirroring the
// fault-tolerant-routing literature's insistence that a router first
// know which destinations remain reachable.
//
// Everything is deterministic: plans are drawn from a seeded
// splittable PRNG (traffic.RNG), flap windows are pure functions of
// the cycle counter, and no map iteration or wall-clock read occurs
// anywhere in the package.
package faults

import (
	"fmt"

	"starperf/internal/cfgerr"
	"starperf/internal/topology"
	"starperf/internal/traffic"
)

// MaxNodes bounds the networks Faulted will wrap: the wrapper stores
// an all-pairs distance table (N² int16 entries) because closed-form
// distances are wrong on a degraded graph. 5040 = |S_7| keeps the
// table around 50 MB; larger networks need a different representation
// and are rejected.
const MaxNodes = 5040

// Link identifies one directed channel (node, dim) of a topology;
// failing it also fails the paired reverse channel(s), because a
// fault takes out the physical link, not one direction of it.
type Link struct {
	Node, Dim int
}

// Flap describes a transient link fault: the physical link carrying
// channel (Node, Dim) — both directions — is down for Down cycles at
// the start of every Period-cycle window, shifted by Phase. The link
// is down at cycle t iff (t+Phase) mod Period < Down. Down must be
// strictly less than Period; a permanently dead link belongs in
// Plan.Links so that reachability and distances account for it.
type Flap struct {
	Node, Dim           int
	Period, Down, Phase int64
}

// Plan is one reproducible fault scenario. Plans are value objects:
// the same plan applied to the same topology always yields the same
// Faulted wrapper, and the simulator is byte-deterministic across
// runs for a fixed (Config, Plan) pair.
type Plan struct {
	// Seed identifies the plan (NewPlan draws from it); it is carried
	// for labelling and has no effect in Apply.
	Seed uint64
	// Links are permanently failed links (each fails both directions).
	Links []Link
	// Nodes are failed nodes: every incident channel is removed and
	// the node neither generates nor receives traffic.
	Nodes []int
	// Flaps are transient link faults wired into the simulator's
	// event loop.
	Flaps []Flap
	// AllowDisconnected accepts plans whose static faults disconnect
	// the live nodes. Apply then reports the stranded component via
	// Faulted.Reachability instead of failing, and the simulator
	// rejects messages to unreachable destinations at injection with
	// a typed routing.UnreachableError.
	AllowDisconnected bool
}

// String summarises the plan.
func (p *Plan) String() string {
	return fmt.Sprintf("faults{seed=%#x links=%d nodes=%d flaps=%d}",
		p.Seed, len(p.Links), len(p.Nodes), len(p.Flaps))
}

// Options shapes the random plans drawn by NewPlan.
type Options struct {
	// FailLinks, FailNodes and Flaps are the number of faults of each
	// kind to draw.
	FailLinks, FailNodes, Flaps int
	// FlapPeriod and FlapDown are the flap window parameters
	// (defaults 2048 and 256 cycles); each drawn flap gets a
	// deterministic per-flap phase so flaps do not beat in unison.
	FlapPeriod, FlapDown int64
	// AllowDisconnected is copied into the plan; without it NewPlan
	// resamples (boundedly) until the drawn faults leave the live
	// nodes connected.
	AllowDisconnected bool
}

// planAttempts bounds how many candidate plans NewPlan draws before
// giving up on finding a connected one.
const planAttempts = 64

// NewPlan draws a deterministic fault plan for top from seed: opts
// counts of failed links, failed nodes and flapping links, sampled
// without replacement over the existing channels. Unless
// opts.AllowDisconnected is set, candidate plans whose static faults
// disconnect the live nodes are resampled (up to a bounded number of
// attempts) so the returned plan always describes a degraded but
// routable network.
func NewPlan(top topology.Topology, seed uint64, opts Options) (*Plan, error) {
	n, deg := top.N(), top.Degree()
	if n > MaxNodes {
		return nil, cfgerr.Errorf("faults: %s has %d nodes, above the supported %d",
			top.Name(), n, MaxNodes)
	}
	if opts.FailLinks < 0 || opts.FailNodes < 0 || opts.Flaps < 0 {
		return nil, cfgerr.Errorf("faults: negative fault count in %+v", opts)
	}
	if opts.FailNodes > n-2 {
		return nil, cfgerr.Errorf("faults: failing %d of %d nodes leaves fewer than two live nodes",
			opts.FailNodes, n)
	}
	if opts.FlapPeriod == 0 {
		opts.FlapPeriod = 2048
	}
	if opts.FlapDown == 0 {
		opts.FlapDown = 256
	}
	if opts.FlapPeriod < 0 || opts.FlapDown < 0 || opts.FlapDown >= opts.FlapPeriod {
		return nil, cfgerr.Errorf("faults: flap window %d/%d invalid (need 0 ≤ down < period)",
			opts.FlapDown, opts.FlapPeriod)
	}
	rng := traffic.NewRNG(seed)
	var lastErr error
	for attempt := 0; attempt < planAttempts; attempt++ {
		plan := &Plan{Seed: seed, AllowDisconnected: opts.AllowDisconnected}
		// failed nodes, distinct
		taken := make([]bool, n)
		for len(plan.Nodes) < opts.FailNodes {
			node := rng.Intn(n)
			if !taken[node] {
				taken[node] = true
				plan.Nodes = append(plan.Nodes, node)
			}
		}
		// failed links: distinct physical links between live nodes
		seen := make([]bool, n*deg)
		drawLink := func() (Link, bool) {
			for tries := 0; tries < 16*n*deg; tries++ {
				node, dim := rng.Intn(n), rng.Intn(deg)
				nbr := top.Neighbor(node, dim)
				if nbr < 0 || !topology.HasChannel(top, node, dim) {
					continue
				}
				if taken[node] || taken[nbr] || seen[node*deg+dim] {
					continue
				}
				seen[node*deg+dim] = true
				// mark every reverse channel too, so the physical
				// link is drawn at most once
				for d := 0; d < deg; d++ {
					if top.Neighbor(nbr, d) == node {
						seen[nbr*deg+d] = true
					}
				}
				return Link{Node: node, Dim: dim}, true
			}
			return Link{}, false
		}
		ok := true
		for i := 0; i < opts.FailLinks; i++ {
			l, found := drawLink()
			if !found {
				ok = false
				break
			}
			plan.Links = append(plan.Links, l)
		}
		for i := 0; ok && i < opts.Flaps; i++ {
			l, found := drawLink()
			if !found {
				ok = false
				break
			}
			plan.Flaps = append(plan.Flaps, Flap{
				Node: l.Node, Dim: l.Dim,
				Period: opts.FlapPeriod, Down: opts.FlapDown,
				Phase: int64(rng.Intn(int(opts.FlapPeriod))),
			})
		}
		if !ok {
			lastErr = cfgerr.Errorf("faults: %s cannot host %d failed + %d flapping links",
				top.Name(), opts.FailLinks, opts.Flaps)
			continue
		}
		if !opts.AllowDisconnected {
			if r := CheckReachability(top, plan); !r.Connected {
				lastErr = cfgerr.Errorf("faults: plan strands %d of %d live nodes", len(r.Stranded), r.Live)
				continue
			}
		}
		return plan, nil
	}
	return nil, fmt.Errorf("faults: no viable plan for %s after %d attempts: %w",
		top.Name(), planAttempts, lastErr)
}

// Reachability describes the static connectivity of a faulted
// topology (transient flaps do not count: a flapping link is up part
// of every window, so it never strands a node permanently).
type Reachability struct {
	// Connected reports whether every live node can reach every
	// other live node through non-failed channels.
	Connected bool
	// Live is the number of non-failed nodes.
	Live int
	// Stranded lists the live nodes unreachable from the
	// lowest-indexed live node, in ascending order (empty when
	// Connected).
	Stranded []int
}

// CheckReachability computes the static connectivity of top under
// plan's permanent faults by breadth-first search from the
// lowest-indexed live node.
func CheckReachability(top topology.Topology, plan *Plan) Reachability {
	down, nodeDown, err := buildMasks(top, plan)
	if err != nil {
		// An invalid plan reaches nothing; Apply surfaces the error.
		return Reachability{}
	}
	return reachabilityOf(top, down, nodeDown)
}

// buildMasks expands a plan into per-channel and per-node masks,
// failing both directions of every listed link and every channel
// incident to a failed node.
func buildMasks(top topology.Topology, plan *Plan) (down, nodeDown []bool, err error) {
	n, deg := top.N(), top.Degree()
	down = make([]bool, n*deg)
	nodeDown = make([]bool, n)
	for _, node := range plan.Nodes {
		if node < 0 || node >= n {
			return nil, nil, cfgerr.Errorf("faults: failed node %d outside [0,%d)", node, n)
		}
		nodeDown[node] = true
	}
	live := 0
	for _, d := range nodeDown {
		if !d {
			live++
		}
	}
	if live < 2 {
		return nil, nil, cfgerr.Errorf("faults: only %d live node(s) remain", live)
	}
	failBoth := func(node, dim int) error {
		if node < 0 || node >= n || dim < 0 || dim >= deg {
			return cfgerr.Errorf("faults: link (%d,%d) outside %s", node, dim, top.Name())
		}
		nbr := top.Neighbor(node, dim)
		if nbr < 0 || !topology.HasChannel(top, node, dim) {
			return cfgerr.Errorf("faults: link (%d,%d) does not exist in %s", node, dim, top.Name())
		}
		down[node*deg+dim] = true
		for d := 0; d < deg; d++ {
			if top.Neighbor(nbr, d) == node {
				down[nbr*deg+d] = true
			}
		}
		return nil
	}
	for _, l := range plan.Links {
		if err := failBoth(l.Node, l.Dim); err != nil {
			return nil, nil, err
		}
	}
	for node := 0; node < n; node++ {
		if !nodeDown[node] {
			continue
		}
		for dim := 0; dim < deg; dim++ {
			nbr := top.Neighbor(node, dim)
			if nbr < 0 || !topology.HasChannel(top, node, dim) {
				continue
			}
			down[node*deg+dim] = true
			for d := 0; d < deg; d++ {
				if top.Neighbor(nbr, d) == node {
					down[nbr*deg+d] = true
				}
			}
		}
	}
	return down, nodeDown, nil
}

// reachabilityOf runs the BFS behind CheckReachability. The masks are
// symmetric (links fail in both directions), so forward reachability
// from one live node decides connectivity of the whole live set.
func reachabilityOf(top topology.Topology, down, nodeDown []bool) Reachability {
	n, deg := top.N(), top.Degree()
	r := Reachability{}
	start := -1
	for node := 0; node < n; node++ {
		if !nodeDown[node] {
			r.Live++
			if start < 0 {
				start = node
			}
		}
	}
	if start < 0 {
		return r
	}
	visited := make([]bool, n)
	visited[start] = true
	queue := []int{start}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for dim := 0; dim < deg; dim++ {
			if down[cur*deg+dim] {
				continue
			}
			nbr := top.Neighbor(cur, dim)
			if nbr < 0 || !topology.HasChannel(top, cur, dim) || visited[nbr] {
				continue
			}
			visited[nbr] = true
			queue = append(queue, nbr)
		}
	}
	for node := 0; node < n; node++ {
		if !nodeDown[node] && !visited[node] {
			r.Stranded = append(r.Stranded, node)
		}
	}
	r.Connected = len(r.Stranded) == 0
	return r
}

// Faulted is a topology with a fault plan applied. It implements
// topology.Topology and topology.Partial: failed channels report
// HasChannel false and Neighbor −1 (the mesh convention), so the
// simulator's channel statistics skip them and minimal routing never
// selects one. Distances, the diameter and the average distance are
// recomputed on the masked graph by BFS — the closed-form formulas of
// the pristine topology are wrong once a link is gone, and the
// negative-hop feasibility windows (and therefore deadlock freedom)
// depend on exact degraded distances. Distance returns −1 for
// unreachable pairs, a documented deviation from the pristine
// Topology contract that the simulator converts into a typed
// routing.UnreachableError at injection.
//
// Transient flaps do not enter the static mask; the simulator polls
// them per cycle through the FlapWindow method and falls back to the
// routing layer's misroute eligibility when every profitable channel
// of a hop is transiently down.
type Faulted struct {
	base     topology.Topology
	plan     *Plan
	n, deg   int
	down     []bool  // node*deg+dim → statically failed
	nodeDown []bool  // node → failed
	dist     []int16 // a*n+b → masked distance, −1 unreachable
	diameter int
	avgDist  float64
	reach    Reachability
	name     string
}

// Apply wraps top with plan. It validates the plan against the
// topology, rejects plans that disconnect the live nodes unless
// plan.AllowDisconnected is set, and precomputes the masked all-pairs
// distance table (O(N²) memory, O(N²·deg) time — the price of exact
// degraded distances; see MaxNodes).
func Apply(top topology.Topology, plan *Plan) (*Faulted, error) {
	n, deg := top.N(), top.Degree()
	if n > MaxNodes {
		return nil, cfgerr.Errorf("faults: %s has %d nodes, above the supported %d",
			top.Name(), n, MaxNodes)
	}
	down, nodeDown, err := buildMasks(top, plan)
	if err != nil {
		return nil, err
	}
	for _, fl := range plan.Flaps {
		if fl.Node < 0 || fl.Node >= n || fl.Dim < 0 || fl.Dim >= deg ||
			top.Neighbor(fl.Node, fl.Dim) < 0 || !topology.HasChannel(top, fl.Node, fl.Dim) {
			return nil, cfgerr.Errorf("faults: flap on missing link (%d,%d)", fl.Node, fl.Dim)
		}
		if down[fl.Node*deg+fl.Dim] {
			return nil, cfgerr.Errorf("faults: flap on permanently failed link (%d,%d)", fl.Node, fl.Dim)
		}
		if fl.Period <= 0 || fl.Down < 0 || fl.Down >= fl.Period || fl.Phase < 0 {
			return nil, cfgerr.Errorf("faults: flap window %+v invalid (need period > down ≥ 0, phase ≥ 0)", fl)
		}
	}
	reach := reachabilityOf(top, down, nodeDown)
	if !reach.Connected && !plan.AllowDisconnected {
		sample := reach.Stranded
		if len(sample) > 8 {
			sample = sample[:8]
		}
		return nil, cfgerr.Errorf("faults: plan disconnects %s: %d of %d live nodes stranded (e.g. %v)",
			top.Name(), len(reach.Stranded), reach.Live, sample)
	}
	f := &Faulted{
		base: top, plan: plan, n: n, deg: deg,
		down: down, nodeDown: nodeDown,
		dist:  make([]int16, n*n),
		reach: reach,
		name:  fmt.Sprintf("%s+%s", top.Name(), plan),
	}
	f.computeDistances()
	return f, nil
}

// MustApply is Apply but panics on error.
func MustApply(top topology.Topology, plan *Plan) *Faulted {
	f, err := Apply(top, plan)
	if err != nil {
		panic(err)
	}
	return f
}

// computeDistances fills the all-pairs table by one BFS per source
// over the masked adjacency, and derives the diameter and average
// distance of the degraded graph.
func (f *Faulted) computeDistances() {
	for i := range f.dist {
		f.dist[i] = -1
	}
	queue := make([]int32, 0, f.n)
	var sum float64
	var pairs int64
	maxD := 0
	for src := 0; src < f.n; src++ {
		if f.nodeDown[src] {
			continue
		}
		row := f.dist[src*f.n : (src+1)*f.n]
		row[src] = 0
		queue = append(queue[:0], int32(src))
		for len(queue) > 0 {
			cur := int(queue[0])
			queue = queue[1:]
			d := row[cur]
			for dim := 0; dim < f.deg; dim++ {
				if f.down[cur*f.deg+dim] {
					continue
				}
				nbr := f.base.Neighbor(cur, dim)
				if nbr < 0 || !topology.HasChannel(f.base, cur, dim) || row[nbr] >= 0 {
					continue
				}
				row[nbr] = d + 1
				queue = append(queue, int32(nbr))
			}
		}
		for dst, d := range row {
			if dst == src || d < 0 {
				continue
			}
			sum += float64(d)
			pairs++
			if int(d) > maxD {
				maxD = int(d)
			}
		}
	}
	f.diameter = maxD
	if pairs > 0 {
		f.avgDist = sum / float64(pairs)
	}
}

// Name labels the instance with its base topology and plan summary.
func (f *Faulted) Name() string { return f.name }

// N returns the node count of the base topology (failed nodes keep
// their indices; they are masked, not renumbered).
func (f *Faulted) N() int { return f.n }

// Degree returns the base topology's degree.
func (f *Faulted) Degree() int { return f.deg }

// Base returns the wrapped pristine topology.
func (f *Faulted) Base() topology.Topology { return f.base }

// Plan returns the applied fault plan.
func (f *Faulted) Plan() *Plan { return f.plan }

// Reachability returns the static connectivity report computed at
// Apply time.
func (f *Faulted) Reachability() Reachability { return f.reach }

// Neighbor returns the node reached along dim, or −1 when the
// channel is statically failed (or missing in the base topology).
func (f *Faulted) Neighbor(node, dim int) int {
	if f.down[node*f.deg+dim] {
		return -1
	}
	return f.base.Neighbor(node, dim)
}

// HasChannel implements topology.Partial: a channel exists iff the
// base topology has it and the plan did not fail it.
func (f *Faulted) HasChannel(node, dim int) bool {
	return !f.down[node*f.deg+dim] &&
		f.base.Neighbor(node, dim) >= 0 && topology.HasChannel(f.base, node, dim)
}

// NodeUp reports whether a node survives the plan. The simulator
// skips arrival processes at failed nodes and draws default uniform
// destinations over live nodes only.
func (f *Faulted) NodeUp(node int) bool { return !f.nodeDown[node] }

// Distance returns the masked-graph distance, or −1 when dst is
// unreachable from src (stranded component or failed endpoint).
func (f *Faulted) Distance(a, b int) int { return int(f.dist[a*f.n+b]) }

// ProfitableDims appends the live dimensions at cur that lie on a
// minimal path of the degraded graph towards dst. Because distances
// are recomputed on the masked graph, the set is non-empty whenever
// dst is reachable and cur ≠ dst — static faults alone never strand a
// routable message mid-path.
func (f *Faulted) ProfitableDims(cur, dst int, buf []int) []int {
	if cur == dst {
		return buf
	}
	d := f.dist[cur*f.n+dst]
	if d < 0 {
		return buf
	}
	row := f.dist[dst*f.n:]
	for dim := 0; dim < f.deg; dim++ {
		if f.down[cur*f.deg+dim] {
			continue
		}
		nbr := f.base.Neighbor(cur, dim)
		if nbr < 0 || !topology.HasChannel(f.base, cur, dim) {
			continue
		}
		if row[nbr] == d-1 {
			buf = append(buf, dim)
		}
	}
	return buf
}

// Color delegates to the base topology: removing links or nodes
// never changes the bipartition.
func (f *Faulted) Color(node int) int { return f.base.Color(node) }

// Diameter returns the maximum finite pairwise distance of the
// degraded graph — it can exceed the pristine diameter, which is why
// routing specs must be resolved against the Faulted wrapper (the
// escape-level budget ⌈H/2⌉+1 depends on it).
func (f *Faulted) Diameter() int { return f.diameter }

// AvgDistance returns the mean distance over all ordered reachable
// pairs of live nodes. A degraded graph is no longer node-symmetric,
// so the fixed-source reading of the Topology contract does not
// apply; the all-pairs mean is the natural generalisation.
func (f *Faulted) AvgDistance() float64 { return f.avgDist }

// FlapWindow reports the transient flap window covering channel
// (node, dim), in either direction of the physical link; ok is false
// when the channel never flaps. The simulator queries this once per
// channel at start-up and evaluates the window against its cycle
// counter, keeping flap state deterministic and allocation-free.
func (f *Faulted) FlapWindow(node, dim int) (period, down, phase int64, ok bool) {
	nbr := f.base.Neighbor(node, dim)
	for _, fl := range f.plan.Flaps {
		if fl.Node == node && fl.Dim == dim {
			return fl.Period, fl.Down, fl.Phase, true
		}
		// reverse direction of the same physical link
		if fl.Node == nbr && f.base.Neighbor(fl.Node, fl.Dim) == node {
			return fl.Period, fl.Down, fl.Phase, true
		}
	}
	return 0, 0, 0, false
}
