// Package bounds computes deterministic worst-case end-to-end delay
// bounds for adaptive wormhole routing — the network-calculus
// complement to the paper's mean-latency model (see internal/model).
// Where the model answers "what latency will a message see on
// average", this engine answers "what latency will a flow never
// exceed", the guarantee production users ask of a serving system.
//
// The construction follows the classic wormhole network-calculus
// programme (Farhi & Gaujal's performance bounds for wormhole
// routing; Giroudot & Mifdaoui's buffer-aware analysis):
//
//   - every (src,dst) flow is a token bucket α(t) = σ_f + ρ_f·t with
//     burst σ_f = M flits (one message arrives back-to-back at link
//     rate) and sustained rate ρ_f = λ_f·M flits/cycle;
//   - per-channel loads come from the same minimal-path enumeration
//     the adaptive routing layer uses: each flow's unit mass splits
//     equally over the profitable dimensions at every node (the fluid
//     limit of adaptive selection), giving exact per-channel rates on
//     asymmetric (faulted, mesh) topologies, not a symmetric average;
//   - each directed channel is a rate-latency server β(t) =
//     R·(t−T)⁺ under blind multiplexing: residual rate R = C − ρ_ch
//     (C = link bandwidth in flits/cycle, ρ_ch the aggregate flit
//     rate) and latency T = (σ_ch + B)/R, where B = 2·V·BufCap is the
//     wormhole back-pressure allowance (flits parked in the channel's
//     V virtual channels' input+output buffers) and σ_ch the
//     aggregate burst of the traffic entering the channel;
//   - σ_ch grows with upstream delay (a flow delayed by D exits with
//     burst σ + ρ·D). The channel dependency graph from the load
//     enumeration decides how that recursion is solved: feedforward
//     (acyclic) graphs get an exact single pass in topological order;
//     cyclic graphs get a monotone fixed point in which the upstream
//     delay of traffic entering a channel at hop position k is
//     bounded by (k−1) worst predecessor hop delays — flow paths are
//     loop-free even when the channel graph is not, which is what
//     keeps the recursion well-founded. A fixed point that fails to
//     stabilise within MaxIter iterations means the burstiness
//     amplification loop diverges at this load: the engine returns
//     ErrUnboundable instead of a bogus number;
//   - the end-to-end bound for an h-hop flow composes the per-hop
//     servers paying the flow's own burst only once:
//     Bound(h) = M/C + h·T_max + M/R_min + h/C.
//
// Everything is closed-form floating point over deterministic
// iteration orders: two evaluations of the same Config are
// bit-identical, so bounds are content-hashable and cacheable like
// every other starperfd job.
//
// The bounds hold under the token-bucket arrival assumption. The
// simulator's default Poisson sources are not strictly token-bucket
// bounded — the validation harness (validate_test.go) therefore
// checks the engineering claim that matters: across the topology ×
// load × fault-plan matrix, simulated p99.9 and maximum latencies
// stay below the bound with wide margin at every operating point the
// engine calls boundable.
package bounds

import (
	"errors"
	"fmt"
	"math"

	"starperf/internal/cfgerr"
	"starperf/internal/floats"
	"starperf/internal/routing"
	"starperf/internal/topology"
)

// ErrUnboundable is returned when no finite worst-case delay bound
// exists at the requested operating point: the injection or some
// channel is saturated (utilization ≥ 1), or the cyclic burstiness
// fixed point diverges. It is the bounds engine's counterpart of the
// model's ErrSaturated — and strictly more conservative: the engine's
// capacity condition (per-channel ρ·h < C along the deepest hop
// position) binds before the model's ρ < C does.
var ErrUnboundable = errors.New("bounds: no finite worst-case delay bound at this operating point")

// maxNodes caps the analysis size: the load enumeration is quadratic
// in nodes, so unboundedly large topologies would turn a sync request
// into a marathon.
const maxNodes = 1024

// maxHopDelay is the divergence tripwire of the cyclic fixed point: a
// per-hop delay bound beyond 10^15 cycles is not a bound anyone can
// use, and iterating past it only overflows the floats.
const maxHopDelay = 1e15

// Config parameterises one bounds evaluation.
type Config struct {
	// Top is the network topology (pristine or faulted).
	Top topology.Topology
	// Kind is the adaptive routing algorithm; its virtual-channel
	// feasibility rules are validated exactly as for the simulator.
	Kind routing.Kind
	// V is the number of virtual channels per physical channel.
	V int
	// MsgLen is the message length M in flits.
	MsgLen int
	// Rate is the per-node message generation rate λg in
	// messages/node/cycle.
	Rate float64
	// BufCap is the per-virtual-channel buffer depth in flits
	// (default 2, the simulator's).
	BufCap int
	// LinkBW is the physical channel bandwidth in flits/cycle
	// (default 1, the unit the whole repo works in).
	LinkBW float64
	// MaxIter caps the cyclic burstiness fixed point (default 256).
	MaxIter int
	// Tol is the fixed point's relative convergence tolerance
	// (default 1e-9).
	Tol float64
}

func (c Config) withDefaults() Config {
	if c.BufCap == 0 {
		c.BufCap = 2
	}
	// Zero-tolerance EqualWithin is an exact is-unset test: a negative
	// value must survive into validate and be rejected there.
	if floats.EqualWithin(c.LinkBW, 0, 0) {
		c.LinkBW = 1
	}
	if c.MaxIter == 0 {
		c.MaxIter = 256
	}
	if floats.EqualWithin(c.Tol, 0, 0) {
		c.Tol = 1e-9
	}
	return c
}

func (c Config) validate() error {
	if c.Top == nil {
		return cfgerr.New("bounds: nil topology")
	}
	if n := c.Top.N(); n > maxNodes {
		return cfgerr.Errorf("bounds: topology %s has %d nodes, the engine analyses at most %d (quadratic path enumeration)", c.Top.Name(), n, maxNodes)
	}
	if c.MsgLen <= 0 {
		return cfgerr.Errorf("bounds: message length %d, want ≥ 1 flit", c.MsgLen)
	}
	if c.Rate <= 0 {
		return cfgerr.Errorf("bounds: rate %v, want > 0 messages/node/cycle", c.Rate)
	}
	if c.BufCap < 1 {
		return cfgerr.Errorf("bounds: buffer depth %d, want ≥ 1 flit", c.BufCap)
	}
	if c.LinkBW <= 0 {
		return cfgerr.Errorf("bounds: link bandwidth %v, want > 0 flits/cycle", c.LinkBW)
	}
	if c.MaxIter < 1 {
		return cfgerr.Errorf("bounds: iteration cap %d, want ≥ 1", c.MaxIter)
	}
	if c.Tol <= 0 {
		return cfgerr.Errorf("bounds: tolerance %v, want > 0", c.Tol)
	}
	if _, err := routing.New(c.Kind, c.Top, c.V); err != nil {
		return err
	}
	return nil
}

// FlowBound is the worst-case end-to-end delay bound for the class of
// flows at a given hop count.
type FlowBound struct {
	// Hops is the class's path length.
	Hops int
	// Flows counts the live ordered (src,dst) pairs in the class.
	Flows int
	// Bound is the end-to-end delay bound in cycles (generation →
	// last flit delivered), for any flow of the class.
	Bound float64
}

// Result carries one bounds evaluation.
type Result struct {
	// WorstCase is the network-wide worst-flow bound in cycles — the
	// deepest class's bound.
	WorstCase float64
	// Classes are the per-hop-count bounds, ascending in Hops.
	Classes []FlowBound
	// Utilization is the highest per-channel flit utilization ρ/C.
	Utilization float64
	// HopDelay is the worst per-channel delay bound T in cycles.
	HopDelay float64
	// Residual is the smallest residual service rate C−ρ over
	// traffic-carrying channels, in flits/cycle.
	Residual float64
	// Feedforward reports whether the channel dependency graph is
	// acyclic (exact single-pass composition) or cyclic (monotone
	// fixed point).
	Feedforward bool
	// Iterations is the number of fixed-point sweeps used (1 for a
	// feedforward graph).
	Iterations int
	// Flows counts live ordered (src,dst) pairs; Channels the
	// directed channels carrying traffic.
	Flows    int
	Channels int
}

// Evaluate computes per-class and worst-flow delay bounds for cfg.
// Invalid configurations match cfgerr.ErrInvalid; operating points
// with no finite bound match ErrUnboundable.
func Evaluate(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	bw := cfg.LinkBW
	m := float64(cfg.MsgLen)
	if cfg.Rate*m >= bw {
		return nil, fmt.Errorf("%w: injection load %.6g flits/cycle ≥ link bandwidth %.6g (rate %.6g × %d-flit messages)",
			ErrUnboundable, cfg.Rate*m, bw, cfg.Rate, cfg.MsgLen)
	}
	cl := enumerateLoad(cfg.Top, cfg.Rate)
	if cl.flows == 0 {
		return nil, cfgerr.Errorf("bounds: %s has no live source/destination pairs", cfg.Top.Name())
	}
	act := cl.active()
	maxUtil := 0.0
	for _, ch := range act {
		rho := cl.rate[ch] * m
		if rho >= bw {
			return nil, fmt.Errorf("%w: channel %d/%d saturated: aggregate %.6g flits/cycle ≥ bandwidth %.6g",
				ErrUnboundable, ch/cl.deg, ch%cl.deg, rho, bw)
		}
		if u := rho / bw; u > maxUtil {
			maxUtil = u
		}
	}
	ff := feedforward(cfg.Top, cl, act)
	cv := curveParams{
		msgLen:  m,
		bw:      bw,
		backlog: float64(2 * cfg.V * cfg.BufCap),
		src:     m / bw,
	}
	hopT := make([]float64, len(cl.rate))
	var iters int
	if ff {
		iters = 1
		composeFeedforward(cfg.Top, cl, act, cv, hopT)
	} else {
		var err error
		iters, err = composeCyclic(cfg.Top, cl, act, cv, cfg.MaxIter, cfg.Tol, hopT)
		if err != nil {
			return nil, err
		}
	}
	tMax, rMin := 0.0, bw
	for _, ch := range act {
		if hopT[ch] > tMax {
			tMax = hopT[ch]
		}
		if r := bw - cl.rate[ch]*m; r < rMin {
			rMin = r
		}
	}
	res := &Result{
		Utilization: maxUtil,
		HopDelay:    tMax,
		Residual:    rMin,
		Feedforward: ff,
		Iterations:  iters,
		Flows:       cl.flows,
		Channels:    len(act),
	}
	// End-to-end composition, pay-bursts-only-once: injection
	// serialization M/C, h header waits, the flow's own burst drained
	// once against the worst residual rate, and the h-cycle header
	// pipeline.
	for h, cnt := range cl.classFlows {
		if cnt == 0 {
			continue
		}
		b := m/bw + float64(h)*tMax + m/rMin + float64(h)/bw
		res.Classes = append(res.Classes, FlowBound{Hops: h, Flows: cnt, Bound: b})
		res.WorstCase = b
	}
	return res, nil
}

// curveParams carries the shared service-curve parameters: message
// length M and link bandwidth C (flits, flits/cycle), the
// back-pressure allowance B = 2·V·BufCap, and the injection
// serialization delay M/C every flow pays before its first network
// channel.
type curveParams struct {
	msgLen  float64
	bw      float64
	backlog float64
	src     float64
}

// hopDelay is the rate-latency service latency of channel ch given
// the worst accumulated upstream delay acc of the traffic entering
// it: T = (σ0 + ρ·acc + B)/(C − ρ), with σ0 the aggregate
// token-bucket burst and ρ the aggregate flit rate.
func (cv curveParams) hopDelay(cl *chanLoad, ch int, acc float64) float64 {
	rho := cl.rate[ch] * cv.msgLen
	sigma := cl.mass[ch]*cv.msgLen + rho*acc
	return (sigma + cv.backlog) / (cv.bw - rho)
}

// composeFeedforward solves the burstiness recursion exactly on an
// acyclic dependency graph: channels are processed in topological
// order (Kahn's algorithm over the active subgraph), each one's
// entering burstiness grown by the worst accumulated
// (delay-so-far + hop delay) over its predecessors.
func composeFeedforward(top topology.Topology, cl *chanLoad, act []int, cv curveParams, hopT []float64) {
	deg := cl.deg
	indeg := make([]int, len(cl.rate))
	for _, ch := range act {
		v := top.Neighbor(ch/deg, ch%deg)
		if v < 0 {
			continue
		}
		for dim2 := 0; dim2 < deg; dim2++ {
			if cl.succ[ch*deg+dim2] && cl.rate[v*deg+dim2] > 0 {
				indeg[v*deg+dim2]++
			}
		}
	}
	// acc[ch] is the worst accumulated upstream delay of traffic
	// entering ch. Every active channel also carries first-hop
	// traffic (its tail node's own sources), whose only upstream
	// delay is the injection serialization.
	acc := make([]float64, len(cl.rate))
	queue := make([]int, 0, len(act))
	for _, ch := range act {
		acc[ch] = cv.src
		if indeg[ch] == 0 {
			queue = append(queue, ch)
		}
	}
	for len(queue) > 0 {
		ch := queue[0]
		queue = queue[1:]
		hopT[ch] = cv.hopDelay(cl, ch, acc[ch])
		v := top.Neighbor(ch/deg, ch%deg)
		if v < 0 {
			continue
		}
		out := acc[ch] + hopT[ch]
		for dim2 := 0; dim2 < deg; dim2++ {
			ch2 := v*deg + dim2
			if !cl.succ[ch*deg+dim2] || cl.rate[ch2] <= 0 {
				continue
			}
			if out > acc[ch2] {
				acc[ch2] = out
			}
			indeg[ch2]--
			if indeg[ch2] == 0 {
				queue = append(queue, ch2)
			}
		}
	}
}

// composeCyclic solves the burstiness recursion on a cyclic
// dependency graph. Per-flow paths are loop-free even when the
// channel graph is not, so the upstream delay of traffic entering a
// channel at hop position k is bounded by the injection delay plus
// (k−1) worst predecessor hop delays. That makes the map
//
//	T(ch) ← (σ0 + ρ·(M/C + (pos−1)·maxPred T) + B)/(C − ρ)
//
// monotone in T; iterating from the contention-free latency either
// stabilises (the fixed point, a valid bound) or grows without limit
// — burstiness amplification around the cycle outruns the residual
// service, and the operating point is unboundable.
func composeCyclic(top topology.Topology, cl *chanLoad, act []int, cv curveParams, maxIter int, tol float64, hopT []float64) (int, error) {
	deg := cl.deg
	pred := make([]float64, len(cl.rate))
	for _, ch := range act {
		hopT[ch] = cv.hopDelay(cl, ch, cv.src)
	}
	for iter := 1; iter <= maxIter; iter++ {
		// pred[ch2] = worst hop delay over ch2's predecessors.
		for _, ch := range act {
			pred[ch] = 0
		}
		for _, ch := range act {
			v := top.Neighbor(ch/deg, ch%deg)
			if v < 0 {
				continue
			}
			for dim2 := 0; dim2 < deg; dim2++ {
				ch2 := v*deg + dim2
				if cl.succ[ch*deg+dim2] && cl.rate[ch2] > 0 && hopT[ch] > pred[ch2] {
					pred[ch2] = hopT[ch]
				}
			}
		}
		worst := 0.0
		for _, ch := range act {
			acc := cv.src + float64(cl.pos[ch]-1)*pred[ch]
			next := cv.hopDelay(cl, ch, acc)
			// Explosive growth overflows to +Inf within a few sweeps
			// and would turn the relative-change test into a NaN that
			// reads as converged — catch divergence explicitly.
			if math.IsNaN(next) || next > maxHopDelay {
				return iter, fmt.Errorf("%w: cyclic channel dependencies — burstiness amplification diverges (hop delay beyond %.0g cycles after %d iterations)",
					ErrUnboundable, maxHopDelay, iter)
			}
			rel := (next - hopT[ch]) / next
			if rel > worst {
				worst = rel
			}
			hopT[ch] = next
		}
		if worst <= tol {
			return iter, nil
		}
	}
	return maxIter, fmt.Errorf("%w: cyclic channel dependencies — burstiness fixed point still growing after %d iterations",
		ErrUnboundable, maxIter)
}

// Capacity bisects for the largest per-node rate in (lo, hi] at which
// Evaluate still produces a finite bound — the engine's conservative
// capacity, the bounds counterpart of model.SaturationRate. An
// invalid base configuration or a lo that is already unboundable is
// an error rather than a silent "capacity is lo" answer.
func Capacity(base Config, lo, hi float64) (float64, error) {
	base = base.withDefaults()
	if !(lo > 0) || !(hi > lo) {
		return 0, cfgerr.Errorf("bounds: capacity bracket [%v, %v], want 0 < lo < hi", lo, hi)
	}
	c := base
	c.Rate = lo
	if _, err := Evaluate(c); err != nil {
		return 0, fmt.Errorf("bounds: capacity bracket floor %v: %w", lo, err)
	}
	c.Rate = hi
	if _, err := Evaluate(c); err == nil {
		return hi, nil
	} else if !errors.Is(err, ErrUnboundable) {
		return 0, err
	}
	for i := 0; i < 48; i++ {
		mid := (lo + hi) / 2
		c.Rate = mid
		_, err := Evaluate(c)
		switch {
		case err == nil:
			lo = mid
		case errors.Is(err, ErrUnboundable):
			hi = mid
		default:
			return 0, err
		}
	}
	return lo, nil
}
