package bounds

import "starperf/internal/topology"

// chanLoad is the aggregate per-channel picture produced by the
// minimal-adaptive load enumeration: expected message rate and flow
// mass per directed channel, the deepest hop position at which any
// flow enters each channel, and the channel dependency graph (which
// outgoing dimensions traffic leaving a channel continues into).
//
// Channels are indexed node*Degree+dim, matching the simulator's
// layout. The enumeration walks the minimal-path DAG of every live
// ordered (src,dst) pair and splits each flow's unit mass equally
// over the profitable dimensions at every node — the fluid limit of
// the adaptive selection the simulator implements and the same
// evenly-distributed-load assumption behind the paper's eq. 3, except
// computed per channel so asymmetric (faulted, mesh) topologies get
// their true per-channel loads rather than a symmetric average.
type chanLoad struct {
	deg int
	// rate[ch] is the message rate through ch in messages/cycle.
	rate []float64
	// mass[ch] is the summed flow mass through ch: each (src,dst)
	// pair contributes its route-split fractions (≤ 1 per pair).
	mass []float64
	// pos[ch] is the deepest 1-based hop position at which any flow
	// crosses ch — the burstiness a flow can have accumulated before
	// entering ch grows with its hops already travelled.
	pos []int
	// succ[ch*deg+dim2] records that traffic leaving ch continues on
	// dimension dim2 of ch's head node: the channel dependency graph
	// the feedforward/cyclic check runs on.
	succ []bool
	// classFlows[h] counts ordered live pairs at distance h.
	classFlows []int
	// flows counts all ordered live pairs.
	flows int
}

// enumerateLoad computes the per-channel load picture for uniform
// traffic at per-node message rate (messages/node/cycle). Pairs whose
// destination is unreachable (Distance ≤ 0: stranded components or
// failed endpoints under a fault plan) carry no traffic and are
// skipped, mirroring the simulator's live-destination draw.
func enumerateLoad(top topology.Topology, rate float64) *chanLoad {
	n, deg := top.N(), top.Degree()
	nchan := n * deg
	cl := &chanLoad{
		deg:        deg,
		rate:       make([]float64, nchan),
		mass:       make([]float64, nchan),
		pos:        make([]int, nchan),
		succ:       make([]bool, nchan*deg),
		classFlows: make([]int, top.Diameter()+1),
	}
	nodeMass := make([]float64, n)
	seen := make([]bool, n)
	frontier := make([]int, 0, n)
	next := make([]int, 0, n)
	var dimbuf, vdimbuf []int
	for s := 0; s < n; s++ {
		// Uniform traffic spreads each source's rate over its
		// reachable peers (live destinations only, like the
		// simulator's default pattern under faults).
		ndst := 0
		for d := 0; d < n; d++ {
			if d != s && top.Distance(s, d) > 0 {
				ndst++
			}
		}
		if ndst == 0 {
			continue
		}
		flowRate := rate / float64(ndst)
		for d := 0; d < n; d++ {
			if d == s {
				continue
			}
			dist := top.Distance(s, d)
			if dist <= 0 {
				continue
			}
			cl.classFlows[dist]++
			cl.flows++
			// Equal-split mass propagation over the minimal-path DAG
			// from s to d. Every node sits at exactly one remaining
			// distance, so each is processed once and the frontier
			// advances level by level.
			nodeMass[s] = 1
			frontier = append(frontier[:0], s)
			seen[s] = true
			for r := dist; r >= 1; r-- {
				pos := dist - r + 1
				next = next[:0]
				for _, u := range frontier {
					seen[u] = false
					m := nodeMass[u]
					nodeMass[u] = 0
					dimbuf = top.ProfitableDims(u, d, dimbuf[:0])
					if len(dimbuf) == 0 {
						continue // cannot happen while d is reachable
					}
					share := m / float64(len(dimbuf))
					for _, dim := range dimbuf {
						ch := u*deg + dim
						cl.rate[ch] += share * flowRate
						cl.mass[ch] += share
						if pos > cl.pos[ch] {
							cl.pos[ch] = pos
						}
						v := top.Neighbor(u, dim)
						if !seen[v] {
							seen[v] = true
							next = append(next, v)
						}
						nodeMass[v] += share
						if r >= 2 {
							vdimbuf = top.ProfitableDims(v, d, vdimbuf[:0])
							for _, dim2 := range vdimbuf {
								cl.succ[ch*deg+dim2] = true
							}
						}
					}
				}
				frontier, next = next, frontier
			}
			// The last frontier is exactly {d}.
			seen[d] = false
			nodeMass[d] = 0
		}
	}
	return cl
}

// active returns the indices of channels carrying traffic, in
// ascending order.
func (cl *chanLoad) active() []int {
	act := make([]int, 0, len(cl.rate))
	for ch, r := range cl.rate {
		if r > 0 {
			act = append(act, ch)
		}
	}
	return act
}

// feedforward reports whether the dependency graph restricted to
// active channels is acyclic, via an iterative three-colour DFS. The
// graph's nodes are channels; an edge ch→ch2 means some flow's
// traffic continues from ch onto ch2, so burstiness propagates along
// it. Acyclic graphs admit exact single-pass composition; cyclic ones
// need the hop-position-bounded fixed point.
func feedforward(top topology.Topology, cl *chanLoad, act []int) bool {
	const (
		white = iota // unvisited
		grey         // on the current DFS stack
		black        // finished
	)
	deg := cl.deg
	color := make([]int8, len(cl.rate))
	type frame struct {
		ch   int
		next int // next successor dimension to try
	}
	var stack []frame
	for _, start := range act {
		if color[start] != white {
			continue
		}
		color[start] = grey
		stack = append(stack[:0], frame{ch: start})
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			advanced := false
			for f.next < deg {
				dim2 := f.next
				f.next++
				if !cl.succ[f.ch*deg+dim2] {
					continue
				}
				v := top.Neighbor(f.ch/deg, f.ch%deg)
				if v < 0 {
					continue
				}
				ch2 := v*deg + dim2
				if cl.rate[ch2] <= 0 {
					continue
				}
				switch color[ch2] {
				case grey:
					return false // back edge: cycle
				case white:
					color[ch2] = grey
					stack = append(stack, frame{ch: ch2})
					advanced = true
				}
				if advanced {
					break
				}
			}
			if !advanced {
				color[f.ch] = black
				stack = stack[:len(stack)-1]
			}
		}
	}
	return true
}
