package bounds

import (
	"errors"
	"math"
	"reflect"
	"testing"

	"starperf/internal/cfgerr"
	"starperf/internal/faults"
	"starperf/internal/hypercube"
	"starperf/internal/mesh"
	"starperf/internal/routing"
	"starperf/internal/stargraph"
	"starperf/internal/topology"
)

func s4(t *testing.T) topology.Topology {
	t.Helper()
	g, err := stargraph.New(4)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func baseCfg(top topology.Topology) Config {
	return Config{Top: top, Kind: routing.EnhancedNbc, V: 6, MsgLen: 32, Rate: 0.001}
}

func TestEvaluateInvalidConfig(t *testing.T) {
	top := s4(t)
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"nil topology", func(c *Config) { c.Top = nil }},
		{"zero msglen", func(c *Config) { c.MsgLen = 0 }},
		{"negative rate", func(c *Config) { c.Rate = -1 }},
		{"zero rate", func(c *Config) { c.Rate = 0 }},
		{"negative bufcap", func(c *Config) { c.BufCap = -1 }},
		{"negative linkbw", func(c *Config) { c.LinkBW = -2 }},
		{"negative tol", func(c *Config) { c.Tol = -1 }},
		{"negative maxiter", func(c *Config) { c.MaxIter = -5 }},
		{"vc budget below minimum", func(c *Config) { c.V = 1 }},
	}
	for _, tc := range cases {
		cfg := baseCfg(top)
		tc.mut(&cfg)
		if _, err := Evaluate(cfg); !errors.Is(err, cfgerr.ErrInvalid) {
			t.Errorf("%s: err = %v, want ErrInvalidConfig", tc.name, err)
		}
	}
}

func TestEvaluateTooLarge(t *testing.T) {
	g, err := stargraph.New(7) // 5040 nodes > maxNodes
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Evaluate(baseCfg(g)); !errors.Is(err, cfgerr.ErrInvalid) {
		t.Fatalf("oversized topology: err = %v, want ErrInvalidConfig", err)
	}
}

func TestEvaluateBasic(t *testing.T) {
	res, err := Evaluate(baseCfg(s4(t)))
	if err != nil {
		t.Fatal(err)
	}
	if res.WorstCase <= 0 || math.IsInf(res.WorstCase, 0) || math.IsNaN(res.WorstCase) {
		t.Fatalf("worst case %v not positive finite", res.WorstCase)
	}
	if res.Flows != 24*23 {
		t.Fatalf("flows %d, want %d live pairs", res.Flows, 24*23)
	}
	if res.Channels != 24*3 {
		t.Fatalf("channels %d, want all %d live", res.Channels, 24*3)
	}
	if res.Utilization <= 0 || res.Utilization >= 1 {
		t.Fatalf("utilization %v outside (0,1)", res.Utilization)
	}
	// The star's channel dependency graph is cyclic under uniform
	// traffic.
	if res.Feedforward {
		t.Fatal("S4 under uniform traffic reported feedforward")
	}
	if res.Iterations < 1 {
		t.Fatalf("iterations %d", res.Iterations)
	}
	// Per-class bounds: ascending hop counts, strictly increasing
	// bounds, class populations summing to the flow count, worst case
	// = deepest class.
	total := 0
	prev := 0.0
	prevH := 0
	for _, fb := range res.Classes {
		if fb.Hops <= prevH {
			t.Fatalf("classes not ascending: %+v", res.Classes)
		}
		if fb.Bound <= prev {
			t.Fatalf("bound not increasing with hops: %+v", res.Classes)
		}
		prevH, prev = fb.Hops, fb.Bound
		total += fb.Flows
	}
	if total != res.Flows {
		t.Fatalf("class flows %d != total %d", total, res.Flows)
	}
	if got := res.Classes[len(res.Classes)-1].Bound; got != res.WorstCase {
		t.Fatalf("worst case %v != deepest class %v", res.WorstCase, got)
	}
	// A bound must dominate the contention-free latency M + h.
	if res.WorstCase < 32+4 {
		t.Fatalf("worst case %v below the contention-free floor", res.WorstCase)
	}
}

func TestEvaluateDeterministic(t *testing.T) {
	cfg := baseCfg(s4(t))
	a, err := Evaluate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Evaluate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("two evaluations differ:\n%+v\n%+v", a, b)
	}
}

// TestMonotoneInLoad pins the contract the validation matrix relies
// on: bounds are monotone non-decreasing in the injection rate.
func TestMonotoneInLoad(t *testing.T) {
	top := s4(t)
	cap, err := Capacity(baseCfg(top), 1e-6, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	for _, frac := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		cfg := baseCfg(top)
		cfg.Rate = frac * cap
		res, err := Evaluate(cfg)
		if err != nil {
			t.Fatalf("rate %v (%.0f%% of capacity): %v", cfg.Rate, frac*100, err)
		}
		if res.WorstCase < prev {
			t.Fatalf("bound decreased with load: %v after %v", res.WorstCase, prev)
		}
		prev = res.WorstCase
	}
}

func TestUnboundableAtSaturation(t *testing.T) {
	top := s4(t)
	cfg := baseCfg(top)
	cap, err := Capacity(cfg, 1e-6, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if cap <= 0 || cap >= 1.0/32 {
		t.Fatalf("capacity %v outside (0, injection limit)", cap)
	}
	// Above the engine's capacity: typed ErrUnboundable, never a
	// number.
	cfg.Rate = cap * 1.1
	if _, err := Evaluate(cfg); !errors.Is(err, ErrUnboundable) {
		t.Fatalf("above capacity: err = %v, want ErrUnboundable", err)
	}
	// Injection saturation is unboundable outright.
	cfg.Rate = 1.0 / 32
	if _, err := Evaluate(cfg); !errors.Is(err, ErrUnboundable) {
		t.Fatalf("injection saturation: err = %v, want ErrUnboundable", err)
	}
}

// TestFeedforwardLine: minimal routes on a 1-D mesh never turn
// around, so the channel dependency graph is a pair of disjoint
// forward/backward chains — acyclic, solved by the exact single pass.
func TestFeedforwardLine(t *testing.T) {
	g, err := mesh.New(5, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Top: g, Kind: routing.NHop, V: 8, MsgLen: 16, Rate: 0.002}
	res, err := Evaluate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feedforward {
		t.Fatal("1-D mesh dependency graph reported cyclic")
	}
	if res.Iterations != 1 {
		t.Fatalf("feedforward composition took %d passes", res.Iterations)
	}
	if res.WorstCase <= 0 || math.IsInf(res.WorstCase, 0) {
		t.Fatalf("worst case %v", res.WorstCase)
	}
}

func TestHypercubeCyclic(t *testing.T) {
	g, err := hypercube.New(4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Evaluate(Config{Top: g, Kind: routing.EnhancedNbc, V: 4, MsgLen: 16, Rate: 0.002})
	if err != nil {
		t.Fatal(err)
	}
	if res.Feedforward {
		t.Fatal("Q4 under uniform traffic reported feedforward")
	}
	if res.WorstCase <= 0 {
		t.Fatalf("worst case %v", res.WorstCase)
	}
}

// TestFaultedTopology: the engine analyses a degraded topology
// through the same Topology interface, skipping stranded pairs and
// dead channels, and the degraded bound dominates the pristine one at
// equal load (fewer channels carry the same traffic).
func TestFaultedTopology(t *testing.T) {
	top := s4(t)
	plan, err := faults.NewPlan(top, 3, faults.Options{FailLinks: 2})
	if err != nil {
		t.Fatal(err)
	}
	ft, err := faults.Apply(top, plan)
	if err != nil {
		t.Fatal(err)
	}
	cfg := baseCfg(top)
	cfg.Rate = 0.002
	pristine, err := Evaluate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fcfg := cfg
	fcfg.Top = ft
	// The degraded diameter can exceed the pristine one, raising the
	// escape-VC minimum.
	if _, err := routing.New(fcfg.Kind, ft, fcfg.V); err != nil {
		fcfg.V = ft.Diameter() + 2
	}
	degraded, err := Evaluate(fcfg)
	if err != nil {
		t.Fatal(err)
	}
	if degraded.Channels >= pristine.Channels {
		t.Fatalf("degraded channels %d not below pristine %d", degraded.Channels, pristine.Channels)
	}
	if degraded.WorstCase < pristine.WorstCase {
		t.Fatalf("degraded bound %v below pristine %v", degraded.WorstCase, pristine.WorstCase)
	}
}

func TestCapacityBracketErrors(t *testing.T) {
	top := s4(t)
	if _, err := Capacity(baseCfg(top), -1, 1); !errors.Is(err, cfgerr.ErrInvalid) {
		t.Fatalf("bad bracket: %v", err)
	}
	// lo already unboundable → error, not "capacity is lo".
	if _, err := Capacity(baseCfg(top), 0.5, 1.0); !errors.Is(err, ErrUnboundable) {
		t.Fatalf("unboundable floor: %v", err)
	}
	// invalid base config surfaces as ErrInvalidConfig.
	bad := baseCfg(top)
	bad.MsgLen = -1
	if _, err := Capacity(bad, 1e-6, 1.0); !errors.Is(err, cfgerr.ErrInvalid) {
		t.Fatalf("invalid base: %v", err)
	}
}

// TestLoadEnumeration pins the per-channel load invariants on the
// pristine star: by node symmetry every channel carries the same
// rate, and the aggregate matches the paper's eq. 3
// λc = λg·d̄/Degree.
func TestLoadEnumeration(t *testing.T) {
	top := s4(t)
	rate := 0.004
	cl := enumerateLoad(top, rate)
	if cl.flows != 24*23 {
		t.Fatalf("flows %d", cl.flows)
	}
	want := rate * top.AvgDistance() / 3
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, r := range cl.rate {
		if r < lo {
			lo = r
		}
		if r > hi {
			hi = r
		}
	}
	if hi-lo > 1e-12 {
		t.Fatalf("asymmetric channel rates on a symmetric topology: [%v, %v]", lo, hi)
	}
	if math.Abs(lo-want) > 1e-12 {
		t.Fatalf("channel rate %v, eq. 3 gives %v", lo, want)
	}
	// Mass conservation: total channel mass = Σ over pairs of path
	// length (each flow deposits exactly one unit of mass per hop
	// level).
	var totalMass float64
	for _, m := range cl.mass {
		totalMass += m
	}
	var wantMass float64
	for h, cnt := range cl.classFlows {
		wantMass += float64(h * cnt)
	}
	if math.Abs(totalMass-wantMass) > 1e-6 {
		t.Fatalf("mass %v, want %v", totalMass, wantMass)
	}
	// Hop positions reach the diameter and never exceed it.
	maxPos := 0
	for _, p := range cl.pos {
		if p > maxPos {
			maxPos = p
		}
	}
	if maxPos != top.Diameter() {
		t.Fatalf("deepest hop position %d, diameter %d", maxPos, top.Diameter())
	}
}
