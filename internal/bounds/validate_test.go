package bounds

import (
	"errors"
	"math"
	"testing"

	"starperf/internal/desim"
	"starperf/internal/faults"
	"starperf/internal/hypercube"
	"starperf/internal/routing"
	"starperf/internal/stargraph"
	"starperf/internal/topology"
	"starperf/internal/torus"
)

// TestBoundsValidationMatrix is the engine's safety rail: across a
// matrix of (topology × rate grid below the engine's capacity ×
// fault plans), the simulator's observed p99.9 and maximum latency
// must never exceed the computed bound, the bounds must be finite and
// monotone non-decreasing in load, and at/above capacity the engine
// must return ErrUnboundable rather than a number. A failed
// assertion here is a bug in the engine, not the simulator.
//
// The CI bounds-smoke job runs exactly this test.
func TestBoundsValidationMatrix(t *testing.T) {
	type point struct {
		name   string
		top    topology.Topology
		plan   *faults.Plan
		kind   routing.Kind
		v, m   int
		bufCap int
	}
	s4g, err := stargraph.New(4)
	if err != nil {
		t.Fatal(err)
	}
	q4g, err := hypercube.New(4)
	if err != nil {
		t.Fatal(err)
	}
	t42g, err := torus.New(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	s4plan, err := faults.NewPlan(s4g, 3, faults.Options{FailLinks: 2})
	if err != nil {
		t.Fatal(err)
	}
	matrix := []point{
		{name: "S4", top: s4g, kind: routing.EnhancedNbc, v: 6, m: 32, bufCap: 2},
		{name: "Q4", top: q4g, kind: routing.EnhancedNbc, v: 4, m: 16, bufCap: 2},
		{name: "T4x2", top: t42g, kind: routing.Nbc, v: 5, m: 16, bufCap: 2},
		{name: "S4-faulted", top: s4g, plan: s4plan, kind: routing.EnhancedNbc, v: 6, m: 32, bufCap: 2},
	}
	fractions := []float64{0.25, 0.5, 0.8}
	for _, pt := range matrix {
		pt := pt
		t.Run(pt.name, func(t *testing.T) {
			top := pt.top
			if pt.plan != nil {
				ft, err := faults.Apply(pt.top, pt.plan)
				if err != nil {
					t.Fatal(err)
				}
				top = ft
			}
			spec, err := routing.New(pt.kind, top, pt.v)
			if err != nil {
				t.Fatal(err)
			}
			base := Config{Top: top, Kind: pt.kind, V: pt.v, MsgLen: pt.m, BufCap: pt.bufCap}
			capRate, err := Capacity(base, 1e-7, 1.0)
			if err != nil {
				t.Fatalf("capacity: %v", err)
			}
			prevBound := 0.0
			for _, frac := range fractions {
				cfg := base
				cfg.Rate = frac * capRate
				res, err := Evaluate(cfg)
				if err != nil {
					t.Fatalf("rate %.3g (%.0f%% capacity): %v", cfg.Rate, frac*100, err)
				}
				if math.IsNaN(res.WorstCase) || math.IsInf(res.WorstCase, 0) || res.WorstCase <= 0 {
					t.Fatalf("rate %.3g: bound %v not positive finite", cfg.Rate, res.WorstCase)
				}
				if res.WorstCase < prevBound {
					t.Fatalf("bound decreased with load: %v after %v", res.WorstCase, prevBound)
				}
				prevBound = res.WorstCase
				sim, err := desim.Run(desim.Config{
					Top: top, Spec: spec,
					Rate: cfg.Rate, MsgLen: pt.m, BufCap: pt.bufCap, Seed: 1,
					WarmupCycles: 3000, MeasureCycles: 10000,
				})
				if err != nil {
					t.Fatalf("rate %.3g: simulate: %v", cfg.Rate, err)
				}
				if sim.Aborted {
					t.Fatalf("rate %.3g: simulation aborted: %s", cfg.Rate, sim.AbortReason)
				}
				if sim.MeasuredDelivered == 0 {
					t.Fatalf("rate %.3g: no measured deliveries", cfg.Rate)
				}
				// Fail loudly, never silently, when tail samples
				// overflow the histogram: the overflow bucket keeps
				// the true maximum, and the bound must dominate it.
				if sim.LatencyHist.Overflow > 0 &&
					float64(sim.LatencyHist.OverflowMax) > res.WorstCase {
					t.Fatalf("rate %.3g: %d samples overflowed the latency histogram and the observed max %d exceeds the bound %.1f",
						cfg.Rate, sim.LatencyHist.Overflow, sim.LatencyHist.OverflowMax, res.WorstCase)
				}
				p999 := sim.LatencyHist.Quantile(0.999)
				maxLat := sim.Latency.Max()
				if float64(p999) > res.WorstCase {
					t.Errorf("rate %.3g (%.0f%% capacity): simulated p99.9 %d exceeds bound %.1f",
						cfg.Rate, frac*100, p999, res.WorstCase)
				}
				if maxLat > res.WorstCase {
					t.Errorf("rate %.3g (%.0f%% capacity): simulated max %.0f exceeds bound %.1f",
						cfg.Rate, frac*100, maxLat, res.WorstCase)
				}
				t.Logf("rate %.3g (%.0f%% cap): sim mean %.1f p99.9 %d max %.0f ≤ bound %.1f (util %.2f, %s, %d iters)",
					cfg.Rate, frac*100, sim.Latency.Mean(), p999, maxLat, res.WorstCase,
					res.Utilization, ffLabel(res.Feedforward), res.Iterations)
			}
			// At and above capacity: a typed refusal, not a number.
			for _, frac := range []float64{1.05, 2.0} {
				cfg := base
				cfg.Rate = frac * capRate
				if _, err := Evaluate(cfg); !errors.Is(err, ErrUnboundable) {
					t.Fatalf("rate %.3g (%.0f%% capacity): err = %v, want ErrUnboundable",
						cfg.Rate, frac*100, err)
				}
			}
		})
	}
}

func ffLabel(ff bool) string {
	if ff {
		return "feedforward"
	}
	return "cyclic"
}
