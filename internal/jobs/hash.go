package jobs

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
)

// SchemaVersion is baked into every content hash. Bump it whenever
// the wire schema of a hashed request changes meaning without
// changing shape (renamed semantics, new defaults), so stale cache
// entries and job ids can never be mistaken for current ones.
const SchemaVersion = "v1"

// CanonicalJSON serialises v into the canonical JSON form used for
// content addressing: the value is marshalled, re-read into a generic
// tree (numbers preserved verbatim via json.Number) and marshalled
// again, which sorts every object's keys and normalises whitespace.
// Two values that encode the same JSON document — regardless of
// struct field order, map layout or intermediate round-trips —
// canonicalise to identical bytes.
func CanonicalJSON(v any) ([]byte, error) {
	raw, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("jobs: canonicalize: %w", err)
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.UseNumber()
	var tree any
	if err := dec.Decode(&tree); err != nil {
		return nil, fmt.Errorf("jobs: canonicalize: %w", err)
	}
	out, err := json.Marshal(tree)
	if err != nil {
		return nil, fmt.Errorf("jobs: canonicalize: %w", err)
	}
	return out, nil
}

// Hash returns the content hash of a request: SHA-256 over a domain
// line ("starperf/<version>/<kind>") and the canonical JSON of v,
// rendered as "sha256:<hex>". The kind keeps identically-shaped
// requests of different operations (predict vs simulate) from ever
// colliding, and the embedded schema version invalidates hashes
// across wire-schema revisions.
func Hash(kind string, v any) (string, error) {
	canon, err := CanonicalJSON(v)
	if err != nil {
		return "", err
	}
	h := sha256.New()
	fmt.Fprintf(h, "starperf/%s/%s\n", SchemaVersion, kind)
	h.Write(canon)
	return "sha256:" + hex.EncodeToString(h.Sum(nil)), nil
}
