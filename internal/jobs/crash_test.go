package jobs

// In-process crash-recovery tests for the journaled pool: a pool is
// "killed" by abandoning it mid-flight (its blocked workers never
// finish, exactly as if the process had died), the journal directory
// is re-opened, and a fresh pool replays it. The process-level
// variant — a real kill -9 against starperfd — lives in the CI
// chaos-smoke job; the invariants checked are the same: every
// accepted job reaches done/failed exactly once, with byte-identical
// results to an uninterrupted run.

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"

	"starperf/internal/journal"
)

// crashResult computes the deterministic payload of job i — what an
// uninterrupted run would produce.
func crashResult(i int) []byte {
	return []byte(fmt.Sprintf(`{"job":%d,"payload":"%032x"}`, i, i*i+7))
}

func crashID(i int) string { return fmt.Sprintf("sha256:%064x", i) }

func crashMeta(i int) Meta {
	return Meta{Kind: "test", Req: []byte(fmt.Sprintf(`{"i":%d}`, i))}
}

// TestCrashRecoveryReplaysInterruptedJobs: kill a journaled pool with
// four jobs done, two running and four queued; a recovered pool must
// finish exactly the six interrupted jobs, byte-identically.
func TestCrashRecoveryReplaysInterruptedJobs(t *testing.T) {
	dir := t.TempDir()
	j1, rec0, err := journal.Open(journal.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec0.Incomplete) != 0 {
		t.Fatalf("fresh journal has %d incomplete", len(rec0.Incomplete))
	}

	gate := make(chan struct{}) // never closed: jobs 4+ hang like a crash caught them
	p1 := NewPool(PoolConfig{Workers: 2, QueueDepth: 16, Journal: j1})
	var jobs1 []*Job
	for i := 0; i < 10; i++ {
		i := i
		fn := func(ctx context.Context) (any, error) { return crashResult(i), nil }
		if i >= 4 {
			fn = func(ctx context.Context) (any, error) { <-gate; return crashResult(i), nil }
		}
		jb, err := p1.SubmitMeta(crashID(i), crashMeta(i), fn)
		if err != nil {
			t.Fatal(err)
		}
		jobs1 = append(jobs1, jb)
	}
	// The first four complete; 4 and 5 block both workers; 6–9 queue.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for i := 0; i < 4; i++ {
		v, err := jobs1[i].Wait(ctx)
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
		if string(v.([]byte)) != string(crashResult(i)) {
			t.Fatalf("job %d result %q", i, v)
		}
	}
	// CRASH: the pool is abandoned — no shutdown, no drain, the
	// blocked workers leak like a killed process's threads. Every
	// append so far was fsynced, which is all the journal promises.

	j2, rec, err := journal.Open(journal.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if len(rec.Incomplete) != 6 {
		t.Fatalf("recovered %d incomplete jobs, want 6: %+v", len(rec.Incomplete), rec.Incomplete)
	}
	for _, r := range rec.Incomplete {
		if r.Kind != "test" {
			t.Fatalf("incomplete record lost its kind: %+v", r)
		}
	}

	// Recovery: a fresh pool replays the journal. Each job computes
	// exactly once, from its journaled request payload.
	var mu sync.Mutex
	computed := make(map[int]int)
	p2 := NewPool(PoolConfig{Workers: 2, QueueDepth: 16, Journal: j2})
	recov := p2.Recover(rec.Incomplete, func(id, kind string, req []byte) (Func, bool, error) {
		if kind != "test" {
			return nil, false, fmt.Errorf("unknown kind %q", kind)
		}
		var body struct{ I int }
		if err := json.Unmarshal(req, &body); err != nil {
			return nil, false, err
		}
		if got := crashID(body.I); got != id {
			return nil, false, fmt.Errorf("id mismatch: %s vs %s", got, id)
		}
		return func(ctx context.Context) (any, error) {
			mu.Lock()
			computed[body.I]++
			mu.Unlock()
			return crashResult(body.I), nil
		}, true, nil
	})
	if recov.Requeued != 6 || recov.Skipped != 0 || recov.Failed != 0 {
		t.Fatalf("recovery = %+v, want 6 requeued", recov)
	}
	for i := 4; i < 10; i++ {
		jb, ok := p2.Get(crashID(i))
		if !ok {
			t.Fatalf("job %d missing from recovered pool", i)
		}
		v, err := jb.Wait(ctx)
		if err != nil {
			t.Fatalf("recovered job %d: %v", i, err)
		}
		if string(v.([]byte)) != string(crashResult(i)) {
			t.Fatalf("recovered job %d not byte-identical: %q vs %q", i, v, crashResult(i))
		}
	}
	if err := p2.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	for i := 4; i < 10; i++ {
		if computed[i] != 1 {
			t.Fatalf("job %d computed %d times after recovery, want exactly 1", i, computed[i])
		}
	}
	for i := 0; i < 4; i++ {
		if computed[i] != 0 {
			t.Fatalf("completed job %d recomputed after recovery", i)
		}
	}
	mu.Unlock()

	// Third boot: the books are closed, nothing left to replay.
	j3, rec3, err := journal.Open(journal.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	if len(rec3.Incomplete) != 0 {
		t.Fatalf("after recovery run, %d jobs still incomplete: %+v", len(rec3.Incomplete), rec3.Incomplete)
	}
}

// TestRecoverSkipsSatisfiedJobs: a resolver reporting "already have
// it" (the cache hit path) journals the job done without recomputing.
func TestRecoverSkipsSatisfiedJobs(t *testing.T) {
	dir := t.TempDir()
	j1, _, err := journal.Open(journal.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	// Two accepted-never-finished records, journaled directly.
	for i := 0; i < 2; i++ {
		if err := j1.Append(journal.Record{
			Type: journal.TypeAccepted, ID: crashID(i),
			Kind: crashMeta(i).Kind, Req: crashMeta(i).Req,
		}); err != nil {
			t.Fatal(err)
		}
	}
	j1.Close()

	j2, rec, err := journal.Open(journal.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	p := NewPool(PoolConfig{Workers: 1, Journal: j2})
	recov := p.Recover(rec.Incomplete, func(id, kind string, req []byte) (Func, bool, error) {
		if id == crashID(0) {
			return nil, false, nil // already cached
		}
		return nil, false, fmt.Errorf("bad record")
	})
	if recov.Skipped != 1 || recov.Failed != 1 || recov.Requeued != 0 {
		t.Fatalf("recovery = %+v, want 1 skipped + 1 failed", recov)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := p.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	// Both ids are terminal now; the next boot replays nothing.
	j3, rec3, err := journal.Open(journal.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	if len(rec3.Incomplete) != 0 {
		t.Fatalf("skip/fail records did not close the books: %+v", rec3.Incomplete)
	}
}

// TestJournaledLifecycleRecords: a normal run journals the full
// accepted→started→done sequence and leaves nothing pending.
func TestJournaledLifecycleRecords(t *testing.T) {
	dir := t.TempDir()
	j, _, err := journal.Open(journal.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	p := NewPool(PoolConfig{Workers: 1, Journal: j})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := p.Do(ctx, crashID(1), func(ctx context.Context) (any, error) {
		return "ok", nil
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Do(ctx, crashID(2), func(ctx context.Context) (any, error) {
		return nil, fmt.Errorf("boom")
	}); err == nil {
		t.Fatal("failing job succeeded")
	}
	if err := p.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	st := j.Stats()
	if st.Pending != 0 {
		t.Fatalf("pending = %d after drained shutdown", st.Pending)
	}
	// 2 × (accepted + started + terminal) = 6 records.
	if st.Appends != 6 {
		t.Fatalf("appends = %d, want 6", st.Appends)
	}
	j.Close()
}
