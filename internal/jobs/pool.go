package jobs

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"syscall"
	"time"

	"starperf/internal/cfgerr"
	"starperf/internal/journal"
	"starperf/internal/obs"
)

// ErrQueueFull is the sentinel matched (via errors.Is) by the typed
// *QueueFullError a saturated intake queue returns: the pool is
// applying backpressure and the caller should shed or retry later.
var ErrQueueFull = errors.New("jobs: queue full")

// ErrPoolClosed is returned by Submit after Shutdown began.
var ErrPoolClosed = errors.New("jobs: pool closed")

// ErrReadOnly is returned by SubmitMeta/SubmitBatch while the pool's
// journal is in read-only degradation (the disk filled up): the pool
// cannot durably acknowledge new async work, so it refuses it rather
// than hand out acceptance promises a crash would break. Synchronous
// work (DoMeta) is unaffected — it acknowledges nothing it has not
// already computed. The mode clears when journal space returns (a
// probe or any durable commit proves it).
var ErrReadOnly = errors.New("jobs: journal read-only (disk full)")

// QueueFullError reports a rejected submission with the queue bound
// that rejected it. errors.Is(err, ErrQueueFull) matches it.
type QueueFullError struct {
	// Depth is the configured queue bound that was full.
	Depth int
}

func (e *QueueFullError) Error() string {
	return fmt.Sprintf("jobs: queue full (depth %d)", e.Depth)
}

// Is reports the ErrQueueFull identity for errors.Is.
func (e *QueueFullError) Is(target error) bool { return target == ErrQueueFull }

// PoolConfig sizes a Pool. The zero value is usable: one worker, the
// default queue depth, no per-job timeout.
type PoolConfig struct {
	// Workers is the number of concurrent executors (default 1).
	Workers int
	// QueueDepth bounds the jobs accepted but not yet running; a
	// submission past the bound fails with *QueueFullError
	// (default 64).
	QueueDepth int
	// JobTimeout, when positive, bounds each job's wall-clock run: the
	// per-job context expires and the job is marked failed with
	// context.DeadlineExceeded. The computation goroutine is abandoned
	// to finish in the background (every simulator run is
	// cycle-bounded, so it terminates) and its result discarded —
	// the same wall-budget policy the experiment harness applies to
	// sweep points. Zero means no timeout and no extra goroutine.
	JobTimeout time.Duration
	// RetainDone bounds how many finished jobs stay pollable through
	// Get before the oldest are forgotten (default 1024). Results
	// meant to outlive the registry belong in the content-addressed
	// cache, which is keyed by the same id.
	RetainDone int
	// Journal, when set, makes the pool crash-safe: every lifecycle
	// transition (accepted, started, done, failed) is appended to the
	// durable WAL before or as it happens, and Recover re-enqueues
	// what a crash interrupted. Append failures degrade durability,
	// not service — the journal counts them (AppendErrors) and the
	// pool keeps running.
	Journal *journal.Journal
	// Now is the clock behind per-kind execution-time accounting
	// (default time.Now). It exists as a seam: the job engine itself
	// never branches on it — results stay pure functions of their
	// requests — and tests inject a fake clock so timing assertions
	// are deterministic.
	Now func() time.Time
}

func (c PoolConfig) withDefaults() PoolConfig {
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.RetainDone <= 0 {
		c.RetainDone = 1024
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// kindAgg accumulates one job kind's execution statistics: how many
// of its jobs are in the pool right now and how long finished ones
// actually took to run. Admission control prices the backlog from
// these — the HTTP handler latency of an async submit (microseconds
// to return 202) says nothing about how long the job it enqueued
// will occupy a worker.
type kindAgg struct {
	inflight  int     // queued or running jobs of this kind
	finished  uint64  // jobs of this kind that have completed (either outcome)
	sumMicros float64 // total execution time of those finished jobs
}

// Pool is a bounded worker pool with singleflight deduplication: jobs
// are identified by content hash (see Hash) and concurrent
// submissions of the same id share one computation. Pools are safe
// for concurrent use.
type Pool struct {
	cfg PoolConfig

	mu        sync.Mutex
	queue     chan *Job
	inflight  map[string]*Job // queued or running, by id
	jobs      map[string]*Job // pollable registry, by id
	doneOrder []*Job          // finished jobs, oldest first, for retention
	kinds     map[string]*kindAgg
	queued    int
	running   int
	submitted uint64
	deduped   uint64
	rejected  uint64
	completed uint64
	failed    uint64
	closed    bool

	baseCtx context.Context
	cancel  context.CancelFunc
	wg      sync.WaitGroup
}

// NewPool starts a pool with cfg's workers.
func NewPool(cfg PoolConfig) *Pool {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	p := &Pool{
		cfg:      cfg,
		queue:    make(chan *Job, cfg.QueueDepth),
		inflight: make(map[string]*Job),
		jobs:     make(map[string]*Job),
		kinds:    make(map[string]*kindAgg),
		baseCtx:  ctx,
		cancel:   cancel,
	}
	for i := 0; i < cfg.Workers; i++ {
		p.wg.Add(1)
		go p.worker()
	}
	return p
}

// Meta is the journalable identity of a submission: the operation
// name and the canonical request body, enough for a restart to
// rebuild the job from its accepted record. A zero Meta journals a
// bare accepted record that Recover will skip.
type Meta struct {
	Kind string
	Req  []byte
}

// Submit enqueues fn under the given id and returns its Job. If a job
// with the same id is already queued or running, that job is returned
// instead of enqueuing a duplicate (singleflight); resubmitting a
// finished id starts a fresh computation. A full queue returns
// *QueueFullError; a shut-down pool returns ErrPoolClosed.
func (p *Pool) Submit(id string, fn Func) (*Job, error) {
	return p.SubmitMeta(id, Meta{}, fn)
}

// SubmitMeta is Submit carrying the journalable request identity.
// When the pool has a journal, the accepted record — kind and request
// body included — is fsynced before the job is enqueued, so a crash
// at any later point can replay it.
//
// The append itself happens outside p.mu: an fsync is milliseconds,
// and holding the pool lock across it would serialise every
// submission, completion, Get and Stats behind disk-sync latency.
// Write-ahead ordering survives the split because the slot is
// reserved (singleflight entry, queue count) before the append and
// the channel send happens after it — the worker cannot see the job
// until its accepted record is durable.
func (p *Pool) SubmitMeta(id string, meta Meta, fn Func) (*Job, error) {
	return p.submitMeta(id, meta, fn, true)
}

// submitMeta implements SubmitMeta. durable marks submissions whose
// 202 acknowledgement promises crash-replay: those are refused while
// the journal is read-only (and rolled back when their accept record
// hits ENOSPC). The synchronous path (DoMeta) passes false — it
// acknowledges nothing it has not computed, so a full disk degrades
// its durability, never its service.
func (p *Pool) submitMeta(id string, meta Meta, fn Func, durable bool) (*Job, error) {
	if id == "" {
		return nil, cfgerr.New("jobs: empty job id")
	}
	if fn == nil {
		return nil, cfgerr.New("jobs: nil job func")
	}
	if durable && p.ReadOnly() {
		return nil, ErrReadOnly
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, ErrPoolClosed
	}
	if j, ok := p.inflight[id]; ok {
		p.deduped++
		p.mu.Unlock()
		return j, nil
	}
	if p.queued >= p.cfg.QueueDepth {
		p.rejected++
		p.mu.Unlock()
		return nil, &QueueFullError{Depth: p.cfg.QueueDepth}
	}
	j := &Job{id: id, kind: meta.Kind, fn: fn, status: StatusQueued, done: make(chan struct{})}
	p.inflight[id] = j
	p.jobs[id] = j
	p.kind(meta.Kind).inflight++
	p.queued++
	p.submitted++
	p.mu.Unlock()

	var appendErr error
	if p.cfg.Journal != nil {
		// Write-ahead: accepted must be durable before the job can
		// start (the worker can only receive it after the channel send
		// below). Append failures are counted by the journal itself —
		// except ENOSPC, which refuses the submission below: a full
		// disk must never hand out an acknowledgement it cannot honour.
		appendErr = p.cfg.Journal.Append(journal.Record{
			Type: journal.TypeAccepted, ID: id, Kind: meta.Kind, Req: meta.Req,
		})
	}

	p.mu.Lock()
	if durable && appendErr != nil && errors.Is(appendErr, syscall.ENOSPC) {
		// The accept record hit a full disk (the journal has flipped
		// read-only). Undo the reservation and refuse, typed — the job
		// was never durably acknowledged, so a crash right now loses
		// nothing the caller was promised. No failed record is written:
		// the disk that refused the accept would refuse it too.
		delete(p.inflight, id)
		delete(p.jobs, id)
		p.kind(meta.Kind).inflight--
		p.queued--
		p.submitted--
		p.mu.Unlock()
		j.complete(nil, ErrReadOnly)
		return nil, ErrReadOnly
	}
	if p.closed {
		// Shutdown began while the accepted record was being synced:
		// the queue channel is closed, so the job can never run. Undo
		// the reservation and close the journal's books on the id —
		// the caller is told ErrPoolClosed, so a later boot must not
		// resurrect work nobody was promised.
		delete(p.inflight, id)
		delete(p.jobs, id)
		p.kind(meta.Kind).inflight--
		p.queued--
		p.submitted--
		p.mu.Unlock()
		if p.cfg.Journal != nil {
			_ = p.cfg.Journal.Append(journal.Record{
				Type: journal.TypeFailed, ID: id, Err: ErrPoolClosed.Error(),
			})
		}
		// A duplicate submit may have deduped onto j during the append
		// window; fail the job so those callers' Waits return too.
		j.complete(nil, ErrPoolClosed)
		return nil, ErrPoolClosed
	}
	p.queue <- j // buffered to QueueDepth; the reservation above keeps this non-blocking
	p.mu.Unlock()
	return j, nil
}

// BatchItem is one submission in a SubmitBatch call: the same
// (id, meta, fn) triple SubmitMeta takes, as data.
type BatchItem struct {
	ID   string
	Meta Meta
	Fn   Func
}

// BatchResult is one item's outcome: exactly what SubmitMeta would
// have returned for it.
type BatchResult struct {
	Job *Job
	Err error
}

// SubmitBatch enqueues every item with per-item outcomes — a bad,
// duplicate or shed item never blocks its neighbours — but the
// accepted subset pays for durability once: slots are reserved for all
// accepted items in one pass under the lock, their accepted records go
// to the journal as ONE group commit (AppendBatch, one fsync), and
// only then are the jobs made visible to workers. results[i] mirrors
// what SubmitMeta(items[i]...) would return; a duplicate id inside the
// batch dedupes onto the first occurrence's job like any other
// singleflight hit.
func (p *Pool) SubmitBatch(items []BatchItem) []BatchResult {
	results := make([]BatchResult, len(items))
	if len(items) == 0 {
		return results
	}
	if p.ReadOnly() {
		for i := range results {
			results[i].Err = ErrReadOnly
		}
		return results
	}
	accepted := make([]int, 0, len(items)) // indices that reserved a slot
	p.mu.Lock()
	for i, it := range items {
		if it.ID == "" {
			results[i].Err = cfgerr.New("jobs: empty job id")
			continue
		}
		if it.Fn == nil {
			results[i].Err = cfgerr.New("jobs: nil job func")
			continue
		}
		if p.closed {
			results[i].Err = ErrPoolClosed
			continue
		}
		if j, ok := p.inflight[it.ID]; ok {
			p.deduped++
			results[i].Job = j
			continue
		}
		if p.queued >= p.cfg.QueueDepth {
			p.rejected++
			results[i].Err = &QueueFullError{Depth: p.cfg.QueueDepth}
			continue
		}
		j := &Job{id: it.ID, kind: it.Meta.Kind, fn: it.Fn, status: StatusQueued, done: make(chan struct{})}
		p.inflight[it.ID] = j
		p.jobs[it.ID] = j
		p.kind(it.Meta.Kind).inflight++
		p.queued++
		p.submitted++
		results[i].Job = j
		accepted = append(accepted, i)
	}
	p.mu.Unlock()

	if len(accepted) == 0 {
		return results
	}
	var appendErr error
	if p.cfg.Journal != nil {
		// Write-ahead, amortised: the whole accepted set becomes
		// durable behind one fsync before any of its jobs can run.
		recs := make([]journal.Record, len(accepted))
		for n, i := range accepted {
			it := items[i]
			recs[n] = journal.Record{
				Type: journal.TypeAccepted, ID: it.ID, Kind: it.Meta.Kind, Req: it.Meta.Req,
			}
		}
		appendErr = p.cfg.Journal.AppendBatch(recs)
	}

	p.mu.Lock()
	if appendErr != nil && errors.Is(appendErr, syscall.ENOSPC) && !p.closed {
		// The batch's accept records hit a full disk: undo every
		// reservation and refuse the whole set, typed, exactly as
		// SubmitMeta does for one — none of these jobs was durably
		// acknowledged.
		for _, i := range accepted {
			it := items[i]
			delete(p.inflight, it.ID)
			delete(p.jobs, it.ID)
			p.kind(it.Meta.Kind).inflight--
			p.queued--
			p.submitted--
		}
		p.mu.Unlock()
		for _, i := range accepted {
			results[i].Job.complete(nil, ErrReadOnly)
			results[i].Job = nil
			results[i].Err = ErrReadOnly
		}
		return results
	}
	if p.closed {
		// Shutdown began while the batch was being committed: the queue
		// channel is closed, so none of the accepted jobs can run. Undo
		// every reservation, exactly as SubmitMeta does for one.
		for _, i := range accepted {
			it := items[i]
			delete(p.inflight, it.ID)
			delete(p.jobs, it.ID)
			p.kind(it.Meta.Kind).inflight--
			p.queued--
			p.submitted--
		}
		p.mu.Unlock()
		if p.cfg.Journal != nil {
			recs := make([]journal.Record, len(accepted))
			for n, i := range accepted {
				recs[n] = journal.Record{
					Type: journal.TypeFailed, ID: items[i].ID, Err: ErrPoolClosed.Error(),
				}
			}
			_ = p.cfg.Journal.AppendBatch(recs)
		}
		for _, i := range accepted {
			results[i].Job.complete(nil, ErrPoolClosed)
			results[i].Job = nil
			results[i].Err = ErrPoolClosed
		}
		return results
	}
	for _, i := range accepted {
		p.queue <- results[i].Job // reservations above keep this non-blocking
	}
	p.mu.Unlock()
	return results
}

// kind returns (creating if needed) the aggregate for one job kind.
// Callers hold p.mu.
func (p *Pool) kind(name string) *kindAgg {
	agg := p.kinds[name]
	if agg == nil {
		agg = &kindAgg{}
		p.kinds[name] = agg
	}
	return agg
}

// Do submits fn under id and waits for the outcome — the synchronous
// entry point. The ctx bounds only this caller's wait; the job itself
// runs to completion (or its own timeout) regardless.
func (p *Pool) Do(ctx context.Context, id string, fn Func) (any, error) {
	return p.DoMeta(ctx, id, Meta{}, fn)
}

// DoMeta is Do carrying the journalable request identity, so even
// synchronous work replays after a crash. It keeps serving while the
// journal is read-only: the caller waits for the bytes, so nothing is
// acknowledged that a crash could lose — a full disk costs sync work
// its replay-ability, not its availability.
func (p *Pool) DoMeta(ctx context.Context, id string, meta Meta, fn Func) (any, error) {
	j, err := p.submitMeta(id, meta, fn, false)
	if err != nil {
		return nil, err
	}
	return j.Wait(ctx)
}

// Get returns the job with the given id: in flight, or finished and
// still inside the retention window.
func (p *Pool) Get(id string) (*Job, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	j, ok := p.jobs[id]
	return j, ok
}

// ReadOnly reports the journal's read-only degradation: while true,
// SubmitMeta and SubmitBatch refuse with ErrReadOnly. A pool without
// a journal is never read-only.
func (p *Pool) ReadOnly() bool {
	return p.cfg.Journal != nil && p.cfg.Journal.ReadOnly()
}

// Stats snapshots the pool counters.
func (p *Pool) Stats() obs.PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return obs.PoolStats{
		Workers:        p.cfg.Workers,
		QueueDepth:     p.cfg.QueueDepth,
		Queued:         p.queued,
		Running:        p.running,
		Submitted:      p.submitted,
		Deduped:        p.deduped,
		Rejected:       p.rejected,
		Completed:      p.completed,
		Failed:         p.failed,
		ExecMeanMicros: p.execMeanAllLocked(),
	}
}

// Shutdown stops intake and drains: queued and running jobs finish,
// then the workers exit. If ctx expires first, the per-job contexts
// are cancelled — jobs not yet started fail fast with the context
// error, and Shutdown returns without waiting for in-flight
// computations to notice. Submit fails with ErrPoolClosed from the
// moment Shutdown is called.
func (p *Pool) Shutdown(ctx context.Context) error {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.queue)
	}
	p.mu.Unlock()
	drained := make(chan struct{})
	go func() {
		p.wg.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		p.cancel()
		return nil
	case <-ctx.Done():
		p.cancel()
		return ctx.Err()
	}
}

func (p *Pool) worker() {
	defer p.wg.Done()
	for j := range p.queue {
		p.mu.Lock()
		p.queued--
		p.running++
		p.mu.Unlock()
		j.setRunning()
		if p.cfg.Journal != nil {
			_ = p.cfg.Journal.Append(journal.Record{Type: journal.TypeStarted, ID: j.id})
		}
		start := p.cfg.Now()
		result, err := p.runOne(j)
		p.finish(j, result, err, p.cfg.Now().Sub(start))
	}
}

// runOne executes one job under the pool's per-job context policy,
// converting panics into errors so one bad request cannot take the
// worker down.
func (p *Pool) runOne(j *Job) (any, error) {
	ctx := p.baseCtx
	if err := ctx.Err(); err != nil {
		return nil, err // forced shutdown: fail queued jobs fast
	}
	if p.cfg.JobTimeout <= 0 {
		return runRecovered(ctx, j.fn)
	}
	ctx, cancel := context.WithTimeout(ctx, p.cfg.JobTimeout)
	defer cancel()
	type outcome struct {
		result any
		err    error
	}
	done := make(chan outcome, 1)
	go func() {
		result, err := runRecovered(ctx, j.fn)
		done <- outcome{result, err}
	}()
	select {
	case oc := <-done:
		return oc.result, oc.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// runRecovered invokes fn with panics converted to errors.
func runRecovered(ctx context.Context, fn Func) (result any, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("jobs: job panicked: %v", r)
		}
	}()
	return fn(ctx)
}

// finish records the outcome, retires the job from the singleflight
// index and trims the retention window.
//
// The terminal record is appended before the job leaves the
// singleflight index, but NOT under p.mu — holding the pool lock
// across an fsync would stall every submission, poll and Stats call
// for milliseconds per completion. Per-id ordering still holds: a
// duplicate submit arriving during the append joins this finishing
// job (it is still in p.inflight) instead of minting a fresh
// accepted record, so no accepted(id) can be journaled ahead of this
// terminal one. And the append happens before j.complete wakes the
// waiters, so once a caller has seen the outcome no restart will
// re-run the job.
func (p *Pool) finish(j *Job, result any, err error, took time.Duration) {
	if p.cfg.Journal != nil {
		rec := journal.Record{Type: journal.TypeDone, ID: j.id}
		if err != nil {
			rec.Type, rec.Err = journal.TypeFailed, err.Error()
		}
		_ = p.cfg.Journal.Append(rec)
	}
	p.mu.Lock()
	p.running--
	if p.inflight[j.id] == j {
		delete(p.inflight, j.id)
	}
	if err != nil {
		p.failed++
	} else {
		p.completed++
	}
	p.observeExecLocked(j.kind, took)
	p.doneOrder = append(p.doneOrder, j)
	for len(p.doneOrder) > p.cfg.RetainDone {
		old := p.doneOrder[0]
		p.doneOrder = p.doneOrder[1:]
		if p.jobs[old.id] == old {
			delete(p.jobs, old.id)
		}
	}
	p.mu.Unlock()
	j.complete(result, err)
}

// observeExecLocked folds one finished job's execution time into its
// kind's aggregate. Callers hold p.mu.
func (p *Pool) observeExecLocked(kind string, took time.Duration) {
	agg := p.kind(kind)
	if agg.inflight > 0 {
		agg.inflight--
	}
	agg.finished++
	if us := took.Microseconds(); us > 0 {
		agg.sumMicros += float64(us)
	}
}

// ObserveExec records one job execution time for kind without running
// a job — a seed for the admission estimate, letting a deployment (or
// a test) warm the per-kind means before the first real completion.
// The pool feeds the same aggregates itself on every finish.
func (p *Pool) ObserveExec(kind string, took time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	agg := p.kind(kind)
	agg.finished++
	if us := took.Microseconds(); us > 0 {
		agg.sumMicros += float64(us)
	}
}

// ExecMeanMicros returns the observed mean execution time of kind's
// jobs in microseconds, falling back to the mean over all kinds when
// kind has no finished samples yet, and 0 when nothing has finished
// at all.
func (p *Pool) ExecMeanMicros(kind string) float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	if agg, ok := p.kinds[kind]; ok && agg.finished > 0 {
		return agg.sumMicros / float64(agg.finished)
	}
	return p.execMeanAllLocked()
}

// kindNamesLocked returns the kind keys sorted, so the float sums
// below fold in a fixed order (range-over-map order is randomised,
// and float addition is not associative). Callers hold p.mu.
func (p *Pool) kindNamesLocked() []string {
	names := make([]string, 0, len(p.kinds))
	for name := range p.kinds {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// execMeanAllLocked is the mean execution time over every finished
// job, in microseconds. Callers hold p.mu.
func (p *Pool) execMeanAllLocked() float64 {
	var sum float64
	var n uint64
	for _, name := range p.kindNamesLocked() {
		agg := p.kinds[name]
		sum += agg.sumMicros
		n += agg.finished
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// EstWaitMicros estimates how long the current backlog takes to
// drain: every queued or running job priced at its kind's observed
// mean execution time (the all-kinds mean when its own kind is still
// unobserved), spread over the workers. This is what admission
// control should shed on — job service time, not HTTP handler
// latency, which for an async submit measures only the microseconds
// it takes to return 202.
func (p *Pool) EstWaitMicros() float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	fallback := p.execMeanAllLocked()
	var total float64
	for _, name := range p.kindNamesLocked() {
		agg := p.kinds[name]
		if agg.inflight == 0 {
			continue
		}
		mean := fallback
		if agg.finished > 0 {
			mean = agg.sumMicros / float64(agg.finished)
		}
		total += float64(agg.inflight) * mean
	}
	return total / float64(p.cfg.Workers)
}

// RecoverFunc rebuilds one journaled job for Recover. It returns the
// function to run, ok=false when the job no longer needs running
// (e.g. its result is already in the content-addressed cache), or an
// error when the record cannot be resurrected (unknown kind, payload
// that no longer parses).
type RecoverFunc func(id, kind string, req []byte) (fn Func, ok bool, err error)

// Recovery summarises one Recover pass.
type Recovery struct {
	// Requeued jobs were re-enqueued and will run again; Skipped ones
	// were already satisfied (journaled done); Failed ones could not
	// be rebuilt (journaled failed, so they stop replaying).
	Requeued, Skipped, Failed int
}

// Recover replays the journal's incomplete records through resolve,
// re-enqueueing every job a crash interrupted. Job ids are content
// hashes, so a replayed job recomputes into the same cache entry a
// finished first run would have produced — replay is idempotent.
// Call it once, after NewPool and before serving traffic.
func (p *Pool) Recover(entries []journal.Record, resolve RecoverFunc) Recovery {
	var rec Recovery
	for _, e := range entries {
		fn, ok, err := resolve(e.ID, e.Kind, e.Req)
		switch {
		case err != nil:
			// Journal the failure so the record stops replaying on
			// every future boot.
			if p.cfg.Journal != nil {
				_ = p.cfg.Journal.Append(journal.Record{
					Type: journal.TypeFailed, ID: e.ID,
					Err: "recovery: " + err.Error(),
				})
			}
			rec.Failed++
		case !ok:
			// Already satisfied; close the journal's books on it.
			if p.cfg.Journal != nil {
				_ = p.cfg.Journal.Append(journal.Record{Type: journal.TypeDone, ID: e.ID})
			}
			rec.Skipped++
		default:
			if _, err := p.SubmitMeta(e.ID, Meta{Kind: e.Kind, Req: e.Req}, fn); err != nil {
				rec.Failed++
				continue
			}
			rec.Requeued++
		}
	}
	return rec
}
