package jobs

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"starperf/internal/cfgerr"
	"starperf/internal/journal"
	"starperf/internal/obs"
)

// ErrQueueFull is the sentinel matched (via errors.Is) by the typed
// *QueueFullError a saturated intake queue returns: the pool is
// applying backpressure and the caller should shed or retry later.
var ErrQueueFull = errors.New("jobs: queue full")

// ErrPoolClosed is returned by Submit after Shutdown began.
var ErrPoolClosed = errors.New("jobs: pool closed")

// QueueFullError reports a rejected submission with the queue bound
// that rejected it. errors.Is(err, ErrQueueFull) matches it.
type QueueFullError struct {
	// Depth is the configured queue bound that was full.
	Depth int
}

func (e *QueueFullError) Error() string {
	return fmt.Sprintf("jobs: queue full (depth %d)", e.Depth)
}

// Is reports the ErrQueueFull identity for errors.Is.
func (e *QueueFullError) Is(target error) bool { return target == ErrQueueFull }

// PoolConfig sizes a Pool. The zero value is usable: one worker, the
// default queue depth, no per-job timeout.
type PoolConfig struct {
	// Workers is the number of concurrent executors (default 1).
	Workers int
	// QueueDepth bounds the jobs accepted but not yet running; a
	// submission past the bound fails with *QueueFullError
	// (default 64).
	QueueDepth int
	// JobTimeout, when positive, bounds each job's wall-clock run: the
	// per-job context expires and the job is marked failed with
	// context.DeadlineExceeded. The computation goroutine is abandoned
	// to finish in the background (every simulator run is
	// cycle-bounded, so it terminates) and its result discarded —
	// the same wall-budget policy the experiment harness applies to
	// sweep points. Zero means no timeout and no extra goroutine.
	JobTimeout time.Duration
	// RetainDone bounds how many finished jobs stay pollable through
	// Get before the oldest are forgotten (default 1024). Results
	// meant to outlive the registry belong in the content-addressed
	// cache, which is keyed by the same id.
	RetainDone int
	// Journal, when set, makes the pool crash-safe: every lifecycle
	// transition (accepted, started, done, failed) is appended to the
	// durable WAL before or as it happens, and Recover re-enqueues
	// what a crash interrupted. Append failures degrade durability,
	// not service — the journal counts them (AppendErrors) and the
	// pool keeps running.
	Journal *journal.Journal
}

func (c PoolConfig) withDefaults() PoolConfig {
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.RetainDone <= 0 {
		c.RetainDone = 1024
	}
	return c
}

// Pool is a bounded worker pool with singleflight deduplication: jobs
// are identified by content hash (see Hash) and concurrent
// submissions of the same id share one computation. Pools are safe
// for concurrent use.
type Pool struct {
	cfg PoolConfig

	mu        sync.Mutex
	queue     chan *Job
	inflight  map[string]*Job // queued or running, by id
	jobs      map[string]*Job // pollable registry, by id
	doneOrder []*Job          // finished jobs, oldest first, for retention
	queued    int
	running   int
	submitted uint64
	deduped   uint64
	rejected  uint64
	completed uint64
	failed    uint64
	closed    bool

	baseCtx context.Context
	cancel  context.CancelFunc
	wg      sync.WaitGroup
}

// NewPool starts a pool with cfg's workers.
func NewPool(cfg PoolConfig) *Pool {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	p := &Pool{
		cfg:      cfg,
		queue:    make(chan *Job, cfg.QueueDepth),
		inflight: make(map[string]*Job),
		jobs:     make(map[string]*Job),
		baseCtx:  ctx,
		cancel:   cancel,
	}
	for i := 0; i < cfg.Workers; i++ {
		p.wg.Add(1)
		go p.worker()
	}
	return p
}

// Meta is the journalable identity of a submission: the operation
// name and the canonical request body, enough for a restart to
// rebuild the job from its accepted record. A zero Meta journals a
// bare accepted record that Recover will skip.
type Meta struct {
	Kind string
	Req  []byte
}

// Submit enqueues fn under the given id and returns its Job. If a job
// with the same id is already queued or running, that job is returned
// instead of enqueuing a duplicate (singleflight); resubmitting a
// finished id starts a fresh computation. A full queue returns
// *QueueFullError; a shut-down pool returns ErrPoolClosed.
func (p *Pool) Submit(id string, fn Func) (*Job, error) {
	return p.SubmitMeta(id, Meta{}, fn)
}

// SubmitMeta is Submit carrying the journalable request identity.
// When the pool has a journal, the accepted record — kind and request
// body included — is fsynced before the job is enqueued, so a crash
// at any later point can replay it.
func (p *Pool) SubmitMeta(id string, meta Meta, fn Func) (*Job, error) {
	if id == "" {
		return nil, cfgerr.New("jobs: empty job id")
	}
	if fn == nil {
		return nil, cfgerr.New("jobs: nil job func")
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil, ErrPoolClosed
	}
	if j, ok := p.inflight[id]; ok {
		p.deduped++
		return j, nil
	}
	if p.queued >= p.cfg.QueueDepth {
		p.rejected++
		return nil, &QueueFullError{Depth: p.cfg.QueueDepth}
	}
	if p.cfg.Journal != nil {
		// Write-ahead: accepted must be durable before the job can
		// start (the worker can only receive it after the channel send
		// below). Append failures are counted by the journal itself.
		_ = p.cfg.Journal.Append(journal.Record{
			Type: journal.TypeAccepted, ID: id, Kind: meta.Kind, Req: meta.Req,
		})
	}
	j := &Job{id: id, fn: fn, status: StatusQueued, done: make(chan struct{})}
	p.inflight[id] = j
	p.jobs[id] = j
	p.queued++
	p.submitted++
	p.queue <- j // buffered to QueueDepth; the counter guard above keeps this non-blocking
	return j, nil
}

// Do submits fn under id and waits for the outcome — the synchronous
// entry point. The ctx bounds only this caller's wait; the job itself
// runs to completion (or its own timeout) regardless.
func (p *Pool) Do(ctx context.Context, id string, fn Func) (any, error) {
	return p.DoMeta(ctx, id, Meta{}, fn)
}

// DoMeta is Do carrying the journalable request identity, so even
// synchronous work replays after a crash.
func (p *Pool) DoMeta(ctx context.Context, id string, meta Meta, fn Func) (any, error) {
	j, err := p.SubmitMeta(id, meta, fn)
	if err != nil {
		return nil, err
	}
	return j.Wait(ctx)
}

// Get returns the job with the given id: in flight, or finished and
// still inside the retention window.
func (p *Pool) Get(id string) (*Job, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	j, ok := p.jobs[id]
	return j, ok
}

// Stats snapshots the pool's counters.
func (p *Pool) Stats() obs.PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return obs.PoolStats{
		Workers:    p.cfg.Workers,
		QueueDepth: p.cfg.QueueDepth,
		Queued:     p.queued,
		Running:    p.running,
		Submitted:  p.submitted,
		Deduped:    p.deduped,
		Rejected:   p.rejected,
		Completed:  p.completed,
		Failed:     p.failed,
	}
}

// Shutdown stops intake and drains: queued and running jobs finish,
// then the workers exit. If ctx expires first, the per-job contexts
// are cancelled — jobs not yet started fail fast with the context
// error, and Shutdown returns without waiting for in-flight
// computations to notice. Submit fails with ErrPoolClosed from the
// moment Shutdown is called.
func (p *Pool) Shutdown(ctx context.Context) error {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.queue)
	}
	p.mu.Unlock()
	drained := make(chan struct{})
	go func() {
		p.wg.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		p.cancel()
		return nil
	case <-ctx.Done():
		p.cancel()
		return ctx.Err()
	}
}

func (p *Pool) worker() {
	defer p.wg.Done()
	for j := range p.queue {
		p.mu.Lock()
		p.queued--
		p.running++
		p.mu.Unlock()
		j.setRunning()
		if p.cfg.Journal != nil {
			_ = p.cfg.Journal.Append(journal.Record{Type: journal.TypeStarted, ID: j.id})
		}
		result, err := p.runOne(j)
		p.finish(j, result, err)
	}
}

// runOne executes one job under the pool's per-job context policy,
// converting panics into errors so one bad request cannot take the
// worker down.
func (p *Pool) runOne(j *Job) (any, error) {
	ctx := p.baseCtx
	if err := ctx.Err(); err != nil {
		return nil, err // forced shutdown: fail queued jobs fast
	}
	if p.cfg.JobTimeout <= 0 {
		return runRecovered(ctx, j.fn)
	}
	ctx, cancel := context.WithTimeout(ctx, p.cfg.JobTimeout)
	defer cancel()
	type outcome struct {
		result any
		err    error
	}
	done := make(chan outcome, 1)
	go func() {
		result, err := runRecovered(ctx, j.fn)
		done <- outcome{result, err}
	}()
	select {
	case oc := <-done:
		return oc.result, oc.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// runRecovered invokes fn with panics converted to errors.
func runRecovered(ctx context.Context, fn Func) (result any, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("jobs: job panicked: %v", r)
		}
	}()
	return fn(ctx)
}

// finish records the outcome, retires the job from the singleflight
// index and trims the retention window.
func (p *Pool) finish(j *Job, result any, err error) {
	p.mu.Lock()
	p.running--
	if p.inflight[j.id] == j {
		delete(p.inflight, j.id)
	}
	if err != nil {
		p.failed++
	} else {
		p.completed++
	}
	p.doneOrder = append(p.doneOrder, j)
	for len(p.doneOrder) > p.cfg.RetainDone {
		old := p.doneOrder[0]
		p.doneOrder = p.doneOrder[1:]
		if p.jobs[old.id] == old {
			delete(p.jobs, old.id)
		}
	}
	if p.cfg.Journal != nil {
		rec := journal.Record{Type: journal.TypeDone, ID: j.id}
		if err != nil {
			rec.Type, rec.Err = journal.TypeFailed, err.Error()
		}
		// Journaled under p.mu, like every lifecycle append: the
		// journal's record order then matches the pool's transition
		// order exactly, so a resubmission of this id (possible the
		// moment the inflight entry above is gone) cannot journal its
		// fresh accepted record before this terminal one — and it is
		// journaled before waiters wake, so once a caller has seen the
		// outcome no restart will re-run the job.
		_ = p.cfg.Journal.Append(rec)
	}
	p.mu.Unlock()
	j.complete(result, err)
}

// RecoverFunc rebuilds one journaled job for Recover. It returns the
// function to run, ok=false when the job no longer needs running
// (e.g. its result is already in the content-addressed cache), or an
// error when the record cannot be resurrected (unknown kind, payload
// that no longer parses).
type RecoverFunc func(id, kind string, req []byte) (fn Func, ok bool, err error)

// Recovery summarises one Recover pass.
type Recovery struct {
	// Requeued jobs were re-enqueued and will run again; Skipped ones
	// were already satisfied (journaled done); Failed ones could not
	// be rebuilt (journaled failed, so they stop replaying).
	Requeued, Skipped, Failed int
}

// Recover replays the journal's incomplete records through resolve,
// re-enqueueing every job a crash interrupted. Job ids are content
// hashes, so a replayed job recomputes into the same cache entry a
// finished first run would have produced — replay is idempotent.
// Call it once, after NewPool and before serving traffic.
func (p *Pool) Recover(entries []journal.Record, resolve RecoverFunc) Recovery {
	var rec Recovery
	for _, e := range entries {
		fn, ok, err := resolve(e.ID, e.Kind, e.Req)
		switch {
		case err != nil:
			// Journal the failure so the record stops replaying on
			// every future boot.
			if p.cfg.Journal != nil {
				_ = p.cfg.Journal.Append(journal.Record{
					Type: journal.TypeFailed, ID: e.ID,
					Err: "recovery: " + err.Error(),
				})
			}
			rec.Failed++
		case !ok:
			// Already satisfied; close the journal's books on it.
			if p.cfg.Journal != nil {
				_ = p.cfg.Journal.Append(journal.Record{Type: journal.TypeDone, ID: e.ID})
			}
			rec.Skipped++
		default:
			if _, err := p.SubmitMeta(e.ID, Meta{Kind: e.Kind, Req: e.Req}, fn); err != nil {
				rec.Failed++
				continue
			}
			rec.Requeued++
		}
	}
	return rec
}
