package jobs

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestPoolRunsJobs: submitted jobs complete with their results and
// the counters add up.
func TestPoolRunsJobs(t *testing.T) {
	p := NewPool(PoolConfig{Workers: 4, QueueDepth: 64})
	defer p.Shutdown(context.Background())
	var handles []*Job
	for i := 0; i < 20; i++ {
		i := i
		j, err := p.Submit(fmt.Sprintf("job/%d", i), func(ctx context.Context) (any, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, j)
	}
	for i, j := range handles {
		v, err := j.Wait(context.Background())
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
		if v.(int) != i*i {
			t.Fatalf("job %d returned %v, want %d", i, v, i*i)
		}
		if j.Status() != StatusDone {
			t.Fatalf("job %d status %s, want done", i, j.Status())
		}
	}
	st := p.Stats()
	if st.Submitted != 20 || st.Completed != 20 || st.Failed != 0 {
		t.Fatalf("stats = %+v, want 20 submitted/completed", st)
	}
}

// TestPoolBackpressure: with workers parked, submissions past
// QueueDepth fail with the typed queue-full error and are counted.
func TestPoolBackpressure(t *testing.T) {
	p := NewPool(PoolConfig{Workers: 1, QueueDepth: 2})
	defer p.Shutdown(context.Background())
	block := make(chan struct{})
	park := func(ctx context.Context) (any, error) { <-block; return nil, nil }
	// One job occupies the worker...
	if _, err := p.Submit("park/0", park); err != nil {
		t.Fatal(err)
	}
	// Bounded poll (~2s) instead of a wall-clock deadline, keeping the
	// package inside the seedrand lint scope.
	for tries := 0; p.Stats().Running == 0; tries++ {
		if tries > 2000 {
			t.Fatal("worker never dequeued the first job")
		}
		time.Sleep(time.Millisecond)
	}
	// ...and two more fill the queue to its bound.
	for i := 1; i < 3; i++ {
		if _, err := p.Submit(fmt.Sprintf("park/%d", i), park); err != nil {
			t.Fatal(err)
		}
	}
	_, err := p.Submit("park/overflow", park)
	var qf *QueueFullError
	if !errors.As(err, &qf) || !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow submit: got %v, want QueueFullError", err)
	}
	if qf.Depth != 2 {
		t.Fatalf("QueueFullError.Depth = %d, want 2", qf.Depth)
	}
	if st := p.Stats(); st.Rejected != 1 {
		t.Fatalf("rejected = %d, want 1", st.Rejected)
	}
	close(block)
}

// TestPoolSingleflight: concurrent submissions of the same id share
// one computation, observed through the dedup counter and a single
// execution count.
func TestPoolSingleflight(t *testing.T) {
	p := NewPool(PoolConfig{Workers: 2, QueueDepth: 16})
	defer p.Shutdown(context.Background())
	var runs atomic.Int64
	release := make(chan struct{})
	fn := func(ctx context.Context) (any, error) {
		runs.Add(1)
		<-release
		return "result", nil
	}
	const callers = 8
	jobsSeen := make([]*Job, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			j, err := p.Submit("shared", fn)
			if err != nil {
				t.Error(err)
				return
			}
			jobsSeen[i] = j
		}(i)
	}
	wg.Wait()
	close(release)
	for i, j := range jobsSeen {
		if j == nil {
			t.Fatalf("caller %d got no job", i)
		}
		if j != jobsSeen[0] {
			t.Fatalf("caller %d got a different job instance", i)
		}
	}
	if v, err := jobsSeen[0].Wait(context.Background()); err != nil || v != "result" {
		t.Fatalf("shared job: %v, %v", v, err)
	}
	if n := runs.Load(); n != 1 {
		t.Fatalf("fn ran %d times, want 1", n)
	}
	st := p.Stats()
	if st.Submitted != 1 || st.Deduped != callers-1 {
		t.Fatalf("stats = %+v, want 1 submitted / %d deduped", st, callers-1)
	}
}

// TestPoolResubmitAfterDone: a finished id is recomputable (the
// singleflight window covers in-flight jobs only).
func TestPoolResubmitAfterDone(t *testing.T) {
	p := NewPool(PoolConfig{Workers: 1})
	defer p.Shutdown(context.Background())
	var runs atomic.Int64
	fn := func(ctx context.Context) (any, error) { return runs.Add(1), nil }
	for want := int64(1); want <= 2; want++ {
		j, err := p.Submit("again", fn)
		if err != nil {
			t.Fatal(err)
		}
		v, err := j.Wait(context.Background())
		if err != nil || v.(int64) != want {
			t.Fatalf("run %d: got %v, %v", want, v, err)
		}
	}
}

// TestPoolJobTimeout: a job past JobTimeout fails with
// context.DeadlineExceeded while the pool keeps serving.
func TestPoolJobTimeout(t *testing.T) {
	p := NewPool(PoolConfig{Workers: 1, JobTimeout: 20 * time.Millisecond})
	defer p.Shutdown(context.Background())
	release := make(chan struct{})
	defer close(release)
	slow, err := p.Submit("slow", func(ctx context.Context) (any, error) {
		<-release
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := slow.Wait(context.Background()); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("slow job: got %v, want deadline exceeded", err)
	}
	if slow.Status() != StatusFailed {
		t.Fatalf("slow job status %s, want failed", slow.Status())
	}
	fast, err := p.Do(context.Background(), "fast", func(ctx context.Context) (any, error) {
		return 42, nil
	})
	if err != nil || fast.(int) != 42 {
		t.Fatalf("fast job after timeout: %v, %v", fast, err)
	}
}

// TestPoolPanicBecomesError: a panicking job fails its own Job
// without killing the worker.
func TestPoolPanicBecomesError(t *testing.T) {
	p := NewPool(PoolConfig{Workers: 1})
	defer p.Shutdown(context.Background())
	_, err := p.Do(context.Background(), "boom", func(ctx context.Context) (any, error) {
		panic("kaboom")
	})
	if err == nil || err.Error() != "jobs: job panicked: kaboom" {
		t.Fatalf("panic job: got %v", err)
	}
	if v, err := p.Do(context.Background(), "ok", func(ctx context.Context) (any, error) {
		return "alive", nil
	}); err != nil || v != "alive" {
		t.Fatalf("pool dead after panic: %v, %v", v, err)
	}
	if st := p.Stats(); st.Failed != 1 || st.Completed != 1 {
		t.Fatalf("stats = %+v, want 1 failed / 1 completed", st)
	}
}

// TestPoolShutdownDrains: Shutdown completes queued work, then Submit
// refuses with ErrPoolClosed.
func TestPoolShutdownDrains(t *testing.T) {
	p := NewPool(PoolConfig{Workers: 2, QueueDepth: 32})
	var done atomic.Int64
	var handles []*Job
	for i := 0; i < 10; i++ {
		j, err := p.Submit(fmt.Sprintf("drain/%d", i), func(ctx context.Context) (any, error) {
			done.Add(1)
			return nil, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, j)
	}
	if err := p.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if n := done.Load(); n != 10 {
		t.Fatalf("drained %d jobs, want 10", n)
	}
	for i, j := range handles {
		if j.Status() != StatusDone {
			t.Fatalf("job %d not done after drain: %s", i, j.Status())
		}
	}
	if _, err := p.Submit("late", func(ctx context.Context) (any, error) { return nil, nil }); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("post-shutdown submit: got %v, want ErrPoolClosed", err)
	}
}

// TestPoolGetRetention: finished jobs stay pollable until RetainDone
// pushes them out, oldest first.
func TestPoolGetRetention(t *testing.T) {
	p := NewPool(PoolConfig{Workers: 1, RetainDone: 2, QueueDepth: 8})
	defer p.Shutdown(context.Background())
	for i := 0; i < 3; i++ {
		id := fmt.Sprintf("keep/%d", i)
		if _, err := p.Do(context.Background(), id, func(ctx context.Context) (any, error) {
			return i, nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := p.Get("keep/0"); ok {
		t.Fatal("oldest finished job survived past RetainDone")
	}
	for _, id := range []string{"keep/1", "keep/2"} {
		j, ok := p.Get(id)
		if !ok || j.Status() != StatusDone {
			t.Fatalf("job %s not retained", id)
		}
	}
}

// TestSubmitValidation: empty ids and nil funcs are configuration
// errors.
func TestSubmitValidation(t *testing.T) {
	p := NewPool(PoolConfig{})
	defer p.Shutdown(context.Background())
	if _, err := p.Submit("", func(ctx context.Context) (any, error) { return nil, nil }); err == nil {
		t.Fatal("empty id accepted")
	}
	if _, err := p.Submit("x", nil); err == nil {
		t.Fatal("nil fn accepted")
	}
}
