// Package jobs is the deterministic job engine behind the serving
// layer (internal/server, cmd/starperfd) and the experiment sweeps
// (internal/experiments): content-addressed job identity plus a
// bounded worker pool.
//
// Identity. CanonicalJSON serialises any JSON-encodable value into a
// canonical form — object keys sorted, numbers kept verbatim — so the
// same logical request always produces the same bytes regardless of
// field order or encoding round-trips, and Hash condenses that form
// into a versioned "sha256:..." content hash. The hash is the job id,
// the singleflight key and the cache key (internal/cache), which is
// what makes "a cache hit is byte-identical to a recompute" a checkable
// guarantee rather than a convention.
//
// Execution. Pool runs submitted Funcs on a fixed set of workers with
// a bounded intake queue (excess submissions fail fast with the typed
// ErrQueueFull instead of piling up), a per-job context carrying the
// configured timeout, and singleflight deduplication: concurrent
// submissions of the same id attach to the one in-flight Job rather
// than recomputing. Finished jobs stay pollable (Pool.Get) until the
// retention bound evicts them.
//
// The engine itself stays deterministic — no wall-clock reads, no
// randomness; job ids are pure functions of their requests — so a pool
// of N workers produces byte-identical results to a serial run, a
// property the experiment harness pins in its tests.
package jobs

import (
	"context"
	"errors"
	"fmt"
	"sync"
)

// ErrNotFinished classifies Result calls on a job that is still
// queued or running: synchronise with Wait or Done first.
var ErrNotFinished = errors.New("jobs: job not finished")

// Status is the lifecycle state of a Job.
type Status string

// The job lifecycle: queued → running → done | failed.
const (
	StatusQueued  Status = "queued"
	StatusRunning Status = "running"
	StatusDone    Status = "done"
	StatusFailed  Status = "failed"
)

// Func is the unit of work a Pool executes. The context carries the
// pool's per-job timeout and is cancelled on forced shutdown; compute
// kernels that cannot observe it (the simulator is cycle-bounded by
// construction) may ignore it.
type Func func(ctx context.Context) (any, error)

// Job is one submitted computation, shared by every caller that
// submitted the same id while it was in flight.
type Job struct {
	id   string
	kind string // Meta.Kind, for per-kind execution accounting
	fn   Func

	mu     sync.Mutex
	status Status
	result any
	err    error
	done   chan struct{}
}

// ID returns the job's content-hash id.
func (j *Job) ID() string { return j.id }

// Status returns the job's current lifecycle state.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status
}

// Done returns a channel closed when the job finishes (done or
// failed).
func (j *Job) Done() <-chan struct{} { return j.done }

// Result returns the job's outcome. Calling it before the job has
// finished is an error; use Wait or Done to synchronise.
func (j *Job) Result() (any, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch j.status {
	case StatusDone:
		return j.result, nil
	case StatusFailed:
		return nil, j.err
	default:
		return nil, fmt.Errorf("%w: job %s (%s)", ErrNotFinished, j.id, j.status)
	}
}

// Wait blocks until the job finishes or ctx is done, returning the
// job's outcome or the context's error. A context expiry abandons the
// wait, not the job: the computation keeps running and stays pollable.
func (j *Job) Wait(ctx context.Context) (any, error) {
	select {
	case <-j.done:
		return j.Result()
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// setRunning advances queued → running (idempotent).
func (j *Job) setRunning() {
	j.mu.Lock()
	if j.status == StatusQueued {
		j.status = StatusRunning
	}
	j.mu.Unlock()
}

// complete records the outcome and releases every waiter.
func (j *Job) complete(result any, err error) {
	j.mu.Lock()
	j.result, j.err = result, err
	if err != nil {
		j.status = StatusFailed
	} else {
		j.status = StatusDone
	}
	j.mu.Unlock()
	close(j.done)
}
