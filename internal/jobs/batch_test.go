package jobs

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"starperf/internal/cfgerr"
	"starperf/internal/journal"
)

// TestSubmitBatchOutcomes: one call, per-item results — good items
// run, bad items error, duplicates dedup onto the first occurrence,
// and overflow items get the typed queue-full error.
func TestSubmitBatchOutcomes(t *testing.T) {
	p := NewPool(PoolConfig{Workers: 2, QueueDepth: 3})
	defer p.Shutdown(context.Background())
	ran := func(v int) Func {
		return func(ctx context.Context) (any, error) { return v, nil }
	}
	block := make(chan struct{})
	unblock := sync.OnceFunc(func() { close(block) })
	defer unblock() // the deferred Shutdown needs the parked jobs released
	park := func(ctx context.Context) (any, error) { <-block; return nil, nil }
	// Fill the workers so the queue bound is observable. Bounded poll
	// (~2s) as in pool_test, not a wall-clock deadline.
	p.Submit("park/0", park)
	p.Submit("park/1", park)
	for tries := 0; p.Stats().Running < 2; tries++ {
		if tries > 2000 {
			t.Fatal("workers never picked up parked jobs")
		}
		time.Sleep(time.Millisecond)
	}
	res := p.SubmitBatch([]BatchItem{
		{ID: "batch/0", Fn: ran(0)},
		{ID: "", Fn: ran(1)},        // invalid: empty id
		{ID: "batch/2", Fn: nil},    // invalid: nil fn
		{ID: "batch/0", Fn: ran(3)}, // duplicate of item 0
		{ID: "batch/4", Fn: ran(4)}, // fills the queue with 0, park backlog...
		{ID: "batch/5", Fn: ran(5)}, // third slot
		{ID: "batch/6", Fn: ran(6)}, // queue full
	})
	if len(res) != 7 {
		t.Fatalf("got %d results for 7 items", len(res))
	}
	if res[0].Err != nil || res[0].Job == nil {
		t.Fatalf("item 0: %+v", res[0])
	}
	if !errors.Is(res[1].Err, cfgerr.ErrInvalid) {
		t.Fatalf("empty id: %v, want cfgerr.ErrInvalid", res[1].Err)
	}
	if !errors.Is(res[2].Err, cfgerr.ErrInvalid) {
		t.Fatalf("nil fn: %v, want cfgerr.ErrInvalid", res[2].Err)
	}
	if res[3].Job != res[0].Job || res[3].Err != nil {
		t.Fatalf("duplicate did not dedup: %+v vs %+v", res[3], res[0])
	}
	if res[4].Err != nil || res[5].Err != nil {
		t.Fatalf("items 4/5 rejected: %v %v", res[4].Err, res[5].Err)
	}
	if !errors.Is(res[6].Err, ErrQueueFull) {
		t.Fatalf("overflow item: %v, want ErrQueueFull", res[6].Err)
	}
	st := p.Stats()
	if st.Deduped != 1 || st.Rejected != 1 {
		t.Fatalf("stats = %+v, want 1 deduped 1 rejected", st)
	}
	unblock()
	for _, i := range []int{0, 4, 5} {
		v, err := res[i].Job.Wait(context.Background())
		if err != nil {
			t.Fatalf("item %d: %v", i, err)
		}
		if want := map[int]int{0: 0, 4: 4, 5: 5}[i]; v.(int) != want {
			t.Fatalf("item %d returned %v, want %d", i, v, want)
		}
	}
}

// TestSubmitBatchSingleJournalCommit: the accepted set is one
// AppendBatch — the journal sees one commit carrying every accepted
// record, and each record replays after a restart.
func TestSubmitBatchSingleJournalCommit(t *testing.T) {
	dir := t.TempDir()
	j, _, err := journal.Open(journal.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	p := NewPool(PoolConfig{Workers: 1, QueueDepth: 64, Journal: j})
	block := make(chan struct{})
	items := make([]BatchItem, 8)
	for i := range items {
		items[i] = BatchItem{
			ID:   fmt.Sprintf("batch/%d", i),
			Meta: Meta{Kind: "predict", Req: []byte(fmt.Sprintf(`{"i":%d}`, i))},
			Fn:   func(ctx context.Context) (any, error) { <-block; return nil, nil },
		}
	}
	res := p.SubmitBatch(items)
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("item %d: %v", i, r.Err)
		}
	}
	st := j.Stats()
	// One accepted-set commit; the worker may have appended a started
	// record for the job it picked up, so allow commits ≥ 1 but demand
	// a single commit carried all 8 accepted records.
	if st.MaxBatch != 8 {
		t.Fatalf("accepted set split across commits: %+v", st)
	}
	close(block)
	p.Shutdown(context.Background())
	j.Close()

	// The accepted records replay: a crash right after SubmitBatch
	// would re-run all 8.
	j2, rec, err := journal.Open(journal.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if rec.CorruptSkipped != 0 {
		t.Fatalf("recovery skipped %d records", rec.CorruptSkipped)
	}
	seen := make(map[string]bool)
	for _, r := range rec.Incomplete {
		seen[r.ID] = true
	}
	// All jobs finished before shutdown, so nothing should be pending —
	// but every accepted record must have been journaled (replayed
	// counts accepted+started+done).
	if len(rec.Incomplete) != 0 {
		t.Fatalf("unexpected pending jobs after clean shutdown: %v", seen)
	}
	if rec.Records < 8*2 {
		t.Fatalf("journal replayed only %d records for 8 accepted+terminal", rec.Records)
	}
}

// TestSubmitBatchClosedPool: batch against a shut-down pool errors
// every item with ErrPoolClosed.
func TestSubmitBatchClosedPool(t *testing.T) {
	p := NewPool(PoolConfig{Workers: 1})
	p.Shutdown(context.Background())
	res := p.SubmitBatch([]BatchItem{
		{ID: "a", Fn: func(ctx context.Context) (any, error) { return nil, nil }},
		{ID: "b", Fn: func(ctx context.Context) (any, error) { return nil, nil }},
	})
	for i, r := range res {
		if !errors.Is(r.Err, ErrPoolClosed) {
			t.Fatalf("item %d: %v, want ErrPoolClosed", i, r.Err)
		}
	}
}

// TestSubmitBatchMatchesIndividualSubmits: the same items submitted as
// a batch and one-by-one produce identical results (content-hash ids
// make this byte-identical by construction; assert it anyway — the
// batch path must not perturb execution).
func TestSubmitBatchMatchesIndividualSubmits(t *testing.T) {
	run := func(batch bool) map[string]any {
		p := NewPool(PoolConfig{Workers: 2, QueueDepth: 16})
		defer p.Shutdown(context.Background())
		items := make([]BatchItem, 6)
		for i := range items {
			i := i
			items[i] = BatchItem{
				ID: fmt.Sprintf("job/%d", i),
				Fn: func(ctx context.Context) (any, error) { return i * 7, nil },
			}
		}
		out := make(map[string]any)
		if batch {
			for i, r := range p.SubmitBatch(items) {
				if r.Err != nil {
					t.Fatalf("batch item %d: %v", i, r.Err)
				}
				v, err := r.Job.Wait(context.Background())
				if err != nil {
					t.Fatal(err)
				}
				out[items[i].ID] = v
			}
			return out
		}
		for _, it := range items {
			j, err := p.SubmitMeta(it.ID, it.Meta, it.Fn)
			if err != nil {
				t.Fatal(err)
			}
			v, err := j.Wait(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			out[it.ID] = v
		}
		return out
	}
	batched, serial := run(true), run(false)
	if len(batched) != len(serial) {
		t.Fatalf("result sets differ: %d vs %d", len(batched), len(serial))
	}
	for id, v := range serial {
		if batched[id] != v {
			t.Fatalf("job %s: batch=%v serial=%v", id, batched[id], v)
		}
	}
}
