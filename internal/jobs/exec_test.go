package jobs

// Per-kind execution-time accounting: the numbers admission control
// prices the backlog with. All timing flows through the injected
// clock, so the assertions are exact and deterministic — no wall
// clock, no sleeps.

import (
	"context"
	"sync"
	"testing"
	"time"
)

// fakeClock is a mutex-guarded manual clock for PoolConfig.Now.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1000, 0)} }

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// TestPoolExecAccounting: a finished job's execution time lands in
// its kind's mean, unknown kinds fall back to the all-kinds mean, and
// EstWaitMicros prices the live backlog per kind.
func TestPoolExecAccounting(t *testing.T) {
	clk := newFakeClock()
	p := NewPool(PoolConfig{Workers: 1, QueueDepth: 8, Now: clk.now})
	defer p.Shutdown(context.Background())
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	// One "sim" job that takes 2s of fake time.
	j, err := p.SubmitMeta("sha256:exec0", Meta{Kind: "sim"}, func(ctx context.Context) (any, error) {
		clk.advance(2 * time.Second)
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	if got := p.ExecMeanMicros("sim"); got != 2e6 {
		t.Fatalf("ExecMeanMicros(sim) = %v, want 2e6", got)
	}
	// A kind with no finished samples falls back to the overall mean.
	if got := p.ExecMeanMicros("unseen"); got != 2e6 {
		t.Fatalf("ExecMeanMicros(unseen) = %v, want fallback 2e6", got)
	}
	if st := p.Stats(); st.ExecMeanMicros != 2e6 {
		t.Fatalf("Stats().ExecMeanMicros = %v, want 2e6", st.ExecMeanMicros)
	}

	// Backlog: one blocked "sim" job and one blocked bare job. Each is
	// priced at 2s (the bare kind through the fallback), over 1 worker.
	gate := make(chan struct{})
	defer close(gate)
	block := func(ctx context.Context) (any, error) {
		select {
		case <-gate:
		case <-ctx.Done():
		}
		return nil, nil
	}
	if _, err := p.SubmitMeta("sha256:exec1", Meta{Kind: "sim"}, block); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Submit("sha256:exec2", block); err != nil {
		t.Fatal(err)
	}
	if got := p.EstWaitMicros(); got != 4e6 {
		t.Fatalf("EstWaitMicros = %v, want 4e6 (2 jobs × 2s / 1 worker)", got)
	}
}

// TestObserveExecSeedsEstimates: ObserveExec warms the per-kind means
// without running a job, and an idle pool estimates zero wait.
func TestObserveExecSeedsEstimates(t *testing.T) {
	p := NewPool(PoolConfig{Workers: 2})
	defer p.Shutdown(context.Background())
	p.ObserveExec("sweep", 3*time.Second)
	if got := p.ExecMeanMicros("sweep"); got != 3e6 {
		t.Fatalf("seeded ExecMeanMicros = %v, want 3e6", got)
	}
	if got := p.EstWaitMicros(); got != 0 {
		t.Fatalf("EstWaitMicros = %v on an idle pool, want 0", got)
	}
}
