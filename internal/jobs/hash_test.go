package jobs

import (
	"strings"
	"testing"
)

// TestCanonicalJSONOrderIndependent: two maps with the same entries
// in different insertion orders canonicalise identically, and a
// struct canonicalises to the same bytes as the equivalent map.
func TestCanonicalJSONOrderIndependent(t *testing.T) {
	type req struct {
		B float64 `json:"b"`
		A int     `json:"a"`
	}
	m1 := map[string]any{"a": 3, "b": 0.25}
	m2 := map[string]any{"b": 0.25, "a": 3}
	c1, err := CanonicalJSON(m1)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := CanonicalJSON(m2)
	if err != nil {
		t.Fatal(err)
	}
	cs, err := CanonicalJSON(req{B: 0.25, A: 3})
	if err != nil {
		t.Fatal(err)
	}
	if string(c1) != string(c2) {
		t.Fatalf("map order changed canonical form: %s vs %s", c1, c2)
	}
	if string(c1) != string(cs) {
		t.Fatalf("struct and map canonical forms differ: %s vs %s", cs, c1)
	}
	if want := `{"a":3,"b":0.25}`; string(c1) != want {
		t.Fatalf("canonical form = %s, want %s", c1, want)
	}
}

// TestCanonicalJSONPreservesNumbers: float formatting survives the
// round trip verbatim (json.Number), so 0.1 never becomes
// 0.1000000000000000055...
func TestCanonicalJSONPreservesNumbers(t *testing.T) {
	c, err := CanonicalJSON(map[string]any{"rate": 0.015, "big": uint64(1 << 62)})
	if err != nil {
		t.Fatal(err)
	}
	want := `{"big":4611686018427387904,"rate":0.015}`
	if string(c) != want {
		t.Fatalf("canonical form = %s, want %s", c, want)
	}
}

// TestHashShapeAndDomainSeparation: hashes carry the sha256: prefix,
// and the same payload under different kinds (or a different value
// under the same kind) hashes differently.
func TestHashShapeAndDomainSeparation(t *testing.T) {
	payload := map[string]any{"v": 6}
	h1, err := Hash("predict", payload)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := Hash("simulate", payload)
	if err != nil {
		t.Fatal(err)
	}
	h3, err := Hash("predict", map[string]any{"v": 9})
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range []string{h1, h2, h3} {
		if !strings.HasPrefix(h, "sha256:") || len(h) != len("sha256:")+64 {
			t.Fatalf("malformed hash %q", h)
		}
	}
	if h1 == h2 {
		t.Fatalf("kinds predict/simulate collided: %s", h1)
	}
	if h1 == h3 {
		t.Fatalf("different payloads collided under predict: %s", h1)
	}
}

// TestHashGolden pins the canonical hash of a fixed payload: any
// accidental change to the canonicalisation, the domain line or the
// schema version shows up as a cache-key drift failure here before it
// silently invalidates every deployed cache.
func TestHashGolden(t *testing.T) {
	h, err := Hash("predict", map[string]any{"a": 3, "b": 0.25})
	if err != nil {
		t.Fatal(err)
	}
	const want = "sha256:c234a6e90c1ccd04ff592845093409889d187091c8ef2b9ded6ce053876c6e2e"
	if h != want {
		t.Fatalf("golden hash drifted:\n got  %s\n want %s", h, want)
	}
}

// TestHashRejectsUnencodable: values JSON cannot represent surface as
// errors instead of colliding on a partial form.
func TestHashRejectsUnencodable(t *testing.T) {
	if _, err := Hash("predict", map[string]any{"f": func() {}}); err == nil {
		t.Fatal("expected error hashing a func value")
	}
}
