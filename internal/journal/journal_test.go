package journal

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"starperf/internal/fsx"
)

func mustOpen(t *testing.T, opts Options) (*Journal, *Recovery) {
	t.Helper()
	j, rec, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	return j, rec
}

// accepted builds an accepted record for job i.
func accepted(i int) Record {
	return Record{
		Type: TypeAccepted,
		ID:   fmt.Sprintf("sha256:%032x", i),
		Kind: "predict",
		Req:  json.RawMessage(fmt.Sprintf(`{"i":%d}`, i)),
	}
}

// TestAppendReplayRoundTrip: a full lifecycle journals and replays;
// only the interrupted job comes back as incomplete, with its request
// payload intact.
func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, rec := mustOpen(t, Options{Dir: dir})
	if rec.Records != 0 || rec.Segments != 0 || len(rec.Incomplete) != 0 {
		t.Fatalf("fresh journal recovered %+v", rec)
	}
	for i := 0; i < 3; i++ {
		if err := j.Append(accepted(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Jobs 0 and 1 run to completion; job 2 is interrupted mid-run.
	for i := 0; i < 3; i++ {
		if err := j.Append(Record{Type: TypeStarted, ID: accepted(i).ID}); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Append(Record{Type: TypeDone, ID: accepted(0).ID}); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(Record{Type: TypeFailed, ID: accepted(1).ID, Err: "boom"}); err != nil {
		t.Fatal(err)
	}
	if got := j.Pending(); got != 1 {
		t.Fatalf("Pending() = %d, want 1", got)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, rec2 := mustOpen(t, Options{Dir: dir})
	defer j2.Close()
	if rec2.Records != 8 {
		t.Fatalf("replayed %d records, want 8", rec2.Records)
	}
	if rec2.CorruptSkipped != 0 {
		t.Fatalf("corrupt on a clean journal: %d", rec2.CorruptSkipped)
	}
	if len(rec2.Incomplete) != 1 {
		t.Fatalf("incomplete = %v, want exactly job 2", rec2.Incomplete)
	}
	got := rec2.Incomplete[0]
	if got.ID != accepted(2).ID || got.Kind != "predict" || string(got.Req) != `{"i":2}` {
		t.Fatalf("incomplete record mangled: %+v", got)
	}
}

// TestAppendAfterClose fails with ErrClosed.
func TestAppendAfterClose(t *testing.T) {
	j, _ := mustOpen(t, Options{Dir: t.TempDir()})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(accepted(0)); err != ErrClosed {
		t.Fatalf("append after close: %v, want ErrClosed", err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

// TestRotationCompacts: crossing SegmentBytes rotates and compacts
// the history down to the incomplete jobs, bounding disk usage by the
// in-flight count rather than the append count.
func TestRotationCompacts(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, Options{Dir: dir, SegmentBytes: 512})
	// Many completed jobs, one forever-incomplete straggler.
	if err := j.Append(accepted(999)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := j.Append(accepted(i)); err != nil {
			t.Fatal(err)
		}
		if err := j.Append(Record{Type: TypeDone, ID: accepted(i).ID}); err != nil {
			t.Fatal(err)
		}
	}
	st := j.Stats()
	if st.Rotations == 0 || st.Compactions == 0 {
		t.Fatalf("no rotation/compaction after 201 appends over 512-byte segments: %+v", st)
	}
	if st.Segments > 2 {
		t.Fatalf("%d segments on disk after compaction, want ≤ 2", st.Segments)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// On-disk footprint is bounded: the one pending job plus the live
	// tail, not 201 records.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, e := range entries {
		info, err := e.Info()
		if err != nil {
			t.Fatal(err)
		}
		total += info.Size()
	}
	if total > 2048 {
		t.Fatalf("journal dir holds %d bytes after compaction", total)
	}
	j2, rec := mustOpen(t, Options{Dir: dir})
	defer j2.Close()
	if len(rec.Incomplete) != 1 || rec.Incomplete[0].ID != accepted(999).ID {
		t.Fatalf("straggler lost across compaction: %+v", rec.Incomplete)
	}
}

// TestExplicitCompact: Compact drops completed history on demand.
func TestExplicitCompact(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, Options{Dir: dir})
	for i := 0; i < 10; i++ {
		j.Append(accepted(i))
		j.Append(Record{Type: TypeDone, ID: accepted(i).ID})
	}
	if err := j.Compact(); err != nil {
		t.Fatal(err)
	}
	if st := j.Stats(); st.Segments != 1 || st.Pending != 0 {
		t.Fatalf("after compact: %+v", st)
	}
	j.Close()
	j2, rec := mustOpen(t, Options{Dir: dir})
	defer j2.Close()
	if rec.Records != 0 || len(rec.Incomplete) != 0 {
		t.Fatalf("compacted journal replayed %+v", rec)
	}
}

// TestTornTailSkipped: a half-written final record (the shape a crash
// mid-append leaves) is dropped; everything before it replays.
func TestTornTailSkipped(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, Options{Dir: dir})
	j.Append(accepted(0))
	j.Append(accepted(1))
	j.Close()

	// Tear the tail: truncate the newest segment mid-record.
	seg := newestSegment(t, dir)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(seg, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	j2, rec := mustOpen(t, Options{Dir: dir})
	defer j2.Close()
	if rec.CorruptSkipped != 1 {
		t.Fatalf("corrupt skipped = %d, want 1", rec.CorruptSkipped)
	}
	if rec.Records != 1 || len(rec.Incomplete) != 1 || rec.Incomplete[0].ID != accepted(0).ID {
		t.Fatalf("replay after torn tail: %+v", rec)
	}
}

// TestFlippedBitSkipped: a corrupted record in the middle of a
// segment fails its checksum and is skipped; later records still
// replay (the damage is contained, not cascading).
func TestFlippedBitSkipped(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, Options{Dir: dir})
	j.Append(accepted(0))
	j.Append(accepted(1))
	j.Append(accepted(2))
	j.Close()

	seg := newestSegment(t, dir)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one bit inside the second record's payload.
	mid := len(data) / 2
	data[mid] ^= 0x40
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	j2, rec := mustOpen(t, Options{Dir: dir})
	defer j2.Close()
	if rec.CorruptSkipped != 1 {
		t.Fatalf("corrupt skipped = %d, want 1", rec.CorruptSkipped)
	}
	if rec.Records != 2 {
		t.Fatalf("replayed %d records around the flipped bit, want 2", rec.Records)
	}
}

// TestSeqMonotonicAcrossReopen: sequence numbers keep rising across
// restarts, so replay order stays total.
func TestSeqMonotonicAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, Options{Dir: dir})
	j.Append(accepted(0))
	j.Close()
	j2, _ := mustOpen(t, Options{Dir: dir})
	j2.Append(accepted(1))
	j2.Close()
	_, rec := mustOpen(t, Options{Dir: dir})
	if len(rec.Incomplete) != 2 {
		t.Fatalf("incomplete = %d, want 2", len(rec.Incomplete))
	}
	if rec.Incomplete[0].Seq >= rec.Incomplete[1].Seq {
		t.Fatalf("seq not monotonic across reopen: %d then %d",
			rec.Incomplete[0].Seq, rec.Incomplete[1].Seq)
	}
	if rec.Incomplete[0].ID != accepted(0).ID {
		t.Fatalf("replay order broken: %+v", rec.Incomplete)
	}
}

// TestAppendErrorCounted: a failing filesystem surfaces the error and
// the AppendErrors counter, and the in-memory lifecycle still
// advances (the journal stays truthful about the pool even when the
// disk lies).
func TestAppendErrorCounted(t *testing.T) {
	fa := fsx.NewFaulty(fsx.OS{}, fsx.FaultPlan{Seed: 3, PWrite: 1})
	j, _, err := Open(Options{Dir: t.TempDir(), FS: fa})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(accepted(0)); err == nil {
		t.Fatal("append over all-writes-fail plan succeeded")
	}
	st := j.Stats()
	if st.AppendErrors != 1 || st.Appends != 0 {
		t.Fatalf("stats = %+v, want 1 append error", st)
	}
	if j.Pending() != 1 {
		t.Fatalf("pending = %d after undurable accept, want 1", j.Pending())
	}
}

// TestRequiresDir: a journal without a directory is a config error.
func TestRequiresDir(t *testing.T) {
	if _, _, err := Open(Options{}); err == nil {
		t.Fatal("Open without Dir succeeded")
	}
}

// newestSegment returns the path of the highest-numbered segment.
func newestSegment(t *testing.T, dir string) string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var best string
	var bestIdx uint64
	for _, e := range entries {
		if i, ok := parseSegment(e.Name()); ok && (best == "" || i > bestIdx) {
			best, bestIdx = filepath.Join(dir, e.Name()), i
		}
	}
	if best == "" {
		t.Fatal("no segments found")
	}
	return best
}
