package journal

// Group-commit tests: batch appends coalesce into single fsyncs,
// concurrent appenders share commits, and a crash mid-batch tears
// only the unacknowledged tail — committed records replay
// byte-identically and nothing uncommitted is resurrected as garbage.

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"starperf/internal/fsx"
)

// TestAppendBatchSingleCommit: a batch of records is one commit — one
// write, one fsync — and replays intact.
func TestAppendBatchSingleCommit(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, Options{Dir: dir})
	recs := make([]Record, 16)
	for i := range recs {
		recs[i] = accepted(i)
	}
	if err := j.AppendBatch(recs); err != nil {
		t.Fatal(err)
	}
	st := j.Stats()
	if st.Commits != 1 || st.CommitRecords != 16 || st.MaxBatch != 16 {
		t.Fatalf("batch did not coalesce: commits=%d records=%d max=%d",
			st.Commits, st.CommitRecords, st.MaxBatch)
	}
	if st.FsyncsSaved != 15 {
		t.Fatalf("FsyncsSaved = %d, want 15", st.FsyncsSaved)
	}
	if st.Appends != 16 {
		t.Fatalf("Appends = %d, want 16", st.Appends)
	}
	// Sequence numbers were assigned in order.
	for i, r := range recs {
		if r.Seq != uint64(i+1) {
			t.Fatalf("record %d got seq %d", i, r.Seq)
		}
	}
	j.Close()
	rec := reopenClean(t, dir)
	if rec.Records != 16 || len(rec.Incomplete) != 16 {
		t.Fatalf("replay saw %d records, %d incomplete; want 16/16",
			rec.Records, len(rec.Incomplete))
	}
	if rec.CorruptSkipped != 0 {
		t.Fatalf("replay skipped %d records as corrupt", rec.CorruptSkipped)
	}
}

// TestAppendBatchRespectsGroupMax: a batch larger than GroupMaxRecords
// still commits as one unit (a batch waiter is indivisible), while
// separate appends split at the cap.
func TestAppendBatchRespectsGroupMax(t *testing.T) {
	j, _ := mustOpen(t, Options{Dir: t.TempDir(), GroupMaxRecords: 4})
	recs := make([]Record, 10)
	for i := range recs {
		recs[i] = accepted(i)
	}
	if err := j.AppendBatch(recs); err != nil {
		t.Fatal(err)
	}
	if st := j.Stats(); st.Commits != 1 || st.MaxBatch != 10 {
		t.Fatalf("oversized batch split: %+v", st)
	}
	j.Close()
}

// TestAppendBatchEmptyAndClosed: the degenerate inputs.
func TestAppendBatchEmptyAndClosed(t *testing.T) {
	j, _ := mustOpen(t, Options{Dir: t.TempDir()})
	if err := j.AppendBatch(nil); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
	j.Close()
	if err := j.AppendBatch([]Record{accepted(0)}); err != ErrClosed {
		t.Fatalf("append batch after close: %v, want ErrClosed", err)
	}
	if err := j.Append(accepted(0)); err != ErrClosed {
		t.Fatalf("append after close: %v, want ErrClosed", err)
	}
}

// slowSyncFS delays every file Sync, widening the window in which
// concurrent appends pile into the next batch.
type slowSyncFS struct {
	fsx.FS
	delay time.Duration
}

func (s slowSyncFS) OpenAppend(name string) (fsx.File, error) {
	f, err := s.FS.OpenAppend(name)
	if err != nil {
		return nil, err
	}
	return slowSyncFile{f, s.delay}, nil
}

type slowSyncFile struct {
	fsx.File
	delay time.Duration
}

func (f slowSyncFile) Sync() error {
	time.Sleep(f.delay)
	return f.File.Sync()
}

// TestGroupCommitCoalescesConcurrentAppends: 64 appenders against a
// slow fsync must share commits — the whole point of group commit —
// and every acknowledged record must replay.
func TestGroupCommitCoalescesConcurrentAppends(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, Options{Dir: dir, FS: slowSyncFS{fsx.OS{}, 2 * time.Millisecond}})
	const n = 64
	start := make(chan struct{})
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			errs[i] = j.Append(accepted(i))
		}()
	}
	close(start)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	st := j.Stats()
	if st.Appends != n {
		t.Fatalf("Appends = %d, want %d", st.Appends, n)
	}
	// With a 2ms fsync, the first commit's sync window collects the
	// rest; requiring < n commits only fails if no batching happened
	// at all.
	if st.Commits >= n {
		t.Fatalf("no coalescing: %d commits for %d appends", st.Commits, n)
	}
	if st.FsyncsSaved == 0 {
		t.Fatalf("FsyncsSaved = 0 across %d concurrent appends", n)
	}
	if st.CommitMeanMicros <= 0 || st.CommitP50Micros == 0 {
		t.Fatalf("commit latency histogram empty: %+v", st)
	}
	j.Close()
	rec := reopenClean(t, dir)
	if rec.Records != n || len(rec.Incomplete) != n {
		t.Fatalf("replay saw %d records, %d incomplete; want %d", rec.Records, len(rec.Incomplete), n)
	}
}

// TestGroupWindowLingers: with an explicit window, a lone append still
// commits (after the linger) — the knob trades latency, not
// correctness.
func TestGroupWindowLingers(t *testing.T) {
	j, _ := mustOpen(t, Options{Dir: t.TempDir(), GroupWindow: time.Millisecond})
	if err := j.Append(accepted(0)); err != nil {
		t.Fatal(err)
	}
	if st := j.Stats(); st.Commits != 1 || st.Appends != 1 {
		t.Fatalf("lingered append lost: %+v", st)
	}
	j.Close()
}

// TestGroupCommitTornBatchTail crashes the filesystem at every
// mutating op while a committed batch A is followed by an in-flight
// batch B. Whatever survives must satisfy: every record of A (whose
// AppendBatch was acknowledged) replays byte-identically; surviving
// records of B are a prefix of B (one sequential write can only tear
// at one point); nothing replays that was never written.
func TestGroupCommitTornBatchTail(t *testing.T) {
	batchA := make([]Record, 3)
	for i := range batchA {
		batchA[i] = accepted(i)
	}
	batchB := make([]Record, 4)
	for i := range batchB {
		batchB[i] = accepted(100 + i)
	}
	run := func(fa fsx.FS) (ackA, ackB bool, dirUsed string) {
		dir := t.TempDir()
		j, _, err := Open(Options{Dir: dir, FS: fa})
		if err != nil {
			return false, false, dir
		}
		a := make([]Record, len(batchA))
		copy(a, batchA)
		b := make([]Record, len(batchB))
		copy(b, batchB)
		ackA = j.AppendBatch(a) == nil
		ackB = j.AppendBatch(b) == nil
		j.Close()
		return ackA, ackB, dir
	}
	// Probe run fixes the op domain.
	probe := fsx.NewFaulty(fsx.OS{}, fsx.FaultPlan{Seed: 7})
	if _, _, _ = run(probe); probe.Ops() < 4 {
		t.Fatalf("probe too small: %d ops", probe.Ops())
	}
	for crash := 1; crash <= probe.Ops(); crash++ {
		crash := crash
		t.Run(fmt.Sprintf("crash@%d", crash), func(t *testing.T) {
			fa := fsx.NewFaulty(fsx.OS{}, fsx.FaultPlan{Seed: 7, CrashAt: crash, ShortWrites: true})
			ackA, ackB, dir := run(fa)
			rec := reopenClean(t, dir)
			// Index the survivors by id.
			got := make(map[string]Record, len(rec.Incomplete))
			for _, r := range rec.Incomplete {
				got[r.ID] = r
			}
			if len(got) != len(rec.Incomplete) {
				t.Fatalf("duplicate ids in recovery: %+v", rec.Incomplete)
			}
			known := make(map[string]Record)
			for _, r := range append(append([]Record{}, batchA...), batchB...) {
				known[r.ID] = r
			}
			for id, r := range got {
				want, ok := known[id]
				if !ok {
					t.Fatalf("replay invented record %q", id)
				}
				if r.Kind != want.Kind || !bytes.Equal(r.Req, want.Req) {
					t.Fatalf("record %q corrupted in replay: got %+v want %+v", id, r, want)
				}
			}
			if ackA {
				for _, r := range batchA {
					if _, ok := got[r.ID]; !ok {
						t.Fatalf("acknowledged batch A record %q lost", r.ID)
					}
				}
			}
			if ackB {
				for _, r := range batchB {
					if _, ok := got[r.ID]; !ok {
						t.Fatalf("acknowledged batch B record %q lost", r.ID)
					}
				}
			} else {
				// Unacknowledged: any prefix of B may have landed, but a
				// later record must never survive an earlier one's loss —
				// the batch is one sequential write.
				seenGap := false
				for _, r := range batchB {
					_, ok := got[r.ID]
					if seenGap && ok {
						t.Fatalf("batch B record %q survived after an earlier record was lost", r.ID)
					}
					if !ok {
						seenGap = true
					}
				}
			}
		})
	}
}

// TestChaosBatchWorkloadCrashAtEveryOp reruns the standard recovery
// invariants with the accepts submitted through AppendBatch instead of
// serial Appends, at every crash point.
func TestChaosBatchWorkloadCrashAtEveryOp(t *testing.T) {
	runBatch := func(j *Journal) *chaosWorkload {
		w := &chaosWorkload{
			ackAccepted:  make(map[string]bool),
			tryAccepted:  make(map[string]bool),
			ackTerminal:  make(map[string]bool),
			tryTerminal:  make(map[string]bool),
			expectedLive: map[string]bool{accepted(5).ID: true},
		}
		batch := make([]Record, 6)
		for i := range batch {
			batch[i] = accepted(i)
			w.tryAccepted[batch[i].ID] = true
		}
		if err := j.AppendBatch(batch); err == nil {
			for _, r := range batch {
				w.ackAccepted[r.ID] = true
			}
		}
		for i := 0; i < 6; i++ {
			j.Append(Record{Type: TypeStarted, ID: accepted(i).ID})
		}
		term := func(r Record) {
			w.tryTerminal[r.ID] = true
			if err := j.Append(r); err == nil {
				w.ackTerminal[r.ID] = true
			}
		}
		for i := 0; i < 4; i++ {
			term(Record{Type: TypeDone, ID: accepted(i).ID})
		}
		term(Record{Type: TypeFailed, ID: accepted(4).ID, Err: "chaos"})
		return w
	}
	probe := fsx.NewFaulty(fsx.OS{}, fsx.FaultPlan{Seed: 3})
	j, _, err := Open(Options{Dir: t.TempDir(), FS: probe, SegmentBytes: 300})
	if err != nil {
		t.Fatal(err)
	}
	w := runBatch(j)
	j.Close()
	checkRecovery(t, "fault-free", w, reopenClean(t, j.opts.Dir))
	for crash := 1; crash <= probe.Ops(); crash++ {
		crash := crash
		t.Run(fmt.Sprintf("crash@%d", crash), func(t *testing.T) {
			dir := t.TempDir()
			fa := fsx.NewFaulty(fsx.OS{}, fsx.FaultPlan{Seed: 3, CrashAt: crash})
			j, _, err := Open(Options{Dir: dir, FS: fa, SegmentBytes: 300})
			if err != nil {
				return
			}
			w := runBatch(j)
			j.Close()
			checkRecovery(t, fmt.Sprintf("crash@%d", crash), w, reopenClean(t, dir))
		})
	}
}
