package journal

// The journal chaos suite: deterministic fault plans (internal/fsx)
// drive the WAL through every crash point and through seeded EIO /
// short-write / fsync-failure storms, and each surviving state is
// re-opened with a healthy filesystem to check the recovery
// invariants:
//
//  1. acknowledged durability — a job whose accepted append returned
//     nil, with no terminal append attempted, MUST replay as
//     incomplete;
//  2. terminal monotonicity — a job whose done/failed append returned
//     nil MUST NOT replay as incomplete;
//  3. no invention — every replayed id is one the workload submitted;
//  4. unacknowledged appends may land either way (the bytes may or
//     may not have reached the disk), but never as garbage: a record
//     either replays intact or is skipped by its checksum.
//
// No assertion reads the wall clock, and every fault decision is
// seed-drawn, so a failure reproduces exactly.

import (
	"fmt"
	"testing"

	"starperf/internal/fsx"
)

// chaosWorkload drives one journal through a fixed lifecycle mix —
// six jobs, four done, one failed, one left incomplete — with small
// segments so rotation and compaction fall inside the fault window.
// It records which appends were acknowledged.
type chaosWorkload struct {
	ackAccepted  map[string]bool
	tryAccepted  map[string]bool
	ackTerminal  map[string]bool
	tryTerminal  map[string]bool
	expectedLive map[string]bool // incomplete ids of an undisturbed run
}

func runChaosWorkload(j *Journal) *chaosWorkload {
	w := &chaosWorkload{
		ackAccepted:  make(map[string]bool),
		tryAccepted:  make(map[string]bool),
		ackTerminal:  make(map[string]bool),
		tryTerminal:  make(map[string]bool),
		expectedLive: map[string]bool{accepted(5).ID: true},
	}
	app := func(r Record, try, ack map[string]bool) {
		try[r.ID] = true
		if err := j.Append(r); err == nil {
			ack[r.ID] = true
		}
	}
	for i := 0; i < 6; i++ {
		app(accepted(i), w.tryAccepted, w.ackAccepted)
	}
	for i := 0; i < 6; i++ {
		j.Append(Record{Type: TypeStarted, ID: accepted(i).ID})
	}
	for i := 0; i < 4; i++ {
		app(Record{Type: TypeDone, ID: accepted(i).ID}, w.tryTerminal, w.ackTerminal)
	}
	app(Record{Type: TypeFailed, ID: accepted(4).ID, Err: "chaos"}, w.tryTerminal, w.ackTerminal)
	return w
}

// checkRecovery asserts the recovery invariants against what the
// workload observed.
func checkRecovery(t *testing.T, label string, w *chaosWorkload, rec *Recovery) {
	t.Helper()
	live := make(map[string]bool, len(rec.Incomplete))
	for _, r := range rec.Incomplete {
		live[r.ID] = true
		if !w.tryAccepted[r.ID] {
			t.Fatalf("%s: replay invented job %s", label, r.ID)
		}
		if r.Kind != "predict" || len(r.Req) == 0 {
			t.Fatalf("%s: replayed record lost its payload: %+v", label, r)
		}
	}
	for id := range w.ackAccepted {
		if !w.tryTerminal[id] && !live[id] {
			t.Fatalf("%s: acknowledged accept of %s lost (invariant 1)", label, id)
		}
	}
	for id := range w.ackTerminal {
		if live[id] {
			t.Fatalf("%s: job %s replayed incomplete after acknowledged terminal (invariant 2)", label, id)
		}
	}
}

// TestChaosJournalCrashAtEveryOp kills the filesystem at every
// possible mutating operation of the workload in turn, then recovers
// each wreck with a healthy filesystem. Every crash point must leave
// a recoverable journal that honours the invariants.
func TestChaosJournalCrashAtEveryOp(t *testing.T) {
	// A fault-free instrumented run fixes the op-count domain.
	probe := fsx.NewFaulty(fsx.OS{}, fsx.FaultPlan{Seed: 1})
	j, _, err := Open(Options{Dir: t.TempDir(), FS: probe, SegmentBytes: 300})
	if err != nil {
		t.Fatal(err)
	}
	w := runChaosWorkload(j)
	j.Close()
	totalOps := probe.Ops()
	if totalOps < 20 {
		t.Fatalf("workload too small to be interesting: %d ops", totalOps)
	}
	checkRecovery(t, "fault-free", w, reopenClean(t, j.opts.Dir))

	for crash := 1; crash <= totalOps; crash++ {
		crash := crash
		t.Run(fmt.Sprintf("crash@%d", crash), func(t *testing.T) {
			dir := t.TempDir()
			fa := fsx.NewFaulty(fsx.OS{}, fsx.FaultPlan{Seed: 1, CrashAt: crash})
			j, _, err := Open(Options{Dir: dir, FS: fa, SegmentBytes: 300})
			if err != nil {
				// Crashed before the journal existed: nothing was
				// acknowledged, nothing to recover.
				return
			}
			w := runChaosWorkload(j)
			j.Close() // post-crash close fails; that's the point
			checkRecovery(t, fmt.Sprintf("crash@%d", crash), w, reopenClean(t, dir))
		})
	}
}

// TestChaosJournalFaultStorm runs the workload under seeded random
// write/sync/rename failures (no crash), recovers, and checks the
// invariants. The same seed must produce the same wreck twice.
func TestChaosJournalFaultStorm(t *testing.T) {
	type outcome struct {
		acks int
		live []string
	}
	run := func(seed uint64) outcome {
		dir := t.TempDir()
		fa := fsx.NewFaulty(fsx.OS{}, fsx.FaultPlan{
			Seed: seed, PWrite: 0.15, PSync: 0.1, PRename: 0.2, ShortWrites: true,
		})
		j, _, err := Open(Options{Dir: dir, FS: fa, SegmentBytes: 300})
		if err != nil {
			// The plan can kill journal creation itself; nothing to check.
			return outcome{acks: -1}
		}
		w := runChaosWorkload(j)
		j.Close()
		rec := reopenClean(t, dir)
		checkRecovery(t, fmt.Sprintf("storm seed %d", seed), w, rec)
		out := outcome{acks: len(w.ackAccepted) + len(w.ackTerminal)}
		for _, r := range rec.Incomplete {
			out.live = append(out.live, r.ID)
		}
		return out
	}
	for seed := uint64(1); seed <= 20; seed++ {
		a, b := run(seed), run(seed)
		if a.acks != b.acks || len(a.live) != len(b.live) {
			t.Fatalf("seed %d not deterministic: %+v vs %+v", seed, a, b)
		}
		for i := range a.live {
			if a.live[i] != b.live[i] {
				t.Fatalf("seed %d recovered different sets: %v vs %v", seed, a.live, b.live)
			}
		}
	}
}

// reopenClean recovers dir with a healthy filesystem and returns the
// replay summary.
func reopenClean(t *testing.T, dir string) *Recovery {
	t.Helper()
	j, rec, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("recovery open failed: %v", err)
	}
	j.Close()
	return rec
}
