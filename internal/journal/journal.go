// Package journal is the durable write-ahead log of job lifecycle
// records behind the serving layer: every job a jobs.Pool accepts is
// journaled (accepted → started → done | failed), each record is
// checksummed and fsynced before the append returns, and on startup
// the log is replayed so that jobs a crash interrupted can be
// re-enqueued instead of silently lost. Job ids are content hashes
// (internal/jobs.Hash), so replaying an already-completed job is
// idempotent by construction: it recomputes into the same cache entry.
//
// Format. A journal is a directory of segment files
// ("wal-<seq>.log"), each a sequence of newline-delimited records:
// an 8-hex-digit CRC-32C of the JSON payload, a space, and the
// payload. A record that fails its checksum — a torn tail from a
// mid-append crash, or a flipped bit — is counted and skipped, never
// replayed; everything before and after it still recovers. Open
// always starts a fresh segment, so a torn tail is never appended to.
//
// Rotation and compaction. When the live segment exceeds
// SegmentBytes the journal rotates to a new one and compacts: records
// of jobs that already reached done/failed are dropped, the still
// incomplete ones are rewritten into the fresh segment, and the old
// segments are removed. The journal's steady-state size is therefore
// proportional to the in-flight job count, not the job history.
//
// Group commit. Concurrent Appends coalesce into one write and one
// fsync: a caller encodes its record under the lock, enqueues it, and
// the first waiter in line becomes the commit leader — it takes up to
// GroupMaxRecords queued records, writes them as one buffer, fsyncs
// once, and releases every caller whose records that commit made
// durable. Records that arrive while a commit's fsync is in flight
// simply form the next batch, so the fsync itself is the batching
// window (the classic WAL group commit); GroupWindow can add an
// explicit linger on top for bursty loads that need larger batches at
// the price of single-append latency. An append is only acknowledged
// after its commit's fsync returns, so the durability contract is
// unchanged — a crash can tear at most the unacknowledged tail of the
// in-flight batch, never a committed record.
//
// Durability is exactly as strong as the filesystem honours fsync —
// the chaos suite drives the package over internal/fsx fault plans
// (short writes, EIO, sync failures, crash-at-every-op) to pin what
// survives. An append whose write or fsync fails is counted
// (AppendErrors) and reported to the caller; the serving layer treats
// that as degraded durability, not a reason to stop serving.
package journal

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"math/bits"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"starperf/internal/cfgerr"
	"starperf/internal/fsx"
	"starperf/internal/obs"
	"starperf/internal/stats"
)

// crcTable is the CRC-32C (Castagnoli) table every record checksum
// uses.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Type is the lifecycle stage a Record marks.
type Type string

// The journaled lifecycle. Accepted carries the request payload so a
// replay can rebuild the job; the others only reference its id.
const (
	TypeAccepted Type = "accepted"
	TypeStarted  Type = "started"
	TypeDone     Type = "done"
	TypeFailed   Type = "failed"
)

// Record is one journal entry.
type Record struct {
	// Seq is the journal-assigned sequence number (Append overwrites
	// whatever the caller set).
	Seq uint64 `json:"seq"`
	// Type is the lifecycle stage.
	Type Type `json:"type"`
	// ID is the job's content-hash id.
	ID string `json:"id"`
	// Kind and Req are the operation name and canonical request body
	// an accepted record carries so replay can reconstruct the job.
	Kind string          `json:"kind,omitempty"`
	Req  json.RawMessage `json:"req,omitempty"`
	// Err is the failure message of a failed record.
	Err string `json:"err,omitempty"`
}

// ErrClosed is returned by Append after Close.
var ErrClosed = errors.New("journal: closed")

// Options configures a Journal. Dir is required.
type Options struct {
	// Dir is the journal directory, created if missing.
	Dir string
	// FS is the filesystem seam (default fsx.OS{}; chaos tests inject
	// fsx.Faulty).
	FS fsx.FS
	// SegmentBytes is the rotation threshold (default 1 MiB).
	SegmentBytes int64
	// NoSync skips the per-append fsync. Only benchmarks and tests
	// that measure the sync cost itself should set it: an unsynced
	// journal is a journal only until the power goes out.
	NoSync bool
	// GroupMaxRecords caps how many records one group commit coalesces
	// into a single write + fsync (default 64). Concurrent appenders
	// past the cap simply form the next batch.
	GroupMaxRecords int
	// GroupWindow, when positive, makes a commit leader linger that
	// long before writing, so a bursty trickle accumulates into larger
	// batches. The default 0 relies on natural batching alone — the
	// in-flight fsync is the window — because a linger taxes every
	// serial append with the full window's latency.
	GroupWindow time.Duration
	// Now is the clock behind the commit-latency histogram (default
	// time.Now). It is a seam like jobs.PoolConfig.Now: the journal
	// never branches on it, and tests inject a fake clock.
	Now func() time.Time
}

func (o Options) withDefaults() Options {
	if o.FS == nil {
		o.FS = fsx.OS{}
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 1 << 20
	}
	if o.GroupMaxRecords <= 0 {
		o.GroupMaxRecords = 64
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	return o
}

// Recovery summarises what Open replayed.
type Recovery struct {
	// Records is how many valid records were read back, Segments how
	// many segment files held them, CorruptSkipped how many lines
	// failed their checksum and were dropped.
	Records        int
	Segments       int
	CorruptSkipped int
	// Incomplete holds the latest accepted record of every job that
	// never reached done/failed, in sequence order — the jobs a
	// restart must re-enqueue.
	Incomplete []Record
}

// commitBins bounds the commit-latency histogram: power-of-two µs
// buckets, same shape as the server's per-route histograms.
const commitBins = 40

// waiter is one enqueued append (or batch of appends) awaiting a
// group commit. Everything on it is guarded by the journal's mu.
type waiter struct {
	lines []byte // encoded record lines, newline-terminated
	count int    // records in lines
	done  bool
	err   error
}

// Journal is an append-only, checksummed, rotating WAL. Safe for
// concurrent use.
type Journal struct {
	opts Options

	mu       sync.Mutex
	cond     *sync.Cond // signals commit completion to queued waiters
	file     fsx.File
	fileName string
	size     int64
	segments []string // on-disk segment paths, oldest first (includes current)
	segIndex uint64   // index of the newest segment
	seq      uint64
	pending  map[string]Record // accepted-but-not-terminal, by id
	torn     bool              // last write may have left a partial line
	closed   bool

	queue      []*waiter // records awaiting a group commit, FIFO
	committing bool      // a leader owns the live segment's I/O right now

	appends      uint64
	appendErrors uint64
	syncs        uint64
	rotations    uint64
	compactions  uint64
	replayed     int
	corrupt      int

	readonly    bool   // last commit hit ENOSPC; no proof space returned yet
	noSpaceErrs uint64 // records lost to full-disk commits
	probes      uint64 // explicit space probes issued

	commits       uint64       // group commits (one write+fsync each)
	commitRecords uint64       // records those commits made durable
	maxBatch      int          // largest records-per-commit seen
	commitLat     stats.Stream // commit latency in µs (exact mean/max)
	commitHist    *stats.Histogram
}

// Open replays the journal in opts.Dir (creating it if missing),
// reports what it found, and readies a fresh segment for appends.
func Open(opts Options) (*Journal, *Recovery, error) {
	opts = opts.withDefaults()
	if opts.Dir == "" {
		return nil, nil, cfgerr.New("journal: Dir is required")
	}
	if err := opts.FS.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("journal: creating %s: %w", opts.Dir, err)
	}
	j := &Journal{
		opts:       opts,
		pending:    make(map[string]Record),
		commitHist: stats.NewHistogram(commitBins),
	}
	j.cond = sync.NewCond(&j.mu)
	rec, err := j.replay()
	if err != nil {
		return nil, nil, err
	}
	if err := j.openSegment(); err != nil {
		return nil, nil, fmt.Errorf("journal: opening segment: %w", err)
	}
	return j, rec, nil
}

// segmentName renders the path of segment i.
func (j *Journal) segmentName(i uint64) string {
	return filepath.Join(j.opts.Dir, fmt.Sprintf("wal-%016x.log", i))
}

// parseSegment extracts the index from a segment file name.
func parseSegment(name string) (uint64, bool) {
	if !strings.HasSuffix(name, ".log") {
		return 0, false
	}
	base, ok := strings.CutPrefix(strings.TrimSuffix(name, ".log"), "wal-")
	if !ok || len(base) != 16 {
		return 0, false
	}
	i, err := strconv.ParseUint(base, 16, 64)
	if err != nil {
		return 0, false
	}
	return i, true
}

// replay reads every existing segment in order, rebuilding the
// pending map and the sequence counter.
func (j *Journal) replay() (*Recovery, error) {
	entries, err := j.opts.FS.ReadDir(j.opts.Dir)
	if err != nil {
		return nil, fmt.Errorf("journal: reading %s: %w", j.opts.Dir, err)
	}
	var indices []uint64
	for _, e := range entries {
		if i, ok := parseSegment(e.Name()); ok {
			indices = append(indices, i)
		}
	}
	sort.Slice(indices, func(a, b int) bool { return indices[a] < indices[b] })
	rec := &Recovery{}
	for _, i := range indices {
		path := j.segmentName(i)
		j.segments = append(j.segments, path)
		if i > j.segIndex {
			j.segIndex = i
		}
		data, err := j.opts.FS.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("journal: reading %s: %w", path, err)
		}
		rec.Segments++
		j.replaySegment(data, rec)
	}
	j.replayed = rec.Records
	j.corrupt = rec.CorruptSkipped
	rec.Incomplete = j.pendingLocked()
	return rec, nil
}

// replaySegment applies one segment's records to the pending state.
// It walks the segment bytes in place — no string copy of the file,
// no per-line payload copy — because replay is boot cost: a node
// restarting after a crash reads every segment before it can serve.
func (j *Journal) replaySegment(data []byte, rec *Recovery) {
	for len(data) > 0 {
		line := data
		if i := bytes.IndexByte(data, '\n'); i >= 0 {
			line, data = data[:i], data[i+1:]
		} else {
			data = nil
		}
		if len(line) == 0 {
			continue
		}
		r, ok := decodeRecord(line)
		if !ok {
			rec.CorruptSkipped++
			continue
		}
		rec.Records++
		if r.Seq > j.seq {
			j.seq = r.Seq
		}
		j.applyLocked(r)
	}
}

// applyLocked folds one record into the pending map.
func (j *Journal) applyLocked(r Record) {
	switch r.Type {
	case TypeAccepted:
		j.pending[r.ID] = r
	case TypeStarted:
		// started refines accepted; the accepted record (with its
		// request payload) stays the replayable one.
	case TypeDone, TypeFailed:
		delete(j.pending, r.ID)
	}
}

// pendingLocked snapshots the incomplete records in sequence order.
func (j *Journal) pendingLocked() []Record {
	out := make([]Record, 0, len(j.pending))
	for _, r := range j.pending {
		out = append(out, r)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Seq < out[b].Seq })
	return out
}

// encodeRecord renders one record line: CRC-32C of the JSON payload,
// a space, the payload, a newline.
func encodeRecord(r Record) ([]byte, error) {
	payload, err := json.Marshal(r)
	if err != nil {
		return nil, fmt.Errorf("journal: encoding record: %w", err)
	}
	sum := crc32.Checksum(payload, crcTable)
	line := make([]byte, 0, len(payload)+10)
	line = append(line, fmt.Sprintf("%08x ", sum)...)
	line = append(line, payload...)
	line = append(line, '\n')
	return line, nil
}

// decodeRecord parses and verifies one line. The payload slice
// aliases the caller's buffer: json.Unmarshal copies everything it
// keeps (json.RawMessage included), so nothing in the decoded Record
// outlives the segment read that produced the line.
func decodeRecord(line []byte) (Record, bool) {
	var r Record
	if len(line) < 10 || line[8] != ' ' {
		return r, false
	}
	sum, ok := hexUint32(line[:8])
	if !ok {
		return r, false
	}
	payload := line[9:]
	if crc32.Checksum(payload, crcTable) != sum {
		return r, false
	}
	if err := json.Unmarshal(payload, &r); err != nil {
		return r, false
	}
	return r, true
}

// hexUint32 parses exactly eight hex digits without the string
// round-trip strconv would force on a []byte input.
func hexUint32(b []byte) (uint32, bool) {
	var v uint32
	for _, c := range b {
		switch {
		case c >= '0' && c <= '9':
			v = v<<4 | uint32(c-'0')
		case c >= 'a' && c <= 'f':
			v = v<<4 | uint32(c-'a'+10)
		case c >= 'A' && c <= 'F':
			v = v<<4 | uint32(c-'A'+10)
		default:
			return 0, false
		}
	}
	return v, true
}

// openSegment starts the next segment and makes its directory entry
// durable.
func (j *Journal) openSegment() error {
	j.segIndex++
	name := j.segmentName(j.segIndex)
	f, err := j.opts.FS.OpenAppend(name)
	if err != nil {
		return err
	}
	j.file = f
	j.fileName = name
	j.size = 0
	j.torn = false
	j.segments = append(j.segments, name)
	if !j.opts.NoSync {
		if err := j.opts.FS.SyncDir(j.opts.Dir); err != nil {
			return err
		}
		j.syncs++
	}
	return nil
}

// Append journals one record, assigning its sequence number and —
// unless NoSync — fsyncing before returning. Concurrent appends
// coalesce into one group commit (see the package comment): the call
// blocks until a commit covering this record has fsynced, so the
// acknowledgement is exactly as durable as it ever was. The in-memory
// lifecycle state advances even when the disk write fails, so
// compaction and Stats stay truthful about the pool; the error (and
// the AppendErrors counter) tells the caller durability is degraded.
func (j *Journal) Append(r Record) error {
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return ErrClosed
	}
	j.seq++
	r.Seq = j.seq
	j.applyLocked(r)
	line, err := encodeRecord(r)
	if err != nil {
		j.appendErrors++
		j.mu.Unlock()
		return err
	}
	w := &waiter{lines: line, count: 1}
	j.queue = append(j.queue, w)
	j.mu.Unlock()
	return j.commitWait(w)
}

// AppendBatch journals records as one unit: every record is encoded
// and enqueued together, so a single group commit (one write, one
// fsync) makes the whole set durable — the journal half of a batched
// submission. Sequence numbers are assigned in order. All records
// share one outcome: the commit's error, or nil.
func (j *Journal) AppendBatch(records []Record) error {
	if len(records) == 0 {
		return nil
	}
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return ErrClosed
	}
	var lines []byte
	for i := range records {
		j.seq++
		records[i].Seq = j.seq
		j.applyLocked(records[i])
		line, err := encodeRecord(records[i])
		if err != nil {
			// Unreachable for well-formed records (json.Marshal of
			// plain structs); the batch is abandoned unwritten, state
			// already advanced — the same advance-then-report contract
			// a failed disk write has.
			j.appendErrors += uint64(len(records))
			j.mu.Unlock()
			return err
		}
		lines = append(lines, line...)
	}
	w := &waiter{lines: lines, count: len(records)}
	j.queue = append(j.queue, w)
	j.mu.Unlock()
	return j.commitWait(w)
}

// commitWait blocks until w is committed, electing the caller as
// commit leader whenever no commit is in flight. Called without j.mu.
//
// Each loop iteration is one fully bracketed critical section: check
// w, either sleep on the condition or run one commit as leader, and
// release the mutex before coming round again. The leader drops the
// mutex for the write+fsync — that window is what lets concurrent
// appenders enqueue the next batch while this one syncs — and
// j.committing keeps the live segment's I/O single-owner throughout.
func (j *Journal) commitWait(w *waiter) error {
	for {
		j.mu.Lock()
		if w.done {
			err := w.err
			j.mu.Unlock()
			return err
		}
		if j.committing {
			j.cond.Wait() // returns with the mutex re-held
			j.mu.Unlock()
			continue
		}
		j.committing = true
		if j.opts.GroupWindow > 0 && !j.closed && j.queuedRecordsLocked() < j.opts.GroupMaxRecords {
			// Opt-in linger: trade this batch's latency for size. New
			// appends enqueue freely while we sleep; taken below.
			j.mu.Unlock()
			time.Sleep(j.opts.GroupWindow)
			j.mu.Lock()
		}
		batch, buf, records := j.takeBatchLocked()
		start := j.opts.Now()
		j.mu.Unlock()
		var n int
		var err, syncErr error
		if len(buf) > 0 {
			n, err = j.file.Write(buf)
			if err == nil && !j.opts.NoSync {
				syncErr = j.file.Sync()
			}
		}
		took := j.opts.Now().Sub(start)
		j.mu.Lock()
		j.finishCommitLocked(batch, records, len(buf), n, err, syncErr, took)
		j.mu.Unlock()
	}
}

// takeBatchLocked dequeues up to GroupMaxRecords records' worth of
// waiters and renders their coalesced write buffer (prefixed with a
// newline guard when the previous write tore). Zero-record flush
// barriers ride along for free. Callers hold j.mu.
func (j *Journal) takeBatchLocked() (batch []*waiter, buf []byte, records int) {
	for len(j.queue) > 0 {
		next := j.queue[0]
		if len(batch) > 0 && records+next.count > j.opts.GroupMaxRecords {
			break
		}
		batch = append(batch, next)
		records += next.count
		j.queue = j.queue[1:]
		if records >= j.opts.GroupMaxRecords {
			break
		}
	}
	size := 0
	for _, w := range batch {
		size += len(w.lines)
	}
	if size == 0 {
		return batch, nil, records
	}
	buf = make([]byte, 0, size+1)
	if j.torn {
		// Newline guard: a previously torn tail stays an isolated
		// (checksum-rejected) line instead of merging with — and
		// destroying — this batch's first record.
		buf = append(buf, '\n')
	}
	for _, w := range batch {
		buf = append(buf, w.lines...)
	}
	return batch, buf, records
}

// finishCommitLocked folds one commit's outcome into the journal
// state, releases the batch's waiters and hands leadership back.
// Callers hold j.mu.
func (j *Journal) finishCommitLocked(batch []*waiter, records, bufLen, n int, err, syncErr error, took time.Duration) {
	j.size += int64(n)
	if bufLen > 0 {
		if err != nil {
			// The write may have torn a partial line into the segment.
			j.torn = true
		} else {
			j.torn = false
			err = syncErr
		}
		if err != nil {
			j.appendErrors += uint64(records)
			// A full disk flips the journal read-only: callers that
			// need durability (async submits) must stop acknowledging
			// until space provably returns. Any other error is a
			// one-commit failure, not a mode.
			if isNoSpace(err) {
				j.readonly = true
				j.noSpaceErrs += uint64(records)
			}
		} else {
			// A durable commit is proof the disk has space again.
			j.readonly = false
			j.appends += uint64(records)
			if !j.opts.NoSync {
				j.syncs++
			}
			j.commits++
			j.commitRecords += uint64(records)
			if records > j.maxBatch {
				j.maxBatch = records
			}
			us := took.Microseconds()
			if us < 0 {
				us = 0
			}
			j.commitLat.Add(float64(us))
			j.commitHist.Add(bits.Len64(uint64(us)))
		}
	}
	for _, w := range batch {
		w.done = true
		w.err = err
	}
	if err == nil && bufLen > 0 && j.size >= j.opts.SegmentBytes {
		// Rotation and compaction are best-effort: a failure leaves
		// the current segment growing, not the journal broken.
		_ = j.rotateLocked()
	}
	j.committing = false
	j.cond.Broadcast()
}

// queuedRecordsLocked counts the records currently awaiting commit.
func (j *Journal) queuedRecordsLocked() int {
	n := 0
	for _, w := range j.queue {
		n += w.count
	}
	return n
}

// writeLocked appends one encoded line to the live segment and syncs.
// A failed write may have torn a partial line into the segment; the
// next write starts with a newline guard so the torn bytes stay an
// isolated (checksum-rejected) line instead of merging with — and
// destroying — the next acknowledged record.
func (j *Journal) writeLocked(line []byte) error {
	if j.torn {
		n, err := j.file.Write([]byte("\n"))
		j.size += int64(n)
		if err != nil {
			return err
		}
		j.torn = false
	}
	n, err := j.file.Write(line)
	j.size += int64(n)
	if err != nil {
		j.torn = true
		return err
	}
	if !j.opts.NoSync {
		if err := j.file.Sync(); err != nil {
			return err
		}
		j.syncs++
	}
	return nil
}

// rotateLocked closes the live segment, opens the next one and
// compacts the history into it.
func (j *Journal) rotateLocked() error {
	if err := j.file.Close(); err != nil {
		return err
	}
	if err := j.openSegment(); err != nil {
		return err
	}
	j.rotations++
	return j.compactLocked()
}

// Compact rewrites the journal down to its incomplete jobs: their
// accepted records are re-appended to the live segment and every
// older segment is removed. Completed history is dropped — the cache
// holds those results; the journal only owes the jobs a crash would
// lose.
func (j *Journal) Compact() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	// Wait out any in-flight group commit: j.committing marks a leader
	// that has dropped the mutex to write the live segment, and the
	// segment must not be swapped under it. Holding the mutex from
	// here on keeps new leaders out until the compaction finishes.
	for j.committing {
		j.cond.Wait()
	}
	if err := j.file.Close(); err != nil {
		return err
	}
	if err := j.openSegment(); err != nil {
		return err
	}
	return j.compactLocked()
}

// compactLocked rewrites pending records into the (fresh) live
// segment and removes all older segments.
func (j *Journal) compactLocked() error {
	for _, r := range j.pendingLocked() {
		j.seq++
		r.Seq = j.seq
		r.Type = TypeAccepted
		line, err := encodeRecord(r)
		if err != nil {
			return err
		}
		if err := j.writeLocked(line); err != nil {
			return err
		}
		j.appends++
	}
	// Remove old segments strictly oldest-first and STOP at the first
	// failure, so the surviving set is always a suffix of the log. A
	// suffix can never resurrect a completed job: a job's terminal
	// record has a higher sequence number than its accepted record,
	// so it lives in the same or a later segment — if the accepted
	// record survives, so does the terminal one. (Arbitrary-subset
	// removal broke exactly that; the chaos storm caught it.)
	var failed error
	keep := j.segments[:0]
	for _, path := range j.segments {
		if path == j.fileName || failed != nil {
			keep = append(keep, path)
			continue
		}
		if err := j.opts.FS.Remove(path); err != nil {
			// Keep it and retry at the next compaction; replay
			// tolerates stale segments.
			keep = append(keep, path)
			failed = err
		}
	}
	j.segments = keep
	if !j.opts.NoSync {
		if err := j.opts.FS.SyncDir(j.opts.Dir); err != nil && failed == nil {
			failed = err
		} else if err == nil {
			j.syncs++
		}
	}
	j.compactions++
	return failed
}

// Pending returns how many jobs are accepted or started but not yet
// terminal.
func (j *Journal) Pending() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.pending)
}

// isNoSpace reports whether err is a disk-full failure, injected
// (fsx.ErrNoSpace) or real — both unwrap to syscall.ENOSPC.
func isNoSpace(err error) bool {
	return errors.Is(err, syscall.ENOSPC)
}

// ReadOnly reports whether the journal is in read-only degradation: a
// commit hit ENOSPC and no later commit or probe has proven space
// returned. The journal itself keeps accepting Append calls (they
// fail like any other commit error); the mode exists for the serving
// layer, which must stop acknowledging durable work it cannot make
// durable.
func (j *Journal) ReadOnly() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.readonly
}

// probeName is the throwaway file Probe writes. It does not look like
// a segment, so replay never reads it.
const probeName = "probe.tmp"

// Probe checks whether disk space has returned by writing, fsyncing
// and removing a small file next to the segments — not a WAL record,
// so a probe never pollutes replay. On success the read-only mode is
// cleared; on failure (or when the journal is closed) it stays. The
// serving layer calls this before refusing an async submit so a
// recovered disk flips back to read-write on the next request rather
// than waiting for organic sync traffic to commit something.
func (j *Journal) Probe() error {
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return ErrClosed
	}
	j.probes++
	j.mu.Unlock()
	err := j.probeOnce()
	j.mu.Lock()
	if err == nil {
		j.readonly = false
	} else if isNoSpace(err) {
		j.readonly = true
	}
	j.mu.Unlock()
	return err
}

// probeOnce performs one probe-file write/sync/remove cycle through
// the FS seam. Called without j.mu: the probe file is disjoint from
// the live segment, so it needs no serialisation with commits.
func (j *Journal) probeOnce() error {
	name := filepath.Join(j.opts.Dir, probeName)
	f, err := j.opts.FS.Create(name)
	if err != nil {
		return fmt.Errorf("journal: probe create: %w", err)
	}
	if _, err := f.Write([]byte("probe\n")); err != nil {
		f.Close()
		j.opts.FS.Remove(name)
		return fmt.Errorf("journal: probe write: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		j.opts.FS.Remove(name)
		return fmt.Errorf("journal: probe sync: %w", err)
	}
	if err := f.Close(); err != nil {
		j.opts.FS.Remove(name)
		return fmt.Errorf("journal: probe close: %w", err)
	}
	return j.opts.FS.Remove(name)
}

// Stats snapshots the journal counters.
func (j *Journal) Stats() obs.JournalStats {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := obs.JournalStats{
		Appends:        j.appends,
		AppendErrors:   j.appendErrors,
		Syncs:          j.syncs,
		Rotations:      j.rotations,
		Compactions:    j.compactions,
		Segments:       len(j.segments),
		Pending:        len(j.pending),
		Replayed:       j.replayed,
		CorruptSkipped: j.corrupt,
		Commits:        j.commits,
		CommitRecords:  j.commitRecords,
		MaxBatch:       j.maxBatch,
		ReadOnly:       j.readonly,
		NoSpaceErrors:  j.noSpaceErrs,
		Probes:         j.probes,
	}
	if j.commits > 0 {
		st.FsyncsSaved = j.commitRecords - j.commits
	}
	if j.commitLat.N() > 0 {
		st.CommitMeanMicros = j.commitLat.Mean()
		st.CommitMaxMicros = uint64(j.commitLat.Max())
		st.CommitP50Micros = commitBound(j.commitHist.Quantile(0.50))
		st.CommitP95Micros = commitBound(j.commitHist.Quantile(0.95))
		st.CommitP99Micros = commitBound(j.commitHist.Quantile(0.99))
	}
	return st
}

// commitBound converts a commit-histogram bin index back to the upper
// bound (in µs) of the latencies it counts.
func commitBound(bin int) uint64 {
	if bin <= 0 {
		return 0
	}
	return 1<<uint(bin) - 1
}

// Close flushes the queued records, then syncs and closes the live
// segment. Appends after Close fail with ErrClosed; appends already
// enqueued are committed — their callers are blocked inside Append
// and still owed a durable acknowledgement.
func (j *Journal) Close() error {
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return nil
	}
	j.closed = true
	if len(j.queue) > 0 || j.committing {
		// A zero-record flush barrier: the queue is FIFO, so by the
		// time the barrier commits, every record enqueued before the
		// close has been committed too.
		w := &waiter{}
		j.queue = append(j.queue, w)
		j.mu.Unlock()
		_ = j.commitWait(w)
		j.mu.Lock()
	}
	var syncErr error
	if !j.opts.NoSync {
		syncErr = j.file.Sync()
		if syncErr == nil {
			j.syncs++
		}
	}
	closeErr := j.file.Close()
	j.mu.Unlock()
	if syncErr != nil {
		return syncErr
	}
	return closeErr
}
