package journal

// Read-only degradation (PR 12): a commit that hits ENOSPC flips the
// journal read-only; a successful probe — or any later durable
// commit — flips it back. These tests drive the mode through
// fsx.Faulty's disk-full lever end to end.

import (
	"errors"
	"syscall"
	"testing"

	"starperf/internal/fsx"
)

// rec builds a minimal accepted record.
func roRec(id string) Record {
	return Record{Type: "accepted", ID: id, Kind: "simulate", Req: []byte(`{}`)}
}

func TestReadOnlyTripsOnENOSPCAndProbesBack(t *testing.T) {
	fa := fsx.NewFaulty(fsx.OS{}, fsx.FaultPlan{})
	j, _, err := Open(Options{Dir: t.TempDir(), FS: fa})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if err := j.Append(roRec("sha256:aa")); err != nil {
		t.Fatalf("healthy append: %v", err)
	}
	if j.ReadOnly() {
		t.Fatal("journal must start read-write")
	}

	fa.SetFull(true)
	err = j.Append(roRec("sha256:bb"))
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("append on a full disk: want ENOSPC, got %v", err)
	}
	if !j.ReadOnly() {
		t.Fatal("ENOSPC commit must flip the journal read-only")
	}
	st := j.Stats()
	if !st.ReadOnly || st.NoSpaceErrors == 0 {
		t.Fatalf("stats must surface the mode: %+v", st)
	}

	// A probe against a still-full disk keeps the mode.
	if err := j.Probe(); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("probe on a full disk: want ENOSPC, got %v", err)
	}
	if !j.ReadOnly() {
		t.Fatal("failed probe must not clear read-only")
	}

	// Space returns: the probe proves it and clears the mode without
	// needing a WAL record.
	fa.SetFull(false)
	if err := j.Probe(); err != nil {
		t.Fatalf("probe after space returned: %v", err)
	}
	if j.ReadOnly() {
		t.Fatal("successful probe must clear read-only")
	}
	if st := j.Stats(); st.Probes != 2 {
		t.Fatalf("Probes = %d, want 2", st.Probes)
	}
	if err := j.Append(roRec("sha256:cc")); err != nil {
		t.Fatalf("append after recovery: %v", err)
	}
}

func TestReadOnlyClearsOnOrganicCommit(t *testing.T) {
	fa := fsx.NewFaulty(fsx.OS{}, fsx.FaultPlan{})
	j, _, err := Open(Options{Dir: t.TempDir(), FS: fa})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()

	fa.SetFull(true)
	if err := j.Append(roRec("sha256:dd")); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("want ENOSPC, got %v", err)
	}
	if !j.ReadOnly() {
		t.Fatal("must be read-only after ENOSPC")
	}
	fa.SetFull(false)
	// Sync traffic keeps journaling while the pool is read-only for
	// async work; its first durable commit is the organic recovery
	// path.
	if err := j.Append(roRec("sha256:ee")); err != nil {
		t.Fatalf("append after space returned: %v", err)
	}
	if j.ReadOnly() {
		t.Fatal("a durable commit must clear read-only")
	}
}

func TestProbeDoesNotPolluteReplay(t *testing.T) {
	dir := t.TempDir()
	fa := fsx.NewFaulty(fsx.OS{}, fsx.FaultPlan{})
	j, _, err := Open(Options{Dir: dir, FS: fa})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(roRec("sha256:ff")); err != nil {
		t.Fatal(err)
	}
	if err := j.Probe(); err != nil {
		t.Fatal(err)
	}
	j.Close()
	j2, rec, err := Open(Options{Dir: dir, FS: fsx.OS{}})
	if err != nil {
		t.Fatalf("reopen after probe: %v", err)
	}
	defer j2.Close()
	if rec.CorruptSkipped != 0 {
		t.Fatalf("probe left corrupt records behind: %+v", rec)
	}
	if len(rec.Incomplete) != 1 || rec.Incomplete[0].ID != "sha256:ff" {
		t.Fatalf("replay should see exactly the appended record: %+v", rec.Incomplete)
	}
}
