package journal

// Compaction is the journal's only destructive operation: it rewrites
// the pending set into a fresh segment and then deletes history. The
// broad chaos suite (chaos_test.go) crashes at every op of a mixed
// workload; the tests here aim the crash exclusively at the compaction
// window — every filesystem op between entering Compact (or the
// rotation that triggers it) and its return — where the exact
// recovered state is predictable and can be asserted record-for-record:
//
//   - no resurrection: a job whose done record was acknowledged before
//     the window never replays as incomplete, no matter which removal
//     or rewrite op the crash lands on;
//   - no loss: the still-incomplete jobs replay with their request
//     payloads intact — either from the rewritten live segment or from
//     the old segments the crash preserved;
//   - self-healing: the recovered journal compacts back down to one
//     segment on a healthy filesystem.

import (
	"fmt"
	"testing"

	"starperf/internal/fsx"
)

// The compaction workloads complete jobs 0..5 and leave 6 and 7
// in flight.
const (
	compactDone = 6
	compactLive = 8
)

// runCompactionPrelude drives the fault-free part of the workload:
// every op here happens before the crash window, so each append must
// be acknowledged.
func runCompactionPrelude(t *testing.T, j *Journal) {
	t.Helper()
	for i := 0; i < compactLive; i++ {
		if err := j.Append(accepted(i)); err != nil {
			t.Fatalf("pre-window accept %d failed: %v", i, err)
		}
	}
	for i := 0; i < compactDone; i++ {
		if err := j.Append(Record{Type: TypeDone, ID: accepted(i).ID}); err != nil {
			t.Fatalf("pre-window done %d failed: %v", i, err)
		}
	}
}

// checkCompactionRecovery asserts the exact post-crash replay: jobs
// 0..done-1 had acknowledged terminals before the window and must stay
// completed; job uncertain (when ≥ 0) had its terminal append cut off
// by the crash itself and may land either way; every later job must
// replay incomplete with its request payload intact.
func checkCompactionRecovery(t *testing.T, label string, rec *Recovery, done, uncertain int) {
	t.Helper()
	live := make(map[string]bool, len(rec.Incomplete))
	for _, r := range rec.Incomplete {
		live[r.ID] = true
		if r.Kind != "predict" || len(r.Req) == 0 {
			t.Fatalf("%s: incomplete record lost its payload: %+v", label, r)
		}
	}
	for i := 0; i < done; i++ {
		if live[accepted(i).ID] {
			t.Fatalf("%s: completed job %d resurrected by the crash", label, i)
		}
	}
	liveFrom := done
	if uncertain >= 0 {
		liveFrom = uncertain + 1
	}
	for i := liveFrom; i < compactLive; i++ {
		if !live[accepted(i).ID] {
			t.Fatalf("%s: incomplete job %d lost in the crash (live=%v)",
				label, i, rec.Incomplete)
		}
	}
	wantLive := compactLive - liveFrom
	if uncertain >= 0 && live[accepted(uncertain).ID] {
		wantLive++
	}
	if len(live) != wantLive {
		t.Fatalf("%s: replay invented jobs: %+v", label, rec.Incomplete)
	}
}

// recoverAndRecompact reopens the wreck on a healthy filesystem,
// checks the replayed state, then proves the journal self-heals: a
// clean compaction drops it back to one segment holding exactly the
// incomplete jobs.
func recoverAndRecompact(t *testing.T, label, dir string, done, uncertain int) {
	t.Helper()
	j, rec, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("%s: recovery open failed: %v", label, err)
	}
	defer j.Close()
	checkCompactionRecovery(t, label, rec, done, uncertain)
	if err := j.Compact(); err != nil {
		t.Fatalf("%s: recovered journal cannot compact: %v", label, err)
	}
	st := j.Stats()
	if st.Segments != 1 {
		t.Fatalf("%s: %d segments after healing compaction, want 1", label, st.Segments)
	}
	if st.Pending != len(rec.Incomplete) {
		t.Fatalf("%s: healing compaction changed the pending set: %d -> %d",
			label, len(rec.Incomplete), st.Pending)
	}
}

// TestCompactionCrashExplicit measures the filesystem-op window of an
// explicit Compact with a fault-free probe run, then replays the
// identical workload once per op in that window with the crash aimed
// at it.
func TestCompactionCrashExplicit(t *testing.T) {
	probe := fsx.NewFaulty(fsx.OS{}, fsx.FaultPlan{Seed: 1})
	j, _, err := Open(Options{Dir: t.TempDir(), FS: probe})
	if err != nil {
		t.Fatal(err)
	}
	runCompactionPrelude(t, j)
	before := probe.Ops()
	if err := j.Compact(); err != nil {
		t.Fatal(err)
	}
	after := probe.Ops()
	j.Close()
	if after-before < 4 {
		t.Fatalf("compaction window too small to be interesting: ops %d..%d", before, after)
	}

	for crash := before + 1; crash <= after; crash++ {
		crash := crash
		t.Run(fmt.Sprintf("crash@%d", crash), func(t *testing.T) {
			dir := t.TempDir()
			fa := fsx.NewFaulty(fsx.OS{}, fsx.FaultPlan{Seed: 1, CrashAt: crash})
			j, _, err := Open(Options{Dir: dir, FS: fa})
			if err != nil {
				t.Fatal(err)
			}
			runCompactionPrelude(t, j)
			if got := fa.Ops(); got != before {
				t.Fatalf("crash run diverged from probe: %d ops before Compact, want %d", got, before)
			}
			if err := j.Compact(); err == nil {
				t.Fatal("a crash inside the compaction window went unreported")
			}
			j.Close() // fails post-crash; the wreck on disk is what matters
			recoverAndRecompact(t, fmt.Sprintf("crash@%d", crash), dir, compactDone, -1)
		})
	}
}

// TestCompactionCrashDuringRotation aims the crash at the compaction
// that rotation itself triggers: the probe run finds which done-append
// crosses SegmentBytes and the op window it spans, then each crash
// point in that window is replayed. The rotating append's own write
// precedes the rotation inside the same window, so that one job's
// terminal record is allowed to land either way; everything else is
// exact.
func TestCompactionCrashDuringRotation(t *testing.T) {
	// Sized so the eight accepts fit in the first segment and one of
	// the done appends crosses the threshold; the probe run below
	// verifies both, so a drift in record size fails loudly rather
	// than silently mistargeting the window.
	const segBytes = 1024
	open := func(dir string, fa *fsx.Faulty) *Journal {
		t.Helper()
		j, _, err := Open(Options{Dir: dir, FS: fa, SegmentBytes: segBytes})
		if err != nil {
			t.Fatal(err)
		}
		return j
	}

	// Probe: find the append that first trips rotation and its window.
	probe := fsx.NewFaulty(fsx.OS{}, fsx.FaultPlan{Seed: 1})
	j := open(t.TempDir(), probe)
	for i := 0; i < compactLive; i++ {
		if err := j.Append(accepted(i)); err != nil {
			t.Fatal(err)
		}
	}
	if j.Stats().Rotations != 0 {
		t.Fatalf("segments of %d bytes rotate during the accept phase; raise segBytes", segBytes)
	}
	rotator, before := -1, 0
	for i := 0; i < compactDone; i++ {
		pre := probe.Ops()
		if err := j.Append(Record{Type: TypeDone, ID: accepted(i).ID}); err != nil {
			t.Fatal(err)
		}
		if j.Stats().Rotations > 0 {
			rotator, before = i, pre
			break
		}
	}
	after := probe.Ops()
	j.Close()
	if rotator < 0 {
		t.Fatalf("workload never rotated over %d-byte segments", segBytes)
	}

	for crash := before + 1; crash <= after; crash++ {
		crash := crash
		t.Run(fmt.Sprintf("crash@%d", crash), func(t *testing.T) {
			dir := t.TempDir()
			fa := fsx.NewFaulty(fsx.OS{}, fsx.FaultPlan{Seed: 1, CrashAt: crash})
			j := open(dir, fa)
			for i := 0; i < compactLive; i++ {
				if err := j.Append(accepted(i)); err != nil {
					t.Fatalf("pre-window accept %d failed: %v", i, err)
				}
			}
			for i := 0; i < rotator; i++ {
				if err := j.Append(Record{Type: TypeDone, ID: accepted(i).ID}); err != nil {
					t.Fatalf("pre-window done %d failed: %v", i, err)
				}
			}
			// The rotating append: its write may be the crashed op
			// (Append errors, rotator stays pending on disk) or the
			// crash may land later, inside rotateLocked/compactLocked
			// (Append swallows the rotation failure and returns nil).
			_ = j.Append(Record{Type: TypeDone, ID: accepted(rotator).ID})
			j.Close()
			recoverAndRecompact(t, fmt.Sprintf("crash@%d", crash), dir, rotator, rotator)
		})
	}
}
