package torus

import (
	"math/rand"
	"testing"
	"testing/quick"

	"starperf/internal/topology"
)

func bfs(g *Graph, src int) []int {
	dist := make([]int, g.N())
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	q := []int{src}
	for len(q) > 0 {
		v := q[0]
		q = q[1:]
		for d := 0; d < g.Degree(); d++ {
			w := g.Neighbor(v, d)
			if dist[w] < 0 {
				dist[w] = dist[v] + 1
				q = append(q, w)
			}
		}
	}
	return dist
}

func TestDistanceMatchesBFS(t *testing.T) {
	for _, kn := range [][2]int{{4, 1}, {4, 2}, {6, 2}, {4, 3}, {8, 2}} {
		g := MustNew(kn[0], kn[1])
		for _, src := range []int{0, g.N() / 3, g.N() - 1} {
			dist := bfs(g, src)
			for v := 0; v < g.N(); v++ {
				if dist[v] != g.Distance(src, v) {
					t.Fatalf("%s: distance(%d,%d) = %d, BFS %d",
						g.Name(), src, v, g.Distance(src, v), dist[v])
				}
			}
		}
	}
}

func TestDiameterAndAvg(t *testing.T) {
	g := MustNew(6, 2)
	if g.Diameter() != 6 {
		t.Fatalf("diameter %d", g.Diameter())
	}
	max, sum := 0, 0.0
	for v := 1; v < g.N(); v++ {
		d := g.Distance(0, v)
		if d > max {
			max = d
		}
		sum += float64(d)
	}
	if max != g.Diameter() {
		t.Fatalf("observed diameter %d, want %d", max, g.Diameter())
	}
	brute := sum / float64(g.N()-1)
	if got := g.AvgDistance(); got < brute-1e-12 || got > brute+1e-12 {
		t.Fatalf("avg distance %v, brute %v", got, brute)
	}
}

func TestProfitableExact(t *testing.T) {
	g := MustNew(6, 2)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cur, dst := rng.Intn(g.N()), rng.Intn(g.N())
		dims := g.ProfitableDims(cur, dst, nil)
		if cur == dst {
			return len(dims) == 0
		}
		prof := map[int]bool{}
		for _, d := range dims {
			prof[d] = true
		}
		dd := g.Distance(cur, dst)
		for d := 0; d < g.Degree(); d++ {
			nd := g.Distance(g.Neighbor(cur, d), dst)
			if prof[d] && nd != dd-1 {
				return false
			}
			if !prof[d] && nd != dd+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestTieBothDirections(t *testing.T) {
	g := MustNew(4, 1) // ring of 4: offset 2 is a tie
	dims := g.ProfitableDims(0, 2, nil)
	if len(dims) != 2 {
		t.Fatalf("tie offset should give 2 profitable dims, got %v", dims)
	}
}

func TestBipartite(t *testing.T) {
	g := MustNew(6, 2)
	for v := 0; v < g.N(); v++ {
		for d := 0; d < g.Degree(); d++ {
			if g.Color(v) == g.Color(g.Neighbor(v, d)) {
				t.Fatalf("edge inside colour class at %d dim %d", v, d)
			}
		}
	}
}

func TestNeighborInverse(t *testing.T) {
	g := MustNew(8, 3)
	for _, v := range []int{0, 17, g.N() - 1} {
		for i := 0; i < g.Dims(); i++ {
			if g.Neighbor(g.Neighbor(v, i), i+g.Dims()) != v {
				t.Fatalf("+ then − does not return to %d in dim %d", v, i)
			}
		}
	}
}

func TestRejectsBadParams(t *testing.T) {
	for _, kn := range [][2]int{{3, 2}, {5, 1}, {1, 1}, {0, 2}, {4, 0}, {2, 30}} {
		if _, err := New(kn[0], kn[1]); err == nil {
			t.Errorf("New(%d,%d) accepted", kn[0], kn[1])
		}
	}
}

func TestTopologyCompliance(t *testing.T) {
	var _ topology.Topology = MustNew(4, 2)
}

func TestRequiredNegativeHopsWalk(t *testing.T) {
	g := MustNew(4, 2)
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 2000; trial++ {
		src, dst := rng.Intn(g.N()), rng.Intn(g.N())
		want := topology.RequiredNegativeHops(g.Color(src), g.Distance(src, dst))
		cur, neg := src, 0
		for cur != dst {
			dims := g.ProfitableDims(cur, dst, nil)
			next := g.Neighbor(cur, dims[rng.Intn(len(dims))])
			if g.Color(cur) == 1 {
				neg++
			}
			cur = next
		}
		if neg != want {
			t.Fatalf("src %d dst %d: %d negative hops, predicted %d", src, dst, neg, want)
		}
	}
}
