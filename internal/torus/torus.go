// Package torus implements the k-ary n-cube (torus) interconnection
// network — the reference topology of the wormhole-modelling
// literature the paper builds on (Agarwal 91; Sarbazi-Azad,
// Ould-Khaoua & Mackenzie 01). Nodes are n-digit radix-k addresses;
// each dimension carries two unidirectional channels (one per
// direction) with wraparound.
//
// The radix k must be even: the negative-hop routing family used
// throughout this repository requires a bipartite network, and a
// cycle of odd length is not two-colourable. With k even the digit
// sum modulo 2 is a proper colouring (a ±1 move flips it, including
// across the wraparound from k−1 to 0).
package torus

import (
	"fmt"

	"starperf/internal/cfgerr"
)

// Graph is an in-memory k-ary n-cube. All methods are pure and safe
// for concurrent use after construction.
type Graph struct {
	k, n    int
	nodes   int
	pow     []int // pow[i] = k^i
	avgDist float64
}

// New constructs a k-ary n-cube with k even, k ≥ 2, n ≥ 1, and at
// most 2^26 nodes.
func New(k, n int) (*Graph, error) {
	if k < 2 || k%2 != 0 {
		return nil, cfgerr.Errorf("torus: radix k=%d must be even and ≥ 2 (bipartiteness)", k)
	}
	if n < 1 {
		return nil, cfgerr.Errorf("torus: dimension n=%d must be ≥ 1", n)
	}
	nodes := 1
	pow := make([]int, n+1)
	pow[0] = 1
	for i := 1; i <= n; i++ {
		if nodes > (1<<26)/k {
			return nil, cfgerr.Errorf("torus: %d-ary %d-cube too large", k, n)
		}
		nodes *= k
		pow[i] = nodes
	}
	// Mean minimal offset of one dimension over all k digit offsets:
	// Σ_o min(o, k−o) = k²/4 for even k, so the per-dimension mean is
	// k/4; over all destinations including self the mean distance is
	// n·k/4, rescaled to exclude the self destination.
	avg := float64(n) * float64(k) / 4 * float64(nodes) / float64(nodes-1)
	return &Graph{k: k, n: n, nodes: nodes, pow: pow, avgDist: avg}, nil
}

// MustNew is New but panics on error.
func MustNew(k, n int) *Graph {
	g, err := New(k, n)
	if err != nil {
		panic(err)
	}
	return g
}

// Name returns "T<k>x<n>" (k-ary n-cube).
func (g *Graph) Name() string { return fmt.Sprintf("T%dx%d", g.k, g.n) }

// Radix returns k.
func (g *Graph) Radix() int { return g.k }

// Dims returns n.
func (g *Graph) Dims() int { return g.n }

// N returns k^n.
func (g *Graph) N() int { return g.nodes }

// Degree returns 2n: each dimension has a + and a − unidirectional
// output channel. Dimension index d < n moves +1 in digit d;
// d ∈ [n, 2n) moves −1 in digit d−n.
func (g *Graph) Degree() int { return 2 * g.n }

// digit returns digit i of node.
func (g *Graph) digit(node, i int) int { return node / g.pow[i] % g.k }

// Neighbor implements topology.Topology.
func (g *Graph) Neighbor(node, dim int) int {
	i, delta := dim, 1
	if dim >= g.n {
		i, delta = dim-g.n, g.k-1 // −1 mod k
	}
	d := g.digit(node, i)
	return node + ((d+delta)%g.k-d)*g.pow[i]
}

// offset returns the digit-wise offset (dst − src mod k) in dimension
// i.
func (g *Graph) offset(src, dst, i int) int {
	return ((g.digit(dst, i)-g.digit(src, i))%g.k + g.k) % g.k
}

// Distance is the sum over dimensions of the minimal ring distance.
func (g *Graph) Distance(a, b int) int {
	sum := 0
	for i := 0; i < g.n; i++ {
		o := g.offset(a, b, i)
		if o > g.k-o {
			o = g.k - o
		}
		sum += o
	}
	return sum
}

// ProfitableDims appends the output channels on minimal paths from
// cur to dst: per dimension, the shorter ring direction — or both
// when the offset is exactly k/2.
func (g *Graph) ProfitableDims(cur, dst int, buf []int) []int {
	for i := 0; i < g.n; i++ {
		o := g.offset(cur, dst, i)
		if o == 0 {
			continue
		}
		switch {
		case o < g.k-o:
			buf = append(buf, i)
		case o > g.k-o:
			buf = append(buf, i+g.n)
		default: // o == k/2: both directions minimal
			buf = append(buf, i, i+g.n)
		}
	}
	return buf
}

// Color returns the digit-sum parity (a proper 2-colouring for even
// k).
func (g *Graph) Color(node int) int {
	s := 0
	for i := 0; i < g.n; i++ {
		s += g.digit(node, i)
	}
	return s & 1
}

// Diameter returns n·k/2.
func (g *Graph) Diameter() int { return g.n * g.k / 2 }

// AvgDistance returns the exact mean distance to the other k^n − 1
// nodes.
func (g *Graph) AvgDistance() float64 { return g.avgDist }
