package experiments

import (
	"fmt"
	"math"
	"sync"

	"starperf/internal/desim"
	"starperf/internal/stats"
)

// PrecisionResult is the outcome of RunUntilPrecision.
type PrecisionResult struct {
	// Mean is the grand mean latency over replications and HalfWidth
	// the ~95% confidence half-width across them.
	Mean, HalfWidth float64
	// Replications is the number of independent runs performed.
	Replications int
	// Achieved reports whether the target relative half-width was
	// met before maxReps.
	Achieved bool
	// Saturated reports that any replication failed to drain —
	// precision targets are meaningless past saturation, so the
	// runner stops early and flags it.
	Saturated bool
}

// RunUntilPrecision runs independent replications of cfg (varying the
// seed) until the relative 95% confidence half-width of the mean
// latency drops below relTarget, up to maxReps replications. An
// initial batch of minReps runs first; further replications are added
// in parallel batches. This is the sequential-stopping discipline a
// careful simulation study uses instead of a fixed replication count.
func RunUntilPrecision(cfg desim.Config, relTarget float64, minReps, maxReps, workers int) (*PrecisionResult, error) {
	if relTarget <= 0 || minReps < 2 || maxReps < minReps {
		return nil, fmt.Errorf("experiments: bad precision parameters (target=%v, reps=%d..%d)",
			relTarget, minReps, maxReps)
	}
	if workers <= 0 {
		workers = 4
	}
	res := &PrecisionResult{}
	var st stats.Stream
	next := uint64(1)
	for res.Replications < maxReps {
		batch := minReps
		if res.Replications > 0 {
			batch = workers
			if res.Replications+batch > maxReps {
				batch = maxReps - res.Replications
			}
		}
		outs := make([]*desim.Result, batch)
		errs := make([]error, batch)
		var wg sync.WaitGroup
		sem := make(chan struct{}, workers)
		for i := 0; i < batch; i++ {
			wg.Add(1)
			go func(i int, seed uint64) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				c := cfg
				c.Seed = seed * 0x9e3779b9
				outs[i], errs[i] = desim.Run(c)
			}(i, next+uint64(i))
		}
		wg.Wait()
		next += uint64(batch)
		for i := 0; i < batch; i++ {
			if errs[i] != nil {
				return nil, errs[i]
			}
			if outs[i].Saturated() {
				res.Saturated = true
			}
			st.Add(outs[i].Latency.Mean())
			res.Replications++
		}
		res.Mean = st.Mean()
		res.HalfWidth = 1.96 * st.StdDev() / math.Sqrt(float64(st.N()))
		if res.Saturated {
			return res, nil
		}
		if res.Mean > 0 && res.HalfWidth/res.Mean <= relTarget {
			res.Achieved = true
			return res, nil
		}
	}
	return res, nil
}
