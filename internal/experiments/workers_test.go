package experiments

import (
	"bytes"
	"testing"

	"starperf/internal/routing"
	"starperf/internal/stargraph"
)

// renderedPanel runs one small Figure 1(a) panel at the given worker
// count and returns its CSV bytes.
func renderedPanel(t *testing.T, workers int) []byte {
	t.Helper()
	p, err := Figure1Panel(Figure1Config{
		Panel:   'a',
		Points:  3,
		Workers: workers,
		Sim:     SimOptions{Warmup: 1000, Measure: 4000, Drain: 40000, Seeds: []uint64{7}},
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	RenderPanelCSV(&buf, p)
	return buf.Bytes()
}

// TestFigure1PanelByteIdenticalAcrossWorkers is the determinism
// contract of the jobs.Pool rewire: a parallel sweep must reproduce
// the serial panel byte for byte — seeds are pure functions of
// position and results are index-addressed, so scheduling order
// cannot leak into the output.
func TestFigure1PanelByteIdenticalAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the panel twice")
	}
	serial := renderedPanel(t, 1)
	parallel := renderedPanel(t, 4)
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("Workers:4 panel differs from serial:\n--- serial\n%s--- workers=4\n%s", serial, parallel)
	}
	if len(serial) < 50 {
		t.Fatalf("implausibly small panel: %q", serial)
	}
}

// TestThroughputSweepIdenticalAcrossWorkers pins the same property
// for the throughput harness.
func TestThroughputSweepIdenticalAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the sweep twice")
	}
	g := stargraph.MustNew(4)
	run := func(workers int) []ThroughputRow {
		rows, err := ThroughputSweep(ThroughputConfig{
			Top: g, Kind: routing.EnhancedNbc, V: 4, MsgLen: 16,
			Points: 4, MaxRate: 0.04, Workers: workers,
			Sim: SimOptions{Warmup: 1000, Measure: 4000, Drain: 40000, Seeds: []uint64{5}},
		})
		if err != nil {
			t.Fatal(err)
		}
		return rows
	}
	serial, parallel := run(1), run(4)
	if len(serial) != 4 {
		t.Fatalf("%d rows, want 4", len(serial))
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("row %d differs: serial %+v, workers=4 %+v", i, serial[i], parallel[i])
		}
	}
}
