package experiments

import (
	"errors"
	"fmt"
	"io"

	"starperf/internal/bounds"
	"starperf/internal/cfgerr"
	"starperf/internal/desim"
	"starperf/internal/model"
	"starperf/internal/routing"
	"starperf/internal/stargraph"
)

// BoundRow is one operating point of the bound-vs-observation figure:
// the worst-case bound the network-calculus engine certifies, the
// mean latency the analytical model predicts, and the simulator's
// mean, p99.9 and maximum. The figure's whole point is the ordering
// sim mean ≤ sim p99.9 ≤ sim max ≤ bound on every row below the
// engine's capacity.
type BoundRow struct {
	Rate           float64
	Bound          float64
	ModelMean      float64
	ModelSaturated bool
	SimMean        float64
	SimP999        int
	SimMax         float64
}

// BoundsFigureConfig parameterises BoundsFigure.
type BoundsFigureConfig struct {
	// N is the star size (default 4 — S5 flow enumeration is heavy
	// for a figure regenerated in CI).
	N int
	// V is the virtual-channel count (default 6) and MsgLen the
	// message length in flits (default 32).
	V, MsgLen int
	// Points is the number of operating points, spread evenly up to
	// 90% of the engine's capacity (default 6).
	Points int
	// Sim tunes the simulation side (windows, seed, buffer depth).
	Sim SimOptions
}

// BoundsFigure sweeps offered load below the bound engine's capacity
// on S_n under Enhanced-Nbc and reports, per rate: the worst-case
// delay bound, the model's mean prediction, and the simulated
// mean/p99.9/max. Rates above the model's saturation point mark
// ModelSaturated instead of failing — the bound engine's capacity is
// more conservative than the model's, but the two are different
// fixed points and the figure should survive either ordering.
func BoundsFigure(cfg BoundsFigureConfig) ([]BoundRow, error) {
	if cfg.N == 0 {
		cfg.N = 4
	}
	if cfg.V == 0 {
		cfg.V = 6
	}
	if cfg.MsgLen == 0 {
		cfg.MsgLen = 32
	}
	if cfg.Points == 0 {
		cfg.Points = 6
	}
	if cfg.Points < 1 || cfg.Points > 64 {
		return nil, cfgerr.Errorf("experiments: bounds figure points %d outside 1..64", cfg.Points)
	}
	opts := cfg.Sim.withDefaults()
	top, err := stargraph.New(cfg.N)
	if err != nil {
		return nil, err
	}
	paths, err := model.NewStarPaths(cfg.N)
	if err != nil {
		return nil, err
	}
	spec, err := routing.New(routing.EnhancedNbc, top, cfg.V)
	if err != nil {
		return nil, err
	}
	base := bounds.Config{
		Top: top, Kind: routing.EnhancedNbc,
		V: cfg.V, MsgLen: cfg.MsgLen, BufCap: opts.BufCap,
	}
	capRate, err := bounds.Capacity(base, 1e-7, 1.0)
	if err != nil {
		return nil, err
	}
	rows := make([]BoundRow, 0, cfg.Points)
	for _, rate := range ratesUpTo(0.9*capRate, cfg.Points) {
		bcfg := base
		bcfg.Rate = rate
		bres, err := bounds.Evaluate(bcfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: bound at rate %g: %w", rate, err)
		}
		row := BoundRow{Rate: rate, Bound: bres.WorstCase}
		mres, err := model.Evaluate(model.Config{
			Paths: paths, Top: top, Kind: routing.EnhancedNbc,
			V: cfg.V, MsgLen: cfg.MsgLen, Rate: rate,
		})
		switch {
		case err == nil:
			row.ModelMean = mres.Latency
		case errors.Is(err, model.ErrSaturated):
			row.ModelSaturated = true
		default:
			return nil, err
		}
		sres, err := desim.Run(desim.Config{
			Top: top, Spec: spec, Policy: opts.Policy,
			Rate: rate, MsgLen: cfg.MsgLen, BufCap: opts.BufCap,
			Seed:         opts.Seeds[0],
			WarmupCycles: opts.Warmup, MeasureCycles: opts.Measure,
			DrainCycles: opts.Drain,
		})
		if err != nil {
			return nil, err
		}
		if sres.Aborted {
			return nil, fmt.Errorf("experiments: simulation aborted at rate %g: %s", rate, sres.AbortReason)
		}
		row.SimMean = sres.Latency.Mean()
		row.SimP999 = sres.LatencyHist.Quantile(0.999)
		row.SimMax = sres.Latency.Max()
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderBounds writes the figure as a table.
func RenderBounds(w io.Writer, rows []BoundRow) {
	fmt.Fprintf(w, "%-10s %-12s %-12s %-10s %-10s %-12s\n",
		"rate", "bound", "model_mean", "sim_mean", "sim_p999", "sim_max")
	for _, r := range rows {
		mm := fmt.Sprintf("%.2f", r.ModelMean)
		if r.ModelSaturated {
			mm = "saturated"
		}
		fmt.Fprintf(w, "%-10.6f %-12.1f %-12s %-10.2f %-10d %-12.0f\n",
			r.Rate, r.Bound, mm, r.SimMean, r.SimP999, r.SimMax)
	}
}

// RenderBoundsCSV writes the figure as CSV:
// rate,bound,model_mean,model_saturated,sim_mean,sim_p999,sim_max.
func RenderBoundsCSV(w io.Writer, rows []BoundRow) {
	fmt.Fprintln(w, "rate,bound,model_mean,model_saturated,sim_mean,sim_p999,sim_max")
	for _, r := range rows {
		fmt.Fprintf(w, "%g,%g,%g,%t,%g,%d,%g\n",
			r.Rate, r.Bound, r.ModelMean, r.ModelSaturated, r.SimMean, r.SimP999, r.SimMax)
	}
}
