package experiments

// ThroughputRow is one operating point of an accepted-vs-offered
// traffic curve.
type ThroughputRow struct {
	// Offered is λg, the per-node generation rate; Accepted the
	// per-node delivery rate measured over the window. Both in
	// messages/node/cycle.
	Offered, Accepted float64
	// Latency is the mean latency of the messages that were
	// delivered; Saturated whether the run failed to drain.
	Latency   float64
	Saturated bool
}

// SaturationThroughput returns the peak accepted rate of a curve.
func SaturationThroughput(rows []ThroughputRow) float64 {
	peak := 0.0
	for _, r := range rows {
		if r.Accepted > peak {
			peak = r.Accepted
		}
	}
	return peak
}
