package experiments

import (
	"sync"

	"starperf/internal/desim"
	"starperf/internal/routing"
	"starperf/internal/topology"
)

// ThroughputRow is one operating point of an accepted-vs-offered
// traffic curve.
type ThroughputRow struct {
	// Offered is λg, the per-node generation rate; Accepted the
	// per-node delivery rate measured over the window. Both in
	// messages/node/cycle.
	Offered, Accepted float64
	// Latency is the mean latency of the messages that were
	// delivered; Saturated whether the run failed to drain.
	Latency   float64
	Saturated bool
}

// ThroughputCurve sweeps offered load past saturation and records
// accepted throughput — the standard companion plot to latency curves
// (the plateau height is the network's saturation throughput). Points
// run in parallel.
func ThroughputCurve(top topology.Topology, kind routing.Kind, v, msgLen, points int,
	maxRate float64, opts SimOptions) ([]ThroughputRow, error) {
	opts = opts.withDefaults()
	spec, err := routing.New(kind, top, v)
	if err != nil {
		return nil, err
	}
	rates := ratesUpTo(maxRate, points)
	rows := make([]ThroughputRow, len(rates))
	errs := make([]error, len(rates))
	var wg sync.WaitGroup
	sem := make(chan struct{}, opts.Workers)
	for i, rate := range rates {
		wg.Add(1)
		go func(i int, rate float64) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			res, err := desim.Run(desim.Config{
				Top: top, Spec: spec, Policy: opts.Policy,
				Rate: rate, MsgLen: msgLen, BufCap: opts.BufCap,
				Seed:         opts.Seeds[0]*7919 + uint64(i),
				WarmupCycles: opts.Warmup, MeasureCycles: opts.Measure,
				DrainCycles: opts.Drain,
			})
			if err != nil {
				errs[i] = err
				return
			}
			rows[i] = ThroughputRow{
				Offered: rate,
				Accepted: float64(res.DeliveredInWindow) /
					float64(opts.Measure) / float64(top.N()),
				Latency:   res.Latency.Mean(),
				Saturated: res.Saturated(),
			}
		}(i, rate)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return rows, nil
}

// SaturationThroughput returns the peak accepted rate of a curve.
func SaturationThroughput(rows []ThroughputRow) float64 {
	peak := 0.0
	for _, r := range rows {
		if r.Accepted > peak {
			peak = r.Accepted
		}
	}
	return peak
}
