package experiments

import (
	"runtime"

	"starperf/internal/routing"
	"starperf/internal/topology"
)

// ThroughputRow is one operating point of an accepted-vs-offered
// traffic curve.
type ThroughputRow struct {
	// Offered is λg, the per-node generation rate; Accepted the
	// per-node delivery rate measured over the window. Both in
	// messages/node/cycle.
	Offered, Accepted float64
	// Latency is the mean latency of the messages that were
	// delivered; Saturated whether the run failed to drain.
	Latency   float64
	Saturated bool
}

// ThroughputCurve sweeps offered load past saturation and records
// accepted throughput.
//
// Deprecated: use ThroughputSweep with a ThroughputConfig; this
// positional shim delegates with the historical parallelism default
// (NumCPU workers unless opts.Workers says otherwise — the
// config-struct entry point defaults to serial instead).
func ThroughputCurve(top topology.Topology, kind routing.Kind, v, msgLen, points int,
	maxRate float64, opts SimOptions) ([]ThroughputRow, error) {
	if opts.Workers == 0 {
		opts.Workers = runtime.NumCPU()
	}
	return ThroughputSweep(ThroughputConfig{
		Top: top, Kind: kind, V: v, MsgLen: msgLen,
		Points: points, MaxRate: maxRate, Sim: opts,
	})
}

// SaturationThroughput returns the peak accepted rate of a curve.
func SaturationThroughput(rows []ThroughputRow) float64 {
	peak := 0.0
	for _, r := range rows {
		if r.Accepted > peak {
			peak = r.Accepted
		}
	}
	return peak
}
