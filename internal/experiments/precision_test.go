package experiments

import (
	"testing"

	"starperf/internal/desim"
	"starperf/internal/routing"
	"starperf/internal/stargraph"
)

func precisionCfg(rate float64) desim.Config {
	g := stargraph.MustNew(4)
	return desim.Config{
		Top:           g,
		Spec:          routing.MustNew(routing.EnhancedNbc, g, 5),
		Rate:          rate,
		MsgLen:        16,
		WarmupCycles:  2000,
		MeasureCycles: 8000,
		DrainCycles:   30000,
	}
}

func TestRunUntilPrecision(t *testing.T) {
	res, err := RunUntilPrecision(precisionCfg(0.01), 0.05, 3, 20, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Achieved {
		t.Fatalf("precision not achieved in %d reps (hw=%v mean=%v)",
			res.Replications, res.HalfWidth, res.Mean)
	}
	if res.Replications < 3 || res.Replications > 20 {
		t.Fatalf("replications %d", res.Replications)
	}
	if res.HalfWidth/res.Mean > 0.05 {
		t.Fatalf("claimed achieved but rel hw %v", res.HalfWidth/res.Mean)
	}
}

func TestRunUntilPrecisionTightTarget(t *testing.T) {
	// An unreachably tight target must stop at maxReps, unachieved.
	res, err := RunUntilPrecision(precisionCfg(0.01), 1e-9, 2, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Achieved || res.Replications != 4 {
		t.Fatalf("expected maxReps stop: %+v", res)
	}
}

func TestRunUntilPrecisionSaturated(t *testing.T) {
	res, err := RunUntilPrecision(precisionCfg(0.12), 0.05, 2, 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Saturated {
		t.Fatal("deeply saturated workload not flagged")
	}
	if res.Replications > 4 {
		t.Fatalf("runner did not stop early on saturation (%d reps)", res.Replications)
	}
}

func TestRunUntilPrecisionBadParams(t *testing.T) {
	if _, err := RunUntilPrecision(precisionCfg(0.01), 0, 3, 10, 2); err == nil {
		t.Fatal("zero target accepted")
	}
	if _, err := RunUntilPrecision(precisionCfg(0.01), 0.1, 1, 10, 2); err == nil {
		t.Fatal("minReps=1 accepted")
	}
	if _, err := RunUntilPrecision(precisionCfg(0.01), 0.1, 5, 3, 2); err == nil {
		t.Fatal("maxReps < minReps accepted")
	}
}
