package experiments

import (
	"math"
	"sync"

	"starperf/internal/desim"
	"starperf/internal/model"
	"starperf/internal/routing"
	"starperf/internal/stargraph"
)

// SwitchingComparison (X7) contrasts wormhole switching with virtual
// cut-through at equal V and M on S5, by both simulator and model:
// wormhole's chains of stalled channels saturate well before VCT's
// whole-message buffers, which push the knee towards the physical
// channel-capacity ceiling.
func SwitchingComparison(v, msgLen, points int, opts SimOptions) (*Panel, error) {
	if points <= 0 {
		points = 8
	}
	opts = opts.withDefaults()
	g, err := stargraph.New(5)
	if err != nil {
		return nil, err
	}
	spec, err := routing.New(routing.EnhancedNbc, g, v)
	if err != nil {
		return nil, err
	}
	sp, err := model.NewStarPaths(5)
	if err != nil {
		return nil, err
	}
	// sweep to 90% of the physical ceiling so VCT's knee is visible
	maxRate := 0.9 * float64(g.Degree()) / (g.AvgDistance() * float64(msgLen))

	p := &Panel{
		Title:  "X7: wormhole vs virtual cut-through (S5, Enhanced-Nbc)",
		XLabel: "traffic generation rate (messages/node/cycle)",
	}
	for _, mode := range []model.SwitchingMode{model.Wormhole, model.CutThrough} {
		s := Series{Name: mode.String(), V: v, MsgLen: msgLen, Kind: routing.EnhancedNbc}
		for _, r := range ratesUpTo(maxRate, points) {
			s.Points = append(s.Points, Point{Rate: r})
		}
		// simulation side, parallel over points
		var wg sync.WaitGroup
		sem := make(chan struct{}, opts.Workers)
		errs := make([]error, len(s.Points))
		for i := range s.Points {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				cfg := desim.Config{
					Top: g, Spec: spec, Rate: s.Points[i].Rate, MsgLen: msgLen,
					CutThrough:   mode == model.CutThrough,
					Seed:         opts.Seeds[0]*31 + uint64(i),
					WarmupCycles: opts.Warmup, MeasureCycles: opts.Measure,
					DrainCycles: opts.Drain,
				}
				res, err := desim.Run(cfg)
				if err != nil {
					errs[i] = err
					return
				}
				s.Points[i].Sim = res.Latency.Mean()
				s.Points[i].SimSaturated = res.Saturated()
			}(i)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		// model side
		for i := range s.Points {
			r, err := model.Evaluate(model.Config{
				Paths: sp, Top: g, Kind: routing.EnhancedNbc,
				V: v, MsgLen: msgLen, Rate: s.Points[i].Rate, Switching: mode,
			})
			if err != nil {
				s.Points[i].Model = math.NaN()
				s.Points[i].ModelSaturated = true
			} else {
				s.Points[i].Model = r.Latency
			}
		}
		p.Series = append(p.Series, s)
	}
	return p, nil
}
