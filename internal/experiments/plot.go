package experiments

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// RenderASCIIPlot draws a Panel as a text plot: simulation points as
// per-series letters, model predictions as '·'. The y-axis is clamped
// at clampQuantile of the plotted values so saturation blow-ups do
// not flatten the readable region (clamped points are drawn on the
// top border as '^').
func RenderASCIIPlot(w io.Writer, p *Panel, width, height int) {
	if width < 20 {
		width = 64
	}
	if height < 8 {
		height = 20
	}
	const clampQuantile = 0.9

	type mark struct {
		x, y float64
		ch   byte
	}
	var marks []mark
	var xs, ys []float64
	letters := []byte{'o', 'x', '+', '*', '#', '@'}
	for si := range p.Series {
		s := &p.Series[si]
		ch := letters[si%len(letters)]
		for _, pt := range s.Points {
			if pt.Sim > 0 {
				marks = append(marks, mark{pt.Rate, pt.Sim, ch})
				xs, ys = append(xs, pt.Rate), append(ys, pt.Sim)
			}
			if pt.Model > 0 && !math.IsNaN(pt.Model) {
				marks = append(marks, mark{pt.Rate, pt.Model, '.'})
				xs, ys = append(xs, pt.Rate), append(ys, pt.Model)
			}
		}
	}
	if len(marks) == 0 {
		fmt.Fprintln(w, "(no finite points to plot)")
		return
	}
	sort.Float64s(ys)
	yMax := ys[int(clampQuantile*float64(len(ys)-1))]
	yMin := ys[0]
	if yMax <= yMin {
		yMax = yMin + 1
	}
	xMax := 0.0
	for _, x := range xs {
		if x > xMax {
			xMax = x
		}
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for _, m := range marks {
		col := int(m.x / xMax * float64(width-1))
		var row int
		if m.y > yMax {
			row = 0
			m.ch = '^'
		} else {
			row = height - 1 - int((m.y-yMin)/(yMax-yMin)*float64(height-1))
		}
		if col >= 0 && col < width && row >= 0 && row < height {
			grid[row][col] = m.ch
		}
	}

	fmt.Fprintf(w, "%s\n", p.Title)
	for r, line := range grid {
		label := "        "
		switch r {
		case 0:
			label = fmt.Sprintf("%7.1f ", yMax)
		case height - 1:
			label = fmt.Sprintf("%7.1f ", yMin)
		case height / 2:
			label = fmt.Sprintf("%7.1f ", (yMax+yMin)/2)
		}
		fmt.Fprintf(w, "%s|%s\n", label, string(line))
	}
	fmt.Fprintf(w, "%s+%s\n", strings.Repeat(" ", 8), strings.Repeat("-", width))
	fmt.Fprintf(w, "%s0%s%.4f\n", strings.Repeat(" ", 8),
		strings.Repeat(" ", width-8), xMax)
	var legend []string
	for si := range p.Series {
		legend = append(legend, fmt.Sprintf("%c=%s(sim)", letters[si%len(letters)], p.Series[si].Name))
	}
	legend = append(legend, "·=model", "^=clamped")
	fmt.Fprintf(w, "%s%s\n", strings.Repeat(" ", 9), strings.Join(legend, "  "))
}

// RenderThroughput writes a throughput curve as a table.
func RenderThroughput(w io.Writer, rows []ThroughputRow) {
	fmt.Fprintf(w, "%-10s %-10s %-12s %s\n", "offered", "accepted", "latency", "notes")
	for _, r := range rows {
		notes := ""
		if r.Saturated {
			notes = "saturated"
		}
		fmt.Fprintf(w, "%-10.5f %-10.5f %-12.2f %s\n", r.Offered, r.Accepted, r.Latency, notes)
	}
	fmt.Fprintf(w, "peak accepted throughput: %.5f messages/node/cycle\n",
		SaturationThroughput(rows))
}
