package experiments

import (
	"fmt"
	"math"

	"starperf/internal/hypercube"
	"starperf/internal/model"
	"starperf/internal/routing"
	"starperf/internal/stargraph"
)

// StarVsHypercube runs the paper's stated future work: compare the
// 5-star (120 nodes, degree 4) against its nearest hypercube
// equivalent Q7 (128 nodes, degree 7) under the same routing scheme,
// message length and virtual-channel count, by both model and
// simulation. Rates sweep each network's own capacity so the curves
// are comparable as fractions of saturation.
func StarVsHypercube(msgLen, v, points int, opts SimOptions) (*Panel, error) {
	if points <= 0 {
		points = 8
	}
	star := stargraph.MustNew(5)
	cube := hypercube.MustNew(7)
	p := &Panel{
		Title:  fmt.Sprintf("Star S5 vs Hypercube Q7 (M=%d, V=%d, Enhanced-Nbc)", msgLen, v),
		XLabel: "traffic generation rate (messages/node/cycle)",
	}

	starPaths, err := model.NewStarPaths(5)
	if err != nil {
		return nil, err
	}
	cubePaths, err := model.NewCubePaths(7)
	if err != nil {
		return nil, err
	}

	// capacity-proportional sweeps: λg_max ≈ degree/(d̄·M)
	starMax := 0.45 * float64(star.Degree()) / (star.AvgDistance() * float64(msgLen))
	cubeMax := 0.45 * float64(cube.Degree()) / (cube.AvgDistance() * float64(msgLen))

	star5 := Series{Name: "S5", V: v, MsgLen: msgLen, Kind: routing.EnhancedNbc}
	for _, r := range ratesUpTo(starMax, points) {
		star5.Points = append(star5.Points, Point{Rate: r})
	}
	q7 := Series{Name: "Q7", V: v, MsgLen: msgLen, Kind: routing.EnhancedNbc}
	for _, r := range ratesUpTo(cubeMax, points) {
		q7.Points = append(q7.Points, Point{Rate: r})
	}
	if err := runSweep(star, []*Series{&star5}, opts, nil); err != nil {
		return nil, err
	}
	if err := runSweep(cube, []*Series{&q7}, opts, nil); err != nil {
		return nil, err
	}
	for i := range star5.Points {
		r, err := model.Evaluate(model.Config{
			Paths: starPaths, Top: star, Kind: routing.EnhancedNbc,
			V: v, MsgLen: msgLen, Rate: star5.Points[i].Rate,
		})
		if err == nil {
			star5.Points[i].Model = r.Latency
		} else {
			star5.Points[i].Model = math.NaN()
			star5.Points[i].ModelSaturated = true
		}
	}
	for i := range q7.Points {
		r, err := model.Evaluate(model.Config{
			Paths: cubePaths, Top: cube, Kind: routing.EnhancedNbc,
			V: v, MsgLen: msgLen, Rate: q7.Points[i].Rate,
		})
		if err == nil {
			q7.Points[i].Model = r.Latency
		} else {
			q7.Points[i].Model = math.NaN()
			q7.Points[i].ModelSaturated = true
		}
	}
	p.Series = []Series{star5, q7}
	return p, nil
}
