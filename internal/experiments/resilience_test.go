package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"

	"starperf/internal/desim"
	"starperf/internal/routing"
	"starperf/internal/stargraph"
	"starperf/internal/topology"
	"starperf/internal/traffic"
)

// simCfg is the short, deterministic run the resilience tests build
// on.
func simCfg(top topology.Topology, spec routing.Spec, rate float64, maxAge int64) desim.Config {
	return desim.Config{
		Top: top, Spec: spec, Rate: rate, MsgLen: 8, Seed: 1,
		WarmupCycles: 1000, MeasureCycles: 5000, DrainCycles: 20000,
		MaxMsgAge: maxAge,
	}
}

// wildPattern addresses a destination outside the topology, making
// the simulator panic on an index — the stand-in for any internal
// invariant violation the harness must survive.
type wildPattern struct{}

func (wildPattern) Name() string { return "wild" }
func (wildPattern) Destination(src int, rng *traffic.RNG) int {
	return 1 << 20
}

var _ traffic.Pattern = wildPattern{}

// TestSweepRecoversFromPanic runs a sweep whose every simulation
// panics: the sweep itself must succeed, with the points marked
// failed instead of the process dying.
func TestSweepRecoversFromPanic(t *testing.T) {
	g := stargraph.MustNew(4)
	s := Series{Kind: routing.EnhancedNbc, V: 6, MsgLen: 8,
		Points: []Point{{Rate: 0.01}}}
	opts := SimOptions{Warmup: 100, Measure: 500, Drain: 2000, Seeds: []uint64{1, 2}}
	if err := runSweep(g, []*Series{&s}, opts, wildPattern{}); err != nil {
		t.Fatalf("sweep died instead of marking the point: %v", err)
	}
	pt := s.Points[0]
	if !pt.Failed || !strings.Contains(pt.Err, "panicked") {
		t.Fatalf("point not marked as panicked: %+v", pt)
	}
	if !math.IsNaN(pt.Sim) {
		t.Fatalf("Sim %v for a point with no surviving replication", pt.Sim)
	}
}

// TestSweepMarksWatchdogFailures arms an absurd one-cycle message age
// so every replication aborts (and its escalated-drain retry aborts
// too): the point must be marked failed with the watchdog's reason,
// and both renderers must surface it.
func TestSweepMarksWatchdogFailures(t *testing.T) {
	g := stargraph.MustNew(4)
	s := Series{Name: "M=8", Kind: routing.EnhancedNbc, V: 6, MsgLen: 8,
		Points: []Point{{Rate: 0.02}}}
	opts := SimOptions{Warmup: 2000, Measure: 8000, Drain: 8000,
		Seeds: []uint64{1}, MaxMsgAge: 1}
	if err := runSweep(g, []*Series{&s}, opts, nil); err != nil {
		t.Fatalf("sweep died instead of marking the point: %v", err)
	}
	pt := s.Points[0]
	if !pt.Failed || !strings.Contains(pt.Err, "in flight") {
		t.Fatalf("watchdog abort not recorded: %+v", pt)
	}
	p := &Panel{Title: "degraded", Series: []Series{s}}
	var buf bytes.Buffer
	RenderPanel(&buf, p)
	if !strings.Contains(buf.String(), "FAILED:") {
		t.Fatalf("panel hides the failed point:\n%s", buf.String())
	}
	buf.Reset()
	RenderPanelCSV(&buf, p)
	out := buf.String()
	if !strings.Contains(out, ",failed") || !strings.Contains(out, ",true\n") {
		t.Fatalf("CSV hides the failed point:\n%s", out)
	}
}

// TestRunPointRetriesEscalatedDrain checks the single-retry policy: a
// run that only aborts at the default drain window but survives at
// the escalated one must come back as a success.
func TestRunPointRetriesEscalatedDrain(t *testing.T) {
	g := stargraph.MustNew(4)
	spec, err := routing.New(routing.EnhancedNbc, g, 6)
	if err != nil {
		t.Fatal(err)
	}
	// saturating load: the default drain window cannot empty the
	// network, so Saturated/!Drained holds but nothing aborts — this
	// config exercises the success path through runPoint unchanged
	res, err := runPoint(simCfg(g, spec, 0.01, 0), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Aborted {
		t.Fatalf("healthy run aborted: %s", res.AbortReason)
	}
	// an impossible age limit fails both attempts and composes both
	// abort reasons into the error
	_, err = runPoint(simCfg(g, spec, 0.02, 1), 0)
	if err == nil || !strings.Contains(err.Error(), "retry at 4× drain") {
		t.Fatalf("escalated retry not reported: %v", err)
	}
}

// TestRunRecoveredWallBudget bounds a long run by wall clock and
// checks the timeout is reported as an error (the run itself keeps
// draining in the background and is discarded).
func TestRunRecoveredWallBudget(t *testing.T) {
	g := stargraph.MustNew(4)
	spec, err := routing.New(routing.EnhancedNbc, g, 6)
	if err != nil {
		t.Fatal(err)
	}
	cfg := simCfg(g, spec, 0.02, 0)
	// ~a second of work against a microsecond budget: the timeout
	// fires first, and the discarded background run stays cheap
	cfg.MeasureCycles = 300_000
	_, err = runRecovered(cfg, time.Microsecond)
	if err == nil || !strings.Contains(err.Error(), "wall budget") {
		t.Fatalf("wall budget not enforced: %v", err)
	}
}
