package experiments

import (
	"context"
	"fmt"

	"starperf/internal/cfgerr"
	"starperf/internal/desim"
	"starperf/internal/jobs"
	"starperf/internal/routing"
	"starperf/internal/topology"
)

// The config-struct entry points of the package — the only entry
// points since PR 10 retired the positional Figure1/ThroughputCurve
// shims. The structs match how Simulate/Predict already take their
// parameters and leave room to grow (observability, new knobs)
// without another signature break. Note the parallelism default
// changed with the shims' removal: these default to serial (Workers
// 1); callers that want the old NumCPU behaviour say so explicitly.

// Figure1Config parameterises Figure1Panel.
type Figure1Config struct {
	// Panel selects the paper's Figure 1 panel: 'a' (V=6), 'b' (V=9)
	// or 'c' (V=12).
	Panel byte
	// Points is the number of samples per curve (default 10).
	Points int
	// Workers bounds point-level parallelism (default 1 — serial).
	// Any value produces a byte-identical panel: points are indexed,
	// seeds are pure functions of position, and the sweep runs on the
	// deterministic internal/jobs pool, so scheduling order cannot
	// leak into the output. Setting Sim.Workers directly still works;
	// Workers takes precedence when both are set.
	Workers int
	// Sim tunes the simulation side, including SimOptions.Observe for
	// per-point metrics sidecars.
	Sim SimOptions
}

// Figure1Panel reproduces one panel of the paper's Figure 1: S5
// latency versus traffic generation rate for the panel's
// virtual-channel count, with one model and one simulation series per
// message length M ∈ {32, 64}. The sweep spans the paper's x-axis
// (0..0.015 for a and b, 0..0.02 for c).
func Figure1Panel(cfg Figure1Config) (*Panel, error) {
	var v int
	maxRate := 0.015
	switch cfg.Panel {
	case 'a':
		v = 6
	case 'b':
		v = 9
	case 'c':
		v = 12
		maxRate = 0.02
	default:
		return nil, cfgerr.Errorf("experiments: unknown Figure 1 panel %q", cfg.Panel)
	}
	sim := cfg.Sim
	sim.Workers = resolveWorkers(cfg.Workers, sim.Workers)
	p, err := StarPanel(5, v, []int{32, 64}, maxRate, cfg.Points, sim)
	if err != nil {
		return nil, err
	}
	p.Title = fmt.Sprintf("Figure 1(%c): 5-star, V=%d", cfg.Panel, v)
	return p, nil
}

// resolveWorkers merges the config-struct Workers knob with the older
// SimOptions.Workers one: the struct knob wins, then the options one,
// then the serial default.
func resolveWorkers(cfgWorkers, simWorkers int) int {
	if cfgWorkers > 0 {
		return cfgWorkers
	}
	if simWorkers > 0 {
		return simWorkers
	}
	return 1
}

// ThroughputConfig parameterises ThroughputSweep.
type ThroughputConfig struct {
	// Top is the network topology (required) and Kind the routing
	// algorithm run on it with V virtual channels.
	Top  topology.Topology
	Kind routing.Kind
	V    int
	// MsgLen is the message length in flits.
	MsgLen int
	// Points is the number of operating points (default 10), spaced
	// evenly from MaxRate/Points up to MaxRate (required positive).
	Points  int
	MaxRate float64
	// Workers bounds point-level parallelism (default 1 — serial;
	// any value produces identical rows). Takes precedence over
	// Sim.Workers.
	Workers int
	// Sim tunes the simulation side.
	Sim SimOptions
}

// ThroughputSweep sweeps offered load past saturation and records
// accepted throughput — the standard companion plot to latency curves
// (the plateau height is the network's saturation throughput). Points
// run on a bounded jobs.Pool sized by Workers; rows are indexed by
// operating point, so the output is independent of scheduling order.
func ThroughputSweep(cfg ThroughputConfig) ([]ThroughputRow, error) {
	if cfg.Top == nil {
		return nil, cfgerr.New("experiments: ThroughputConfig.Top is required")
	}
	if cfg.MaxRate <= 0 {
		return nil, cfgerr.Errorf("experiments: ThroughputConfig.MaxRate must be positive, got %g", cfg.MaxRate)
	}
	if cfg.Points <= 0 {
		cfg.Points = 10
	}
	opts := cfg.Sim
	opts.Workers = resolveWorkers(cfg.Workers, opts.Workers)
	opts = opts.withDefaults()
	spec, err := routing.New(cfg.Kind, cfg.Top, cfg.V)
	if err != nil {
		return nil, err
	}
	rates := ratesUpTo(cfg.MaxRate, cfg.Points)
	pool := jobs.NewPool(jobs.PoolConfig{Workers: opts.Workers, QueueDepth: len(rates)})
	defer pool.Shutdown(context.Background())
	handles := make([]*jobs.Job, len(rates))
	for i, rate := range rates {
		i, rate := i, rate
		h, err := pool.Submit(fmt.Sprintf("tput/%d", i), func(ctx context.Context) (any, error) {
			return desim.Run(desim.Config{
				Top: cfg.Top, Spec: spec, Policy: opts.Policy,
				Rate: rate, MsgLen: cfg.MsgLen, BufCap: opts.BufCap,
				Seed:         opts.Seeds[0]*7919 + uint64(i),
				WarmupCycles: opts.Warmup, MeasureCycles: opts.Measure,
				DrainCycles: opts.Drain,
			})
		})
		if err != nil {
			return nil, err
		}
		handles[i] = h
	}
	rows := make([]ThroughputRow, len(rates))
	for i, h := range handles {
		v, err := h.Wait(context.Background())
		if err != nil {
			return nil, err
		}
		res := v.(*desim.Result)
		rows[i] = ThroughputRow{
			Offered: rates[i],
			Accepted: float64(res.DeliveredInWindow) /
				float64(opts.Measure) / float64(cfg.Top.N()),
			Latency:   res.Latency.Mean(),
			Saturated: res.Saturated(),
		}
	}
	return rows, nil
}
