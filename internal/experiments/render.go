package experiments

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// RenderPanel writes a Panel as an aligned text table: one block per
// series, rate column plus model and simulation latency columns. This
// is the textual form of the paper's latency-vs-rate plots.
func RenderPanel(w io.Writer, p *Panel) {
	fmt.Fprintf(w, "%s\n%s\n", p.Title, strings.Repeat("=", len(p.Title)))
	for _, s := range p.Series {
		fmt.Fprintf(w, "\n[%s]  V=%d M=%d %s\n", s.Name, s.V, s.MsgLen, s.Kind)
		fmt.Fprintf(w, "  %-10s %-12s %-12s %-10s %s\n",
			"rate", "model", "sim", "±95%", "notes")
		for _, pt := range s.Points {
			model := "saturated"
			switch {
			case pt.Model == 0 && !pt.ModelSaturated:
				model = "-" // simulation-only series
			case !pt.ModelSaturated && !math.IsNaN(pt.Model):
				model = fmt.Sprintf("%.2f", pt.Model)
			}
			sim := "-"
			if !math.IsNaN(pt.Sim) {
				sim = fmt.Sprintf("%.2f", pt.Sim)
			}
			notes := ""
			if pt.SimSaturated {
				notes = "sim saturated"
			}
			if pt.Failed {
				notes = "FAILED: " + pt.Err
			}
			hw := ""
			if pt.SimHW > 0 {
				hw = fmt.Sprintf("%.2f", pt.SimHW)
			}
			fmt.Fprintf(w, "  %-10.5f %-12s %-12s %-10s %s\n", pt.Rate, model, sim, hw, notes)
		}
	}
}

// RenderPanelCSV writes a Panel as CSV: series,rate,model,sim,hw,
// model_saturated,sim_saturated,failed. Sim is empty when no
// replication of the point survived (Point.Failed with NaN Sim).
func RenderPanelCSV(w io.Writer, p *Panel) {
	fmt.Fprintln(w, "series,v,msglen,rate,model,sim,hw,model_saturated,sim_saturated,failed")
	for _, s := range p.Series {
		for _, pt := range s.Points {
			m := ""
			if !math.IsNaN(pt.Model) {
				m = fmt.Sprintf("%.4f", pt.Model)
			}
			sim := ""
			if !math.IsNaN(pt.Sim) {
				sim = fmt.Sprintf("%.4f", pt.Sim)
			}
			fmt.Fprintf(w, "%s,%d,%d,%.6f,%s,%s,%.4f,%v,%v,%v\n",
				s.Name, s.V, s.MsgLen, pt.Rate, m, sim, pt.SimHW,
				pt.ModelSaturated, pt.SimSaturated, pt.Failed)
		}
	}
}

// RenderGrid writes the validation grid as an aligned table.
func RenderGrid(w io.Writer, rows []GridRow) {
	fmt.Fprintf(w, "%-4s %-4s %-6s %-10s %-12s %-12s %-8s %s\n",
		"n", "V", "M", "rate", "model", "sim", "err%", "notes")
	for _, r := range rows {
		m := "saturated"
		if !math.IsNaN(r.Model) {
			m = fmt.Sprintf("%.2f", r.Model)
		}
		e := ""
		if !math.IsNaN(r.ErrPct) {
			e = fmt.Sprintf("%+.1f", r.ErrPct)
		}
		notes := ""
		if r.SimSaturated {
			notes = "sim saturated"
		}
		fmt.Fprintf(w, "%-4d %-4d %-6d %-10.5f %-12s %-12.2f %-8s %s\n",
			r.N, r.V, r.MsgLen, r.Rate, m, r.Sim, e, notes)
	}
}

// RenderMixture writes the A1 ablation rows.
func RenderMixture(w io.Writer, rows []MixtureRow) {
	fmt.Fprintf(w, "%-10s %-14s %-18s %s\n",
		"rate", "window", "paper-inside", "paper-outside")
	for _, r := range rows {
		cols := make([]string, 3)
		for i, l := range r.Latency {
			if math.IsNaN(l) {
				cols[i] = "saturated"
			} else {
				cols[i] = fmt.Sprintf("%.2f", l)
			}
		}
		fmt.Fprintf(w, "%-10.5f %-14s %-18s %s\n", r.Rate, cols[0], cols[1], cols[2])
	}
}

// ShapeChecks verifies the qualitative agreements the reproduction
// promises for a Figure-1 panel (see EXPERIMENTS.md): latency curves
// increase with load, M=64 lies above M=32 everywhere, the model
// tracks the simulation within tol at the lightest half of the sweep,
// and the model does not outlive the simulation by predicting stable
// operation where the simulation saturates. It returns a list of
// violated properties (empty = all shapes hold).
func ShapeChecks(p *Panel, tol float64) []string {
	var bad []string
	bySeries := map[string]*Series{}
	for i := range p.Series {
		s := &p.Series[i]
		bySeries[s.Name] = s
		prev := 0.0
		for j, pt := range s.Points {
			if pt.SimSaturated {
				break
			}
			if pt.Sim < prev-2*pt.SimHW-1 {
				bad = append(bad, fmt.Sprintf("%s: sim latency not increasing at point %d", s.Name, j))
			}
			prev = pt.Sim
		}
		for j := 0; j < len(s.Points)/2; j++ {
			pt := s.Points[j]
			if pt.ModelSaturated || pt.SimSaturated || pt.Model == 0 || math.IsNaN(pt.Model) {
				continue // simulation-only series carry no model prediction
			}
			if rel := math.Abs(pt.Model-pt.Sim) / pt.Sim; rel > tol {
				bad = append(bad, fmt.Sprintf(
					"%s: model off by %.0f%% at rate %.4f", s.Name, rel*100, pt.Rate))
			}
		}
		for j, pt := range s.Points {
			if pt.SimSaturated && !pt.ModelSaturated && j+1 < len(s.Points) &&
				s.Points[j+1].SimSaturated && !s.Points[j+1].ModelSaturated {
				bad = append(bad, fmt.Sprintf(
					"%s: model stable two points past sim saturation (rate %.4f)", s.Name, pt.Rate))
				break
			}
		}
	}
	if a, b := bySeries["M=32"], bySeries["M=64"]; a != nil && b != nil {
		for j := range a.Points {
			if j < len(b.Points) && !a.Points[j].SimSaturated && !b.Points[j].SimSaturated &&
				b.Points[j].Sim <= a.Points[j].Sim {
				bad = append(bad, fmt.Sprintf("M=64 not above M=32 at rate %.4f", a.Points[j].Rate))
			}
		}
	}
	return bad
}

// RenderVariance writes the A4 ablation rows.
func RenderVariance(w io.Writer, rows []VarianceRow) {
	fmt.Fprintf(w, "%-10s %-14s %-16s %s\n",
		"rate", "paper", "exponential", "deterministic")
	for _, r := range rows {
		cols := make([]string, 3)
		for i, l := range r.Latency {
			if math.IsNaN(l) {
				cols[i] = "saturated"
			} else {
				cols[i] = fmt.Sprintf("%.2f", l)
			}
		}
		fmt.Fprintf(w, "%-10.5f %-14s %-16s %s\n", r.Rate, cols[0], cols[1], cols[2])
	}
}
