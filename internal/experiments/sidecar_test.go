package experiments

import (
	"bytes"
	"strings"
	"testing"

	"starperf/internal/obs"
	"starperf/internal/routing"
	"starperf/internal/stargraph"
)

// TestObservedSweepAndSidecars runs a small observed panel and checks
// that (a) every point carries a summary, (b) enabling observation
// leaves the latency statistics untouched, and (c) the sidecar
// writers produce deterministic non-trivial output.
func TestObservedSweepAndSidecars(t *testing.T) {
	opts := fastOpts()
	plain, err := StarPanel(4, 4, []int{16}, 0.02, 3, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Observe = &obs.Options{SampleEvery: 512, TraceCap: -1}
	observed, err := StarPanel(4, 4, []int{16}, 0.02, 3, opts)
	if err != nil {
		t.Fatal(err)
	}
	for si, s := range observed.Series {
		for pi, pt := range s.Points {
			if pt.Obs == nil {
				t.Fatalf("series %d point %d: no observer summary", si, pi)
			}
			if pt.Obs.Samples == 0 || pt.Obs.Grants == 0 {
				t.Errorf("series %d point %d: empty summary %+v", si, pi, pt.Obs)
			}
			// Passivity: the observed sweep's latency statistics match
			// the unobserved ones bit for bit.
			ref := plain.Series[si].Points[pi]
			if pt.Sim != ref.Sim || pt.SimHW != ref.SimHW || pt.SimSaturated != ref.SimSaturated {
				t.Errorf("series %d point %d: observation changed statistics: %+v vs %+v",
					si, pi, pt, ref)
			}
		}
	}
	var csv1, csv2, js bytes.Buffer
	if err := WriteMetricsSidecarCSV(&csv1, observed); err != nil {
		t.Fatal(err)
	}
	if err := WriteMetricsSidecarCSV(&csv2, observed); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(csv1.Bytes(), csv2.Bytes()) {
		t.Error("sidecar CSV not deterministic")
	}
	wantRows := 1 + len(observed.Series)*3 // header + every observed point
	if got := strings.Count(csv1.String(), "\n"); got != wantRows {
		t.Errorf("sidecar CSV has %d rows, want %d", got, wantRows)
	}
	if err := WriteMetricsSidecarJSON(&js, observed); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(js.String(), `"mean_chan_util"`) || !strings.Contains(js.String(), `"block_prob"`) {
		t.Errorf("sidecar JSON missing summary fields:\n%s", js.String())
	}
	// An unobserved panel yields an empty (header/skeleton only) sidecar.
	var empty bytes.Buffer
	if err := WriteMetricsSidecarCSV(&empty, plain); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(empty.String(), "\n"); got != 1 {
		t.Errorf("unobserved sidecar CSV has %d rows, want header only", got)
	}
}

// TestThroughputSweepConfig covers the new config-struct entry point
// and its validation.
func TestThroughputSweepConfig(t *testing.T) {
	g := stargraph.MustNew(4)
	rows, err := ThroughputSweep(ThroughputConfig{
		Top: g, Kind: routing.EnhancedNbc, V: 4, MsgLen: 16,
		Points: 3, MaxRate: 0.06, Sim: fastOpts(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	if _, err := ThroughputSweep(ThroughputConfig{Kind: routing.EnhancedNbc, V: 4, MsgLen: 16, Points: 3, MaxRate: 0.06}); err == nil {
		t.Error("nil Top accepted")
	}
	if _, err := ThroughputSweep(ThroughputConfig{Top: g, Kind: routing.EnhancedNbc, V: 4, MsgLen: 16, Points: 3}); err == nil {
		t.Error("zero MaxRate accepted")
	}
}
