package experiments

import (
	"bytes"
	"math"
	"runtime"
	"strings"
	"testing"

	"starperf/internal/routing"
)

// fastOpts keeps test runtimes reasonable while still exercising the
// full pipeline; single seed, short windows.
func fastOpts() SimOptions {
	return SimOptions{Warmup: 3000, Measure: 10000, Drain: 40000, Seeds: []uint64{7, 8}}
}

func TestFigure1PanelA(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-minute soak under -race")
	}
	p, err := Figure1Panel(Figure1Config{Panel: 'a', Points: 5, Workers: runtime.NumCPU(), Sim: fastOpts()})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Series) != 2 || p.Series[0].Name != "M=32" || p.Series[1].Name != "M=64" {
		t.Fatalf("series: %+v", p.Series)
	}
	for _, s := range p.Series {
		if len(s.Points) != 5 {
			t.Fatalf("%s has %d points", s.Name, len(s.Points))
		}
		if s.Points[0].Sim <= 0 {
			t.Fatalf("%s first point sim latency %v", s.Name, s.Points[0].Sim)
		}
		// first point must be comfortably below saturation both ways
		if s.Points[0].ModelSaturated || s.Points[0].SimSaturated {
			t.Fatalf("%s saturated at lightest load", s.Name)
		}
	}
	// the lightest point of M=64 must cost more than M=32's
	if p.Series[1].Points[0].Sim <= p.Series[0].Points[0].Sim {
		t.Fatal("M=64 not slower than M=32 at light load")
	}
	// rendering must produce non-trivial output in both formats
	var buf bytes.Buffer
	RenderPanel(&buf, p)
	if !strings.Contains(buf.String(), "Figure 1(a)") || buf.Len() < 200 {
		t.Fatal("panel rendering too small")
	}
	buf.Reset()
	RenderPanelCSV(&buf, p)
	if lines := strings.Count(buf.String(), "\n"); lines != 1+2*5 {
		t.Fatalf("CSV has %d lines", lines)
	}
}

func TestFigure1BadPanel(t *testing.T) {
	if _, err := Figure1Panel(Figure1Config{Panel: 'z', Points: 3, Sim: fastOpts()}); err == nil {
		t.Fatal("unknown panel accepted")
	}
}

func TestShapeChecksOnRealPanel(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-minute soak under -race")
	}
	opts := fastOpts()
	opts.Seeds = []uint64{3, 4, 5}
	p, err := Figure1Panel(Figure1Config{Panel: 'a', Points: 6, Workers: runtime.NumCPU(), Sim: opts})
	if err != nil {
		t.Fatal(err)
	}
	// 40% tolerance on the light half: the model is approximate, but
	// must be in the right neighbourhood.
	if bad := ShapeChecks(p, 0.40); len(bad) != 0 {
		var buf bytes.Buffer
		RenderPanel(&buf, p)
		t.Fatalf("shape violations: %v\n%s", bad, buf.String())
	}
}

func TestShapeChecksCatchesBrokenPanel(t *testing.T) {
	p := &Panel{Series: []Series{{
		Name: "M=32",
		Points: []Point{
			{Rate: 0.001, Model: 40, Sim: 40},
			{Rate: 0.002, Model: 400, Sim: 41}, // model wildly off, in the light half
			{Rate: 0.003, Model: 42, Sim: 42},
			{Rate: 0.004, Model: 43, Sim: 43},
		},
	}}}
	if bad := ShapeChecks(p, 0.4); len(bad) == 0 {
		t.Fatal("shape checks accepted a broken panel")
	}
}

func TestAblationMixtureRows(t *testing.T) {
	rows, err := AblationMixture(6, 32, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if math.IsNaN(r.Latency[0]) {
			continue
		}
		// Jensen: inside-power ≤ outside-power whenever both converge
		if !math.IsNaN(r.Latency[1]) && !math.IsNaN(r.Latency[2]) &&
			r.Latency[1] > r.Latency[2]+1e-6 {
			t.Fatalf("inside %v above outside %v at rate %v", r.Latency[1], r.Latency[2], r.Rate)
		}
	}
	var buf bytes.Buffer
	RenderMixture(&buf, rows)
	if buf.Len() == 0 {
		t.Fatal("empty mixture rendering")
	}
}

func TestAblationAlgorithmsOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-minute soak under -race")
	}
	opts := fastOpts()
	p, err := AblationAlgorithms(6, 32, 4, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Series) != 3 {
		t.Fatalf("%d series", len(p.Series))
	}
	// At the heaviest common stable load Enhanced-Nbc must beat NHop
	// (the result of the paper's ref. [13] that motivates the whole
	// modelling exercise).
	nhop, enbc := p.Series[0], p.Series[2]
	if nhop.Kind != routing.NHop || enbc.Kind != routing.EnhancedNbc {
		t.Fatal("series order unexpected")
	}
	idx := -1
	for j := range nhop.Points {
		if !nhop.Points[j].SimSaturated && !enbc.Points[j].SimSaturated {
			idx = j
		}
	}
	if idx < 0 {
		t.Fatal("no common stable point")
	}
	if enbc.Points[idx].Sim > nhop.Points[idx].Sim {
		t.Fatalf("Enhanced-Nbc (%.2f) slower than NHop (%.2f) at rate %.4f",
			enbc.Points[idx].Sim, nhop.Points[idx].Sim, nhop.Points[idx].Rate)
	}
}

func TestAblationSelectionRuns(t *testing.T) {
	p, err := AblationSelection(6, 32, 3, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Series) != 3 {
		t.Fatalf("%d series", len(p.Series))
	}
	for _, s := range p.Series {
		for _, pt := range s.Points {
			if pt.Sim <= 0 {
				t.Fatalf("%s: empty sim point", s.Name)
			}
		}
	}
}

func TestStarVsHypercube(t *testing.T) {
	opts := fastOpts()
	opts.Seeds = []uint64{11}
	p, err := StarVsHypercube(32, 6, 4, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Series) != 2 || p.Series[0].Name != "S5" || p.Series[1].Name != "Q7" {
		t.Fatalf("series %+v", p.Series)
	}
	for _, s := range p.Series {
		if s.Points[0].SimSaturated || s.Points[0].ModelSaturated {
			t.Fatalf("%s saturated at lightest point", s.Name)
		}
		// model within 45% of sim at the lightest point
		rel := math.Abs(s.Points[0].Model-s.Points[0].Sim) / s.Points[0].Sim
		if rel > 0.45 {
			t.Fatalf("%s model off by %.0f%% at light load", s.Name, rel*100)
		}
	}
}

func TestValidationGridSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("grid is slow")
	}
	opts := fastOpts()
	opts.Seeds = []uint64{1}
	opts.Measure = 6000
	rows, err := ValidationGrid(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("empty grid")
	}
	sane := 0
	for _, r := range rows {
		if !math.IsNaN(r.ErrPct) && math.Abs(r.ErrPct) < 50 {
			sane++
		}
	}
	if sane < len(rows)/2 {
		t.Fatalf("only %d/%d grid rows within 50%%", sane, len(rows))
	}
	var buf bytes.Buffer
	RenderGrid(&buf, rows)
	if buf.Len() == 0 {
		t.Fatal("empty grid rendering")
	}
}

func TestSwitchingComparison(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-minute soak under -race")
	}
	opts := fastOpts()
	opts.Seeds = []uint64{5}
	p, err := SwitchingComparison(6, 32, 6, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Series) != 2 || p.Series[0].Name != "wormhole" || p.Series[1].Name != "cut-through" {
		t.Fatalf("series %+v", p.Series)
	}
	wh, vct := p.Series[0], p.Series[1]
	// the cut-through knee must lie beyond the wormhole knee, in both
	// model and simulation
	firstSat := func(s Series, model bool) int {
		for i, pt := range s.Points {
			if (model && pt.ModelSaturated) || (!model && pt.SimSaturated) {
				return i
			}
		}
		return len(s.Points)
	}
	if firstSat(vct, true) <= firstSat(wh, true) {
		t.Fatalf("VCT model knee (%d) not beyond wormhole's (%d)",
			firstSat(vct, true), firstSat(wh, true))
	}
	if firstSat(vct, false) < firstSat(wh, false) {
		t.Fatalf("VCT sim knee (%d) before wormhole's (%d)",
			firstSat(vct, false), firstSat(wh, false))
	}
}

func TestAblationVariance(t *testing.T) {
	rows, err := AblationVariance(6, 32, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		p, e, d := r.Latency[0], r.Latency[1], r.Latency[2]
		// deterministic ≤ paper ≤ exponential wherever all converge:
		// the P-K wait is monotone in the variance, and
		// 0 ≤ (S̄−M)² ≤ S̄².
		if !math.IsNaN(d) && !math.IsNaN(p) && d > p+1e-9 {
			t.Fatalf("deterministic %v above paper %v at rate %v", d, p, r.Rate)
		}
		if !math.IsNaN(p) && !math.IsNaN(e) && p > e+1e-9 {
			t.Fatalf("paper %v above exponential %v at rate %v", p, e, r.Rate)
		}
	}
	// near the knee the choice must matter (>5% spread)
	last := rows[len(rows)-1]
	if !math.IsNaN(last.Latency[2]) && !math.IsNaN(last.Latency[1]) {
		if (last.Latency[1]-last.Latency[2])/last.Latency[2] < 0.05 {
			t.Fatalf("variance choice immaterial at the knee: %v", last.Latency)
		}
	}
	var buf bytes.Buffer
	RenderVariance(&buf, rows)
	if !strings.Contains(buf.String(), "exponential") {
		t.Fatal("rendering broken")
	}
}

func TestStarPanelS4(t *testing.T) {
	opts := fastOpts()
	opts.Seeds = []uint64{2}
	p, err := StarPanel(4, 5, []int{16}, 0, 4, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Series) != 1 || len(p.Series[0].Points) != 4 {
		t.Fatalf("panel shape: %+v", p.Series)
	}
	pt := p.Series[0].Points[0]
	if pt.Sim <= 0 || pt.ModelSaturated || math.IsNaN(pt.Model) {
		t.Fatalf("first point unhealthy: %+v", pt)
	}
	rel := math.Abs(pt.Model-pt.Sim) / pt.Sim
	if rel > 0.35 {
		t.Fatalf("S4 model off by %.0f%% at light load", rel*100)
	}
	if _, err := StarPanel(1, 5, []int{16}, 0, 3, opts); err == nil {
		t.Fatal("S1 accepted")
	}
}
