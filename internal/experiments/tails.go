package experiments

import (
	"fmt"
	"io"
	"sync"

	"starperf/internal/desim"
	"starperf/internal/routing"
	"starperf/internal/topology"
)

// TailRow is one operating point of a latency-percentile sweep.
type TailRow struct {
	Rate           float64
	Mean           float64
	P50, P95, P99  int
	Max            float64
	Saturated      bool
	SamplesDropped uint64
}

// TailLatency sweeps offered load and reports latency percentiles —
// the tail behaviour the paper's mean-latency model deliberately does
// not capture. Wormhole blocking produces heavy tails well before the
// mean shows distress: P99/P50 grows monotonically with load.
func TailLatency(top topology.Topology, kind routing.Kind, v, msgLen, points int,
	maxRate float64, opts SimOptions) ([]TailRow, error) {
	opts = opts.withDefaults()
	spec, err := routing.New(kind, top, v)
	if err != nil {
		return nil, err
	}
	rates := ratesUpTo(maxRate, points)
	rows := make([]TailRow, len(rates))
	errs := make([]error, len(rates))
	var wg sync.WaitGroup
	sem := make(chan struct{}, opts.Workers)
	for i, rate := range rates {
		wg.Add(1)
		go func(i int, rate float64) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			res, err := desim.Run(desim.Config{
				Top: top, Spec: spec, Policy: opts.Policy,
				Rate: rate, MsgLen: msgLen, BufCap: opts.BufCap,
				Seed:         opts.Seeds[0]*104729 + uint64(i),
				WarmupCycles: opts.Warmup, MeasureCycles: opts.Measure,
				DrainCycles: opts.Drain,
			})
			if err != nil {
				errs[i] = err
				return
			}
			rows[i] = TailRow{
				Rate:           rate,
				Mean:           res.Latency.Mean(),
				P50:            res.LatencyHist.Quantile(0.50),
				P95:            res.LatencyHist.Quantile(0.95),
				P99:            res.LatencyHist.Quantile(0.99),
				Max:            res.Latency.Max(),
				Saturated:      res.Saturated(),
				SamplesDropped: res.LatencyHist.Clamped,
			}
		}(i, rate)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return rows, nil
}

// RenderTails writes the percentile sweep as a table.
func RenderTails(w io.Writer, rows []TailRow) {
	fmt.Fprintf(w, "%-10s %-10s %-8s %-8s %-8s %-10s %s\n",
		"rate", "mean", "p50", "p95", "p99", "max", "notes")
	for _, r := range rows {
		notes := ""
		if r.Saturated {
			notes = "saturated"
		}
		if r.SamplesDropped > 0 {
			notes += fmt.Sprintf(" (%d clamped)", r.SamplesDropped)
		}
		fmt.Fprintf(w, "%-10.5f %-10.2f %-8d %-8d %-8d %-10.0f %s\n",
			r.Rate, r.Mean, r.P50, r.P95, r.P99, r.Max, notes)
	}
}
