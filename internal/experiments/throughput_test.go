package experiments

import (
	"bytes"
	"runtime"
	"strings"
	"testing"

	"starperf/internal/routing"
	"starperf/internal/stargraph"
)

func TestThroughputCurve(t *testing.T) {
	g := stargraph.MustNew(4)
	opts := fastOpts()
	opts.Measure = 8000
	// S4 with V=5, M=16 has a physical capacity ceiling of
	// (n−1)/(d̄·M) ≈ 0.074 msg/node/cycle; sweep well past it.
	rows, err := ThroughputSweep(ThroughputConfig{
		Top: g, Kind: routing.EnhancedNbc, V: 5, MsgLen: 16,
		Points: 6, MaxRate: 0.12, Workers: runtime.NumCPU(), Sim: opts,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("%d rows", len(rows))
	}
	// accepted tracks offered at light load
	if r := rows[0]; r.Accepted < 0.8*r.Offered || r.Accepted > 1.2*r.Offered {
		t.Fatalf("light load accepted %v vs offered %v", r.Accepted, r.Offered)
	}
	// accepted never exceeds offered by more than noise, and the heavy
	// end must fall short of offered (saturation plateau)
	last := rows[len(rows)-1]
	if last.Accepted > last.Offered*1.05 {
		t.Fatalf("accepted %v above offered %v", last.Accepted, last.Offered)
	}
	if !last.Saturated && last.Accepted > 0.97*last.Offered {
		t.Fatalf("expected saturation at offered %v (accepted %v)", last.Offered, last.Accepted)
	}
	peak := SaturationThroughput(rows)
	if peak <= 0 || peak > 0.12 {
		t.Fatalf("peak throughput %v", peak)
	}
	var buf bytes.Buffer
	RenderThroughput(&buf, rows)
	if !strings.Contains(buf.String(), "peak accepted throughput") {
		t.Fatal("rendering missing summary line")
	}
}

func TestThroughputRejectsBadSpec(t *testing.T) {
	g := stargraph.MustNew(4)
	if _, err := ThroughputSweep(ThroughputConfig{
		Top: g, Kind: routing.EnhancedNbc, V: 2, MsgLen: 16,
		Points: 3, MaxRate: 0.01, Sim: fastOpts(),
	}); err == nil {
		t.Fatal("V below minimum accepted")
	}
}

func TestASCIIPlot(t *testing.T) {
	p := &Panel{
		Title: "test plot",
		Series: []Series{{
			Name: "M=32",
			Points: []Point{
				{Rate: 0.002, Sim: 40, Model: 39},
				{Rate: 0.004, Sim: 55, Model: 50},
				{Rate: 0.006, Sim: 80, Model: 70},
				{Rate: 0.008, Sim: 4000, Model: 100}, // clamped outlier
			},
		}},
	}
	var buf bytes.Buffer
	RenderASCIIPlot(&buf, p, 40, 12)
	out := buf.String()
	for _, want := range []string{"test plot", "o", ".", "^", "M=32"} {
		if !strings.Contains(out, want) {
			t.Fatalf("plot missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 1+12+3 {
		t.Fatalf("plot has %d lines", len(lines))
	}
	// empty panel
	buf.Reset()
	RenderASCIIPlot(&buf, &Panel{Title: "empty"}, 40, 12)
	if !strings.Contains(buf.String(), "no finite points") {
		t.Fatal("empty panel not handled")
	}
}

func TestTailLatency(t *testing.T) {
	g := stargraph.MustNew(5)
	opts := fastOpts()
	opts.Seeds = []uint64{3}
	rows, err := TailLatency(g, routing.EnhancedNbc, 6, 32, 4, 0.014, opts)
	if err != nil {
		t.Fatal(err)
	}
	prevRatio := 0.0
	for i, r := range rows {
		if !(r.P50 <= r.P95 && r.P95 <= r.P99 && float64(r.P99) <= r.Max+1) {
			t.Fatalf("percentiles disordered at rate %v: %+v", r.Rate, r)
		}
		ratio := float64(r.P99) / float64(r.P50)
		if i > 0 && ratio < prevRatio*0.9 {
			t.Fatalf("tail ratio fell sharply with load: %v after %v", ratio, prevRatio)
		}
		prevRatio = ratio
	}
	// tails must widen from the lightest to the heaviest point
	first := float64(rows[0].P99) / float64(rows[0].P50)
	last := float64(rows[len(rows)-1].P99) / float64(rows[len(rows)-1].P50)
	if last <= first {
		t.Fatalf("P99/P50 did not widen with load (%v -> %v)", first, last)
	}
	var buf bytes.Buffer
	RenderTails(&buf, rows)
	if !strings.Contains(buf.String(), "p99") {
		t.Fatal("rendering broken")
	}
}

func TestLevelUsageImbalance(t *testing.T) {
	opts := fastOpts()
	opts.Seeds = []uint64{9}
	rows, err := LevelUsage(6, 32, 0.008, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	nhop, nbc, enbc := rows[0], rows[1], rows[2]
	// NHop hammers low levels (the paper's §3 complaint); bonus cards
	// spread the load, so NHop's imbalance must dominate Nbc's.
	if nhop.Imbalance < 4*nbc.Imbalance {
		t.Fatalf("NHop imbalance %.1f not well above Nbc's %.1f",
			nhop.Imbalance, nbc.Imbalance)
	}
	// Enhanced-Nbc routes most hops on class a
	if enbc.ClassAShare < 0.5 {
		t.Fatalf("Enhanced-Nbc class-a share %.2f", enbc.ClassAShare)
	}
	for _, r := range rows {
		var sum float64
		for _, s := range r.Share {
			sum += s
		}
		if sum < 0.999 || sum > 1.001 {
			t.Fatalf("%v shares sum to %v", r.Kind, sum)
		}
	}
	var buf bytes.Buffer
	RenderLevels(&buf, rows)
	if !strings.Contains(buf.String(), "imbalance") {
		t.Fatal("rendering broken")
	}
}
