package experiments

import (
	"fmt"
	"io"

	"starperf/internal/desim"
	"starperf/internal/routing"
	"starperf/internal/stargraph"
)

// LevelUsageRow reports how one algorithm spreads its class-b
// (escape) acquisitions across virtual-channel levels.
type LevelUsageRow struct {
	Kind routing.Kind
	// Share[l] is the fraction of class-b acquisitions at level l.
	Share []float64
	// Imbalance is Share[0]/Share[V2-1] (∞-safe: capped at 1e9), the
	// paper's "virtual channels with high numbers will be used
	// rarely" in one number.
	Imbalance float64
	// ClassAShare is the fraction of all acquisitions on class-a
	// channels (0 for the escape-only schemes).
	ClassAShare float64
}

// LevelUsage reproduces the paper's §3 motivation for bonus cards:
// under NHop a message occupies exactly the level equal to its
// negative-hop count, so low levels are hammered and high levels
// starve; Nbc's bonus cards spread the load. Measured on S5 at the
// given load with an equal total VC budget.
func LevelUsage(v, msgLen int, rate float64, opts SimOptions) ([]LevelUsageRow, error) {
	opts = opts.withDefaults()
	g, err := stargraph.New(5)
	if err != nil {
		return nil, err
	}
	var rows []LevelUsageRow
	for _, kind := range []routing.Kind{routing.NHop, routing.Nbc, routing.EnhancedNbc} {
		spec, err := routing.New(kind, g, v)
		if err != nil {
			return nil, err
		}
		res, err := desim.Run(desim.Config{
			Top: g, Spec: spec, Rate: rate, MsgLen: msgLen,
			Seed:         opts.Seeds[0],
			WarmupCycles: opts.Warmup, MeasureCycles: opts.Measure,
			DrainCycles: opts.Drain,
		})
		if err != nil {
			return nil, err
		}
		row := LevelUsageRow{Kind: kind, Share: make([]float64, spec.V2)}
		var total float64
		for _, c := range res.ClassBLevelUse {
			total += float64(c)
		}
		for l, c := range res.ClassBLevelUse {
			if total > 0 {
				row.Share[l] = float64(c) / total
			}
		}
		if last := row.Share[len(row.Share)-1]; last > 0 {
			row.Imbalance = row.Share[0] / last
		} else {
			row.Imbalance = 1e9
		}
		if all := float64(res.ClassAUse + res.ClassBUse); all > 0 {
			row.ClassAShare = float64(res.ClassAUse) / all
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderLevels writes the level-usage comparison.
func RenderLevels(w io.Writer, rows []LevelUsageRow) {
	fmt.Fprintf(w, "class-b level usage shares (level 0 … V2−1):\n")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-14s", r.Kind)
		for _, s := range r.Share {
			fmt.Fprintf(w, " %6.3f", s)
		}
		fmt.Fprintf(w, "   imbalance %.1fx", r.Imbalance)
		if r.ClassAShare > 0 {
			fmt.Fprintf(w, "   (%.0f%% of hops on class a)", r.ClassAShare*100)
		}
		fmt.Fprintln(w)
	}
}
