package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// TestBoundsFigure pins the figure's defining property on a fast S4
// sweep: on every row the simulated mean, p99.9 and max sit at or
// below the certified bound, rates ascend, and the CSV rendering is
// machine-parseable with one line per row.
func TestBoundsFigure(t *testing.T) {
	rows, err := BoundsFigure(BoundsFigureConfig{
		Points: 4,
		Sim:    SimOptions{Warmup: 2000, Measure: 8000, Seeds: []uint64{1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows %d, want 4", len(rows))
	}
	prevRate := 0.0
	for _, r := range rows {
		if r.Rate <= prevRate {
			t.Fatalf("rates not ascending: %v after %v", r.Rate, prevRate)
		}
		prevRate = r.Rate
		if !(r.Bound > 0) {
			t.Fatalf("rate %g: bound %v not positive", r.Rate, r.Bound)
		}
		if r.SimMean > float64(r.SimP999) || float64(r.SimP999) > r.SimMax {
			t.Fatalf("rate %g: percentile ordering broken: mean %v p999 %d max %v",
				r.Rate, r.SimMean, r.SimP999, r.SimMax)
		}
		if r.SimMax > r.Bound {
			t.Fatalf("rate %g: simulated max %v exceeds bound %v", r.Rate, r.SimMax, r.Bound)
		}
		if !r.ModelSaturated && !(r.ModelMean > 0) {
			t.Fatalf("rate %g: model mean %v", r.Rate, r.ModelMean)
		}
	}

	var buf bytes.Buffer
	RenderBoundsCSV(&buf, rows)
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != len(rows)+1 {
		t.Fatalf("CSV lines %d, want header + %d rows", len(lines), len(rows))
	}
	if lines[0] != "rate,bound,model_mean,model_saturated,sim_mean,sim_p999,sim_max" {
		t.Fatalf("CSV header %q", lines[0])
	}
	for _, ln := range lines[1:] {
		if got := strings.Count(ln, ","); got != 6 {
			t.Fatalf("CSV row %q has %d commas, want 6", ln, got)
		}
	}

	var tbl bytes.Buffer
	RenderBounds(&tbl, rows)
	if !strings.Contains(tbl.String(), "bound") || !strings.Contains(tbl.String(), "sim_p999") {
		t.Fatalf("table rendering missing headers:\n%s", tbl.String())
	}
}

// TestBoundsFigureRejectsBadPoints covers the config guard.
func TestBoundsFigureRejectsBadPoints(t *testing.T) {
	if _, err := BoundsFigure(BoundsFigureConfig{Points: 65}); err == nil {
		t.Fatal("65 points accepted")
	}
}
