package experiments

import (
	"math"

	"starperf/internal/model"
	"starperf/internal/routing"
	"starperf/internal/stargraph"
)

// AblationMixture (A1) quantifies the sensitivity of the model to the
// placement of the class mixture in eq. 8: the paper raises the
// class-weighted per-channel blocking probability to the power f
// (inside), the corrected form averages the per-class blocking
// probabilities after the power (outside), and the window form drops
// the class structure entirely (it is exact for the implemented
// algorithm). Returns one row per rate with the three predictions.
func AblationMixture(v, msgLen, points int) ([]MixtureRow, error) {
	sp, err := model.NewStarPaths(5)
	if err != nil {
		return nil, err
	}
	g := stargraph.MustNew(5)
	maxRate := 0.015
	var rows []MixtureRow
	for _, rate := range ratesUpTo(maxRate, points) {
		row := MixtureRow{Rate: rate}
		for i, b := range []model.BlockingModel{
			model.Window, model.PaperInsidePower, model.PaperOutsidePower,
		} {
			r, err := model.Evaluate(model.Config{
				Paths: sp, Top: g, Kind: routing.EnhancedNbc,
				V: v, MsgLen: msgLen, Rate: rate, Blocking: b,
			})
			if err != nil {
				row.Latency[i] = math.NaN()
			} else {
				row.Latency[i] = r.Latency
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// MixtureRow holds the three blocking-model predictions at one rate,
// ordered Window, PaperInsidePower, PaperOutsidePower.
type MixtureRow struct {
	Rate    float64
	Latency [3]float64
}

// AblationSelection (A2) compares the virtual-channel selection
// policies in simulation on the Figure-1a workload: prefer-class-a
// (the policy the model assumes), random-any, and the deliberately
// poor lowest-escape-first.
func AblationSelection(v, msgLen, points int, opts SimOptions) (*Panel, error) {
	g := stargraph.MustNew(5)
	p := &Panel{
		Title:  "Ablation A2: VC selection policy (S5, Enhanced-Nbc)",
		XLabel: "traffic generation rate (messages/node/cycle)",
	}
	for _, pol := range []routing.Policy{
		routing.PreferClassA, routing.RandomAny, routing.LowestEscapeFirst,
	} {
		s := Series{Name: pol.String(), V: v, MsgLen: msgLen, Kind: routing.EnhancedNbc}
		for _, r := range ratesUpTo(0.015, points) {
			s.Points = append(s.Points, Point{Rate: r})
		}
		o := opts
		o.Policy = pol
		if err := runSweep(g, []*Series{&s}, o, nil); err != nil {
			return nil, err
		}
		p.Series = append(p.Series, s)
	}
	return p, nil
}

// AblationAlgorithms (A3) reproduces the motivation for the paper's
// focus on Enhanced-Nbc (its ref. [13]): NHop vs Nbc vs Enhanced-Nbc
// in simulation at equal total VC budget, plus the model's prediction
// for each.
func AblationAlgorithms(vTotal, msgLen, points int, opts SimOptions) (*Panel, error) {
	g := stargraph.MustNew(5)
	p := &Panel{
		Title:  "Ablation A3: routing algorithms (S5, equal VC budget)",
		XLabel: "traffic generation rate (messages/node/cycle)",
	}
	for _, kind := range []routing.Kind{routing.NHop, routing.Nbc, routing.EnhancedNbc} {
		s := Series{Name: kind.String(), V: vTotal, MsgLen: msgLen, Kind: kind}
		for _, r := range ratesUpTo(0.015, points) {
			s.Points = append(s.Points, Point{Rate: r})
		}
		if err := runSweep(g, []*Series{&s}, opts, nil); err != nil {
			return nil, err
		}
		if err := fillModel(5, &s, model.Window); err != nil {
			return nil, err
		}
		p.Series = append(p.Series, s)
	}
	return p, nil
}

// AblationVariance (A4) tests the paper's §5 claim that the
// saturation-region error stems from the service-time variance
// approximation σ² = (S̄−M)²: it evaluates the model under the
// paper's, the exponential and the deterministic variance choices.
func AblationVariance(v, msgLen, points int) ([]VarianceRow, error) {
	sp, err := model.NewStarPaths(5)
	if err != nil {
		return nil, err
	}
	g := stargraph.MustNew(5)
	var rows []VarianceRow
	for _, rate := range ratesUpTo(0.015, points) {
		row := VarianceRow{Rate: rate}
		for i, vm := range []model.VarianceModel{
			model.PaperVariance, model.ExponentialVariance, model.DeterministicVariance,
		} {
			r, err := model.Evaluate(model.Config{
				Paths: sp, Top: g, Kind: routing.EnhancedNbc,
				V: v, MsgLen: msgLen, Rate: rate, Variance: vm,
			})
			if err != nil {
				row.Latency[i] = math.NaN()
			} else {
				row.Latency[i] = r.Latency
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// VarianceRow holds the three variance-model predictions at one rate,
// ordered Paper, Exponential, Deterministic.
type VarianceRow struct {
	Rate    float64
	Latency [3]float64
}
