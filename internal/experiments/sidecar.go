package experiments

import (
	"encoding/json"
	"fmt"
	"io"

	"starperf/internal/obs"
)

// Metrics sidecars: per-point observer summaries exported next to a
// panel's latency data. Points carry an Obs summary only when the
// sweep ran with SimOptions.Observe set; both writers skip unobserved
// points, and both are byte-deterministic (fixed column order, %g
// floats, no timestamps) so sidecars fall under the repo's
// reproducible-artifact discipline.

// WriteMetricsSidecarCSV writes one CSV row per observed point of the
// panel.
func WriteMetricsSidecarCSV(w io.Writer, p *Panel) error {
	if _, err := fmt.Fprintln(w, "series,rate,samples,mean_chan_util,peak_chan_util,mean_vc_occupancy,mean_queued,peak_queue,grants,block_episodes,block_prob,mean_wait,wait_per_grant,misroutes,flap_denials"); err != nil {
		return err
	}
	for _, s := range p.Series {
		for _, pt := range s.Points {
			o := pt.Obs
			if o == nil {
				continue
			}
			_, err := fmt.Fprintf(w, "%s,%g,%d,%g,%g,%g,%g,%d,%d,%d,%g,%g,%g,%d,%d\n",
				s.Name, pt.Rate, o.Samples, o.MeanChanUtil, o.PeakChanUtil,
				o.MeanVCOccupancy, o.MeanQueued, o.PeakQueue,
				o.Grants, o.BlockEpisodes, o.BlockProb, o.MeanWait, o.WaitPerGrant,
				o.Misroutes, o.FlapDenials)
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// sidecarPoint and sidecarSeries shape the JSON sidecar; field order
// is fixed by the structs.
type sidecarPoint struct {
	Rate float64      `json:"rate"`
	Obs  *obs.Summary `json:"obs"`
}

type sidecarSeries struct {
	Name   string         `json:"name"`
	Points []sidecarPoint `json:"points"`
}

type sidecarPanel struct {
	Title  string          `json:"title"`
	Series []sidecarSeries `json:"series"`
}

// WriteMetricsSidecarJSON writes the observed points of the panel as
// indented JSON grouped by series.
func WriteMetricsSidecarJSON(w io.Writer, p *Panel) error {
	out := sidecarPanel{Title: p.Title}
	for _, s := range p.Series {
		ss := sidecarSeries{Name: s.Name, Points: []sidecarPoint{}}
		for _, pt := range s.Points {
			if pt.Obs == nil {
				continue
			}
			ss.Points = append(ss.Points, sidecarPoint{Rate: pt.Rate, Obs: pt.Obs})
		}
		out.Series = append(out.Series, ss)
	}
	b, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}
