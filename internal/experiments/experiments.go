// Package experiments defines the reproducible experiments of the
// repository: the three panels of the paper's Figure 1 (model vs
// simulation latency curves for S5 with V = 6, 9, 12 and M = 32, 64),
// the broader validation grid the paper's §5 alludes to, the
// star-vs-hypercube comparison of the paper's future-work section,
// and the ablations called out in DESIGN.md. Simulation points run in
// parallel across a worker pool; every run is deterministic given its
// seed list.
package experiments

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"time"

	"starperf/internal/desim"
	"starperf/internal/jobs"
	"starperf/internal/model"
	"starperf/internal/obs"
	"starperf/internal/routing"
	"starperf/internal/stargraph"
	"starperf/internal/stats"
	"starperf/internal/topology"
	"starperf/internal/traffic"
)

// SimOptions tunes the simulation side of an experiment.
type SimOptions struct {
	// Warmup, Measure and Drain are the per-run cycle windows;
	// zero values select 8000/30000/120000.
	Warmup, Measure, Drain int64
	// Seeds lists one seed per replication (default: {1, 2, 3}).
	Seeds []uint64
	// Policy is the VC selection policy (default PreferClassA).
	Policy routing.Policy
	// BufCap is the per-VC buffer depth (default 2).
	BufCap int
	// Workers bounds simulation parallelism (default NumCPU).
	Workers int
	// PointTimeout, when positive, is the wall-clock budget of one
	// (point, seed) simulation. A run past the budget is marked
	// failed (Point.Failed) and its goroutine left to finish in the
	// background (every run is cycle-bounded by the drain limit, so
	// it terminates). The budget makes which points are marked
	// timing-dependent, so leave it zero when byte-reproducible panel
	// output matters.
	PointTimeout time.Duration
	// MaxMsgAge arms the simulator's over-age watchdog per run (see
	// desim.Config.MaxMsgAge); aborted runs get one retry at an
	// escalated drain window, then mark the point failed.
	MaxMsgAge int64
	// Observe, when non-nil, attaches an obs.Collector to the
	// first-seed replication of every point and stores its Summary in
	// Point.Obs — the per-point metrics sidecar
	// (WriteMetricsSidecarCSV/JSON). Observation is passive, so the
	// latency statistics are unchanged by enabling it.
	Observe *obs.Options
}

func (o SimOptions) withDefaults() SimOptions {
	if o.Warmup == 0 {
		o.Warmup = 8000
	}
	if o.Measure == 0 {
		o.Measure = 30000
	}
	if o.Drain == 0 {
		o.Drain = 120000
	}
	if len(o.Seeds) == 0 {
		o.Seeds = []uint64{1, 2, 3}
	}
	if o.Workers == 0 {
		o.Workers = runtime.NumCPU()
	}
	return o
}

// Point is one operating point of a latency curve.
type Point struct {
	// Rate is λg in messages/node/cycle.
	Rate float64
	// Model is the model-predicted mean latency; NaN beyond the
	// model's saturation point (ModelSaturated true).
	Model          float64
	ModelSaturated bool
	// Sim is the simulated mean latency over replications, SimHW the
	// half-width of its ~95% confidence interval over seeds, and
	// SimSaturated whether any replication failed to drain.
	Sim          float64
	SimHW        float64
	SimSaturated bool
	// Failed marks a point at least one of whose replications
	// produced no usable result — a panic, a watchdog abort that
	// survived the escalated-drain retry, or a wall-budget timeout —
	// with Err carrying the first failure. Sim aggregates the
	// surviving replications (NaN when none survived); the panel
	// renders the point as failed instead of the whole figure
	// failing.
	Failed bool
	Err    string
	// Obs is the observer summary of the point's first-seed
	// replication; nil unless SimOptions.Observe was set.
	Obs *obs.Summary
}

// Series is one curve (fixed V, M, algorithm) over a rate sweep.
type Series struct {
	Name   string
	V      int
	MsgLen int
	Kind   routing.Kind
	Points []Point
}

// Panel is a titled group of series, matching one figure panel.
type Panel struct {
	Title  string
	XLabel string
	Series []Series
}

// simJob is one (series, point, seed) simulation unit.
type simJob struct {
	series, point, seed int
	cfg                 desim.Config
}

// runSweep fills the Sim fields of every point of every series by
// running all (point × seed) simulations on a bounded jobs.Pool —
// the same engine the serving layer uses. Results are gathered into
// an index-addressed slice and seeds are pure functions of position,
// so the output is byte-identical for any worker count.
func runSweep(top topology.Topology, panels []*Series, opts SimOptions, pattern traffic.Pattern) error {
	opts = opts.withDefaults()
	var units []simJob
	var collectors []*obs.Collector // parallel to units; nil when unobserved
	for si, s := range panels {
		spec, err := routing.New(s.Kind, top, s.V)
		if err != nil {
			return err
		}
		for pi, p := range s.Points {
			for ki, seed := range opts.Seeds {
				var col *obs.Collector
				if opts.Observe != nil && ki == 0 {
					col = obs.New(*opts.Observe)
				}
				collectors = append(collectors, col)
				units = append(units, simJob{
					series: si, point: pi, seed: ki,
					cfg: desim.Config{
						Top:           top,
						Spec:          spec,
						Policy:        opts.Policy,
						Pattern:       pattern,
						Rate:          p.Rate,
						MsgLen:        s.MsgLen,
						BufCap:        opts.BufCap,
						Seed:          seed*1_000_003 + uint64(si*131+pi*17+1),
						WarmupCycles:  opts.Warmup,
						MeasureCycles: opts.Measure,
						DrainCycles:   opts.Drain,
						MaxMsgAge:     opts.MaxMsgAge,
					},
				})
				if col != nil {
					// assigned outside the literal: a nil *obs.Collector
					// stored directly would make the interface non-nil
					units[len(units)-1].cfg.Observer = col
				}
			}
		}
	}
	type outcome struct {
		job simJob
		res *desim.Result
		err error
	}
	pool := jobs.NewPool(jobs.PoolConfig{Workers: opts.Workers, QueueDepth: len(units)})
	defer pool.Shutdown(context.Background())
	handles := make([]*jobs.Job, len(units))
	for i := range units {
		i := i
		h, err := pool.Submit(fmt.Sprintf("point/%d", i), func(ctx context.Context) (any, error) {
			return runPoint(units[i].cfg, opts.PointTimeout)
		})
		if err != nil {
			return err
		}
		handles[i] = h
	}
	results := make([]outcome, len(units))
	for i, h := range handles {
		v, jerr := h.Wait(context.Background())
		oc := outcome{job: units[i], err: jerr}
		if jerr == nil {
			oc.res = v.(*desim.Result)
		}
		results[i] = oc
	}

	// aggregate per point over seeds; failed replications mark the
	// point instead of failing the whole sweep
	type agg struct {
		lat    []float64
		sat    bool
		seen   int
		errMsg string
	}
	aggs := make(map[[2]int]*agg)
	for i, oc := range results {
		key := [2]int{oc.job.series, oc.job.point}
		a := aggs[key]
		if a == nil {
			a = &agg{}
			aggs[key] = a
		}
		if oc.err != nil {
			if a.errMsg == "" {
				a.errMsg = fmt.Sprintf("seed %d: %v", oc.job.seed, oc.err)
			}
			continue
		}
		a.lat = append(a.lat, oc.res.Latency.Mean())
		a.sat = a.sat || oc.res.Saturated()
		a.seen++
		if col := collectors[i]; col != nil {
			s := col.Summary()
			panels[oc.job.series].Points[oc.job.point].Obs = &s
		}
	}
	for key, a := range aggs {
		p := &panels[key[0]].Points[key[1]]
		var st stats.Stream
		for _, l := range a.lat {
			st.Add(l)
		}
		p.Sim = st.Mean()
		if st.N() == 0 {
			p.Sim = math.NaN()
		}
		p.SimSaturated = a.sat
		p.Failed = a.errMsg != ""
		p.Err = a.errMsg
		if st.N() >= 2 {
			p.SimHW = 1.96 * st.StdDev() / math.Sqrt(float64(st.N()))
		}
	}
	return nil
}

// drainEscalation multiplies DrainCycles on the single retry granted
// to a run the watchdog aborted — the degraded-point second chance
// before the point is marked failed.
const drainEscalation = 4

// runPoint executes one (point, seed) simulation with the harness's
// resilience policy: panics become errors instead of killing the
// sweep, a watchdog abort earns one retry at an escalated drain
// window, and a positive wall budget bounds how long the caller
// waits.
func runPoint(cfg desim.Config, wall time.Duration) (*desim.Result, error) {
	res, err := runRecovered(cfg, wall)
	if err == nil && !res.Aborted {
		return res, nil
	}
	retry := cfg
	retry.DrainCycles = drainEscalation * cfg.DrainCycles
	res2, err2 := runRecovered(retry, wall)
	switch {
	case err2 == nil && !res2.Aborted:
		return res2, nil
	case err != nil:
		return nil, err
	case err2 != nil:
		return nil, fmt.Errorf("aborted at cycle %d (%s); retry at %d× drain: %w",
			res.StallCycle, res.AbortReason, drainEscalation, err2)
	default:
		return nil, fmt.Errorf("aborted at cycle %d (%s); retry at %d× drain aborted too (%s)",
			res.StallCycle, res.AbortReason, drainEscalation, res2.AbortReason)
	}
}

// runRecovered is desim.Run with panics converted to errors and an
// optional wall budget. On timeout the simulation goroutine is left
// to run out its (bounded) drain window in the background and its
// result is discarded.
func runRecovered(cfg desim.Config, wall time.Duration) (*desim.Result, error) {
	run := func() (res *desim.Result, err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("experiments: simulation panicked: %v", r)
			}
		}()
		return desim.Run(cfg)
	}
	if wall <= 0 {
		return run()
	}
	type outcome struct {
		res *desim.Result
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := run()
		done <- outcome{res, err}
	}()
	select {
	case oc := <-done:
		return oc.res, oc.err
	case <-time.After(wall):
		return nil, fmt.Errorf("experiments: simulation exceeded wall budget %v", wall)
	}
}

// fillModel fills the Model fields of a star-graph series.
func fillModel(n int, s *Series, blocking model.BlockingModel) error {
	sp, err := model.NewStarPaths(n)
	if err != nil {
		return err
	}
	g, err := stargraph.New(n)
	if err != nil {
		return err
	}
	for i := range s.Points {
		r, err := model.Evaluate(model.Config{
			Paths: sp, Top: g, Kind: s.Kind, V: s.V,
			MsgLen: s.MsgLen, Rate: s.Points[i].Rate, Blocking: blocking,
		})
		switch {
		case err == nil:
			s.Points[i].Model = r.Latency
		default:
			s.Points[i].Model = math.NaN()
			s.Points[i].ModelSaturated = true
		}
	}
	return nil
}

// ratesUpTo returns count evenly spaced rates from step to max.
func ratesUpTo(max float64, count int) []float64 {
	out := make([]float64, count)
	for i := range out {
		out[i] = max * float64(i+1) / float64(count)
	}
	return out
}

// StarPanel generalises Figure 1 to any star size: model and
// simulation latency curves for S_n with V virtual channels, one
// series per message length, sweeping 0..maxRate (0 chooses 60% of
// the physical capacity ceiling for the longest message).
func StarPanel(n, v int, msgLens []int, maxRate float64, points int, opts SimOptions) (*Panel, error) {
	if points <= 0 {
		points = 10
	}
	if len(msgLens) == 0 {
		msgLens = []int{32}
	}
	g, err := stargraph.New(n)
	if err != nil {
		return nil, err
	}
	if maxRate <= 0 {
		longest := msgLens[0]
		for _, m := range msgLens {
			if m > longest {
				longest = m
			}
		}
		maxRate = 0.6 * float64(g.Degree()) / (g.AvgDistance() * float64(longest))
	}
	p := &Panel{
		Title:  fmt.Sprintf("%d-star, V=%d", n, v),
		XLabel: "traffic generation rate (messages/node/cycle)",
	}
	for _, m := range msgLens {
		s := Series{
			Name: fmt.Sprintf("M=%d", m), V: v, MsgLen: m, Kind: routing.EnhancedNbc,
		}
		for _, r := range ratesUpTo(maxRate, points) {
			s.Points = append(s.Points, Point{Rate: r})
		}
		p.Series = append(p.Series, s)
	}
	refs := make([]*Series, len(p.Series))
	for i := range p.Series {
		refs[i] = &p.Series[i]
	}
	if err := runSweep(g, refs, opts, nil); err != nil {
		return nil, err
	}
	for i := range p.Series {
		if err := fillModel(n, &p.Series[i], model.Window); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// ValidationGrid covers the paper's §5 claim of "numerous validation
// experiments ... several combinations of network sizes, message
// lengths and numbers of virtual channels": a grid over S4/S5/S6,
// M ∈ {16, 32, 64}, V ∈ {5, 6, 9}, each evaluated at a moderate and
// a heavy operating point.
func ValidationGrid(opts SimOptions) ([]GridRow, error) {
	var rows []GridRow
	for _, n := range []int{4, 5, 6} {
		g, err := stargraph.New(n)
		if err != nil {
			return nil, err
		}
		sp, err := model.NewStarPaths(n)
		if err != nil {
			return nil, err
		}
		// scale operating points to each network's capacity
		cap5 := float64(g.Degree()) / (g.AvgDistance() * 32)
		for _, m := range []int{16, 32, 64} {
			for _, v := range []int{5, 6, 9} {
				if _, err := routing.New(routing.EnhancedNbc, g, v); err != nil {
					continue // V below this network's minimum
				}
				for _, frac := range []float64{0.15, 0.3} {
					rate := cap5 * frac * 32 / float64(m)
					row := GridRow{N: n, V: v, MsgLen: m, Rate: rate}
					r, err := model.Evaluate(model.Config{
						Paths: sp, Top: g, Kind: routing.EnhancedNbc,
						V: v, MsgLen: m, Rate: rate,
					})
					if err == nil {
						row.Model = r.Latency
					} else {
						row.Model = math.NaN()
					}
					sr := Series{Kind: routing.EnhancedNbc, V: v, MsgLen: m,
						Points: []Point{{Rate: rate}}}
					if err := runSweep(g, []*Series{&sr}, opts, nil); err != nil {
						return nil, err
					}
					row.Sim = sr.Points[0].Sim
					row.SimSaturated = sr.Points[0].SimSaturated
					if !math.IsNaN(row.Model) && row.Sim > 0 {
						row.ErrPct = 100 * (row.Model - row.Sim) / row.Sim
					} else {
						row.ErrPct = math.NaN()
					}
					rows = append(rows, row)
				}
			}
		}
	}
	return rows, nil
}

// GridRow is one validation-grid measurement.
type GridRow struct {
	N, V, MsgLen int
	Rate         float64
	Model, Sim   float64
	ErrPct       float64
	SimSaturated bool
}
