// Package cache is the two-tier content-addressed result store of the
// serving layer: an in-memory LRU with byte-size accounting in front
// of an optional on-disk JSON store, both keyed by the job content
// hash (internal/jobs.Hash).
//
// Content addressing is what turns caching into a correctness-neutral
// optimisation here: a key is a pure function of the canonicalised
// request (plus schema version), and every value is the marshalled
// result of the deterministic engine, so a hit can only ever return
// the exact bytes a recompute would produce — a guarantee the tests
// pin rather than assume. Hit/miss/evict counters are reported
// through obs.CacheStats and surface on the server's /metricsz.
//
// The disk tier is best effort: read/write failures are counted
// (DiskErrors) and degrade the cache to memory-only behaviour instead
// of failing lookups. It is also verified and durable: every entry is
// framed with the sha256 of its payload and checked on read — a
// corrupt file (flipped bit, truncation, pre-v2 format) is quarantined
// into corrupt/ and recomputed, never served — and writes fsync both
// the file and its parent directory around the atomic rename, so a
// persisted entry survives power loss. All disk I/O flows through the
// internal/fsx seam, which is how the chaos suite injects faults.
package cache

import (
	"container/list"
	"fmt"
	"sync"

	"starperf/internal/cfgerr"
	"starperf/internal/fsx"
	"starperf/internal/obs"
)

// Config sizes a Cache. The zero value is a memory-only cache with
// the default byte bound.
type Config struct {
	// MaxBytes bounds the memory tier's total value bytes
	// (default 64 MiB). An entry larger than the bound is stored on
	// disk (when configured) but not pinned in memory.
	MaxBytes int64
	// Dir, when non-empty, enables the disk tier: one
	// <hash>.json file per entry under this directory, created if
	// missing. Disk survives process restarts; memory does not.
	Dir string
	// FS is the filesystem seam under the disk tier (default
	// fsx.OS{}; chaos tests inject fsx.Faulty).
	FS fsx.FS
}

// entry is one memory-tier element.
type entry struct {
	key string
	val []byte
}

// Cache is a two-tier content-addressed byte store, safe for
// concurrent use.
type Cache struct {
	mu    sync.Mutex
	max   int64
	dir   string
	fs    fsx.FS
	ll    *list.List // front = most recently used
	index map[string]*list.Element
	bytes int64

	memHits     uint64
	diskHits    uint64
	misses      uint64
	puts        uint64
	evictions   uint64
	diskWrites  uint64
	diskErrors  uint64
	quarantined uint64
}

// New returns a cache for cfg, creating cfg.Dir when set.
func New(cfg Config) (*Cache, error) {
	if cfg.MaxBytes < 0 {
		return nil, cfgerr.Errorf("cache: MaxBytes %d must be non-negative", cfg.MaxBytes)
	}
	if cfg.MaxBytes == 0 {
		cfg.MaxBytes = 64 << 20
	}
	if cfg.FS == nil {
		cfg.FS = fsx.OS{}
	}
	if cfg.Dir != "" {
		if err := cfg.FS.MkdirAll(cfg.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("cache: creating %s: %w", cfg.Dir, err)
		}
	}
	return &Cache{
		max:   cfg.MaxBytes,
		dir:   cfg.Dir,
		fs:    cfg.FS,
		ll:    list.New(),
		index: make(map[string]*list.Element),
	}, nil
}

// Get returns a copy of the value stored under key. A memory miss
// falls through to the disk tier; a disk hit is promoted into memory.
func (c *Cache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	if el, ok := c.index[key]; ok {
		c.ll.MoveToFront(el)
		c.memHits++
		out := append([]byte(nil), el.Value.(*entry).val...)
		c.mu.Unlock()
		return out, true
	}
	c.mu.Unlock()
	if c.dir == "" {
		c.count(&c.misses)
		return nil, false
	}
	val, ok := c.readFile(key)
	if !ok {
		c.count(&c.misses)
		return nil, false
	}
	c.mu.Lock()
	c.diskHits++
	c.insertLocked(key, val)
	c.mu.Unlock()
	return append([]byte(nil), val...), true
}

// Contains reports whether key is resident in either tier without
// touching recency or the hit/miss counters.
func (c *Cache) Contains(key string) bool {
	c.mu.Lock()
	_, ok := c.index[key]
	c.mu.Unlock()
	if ok || c.dir == "" {
		return ok
	}
	return c.statFile(key)
}

// Put stores a copy of val under key in both tiers. Storing is
// idempotent — content addressing means a re-put of the same key
// carries the same bytes.
func (c *Cache) Put(key string, val []byte) {
	cp := append([]byte(nil), val...)
	c.mu.Lock()
	c.puts++
	c.insertLocked(key, cp)
	c.mu.Unlock()
	if c.dir == "" {
		return
	}
	if err := c.writeFile(key, cp); err != nil {
		c.count(&c.diskErrors)
		return
	}
	c.count(&c.diskWrites)
}

// Stats snapshots the cache counters.
func (c *Cache) Stats() obs.CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return obs.CacheStats{
		Entries:     c.ll.Len(),
		Bytes:       c.bytes,
		MaxBytes:    c.max,
		MemHits:     c.memHits,
		DiskHits:    c.diskHits,
		Misses:      c.misses,
		Puts:        c.puts,
		Evictions:   c.evictions,
		DiskWrites:  c.diskWrites,
		DiskErrors:  c.diskErrors,
		Quarantined: c.quarantined,
	}
}

// insertLocked stores val under key in the memory tier and evicts
// from the LRU tail until the byte bound holds. A value larger than
// the whole bound evicts itself immediately: it is served from disk
// (when configured) rather than monopolising memory.
func (c *Cache) insertLocked(key string, val []byte) {
	if el, ok := c.index[key]; ok {
		e := el.Value.(*entry)
		c.bytes += int64(len(val)) - int64(len(e.val))
		e.val = val
		c.ll.MoveToFront(el)
	} else {
		c.index[key] = c.ll.PushFront(&entry{key: key, val: val})
		c.bytes += int64(len(val))
	}
	for c.bytes > c.max {
		back := c.ll.Back()
		if back == nil {
			break
		}
		e := back.Value.(*entry)
		c.ll.Remove(back)
		delete(c.index, e.key)
		c.bytes -= int64(len(e.val))
		c.evictions++
	}
}

// count bumps one counter under the lock.
func (c *Cache) count(field *uint64) {
	c.mu.Lock()
	*field++
	c.mu.Unlock()
}
