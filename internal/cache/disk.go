package cache

import (
	"crypto/sha256"
	"encoding/hex"
	"os"
	"path/filepath"
	"strings"
)

// fileFor maps a cache key to its disk path. Well-formed content
// hashes ("sha256:<hex>") use their hex digits directly as the file
// name; anything else is itself hashed first, so no key — however
// hostile — can escape the cache directory or collide with another
// key's file.
func (c *Cache) fileFor(key string) string {
	name, ok := strings.CutPrefix(key, "sha256:")
	if !ok || !isHex(name) || len(name) < 16 {
		sum := sha256.Sum256([]byte(key))
		name = hex.EncodeToString(sum[:])
	}
	return filepath.Join(c.dir, name+".json")
}

func isHex(s string) bool {
	for _, r := range s {
		switch {
		case r >= '0' && r <= '9', r >= 'a' && r <= 'f':
		default:
			return false
		}
	}
	return len(s) > 0
}

// writeFile persists one entry atomically: write to a unique temp
// file in the same directory, then rename over the final path.
// Concurrent writers of the same key race only on the rename, and
// content addressing makes every contender's bytes identical, so the
// winner is irrelevant.
func (c *Cache) writeFile(key string, val []byte) error {
	path := c.fileFor(key)
	tmp, err := os.CreateTemp(c.dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(val); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}
