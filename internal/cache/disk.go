package cache

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"os"
	"path/filepath"
	"strings"
)

// The disk-tier entry format. A cache key is the hash of the
// *request*, so the stored *value* carries its own sha256 in a header
// line, verified on every read:
//
//	starperf-cache v2 <sha256-hex-of-payload>\n<payload>
//
// A file that fails the check — flipped bit, truncated payload,
// pre-v2 format — is quarantined into corrupt/ beside the cache (for
// forensics; deleting it would destroy the evidence) and reported as
// a miss, so the serving layer recomputes instead of replaying
// garbage as a "cached" result.

// diskHeaderPrefix starts every valid v2 entry.
const diskHeaderPrefix = "starperf-cache v2 "

// corruptDirName is the quarantine subdirectory.
const corruptDirName = "corrupt"

// fileFor maps a cache key to its disk path. Well-formed content
// hashes ("sha256:<hex>") use their hex digits directly as the file
// name; anything else is itself hashed first, so no key — however
// hostile — can escape the cache directory or collide with another
// key's file.
func (c *Cache) fileFor(key string) string {
	name, ok := strings.CutPrefix(key, "sha256:")
	if !ok || !isHex(name) || len(name) < 16 {
		sum := sha256.Sum256([]byte(key))
		name = hex.EncodeToString(sum[:])
	}
	return filepath.Join(c.dir, name+".json")
}

func isHex(s string) bool {
	for _, r := range s {
		switch {
		case r >= '0' && r <= '9', r >= 'a' && r <= 'f':
		default:
			return false
		}
	}
	return len(s) > 0
}

// encodeEntry frames val with its verification header.
func encodeEntry(val []byte) []byte {
	sum := sha256.Sum256(val)
	out := make([]byte, 0, len(diskHeaderPrefix)+sha256.Size*2+1+len(val))
	out = append(out, diskHeaderPrefix...)
	out = append(out, hex.EncodeToString(sum[:])...)
	out = append(out, '\n')
	out = append(out, val...)
	return out
}

// decodeEntry parses and verifies one framed entry, returning the
// payload or ok=false when the frame or checksum is wrong.
func decodeEntry(data []byte) ([]byte, bool) {
	rest, found := bytes.CutPrefix(data, []byte(diskHeaderPrefix))
	if !found {
		return nil, false
	}
	nl := bytes.IndexByte(rest, '\n')
	if nl != sha256.Size*2 {
		return nil, false
	}
	want, payload := rest[:nl], rest[nl+1:]
	sum := sha256.Sum256(payload)
	if !bytes.Equal(want, []byte(hex.EncodeToString(sum[:]))) {
		return nil, false
	}
	return payload, true
}

// readFile loads and verifies one entry from disk. A missing file is
// a plain miss; a verification failure quarantines the file; a read
// error counts against the disk tier. In every non-ok case the
// caller recomputes.
func (c *Cache) readFile(key string) ([]byte, bool) {
	path := c.fileFor(key)
	data, err := c.fs.ReadFile(path)
	if err != nil {
		if !os.IsNotExist(err) {
			c.count(&c.diskErrors)
		}
		return nil, false
	}
	payload, ok := decodeEntry(data)
	if !ok {
		c.quarantine(path)
		return nil, false
	}
	return payload, true
}

// quarantine moves a corrupt entry into corrupt/ so it is never
// served again but stays available for inspection; the next Put of
// the key simply writes a fresh file.
func (c *Cache) quarantine(path string) {
	qdir := filepath.Join(c.dir, corruptDirName)
	if err := c.fs.MkdirAll(qdir, 0o755); err != nil {
		c.count(&c.diskErrors)
		return
	}
	if err := c.fs.Rename(path, filepath.Join(qdir, filepath.Base(path))); err != nil {
		c.count(&c.diskErrors)
		return
	}
	// Best-effort directory sync: the quarantine itself matters more
	// than its durability.
	_ = c.fs.SyncDir(c.dir)
	c.count(&c.quarantined)
}

// writeFile persists one entry atomically AND durably: write the
// framed value to a unique temp file, fsync it, rename over the final
// path, then fsync the parent directory — without those two fsyncs a
// "persisted" entry can vanish on power loss. Concurrent writers of
// the same key race only on the rename, and content addressing makes
// every contender's bytes identical, so the winner is irrelevant.
func (c *Cache) writeFile(key string, val []byte) error {
	path := c.fileFor(key)
	tmp, err := c.fs.CreateTemp(c.dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	cleanup := func(err error) error {
		tmp.Close()
		_ = c.fs.Remove(tmp.Name())
		return err
	}
	if _, err := tmp.Write(encodeEntry(val)); err != nil {
		return cleanup(err)
	}
	if err := tmp.Sync(); err != nil {
		return cleanup(err)
	}
	if err := tmp.Close(); err != nil {
		_ = c.fs.Remove(tmp.Name())
		return err
	}
	if err := c.fs.Rename(tmp.Name(), path); err != nil {
		_ = c.fs.Remove(tmp.Name())
		return err
	}
	if err := c.fs.SyncDir(c.dir); err != nil {
		return err
	}
	return nil
}

// statFile reports whether a (well-formed, unverified) entry exists
// on disk; Contains uses it to stay cheap.
func (c *Cache) statFile(key string) bool {
	_, err := c.fs.Stat(c.fileFor(key))
	return err == nil
}
