package cache

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"starperf/internal/jobs"
	"starperf/internal/model"
	"starperf/internal/routing"
	"starperf/internal/stargraph"
)

func mustNew(t *testing.T, cfg Config) *Cache {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestMemoryHitMissCounters: the basic get/put cycle drives the
// counters the /metricsz endpoint reports.
func TestMemoryHitMissCounters(t *testing.T) {
	c := mustNew(t, Config{MaxBytes: 1 << 20})
	if _, ok := c.Get("sha256:absent"); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put("sha256:k1", []byte("v1"))
	got, ok := c.Get("sha256:k1")
	if !ok || string(got) != "v1" {
		t.Fatalf("get after put: %q, %v", got, ok)
	}
	st := c.Stats()
	if st.MemHits != 1 || st.Misses != 1 || st.Puts != 1 || st.Entries != 1 || st.Bytes != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if st.HitRate() != 0.5 {
		t.Fatalf("hit rate = %v, want 0.5", st.HitRate())
	}
}

// TestGetReturnsCopy: mutating a returned value must not corrupt the
// stored bytes (the byte-identical guarantee depends on it).
func TestGetReturnsCopy(t *testing.T) {
	c := mustNew(t, Config{})
	c.Put("sha256:k", []byte("payload"))
	v1, _ := c.Get("sha256:k")
	v1[0] = 'X'
	v2, _ := c.Get("sha256:k")
	if string(v2) != "payload" {
		t.Fatalf("stored value corrupted: %q", v2)
	}
}

// TestLRUEvictionByBytes: inserts past MaxBytes evict least recently
// used entries first, with byte accounting and eviction counters.
func TestLRUEvictionByBytes(t *testing.T) {
	c := mustNew(t, Config{MaxBytes: 30})
	for i := 0; i < 3; i++ {
		c.Put(fmt.Sprintf("sha256:k%d", i), bytes.Repeat([]byte{'a'}, 10))
	}
	// Touch k0 so k1 is the LRU victim of the next insert.
	if _, ok := c.Get("sha256:k0"); !ok {
		t.Fatal("k0 missing before eviction")
	}
	c.Put("sha256:k3", bytes.Repeat([]byte{'b'}, 10))
	if _, ok := c.Get("sha256:k1"); ok {
		t.Fatal("LRU entry k1 survived eviction")
	}
	for _, k := range []string{"sha256:k0", "sha256:k2", "sha256:k3"} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("%s evicted unexpectedly", k)
		}
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Bytes != 30 || st.Entries != 3 {
		t.Fatalf("stats = %+v, want 1 eviction, 30 bytes, 3 entries", st)
	}
}

// TestOversizedValueNotPinned: a value larger than the whole bound
// does not wipe the cache and stay resident.
func TestOversizedValueNotPinned(t *testing.T) {
	c := mustNew(t, Config{MaxBytes: 16})
	c.Put("sha256:small", []byte("ok"))
	c.Put("sha256:huge", bytes.Repeat([]byte{'h'}, 64))
	if _, ok := c.Get("sha256:huge"); ok {
		t.Fatal("oversized value pinned in memory")
	}
	if c.Stats().Bytes > 16 {
		t.Fatalf("byte bound violated: %+v", c.Stats())
	}
}

// TestDiskTierRoundTrip: a fresh Cache over the same directory serves
// entries written by its predecessor, promoting them into memory.
func TestDiskTierRoundTrip(t *testing.T) {
	dir := t.TempDir()
	c1 := mustNew(t, Config{Dir: dir})
	c1.Put("sha256:0123456789abcdef0123456789abcdef", []byte(`{"latency":42}`))
	if st := c1.Stats(); st.DiskWrites != 1 {
		t.Fatalf("disk writes = %d, want 1", st.DiskWrites)
	}
	c2 := mustNew(t, Config{Dir: dir})
	got, ok := c2.Get("sha256:0123456789abcdef0123456789abcdef")
	if !ok || string(got) != `{"latency":42}` {
		t.Fatalf("disk round trip: %q, %v", got, ok)
	}
	st := c2.Stats()
	if st.DiskHits != 1 || st.MemHits != 0 {
		t.Fatalf("stats = %+v, want 1 disk hit", st)
	}
	// Promoted: the second read is a memory hit.
	if _, ok := c2.Get("sha256:0123456789abcdef0123456789abcdef"); !ok {
		t.Fatal("promoted entry missing")
	}
	if st := c2.Stats(); st.MemHits != 1 {
		t.Fatalf("stats after promotion = %+v, want 1 mem hit", st)
	}
}

// TestDiskFileNames: well-formed hashes use their hex digits as file
// names; arbitrary keys are re-hashed into a safe name inside the
// directory.
func TestDiskFileNames(t *testing.T) {
	dir := t.TempDir()
	c := mustNew(t, Config{Dir: dir})
	c.Put("sha256:00112233445566778899aabbccddeeff", []byte("x"))
	if _, err := os.Stat(filepath.Join(dir, "00112233445566778899aabbccddeeff.json")); err != nil {
		t.Fatalf("expected hex-named file: %v", err)
	}
	c.Put("../escape", []byte("y"))
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Name() == "escape.json" {
			t.Fatal("hostile key escaped sanitisation")
		}
	}
	if got, ok := c.Get("../escape"); !ok || string(got) != "y" {
		t.Fatalf("sanitised key not retrievable: %q %v", got, ok)
	}
}

// TestContains: existence checks touch neither recency nor counters.
func TestContains(t *testing.T) {
	dir := t.TempDir()
	c := mustNew(t, Config{Dir: dir})
	c.Put("sha256:aabbccddeeff00112233445566778899", []byte("v"))
	if !c.Contains("sha256:aabbccddeeff00112233445566778899") {
		t.Fatal("Contains missed a resident key")
	}
	if c.Contains("sha256:ffffffffffffffffffffffffffffffff") {
		t.Fatal("Contains invented a key")
	}
	st := c.Stats()
	if st.MemHits != 0 && st.Misses != 0 {
		t.Fatalf("Contains moved counters: %+v", st)
	}
}

// TestConcurrentAccess exercises the lock paths under the race
// detector.
func TestConcurrentAccess(t *testing.T) {
	c := mustNew(t, Config{MaxBytes: 1 << 10, Dir: t.TempDir()})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				key := fmt.Sprintf("sha256:%032x", i%7)
				c.Put(key, bytes.Repeat([]byte{byte(w)}, 16))
				c.Get(key)
			}
		}(w)
	}
	wg.Wait()
}

// TestCacheHitByteIdenticalToRecompute is the determinism guarantee
// of the serving layer: the bytes a cache hit returns are exactly the
// bytes a recompute produces — model evaluation is deterministic, the
// canonical encoding is deterministic, and the cache preserves bytes.
func TestCacheHitByteIdenticalToRecompute(t *testing.T) {
	compute := func() []byte {
		g, err := stargraph.New(4)
		if err != nil {
			t.Fatal(err)
		}
		sp, err := model.NewStarPaths(4)
		if err != nil {
			t.Fatal(err)
		}
		res, err := model.Evaluate(model.Config{
			Paths: sp, Top: g, Kind: routing.EnhancedNbc,
			V: 4, MsgLen: 16, Rate: 0.004,
		})
		if err != nil {
			t.Fatal(err)
		}
		b, err := jobs.CanonicalJSON(res)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	key, err := jobs.Hash("predict", map[string]any{"n": 4, "v": 4, "m": 16, "rate": 0.004})
	if err != nil {
		t.Fatal(err)
	}
	c := mustNew(t, Config{Dir: t.TempDir()})
	first := compute()
	c.Put(key, first)
	hit, ok := c.Get(key)
	if !ok {
		t.Fatal("no hit after put")
	}
	recompute := compute()
	if !bytes.Equal(hit, recompute) {
		t.Fatalf("cache hit differs from recompute:\n hit  %s\n comp %s", hit, recompute)
	}
	// And through the disk tier of a fresh cache over the same
	// directory (a process restart, as far as the store can tell).
	dir := t.TempDir()
	cw := mustNew(t, Config{Dir: dir})
	cw.Put(key, first)
	cr := mustNew(t, Config{Dir: dir})
	fromDisk, ok := cr.Get(key)
	if !ok {
		t.Fatal("disk tier lost the entry")
	}
	if !bytes.Equal(fromDisk, recompute) {
		t.Fatalf("disk hit differs from recompute:\n hit  %s\n comp %s", fromDisk, recompute)
	}
}
