package cache

// Chaos tests for the verified disk tier. The invariant under every
// fault is the same one the serving layer depends on: a Get either
// misses (and the caller recomputes) or returns bytes identical to
// what was Put — a corrupt or torn file is never served as a hit.

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"starperf/internal/fsx"
)

// corruptKey/corruptVal give each test case distinct, well-formed
// content-addressed entries.
func chaosKey(i int) string { return fmt.Sprintf("sha256:%064x", i) }

func chaosVal(i int) []byte {
	return []byte(fmt.Sprintf(`{"entry":%d,"payload":"%048x"}`, i, i*i+3))
}

// diskPath is the on-disk file the cache uses for chaosKey(i).
func diskPath(dir string, i int) string {
	return filepath.Join(dir, fmt.Sprintf("%064x.json", i))
}

// corruptOnDisk applies mutate to the stored file for chaosKey(i).
func corruptOnDisk(t *testing.T, dir string, i int, mutate func([]byte) []byte) {
	t.Helper()
	path := diskPath(dir, i)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, mutate(data), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestCorruptEntryQuarantinedAndRecomputed is the acceptance
// criterion: a flipped bit in a disk entry turns the read into a miss,
// moves the file into corrupt/ (preserved, not deleted), and the next
// Put+Get serves fresh, correct bytes.
func TestCorruptEntryQuarantinedAndRecomputed(t *testing.T) {
	dir := t.TempDir()
	c1 := mustNew(t, Config{Dir: dir})
	c1.Put(chaosKey(1), chaosVal(1))

	// Flip one payload bit behind the cache's back.
	var wrecked []byte
	corruptOnDisk(t, dir, 1, func(b []byte) []byte {
		b[len(b)-3] ^= 0x20
		wrecked = append([]byte(nil), b...)
		return b
	})

	// A fresh instance (cold memory tier) must detect, not serve.
	c2 := mustNew(t, Config{Dir: dir})
	if v, ok := c2.Get(chaosKey(1)); ok {
		t.Fatalf("corrupt entry served as a hit: %q", v)
	}
	if st := c2.Stats(); st.Quarantined != 1 || st.Misses != 1 {
		t.Fatalf("stats after corrupt read = %+v", st)
	}
	if _, err := os.Stat(diskPath(dir, 1)); !os.IsNotExist(err) {
		t.Fatalf("corrupt file still at its cache path: %v", err)
	}
	qpath := filepath.Join(dir, corruptDirName, filepath.Base(diskPath(dir, 1)))
	got, err := os.ReadFile(qpath)
	if err != nil {
		t.Fatalf("quarantined file missing: %v", err)
	}
	if !bytes.Equal(got, wrecked) {
		t.Fatal("quarantine altered the evidence")
	}

	// Recompute path: a re-put overwrites cleanly and serves again.
	c2.Put(chaosKey(1), chaosVal(1))
	c3 := mustNew(t, Config{Dir: dir})
	v, ok := c3.Get(chaosKey(1))
	if !ok || !bytes.Equal(v, chaosVal(1)) {
		t.Fatalf("recomputed entry not served: %q, %v", v, ok)
	}
}

// TestTruncatedEntryQuarantined: a torn write (partial payload) fails
// verification the same way a flipped bit does.
func TestTruncatedEntryQuarantined(t *testing.T) {
	dir := t.TempDir()
	c1 := mustNew(t, Config{Dir: dir})
	c1.Put(chaosKey(2), chaosVal(2))
	corruptOnDisk(t, dir, 2, func(b []byte) []byte { return b[:len(b)-5] })

	c2 := mustNew(t, Config{Dir: dir})
	if _, ok := c2.Get(chaosKey(2)); ok {
		t.Fatal("truncated entry served as a hit")
	}
	if st := c2.Stats(); st.Quarantined != 1 {
		t.Fatalf("stats = %+v, want 1 quarantined", st)
	}
}

// TestPreV2FileQuarantined: a bare-payload file from the headerless v1
// format fails the frame check and is quarantined — the migration
// cost is one recompute per stale entry, never a wrong answer.
func TestPreV2FileQuarantined(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(diskPath(dir, 3), chaosVal(3), 0o644); err != nil {
		t.Fatal(err)
	}
	c := mustNew(t, Config{Dir: dir})
	if _, ok := c.Get(chaosKey(3)); ok {
		t.Fatal("headerless v1 file served as a hit")
	}
	if st := c.Stats(); st.Quarantined != 1 {
		t.Fatalf("stats = %+v, want 1 quarantined", st)
	}
}

// TestQuarantineIsNotReread: once quarantined, the key keeps missing
// (no resurrection from corrupt/) until a fresh Put.
func TestQuarantineIsNotReread(t *testing.T) {
	dir := t.TempDir()
	c1 := mustNew(t, Config{Dir: dir})
	c1.Put(chaosKey(4), chaosVal(4))
	corruptOnDisk(t, dir, 4, func(b []byte) []byte { b[0] ^= 0xff; return b })

	c2 := mustNew(t, Config{Dir: dir})
	for i := 0; i < 3; i++ {
		if _, ok := c2.Get(chaosKey(4)); ok {
			t.Fatalf("get %d hit after quarantine", i)
		}
	}
	if st := c2.Stats(); st.Quarantined != 1 || st.Misses != 3 {
		t.Fatalf("stats = %+v, want 1 quarantined / 3 misses", st)
	}
}

// TestFaultyFSNeverServesWrongBytes: a seeded fault storm over the
// fsx seam — failing writes, fsyncs, renames, creates, and short
// writes — may cost hits (the tier degrades to memory-only) but every
// hit that does land must be byte-identical to the Put. Two cold
// restarts per seed check the on-disk survivors too.
func TestFaultyFSNeverServesWrongBytes(t *testing.T) {
	for seed := uint64(1); seed <= 10; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			dir := t.TempDir()
			plan := fsx.FaultPlan{
				Seed: seed, PWrite: 0.2, PSync: 0.15,
				PRename: 0.2, PCreate: 0.1, ShortWrites: true,
			}
			fs := fsx.NewFaulty(fsx.OS{}, plan)
			c1, err := New(Config{Dir: dir, FS: fs})
			if err != nil {
				t.Skipf("MkdirAll faulted at boot: %v", err)
			}
			const n = 30
			for i := 0; i < n; i++ {
				c1.Put(chaosKey(i), chaosVal(i))
			}
			for i := 0; i < n; i++ {
				if v, ok := c1.Get(chaosKey(i)); ok && !bytes.Equal(v, chaosVal(i)) {
					t.Fatalf("warm get %d returned wrong bytes: %q", i, v)
				}
			}

			// Restart 1: still faulty reads over whatever landed on disk.
			c2, err := New(Config{Dir: dir, FS: fsx.NewFaulty(fsx.OS{}, plan)})
			if err == nil {
				for i := 0; i < n; i++ {
					if v, ok := c2.Get(chaosKey(i)); ok && !bytes.Equal(v, chaosVal(i)) {
						t.Fatalf("faulty-restart get %d returned wrong bytes: %q", i, v)
					}
				}
			}

			// Restart 2: clean FS. Anything readable must verify; any
			// torn temp or corrupt file must miss, not lie.
			c3 := mustNew(t, Config{Dir: dir})
			for i := 0; i < n; i++ {
				if v, ok := c3.Get(chaosKey(i)); ok && !bytes.Equal(v, chaosVal(i)) {
					t.Fatalf("clean-restart get %d returned wrong bytes: %q", i, v)
				}
			}
		})
	}
}

// TestFaultyFSDeterministic: the same seed produces the same disk-tier
// outcome — the property that makes chaos failures replayable.
func TestFaultyFSDeterministic(t *testing.T) {
	run := func() (uint64, uint64) {
		dir := t.TempDir()
		fs := fsx.NewFaulty(fsx.OS{}, fsx.FaultPlan{
			Seed: 7, PWrite: 0.25, PSync: 0.2, PRename: 0.15, ShortWrites: true,
		})
		c, err := New(Config{Dir: dir, FS: fs})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 20; i++ {
			c.Put(chaosKey(i), chaosVal(i))
		}
		st := c.Stats()
		return st.DiskWrites, st.DiskErrors
	}
	w1, e1 := run()
	w2, e2 := run()
	if w1 != w2 || e1 != e2 {
		t.Fatalf("same seed diverged: (%d,%d) vs (%d,%d)", w1, e1, w2, e2)
	}
}
