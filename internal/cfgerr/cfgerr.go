// Package cfgerr defines the shared validation-error contract of the
// starperf facade. Every package that validates caller-supplied
// configuration — simulator configs, model configs, routing budgets,
// topology constructor arguments, fault-plan options — builds its
// rejection through this package, so downstream code can classify any
// facade error with a single check:
//
//	if errors.Is(err, starperf.ErrInvalidConfig) { ... caller bug ... }
//
// instead of string-matching per-package prefixes. The error text is
// carried verbatim (each package keeps its conventional "pkg: ..."
// message), only the errors.Is identity is unified.
//
// The facade's full error contract (documented in api.go) has three
// classes: ErrInvalid here for rejected configurations,
// model.ErrSaturated for operating points beyond the model's
// saturation fixed point, and routing.UnreachableError for traffic
// addressed to nodes a fault plan has stranded.
package cfgerr

import (
	"errors"
	"fmt"
)

// ErrInvalid is the sentinel matched (via errors.Is) by every
// configuration-validation failure across the facade.
var ErrInvalid = errors.New("invalid configuration")

// invalidError carries a package-specific message while matching
// ErrInvalid under errors.Is. It deliberately does not embed the
// sentinel's text: the message a user sees is exactly what the
// validating package wrote.
type invalidError struct{ msg string }

func (e *invalidError) Error() string { return e.msg }

// Is reports the ErrInvalid identity for errors.Is.
func (e *invalidError) Is(target error) bool { return target == ErrInvalid }

// New returns a validation error with the given message that matches
// ErrInvalid.
func New(msg string) error { return &invalidError{msg: msg} }

// Errorf returns a formatted validation error that matches ErrInvalid.
// Unlike fmt.Errorf it does not interpret %w; validation errors are
// leaves.
func Errorf(format string, args ...any) error {
	return &invalidError{msg: fmt.Sprintf(format, args...)}
}
