package fsx

import (
	"errors"
	"fmt"
	"io/fs"
	"math/rand"
	"os"
	"sync"
	"syscall"
)

// ErrInjected is the error returned by operations the fault plan
// chose to fail. Callers must treat it exactly like a real EIO.
var ErrInjected = errors.New("fsx: injected fault")

// ErrNoSpace is the injected disk-full error. It wraps syscall.ENOSPC
// so errors.Is(err, syscall.ENOSPC) matches injected and real
// disk-full failures alike — the journal's read-only trip wire keys
// on exactly that.
var ErrNoSpace = fmt.Errorf("fsx: injected disk full: %w", syscall.ENOSPC)

// ErrCrashed is returned by every operation after the plan's crash
// point: the simulated process is dead, and nothing it does from then
// on reaches the disk.
var ErrCrashed = errors.New("fsx: crashed")

// FaultPlan configures a Faulty filesystem. All decisions are drawn
// from a PRNG seeded with Seed, so the same plan over the same
// operation sequence injects the same faults — chaos runs are
// replayable.
type FaultPlan struct {
	// Seed fully determines which operations fail.
	Seed uint64
	// PWrite, PSync, PRename and PCreate are per-operation failure
	// probabilities in [0, 1] for writes, fsyncs (file and directory),
	// renames, and file creation/open respectively.
	PWrite, PSync, PRename, PCreate float64
	// PNoSpace is the per-operation probability of ErrNoSpace on the
	// allocating operations (MkdirAll, Create, CreateTemp, OpenAppend,
	// Write) — a disk that is intermittently full.
	PNoSpace float64
	// FullAt, when positive, makes the disk full from the FullAt-th
	// mutating operation on: every later allocating operation fails
	// with ErrNoSpace until SetFull(false) frees space. Combined with
	// SetFull, a drill can fill the disk mid-run and recover it.
	FullAt int
	// ShortWrites makes a failed Write deliver a strict prefix of its
	// buffer before erroring, the torn-write shape a real crash
	// produces. It applies to ErrNoSpace writes too: a disk that fills
	// mid-write tears the buffer exactly like a crash does.
	ShortWrites bool
	// CrashAt, when positive, kills the filesystem at the CrashAt-th
	// mutating operation: that operation and every later one (reads
	// included) fail with ErrCrashed. Combined with a loop over
	// CrashAt values, a test can probe every failure point of a
	// protocol.
	CrashAt int
}

// Faulty wraps an FS with deterministic fault injection. It is safe
// for concurrent use.
type Faulty struct {
	inner FS
	plan  FaultPlan

	mu       sync.Mutex
	rng      *rand.Rand
	ops      int
	injected int
	noSpace  int
	full     bool
	crashed  bool
}

// NewFaulty wraps inner with the given plan.
func NewFaulty(inner FS, plan FaultPlan) *Faulty {
	return &Faulty{
		inner: inner,
		plan:  plan,
		rng:   rand.New(rand.NewSource(int64(plan.Seed))),
	}
}

// Ops returns how many mutating operations the filesystem has seen —
// the range a crash-at-every-op loop iterates over.
func (f *Faulty) Ops() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ops
}

// Injected returns how many operations failed with ErrInjected.
func (f *Faulty) Injected() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.injected
}

// NoSpaceErrs returns how many operations failed with ErrNoSpace.
func (f *Faulty) NoSpaceErrs() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.noSpace
}

// SetFull fills (true) or frees (false) the disk at runtime,
// overriding whatever state FullAt reached: the drill lever for
// "the disk filled up, operators deleted some files".
func (f *Faulty) SetFull(full bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.full = full
	if !full {
		// Freeing space also disarms a FullAt already passed; the
		// window fired once, recovery means recovered.
		f.plan.FullAt = 0
	}
}

// Full reports whether the disk is currently full.
func (f *Faulty) Full() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.full
}

// Crashed reports whether the crash point has been reached.
func (f *Faulty) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// step records one mutating operation and decides its fate: nil,
// ErrCrashed once the crash point is passed, ErrNoSpace when the
// disk is full and the operation allocates, or ErrInjected with
// probability p. alloc marks the operations a full disk refuses.
func (f *Faulty) step(p float64, alloc bool) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return ErrCrashed
	}
	f.ops++
	if f.plan.CrashAt > 0 && f.ops >= f.plan.CrashAt {
		f.crashed = true
		return ErrCrashed
	}
	if f.plan.FullAt > 0 && f.ops >= f.plan.FullAt {
		f.full = true
	}
	if alloc && f.full {
		f.noSpace++
		return ErrNoSpace
	}
	// The PNoSpace draw only happens when configured, so plans
	// written before the disk-full op keep their exact fault
	// sequences.
	if alloc && f.plan.PNoSpace > 0 && f.rng.Float64() < f.plan.PNoSpace {
		f.noSpace++
		return ErrNoSpace
	}
	if p > 0 && f.rng.Float64() < p {
		f.injected++
		return ErrInjected
	}
	return nil
}

// dead reports the post-crash state for read operations, which do not
// advance the op counter.
func (f *Faulty) dead() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// MkdirAll implements FS.
func (f *Faulty) MkdirAll(dir string, perm os.FileMode) error {
	if err := f.step(f.plan.PCreate, true); err != nil {
		return err
	}
	return f.inner.MkdirAll(dir, perm)
}

// Create implements FS.
func (f *Faulty) Create(name string) (File, error) {
	if err := f.step(f.plan.PCreate, true); err != nil {
		return nil, err
	}
	file, err := f.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultyFile{f: f, inner: file}, nil
}

// CreateTemp implements FS.
func (f *Faulty) CreateTemp(dir, pattern string) (File, error) {
	if err := f.step(f.plan.PCreate, true); err != nil {
		return nil, err
	}
	file, err := f.inner.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &faultyFile{f: f, inner: file}, nil
}

// OpenAppend implements FS.
func (f *Faulty) OpenAppend(name string) (File, error) {
	if err := f.step(f.plan.PCreate, true); err != nil {
		return nil, err
	}
	file, err := f.inner.OpenAppend(name)
	if err != nil {
		return nil, err
	}
	return &faultyFile{f: f, inner: file}, nil
}

// ReadFile implements FS.
func (f *Faulty) ReadFile(name string) ([]byte, error) {
	if f.dead() {
		return nil, ErrCrashed
	}
	return f.inner.ReadFile(name)
}

// ReadDir implements FS.
func (f *Faulty) ReadDir(dir string) ([]fs.DirEntry, error) {
	if f.dead() {
		return nil, ErrCrashed
	}
	return f.inner.ReadDir(dir)
}

// Rename implements FS.
func (f *Faulty) Rename(oldpath, newpath string) error {
	if err := f.step(f.plan.PRename, false); err != nil {
		return err
	}
	return f.inner.Rename(oldpath, newpath)
}

// Remove implements FS.
func (f *Faulty) Remove(name string) error {
	if err := f.step(f.plan.PRename, false); err != nil {
		return err
	}
	return f.inner.Remove(name)
}

// Stat implements FS.
func (f *Faulty) Stat(name string) (fs.FileInfo, error) {
	if f.dead() {
		return nil, ErrCrashed
	}
	return f.inner.Stat(name)
}

// SyncDir implements FS.
func (f *Faulty) SyncDir(dir string) error {
	if err := f.step(f.plan.PSync, false); err != nil {
		return err
	}
	return f.inner.SyncDir(dir)
}

// faultyFile applies the plan to per-handle operations.
type faultyFile struct {
	f     *Faulty
	inner File
}

// Write implements File. An injected failure with ShortWrites set
// first delivers a prefix of p — the buffer is torn, not absent.
func (w *faultyFile) Write(p []byte) (int, error) {
	if err := w.f.step(w.f.plan.PWrite, true); err != nil {
		torn := errors.Is(err, ErrInjected) || errors.Is(err, ErrNoSpace)
		if torn && w.f.plan.ShortWrites && len(p) > 1 {
			n, werr := w.inner.Write(p[:len(p)/2])
			if werr != nil {
				return n, werr
			}
			return n, err
		}
		return 0, err
	}
	return w.inner.Write(p)
}

// Sync implements File.
func (w *faultyFile) Sync() error {
	if err := w.f.step(w.f.plan.PSync, false); err != nil {
		return err
	}
	return w.inner.Sync()
}

// Close implements File. Close itself never fails by injection —
// protocols must not rely on Close for durability, and a failing
// Close would only mask the Sync result tests care about — but after
// a crash it fails like everything else.
func (w *faultyFile) Close() error {
	if w.f.dead() {
		w.inner.Close() // release the real handle regardless
		return ErrCrashed
	}
	return w.inner.Close()
}

// Name implements File.
func (w *faultyFile) Name() string { return w.inner.Name() }
