package fsx

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"
)

// TestOSRoundTrip: the production FS writes, syncs, renames and reads
// back like plain os.
func TestOSRoundTrip(t *testing.T) {
	dir := t.TempDir()
	var fsys FS = OS{}
	if err := fsys.MkdirAll(filepath.Join(dir, "sub"), 0o755); err != nil {
		t.Fatal(err)
	}
	f, err := fsys.CreateTemp(dir, "x-*.tmp")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("payload")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	final := filepath.Join(dir, "sub", "final")
	if err := fsys.Rename(f.Name(), final); err != nil {
		t.Fatal(err)
	}
	if err := fsys.SyncDir(filepath.Join(dir, "sub")); err != nil {
		t.Fatal(err)
	}
	got, err := fsys.ReadFile(final)
	if err != nil || string(got) != "payload" {
		t.Fatalf("read back %q, %v", got, err)
	}
	ents, err := fsys.ReadDir(filepath.Join(dir, "sub"))
	if err != nil || len(ents) != 1 {
		t.Fatalf("ReadDir: %v, %v", ents, err)
	}
	ap, err := fsys.OpenAppend(final)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ap.Write([]byte("+more")); err != nil {
		t.Fatal(err)
	}
	if err := ap.Close(); err != nil {
		t.Fatal(err)
	}
	got, _ = fsys.ReadFile(final)
	if string(got) != "payload+more" {
		t.Fatalf("append result %q", got)
	}
}

// TestFaultyDeterministic: the same seed over the same operation
// sequence injects faults at the same points.
func TestFaultyDeterministic(t *testing.T) {
	run := func() []bool {
		fa := NewFaulty(OS{}, FaultPlan{Seed: 42, PWrite: 0.3})
		f, err := fa.Create(filepath.Join(t.TempDir(), "f"))
		if err != nil {
			t.Fatal(err)
		}
		var outcomes []bool
		for i := 0; i < 64; i++ {
			_, err := f.Write([]byte("x"))
			outcomes = append(outcomes, err == nil)
		}
		return outcomes
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fault sequences diverge at op %d", i)
		}
	}
	var failed int
	for _, ok := range a {
		if !ok {
			failed++
		}
	}
	if failed == 0 || failed == len(a) {
		t.Fatalf("p=0.3 plan failed %d/%d writes — injection not exercising both paths", failed, len(a))
	}
}

// TestFaultyShortWrite: an injected write failure with ShortWrites
// leaves a strict prefix on disk.
func TestFaultyShortWrite(t *testing.T) {
	fa := NewFaulty(OS{}, FaultPlan{Seed: 1, PWrite: 1, ShortWrites: true})
	path := filepath.Join(t.TempDir(), "torn")
	f, err := fa.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	n, err := f.Write([]byte("0123456789"))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("want ErrInjected, got %v", err)
	}
	if n != 5 {
		t.Fatalf("short write delivered %d bytes, want 5", n)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "01234" {
		t.Fatalf("on-disk prefix %q, %v", got, err)
	}
}

// TestFaultyCrashAt: from the crash point on, every operation —
// including reads — fails with ErrCrashed, and the flag is sticky.
func TestFaultyCrashAt(t *testing.T) {
	dir := t.TempDir()
	fa := NewFaulty(OS{}, FaultPlan{Seed: 7, CrashAt: 3})
	f, err := fa.Create(filepath.Join(dir, "f")) // op 1
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("a")); err != nil { // op 2
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("b")); !errors.Is(err, ErrCrashed) { // op 3: crash
		t.Fatalf("want ErrCrashed at op 3, got %v", err)
	}
	if !fa.Crashed() {
		t.Fatal("Crashed() false after crash point")
	}
	if err := f.Sync(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash Sync: %v", err)
	}
	if _, err := fa.ReadFile(filepath.Join(dir, "f")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash ReadFile: %v", err)
	}
	if err := fa.Rename("a", "b"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash Rename: %v", err)
	}
	// The bytes written before the crash survived.
	got, err := os.ReadFile(filepath.Join(dir, "f"))
	if err != nil || string(got) != "a" {
		t.Fatalf("pre-crash bytes %q, %v", got, err)
	}
}

// TestFaultyOpsCounter: Ops counts mutating operations only, the
// domain a crash-at-every-op sweep iterates over.
func TestFaultyOpsCounter(t *testing.T) {
	dir := t.TempDir()
	fa := NewFaulty(OS{}, FaultPlan{Seed: 1})
	f, _ := fa.Create(filepath.Join(dir, "f")) // 1
	f.Write([]byte("x"))                       // 2
	f.Sync()                                   // 3
	f.Close()                                  // Close is not counted
	fa.ReadFile(filepath.Join(dir, "f"))       // reads are not counted
	fa.SyncDir(dir)                            // 4
	if got := fa.Ops(); got != 4 {
		t.Fatalf("Ops() = %d, want 4", got)
	}
}

// TestFaultyNoSpaceWindow: from FullAt on, allocating operations fail
// with ErrNoSpace (matching syscall.ENOSPC), non-allocating ones
// still work, and SetFull(false) recovers the disk.
func TestFaultyNoSpaceWindow(t *testing.T) {
	dir := t.TempDir()
	fa := NewFaulty(OS{}, FaultPlan{FullAt: 3})
	f, err := fa.Create(filepath.Join(dir, "a")) // op 1
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("x")); err != nil { // op 2
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("y")); !errors.Is(err, ErrNoSpace) { // op 3: full
		t.Fatalf("want ErrNoSpace at op 3, got %v", err)
	}
	if !errors.Is(ErrNoSpace, syscall.ENOSPC) {
		t.Fatal("ErrNoSpace must match syscall.ENOSPC")
	}
	if !fa.Full() {
		t.Fatal("Full() should report the window fired")
	}
	if _, err := fa.Create(filepath.Join(dir, "b")); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("create on a full disk: want ErrNoSpace, got %v", err)
	}
	// A full disk still renames and removes: only allocation fails.
	if err := fa.Rename(filepath.Join(dir, "a"), filepath.Join(dir, "a2")); err != nil {
		t.Fatalf("rename on a full disk should pass: %v", err)
	}
	if got := fa.NoSpaceErrs(); got != 2 {
		t.Fatalf("NoSpaceErrs = %d, want 2", got)
	}
	fa.SetFull(false)
	if _, err := f.Write([]byte("z")); err != nil {
		t.Fatalf("write after space freed: %v", err)
	}
	if fa.Full() {
		t.Fatal("SetFull(false) must clear and disarm the window")
	}
	f.Close()
}

// TestFaultyNoSpaceShortWrite: with ShortWrites set, a disk that
// fills mid-write tears the buffer — a prefix lands, then ENOSPC.
func TestFaultyNoSpaceShortWrite(t *testing.T) {
	dir := t.TempDir()
	fa := NewFaulty(OS{}, FaultPlan{FullAt: 2, ShortWrites: true})
	f, err := fa.Create(filepath.Join(dir, "f")) // op 1
	if err != nil {
		t.Fatal(err)
	}
	n, err := f.Write([]byte("abcdef")) // op 2: fills mid-write
	if !errors.Is(err, ErrNoSpace) {
		t.Fatalf("want ErrNoSpace, got %v", err)
	}
	if n != 3 {
		t.Fatalf("torn write delivered %d bytes, want 3", n)
	}
	fa.SetFull(false)
	f.Close()
	got, err := OS{}.ReadFile(filepath.Join(dir, "f"))
	if err != nil || string(got) != "abc" {
		t.Fatalf("on-disk prefix = %q, %v; want abc", got, err)
	}
}

// TestFaultyNoSpaceProbabilistic: PNoSpace draws ENOSPC faults
// deterministically by seed, and plans without it keep their exact
// sequences (no extra RNG draws).
func TestFaultyNoSpaceProbabilistic(t *testing.T) {
	run := func() (int, int) {
		fa := NewFaulty(OS{}, FaultPlan{Seed: 77, PNoSpace: 0.4, PWrite: 0.2})
		f, err := fa.Create(filepath.Join(t.TempDir(), "f"))
		if err != nil && !errors.Is(err, ErrNoSpace) {
			t.Fatal(err)
		}
		for i := 0; i < 50; i++ {
			if f != nil {
				f.Write([]byte("x"))
			}
		}
		return fa.NoSpaceErrs(), fa.Injected()
	}
	n1, i1 := run()
	n2, i2 := run()
	if n1 != n2 || i1 != i2 {
		t.Fatalf("same seed, different faults: (%d,%d) vs (%d,%d)", n1, i1, n2, i2)
	}
	if n1 == 0 || i1 == 0 {
		t.Fatalf("plan should draw both kinds over 51 ops: noSpace=%d injected=%d", n1, i1)
	}
}
