// Package fsx is the filesystem seam under the durable pieces of the
// serving layer (internal/journal, internal/cache's disk tier). The
// production implementation (OS) delegates to package os; the Faulty
// wrapper injects deterministic, seed-drawn failures — short writes,
// EIO, fsync errors, failed renames, and a hard "crash" after a
// chosen operation — so the chaos suite can prove that durability
// claims hold at every possible failure point instead of the ones a
// flaky test happens to hit.
//
// The interface is deliberately narrow: exactly the operations the
// journal and cache perform, including the two that casual code
// forgets — File.Sync and SyncDir — because an atomic rename without
// an fsync of the file and its parent directory is only atomic until
// the power goes out.
package fsx

import (
	"io/fs"
	"os"
)

// File is one writable file handle.
type File interface {
	// Write appends len(p) bytes, returning how many were durably
	// handed to the kernel before any error.
	Write(p []byte) (int, error)
	// Sync flushes the file's data and metadata to stable storage.
	Sync() error
	// Close releases the handle. Close does not imply Sync.
	Close() error
	// Name returns the path the file was opened with.
	Name() string
}

// FS is the set of filesystem operations the durable layers use.
type FS interface {
	// MkdirAll creates dir and any missing parents.
	MkdirAll(dir string, perm os.FileMode) error
	// Create truncates or creates name for writing.
	Create(name string) (File, error)
	// CreateTemp creates a new unique file in dir (pattern as in
	// os.CreateTemp).
	CreateTemp(dir, pattern string) (File, error)
	// OpenAppend opens name for appending, creating it if missing.
	OpenAppend(name string) (File, error)
	// ReadFile returns the contents of name.
	ReadFile(name string) ([]byte, error)
	// ReadDir lists dir, sorted by name.
	ReadDir(dir string) ([]fs.DirEntry, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes name.
	Remove(name string) error
	// Stat describes name.
	Stat(name string) (fs.FileInfo, error)
	// SyncDir fsyncs the directory itself, making previously renamed
	// or created entries durable.
	SyncDir(dir string) error
}

// OS is the production FS: plain calls into package os.
type OS struct{}

// MkdirAll implements FS.
func (OS) MkdirAll(dir string, perm os.FileMode) error { return os.MkdirAll(dir, perm) }

// Create implements FS.
func (OS) Create(name string) (File, error) { return os.Create(name) }

// CreateTemp implements FS.
func (OS) CreateTemp(dir, pattern string) (File, error) { return os.CreateTemp(dir, pattern) }

// OpenAppend implements FS.
func (OS) OpenAppend(name string) (File, error) {
	return os.OpenFile(name, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
}

// ReadFile implements FS.
func (OS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

// ReadDir implements FS.
func (OS) ReadDir(dir string) ([]fs.DirEntry, error) { return os.ReadDir(dir) }

// Rename implements FS.
func (OS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

// Remove implements FS.
func (OS) Remove(name string) error { return os.Remove(name) }

// Stat implements FS.
func (OS) Stat(name string) (fs.FileInfo, error) { return os.Stat(name) }

// SyncDir implements FS by opening the directory and fsyncing the
// handle, the POSIX idiom that makes a completed rename survive power
// loss.
func (OS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	syncErr := d.Sync()
	closeErr := d.Close()
	if syncErr != nil {
		return syncErr
	}
	return closeErr
}
