package server

// Graceful-shutdown coverage (the drain path cmd/starperfd wires to
// SIGINT/SIGTERM): Close must wait for in-flight async jobs inside
// its budget, and must give up — returning the context error, with
// queued jobs failed fast — when the budget expires first.

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"starperf/internal/cache"
)

// cacheCfg gives each manually-constructed server its own disk dir.
func cacheCfg(t *testing.T) cache.Config {
	t.Helper()
	return cache.Config{Dir: t.TempDir()}
}

// TestCloseDrainsInFlightJobs: jobs running and queued at Close time
// finish, Close returns nil, and their results are intact.
func TestCloseDrainsInFlightJobs(t *testing.T) {
	s, err := New(Config{Workers: 1, Cache: cacheCfg(t)})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	release := make(chan struct{})
	var jobs4 []string
	for i := 0; i < 3; i++ {
		id := "sha256:drain" + string(rune('a'+i))
		jobs4 = append(jobs4, id)
		if _, err := s.Pool().Submit(id, func(ctx context.Context) (any, error) {
			<-release
			return "drained", nil
		}); err != nil {
			t.Fatal(err)
		}
	}

	closed := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		closed <- s.Close(ctx)
	}()
	// Close stops intake immediately but keeps draining.
	time.Sleep(20 * time.Millisecond)
	select {
	case err := <-closed:
		t.Fatalf("Close returned %v with jobs still blocked", err)
	default:
	}
	close(release)
	if err := <-closed; err != nil {
		t.Fatalf("drained Close returned %v", err)
	}
	for _, id := range jobs4 {
		j, ok := s.Pool().Get(id)
		if !ok {
			t.Fatalf("job %s gone after drain", id)
		}
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		v, err := j.Wait(ctx)
		cancel()
		if err != nil || v != "drained" {
			t.Fatalf("job %s after drain: %v, %v", id, v, err)
		}
	}
}

// TestCloseTimesOutOnStuckJobs: when the drain budget expires with a
// job still running, Close returns the context error and the queued
// jobs fail fast with it rather than hanging forever.
func TestCloseTimesOutOnStuckJobs(t *testing.T) {
	s, err := New(Config{Workers: 1, Cache: cacheCfg(t)})
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	defer close(release) // unstick the leaked worker at test end
	if _, err := s.Pool().Submit("sha256:stuck", func(ctx context.Context) (any, error) {
		select {
		case <-release:
		case <-ctx.Done():
		}
		return nil, ctx.Err()
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Pool().Submit("sha256:queued-behind", func(ctx context.Context) (any, error) {
		return "never", nil
	}); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.Close(ctx); err != context.DeadlineExceeded {
		t.Fatalf("Close on stuck job returned %v, want DeadlineExceeded", err)
	}
	// The queued job must fail fast once the pool context is
	// cancelled, not wait behind the stuck one forever.
	j, ok := s.Pool().Get("sha256:queued-behind")
	if !ok {
		t.Fatal("queued job missing")
	}
	wctx, wcancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer wcancel()
	if _, err := j.Wait(wctx); err == nil {
		t.Fatal("job queued behind a stuck one reported success after forced shutdown")
	}
}
