package server

// The partition chaos drill (PR 12), in-process: a 3-node ring on a
// netx fabric is split into a minority and a majority side. Both
// sides must keep serving byte-identical answers through the
// local-compute floor; a job acknowledged by the minority side during
// the split must survive the heal and be servable from the other
// side; and a fabric that corrupts peer responses must see every
// damaged copy rejected by checksum, never relayed. The drill runs
// over several seeds — the invariants hold under any fault schedule,
// not one lucky draw.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
	"time"

	"starperf/internal/netx"
)

// partitionSeeds is the fixed seed set the drill (and CI's
// partition-smoke job) runs under.
var partitionSeeds = []uint64{1, 2, 3, 4, 5}

// newPartitionCluster builds a 3-node cluster whose peer traffic
// crosses the given netx fabric. Client traffic (the test itself)
// does not: the drill observes what the cluster serves while its
// internal network misbehaves.
func newPartitionCluster(t *testing.T, fabric *netx.Net) *testCluster {
	t.Helper()
	return newTestCluster(t, 3, func(addr string, cfg *Config) {
		cfg.PeerHTTP = fabric.Client(addr, nil)
		// A short cooldown so post-heal reconvergence is observable
		// within the test budget; the breaker semantics are unchanged.
		cfg.PeerBreaker = BreakerConfig{Cooldown: 50 * time.Millisecond}
	})
}

// pollJobAcross polls GET /v1/jobs/{id} on base until it reports done
// with a result, retrying through transient refusals (breaker
// cooldowns right after a heal).
func pollJobAcross(t *testing.T, base, id string) []byte {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		body := readBody(t, resp)
		if resp.StatusCode == http.StatusOK {
			var jb jobBody
			if err := json.Unmarshal(body, &jb); err != nil {
				t.Fatal(err)
			}
			if jb.Status == "done" && jb.Result != nil {
				return jb.Result
			}
			if jb.Status == "failed" {
				t.Fatalf("job %s failed: %s", id, jb.Error)
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s not served from %s: %d %s", id, base, resp.StatusCode, body)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestPartitionDrillBothSidesServeAndReconverge(t *testing.T) {
	wantPredict := controlPredict(t)
	wantSim := controlSimulate(t)
	for _, seed := range partitionSeeds {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			fabric := netx.New(netx.Plan{Seed: seed})
			tc := newPartitionCluster(t, fabric)
			minority, majority := tc.addrs[0], tc.addrs[1:]

			// Healthy warm-up: every node answers the control bytes.
			for _, addr := range tc.addrs {
				resp := postJSON(t, tc.url(addr)+"/v1/predict", predictS4)
				if body := readBody(t, resp); resp.StatusCode != http.StatusOK || string(body) != string(wantPredict) {
					t.Fatalf("healthy predict via %s: %d %s", addr, resp.StatusCode, body)
				}
			}

			// Split {minority} | {majority}: peer traffic across the cut
			// is severed both ways.
			fabric.SetPartitions([]netx.Partition{{A: []string{minority}, B: majority}})

			// Both sides keep serving predict byte-identically — the
			// forward path fails over and lands on the local-compute
			// floor when the owner is across the cut.
			for _, addr := range tc.addrs {
				resp := postJSON(t, tc.url(addr)+"/v1/predict", predictS4)
				if body := readBody(t, resp); resp.StatusCode != http.StatusOK || string(body) != string(wantPredict) {
					t.Fatalf("partitioned predict via %s: %d %s", addr, resp.StatusCode, body)
				}
			}

			// The minority side acknowledges an async job during the
			// split and serves it locally.
			resp := postJSON(t, tc.url(minority)+"/v1/simulate", recoverySim)
			var jb jobBody
			if err := json.Unmarshal(readBody(t, resp), &jb); err != nil {
				t.Fatal(err)
			}
			if jb.ID == "" {
				t.Fatalf("minority submit returned no id (status %d)", resp.StatusCode)
			}
			if got := pollJobAcross(t, tc.url(minority), jb.ID); string(got) != string(wantSim) {
				t.Fatalf("minority-side result drifted from control:\n %s\n %s", got, wantSim)
			}

			// The cut really severed traffic (sanity on the fabric).
			if st := fabric.Stats(); st.Partitioned == 0 {
				t.Fatal("no peer request was ever severed — the drill did not exercise the partition")
			}

			// Heal. The acknowledged job must now be servable from the
			// other side of the healed cut (peer fill), byte-identical.
			fabric.Heal()
			if got := pollJobAcross(t, tc.url(majority[0]), jb.ID); string(got) != string(wantSim) {
				t.Fatalf("post-heal result drifted from control:\n %s\n %s", got, wantSim)
			}

			// And the ring routes normally again.
			for _, addr := range tc.addrs {
				resp := postJSON(t, tc.url(addr)+"/v1/predict", predictS4)
				if body := readBody(t, resp); resp.StatusCode != http.StatusOK || string(body) != string(wantPredict) {
					t.Fatalf("post-heal predict via %s: %d %s", addr, resp.StatusCode, body)
				}
			}
		})
	}
}

// TestPartitionDrillCorruptPeerFillsRejected: a fabric that flips a
// byte in every peer response body must never get those bytes served.
// Forwarded compute answers fail their checksum, are counted, and the
// receiving node falls to its local-compute floor — the client still
// sees the control bytes.
func TestPartitionDrillCorruptPeerFillsRejected(t *testing.T) {
	wantPredict := controlPredict(t)
	for _, seed := range partitionSeeds {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			fabric := netx.New(netx.Plan{Seed: seed, Default: netx.Rule{PCorrupt: 1}})
			tc := newPartitionCluster(t, fabric)

			// Find a node that does not own the predict id, so its
			// request must cross the corrupting fabric.
			order := tc.order(predictID(t))
			nonOwner := order[1]

			resp := postJSON(t, tc.url(nonOwner)+"/v1/predict", predictS4)
			body := readBody(t, resp)
			if resp.StatusCode != http.StatusOK || string(body) != string(wantPredict) {
				t.Fatalf("predict via non-owner on corrupt fabric: %d %s", resp.StatusCode, body)
			}

			var corrupt uint64
			for _, addr := range tc.addrs {
				corrupt += tc.srvs[addr].cluster.peerFillCorrupt.Load()
			}
			if corrupt == 0 {
				t.Fatal("no corrupted peer response was detected — checksum verification did not fire")
			}
			if st := fabric.Stats(); st.Corrupted == 0 {
				t.Fatal("fabric never corrupted a body — the drill did not exercise corruption")
			}
		})
	}
}
