package server

import (
	"math/rand"
	"testing"
	"time"
)

// This file drills the breaker-probe bug class for good: PR 5 leaked
// the half-open probe slot when a panicking handler skipped observe,
// pinning the route open forever. The fix routes every admitted
// request through a deferred observe (a panic counts as a failure),
// which makes three invariants checkable under any interleaving of
// admits, sheds, finishes, panics and clock advances:
//
//  1. single probe: in half-open, at most one request is admitted
//     between observes;
//  2. no slot leak: whenever the probe flag is set, an admitted
//     request is still in flight to clear it;
//  3. never pinned: once every admitted request has observed, waiting
//     out the cooldown always re-admits.
//
// The static lockorder rule proves the mutex sibling of this property
// (no lock held past return); this test fuzzes the semantic slot the
// linter cannot see.

// breakerHarness drives one breakerSet through an op sequence while
// model-checking the invariants.
type breakerHarness struct {
	t   *testing.T
	b   *breakerSet
	clk *fakeClock

	// outstanding are admitted requests that have not observed yet;
	// each entry remembers nothing — outcome is chosen at finish time.
	outstanding int
	// probeAdmits counts admissions whose post-state was half-open
	// since the last observe; it may never exceed one.
	probeAdmits int
}

func newBreakerHarness(t *testing.T) *breakerHarness {
	clk := newFakeClock()
	b := withClock(newBreakerSet(BreakerConfig{
		Window: 8, MinSamples: 2, FailureRatio: 0.5, Cooldown: time.Second,
	}), clk)
	return &breakerHarness{t: t, b: b, clk: clk}
}

// state snapshots the route's fields under the breaker lock.
func (h *breakerHarness) state() (state string, probing bool) {
	h.b.mu.Lock()
	defer h.b.mu.Unlock()
	rb := h.b.route("/r")
	return rb.state, rb.probing
}

func (h *breakerHarness) check() {
	h.t.Helper()
	state, probing := h.state()
	if probing && state != breakerHalfOpen {
		h.t.Fatalf("probe flag set in state %q", state)
	}
	if probing && h.outstanding == 0 {
		h.t.Fatalf("probe slot leaked: probing with no request in flight")
	}
}

// step applies one fuzz byte as an operation.
func (h *breakerHarness) step(op byte) {
	h.t.Helper()
	switch op % 6 {
	case 0: // admit
		ok, retryAfter := h.b.allow("/r")
		if ok {
			h.outstanding++
			if _, probing := h.state(); probing {
				h.probeAdmits++
				if h.probeAdmits > 1 {
					h.t.Fatal("two probes admitted without an intervening observe")
				}
			}
		} else if retryAfter <= 0 {
			h.t.Fatal("rejection without a Retry-After hint")
		}
	case 1: // finish one request successfully
		h.finish(false)
	case 2: // finish one request as a server-side failure
		h.finish(true)
	case 3: // a handler panic: guard's deferred observe records a failure
		h.finish(true)
	case 4: // admission control sheds before allow: no breaker traffic
	case 5: // time passes
		h.clk.advance(300 * time.Millisecond)
	}
	h.check()
}

func (h *breakerHarness) finish(failed bool) {
	if h.outstanding == 0 {
		return
	}
	h.outstanding--
	h.b.observe("/r", failed)
	h.probeAdmits = 0
}

// drain finishes every in-flight request, then proves the breaker is
// not pinned: after a full cooldown the route must admit again.
func (h *breakerHarness) drain() {
	h.t.Helper()
	for h.outstanding > 0 {
		h.finish(h.outstanding%2 == 0)
		h.check()
	}
	h.clk.advance(h.b.cfg.Cooldown + time.Millisecond)
	if ok, _ := h.b.allow("/r"); !ok {
		state, probing := h.state()
		h.t.Fatalf("breaker pinned: drained and cooled down but still rejecting "+
			"(state=%s probing=%v)", state, probing)
	}
}

// FuzzBreakerProbeSlot lets the fuzzer pick the interleaving.
func FuzzBreakerProbeSlot(f *testing.F) {
	f.Add([]byte{0, 2, 0, 2, 5, 5, 5, 5, 0, 1})       // trip, cool, probe ok
	f.Add([]byte{0, 3, 0, 3, 5, 5, 5, 5, 0, 3, 5, 0}) // panics end-to-end
	f.Add([]byte{0, 0, 0, 2, 2, 2, 5, 0, 4, 1})       // stragglers + shed
	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) > 512 {
			ops = ops[:512]
		}
		h := newBreakerHarness(t)
		for _, op := range ops {
			h.step(op)
		}
		h.drain()
	})
}

// TestBreakerProbeSlotInvariants runs the same harness over seeded
// random orderings so the property is exercised on every go test run,
// not only under -fuzz.
func TestBreakerProbeSlotInvariants(t *testing.T) {
	for seed := int64(1); seed <= 200; seed++ {
		rng := rand.New(rand.NewSource(seed))
		h := newBreakerHarness(t)
		steps := 50 + rng.Intn(200)
		for i := 0; i < steps; i++ {
			h.step(byte(rng.Intn(256)))
			if t.Failed() {
				t.Fatalf("invariant broken at seed %d step %d", seed, i)
			}
		}
		h.drain()
		if t.Failed() {
			t.Fatalf("drain failed at seed %d", seed)
		}
	}
}
