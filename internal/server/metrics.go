package server

import (
	"math/bits"
	"sort"
	"sync"
	"time"

	"starperf/internal/obs"
	"starperf/internal/stats"
)

// latencyBins bounds the power-of-two microsecond histogram:
// bin i covers [2^(i-1), 2^i) µs, so 40 bins reach ~6 days.
const latencyBins = 40

// routeAgg accumulates one route's request statistics.
type routeAgg struct {
	count  uint64
	errors uint64
	lat    stats.Stream     // exact running mean/max, in µs
	hist   *stats.Histogram // power-of-two µs buckets, for quantiles
}

// metrics tracks per-route latency histograms and error counts for
// GET /metricsz.
type metrics struct {
	mu     sync.Mutex
	routes map[string]*routeAgg
}

func newMetrics() *metrics {
	return &metrics{routes: make(map[string]*routeAgg)}
}

// observe records one finished request.
func (m *metrics) observe(route string, status int, d time.Duration) {
	us := d.Microseconds()
	if us < 0 {
		us = 0
	}
	m.mu.Lock()
	agg := m.routes[route]
	if agg == nil {
		agg = &routeAgg{hist: stats.NewHistogram(latencyBins)}
		m.routes[route] = agg
	}
	agg.count++
	if status >= 400 {
		agg.errors++
	}
	agg.lat.Add(float64(us))
	agg.hist.Add(bits.Len64(uint64(us)))
	m.mu.Unlock()
}

// bucketBound converts a histogram bin index back to the upper bound
// (in µs) of the latencies it counts.
func bucketBound(bin int) uint64 {
	if bin <= 0 {
		return 0
	}
	return 1<<uint(bin) - 1
}

// report snapshots every route, sorted by route for deterministic
// output.
func (m *metrics) report() []obs.RouteStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	names := make([]string, 0, len(m.routes))
	for name := range m.routes {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]obs.RouteStats, 0, len(names))
	for _, name := range names {
		agg := m.routes[name]
		rs := obs.RouteStats{
			Route:      name,
			Count:      agg.count,
			Errors:     agg.errors,
			MeanMicros: agg.lat.Mean(),
			MaxMicros:  uint64(agg.lat.Max()),
		}
		if agg.hist.Total() > 0 {
			rs.P50Micros = bucketBound(agg.hist.Quantile(0.50))
			rs.P95Micros = bucketBound(agg.hist.Quantile(0.95))
			rs.P99Micros = bucketBound(agg.hist.Quantile(0.99))
		}
		out = append(out, rs)
	}
	return out
}
