package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
	"time"
)

// fakeClock drives breaker time without sleeping.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1000, 0)} }
func withClock(b *breakerSet, c *fakeClock) *breakerSet {
	b.now = c.now
	return b
}

// TestBreakerTripsOnSustainedFailures: below MinSamples nothing
// trips; at the failure ratio the route opens and rejects.
func TestBreakerTripsOnSustainedFailures(t *testing.T) {
	clk := newFakeClock()
	b := withClock(newBreakerSet(BreakerConfig{Window: 10, MinSamples: 4, FailureRatio: 0.5, Cooldown: time.Second}), clk)

	for i := 0; i < 3; i++ {
		b.observe("/x", true)
		if ok, _ := b.allow("/x"); !ok {
			t.Fatalf("tripped after %d samples, below MinSamples", i+1)
		}
	}
	b.observe("/x", true) // 4 failures / 4 samples ≥ 0.5
	ok, wait := b.allow("/x")
	if ok {
		t.Fatal("breaker closed after sustained failures")
	}
	if wait <= 0 || wait > time.Second {
		t.Fatalf("retry-after %v outside (0, cooldown]", wait)
	}
	st := b.report()
	if len(st) != 1 || st[0].State != breakerOpen || st[0].Trips != 1 || st[0].Rejected != 1 {
		t.Fatalf("report = %+v", st)
	}
}

// TestBreakerHalfOpenProbe: after the cooldown exactly one probe is
// admitted; its success closes the breaker, its failure re-opens it.
func TestBreakerHalfOpenProbe(t *testing.T) {
	clk := newFakeClock()
	b := withClock(newBreakerSet(BreakerConfig{Window: 4, MinSamples: 2, FailureRatio: 0.5, Cooldown: time.Second}), clk)
	b.observe("/x", true)
	b.observe("/x", true)
	if ok, _ := b.allow("/x"); ok {
		t.Fatal("not open after trip")
	}

	clk.advance(1500 * time.Millisecond)
	if ok, _ := b.allow("/x"); !ok {
		t.Fatal("cooldown elapsed but probe rejected")
	}
	// Concurrent request while the probe is in flight: rejected.
	if ok, _ := b.allow("/x"); ok {
		t.Fatal("second probe admitted concurrently")
	}

	// Probe fails → open again, full cooldown.
	b.observe("/x", true)
	if ok, _ := b.allow("/x"); ok {
		t.Fatal("re-opened breaker admitted a request")
	}
	if st := b.report(); st[0].Trips != 2 {
		t.Fatalf("trips = %d, want 2", st[0].Trips)
	}

	// Second probe succeeds → closed, and the window restarts clean
	// (one old failure must not re-trip it).
	clk.advance(1500 * time.Millisecond)
	if ok, _ := b.allow("/x"); !ok {
		t.Fatal("second probe rejected")
	}
	b.observe("/x", false)
	if st := b.report(); st[0].State != breakerClosed {
		t.Fatalf("state %q after healthy probe", st[0].State)
	}
	b.observe("/x", true)
	if ok, _ := b.allow("/x"); !ok {
		t.Fatal("single failure after close re-tripped a reset window")
	}
}

// TestBreakerDisabled: a disabled breaker is a pass-through.
func TestBreakerDisabled(t *testing.T) {
	b := newBreakerSet(BreakerConfig{Disabled: true, MinSamples: 1, FailureRatio: 0.1})
	for i := 0; i < 50; i++ {
		b.observe("/x", true)
	}
	if ok, _ := b.allow("/x"); !ok {
		t.Fatal("disabled breaker rejected")
	}
}

// TestBreakerOverHTTP drives the breaker through the real stack: a
// 1ns job timeout turns every cold predict into a 504, the route
// trips, and the next request is rejected locally with 503
// queue_full + Retry-After — without touching the pool.
func TestBreakerOverHTTP(t *testing.T) {
	s, ts := newTestServer(t, Config{
		Workers:    1,
		JobTimeout: time.Nanosecond,
		Breaker:    BreakerConfig{Window: 8, MinSamples: 3, FailureRatio: 0.5, Cooldown: time.Minute},
	})

	sawOpen := false
	for i := 0; i < 8 && !sawOpen; i++ {
		// Distinct bodies: the abandoned post-timeout computation of a
		// request eventually lands in the cache, so a repeat of the same
		// body could be a 200 hit instead of a 504 failure sample.
		body4 := fmt.Sprintf(`{"topo":{"kind":"star","n":4},"v":4,"msg_len":%d,"rate":0.004}`, 16+i)
		resp := postJSON(t, ts.URL+"/v1/predict", body4)
		body := readBody(t, resp)
		switch resp.StatusCode {
		case http.StatusGatewayTimeout:
			// the failures that feed the window
		case http.StatusServiceUnavailable:
			var eb errorBody
			if err := json.Unmarshal(body, &eb); err != nil || eb.Error.Class != "queue_full" {
				t.Fatalf("503 body %s", body)
			}
			if resp.Header.Get("Retry-After") == "" {
				t.Fatal("breaker 503 without Retry-After")
			}
			sawOpen = true
		default:
			t.Fatalf("request %d: %d %s", i, resp.StatusCode, body)
		}
	}
	if !sawOpen {
		t.Fatal("breaker never opened under sustained 504s")
	}

	// /metricsz reports the trip and the local rejection.
	resp, err := http.Get(ts.URL + "/metricsz")
	if err != nil {
		t.Fatal(err)
	}
	var mz Metricsz
	if err := json.Unmarshal(readBody(t, resp), &mz); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, b := range mz.Breakers {
		if b.Route == "/v1/predict" {
			found = true
			if b.State != breakerOpen || b.Trips < 1 || b.Rejected < 1 {
				t.Fatalf("breaker stats %+v", b)
			}
		}
	}
	if !found {
		t.Fatalf("no /v1/predict breaker in %+v", mz.Breakers)
	}
	if mz.Admission.BreakerRejected < 1 {
		t.Fatalf("admission stats %+v", mz.Admission)
	}
	_ = s
}
