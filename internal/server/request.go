package server

import (
	"errors"
	"math"

	"starperf/internal/bounds"
	"starperf/internal/cfgerr"
	"starperf/internal/desim"
	"starperf/internal/experiments"
	"starperf/internal/hypercube"
	"starperf/internal/jobs"
	"starperf/internal/mesh"
	"starperf/internal/model"
	"starperf/internal/routing"
	"starperf/internal/stargraph"
	"starperf/internal/topology"
	"starperf/internal/torus"
)

// The wire schema of starperfd. Every request type normalises its
// defaults (withDefaults) BEFORE hashing, so an explicit
// `"seed": 1` and an omitted seed are the same job, the same cache
// entry and the same singleflight flight. Validation errors carry the
// cfgerr contract: they match starperf.ErrInvalidConfig and map to
// HTTP 400.

// TopoSpec names a topology on the wire.
type TopoSpec struct {
	// Kind is "star", "hypercube", "torus" or "mesh".
	Kind string `json:"kind"`
	// N is the star size n (S_n) or the hypercube dimension m.
	N int `json:"n,omitempty"`
	// K and Dim are the k-ary n-cube/mesh arity and dimension.
	K   int `json:"k,omitempty"`
	Dim int `json:"dim,omitempty"`
}

// build constructs the topology.
func (t TopoSpec) build() (topology.Topology, error) {
	switch t.Kind {
	case "star":
		return stargraph.New(t.N)
	case "hypercube":
		return hypercube.New(t.N)
	case "torus":
		return torus.New(t.K, t.Dim)
	case "mesh":
		return mesh.New(t.K, t.Dim)
	default:
		return nil, cfgerr.Errorf("server: unknown topology kind %q (want star, hypercube, torus or mesh)", t.Kind)
	}
}

// paths constructs the model's path structure for the topology.
func (t TopoSpec) paths() (model.PathStructure, error) {
	switch t.Kind {
	case "star":
		return model.NewStarPaths(t.N)
	case "hypercube":
		return model.NewCubePaths(t.N)
	case "torus":
		return model.NewTorusPaths(t.K, t.Dim)
	case "mesh":
		return nil, cfgerr.New("server: the analytical model does not cover meshes (broken channel symmetry) — use /v1/simulate")
	default:
		return nil, cfgerr.Errorf("server: unknown topology kind %q (want star, hypercube, torus or mesh)", t.Kind)
	}
}

// parseRouting maps the wire spelling to a routing.Kind; empty means
// the paper's EnhancedNbc.
func parseRouting(s string) (routing.Kind, error) {
	switch s {
	case "", "enbc", "enhanced-nbc":
		return routing.EnhancedNbc, nil
	case "nbc":
		return routing.Nbc, nil
	case "nhop":
		return routing.NHop, nil
	default:
		return 0, cfgerr.Errorf("server: unknown routing %q (want nhop, nbc or enbc)", s)
	}
}

// PredictRequest is POST /v1/predict: one analytical-model
// evaluation (paper eq. 16 mean latency), served synchronously.
type PredictRequest struct {
	Topo    TopoSpec `json:"topo"`
	Routing string   `json:"routing,omitempty"`
	V       int      `json:"v"`
	MsgLen  int      `json:"msg_len"`
	Rate    float64  `json:"rate"`
}

func (r PredictRequest) withDefaults() PredictRequest {
	if r.Routing == "enhanced-nbc" || r.Routing == "enbc" {
		r.Routing = "" // one canonical spelling per algorithm
	}
	return r
}

// validate rejects a request that cannot materialise, without
// running it.
func (r PredictRequest) validate() error {
	if _, err := r.Topo.paths(); err != nil {
		return err
	}
	if _, err := parseRouting(r.Routing); err != nil {
		return err
	}
	return nil
}

func (r PredictRequest) hash() (string, error) { return jobs.Hash("predict", r) }

// run evaluates the model. A saturated operating point is a valid
// answer (Saturated true), not an error.
func (r PredictRequest) run() (*PredictResult, error) {
	top, err := r.Topo.build()
	if err != nil {
		return nil, err
	}
	paths, err := r.Topo.paths()
	if err != nil {
		return nil, err
	}
	kind, err := parseRouting(r.Routing)
	if err != nil {
		return nil, err
	}
	res, err := model.Evaluate(model.Config{
		Paths: paths, Top: top, Kind: kind,
		V: r.V, MsgLen: r.MsgLen, Rate: r.Rate,
	})
	if err != nil {
		if errors.Is(err, model.ErrSaturated) {
			return &PredictResult{Saturated: true}, nil
		}
		return nil, err
	}
	return &PredictResult{
		LatencyCycles: res.Latency,
		NetLatency:    res.NetLatency,
		SourceWait:    res.SourceWait,
		ChannelWait:   res.ChannelWait,
		Multiplexing:  res.Multiplexing,
		Utilization:   res.Utilization,
		MeanBlocking:  res.MeanBlocking,
		Converged:     res.Converged,
	}, nil
}

// PredictResult is the predict response body. When Saturated is true
// the operating point lies beyond the model's saturation fixed point
// and the remaining fields are zero.
type PredictResult struct {
	Saturated     bool    `json:"saturated"`
	LatencyCycles float64 `json:"latency_cycles"`
	NetLatency    float64 `json:"net_latency"`
	SourceWait    float64 `json:"source_wait"`
	ChannelWait   float64 `json:"channel_wait"`
	Multiplexing  float64 `json:"multiplexing"`
	Utilization   float64 `json:"utilization"`
	MeanBlocking  float64 `json:"mean_blocking"`
	Converged     bool    `json:"converged"`
}

// BoundsRequest is POST /v1/bounds: one worst-case delay-bound
// evaluation (network-calculus engine, internal/bounds), served
// synchronously like /v1/predict.
type BoundsRequest struct {
	Topo    TopoSpec `json:"topo"`
	Routing string   `json:"routing,omitempty"`
	V       int      `json:"v"`
	MsgLen  int      `json:"msg_len"`
	Rate    float64  `json:"rate"`
	BufCap  int      `json:"buf_cap,omitempty"`
	LinkBW  float64  `json:"link_bw,omitempty"`
}

func (r BoundsRequest) withDefaults() BoundsRequest {
	if r.Routing == "enhanced-nbc" || r.Routing == "enbc" {
		r.Routing = "" // one canonical spelling per algorithm
	}
	if r.BufCap == 0 {
		r.BufCap = 2
	}
	if r.LinkBW == 0 {
		r.LinkBW = 1
	}
	return r
}

func (r BoundsRequest) validate() error {
	top, err := r.Topo.build()
	if err != nil {
		return err
	}
	kind, err := parseRouting(r.Routing)
	if err != nil {
		return err
	}
	if _, err := routing.New(kind, top, r.V); err != nil {
		return err
	}
	return nil
}

func (r BoundsRequest) hash() (string, error) { return jobs.Hash("bounds", r) }

// run evaluates the bound engine. An unboundable operating point is a
// valid answer (Unboundable true), not an error — the bounds
// counterpart of PredictResult.Saturated.
func (r BoundsRequest) run() (*BoundsResult, error) {
	top, err := r.Topo.build()
	if err != nil {
		return nil, err
	}
	kind, err := parseRouting(r.Routing)
	if err != nil {
		return nil, err
	}
	res, err := bounds.Evaluate(bounds.Config{
		Top: top, Kind: kind,
		V: r.V, MsgLen: r.MsgLen, Rate: r.Rate,
		BufCap: r.BufCap, LinkBW: r.LinkBW,
	})
	if err != nil {
		if errors.Is(err, bounds.ErrUnboundable) {
			return &BoundsResult{Unboundable: true}, nil
		}
		return nil, err
	}
	out := &BoundsResult{
		WorstBound:  res.WorstCase,
		Utilization: res.Utilization,
		HopDelay:    res.HopDelay,
		Residual:    res.Residual,
		Feedforward: res.Feedforward,
		Iterations:  res.Iterations,
		Flows:       res.Flows,
		Channels:    res.Channels,
	}
	for _, fb := range res.Classes {
		out.Classes = append(out.Classes, BoundsClass{
			Hops: fb.Hops, Flows: fb.Flows, Bound: fb.Bound,
		})
	}
	return out, nil
}

// BoundsResult is the bounds response body. When Unboundable is true
// no finite worst-case bound exists at the operating point and the
// remaining fields are zero.
type BoundsResult struct {
	Unboundable bool          `json:"unboundable"`
	WorstBound  float64       `json:"worst_bound"`
	Classes     []BoundsClass `json:"classes,omitempty"`
	Utilization float64       `json:"utilization"`
	HopDelay    float64       `json:"hop_delay"`
	Residual    float64       `json:"residual"`
	Feedforward bool          `json:"feedforward"`
	Iterations  int           `json:"iterations"`
	Flows       int           `json:"flows"`
	Channels    int           `json:"channels"`
}

// BoundsClass is one per-hop-count flow class's bound.
type BoundsClass struct {
	Hops  int     `json:"hops"`
	Flows int     `json:"flows"`
	Bound float64 `json:"bound"`
}

// SimulateRequest is POST /v1/simulate: one flit-level wormhole
// simulation, served asynchronously (the response names a job).
type SimulateRequest struct {
	Topo    TopoSpec `json:"topo"`
	Routing string   `json:"routing,omitempty"`
	V       int      `json:"v"`
	MsgLen  int      `json:"msg_len"`
	Rate    float64  `json:"rate"`
	BufCap  int      `json:"buf_cap,omitempty"`
	Seed    uint64   `json:"seed,omitempty"`
	// Warmup/Measure/Drain are the cycle windows (defaults
	// 8000/30000/120000, the experiment harness's).
	Warmup    int64 `json:"warmup,omitempty"`
	Measure   int64 `json:"measure,omitempty"`
	Drain     int64 `json:"drain,omitempty"`
	MaxMsgAge int64 `json:"max_msg_age,omitempty"`
}

func (r SimulateRequest) withDefaults() SimulateRequest {
	if r.Routing == "enhanced-nbc" || r.Routing == "enbc" {
		r.Routing = ""
	}
	if r.Seed == 0 {
		r.Seed = 1
	}
	if r.BufCap == 0 {
		r.BufCap = 2
	}
	if r.Warmup == 0 {
		r.Warmup = 8000
	}
	if r.Measure == 0 {
		r.Measure = 30000
	}
	if r.Drain == 0 {
		r.Drain = 120000
	}
	return r
}

func (r SimulateRequest) validate() error {
	top, err := r.Topo.build()
	if err != nil {
		return err
	}
	kind, err := parseRouting(r.Routing)
	if err != nil {
		return err
	}
	if _, err := routing.New(kind, top, r.V); err != nil {
		return err
	}
	return nil
}

func (r SimulateRequest) hash() (string, error) { return jobs.Hash("simulate", r) }

func (r SimulateRequest) run() (*SimulateResult, error) {
	top, err := r.Topo.build()
	if err != nil {
		return nil, err
	}
	kind, err := parseRouting(r.Routing)
	if err != nil {
		return nil, err
	}
	spec, err := routing.New(kind, top, r.V)
	if err != nil {
		return nil, err
	}
	res, err := desim.Run(desim.Config{
		Top: top, Spec: spec,
		Rate: r.Rate, MsgLen: r.MsgLen, BufCap: r.BufCap, Seed: r.Seed,
		WarmupCycles: r.Warmup, MeasureCycles: r.Measure, DrainCycles: r.Drain,
		MaxMsgAge: r.MaxMsgAge,
	})
	if err != nil {
		return nil, err
	}
	out := &SimulateResult{
		MeanLatency:  res.Latency.Mean(),
		MinLatency:   res.Latency.Min(),
		MaxLatency:   res.Latency.Max(),
		Measured:     res.MeasuredDelivered,
		Delivered:    res.Delivered,
		AcceptedRate: float64(res.DeliveredInWindow) / float64(r.Measure) / float64(top.N()),
		Cycles:       res.Cycles,
		Saturated:    res.Saturated(),
		Aborted:      res.Aborted,
		AbortReason:  res.AbortReason,
	}
	if res.LatencyHist != nil && res.LatencyHist.Total() > 0 {
		out.P50Latency = res.LatencyHist.Quantile(0.50)
		out.P95Latency = res.LatencyHist.Quantile(0.95)
		out.P99Latency = res.LatencyHist.Quantile(0.99)
	}
	return out, nil
}

// SimulateResult is the simulate job's result body. Latencies are in
// cycles; AcceptedRate in messages/node/cycle.
type SimulateResult struct {
	MeanLatency  float64 `json:"mean_latency"`
	MinLatency   float64 `json:"min_latency"`
	MaxLatency   float64 `json:"max_latency"`
	P50Latency   int     `json:"p50_latency"`
	P95Latency   int     `json:"p95_latency"`
	P99Latency   int     `json:"p99_latency"`
	Measured     uint64  `json:"measured"`
	Delivered    uint64  `json:"delivered"`
	AcceptedRate float64 `json:"accepted_rate"`
	Cycles       int64   `json:"cycles"`
	Saturated    bool    `json:"saturated"`
	Aborted      bool    `json:"aborted"`
	AbortReason  string  `json:"abort_reason,omitempty"`
}

// SweepRequest is POST /v1/sweep: one panel of the paper's Figure 1
// (model and simulation curves), served asynchronously. The points
// run through the same jobs.Pool machinery the panel job itself runs
// on — a nested, independent pool sized by Workers.
type SweepRequest struct {
	// Panel is "a", "b" or "c".
	Panel  string   `json:"panel"`
	Points int      `json:"points,omitempty"`
	Seeds  []uint64 `json:"seeds,omitempty"`
	// Warmup and Measure are the per-run cycle windows.
	Warmup  int64 `json:"warmup,omitempty"`
	Measure int64 `json:"measure,omitempty"`
	// Workers bounds the sweep's own point parallelism (default 1 —
	// serial; any value produces byte-identical panels).
	Workers int `json:"workers,omitempty"`
}

func (r SweepRequest) withDefaults() SweepRequest {
	if r.Points == 0 {
		r.Points = 10
	}
	if len(r.Seeds) == 0 {
		r.Seeds = []uint64{1, 2, 3}
	}
	if r.Warmup == 0 {
		r.Warmup = 8000
	}
	if r.Measure == 0 {
		r.Measure = 30000
	}
	if r.Workers == 0 {
		r.Workers = 1
	}
	return r
}

func (r SweepRequest) validate() error {
	switch r.Panel {
	case "a", "b", "c":
	default:
		return cfgerr.Errorf("server: unknown sweep panel %q (want a, b or c)", r.Panel)
	}
	if r.Points < 0 || r.Points > 64 {
		return cfgerr.Errorf("server: sweep points %d outside 1..64", r.Points)
	}
	if len(r.Seeds) > 16 {
		return cfgerr.Errorf("server: %d sweep seeds, at most 16", len(r.Seeds))
	}
	return nil
}

func (r SweepRequest) hash() (string, error) { return jobs.Hash("sweep", r) }

func (r SweepRequest) run() (*SweepResult, error) {
	p, err := experiments.Figure1Panel(experiments.Figure1Config{
		Panel:   r.Panel[0],
		Points:  r.Points,
		Workers: r.Workers,
		Sim: experiments.SimOptions{
			Seeds:   r.Seeds,
			Warmup:  r.Warmup,
			Measure: r.Measure,
		},
	})
	if err != nil {
		return nil, err
	}
	out := &SweepResult{Title: p.Title, XLabel: p.XLabel}
	for _, s := range p.Series {
		ws := SweepSeries{Name: s.Name, V: s.V, MsgLen: s.MsgLen}
		for _, pt := range s.Points {
			ws.Points = append(ws.Points, SweepPoint{
				Rate:           pt.Rate,
				Model:          finite(pt.Model),
				ModelSaturated: pt.ModelSaturated,
				Sim:            finite(pt.Sim),
				SimHW:          pt.SimHW,
				SimSaturated:   pt.SimSaturated,
				Failed:         pt.Failed,
				Err:            pt.Err,
			})
		}
		out.Series = append(out.Series, ws)
	}
	return out, nil
}

// finite maps a latency to the wire, where a NaN (model saturated, or
// no surviving replication) becomes null — JSON has no NaN.
func finite(v float64) *float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return nil
	}
	return &v
}

// SweepResult is the sweep job's result body: the paper's Figure 1
// panel flattened into a JSON-safe shape (saturated model points and
// fully failed simulation points carry null instead of NaN).
type SweepResult struct {
	Title  string        `json:"title"`
	XLabel string        `json:"x_label"`
	Series []SweepSeries `json:"series"`
}

// SweepSeries is one curve (fixed V and message length) of a panel.
type SweepSeries struct {
	Name   string       `json:"name"`
	V      int          `json:"v"`
	MsgLen int          `json:"msg_len"`
	Points []SweepPoint `json:"points"`
}

// SweepPoint is one operating point: model and simulated mean latency
// with the simulation's ~95% half-width over seeds.
type SweepPoint struct {
	Rate           float64  `json:"rate"`
	Model          *float64 `json:"model"`
	ModelSaturated bool     `json:"model_saturated"`
	Sim            *float64 `json:"sim"`
	SimHW          float64  `json:"sim_hw"`
	SimSaturated   bool     `json:"sim_saturated"`
	Failed         bool     `json:"failed,omitempty"`
	Err            string   `json:"error,omitempty"`
}
