package server

// Golden tests pinning the v1 error envelope byte-for-byte. These are
// the wire contract: a change that fails them is a breaking API
// change and needs a version bump, not a test update.

import (
	"net/http"
	"strings"
	"testing"
)

// TestErrorEnvelopeGolden pins exact bodies for deterministic error
// paths. writeJSON encodes with a trailing newline.
func TestErrorEnvelopeGolden(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	cases := []struct {
		name   string
		do     func() *http.Response
		status int
		body   string
	}{
		{
			name: "unknown field",
			do: func() *http.Response {
				return postJSON(t, ts.URL+"/v1/predict", `{"topo":{"kind":"star","n":4},"vee":4}`)
			},
			status: 400,
			body:   `{"error":{"class":"invalid_config","message":"malformed request: json: unknown field \"vee\""}}` + "\n",
		},
		{
			name: "unknown job",
			do: func() *http.Response {
				resp, err := http.Get(ts.URL + "/v1/jobs/sha256:beef")
				if err != nil {
					t.Fatal(err)
				}
				return resp
			},
			status: 404,
			body:   `{"error":{"class":"unreachable","message":"unknown job sha256:beef"}}` + "\n",
		},
		{
			name: "invalid topology",
			do: func() *http.Response {
				return postJSON(t, ts.URL+"/v1/predict", `{"topo":{"kind":"ring","n":4},"v":4,"msg_len":16,"rate":0.004}`)
			},
			status: 400,
			// The message comes from topo validation; assert the stable
			// envelope prefix only.
			body: `{"error":{"class":"invalid_config","message":"`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := tc.do()
			body := string(readBody(t, resp))
			if resp.StatusCode != tc.status {
				t.Fatalf("status %d, want %d (%s)", resp.StatusCode, tc.status, body)
			}
			if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
				t.Fatalf("Content-Type %q", ct)
			}
			if strings.HasSuffix(tc.body, "\n") {
				if body != tc.body {
					t.Fatalf("body %q, want %q", body, tc.body)
				}
			} else if !strings.HasPrefix(body, tc.body) {
				t.Fatalf("body %q, want prefix %q", body, tc.body)
			}
		})
	}
}

// TestErrorEnvelopeRetryAfterMS: a retryable refusal carries the
// millisecond hint inside the envelope, mirroring the Retry-After
// header.
func TestErrorEnvelopeRetryAfterMS(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, MaxInFlight: 1})
	s.sem <- struct{}{}
	defer func() { <-s.sem }()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body := string(readBody(t, resp))
	if resp.StatusCode != 503 {
		t.Fatalf("status %d, want 503 (%s)", resp.StatusCode, body)
	}
	want := `{"error":{"class":"queue_full","message":"server at concurrency cap","retry_after_ms":1}}` + "\n"
	if body != want {
		t.Fatalf("body %q, want %q", body, want)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After header")
	}
}

// TestErrorEnvelopeCompatText: ?compat=text downgrades the body to
// the bare plain-text message for one release.
func TestErrorEnvelopeCompatText(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, err := http.Get(ts.URL + "/v1/jobs/sha256:beef?compat=text")
	if err != nil {
		t.Fatal(err)
	}
	body := string(readBody(t, resp))
	if resp.StatusCode != 404 {
		t.Fatalf("status %d (%s)", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type %q, want text/plain", ct)
	}
	if body != "unknown job sha256:beef\n" {
		t.Fatalf("body %q", body)
	}
}
