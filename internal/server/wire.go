package server

// The v1 error wire contract (PR 10). Every non-2xx response carries
// one JSON shape:
//
//	{"error": {"class": "...", "message": "...", "retry_after_ms": 1500}}
//
// with class drawn from the library's error contract, so an HTTP
// caller classifies failures exactly the way an in-process caller
// classifies the facade's sentinel errors:
//
//	invalid_config  the request itself is wrong (cfgerr.ErrInvalid):
//	                malformed JSON, unknown fields, a validation
//	                failure, or a body past the size limit. 400/413.
//	queue_full      the server cannot take the work right now and the
//	                caller should retry after retry_after_ms: intake
//	                queue full, admission shed, concurrency cap,
//	                breaker open, shutdown in progress. 429/503.
//	saturated       the model has no steady state at the requested
//	                operating point (model.ErrSaturated) — retrying
//	                the same request cannot succeed. 422.
//	unreachable     the addressed thing does not exist: an unknown
//	                job id, or traffic addressed to a node a fault
//	                plan stranded (routing.UnreachableError). 404/422.
//	timeout         the work ran out of time budget. 504.
//	read_only       the node's journal hit ENOSPC and async work
//	                cannot be durably acknowledged until disk space
//	                returns; sync routes still serve. Retry after
//	                retry_after_ms (space recovery is probed on every
//	                rejected submit). 503. (PR 12)
//	internal        everything else. 500.
//
// retry_after_ms is present only on queue_full responses (mirroring
// the Retry-After header, at millisecond resolution). The pre-PR-8
// plain-text message body is available for one release behind
// ?compat=text.

import (
	"fmt"
	"net/http"
	"time"
)

const (
	classInvalidConfig = "invalid_config"
	classQueueFull     = "queue_full"
	classSaturated     = "saturated"
	classUnreachable   = "unreachable"
	classTimeout       = "timeout"
	classReadOnly      = "read_only"
	classInternal      = "internal"
)

// wireError is the inner object of the v1 error envelope.
type wireError struct {
	Class        string `json:"class"`
	Message      string `json:"message"`
	RetryAfterMS int64  `json:"retry_after_ms,omitempty"`
}

// errorBody is the v1 error envelope: one nested object, so the
// top-level "error" key can never collide with a success field and
// future additions (a trace id, a doc link) extend the inner object
// without breaking decoders.
type errorBody struct {
	Error wireError `json:"error"`
}

// noRetry marks an error response that must not advertise a retry
// hint — retrying an invalid_config or saturated request cannot
// succeed.
const noRetry time.Duration = -1

// writeError emits one non-2xx response in the v1 envelope. A
// non-negative retryAfter sets the Retry-After header (whole seconds,
// minimum 1 — setRetryAfter) and the envelope's retry_after_ms
// (minimum 1 ms). ?compat=text downgrades the body to the bare
// message as text/plain.
func (s *Server) writeError(w http.ResponseWriter, r *http.Request, status int, class, message string, retryAfter time.Duration) {
	if retryAfter >= 0 {
		setRetryAfter(w, retryAfter)
	}
	if r != nil && r.URL.Query().Get("compat") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.WriteHeader(status)
		fmt.Fprintln(w, message)
		return
	}
	body := errorBody{Error: wireError{Class: class, Message: message}}
	if retryAfter >= 0 {
		ms := retryAfter.Milliseconds()
		if ms < 1 {
			ms = 1
		}
		body.Error.RetryAfterMS = ms
	}
	s.writeJSON(w, status, body)
}
