package server

import (
	"sort"
	"sync"
	"time"

	"starperf/internal/obs"
)

// Per-route circuit breaker. Each route carries a sliding window of
// recent outcomes; when enough of them are server-side failures (5xx,
// which includes the 504 a timed-out job maps to) the route opens and
// requests are rejected locally with 503 + Retry-After instead of
// piling onto a failing dependency. After a cooldown the breaker
// half-opens: one probe request is admitted, and its outcome alone
// decides between closing (healthy again) and re-opening.
//
// Client-caused statuses (4xx, including the 429s shed by admission
// control) are successes here: a breaker that tripped on its own load
// shedding would never close again.

// Breaker states, reported via /metricsz.
const (
	breakerClosed   = "closed"
	breakerOpen     = "open"
	breakerHalfOpen = "half-open"
)

// BreakerConfig tunes the per-route circuit breaker. The zero value
// gets usable defaults; Disabled turns the breaker off entirely.
type BreakerConfig struct {
	// Disabled turns the breaker into a pass-through.
	Disabled bool
	// Window is the number of recent outcomes considered (default 20).
	Window int
	// MinSamples is the fewest outcomes in the window before the
	// breaker may trip (default 10) — a single early failure is not a
	// trend.
	MinSamples int
	// FailureRatio trips the breaker when failures/samples reaches it
	// (default 0.5).
	FailureRatio float64
	// Cooldown is how long an open breaker rejects before admitting a
	// half-open probe (default 5s).
	Cooldown time.Duration
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Window <= 0 {
		c.Window = 20
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 10
	}
	if c.FailureRatio <= 0 {
		c.FailureRatio = 0.5
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 5 * time.Second
	}
	return c
}

// routeBreaker is one route's state machine.
type routeBreaker struct {
	state    string
	ring     []bool // true = failure; ring[idx] is the next slot
	idx      int
	samples  int
	failures int
	openedAt time.Time
	probing  bool // half-open: the single probe is in flight
	trips    uint64
	rejected uint64
}

// breakerSet holds every route's breaker behind one lock. The clock
// is injectable so tests drive state transitions without sleeping.
type breakerSet struct {
	cfg BreakerConfig
	now func() time.Time

	mu     sync.Mutex
	routes map[string]*routeBreaker
}

func newBreakerSet(cfg BreakerConfig) *breakerSet {
	return &breakerSet{
		cfg:    cfg.withDefaults(),
		now:    time.Now,
		routes: make(map[string]*routeBreaker),
	}
}

func (b *breakerSet) route(name string) *routeBreaker {
	rb := b.routes[name]
	if rb == nil {
		rb = &routeBreaker{state: breakerClosed, ring: make([]bool, b.cfg.Window)}
		b.routes[name] = rb
	}
	return rb
}

// allow decides whether a request on route may proceed. A rejection
// carries the cooldown time remaining, for Retry-After.
func (b *breakerSet) allow(name string) (ok bool, retryAfter time.Duration) {
	if b.cfg.Disabled {
		return true, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	rb := b.route(name)
	switch rb.state {
	case breakerClosed:
		return true, 0
	case breakerOpen:
		if wait := b.cfg.Cooldown - b.now().Sub(rb.openedAt); wait > 0 {
			rb.rejected++
			return false, wait
		}
		// Cooldown over: admit exactly one probe.
		rb.state = breakerHalfOpen
		rb.probing = true
		return true, 0
	default: // half-open
		if rb.probing {
			rb.rejected++
			return false, b.cfg.Cooldown
		}
		rb.probing = true
		return true, 0
	}
}

// observe records one finished request's outcome on route. failed
// means a server-side failure (status ≥ 500).
func (b *breakerSet) observe(name string, failed bool) {
	if b.cfg.Disabled {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	rb := b.route(name)
	if rb.state == breakerHalfOpen {
		rb.probing = false
		if failed {
			b.trip(rb) // the probe failed: back to open, fresh cooldown
		} else {
			rb.state = breakerClosed // healthy again; window already reset by trip
		}
		return
	}
	if rb.state == breakerOpen {
		return // a straggler finishing after the trip teaches nothing new
	}
	if rb.samples == len(rb.ring) {
		if rb.ring[rb.idx] {
			rb.failures--
		}
	} else {
		rb.samples++
	}
	rb.ring[rb.idx] = failed
	if failed {
		rb.failures++
	}
	rb.idx = (rb.idx + 1) % len(rb.ring)
	if rb.samples >= b.cfg.MinSamples &&
		float64(rb.failures) >= b.cfg.FailureRatio*float64(rb.samples) {
		b.trip(rb)
	}
}

// trip opens rb and resets its window, so the close after a healthy
// probe starts from a clean slate.
func (b *breakerSet) trip(rb *routeBreaker) {
	rb.state = breakerOpen
	rb.openedAt = b.now()
	rb.trips++
	rb.probing = false
	rb.samples, rb.failures, rb.idx = 0, 0, 0
	for i := range rb.ring {
		rb.ring[i] = false
	}
}

// report snapshots every route breaker, sorted by route name.
func (b *breakerSet) report() []obs.BreakerStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	names := make([]string, 0, len(b.routes))
	for name := range b.routes {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]obs.BreakerStats, 0, len(names))
	for _, name := range names {
		rb := b.routes[name]
		out = append(out, obs.BreakerStats{
			Route: name, State: rb.state,
			Samples: rb.samples, Failures: rb.failures,
			Trips: rb.trips, Rejected: rb.rejected,
		})
	}
	return out
}
