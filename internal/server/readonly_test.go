package server

// The disk-full degradation drill, over HTTP: an injected ENOSPC in
// the journal flips the node into typed read-only mode — async
// submissions refuse with a 503 read_only envelope, /healthz and
// /metricsz advertise the state — while the synchronous predict route
// keeps serving. Freeing space recovers the node through the probe,
// with no restart.

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"starperf/internal/fsx"
	"starperf/internal/journal"
)

const (
	roSim     = `{"topo":{"kind":"star","n":3},"v":4,"msg_len":8,"rate":0.002,"seed":21}`
	roPredict = `{"topo":{"kind":"star","n":4},"v":4,"msg_len":16,"rate":0.004}`
)

// newReadOnlyStack builds a journaled server whose journal disk is an
// fsx.Faulty, with recovery probes allowed on every refusal so the
// drill observes state transitions without waiting out a rate limit.
func newReadOnlyStack(t *testing.T) (*fsx.Faulty, *journal.Journal, *httptest.Server) {
	t.Helper()
	fa := fsx.NewFaulty(fsx.OS{}, fsx.FaultPlan{Seed: 1})
	j, _, err := journal.Open(journal.Options{Dir: t.TempDir(), FS: fa})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Workers: 1, Cache: cacheCfgDir(t.TempDir()), Journal: j, ProbeEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return fa, j, ts
}

func TestDiskFullFlipsReadOnlyAndRecovers(t *testing.T) {
	fa, j, ts := newReadOnlyStack(t)

	// Healthy: an async submit lands and /healthz carries no flag.
	resp := postJSON(t, ts.URL+"/v1/simulate", roSim)
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy submit: %d %s", resp.StatusCode, readBody(t, resp))
	}
	readBody(t, resp)

	// The disk fills. The next async submit's journal append hits
	// ENOSPC: the submission is refused (never acknowledged without
	// durability) and the journal trips read-only — after that,
	// submissions are refused up front with the typed envelope.
	fa.SetFull(true)
	resp = postJSON(t, ts.URL+"/v1/simulate", strings.Replace(roSim, `"seed":21`, `"seed":22`, 1))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit on full disk: %d %s", resp.StatusCode, readBody(t, resp))
	}
	readBody(t, resp)
	if !j.ReadOnly() {
		t.Fatal("journal not read-only after ENOSPC")
	}

	resp = postJSON(t, ts.URL+"/v1/simulate", strings.Replace(roSim, `"seed":21`, `"seed":23`, 1))
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("read-only submit: %d %s", resp.StatusCode, body)
	}
	var env struct {
		Error struct {
			Class        string `json:"class"`
			RetryAfterMS int64  `json:"retry_after_ms"`
		} `json:"error"`
	}
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatalf("503 body is not the v1 envelope: %v: %s", err, body)
	}
	if env.Error.Class != classReadOnly || env.Error.RetryAfterMS <= 0 {
		t.Fatalf("envelope = %+v, want class %q with a retry hint", env.Error, classReadOnly)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("read-only 503 missing Retry-After")
	}

	// Sync predict still serves: no durability is promised, none is
	// needed.
	resp = postJSON(t, ts.URL+"/v1/predict", roPredict)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sync predict during read-only: %d %s", resp.StatusCode, readBody(t, resp))
	}
	readBody(t, resp)

	// Health and metrics advertise the degradation.
	hb := getJSON(t, ts.URL+"/healthz")
	if hb["journal_readonly"] != true {
		t.Fatalf("healthz = %v, want journal_readonly true", hb)
	}
	mb := getJSON(t, ts.URL+"/metricsz")
	if mb["journal_readonly"] != true {
		t.Fatalf("metricsz = %v, want journal_readonly true", mb)
	}
	if n, ok := mb["read_only_refused"].(float64); !ok || n < 1 {
		t.Fatalf("metricsz read_only_refused = %v, want >= 1", mb["read_only_refused"])
	}

	// Space returns. The next submission's pre-flight probe clears the
	// mode and the submit goes through — recovery without restart.
	fa.SetFull(false)
	resp = postJSON(t, ts.URL+"/v1/simulate", strings.Replace(roSim, `"seed":21`, `"seed":24`, 1))
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Fatalf("submit after recovery: %d %s", resp.StatusCode, readBody(t, resp))
	}
	readBody(t, resp)
	if j.ReadOnly() {
		t.Fatal("journal still read-only after space returned")
	}
	hb = getJSON(t, ts.URL+"/healthz")
	if hb["journal_readonly"] == true {
		t.Fatal("healthz still advertises read-only after recovery")
	}
}

func TestDiskFullRefusesWholeBatch(t *testing.T) {
	fa, j, ts := newReadOnlyStack(t)
	fa.SetFull(true)
	// Trip the mode (the first append discovers the full disk).
	resp := postJSON(t, ts.URL+"/v1/simulate", roSim)
	readBody(t, resp)
	if !j.ReadOnly() {
		t.Fatal("journal not read-only after ENOSPC")
	}
	batch := `{"items":[{"kind":"simulate","config":` + roSim + `}]}`
	resp = postJSON(t, ts.URL+"/v1/jobs:batch", batch)
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("batch on read-only node: %d %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), classReadOnly) {
		t.Fatalf("batch refusal not typed read_only: %s", body)
	}
}

// getJSON fetches url and decodes the body into a generic map.
func getJSON(t *testing.T, url string) map[string]any {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d %s", url, resp.StatusCode, body)
	}
	var m map[string]any
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatal(err)
	}
	return m
}
