package server

// Regression tests for the guard's layering: the breaker's half-open
// probe slot is a one-token resource that only observe releases, so
// nothing between breakers.allow and the handler may bail out — and
// a panicking handler must still report its outcome.

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// tripRoute drives route's breaker open through observed failures.
func tripRoute(b *breakerSet, route string, n int) {
	for i := 0; i < n; i++ {
		b.observe(route, true)
	}
}

// TestShedDoesNotConsumeHalfOpenProbe: with the breaker open and its
// cooldown elapsed, a request shed by admission control must NOT
// consume the half-open probe slot — this is the realistic worst
// case (the backlog that tripped the breaker is still there at
// half-open time), and a leaked probe would pin the route at 503
// until restart. Once the backlog drains, a patient request must be
// admitted as the probe and close the breaker.
func TestShedDoesNotConsumeHalfOpenProbe(t *testing.T) {
	s, ts := newTestServer(t, Config{
		Workers: 1,
		Breaker: BreakerConfig{Window: 4, MinSamples: 2, FailureRatio: 0.5, Cooldown: time.Second},
	})
	clk := newFakeClock()
	withClock(s.breakers, clk)
	tripRoute(s.breakers, "/v1/predict", 2)
	clk.advance(2 * time.Second) // cooldown over: the next admitted request is THE probe

	gate := primeBacklog(t, s, "predict", 2*time.Second, 2)
	released := false
	defer func() {
		if !released {
			close(gate)
		}
	}()

	// Impatient request: shed with 429 by admission control, before
	// the breaker is consulted.
	req, err := http.NewRequest("POST", ts.URL+"/v1/predict", strings.NewReader(predictS4))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(deadlineHeader, "100ms")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if body := readBody(t, resp); resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("impatient request: %d %s, want 429 shed", resp.StatusCode, body)
	}

	// Drain the backlog, then a patient request must get the probe
	// slot the shed request left untouched — and its success closes
	// the breaker.
	close(gate)
	released = true
	for tries := 0; ; tries++ {
		st := s.pool.Stats()
		if st.Queued+st.Running == 0 {
			break
		}
		if tries > 5000 {
			t.Fatal("backlog never drained")
		}
		time.Sleep(time.Millisecond)
	}
	req2, err := http.NewRequest("POST", ts.URL+"/v1/predict", strings.NewReader(predictS4))
	if err != nil {
		t.Fatal(err)
	}
	req2.Header.Set("Content-Type", "application/json")
	req2.Header.Set(deadlineHeader, "1h")
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	if body := readBody(t, resp2); resp2.StatusCode != http.StatusOK {
		t.Fatalf("probe request: %d %s, want 200 (probe slot leaked?)", resp2.StatusCode, body)
	}
	if st := s.breakers.report(); len(st) != 1 || st[0].State != breakerClosed {
		t.Fatalf("breaker state after healthy probe: %+v, want closed", st)
	}
}

// TestPanickingProbeReleasesSlot: a handler panic is observed as a
// failure (via the guard's deferred observe), so a panicking
// half-open probe re-opens the breaker instead of leaking the probe
// slot, and the next cooldown admits a fresh probe.
func TestPanickingProbeReleasesSlot(t *testing.T) {
	s, err := New(Config{
		Workers: 1,
		Breaker: BreakerConfig{Window: 4, MinSamples: 2, FailureRatio: 0.5, Cooldown: time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Close(ctx); err != nil {
			t.Errorf("server close: %v", err)
		}
	})
	clk := newFakeClock()
	withClock(s.breakers, clk)

	boom := s.guard("/x", func(w http.ResponseWriter, r *http.Request) { panic("boom") })
	calm := s.guard("/x", func(w http.ResponseWriter, r *http.Request) {})
	call := func(h http.HandlerFunc) (panicked bool) {
		defer func() {
			panicked = recover() != nil
		}()
		h(httptest.NewRecorder(), httptest.NewRequest("POST", "/x", nil))
		return false
	}

	// Two panics are two observed failures: the breaker trips.
	if !call(boom) || !call(boom) {
		t.Fatal("handler did not panic")
	}
	if st := s.breakers.report(); len(st) != 1 || st[0].State != breakerOpen || st[0].Trips != 1 {
		t.Fatalf("breaker after two panics: %+v, want open after 1 trip", st)
	}

	// The half-open probe panics: the slot must be released by
	// re-opening, not leaked in the probing state.
	clk.advance(2 * time.Second)
	if !call(boom) {
		t.Fatal("probe handler did not panic")
	}
	if st := s.breakers.report(); st[0].State != breakerOpen || st[0].Trips != 2 {
		t.Fatalf("breaker after panicking probe: %+v, want re-opened (2 trips)", st)
	}

	// Next cooldown: a healthy probe still gets through and closes it.
	clk.advance(2 * time.Second)
	if call(calm) {
		t.Fatal("calm handler panicked")
	}
	if st := s.breakers.report(); st[0].State != breakerClosed {
		t.Fatalf("breaker after healthy probe: %+v, want closed", st)
	}
}
