package server

// POST /v1/jobs:batch tests: mixed per-item outcomes, the single
// journal group commit for the accepted set, partial deadline-priced
// shedding (per-item queue_full entries, accepted subset answering
// byte-identically to standalone submits), cluster split-by-owner
// forwarding, and the request-shape limits.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"starperf/internal/fsx"
	"starperf/internal/journal"
)

// batchBody marshals items into a POST /v1/jobs:batch body.
func batchBody(t *testing.T, items ...string) string {
	t.Helper()
	return `{"items":[` + strings.Join(items, ",") + `]}`
}

// postBatch posts a batch and decodes the 200 response.
func postBatch(t *testing.T, base, body string) batchResponse {
	t.Helper()
	resp := postJSON(t, base+"/v1/jobs:batch", body)
	raw := readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: %d %s", resp.StatusCode, raw)
	}
	var br batchResponse
	if err := json.Unmarshal(raw, &br); err != nil {
		t.Fatalf("batch body %s: %v", raw, err)
	}
	return br
}

// TestBatchMixedOutcomes: one batch carrying a valid predict, a valid
// simulate, an unknown kind and a malformed config answers all four
// positionally — errors inline as envelope objects, acceptances with
// the ids their standalone submissions would have gotten.
func TestBatchMixedOutcomes(t *testing.T) {
	j, _, err := journal.Open(journal.Options{Dir: t.TempDir(), FS: fsx.OS{}})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	_, ts := newTestServer(t, Config{Workers: 2, Journal: j})

	br := postBatch(t, ts.URL, batchBody(t,
		`{"kind":"predict","config":`+predictS4+`}`,
		`{"kind":"simulate","config":`+recoverySim+`}`,
		`{"kind":"divine","config":{}}`,
		`{"kind":"predict","config":{"vee":4}}`,
	))
	if len(br.Items) != 4 {
		t.Fatalf("%d items, want 4", len(br.Items))
	}
	if br.Items[0].ID != predictID(t) || br.Items[0].Error != nil {
		t.Fatalf("predict item %+v", br.Items[0])
	}
	if br.Items[1].ID != simulateID(t) || br.Items[1].Error != nil {
		t.Fatalf("simulate item %+v", br.Items[1])
	}
	for _, i := range []int{2, 3} {
		e := br.Items[i].Error
		if e == nil || e.Class != "invalid_config" {
			t.Fatalf("item %d = %+v, want invalid_config error", i, br.Items[i])
		}
	}

	// Both accepted jobs complete and answer byte-identically to
	// standalone submissions on a pristine server.
	if got := jobResultBody(t, ts.URL, br.Items[0].ID); string(got) != string(controlPredict(t)) {
		t.Fatalf("batched predict differs from control: %s", got)
	}
	if got := jobResultBody(t, ts.URL, br.Items[1].ID); string(got) != string(controlSimulate(t)) {
		t.Fatalf("batched simulate differs from control: %s", got)
	}

	// Resubmitting the same batch hits the cache: done immediately, no
	// new submissions.
	br2 := postBatch(t, ts.URL, batchBody(t, `{"kind":"predict","config":`+predictS4+`}`))
	if br2.Items[0].Status != "done" || br2.Items[0].ID != predictID(t) {
		t.Fatalf("cached resubmit %+v", br2.Items[0])
	}

	// /metricsz carries the batch counters.
	mresp, err := http.Get(ts.URL + "/metricsz")
	if err != nil {
		t.Fatal(err)
	}
	var mz Metricsz
	if err := json.Unmarshal(readBody(t, mresp), &mz); err != nil {
		t.Fatal(err)
	}
	if mz.Batch.Batches != 2 || mz.Batch.Items != 5 || mz.Batch.MaxItems != 4 {
		t.Fatalf("batch stats %+v", mz.Batch)
	}
}

// TestBatchSingleJournalCommit: the accepted set of one batch becomes
// ONE journal commit — the group's accepted records all land in a
// single write+fsync, visible as a MaxBatch at least the batch size.
func TestBatchSingleJournalCommit(t *testing.T) {
	j, _, err := journal.Open(journal.Options{Dir: t.TempDir(), FS: fsx.OS{}})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	_, ts := newTestServer(t, Config{Workers: 1, Journal: j})

	// Six distinct predicts (rate varies) — six accepted records.
	items := make([]string, 6)
	ids := make([]string, 6)
	for i := range items {
		cfg := fmt.Sprintf(`{"topo":{"kind":"star","n":4},"v":4,"msg_len":16,"rate":0.00%d}`, i+1)
		items[i] = `{"kind":"predict","config":` + cfg + `}`
		var req PredictRequest
		if err := json.Unmarshal([]byte(cfg), &req); err != nil {
			t.Fatal(err)
		}
		if ids[i], err = req.withDefaults().hash(); err != nil {
			t.Fatal(err)
		}
	}
	br := postBatch(t, ts.URL, batchBody(t, items...))
	for i, it := range br.Items {
		if it.Error != nil || it.ID != ids[i] {
			t.Fatalf("item %d = %+v, want id %s", i, it, ids[i])
		}
	}
	st := j.Stats()
	if st.MaxBatch < 6 {
		t.Fatalf("journal MaxBatch %d after 6-item batch, want ≥6 (accepted set split across commits)", st.MaxBatch)
	}
	for _, id := range ids {
		jobResultBody(t, ts.URL, id)
	}
}

// TestBatchAdmissionPartialShed (satellite 4): against a priced-out
// backlog, the expensive item gets the per-item queue_full entry — the
// 429 a standalone submit would have received, retry hint included —
// while a cheap LATER item still clears the same budget (acceptance is
// per item, not prefix-only) and completes byte-identically to its
// standalone control.
func TestBatchAdmissionPartialShed(t *testing.T) {
	want := controlSimulate(t)
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 64})
	// Backlog: 2 blocked untyped jobs priced at the all-kinds fallback
	// mean — (2s predict + 1ms simulate)/2 ≈ 1s each ⇒ est ≈ 2s.
	gate := primeBacklog(t, s, "predict", 2*time.Second, 2)
	released := false
	defer func() {
		if !released {
			close(gate)
		}
	}()
	s.pool.ObserveExec("simulate", time.Millisecond)

	// Deadline 3.5s: predict (est 2s + cost 2s = 4s) is priced out,
	// simulate (2s + 1ms) fits.
	req, err := http.NewRequest("POST", ts.URL+"/v1/jobs:batch", strings.NewReader(batchBody(t,
		`{"kind":"predict","config":`+predictS4+`}`,
		`{"kind":"simulate","config":`+recoverySim+`}`,
	)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(deadlineHeader, "3500ms")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	raw := readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: %d %s", resp.StatusCode, raw)
	}
	var br batchResponse
	if err := json.Unmarshal(raw, &br); err != nil {
		t.Fatal(err)
	}
	shed := br.Items[0].Error
	if shed == nil || shed.Class != "queue_full" {
		t.Fatalf("priced-out item %+v, want queue_full", br.Items[0])
	}
	// The retry hint reflects the backlog the item saw: ≈4s, surely
	// past the 3.5s deadline it missed and under a minute.
	if shed.RetryAfterMS < 3500 || shed.RetryAfterMS > 60000 {
		t.Fatalf("shed retry_after_ms %d, want ≈4000", shed.RetryAfterMS)
	}
	if br.Items[1].Error != nil || br.Items[1].ID != simulateID(t) {
		t.Fatalf("cheap later item %+v, want accepted", br.Items[1])
	}

	// The accepted item completes byte-identically to its standalone
	// control once the gate opens; the shed is counted.
	close(gate)
	released = true
	if got := jobResultBody(t, ts.URL, br.Items[1].ID); string(got) != string(want) {
		t.Fatalf("admitted subset differs from control:\n %s\n %s", got, want)
	}
	if s.batchShed.Load() != 1 || s.shed.Load() != 1 {
		t.Fatalf("shed counters batch=%d total=%d, want 1/1", s.batchShed.Load(), s.shed.Load())
	}
}

// TestClusterBatchSplitsByOwner: a batch posted to one member is split
// by ring owner — peer-owned items forwarded as sub-batches, replies
// merged by index — and every item answers byte-identically to its
// control through a cross-node poll.
func TestClusterBatchSplitsByOwner(t *testing.T) {
	wantP, wantS := controlPredict(t), controlSimulate(t)
	tc := newTestCluster(t, 3, nil)
	pOwner := tc.order(predictID(t))[0]
	sOwner := tc.order(simulateID(t))[0]

	// Post to a member owning at most one of the two ids (with 3
	// members and 2 ids there is always one).
	entry := tc.addrs[0]
	for _, a := range tc.addrs {
		if a != pOwner || a != sOwner {
			entry = a
			break
		}
	}
	br := postBatch(t, tc.url(entry), batchBody(t,
		`{"kind":"predict","config":`+predictS4+`}`,
		`{"kind":"simulate","config":`+recoverySim+`}`,
	))
	if br.Items[0].Error != nil || br.Items[0].ID != predictID(t) {
		t.Fatalf("predict item %+v", br.Items[0])
	}
	if br.Items[1].Error != nil || br.Items[1].ID != simulateID(t) {
		t.Fatalf("simulate item %+v", br.Items[1])
	}

	// Each item ran (or is running) on its ring owner; the entry node
	// forwarded what it did not own.
	var wantForwarded uint64
	for _, owner := range []string{pOwner, sOwner} {
		if owner != entry {
			wantForwarded++
		}
	}
	if got := tc.srvs[entry].cluster.forwarded.Load(); got != wantForwarded {
		t.Fatalf("entry forwarded %d items, want %d", got, wantForwarded)
	}

	// Both results poll back from the entry node byte-identical to the
	// single-node controls.
	if got := jobResultBody(t, tc.url(entry), predictID(t)); string(got) != string(wantP) {
		t.Fatalf("cluster predict differs from control: %s", got)
	}
	if got := jobResultBody(t, tc.url(entry), simulateID(t)); string(got) != string(wantS) {
		t.Fatalf("cluster simulate differs from control: %s", got)
	}
}

// TestClusterBatchFallsBackWhenOwnerDies: killing a peer owner does
// not fail its sub-batch — the entry node computes those items locally
// and the batch still completes against control bytes.
func TestClusterBatchFallsBackWhenOwnerDies(t *testing.T) {
	want := controlPredict(t)
	tc := newTestCluster(t, 3, nil)
	order := tc.order(predictID(t))
	owner, entry := order[0], order[1]
	tc.kill(owner)

	br := postBatch(t, tc.url(entry), batchBody(t,
		`{"kind":"predict","config":`+predictS4+`}`,
	))
	if br.Items[0].Error != nil || br.Items[0].ID != predictID(t) {
		t.Fatalf("item after owner death %+v", br.Items[0])
	}
	if got := jobResultBody(t, tc.url(entry), predictID(t)); string(got) != string(want) {
		t.Fatalf("fallback result differs from control: %s", got)
	}
	cn := tc.srvs[entry].cluster
	if cn.localFallbacks.Load() == 0 {
		t.Fatal("owner death left no local-fallback trace")
	}
}

// TestBatchShapeLimits: an empty batch and an oversized batch are
// whole-request errors, not per-item ones.
func TestBatchShapeLimits(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	resp := postJSON(t, ts.URL+"/v1/jobs:batch", `{"items":[]}`)
	body := readBody(t, resp)
	if resp.StatusCode != 400 || !strings.Contains(string(body), "invalid_config") {
		t.Fatalf("empty batch: %d %s", resp.StatusCode, body)
	}

	items := make([]string, maxBatchItems+1)
	for i := range items {
		items[i] = `{"kind":"predict","config":` + predictS4 + `}`
	}
	resp = postJSON(t, ts.URL+"/v1/jobs:batch", batchBody(t, items...))
	body = readBody(t, resp)
	if resp.StatusCode != 400 || !strings.Contains(string(body), "invalid_config") {
		t.Fatalf("oversized batch: %d %s", resp.StatusCode, body)
	}
}
