// Package server is the HTTP serving layer of the repository
// (cmd/starperfd): a stdlib net/http JSON API over the analytical
// model, the flit-level simulator and the Figure 1 sweep harness.
//
// Layering. Requests (request.go) normalise their defaults and hash
// into a content id (internal/jobs.Hash). Synchronous evaluation
// (POST /v1/predict, POST /v1/bounds) and asynchronous jobs (POST /v1/simulate,
// POST /v1/sweep; GET /v1/jobs/{id}) both run on one bounded
// jobs.Pool — singleflight on the content id, typed backpressure —
// and store their marshalled results in the two-tier internal/cache
// keyed by the same id, so an identical request is a cache hit with
// a byte-identical body, an in-flight duplicate shares the
// computation, and only genuinely new work costs anything.
//
// Operational surface: GET /healthz liveness, GET /metricsz (pool
// depth, cache hit/miss/evict counters, per-route latency
// histograms), request-body size limits, a server-wide concurrency
// cap, and graceful shutdown that drains in-flight jobs
// (cmd/starperfd wires SIGINT/SIGTERM to Close).
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sync/atomic"
	"time"

	"starperf/internal/cache"
	"starperf/internal/cfgerr"
	"starperf/internal/cluster"
	"starperf/internal/jobs"
	"starperf/internal/journal"
	"starperf/internal/model"
	"starperf/internal/obs"
	"starperf/internal/routing"
)

// Config sizes a Server. The zero value is usable.
type Config struct {
	// Workers and QueueDepth size the job pool (defaults NumCPU
	// and 256).
	Workers    int
	QueueDepth int
	// JobTimeout bounds one job's wall clock (default 0: jobs are
	// cycle-bounded by their own configs).
	JobTimeout time.Duration
	// Cache configures the result store (see cache.Config).
	Cache cache.Config
	// MaxBodyBytes bounds request bodies (default 1 MiB).
	MaxBodyBytes int64
	// MaxInFlight caps concurrently served requests; excess requests
	// are refused with 503 (default 256).
	MaxInFlight int
	// Journal, when set, makes the job pool crash-safe: lifecycle
	// records are fsynced to this WAL and Recover replays what a
	// crash interrupted. The Server does not own the journal — the
	// caller opens it (journal.Open) and closes it after Close.
	Journal *journal.Journal
	// DefaultDeadline is the patience assumed for requests that carry
	// neither a context deadline nor an X-Starperf-Deadline header
	// (default 30s); admission control sheds a request whose
	// estimated queue wait exceeds its deadline.
	DefaultDeadline time.Duration
	// Breaker tunes the per-route circuit breaker guarding the
	// compute routes.
	Breaker BreakerConfig
	// Ring, when set, makes this node one member of a sharded cluster
	// (see internal/cluster and cluster.go): compute requests for ids
	// a peer owns are forwarded there, failing over down the ring when
	// the owner is unreachable; finished results are filled from peer
	// caches after verification; /metricsz reports the routing
	// counters. Every member must build its ring from the same member
	// list, or nodes disagree about ownership.
	Ring *cluster.Ring
	// PeerHTTP is the HTTP client peers are reached with (default a
	// plain http.Client; tests inject one bound to test listeners).
	PeerHTTP *http.Client
	// PeerTimeout bounds one peer cache fill or cross-node job lookup
	// (default 2s). Forwarded compute requests are budgeted by the
	// caller's own deadline instead.
	PeerTimeout time.Duration
	// PeerScheme is the URL scheme peers are reached by (default
	// "http" — cluster traffic is assumed to run on a trusted
	// network, as the README documents).
	PeerScheme string
	// PeerBreaker tunes the per-peer circuit breakers that keep a
	// dead or flapping peer probed instead of hammered.
	PeerBreaker BreakerConfig
	// ProbeEvery rate-limits the journal space probes a read-only node
	// issues before refusing an async submit (default 1s; negative
	// probes on every refusal, which drills use so recovery is
	// immediate). Irrelevant without a Journal.
	ProbeEvery time.Duration
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.NumCPU()
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 256
	}
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = 30 * time.Second
	}
	if c.ProbeEvery == 0 {
		c.ProbeEvery = time.Second
	}
	return c
}

// Server routes the starperfd API. Construct with New, mount
// Handler, and Close on the way out.
type Server struct {
	pool     *jobs.Pool
	cache    *cache.Cache
	journal  *journal.Journal
	mux      *http.ServeMux
	metrics  *metrics
	breakers *breakerSet
	cluster  *peerNet // nil when unclustered
	sem      chan struct{}
	maxBody  int64
	workers  int // pool size, for batch admission pricing

	defaultDeadline time.Duration
	shed            atomic.Uint64

	// Read-only degradation (PR 12): when the journal trips on
	// ENOSPC, async submits are refused until a probe proves space
	// returned. lastProbe rate-limits those probes; readOnly503
	// counts the refusals for /metricsz.
	probeEvery  time.Duration
	lastProbe   atomic.Int64
	readOnly503 atomic.Uint64

	// Batch ingestion counters (PR 10), reported on /metricsz.
	batches    atomic.Uint64
	batchItems atomic.Uint64
	batchShed  atomic.Uint64
	batchMax   atomic.Int64
}

// New builds a Server and starts its job pool.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	store, err := cache.New(cfg.Cache)
	if err != nil {
		return nil, err
	}
	s := &Server{
		pool: jobs.NewPool(jobs.PoolConfig{
			Workers:    cfg.Workers,
			QueueDepth: cfg.QueueDepth,
			JobTimeout: cfg.JobTimeout,
			Journal:    cfg.Journal,
		}),
		cache:           store,
		journal:         cfg.Journal,
		mux:             http.NewServeMux(),
		metrics:         newMetrics(),
		breakers:        newBreakerSet(cfg.Breaker),
		sem:             make(chan struct{}, cfg.MaxInFlight),
		maxBody:         cfg.MaxBodyBytes,
		workers:         cfg.Workers,
		defaultDeadline: cfg.DefaultDeadline,
		probeEvery:      cfg.ProbeEvery,
	}
	if cfg.Ring != nil {
		s.cluster = newPeerNet(cfg)
	}
	// The three compute routes run behind the breaker and admission
	// control; the read-only operational routes never shed — you must
	// be able to poll a job or read /metricsz on an overloaded server.
	s.mux.HandleFunc("POST /v1/predict", s.instrument("/v1/predict", s.guard("/v1/predict", s.handlePredict)))
	s.mux.HandleFunc("POST /v1/bounds", s.instrument("/v1/bounds", s.guard("/v1/bounds", s.handleBounds)))
	s.mux.HandleFunc("POST /v1/simulate", s.instrument("/v1/simulate", s.guard("/v1/simulate", s.handleSimulate)))
	s.mux.HandleFunc("POST /v1/sweep", s.instrument("/v1/sweep", s.guard("/v1/sweep", s.handleSweep)))
	// The batch route runs its own per-item admission (one decision
	// priced at batch cost, partial acceptance — see batch.go), so it
	// mounts under instrument only, not guard.
	s.mux.HandleFunc("POST /v1/jobs:batch", s.instrument("/v1/jobs:batch", s.handleBatch))
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.instrument("/v1/jobs", s.handleJob))
	s.mux.HandleFunc("GET /v1/ring/{id}", s.instrument("/v1/ring", s.handleRing))
	s.mux.HandleFunc("GET /healthz", s.instrument("/healthz", s.handleHealthz))
	s.mux.HandleFunc("GET /metricsz", s.instrument("/metricsz", s.handleMetricsz))
	return s, nil
}

// Recover replays a journal's incomplete records into the pool: each
// is rebuilt from its journaled kind and canonical request body, or
// skipped when the cache already holds its result. Call once after
// New, before serving traffic.
func (s *Server) Recover(rec *journal.Recovery) jobs.Recovery {
	if rec == nil {
		return jobs.Recovery{}
	}
	return s.pool.Recover(rec.Incomplete, func(id, kind string, req []byte) (jobs.Func, bool, error) {
		// A verifying read, not Contains: Contains only stats the disk
		// file, and journaling a job done on the strength of a corrupt
		// entry would 404 it forever — Get checksums the entry,
		// quarantining a corrupt one so the job is re-enqueued and
		// recomputed instead.
		if _, ok := s.cache.Get(id); ok {
			return nil, false, nil
		}
		run, err := rebuildRun(kind, req)
		if err != nil {
			return nil, false, err
		}
		return s.runAndStore(id, run), true, nil
	})
}

// rebuildRun reconstitutes a journaled request body into its typed
// runner — the inverse of the meta each handler journals on submit.
func rebuildRun(kind string, req []byte) (func() (any, error), error) {
	switch kind {
	case "predict":
		var r PredictRequest
		if err := json.Unmarshal(req, &r); err != nil {
			return nil, fmt.Errorf("server: journaled predict body: %w", err)
		}
		return func() (any, error) { return r.run() }, nil
	case "bounds":
		var r BoundsRequest
		if err := json.Unmarshal(req, &r); err != nil {
			return nil, fmt.Errorf("server: journaled bounds body: %w", err)
		}
		return func() (any, error) { return r.run() }, nil
	case "simulate":
		var r SimulateRequest
		if err := json.Unmarshal(req, &r); err != nil {
			return nil, fmt.Errorf("server: journaled simulate body: %w", err)
		}
		return func() (any, error) { return r.run() }, nil
	case "sweep":
		var r SweepRequest
		if err := json.Unmarshal(req, &r); err != nil {
			return nil, fmt.Errorf("server: journaled sweep body: %w", err)
		}
		return func() (any, error) { return r.run() }, nil
	default:
		return nil, fmt.Errorf("server: journaled job of unknown kind %q", kind)
	}
}

// Handler returns the routed API.
func (s *Server) Handler() http.Handler { return s.mux }

// Pool exposes the job pool (metrics, tests).
func (s *Server) Pool() *jobs.Pool { return s.pool }

// Cache exposes the result store (metrics, tests).
func (s *Server) Cache() *cache.Cache { return s.cache }

// Close drains the job pool within ctx's budget.
func (s *Server) Close(ctx context.Context) error { return s.pool.Shutdown(ctx) }

// statusWriter records the response code for metrics.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with the concurrency cap, the body
// limit and per-route latency accounting.
func (s *Server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		select {
		case s.sem <- struct{}{}:
			defer func() { <-s.sem }()
		default:
			s.writeError(w, r, http.StatusServiceUnavailable,
				classQueueFull, "server at concurrency cap", s.queueWait())
			return
		}
		if r.Body != nil {
			r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)
		}
		if s.cluster != nil {
			// Name the serving node; a relayed peer response overwrites
			// this with the node that actually did the work.
			w.Header().Set(nodeHeader, s.cluster.ring.Self())
		}
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		h(sw, r)
		s.metrics.observe(route, sw.status, time.Since(start))
	}
}

// guard stacks the failure-protection layers in front of a compute
// handler: deadline-aware admission control first, the circuit
// breaker second. The order matters — breakers.allow consumes the
// single half-open probe slot, and only observe releases it, so
// every path between the two must reach the handler. Shedding after
// allow would leak the probe and pin the route open forever (likely,
// too: at half-open time the backlog that tripped the breaker is
// often still there). Admission sheds and breaker rejections return
// before allow, so neither feeds the breaker's outcome window — its
// own refusals would otherwise poison the sample.
func (s *Server) guard(route string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if est, deadline := s.estWait(route), s.requestDeadline(r); est > deadline {
			s.shed.Add(1)
			s.writeError(w, r, http.StatusTooManyRequests, classQueueFull,
				fmt.Sprintf("estimated queue wait %s exceeds request deadline %s",
					est.Round(time.Millisecond), deadline.Round(time.Millisecond)),
				est)
			return
		}
		ok, wait := s.breakers.allow(route)
		if !ok {
			s.writeError(w, r, http.StatusServiceUnavailable, classQueueFull,
				"circuit breaker open for "+route, wait)
			return
		}
		gw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		// Observe via defer so a panicking handler still reports (as a
		// failure — net/http turns the panic into a dead connection);
		// otherwise a half-open probe that panicked would leak the
		// probe slot exactly like a shed one.
		panicked := true
		defer func() {
			s.breakers.observe(route, panicked || gw.status >= 500)
		}()
		h(gw, r)
		panicked = false
	}
}

// jobBody is the async-endpoint envelope.
type jobBody struct {
	ID     string          `json:"id"`
	Status jobs.Status     `json:"status"`
	Error  string          `json:"error,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
}

// readBody drains a request body into memory (already bounded by
// MaxBytesReader). Handlers keep the raw bytes because the cluster
// path forwards them verbatim to a peer — which re-normalises and
// re-hashes them to the same content id.
func (s *Server) readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	raw, err := io.ReadAll(r.Body)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.writeError(w, r, http.StatusRequestEntityTooLarge, classInvalidConfig,
				fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit), noRetry)
			return nil, false
		}
		s.writeError(w, r, http.StatusBadRequest, classInvalidConfig,
			"reading request: "+err.Error(), noRetry)
		return nil, false
	}
	return raw, true
}

// decode parses a JSON request body strictly — unknown fields are
// errors, because a silently dropped typo would mint a fresh cache
// key for a request the caller never meant to make.
func (s *Server) decode(w http.ResponseWriter, r *http.Request, raw []byte, v any) bool {
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		s.writeError(w, r, http.StatusBadRequest, classInvalidConfig,
			"malformed request: "+err.Error(), noRetry)
		return false
	}
	return true
}

// writeErr maps a computation or submission error onto the wire via
// classifyErr.
func (s *Server) writeErr(w http.ResponseWriter, r *http.Request, err error) {
	status, we := s.classifyErr(err)
	retry := noRetry
	if we.RetryAfterMS > 0 {
		retry = time.Duration(we.RetryAfterMS) * time.Millisecond
	}
	s.writeError(w, r, status, we.Class, we.Message, retry)
}

// classifyErr maps an error onto the v1 wire contract: status code
// plus the wireError a standalone request would receive. The batch
// handler uses it directly to build per-item entries.
func (s *Server) classifyErr(err error) (int, wireError) {
	var unreachable *routing.UnreachableError
	switch {
	case errors.Is(err, cfgerr.ErrInvalid):
		return http.StatusBadRequest, wireError{Class: classInvalidConfig, Message: err.Error()}
	case errors.Is(err, model.ErrSaturated):
		return http.StatusUnprocessableEntity, wireError{Class: classSaturated, Message: err.Error()}
	case errors.As(err, &unreachable):
		return http.StatusUnprocessableEntity, wireError{Class: classUnreachable, Message: err.Error()}
	case errors.Is(err, jobs.ErrQueueFull):
		return http.StatusTooManyRequests, wireError{
			Class: classQueueFull, Message: err.Error(),
			RetryAfterMS: retryMillis(s.queueWait()),
		}
	case errors.Is(err, jobs.ErrPoolClosed):
		return http.StatusServiceUnavailable, wireError{
			Class: classQueueFull, Message: err.Error(),
			RetryAfterMS: retryMillis(time.Second),
		}
	case errors.Is(err, jobs.ErrReadOnly):
		// The pool-level backstop of the journalReadOnly gate: a
		// submission that raced past the handler check still refuses
		// with the read_only contract.
		return http.StatusServiceUnavailable, wireError{
			Class: classReadOnly, Message: err.Error(),
			RetryAfterMS: retryMillis(time.Second),
		}
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return http.StatusGatewayTimeout, wireError{Class: classTimeout, Message: err.Error()}
	default:
		return http.StatusInternalServerError, wireError{Class: classInternal, Message: err.Error()}
	}
}

// retryMillis converts a wait estimate to the envelope's
// retry_after_ms, minimum 1 ms so a retryable class always carries a
// positive hint.
func retryMillis(d time.Duration) int64 {
	if ms := d.Milliseconds(); ms > 1 {
		return ms
	}
	return 1
}

// writeJSON emits v with the given status.
func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v) // the connection is the only failure mode left
}

// writeResult emits a finished computation's stored bytes verbatim —
// the response body is exactly the cached (and therefore exactly the
// recomputed) encoding; hit/miss state travels in headers so it can
// never perturb the body. The content sum rides along (PR 12) so any
// hop between us and the caller — a forwarding peer, a retrying
// client — can verify the bytes arrived intact.
func (s *Server) writeResult(w http.ResponseWriter, id, cacheState string, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set(jobHeader, id)
	w.Header().Set(cacheHeader, cacheState)
	w.Header().Set(resultSumHeader, resultSum(body))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(body)
}

// handlePredict serves POST /v1/predict synchronously: cache hit →
// stored bytes; otherwise evaluate on the pool (deduplicated against
// concurrent identical requests) and store.
func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	raw, ok := s.readBody(w, r)
	if !ok {
		return
	}
	var req PredictRequest
	if !s.decode(w, r, raw, &req) {
		return
	}
	req = req.withDefaults()
	if err := req.validate(); err != nil {
		s.writeErr(w, r, err)
		return
	}
	id, err := req.hash()
	if err != nil {
		s.writeErr(w, r, err)
		return
	}
	if body, ok := s.cache.Get(id); ok {
		s.writeResult(w, id, "hit", body)
		return
	}
	if s.clusterRoute(w, r, id, raw, true) {
		return
	}
	meta, err := submitMeta("predict", req)
	if err != nil {
		s.writeErr(w, r, err)
		return
	}
	v, err := s.pool.DoMeta(r.Context(), id, meta, s.runAndStore(id, func() (any, error) { return req.run() }))
	if err != nil {
		s.writeErr(w, r, err)
		return
	}
	s.writeResult(w, id, "miss", v.([]byte))
}

// handleBounds serves POST /v1/bounds synchronously, exactly like
// /v1/predict: cache hit → stored bytes; otherwise evaluate the bound
// engine on the pool and store. An unboundable operating point is a
// valid 200 body ({"unboundable":true}), not an error.
func (s *Server) handleBounds(w http.ResponseWriter, r *http.Request) {
	raw, ok := s.readBody(w, r)
	if !ok {
		return
	}
	var req BoundsRequest
	if !s.decode(w, r, raw, &req) {
		return
	}
	req = req.withDefaults()
	if err := req.validate(); err != nil {
		s.writeErr(w, r, err)
		return
	}
	id, err := req.hash()
	if err != nil {
		s.writeErr(w, r, err)
		return
	}
	if body, ok := s.cache.Get(id); ok {
		s.writeResult(w, id, "hit", body)
		return
	}
	if s.clusterRoute(w, r, id, raw, true) {
		return
	}
	meta, err := submitMeta("bounds", req)
	if err != nil {
		s.writeErr(w, r, err)
		return
	}
	v, err := s.pool.DoMeta(r.Context(), id, meta, s.runAndStore(id, func() (any, error) { return req.run() }))
	if err != nil {
		s.writeErr(w, r, err)
		return
	}
	s.writeResult(w, id, "miss", v.([]byte))
}

// submitMeta packs a request's journalable identity: the kind plus
// the canonical body a restart will rebuild the job from (the same
// canonicalisation the content hash uses, so the journal and the
// cache agree on what the job is).
func submitMeta(kind string, req any) (jobs.Meta, error) {
	body, err := jobs.CanonicalJSON(req)
	if err != nil {
		return jobs.Meta{}, err
	}
	return jobs.Meta{Kind: kind, Req: body}, nil
}

// runAndStore adapts a request runner into a pool Func that caches
// its marshalled result under id and returns the exact stored bytes.
func (s *Server) runAndStore(id string, run func() (any, error)) jobs.Func {
	return func(ctx context.Context) (any, error) {
		res, err := run()
		if err != nil {
			return nil, err
		}
		body, err := json.Marshal(res)
		if err != nil {
			return nil, err
		}
		s.cache.Put(id, body)
		return body, nil
	}
}

// journalReadOnly reports whether async submissions must be refused
// because the journal cannot make their acceptance durable (ENOSPC).
// Before refusing, it issues at most one space probe per ProbeEvery,
// so a disk that recovered flips the node back to read-write on the
// next submit instead of waiting for organic sync traffic to commit
// something. Sync routes never consult this: they acknowledge nothing
// they have not already computed.
func (s *Server) journalReadOnly() bool {
	if s.journal == nil || !s.journal.ReadOnly() {
		return false
	}
	now := time.Now().UnixNano()
	last := s.lastProbe.Load()
	if now-last >= int64(s.probeEvery) && s.lastProbe.CompareAndSwap(last, now) {
		if s.journal.Probe() == nil {
			return false
		}
	}
	return s.journal.ReadOnly()
}

// refuseReadOnly emits the read-only 503: the v1 envelope with the
// read_only class and a retry hint sized to the probe interval — the
// soonest a retry could observe a recovered disk.
func (s *Server) refuseReadOnly(w http.ResponseWriter, r *http.Request) {
	s.readOnly503.Add(1)
	retry := s.probeEvery
	if retry < time.Second {
		retry = time.Second
	}
	s.writeError(w, r, http.StatusServiceUnavailable, classReadOnly,
		"journal is read-only (disk full): async submissions refused until space returns", retry)
}

// submitAsync is the shared shape of /v1/simulate and /v1/sweep: an
// already-cached result answers done immediately; otherwise the job
// is enqueued (or joined, if an identical one is in flight) and the
// caller polls GET /v1/jobs/{id}. A read-only journal refuses the
// submit instead: a 202 is a durability promise this node currently
// cannot keep.
func (s *Server) submitAsync(w http.ResponseWriter, r *http.Request, id string, meta jobs.Meta, fn jobs.Func) {
	if s.cache.Contains(id) {
		s.writeJSON(w, http.StatusOK, jobBody{ID: id, Status: jobs.StatusDone})
		return
	}
	if s.journalReadOnly() {
		s.refuseReadOnly(w, r)
		return
	}
	j, err := s.pool.SubmitMeta(id, meta, fn)
	if err != nil {
		s.writeErr(w, r, err)
		return
	}
	s.writeJSON(w, http.StatusAccepted, jobBody{ID: id, Status: j.Status()})
}

// handleSimulate serves POST /v1/simulate.
func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	raw, ok := s.readBody(w, r)
	if !ok {
		return
	}
	var req SimulateRequest
	if !s.decode(w, r, raw, &req) {
		return
	}
	req = req.withDefaults()
	if err := req.validate(); err != nil {
		s.writeErr(w, r, err)
		return
	}
	id, err := req.hash()
	if err != nil {
		s.writeErr(w, r, err)
		return
	}
	if s.cache.Contains(id) {
		s.writeJSON(w, http.StatusOK, jobBody{ID: id, Status: jobs.StatusDone})
		return
	}
	if s.clusterRoute(w, r, id, raw, false) {
		return
	}
	meta, err := submitMeta("simulate", req)
	if err != nil {
		s.writeErr(w, r, err)
		return
	}
	s.submitAsync(w, r, id, meta, s.runAndStore(id, func() (any, error) { return req.run() }))
}

// handleSweep serves POST /v1/sweep.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	raw, ok := s.readBody(w, r)
	if !ok {
		return
	}
	var req SweepRequest
	if !s.decode(w, r, raw, &req) {
		return
	}
	req = req.withDefaults()
	if err := req.validate(); err != nil {
		s.writeErr(w, r, err)
		return
	}
	id, err := req.hash()
	if err != nil {
		s.writeErr(w, r, err)
		return
	}
	if s.cache.Contains(id) {
		s.writeJSON(w, http.StatusOK, jobBody{ID: id, Status: jobs.StatusDone})
		return
	}
	if s.clusterRoute(w, r, id, raw, false) {
		return
	}
	meta, err := submitMeta("sweep", req)
	if err != nil {
		s.writeErr(w, r, err)
		return
	}
	s.submitAsync(w, r, id, meta, s.runAndStore(id, func() (any, error) { return req.run() }))
}

// handleJob serves GET /v1/jobs/{id}: resolve from the cache first
// (results outlive the pool's retention window there), then from the
// pool registry, then — on a clustered node — from the peers that may
// own the job. Done responses advertise the sha256 of their result
// bytes in X-Starperf-Result-Sum so a peer filling its cache can
// verify what it received.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if body, ok := s.cache.Get(id); ok {
		w.Header().Set(resultSumHeader, resultSum(body))
		s.writeJSON(w, http.StatusOK, jobBody{ID: id, Status: jobs.StatusDone, Result: body})
		return
	}
	j, ok := s.pool.Get(id)
	if !ok {
		if s.clusterJobLookup(w, r, id) {
			return
		}
		s.writeError(w, r, http.StatusNotFound, classUnreachable, "unknown job "+id, noRetry)
		return
	}
	switch j.Status() {
	case jobs.StatusDone:
		v, err := j.Result()
		if err != nil {
			s.writeErr(w, r, err)
			return
		}
		body := v.([]byte)
		w.Header().Set(resultSumHeader, resultSum(body))
		s.writeJSON(w, http.StatusOK, jobBody{ID: id, Status: jobs.StatusDone, Result: body})
	case jobs.StatusFailed:
		_, err := j.Result()
		s.writeJSON(w, http.StatusOK, jobBody{ID: id, Status: jobs.StatusFailed, Error: err.Error()})
	default:
		s.writeJSON(w, http.StatusOK, jobBody{ID: id, Status: j.Status()})
	}
}

// healthBody is the GET /healthz response. Cluster is present on a
// clustered node and is what the client bootstraps its ring from.
type healthBody struct {
	OK bool `json:"ok"`
	// JournalReadOnly reports the disk-full degradation: the node is
	// alive and serving sync routes, but refuses async submissions
	// until journal space returns.
	JournalReadOnly bool        `json:"journal_readonly,omitempty"`
	Cluster         *ringConfig `json:"cluster,omitempty"`
}

// ringConfig is the ring-membership triple every member (and the
// client) must agree on to build identical rings.
type ringConfig struct {
	Self         string   `json:"self"`
	Members      []string `json:"members"`
	VirtualNodes int      `json:"virtual_nodes"`
}

// handleHealthz serves GET /healthz.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	body := healthBody{OK: true}
	if s.journal != nil {
		body.JournalReadOnly = s.journal.ReadOnly()
	}
	if s.cluster != nil {
		body.Cluster = &ringConfig{
			Self:         s.cluster.ring.Self(),
			Members:      s.cluster.ring.Members(),
			VirtualNodes: s.cluster.ring.VirtualNodes(),
		}
	}
	s.writeJSON(w, http.StatusOK, body)
}

// Metricsz is the GET /metricsz response body. Journal is null when
// the server runs without one.
type Metricsz struct {
	Pool   obs.PoolStats    `json:"pool"`
	Cache  obs.CacheStats   `json:"cache"`
	Routes []obs.RouteStats `json:"routes"`
	// JournalReadOnly mirrors the healthz flag (also inside Journal
	// as read_only); ReadOnlyRefused counts async submits 503ed while
	// the journal could not take them.
	JournalReadOnly bool               `json:"journal_readonly"`
	ReadOnlyRefused uint64             `json:"read_only_refused"`
	Journal         *obs.JournalStats  `json:"journal,omitempty"`
	Batch           obs.BatchStats     `json:"batch"`
	Admission       obs.AdmissionStats `json:"admission"`
	Breakers        []obs.BreakerStats `json:"breakers"`
	// Cluster is null on an unclustered node.
	Cluster *obs.ClusterStats `json:"cluster,omitempty"`
}

// handleMetricsz serves GET /metricsz.
func (s *Server) handleMetricsz(w http.ResponseWriter, r *http.Request) {
	body := Metricsz{
		Pool:     s.pool.Stats(),
		Cache:    s.cache.Stats(),
		Routes:   s.metrics.report(),
		Breakers: s.breakers.report(),
	}
	if s.journal != nil {
		st := s.journal.Stats()
		body.Journal = &st
		body.JournalReadOnly = st.ReadOnly
	}
	body.ReadOnlyRefused = s.readOnly503.Load()
	body.Batch = obs.BatchStats{
		Batches:  s.batches.Load(),
		Items:    s.batchItems.Load(),
		MaxItems: int(s.batchMax.Load()),
		Shed:     s.batchShed.Load(),
	}
	body.Admission.Shed = s.shed.Load()
	for _, b := range body.Breakers {
		body.Admission.BreakerRejected += b.Rejected
	}
	if s.cluster != nil {
		st := s.cluster.stats()
		body.Cluster = &st
	}
	s.writeJSON(w, http.StatusOK, body)
}
