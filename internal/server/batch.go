package server

// POST /v1/jobs:batch — batched ingestion (PR 10).
//
// Request:  {"items": [{"kind": "predict", "config": {...}}, ...]}
// Response: 200 {"items": [{"id", "status"} | {"error": {...}}, ...]}
//
// A batch is a set of independently addressable jobs — content-hash
// ids make each item exactly the job its standalone submission would
// have been — but the batch pays its fixed costs once: one HTTP round
// trip, ONE admission decision priced at the batch's cumulative cost,
// and ONE journal commit (a single fsync) for the whole accepted set
// via jobs.Pool.SubmitBatch → journal.AppendBatch.
//
// Acceptance is partial, never all-or-nothing: items the deadline-
// priced queue budget cannot take get per-item queue_full entries
// (the 429 a standalone submit would have received, retry hint
// included) while the affordable subset proceeds. Items[i] in the
// response always corresponds to items[i] in the request.
//
// On a clustered node the batch is split by ring owner: each peer's
// sub-batch is forwarded to it (one hop, marked X-Starperf-Forwarded)
// and the replies are merged back by index; a peer that cannot be
// reached degrades to computing its items locally, mirroring the
// single-request fallback policy in cluster.go.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"time"

	"starperf/internal/cfgerr"
	"starperf/internal/jobs"
)

// maxBatchItems bounds one batch request; a bigger workload is split
// by the caller (client.SubmitBatch does this itself).
const maxBatchItems = 256

// batchItem is one submission: the job kind and its config, exactly
// the body the kind's standalone route would take.
type batchItem struct {
	Kind   string          `json:"kind"`
	Config json.RawMessage `json:"config"`
}

// batchRequest is the POST /v1/jobs:batch body.
type batchRequest struct {
	Items []batchItem `json:"items"`
}

// batchItemResult is one item's outcome: id+status on acceptance (or
// cache hit), a wireError otherwise — the same envelope object the
// item would have received as a standalone non-2xx response.
type batchItemResult struct {
	ID     string      `json:"id,omitempty"`
	Status jobs.Status `json:"status,omitempty"`
	Error  *wireError  `json:"error,omitempty"`
}

// batchResponse is the 200 body: items[i] answers request items[i].
type batchResponse struct {
	Items []batchItemResult `json:"items"`
}

// parsedItem is a validated, hashed batch item bound for the pool.
type parsedItem struct {
	idx  int // position in the request
	id   string
	meta jobs.Meta
	fn   jobs.Func
	raw  batchItem // original wire form, for sub-batch forwarding
}

// decodeStrict parses raw into v with unknown fields rejected,
// classifying failures as configuration errors.
func decodeStrict(raw []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return cfgerr.New("malformed config: " + err.Error())
	}
	return nil
}

// parseBatchItem validates one item through the same pipeline its
// standalone route runs: strict decode, defaults, validate, hash.
func (s *Server) parseBatchItem(it batchItem) (parsedItem, error) {
	switch it.Kind {
	case "predict":
		var req PredictRequest
		if err := decodeStrict(it.Config, &req); err != nil {
			return parsedItem{}, err
		}
		req = req.withDefaults()
		if err := req.validate(); err != nil {
			return parsedItem{}, err
		}
		id, err := req.hash()
		if err != nil {
			return parsedItem{}, err
		}
		meta, err := submitMeta("predict", req)
		if err != nil {
			return parsedItem{}, err
		}
		return parsedItem{id: id, meta: meta, fn: s.runAndStore(id, func() (any, error) { return req.run() }), raw: it}, nil
	case "simulate":
		var req SimulateRequest
		if err := decodeStrict(it.Config, &req); err != nil {
			return parsedItem{}, err
		}
		req = req.withDefaults()
		if err := req.validate(); err != nil {
			return parsedItem{}, err
		}
		id, err := req.hash()
		if err != nil {
			return parsedItem{}, err
		}
		meta, err := submitMeta("simulate", req)
		if err != nil {
			return parsedItem{}, err
		}
		return parsedItem{id: id, meta: meta, fn: s.runAndStore(id, func() (any, error) { return req.run() }), raw: it}, nil
	case "sweep":
		var req SweepRequest
		if err := decodeStrict(it.Config, &req); err != nil {
			return parsedItem{}, err
		}
		req = req.withDefaults()
		if err := req.validate(); err != nil {
			return parsedItem{}, err
		}
		id, err := req.hash()
		if err != nil {
			return parsedItem{}, err
		}
		meta, err := submitMeta("sweep", req)
		if err != nil {
			return parsedItem{}, err
		}
		return parsedItem{id: id, meta: meta, fn: s.runAndStore(id, func() (any, error) { return req.run() }), raw: it}, nil
	default:
		return parsedItem{}, cfgerr.Errorf("unknown job kind %q (want predict, simulate or sweep)", it.Kind)
	}
}

// handleBatch serves POST /v1/jobs:batch.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	raw, ok := s.readBody(w, r)
	if !ok {
		return
	}
	var req batchRequest
	if !s.decode(w, r, raw, &req) {
		return
	}
	if len(req.Items) == 0 {
		s.writeError(w, r, http.StatusBadRequest, classInvalidConfig, "batch has no items", noRetry)
		return
	}
	if len(req.Items) > maxBatchItems {
		s.writeError(w, r, http.StatusBadRequest, classInvalidConfig,
			fmt.Sprintf("batch has %d items, limit %d", len(req.Items), maxBatchItems), noRetry)
		return
	}
	// A batch is an async acceptance en masse — the one journal
	// AppendBatch is its durability. A read-only journal refuses the
	// whole request up front (503 read_only) rather than accepting
	// items it cannot make durable.
	if s.journalReadOnly() {
		s.refuseReadOnly(w, r)
		return
	}
	s.observeBatch(len(req.Items))

	out := make([]batchItemResult, len(req.Items))

	// Parse and hash every item; cache hits are answered in place, the
	// rest queue up for routing and admission.
	var pending []parsedItem
	for i, it := range req.Items {
		p, err := s.parseBatchItem(it)
		if err != nil {
			_, we := s.classifyErr(err)
			out[i] = batchItemResult{Error: &we}
			continue
		}
		p.idx = i
		if s.cache.Contains(p.id) {
			out[i] = batchItemResult{ID: p.id, Status: jobs.StatusDone}
			continue
		}
		pending = append(pending, p)
	}

	// Split by ring owner; peer sub-batches come back merged into out,
	// what remains is ours (owned, or fallback for unreachable peers).
	local := pending
	if s.cluster != nil && !isForwarded(r) {
		local = s.clusterBatch(r, pending, out)
	}

	// ONE admission decision for the whole local set, priced at batch
	// cost: the backlog's drain time plus each admitted item's own
	// expected execution time, accumulated in request order against
	// the caller's deadline. Items past the budget get the queue_full
	// entry a standalone submit would have gotten, with the Retry-After
	// the backlog at that point implies; cheaper later items may still
	// fit — acceptance is per item, not prefix-only.
	deadline := s.requestDeadline(r)
	est := s.queueWait()
	workers := float64(s.workers)
	admitted := make([]parsedItem, 0, len(local))
	for _, p := range local {
		cost := time.Duration(s.pool.ExecMeanMicros(p.meta.Kind) / workers * float64(time.Microsecond))
		if est+cost > deadline {
			s.shed.Add(1)
			s.batchShed.Add(1)
			out[p.idx] = batchItemResult{Error: &wireError{
				Class: classQueueFull,
				Message: fmt.Sprintf("estimated queue wait %s exceeds request deadline %s",
					(est + cost).Round(time.Millisecond), deadline.Round(time.Millisecond)),
				RetryAfterMS: retryMillis(est + cost),
			}}
			continue
		}
		est += cost
		admitted = append(admitted, p)
	}

	// ONE pool submission — one journal group commit — for the
	// admitted set.
	items := make([]jobs.BatchItem, len(admitted))
	for n, p := range admitted {
		items[n] = jobs.BatchItem{ID: p.id, Meta: p.meta, Fn: p.fn}
	}
	for n, res := range s.pool.SubmitBatch(items) {
		p := admitted[n]
		if res.Err != nil {
			_, we := s.classifyErr(res.Err)
			out[p.idx] = batchItemResult{Error: &we}
			continue
		}
		out[p.idx] = batchItemResult{ID: p.id, Status: res.Job.Status()}
	}
	s.writeJSON(w, http.StatusOK, batchResponse{Items: out})
}

// clusterBatch routes a batch's pending items across the ring: items
// owned by peers are forwarded as per-owner sub-batches and their
// replies merged into out by index; returned are the items to run
// locally — our own, plus any whose owner could not take them.
func (s *Server) clusterBatch(r *http.Request, pending []parsedItem, out []batchItemResult) []parsedItem {
	cn := s.cluster
	var local []parsedItem
	groups := make(map[string][]parsedItem)
	for _, p := range pending {
		owner := cn.ring.Successors(p.id)[0]
		if owner == cn.ring.Self() {
			cn.owned.Add(1)
			local = append(local, p)
			continue
		}
		groups[owner] = append(groups[owner], p)
	}
	owners := make([]string, 0, len(groups))
	for owner := range groups {
		owners = append(owners, owner)
	}
	sort.Strings(owners) // deterministic forward order
	for _, owner := range owners {
		group := groups[owner]
		if ok, _ := cn.breakers.allow(owner); !ok {
			cn.failovers.Add(1)
			cn.localFallbacks.Add(1)
			local = append(local, group...)
			continue
		}
		results, err := s.forwardBatch(r, owner, group)
		if err != nil {
			// Dead or failing peer: feed its breaker and keep the items —
			// capacity degrades, the batch still completes.
			cn.breakers.observe(owner, true)
			cn.forwardErrors.Add(1)
			cn.failovers.Add(1)
			cn.localFallbacks.Add(1)
			local = append(local, group...)
			continue
		}
		cn.breakers.observe(owner, false)
		cn.forwarded.Add(uint64(len(group)))
		for n, p := range group {
			out[p.idx] = results[n]
		}
	}
	return local
}

// forwardBatch relays one owner's sub-batch and returns its per-item
// results in sub-batch order.
func (s *Server) forwardBatch(r *http.Request, owner string, group []parsedItem) ([]batchItemResult, error) {
	cn := s.cluster
	sub := batchRequest{Items: make([]batchItem, len(group))}
	for n, p := range group {
		sub.Items[n] = p.raw
	}
	body, err := json.Marshal(sub)
	if err != nil {
		return nil, err
	}
	resp, respBody, err := cn.forwardOnce(r.Context(), owner, "/v1/jobs:batch", body, s.requestDeadline(r))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("server: peer %s answered batch with %d", owner, resp.StatusCode)
	}
	var merged batchResponse
	if err := json.Unmarshal(respBody, &merged); err != nil {
		return nil, err
	}
	if len(merged.Items) != len(group) {
		return nil, fmt.Errorf("server: peer %s answered %d items for %d", owner, len(merged.Items), len(group))
	}
	return merged.Items, nil
}

// observeBatch folds one batch's size into the /metricsz counters.
func (s *Server) observeBatch(n int) {
	s.batches.Add(1)
	s.batchItems.Add(uint64(n))
	for {
		cur := s.batchMax.Load()
		if int64(n) <= cur || s.batchMax.CompareAndSwap(cur, int64(n)) {
			return
		}
	}
}
