package server

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"io"
	"net/http"
	"sync/atomic"
	"time"

	"starperf/internal/cluster"
	"starperf/internal/jobs"
	"starperf/internal/obs"
)

// The peer-aware request path of a sharded starperfd cluster.
//
// Routing policy, in preference order for a compute request on job id:
//
//  1. The ring owner serves it (forwarded to when that is a peer, run
//     locally when it is us). Ownership concentrates each id's cache
//     entry, singleflight window and journal records on one node.
//  2. On owner failure — connection refused, timeout, or a 5xx — the
//     request fails over to the next ring successor, and so on down
//     the preference order every member agrees on.
//  3. As a last resort the receiving node computes locally (after
//     asking the remaining peers' caches for a finished copy), so a
//     dead peer degrades capacity but never availability: content-
//     hash ids make any replica's recompute byte-identical.
//
// A forwarded request carries X-Starperf-Forwarded, and a node never
// re-forwards one — the forwarding fan-out is depth one by
// construction, so a stale ring config (two nodes disagreeing about
// ownership) costs an extra hop's latency and duplicated compute,
// never a forwarding loop.
//
// Every peer is guarded by its own PR 5 circuit breaker (keyed by
// peer address instead of route): a dead or flapping peer is probed
// once per cooldown, not hammered by every request that would have
// preferred it.

// maxPeerBody bounds a relayed or filled response body. (The
// forwarded/node/result-sum headers this path speaks are declared
// with the rest of the X-Starperf-* contract in headers.go.)
const maxPeerBody = 64 << 20

// resultSum renders the content sum of a result body in the same
// "sha256:<hex>" shape job ids use.
func resultSum(body []byte) string {
	sum := sha256.Sum256(body)
	return "sha256:" + hex.EncodeToString(sum[:])
}

// sumMatches verifies a relayed response body against its advertised
// content sum, accepting both wire shapes that carry the header: a
// sync route's body is the result bytes themselves, a job envelope
// holds them in its "result" field.
func sumMatches(body []byte, sum string) bool {
	if resultSum(body) == sum {
		return true
	}
	var env jobBody
	if err := json.Unmarshal(body, &env); err != nil || env.Result == nil {
		return false
	}
	return resultSum(env.Result) == sum
}

// peerNet is one node's view of the cluster: the ring, the HTTP
// client it reaches peers with, per-peer breakers and the routing
// counters /metricsz reports.
type peerNet struct {
	ring     *cluster.Ring
	http     *http.Client
	scheme   string
	timeout  time.Duration // per-peer budget for cache fills and job lookups
	breakers *breakerSet

	owned           atomic.Uint64
	forwarded       atomic.Uint64
	forwardErrors   atomic.Uint64
	failovers       atomic.Uint64
	localFallbacks  atomic.Uint64
	peerFills       atomic.Uint64
	peerFillCorrupt atomic.Uint64
}

func newPeerNet(cfg Config) *peerNet {
	httpc := cfg.PeerHTTP
	if httpc == nil {
		httpc = &http.Client{}
	}
	scheme := cfg.PeerScheme
	if scheme == "" {
		scheme = "http"
	}
	timeout := cfg.PeerTimeout
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	return &peerNet{
		ring:     cfg.Ring,
		http:     httpc,
		scheme:   scheme,
		timeout:  timeout,
		breakers: newBreakerSet(cfg.PeerBreaker),
	}
}

// url renders a peer's base URL from its ring address.
func (cn *peerNet) url(node string) string { return cn.scheme + "://" + node }

// stats snapshots the cluster counters.
func (cn *peerNet) stats() obs.ClusterStats {
	return obs.ClusterStats{
		Self:            cn.ring.Self(),
		Members:         cn.ring.Members(),
		VirtualNodes:    cn.ring.VirtualNodes(),
		Owned:           cn.owned.Load(),
		Forwarded:       cn.forwarded.Load(),
		ForwardErrors:   cn.forwardErrors.Load(),
		Failovers:       cn.failovers.Load(),
		LocalFallbacks:  cn.localFallbacks.Load(),
		PeerFills:       cn.peerFills.Load(),
		PeerFillCorrupt: cn.peerFillCorrupt.Load(),
		PeerBreakers:    cn.breakers.report(),
	}
}

// isForwarded reports whether r already crossed one peer hop.
func isForwarded(r *http.Request) bool { return r.Header.Get(forwardedHeader) != "" }

// clusterRoute runs the peer-aware path for a compute request: relay
// to the id's owner (or a ring successor when the owner is down), or
// serve from a peer's cache. It reports true when it wrote the
// response; false means the caller should compute locally — either
// because this node owns the id, or as the last-resort fallback when
// no preferred peer could take it. sync selects the response shape of
// a peer-cache fill: the stored bytes for the synchronous predict
// route, a done job envelope for the async routes.
func (s *Server) clusterRoute(w http.ResponseWriter, r *http.Request, id string, raw []byte, sync bool) bool {
	cn := s.cluster
	if cn == nil || isForwarded(r) {
		return false
	}
	targets := cn.ring.Successors(id)
	if targets[0] == cn.ring.Self() {
		cn.owned.Add(1)
		return false
	}
	deadline := s.requestDeadline(r)
	for _, node := range targets {
		if node == cn.ring.Self() {
			// Our turn in the preference order: every peer ranked above
			// us is unavailable, so we stop relaying and compute.
			break
		}
		if ok, _ := cn.breakers.allow(node); !ok {
			cn.failovers.Add(1)
			continue
		}
		resp, body, err := cn.forwardOnce(r.Context(), node, r.URL.Path, raw, deadline)
		if err != nil || resp.StatusCode >= 500 {
			// Connection refused, timeout, or the peer failing server-
			// side: feed its breaker and move down the ring. 4xx are
			// the peer answering deliberately (bad request, its own
			// load shedding) — relayed below, not failed over, so a
			// breaker can never trip on backpressure.
			cn.breakers.observe(node, true)
			cn.forwardErrors.Add(1)
			cn.failovers.Add(1)
			continue
		}
		if resp.StatusCode == http.StatusOK {
			// A peer result that advertises a content sum must match it
			// (PR 12): a mismatch means the bytes were damaged in
			// flight, so relaying them would launder corruption into a
			// verbatim-looking answer. Treated exactly like a transport
			// failure — feed the breaker, fail over down the ring.
			if sum := resp.Header.Get(resultSumHeader); sum != "" && !sumMatches(body, sum) {
				cn.peerFillCorrupt.Add(1)
				cn.breakers.observe(node, true)
				cn.forwardErrors.Add(1)
				cn.failovers.Add(1)
				continue
			}
		}
		cn.breakers.observe(node, false)
		cn.forwarded.Add(1)
		relayResponse(w, resp, body)
		return true
	}
	// No preferred peer could take the request. Before computing a job
	// we do not own, ask the remaining peers' caches for a finished
	// copy — an owner that just restarted, or a successor that served
	// an earlier failover, may already hold the verified bytes.
	if body, ok := cn.fill(r.Context(), id); ok {
		s.cache.Put(id, body)
		if sync {
			s.writeResult(w, id, "peer", body)
		} else {
			s.writeJSON(w, http.StatusOK, jobBody{ID: id, Status: jobs.StatusDone})
		}
		return true
	}
	cn.localFallbacks.Add(1)
	return false
}

// forwardOnce relays one compute request to a peer, propagating the
// caller's remaining deadline both as the context budget and as the
// X-Starperf-Deadline header, so the peer's admission control sheds
// with the true end-to-end patience, not its default.
func (cn *peerNet) forwardOnce(ctx context.Context, node, path string, body []byte, deadline time.Duration) (*http.Response, []byte, error) {
	if deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, deadline)
		defer cancel()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, cn.url(node)+path, bytes.NewReader(body))
	if err != nil {
		return nil, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(forwardedHeader, cn.ring.Self())
	if deadline > 0 {
		req.Header.Set(deadlineHeader, deadline.Round(time.Millisecond).String())
	}
	resp, err := cn.http.Do(req)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(io.LimitReader(resp.Body, maxPeerBody))
	if err != nil {
		return nil, nil, err
	}
	return resp, b, nil
}

// relayResponse writes a peer's answer through verbatim: status, body
// and the headers that carry meaning across the hop (including which
// node served it, so the client sees through the relay).
func relayResponse(w http.ResponseWriter, resp *http.Response, body []byte) {
	for _, h := range []string{"Content-Type", "Retry-After", jobHeader, cacheHeader, resultSumHeader, nodeHeader} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = w.Write(body)
}

// peerJob asks one peer for a job's state. ok means a 200 envelope
// came back (env is valid); failed means the peer itself failed
// (transport error or 5xx) and should feed its breaker. A done
// envelope whose result bytes do not match the advertised content sum
// is counted corrupt and reported as not-ok: unverifiable bytes are
// never stored and never served.
func (cn *peerNet) peerJob(ctx context.Context, node, id string) (env jobBody, ok, failed bool) {
	ctx, cancel := context.WithTimeout(ctx, cn.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, cn.url(node)+"/v1/jobs/"+id, nil)
	if err != nil {
		return env, false, true
	}
	req.Header.Set(forwardedHeader, cn.ring.Self())
	resp, err := cn.http.Do(req)
	if err != nil {
		return env, false, true
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(io.LimitReader(resp.Body, maxPeerBody))
	if err != nil {
		return env, false, true
	}
	if resp.StatusCode >= 500 {
		return env, false, true
	}
	if resp.StatusCode != http.StatusOK {
		return env, false, false // 404 and friends: the peer is healthy, it just doesn't know the job
	}
	if err := json.Unmarshal(b, &env); err != nil {
		return env, false, false
	}
	if env.Status == jobs.StatusDone && env.Result != nil {
		if sum := resp.Header.Get(resultSumHeader); sum == "" || resultSum(env.Result) != sum {
			cn.peerFillCorrupt.Add(1)
			return jobBody{}, false, false
		}
	}
	return env, true, false
}

// fill asks each peer in the id's preference order for a finished,
// verified result. The first hit wins.
func (cn *peerNet) fill(ctx context.Context, id string) ([]byte, bool) {
	for _, node := range cn.ring.Successors(id) {
		if node == cn.ring.Self() {
			continue
		}
		if ok, _ := cn.breakers.allow(node); !ok {
			continue
		}
		env, ok, failed := cn.peerJob(ctx, node, id)
		cn.breakers.observe(node, failed)
		if ok && env.Status == jobs.StatusDone && env.Result != nil {
			cn.peerFills.Add(1)
			return env.Result, true
		}
	}
	return nil, false
}

// clusterJobLookup extends GET /v1/jobs/{id} across the ring: a job
// this node has never heard of may be running (or finished) on the
// peer that owns it. A finished, verified result is stored in the
// local cache on the way through (peer cache fill), so the next poll
// for it is a local hit. Reports true when it wrote the response.
func (s *Server) clusterJobLookup(w http.ResponseWriter, r *http.Request, id string) bool {
	cn := s.cluster
	if cn == nil || isForwarded(r) {
		return false
	}
	for _, node := range cn.ring.Successors(id) {
		if node == cn.ring.Self() {
			continue
		}
		if ok, _ := cn.breakers.allow(node); !ok {
			continue
		}
		env, ok, failed := cn.peerJob(r.Context(), node, id)
		cn.breakers.observe(node, failed)
		if !ok {
			continue
		}
		if env.Status == jobs.StatusDone && env.Result != nil {
			cn.peerFills.Add(1)
			s.cache.Put(id, env.Result)
			w.Header().Set(resultSumHeader, resultSum(env.Result))
			s.writeJSON(w, http.StatusOK, jobBody{ID: id, Status: jobs.StatusDone, Result: env.Result})
			return true
		}
		// Queued, running, failed, or done-without-body: relay the
		// peer's view so cross-node polling works mid-computation.
		s.writeJSON(w, http.StatusOK, env)
		return true
	}
	return false
}

// ringBody is the GET /v1/ring/{id} response: where a job id lives.
type ringBody struct {
	ID    string   `json:"id"`
	Self  string   `json:"self"`
	Nodes []string `json:"nodes"`
}

// handleRing serves GET /v1/ring/{id}: the id's preference order on
// this node's ring — owner first, failover order after. On an
// unclustered server the list is this node alone.
func (s *Server) handleRing(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if s.cluster == nil {
		s.writeJSON(w, http.StatusOK, ringBody{ID: id, Self: "", Nodes: []string{}})
		return
	}
	s.writeJSON(w, http.StatusOK, ringBody{
		ID:    id,
		Self:  s.cluster.ring.Self(),
		Nodes: s.cluster.ring.Successors(id),
	})
}
