package server

// The PR 10 header audit's enforcement: the X-Starperf-* contract is
// exactly the set declared in headers.go and documented in DESIGN.md.
// TestStarperfHeaderSet scans the source of every package that speaks
// HTTP (server, cluster ring, public client, the daemon) so a new
// header literal anywhere fails here until it is declared and
// documented; TestStarperfHeadersOnTheWire pins the live response
// surface of a compute route.

import (
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// canonicalHeaders mirrors the headers.go block — change both
// together, along with the DESIGN.md table. The identifier is what
// in-package code references; the client package, which cannot
// import internal/server, repeats the literal.
var canonicalHeaders = map[string]string{
	"jobHeader":       jobHeader,       // X-Starperf-Job
	"cacheHeader":     cacheHeader,     // X-Starperf-Cache
	"deadlineHeader":  deadlineHeader,  // X-Starperf-Deadline
	"nodeHeader":      nodeHeader,      // X-Starperf-Node
	"forwardedHeader": forwardedHeader, // X-Starperf-Forwarded
	"resultSumHeader": resultSumHeader, // X-Starperf-Result-Sum
}

// headerDirs are the packages whose non-test sources may speak
// X-Starperf-* headers, relative to this package.
var headerDirs = []string{".", "../cluster", "../netx", "../soak", "../../client", "../../cmd/starperfd"}

func TestStarperfHeaderSet(t *testing.T) {
	canon := make(map[string]bool, len(canonicalHeaders))
	for _, h := range canonicalHeaders {
		canon[h] = true
	}
	pat := regexp.MustCompile(`X-Starperf-[A-Za-z0-9-]+`)
	used := make(map[string][]string) // header -> files outside headers.go
	for _, dir := range headerDirs {
		ents, err := os.ReadDir(dir)
		if err != nil {
			t.Fatalf("reading %s: %v", dir, err)
		}
		for _, e := range ents {
			name := e.Name()
			if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			src, err := os.ReadFile(filepath.Join(dir, name))
			if err != nil {
				t.Fatal(err)
			}
			for _, h := range pat.FindAllString(string(src), -1) {
				if !canon[h] {
					t.Errorf("%s/%s speaks undeclared header %s — add it to headers.go, canonicalHeaders and the DESIGN.md table", dir, name, h)
				}
				if name != "headers.go" {
					used[h] = append(used[h], filepath.Join(dir, name))
				}
			}
			if name == "headers.go" {
				continue
			}
			// In-package code speaks a header through its constant;
			// count identifier references as usage too.
			for ident, h := range canonicalHeaders {
				if regexp.MustCompile(`\b` + ident + `\b`).Match(src) {
					used[h] = append(used[h], filepath.Join(dir, name))
				}
			}
		}
	}
	// The contract must also stay honest the other way: a declared
	// header nothing speaks any more should be retired, not live on
	// in the docs.
	for _, h := range canonicalHeaders {
		if len(used[h]) == 0 {
			t.Errorf("declared header %s is not spoken by any non-test source — retire it from headers.go and the DESIGN.md table", h)
		}
	}
	// Casing is part of the contract: exactly one spelling per header.
	lower := make(map[string]string, len(canonicalHeaders))
	for h := range used {
		if prev, ok := lower[strings.ToLower(h)]; ok && prev != h {
			t.Errorf("inconsistently cased header variants %s and %s", prev, h)
		}
		lower[strings.ToLower(h)] = h
	}
	if t.Failed() {
		var all []string
		for h := range used {
			all = append(all, h)
		}
		sort.Strings(all)
		t.Logf("headers found in source: %v", all)
	}
}

func TestStarperfHeadersOnTheWire(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp := postJSON(t, ts.URL+"/v1/predict", predictS4)
	readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict: %d", resp.StatusCode)
	}
	if got := resp.Header.Get(jobHeader); got != predictID(t) {
		t.Fatalf("%s = %q, want the job's content hash", jobHeader, got)
	}
	if got := resp.Header.Get(cacheHeader); got != "miss" && got != "hit" {
		t.Fatalf("%s = %q, want hit or miss", cacheHeader, got)
	}
}
