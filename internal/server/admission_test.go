package server

import (
	"context"
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"
)

// primeBacklog makes the admission estimate large and certain: the
// pool's observed mean job execution time for kind is seeded at
// `mean` (what admission prices the backlog with — NOT the HTTP
// handler latency, which for async submits is microseconds) and
// `njobs` blocked jobs occupy the pool. Returns the gate releasing
// them.
func primeBacklog(t *testing.T, s *Server, kind string, mean time.Duration, njobs int) chan struct{} {
	t.Helper()
	s.pool.ObserveExec(kind, mean)
	gate := make(chan struct{})
	for i := 0; i < njobs; i++ {
		id := "sha256:block" + strconv.Itoa(i)
		if _, err := s.pool.Submit(id, func(ctx context.Context) (any, error) {
			select {
			case <-gate:
			case <-ctx.Done():
			}
			return nil, nil
		}); err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			// Wait for the workers to pick the first job up, so the
			// queue holds only the overflow and later submissions
			// cannot trip the queue bound prematurely.
			deadline := time.Now().Add(5 * time.Second)
			for s.pool.Stats().Running == 0 {
				if time.Now().After(deadline) {
					t.Fatal("first blocked job never started")
				}
				time.Sleep(time.Millisecond)
			}
		}
	}
	return gate
}

// TestAdmissionShedsDoomedRequests: with a deep backlog of slow work,
// a request with a short explicit deadline is shed with 429 +
// Retry-After instead of queued past its patience; a patient request
// is still admitted.
func TestAdmissionShedsDoomedRequests(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 64})
	gate := primeBacklog(t, s, "predict", 2*time.Second, 4)
	released := false
	defer func() {
		if !released {
			close(gate)
		}
	}()

	req, err := http.NewRequest("POST", ts.URL+"/v1/predict", strings.NewReader(predictS4))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(deadlineHeader, "100ms") // est wait ≈ 10s (4×2s backlog + 2s own) ≫ 100ms
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("impatient request: %d %s, want 429", resp.StatusCode, body)
	}
	var eb errorBody
	if err := json.Unmarshal(body, &eb); err != nil || eb.Error.Class != "queue_full" {
		t.Fatalf("shed body %s", body)
	}
	ra := resp.Header.Get("Retry-After")
	secs, err := strconv.Atoi(ra)
	if err != nil || secs < 1 {
		t.Fatalf("shed Retry-After %q, want ≥1 whole seconds", ra)
	}

	// /metricsz counts the shed.
	mresp, err := http.Get(ts.URL + "/metricsz")
	if err != nil {
		t.Fatal(err)
	}
	var mz Metricsz
	if err := json.Unmarshal(readBody(t, mresp), &mz); err != nil {
		t.Fatal(err)
	}
	if mz.Admission.Shed < 1 {
		t.Fatalf("admission stats %+v after shed", mz.Admission)
	}

	// A patient caller gets through: admitted, queued behind the
	// backlog, answered once the gate opens.
	done := make(chan *http.Response, 1)
	go func() {
		r2, _ := http.NewRequest("POST", ts.URL+"/v1/predict", strings.NewReader(predictS4))
		r2.Header.Set("Content-Type", "application/json")
		r2.Header.Set(deadlineHeader, "1h")
		resp2, err := http.DefaultClient.Do(r2)
		if err == nil {
			done <- resp2
		}
	}()
	time.Sleep(50 * time.Millisecond) // let it enqueue before releasing
	close(gate)
	released = true
	select {
	case resp2 := <-done:
		if b := readBody(t, resp2); resp2.StatusCode != 200 {
			t.Fatalf("patient request: %d %s", resp2.StatusCode, b)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("patient request never completed")
	}
}

// TestQueueFullCarriesRetryAfter: the 429 a saturated queue returns
// derives its Retry-After from the backlog.
func TestQueueFullCarriesRetryAfter(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 2})
	gate := primeBacklog(t, s, "simulate", time.Second, 3) // 1 running + 2 queued = full
	defer close(gate)

	body := `{"topo":{"kind":"star","n":3},"v":4,"msg_len":8,"rate":0.001}`
	resp := postJSON(t, ts.URL+"/v1/simulate", body)
	rb := readBody(t, resp)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("full queue: %d %s, want 429", resp.StatusCode, rb)
	}
	var eb errorBody
	if err := json.Unmarshal(rb, &eb); err != nil || eb.Error.Class != "queue_full" {
		t.Fatalf("queue-full body %s", rb)
	}
	if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || secs < 1 {
		t.Fatalf("queue-full Retry-After %q", resp.Header.Get("Retry-After"))
	}
}

// TestConcurrencyCapCarriesRetryAfter: the cap's 503 carries a
// derived Retry-After too (satellite of the same contract: every
// 429/503 tells the client when to come back).
func TestConcurrencyCapCarriesRetryAfter(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, MaxInFlight: 1})
	// Occupy the single slot with a request that blocks in the pool.
	gate := primeBacklog(t, s, "block", time.Second, 1)
	released := false
	defer func() {
		if !released {
			close(gate)
		}
	}()
	blocked := make(chan struct{})
	go func() {
		defer close(blocked)
		req, _ := http.NewRequest("POST", ts.URL+"/v1/predict", strings.NewReader(predictS4))
		req.Header.Set("Content-Type", "application/json")
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			readBody(t, resp)
		}
	}()
	// Wait for the slot to fill, then probe: 503 + Retry-After.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		b := readBody(t, resp)
		if resp.StatusCode == http.StatusServiceUnavailable {
			if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || secs < 1 {
				t.Fatalf("cap 503 Retry-After %q", resp.Header.Get("Retry-After"))
			}
			var eb errorBody
			if err := json.Unmarshal(b, &eb); err != nil || eb.Error.Class != "queue_full" {
				t.Fatalf("cap body %s", b)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("concurrency cap never hit")
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(gate)
	released = true
	<-blocked
}
