package server

// In-process cluster tests: N real servers on loopback listeners,
// each with its own pool, cache and ring built from the same member
// list. The listeners are opened first (port 0) so the addresses are
// known before the rings exist — the same chicken-and-egg order
// scripts/cluster_chaos.sh resolves by choosing ports up front.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"starperf/internal/cache"
	"starperf/internal/cluster"
	"starperf/internal/fsx"
	"starperf/internal/journal"
)

// testCluster is an in-process cluster keyed by member address.
type testCluster struct {
	t      *testing.T
	addrs  []string
	srvs   map[string]*Server
	tss    map[string]*httptest.Server
	killed map[string]bool
}

// newTestCluster starts n cluster members. mut, when non-nil, adjusts
// each member's Config before New (inject a journal, shrink the
// pool, ...).
func newTestCluster(t *testing.T, n int, mut func(addr string, cfg *Config)) *testCluster {
	t.Helper()
	listeners := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range listeners {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = l
		addrs[i] = l.Addr().String()
	}
	tc := &testCluster{
		t:      t,
		addrs:  addrs,
		srvs:   make(map[string]*Server, n),
		tss:    make(map[string]*httptest.Server, n),
		killed: make(map[string]bool, n),
	}
	for i, addr := range addrs {
		ring, err := cluster.New(cluster.Config{Self: addr, Peers: addrs})
		if err != nil {
			t.Fatal(err)
		}
		cfg := Config{Workers: 2, Cache: cache.Config{Dir: t.TempDir()}, Ring: ring}
		if mut != nil {
			mut(addr, &cfg)
		}
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ts := &httptest.Server{Listener: listeners[i], Config: &http.Server{Handler: s.Handler()}}
		ts.Start()
		tc.srvs[addr] = s
		tc.tss[addr] = ts
	}
	t.Cleanup(func() {
		for _, addr := range tc.addrs {
			if tc.killed[addr] {
				continue
			}
			tc.tss[addr].Close()
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			_ = tc.srvs[addr].Close(ctx)
			cancel()
		}
	})
	return tc
}

func (tc *testCluster) url(addr string) string { return "http://" + addr }

// kill SIGKILLs a member as far as HTTP is concerned: the listener
// dies mid-flight, nothing drains, the pool is abandoned.
func (tc *testCluster) kill(addr string) {
	tc.t.Helper()
	tc.tss[addr].Close()
	tc.killed[addr] = true
}

// order returns a job id's cluster-wide preference order (identical
// on every member, so any ring serves).
func (tc *testCluster) order(id string) []string {
	return tc.srvs[tc.addrs[0]].cluster.ring.Successors(id)
}

// predictID hashes predictS4 the way the handler does.
func predictID(t *testing.T) string {
	t.Helper()
	var req PredictRequest
	if err := json.Unmarshal([]byte(predictS4), &req); err != nil {
		t.Fatal(err)
	}
	id, err := req.withDefaults().hash()
	if err != nil {
		t.Fatal(err)
	}
	return id
}

// simulateID hashes recoverySim the way the handler does.
func simulateID(t *testing.T) string {
	t.Helper()
	var req SimulateRequest
	if err := json.Unmarshal([]byte(recoverySim), &req); err != nil {
		t.Fatal(err)
	}
	id, err := req.withDefaults().hash()
	if err != nil {
		t.Fatal(err)
	}
	return id
}

// controlPredict computes predictS4 on a pristine single-node server:
// the byte-identical reference every cluster answer must match.
func controlPredict(t *testing.T) []byte {
	t.Helper()
	_, ts := newTestServer(t, Config{Workers: 2})
	resp := postJSON(t, ts.URL+"/v1/predict", predictS4)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("control predict: %d", resp.StatusCode)
	}
	return readBody(t, resp)
}

// controlSimulate computes recoverySim on a pristine single-node
// server.
func controlSimulate(t *testing.T) []byte {
	t.Helper()
	_, ts := newTestServer(t, Config{Workers: 2})
	resp := postJSON(t, ts.URL+"/v1/simulate", recoverySim)
	var jb jobBody
	if err := json.Unmarshal(readBody(t, resp), &jb); err != nil {
		t.Fatal(err)
	}
	return jobResultBody(t, ts.URL, jb.ID)
}

// TestClusterForwardsToOwner: a compute request sent to a non-owner
// is relayed to the ring owner, answers byte-identically to a
// single-node control, and names the owner in X-Starperf-Node.
func TestClusterForwardsToOwner(t *testing.T) {
	want := controlPredict(t)
	tc := newTestCluster(t, 3, nil)
	order := tc.order(predictID(t))
	owner, nonOwner := order[0], order[1]

	// Direct to the owner first: served locally, counted as owned.
	resp := postJSON(t, tc.url(owner)+"/v1/predict", predictS4)
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusOK || string(body) != string(want) {
		t.Fatalf("owner predict: %d %s, want control bytes", resp.StatusCode, body)
	}
	if got := tc.srvs[owner].cluster.owned.Load(); got != 1 {
		t.Fatalf("owner owned counter = %d, want 1", got)
	}

	// Via a non-owner: relayed to the owner, byte-identical, and the
	// response names the node that served it.
	resp = postJSON(t, tc.url(nonOwner)+"/v1/predict", predictS4)
	body = readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("forwarded predict: %d %s", resp.StatusCode, body)
	}
	if string(body) != string(want) {
		t.Fatalf("forwarded result differs from control:\n %s\n %s", body, want)
	}
	if got := resp.Header.Get(nodeHeader); got != owner {
		t.Fatalf("served by %q, want owner %q", got, owner)
	}
	cn := tc.srvs[nonOwner].cluster
	if cn.forwarded.Load() != 1 || cn.failovers.Load() != 0 || cn.localFallbacks.Load() != 0 {
		t.Fatalf("non-owner counters: forwarded=%d failovers=%d fallbacks=%d, want 1/0/0",
			cn.forwarded.Load(), cn.failovers.Load(), cn.localFallbacks.Load())
	}

	// /metricsz and /healthz surface the ring.
	resp, err := http.Get(tc.url(owner) + "/metricsz")
	if err != nil {
		t.Fatal(err)
	}
	var mz Metricsz
	if err := json.Unmarshal(readBody(t, resp), &mz); err != nil {
		t.Fatal(err)
	}
	if mz.Cluster == nil || mz.Cluster.Self != owner || len(mz.Cluster.Members) != 3 {
		t.Fatalf("metricsz cluster = %+v, want self=%s with 3 members", mz.Cluster, owner)
	}
	resp, err = http.Get(tc.url(owner) + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hb healthBody
	if err := json.Unmarshal(readBody(t, resp), &hb); err != nil {
		t.Fatal(err)
	}
	if !hb.OK || hb.Cluster == nil || len(hb.Cluster.Members) != 3 {
		t.Fatalf("healthz = %+v, want ok with 3 ring members", hb)
	}

	// /v1/ring/{id} agrees with the in-process rings.
	resp, err = http.Get(tc.url(nonOwner) + "/v1/ring/" + predictID(t))
	if err != nil {
		t.Fatal(err)
	}
	var rb ringBody
	if err := json.Unmarshal(readBody(t, resp), &rb); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(rb.Nodes) != fmt.Sprint(order) {
		t.Fatalf("/v1/ring order %v, want %v", rb.Nodes, order)
	}
}

// TestClusterFailsOverWhenOwnerDies pins the acceptance criterion: a
// fully dead owner never causes a client-visible failure for jobs it
// owns. Both kinds of survivor answer — the next successor computes
// locally, any other member fails over to that successor — and the
// counters show the reroute.
func TestClusterFailsOverWhenOwnerDies(t *testing.T) {
	want := controlPredict(t)
	tc := newTestCluster(t, 3, nil)
	order := tc.order(predictID(t))
	owner, next, last := order[0], order[1], order[2]
	tc.kill(owner)

	// The first successor: forward to the dead owner fails, its own
	// turn comes, it computes locally.
	resp := postJSON(t, tc.url(next)+"/v1/predict", predictS4)
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusOK || string(body) != string(want) {
		t.Fatalf("successor answer: %d %s, want control bytes", resp.StatusCode, body)
	}
	cn := tc.srvs[next].cluster
	if cn.failovers.Load() == 0 || cn.localFallbacks.Load() != 1 {
		t.Fatalf("successor counters: failovers=%d fallbacks=%d, want ≥1 and 1",
			cn.failovers.Load(), cn.localFallbacks.Load())
	}

	// The furthest member: dead owner, then the successor (which now
	// holds the result) answers its forward.
	resp = postJSON(t, tc.url(last)+"/v1/predict", predictS4)
	body = readBody(t, resp)
	if resp.StatusCode != http.StatusOK || string(body) != string(want) {
		t.Fatalf("far member answer: %d %s, want control bytes", resp.StatusCode, body)
	}
	cn = tc.srvs[last].cluster
	if cn.failovers.Load() == 0 || cn.forwarded.Load() != 1 {
		t.Fatalf("far member counters: failovers=%d forwarded=%d, want ≥1 and 1",
			cn.failovers.Load(), cn.forwarded.Load())
	}
	if got := resp.Header.Get(nodeHeader); got != next {
		t.Fatalf("served by %q, want failover target %q", got, next)
	}
}

// TestClusterJobLookupFillsPeerCache: polling a job on a node that
// never saw it relays the owner's answer and fills the local cache
// (verified against the advertised content sum), so the next poll is
// a local hit.
func TestClusterJobLookupFillsPeerCache(t *testing.T) {
	want := controlSimulate(t)
	tc := newTestCluster(t, 3, nil)
	id := simulateID(t)
	owner, other := tc.order(id)[0], tc.order(id)[1]

	resp := postJSON(t, tc.url(owner)+"/v1/simulate", recoverySim)
	var jb jobBody
	if err := json.Unmarshal(readBody(t, resp), &jb); err != nil {
		t.Fatal(err)
	}
	if jb.ID != id {
		t.Fatalf("submitted id %s, want %s", jb.ID, id)
	}
	got := jobResultBody(t, tc.url(other), id)
	if string(got) != string(want) {
		t.Fatalf("cross-node poll differs from control:\n %s\n %s", got, want)
	}
	cn := tc.srvs[other].cluster
	if cn.peerFills.Load() == 0 {
		t.Fatal("cross-node poll did not fill the peer cache")
	}
	if !tc.srvs[other].cache.Contains(id) {
		t.Fatal("filled result missing from the local cache")
	}
}

// TestForwardedRequestNeverReforwards: a request that already crossed
// one hop is served locally even by a node that does not own it — the
// relay depth is one by construction, so stale rings cannot loop.
func TestForwardedRequestNeverReforwards(t *testing.T) {
	tc := newTestCluster(t, 2, nil)
	order := tc.order(predictID(t))
	nonOwner := order[1]

	req, err := http.NewRequest(http.MethodPost, tc.url(nonOwner)+"/v1/predict",
		bytes.NewReader([]byte(predictS4)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(forwardedHeader, "test")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if body := readBody(t, resp); resp.StatusCode != http.StatusOK {
		t.Fatalf("forwarded-marked predict: %d %s", resp.StatusCode, body)
	}
	cn := tc.srvs[nonOwner].cluster
	if cn.forwarded.Load() != 0 || cn.failovers.Load() != 0 {
		t.Fatalf("marked request re-forwarded: forwarded=%d failovers=%d",
			cn.forwarded.Load(), cn.failovers.Load())
	}
}

// TestPeerFillRejectsCorruptBytes: a done envelope whose result bytes
// do not hash to the advertised sum is never stored and never served;
// a matching one fills.
func TestPeerFillRejectsCorruptBytes(t *testing.T) {
	id := "sha256:abcd" // any id shape works; placement is irrelevant here
	result := []byte(`{"latency":42}`)
	serve := func(sum string) *httptest.Server {
		return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set(resultSumHeader, sum)
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(jobBody{ID: id, Status: "done", Result: result})
		}))
	}
	peerNetTo := func(ts *httptest.Server) *peerNet {
		addr := ts.Listener.Addr().String()
		ring, err := cluster.New(cluster.Config{Self: "self.invalid:1", Peers: []string{addr}})
		if err != nil {
			t.Fatal(err)
		}
		return newPeerNet(Config{Ring: ring})
	}

	liar := serve("sha256:0000000000000000000000000000000000000000000000000000000000000000")
	defer liar.Close()
	cn := peerNetTo(liar)
	if _, ok := cn.fill(context.Background(), id); ok {
		t.Fatal("fill accepted bytes that do not match the advertised sum")
	}
	if cn.peerFillCorrupt.Load() == 0 {
		t.Fatal("corrupt fill not counted")
	}

	honest := serve(resultSum(result))
	defer honest.Close()
	cn = peerNetTo(honest)
	body, ok := cn.fill(context.Background(), id)
	if !ok || string(body) != string(result) {
		t.Fatalf("verified fill = %q, %v; want the peer's result", body, ok)
	}
	if cn.peerFills.Load() != 1 {
		t.Fatalf("peerFills = %d, want 1", cn.peerFills.Load())
	}
}

// TestClusterChaosDrillOwnerKilledMidJob is the in-process cluster
// chaos drill (scripts/cluster_chaos.sh is its out-of-process twin):
// a 3-node journaled ring accepts a simulate on its owner, the owner
// is killed before its wedged pool can run the job, survivors still
// answer the job byte-identically (failover), and the restarted owner
// replays its journal and serves the same bytes. One survivor's
// journal runs over fsx.Faulty with every fsync failing — a flaky
// disk degrades durability accounting, never answers.
func TestClusterChaosDrillOwnerKilledMidJob(t *testing.T) {
	want := controlSimulate(t)
	id := simulateID(t)

	jdirs := make(map[string]string)
	gates := make(map[string]chan struct{})
	var flaky *fsx.Faulty
	tc := newTestCluster(t, 3, func(addr string, cfg *Config) {
		jdirs[addr] = t.TempDir()
		opts := journal.Options{Dir: jdirs[addr]}
		if cfg.Ring.Successors(id)[1] == addr {
			// The first successor — the member that will compute the
			// dead owner's job — journals onto a disk where every write
			// fails with a torn prefix. Durability degrades (the journal
			// counts append errors); answers must not.
			flaky = fsx.NewFaulty(fsx.OS{}, fsx.FaultPlan{Seed: 7, PWrite: 1, ShortWrites: true})
			opts.FS = flaky
		}
		j, _, err := journal.Open(opts)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = j.Close() })
		cfg.Journal = j
		cfg.Workers = 1
	})
	order := tc.order(id)
	owner := order[0]

	// Wedge every pool so the accepted job cannot finish before the
	// kill; survivors are released afterwards.
	for _, addr := range tc.addrs {
		gate := make(chan struct{})
		gates[addr] = gate
		if _, err := tc.srvs[addr].Pool().Submit("sha256:wedge-"+addr, func(ctx context.Context) (any, error) {
			select {
			case <-gate:
			case <-ctx.Done():
			}
			return nil, nil
		}); err != nil {
			t.Fatal(err)
		}
	}

	resp := postJSON(t, tc.url(owner)+"/v1/simulate", recoverySim)
	var accepted jobBody
	if err := json.Unmarshal(readBody(t, resp), &accepted); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted || accepted.ID != id {
		t.Fatalf("owner submit: %d %+v", resp.StatusCode, accepted)
	}
	tc.kill(owner)
	for addr, gate := range gates {
		if addr != owner {
			close(gate)
		}
	}

	// Acceptance criterion: the dead owner's job is still answerable.
	// A survivor takes the resubmission (failover path), computes, and
	// the result matches the single-node control byte for byte.
	survivor := order[1]
	resp = postJSON(t, tc.url(survivor)+"/v1/simulate", recoverySim)
	var resub jobBody
	if err := json.Unmarshal(readBody(t, resp), &resub); err != nil {
		t.Fatal(err)
	}
	if resub.ID != id {
		t.Fatalf("resubmitted id %s, want %s", resub.ID, id)
	}
	got := jobResultBody(t, tc.url(survivor), id)
	if string(got) != string(want) {
		t.Fatalf("survivor result differs from control:\n %s\n %s", got, want)
	}
	if cn := tc.srvs[survivor].cluster; cn.failovers.Load() == 0 {
		t.Fatal("survivor answered without recording the reroute")
	}

	// The other survivor reads the same bytes through a cross-node
	// poll — on a journal whose disk injected real fsync failures.
	other := order[2]
	if string(jobResultBody(t, tc.url(other), id)) != string(want) {
		t.Fatal("second survivor's poll differs from control")
	}
	if flaky.Injected() == 0 {
		t.Fatal("fault plan injected nothing: the fsx.Faulty seam was not exercised")
	}

	// Restart the owner: same journal, fresh server. The interrupted
	// simulate replays, recomputes, and serves the control bytes.
	j2, rec, err := journal.Open(journal.Options{Dir: jdirs[owner]})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	found := false
	for _, r := range rec.Incomplete {
		if r.ID == id {
			found = true
		}
	}
	if !found {
		t.Fatalf("killed owner's journal lost the accepted job: %+v", rec.Incomplete)
	}
	ring, err := cluster.New(cluster.Config{Self: owner, Peers: tc.addrs})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := New(Config{Workers: 2, Cache: cache.Config{Dir: t.TempDir()}, Journal: j2, Ring: ring})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = s2.Close(ctx)
	}()
	recov := s2.Recover(rec)
	if recov.Requeued == 0 {
		t.Fatalf("recovery requeued nothing: %+v", recov)
	}
	if string(jobResultBody(t, ts2.URL, id)) != string(want) {
		t.Fatal("restarted owner's recovered result differs from control")
	}
}
