package server

import (
	"math"
	"net/http"
	"strconv"
	"time"
)

// Deadline-aware admission control. Accepting a request the server
// cannot possibly answer in time wastes a worker on a response nobody
// is still waiting for; shedding it immediately with 429 +
// Retry-After lets a well-behaved client (the public client package)
// back off and try when the queue has drained. The estimate is the
// classic M/M/c-flavoured backlog bound: (queued + running) jobs,
// each costing the route's observed mean service time, spread over
// the pool's workers.

// deadlineHeader lets a client state its patience explicitly; a
// context/transport deadline on the request, when present, wins.
const deadlineHeader = "X-Starperf-Deadline"

// estWait estimates how long a request admitted now would wait before
// its job completes. Zero when the route is unobserved (first
// requests must be admitted — there is nothing to estimate from) or
// the pool is idle.
func (s *Server) estWait(route string) time.Duration {
	mean := s.metrics.meanMicros(route)
	if mean <= 0 {
		return 0
	}
	st := s.pool.Stats()
	backlog := st.Queued + st.Running
	if backlog <= 0 {
		return 0
	}
	us := float64(backlog) * mean / float64(st.Workers)
	return time.Duration(us * float64(time.Microsecond))
}

// requestDeadline resolves how long the caller is willing to wait:
// the request context's deadline, else the X-Starperf-Deadline
// header, else the configured default.
func (s *Server) requestDeadline(r *http.Request) time.Duration {
	if t, ok := r.Context().Deadline(); ok {
		return time.Until(t)
	}
	if h := r.Header.Get(deadlineHeader); h != "" {
		if d, err := time.ParseDuration(h); err == nil && d > 0 {
			return d
		}
	}
	return s.defaultDeadline
}

// setRetryAfter stamps the header every 429/503 carries: the
// estimated wait rounded up to whole seconds, at least 1.
func setRetryAfter(w http.ResponseWriter, wait time.Duration) {
	secs := int64(math.Ceil(wait.Seconds()))
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
}

// queueWait is the route-agnostic backlog estimate used where no
// single route applies (queue-full rejections, the concurrency cap):
// backlog × the mean service time over all routes ÷ workers.
func (s *Server) queueWait() time.Duration {
	mean := s.metrics.meanMicrosAll()
	if mean <= 0 {
		return 0
	}
	st := s.pool.Stats()
	backlog := st.Queued + st.Running
	if backlog <= 0 {
		return 0
	}
	us := float64(backlog) * mean / float64(st.Workers)
	return time.Duration(us * float64(time.Microsecond))
}
