package server

import (
	"math"
	"net/http"
	"strconv"
	"time"
)

// Deadline-aware admission control. Accepting a request the server
// cannot possibly answer in time wastes a worker on a response nobody
// is still waiting for; shedding it immediately with 429 +
// Retry-After lets a well-behaved client (the public client package)
// back off and try when the queue has drained. The estimate is the
// classic M/M/c-flavoured backlog bound: each queued or running job
// priced at its kind's observed mean *execution* time, spread over
// the pool's workers. Job execution time — recorded by the pool when
// jobs finish — is the right price, not the per-route HTTP latency:
// an async submit returns 202 in microseconds no matter how long its
// job occupies a worker, and a synchronous route's HTTP latency
// already contains queue wait, which would double-count the backlog.

// routeKind maps a compute route to the job kind its handler
// submits, so the route's own expected service time can be read from
// the pool's per-kind execution means.
var routeKind = map[string]string{
	"/v1/predict":  "predict",
	"/v1/simulate": "simulate",
	"/v1/sweep":    "sweep",
}

// estWait estimates how long a request admitted on route now would
// wait before its job completes: the backlog's drain time plus the
// route's own expected execution time. Zero when nothing has finished
// yet (first requests must be admitted — there is nothing to estimate
// from) and the pool is idle.
func (s *Server) estWait(route string) time.Duration {
	us := s.pool.EstWaitMicros() + s.pool.ExecMeanMicros(routeKind[route])
	return time.Duration(us * float64(time.Microsecond))
}

// requestDeadline resolves how long the caller is willing to wait:
// the request context's deadline, else the X-Starperf-Deadline
// header, else the configured default.
func (s *Server) requestDeadline(r *http.Request) time.Duration {
	if t, ok := r.Context().Deadline(); ok {
		return time.Until(t)
	}
	if h := r.Header.Get(deadlineHeader); h != "" {
		if d, err := time.ParseDuration(h); err == nil && d > 0 {
			return d
		}
	}
	return s.defaultDeadline
}

// setRetryAfter stamps the header every 429/503 carries: the
// estimated wait rounded up to whole seconds, at least 1.
func setRetryAfter(w http.ResponseWriter, wait time.Duration) {
	secs := int64(math.Ceil(wait.Seconds()))
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
}

// queueWait is the route-agnostic backlog estimate used where no
// single route applies (queue-full rejections, the concurrency cap):
// the pool backlog's drain time at the observed per-kind execution
// means.
func (s *Server) queueWait() time.Duration {
	return time.Duration(s.pool.EstWaitMicros() * float64(time.Microsecond))
}
