package server

// In-process crash/recovery over the full serving stack: a journaled
// server is killed (abandoned) with a simulate job accepted but not
// finished; a second server opens the same journal, replays the job,
// and serves its result — byte-identical to an uninterrupted run on a
// pristine server.

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"starperf/internal/cache"
	"starperf/internal/journal"
)

const recoverySim = `{"topo":{"kind":"star","n":3},"v":4,"msg_len":8,"rate":0.002,"seed":7}`

// jobResultBody polls GET /v1/jobs/{id} until done and returns the
// raw result bytes.
func jobResultBody(t *testing.T, base, id string) []byte {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		body := readBody(t, resp)
		if resp.StatusCode != 200 {
			t.Fatalf("job poll: %d %s", resp.StatusCode, body)
		}
		var jb jobBody
		if err := json.Unmarshal(body, &jb); err != nil {
			t.Fatal(err)
		}
		switch jb.Status {
		case "done":
			return []byte(jb.Result)
		case "failed":
			t.Fatalf("job failed: %s", jb.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %q", id, jb.Status)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// waitJournalIdle waits until j has no accepted-but-unterminated jobs.
// A job's "done" is visible over HTTP (served from the result cache)
// slightly before the worker's terminal record lands in the journal;
// tests that append their own records right after polling a result
// must wait for that record first, or their append races ahead of the
// worker's and the replay sees a different history.
func waitJournalIdle(t *testing.T, j *journal.Journal) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for j.Pending() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("journal still has %d pending jobs", j.Pending())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestJournaledServerRecoversInterruptedJob(t *testing.T) {
	jdir := t.TempDir()

	// The uninterrupted control run, on its own server and cache.
	ctrl, ctrlTS := newTestServer(t, Config{Workers: 2})
	resp := postJSON(t, ctrlTS.URL+"/v1/simulate", recoverySim)
	var submitted jobBody
	if err := json.Unmarshal(readBody(t, resp), &submitted); err != nil {
		t.Fatal(err)
	}
	want := jobResultBody(t, ctrlTS.URL, submitted.ID)
	_ = ctrl

	// Run 1: a journaled server accepts the same job but "crashes"
	// before its single worker — wedged on a blocked job — can run it.
	j1, _, err := journal.Open(journal.Options{Dir: jdir})
	if err != nil {
		t.Fatal(err)
	}
	s1, err := New(Config{Workers: 1, Cache: cacheCfg(t), Journal: j1})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())
	gate := make(chan struct{})
	defer close(gate)
	if _, err := s1.Pool().Submit("sha256:wedge", func(ctx context.Context) (any, error) {
		select {
		case <-gate:
		case <-ctx.Done():
		}
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}
	resp = postJSON(t, ts1.URL+"/v1/simulate", recoverySim)
	var accepted jobBody
	if err := json.Unmarshal(readBody(t, resp), &accepted); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted || accepted.ID != submitted.ID {
		t.Fatalf("journaled submit: %d %+v (control id %s)", resp.StatusCode, accepted, submitted.ID)
	}
	ts1.Close()
	// CRASH: no Close, no drain — only the fsynced journal survives.

	// Run 2: reopen the journal; the accepted-but-unfinished simulate
	// must be incomplete, replay through Recover, and serve its result.
	j2, rec, err := journal.Open(journal.Options{Dir: jdir})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	// Two interrupted records survive: the wedge (journaled with no
	// meta — Recover will fail it terminally, which is exactly what
	// should happen to a job nobody can rebuild) and the simulate.
	if len(rec.Incomplete) != 2 {
		t.Fatalf("recovery = %+v, want wedge + simulate", rec.Incomplete)
	}
	var sim *journal.Record
	for i := range rec.Incomplete {
		if rec.Incomplete[i].ID == submitted.ID {
			sim = &rec.Incomplete[i]
		}
	}
	if sim == nil || sim.Kind != "simulate" {
		t.Fatalf("simulate job missing from recovery: %+v", rec.Incomplete)
	}
	s2, err := New(Config{Workers: 2, Cache: cacheCfg(t), Journal: j2})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	recov := s2.Recover(rec)
	if recov.Requeued != 1 || recov.Skipped != 0 || recov.Failed != 1 {
		t.Fatalf("server recovery = %+v, want 1 requeued (simulate) + 1 failed (wedge)", recov)
	}
	got := jobResultBody(t, ts2.URL, submitted.ID)
	if string(got) != string(want) {
		t.Fatalf("recovered result differs from uninterrupted run:\n %s\n %s", got, want)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s2.Close(ctx); err != nil {
		t.Fatal(err)
	}

	// Run 3: books closed — nothing incomplete remains.
	j3, rec3, err := journal.Open(journal.Options{Dir: jdir})
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	if len(rec3.Incomplete) != 0 {
		t.Fatalf("after recovery, %d jobs still incomplete: %+v", len(rec3.Incomplete), rec3.Incomplete)
	}
}

// TestRecoverSkipsCachedResults: a job whose result already sits in
// the (shared) disk cache is journaled done without recomputation.
func TestRecoverSkipsCachedResults(t *testing.T) {
	jdir := t.TempDir()
	cdir := t.TempDir()

	j1, _, err := journal.Open(journal.Options{Dir: jdir})
	if err != nil {
		t.Fatal(err)
	}
	s1, err := New(Config{Workers: 1, Cache: cacheCfgDir(cdir), Journal: j1})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())
	resp := postJSON(t, ts1.URL+"/v1/simulate", recoverySim)
	var jb jobBody
	if err := json.Unmarshal(readBody(t, resp), &jb); err != nil {
		t.Fatal(err)
	}
	// Let it finish (result lands in the disk cache), then journal an
	// extra accepted record with no terminal — as if a crash hit a
	// duplicate submission after the first completed.
	jobResultBody(t, ts1.URL, jb.ID)
	waitJournalIdle(t, j1)
	meta, err := submitMeta("simulate", mustSimReq(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := j1.Append(journal.Record{Type: journal.TypeAccepted, ID: jb.ID, Kind: meta.Kind, Req: meta.Req}); err != nil {
		t.Fatal(err)
	}
	ts1.Close()

	j2, rec, err := journal.Open(journal.Options{Dir: jdir})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if len(rec.Incomplete) != 1 {
		t.Fatalf("recovery = %+v, want 1 incomplete", rec.Incomplete)
	}
	s2, err := New(Config{Workers: 1, Cache: cacheCfgDir(cdir), Journal: j2})
	if err != nil {
		t.Fatal(err)
	}
	recov := s2.Recover(rec)
	if recov.Skipped != 1 || recov.Requeued != 0 {
		t.Fatalf("recovery with cached result = %+v, want 1 skipped", recov)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s2.Close(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestRecoverRequeuesCorruptCachedResult: recovery must take a
// verifying read of the cache, not a bare existence check — a corrupt
// disk entry journaled as "done" would 404 the job forever. The
// corrupt entry is quarantined, the job re-enqueued, and the
// recomputed result is byte-identical to the pre-crash one.
func TestRecoverRequeuesCorruptCachedResult(t *testing.T) {
	jdir := t.TempDir()
	cdir := t.TempDir()

	j1, _, err := journal.Open(journal.Options{Dir: jdir})
	if err != nil {
		t.Fatal(err)
	}
	s1, err := New(Config{Workers: 1, Cache: cacheCfgDir(cdir), Journal: j1})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())
	resp := postJSON(t, ts1.URL+"/v1/simulate", recoverySim)
	var jb jobBody
	if err := json.Unmarshal(readBody(t, resp), &jb); err != nil {
		t.Fatal(err)
	}
	want := jobResultBody(t, ts1.URL, jb.ID)
	waitJournalIdle(t, j1)
	// An accepted record with no terminal, as if a crash caught a
	// duplicate submission right after the first run completed.
	meta, err := submitMeta("simulate", mustSimReq(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := j1.Append(journal.Record{Type: journal.TypeAccepted, ID: jb.ID, Kind: meta.Kind, Req: meta.Req}); err != nil {
		t.Fatal(err)
	}
	ts1.Close()

	// Corrupt the persisted entry: the file still exists (Contains
	// would be fooled) but fails verification.
	entry := filepath.Join(cdir, strings.TrimPrefix(jb.ID, "sha256:")+".json")
	if _, err := os.Stat(entry); err != nil {
		t.Fatalf("cache entry not on disk before corruption: %v", err)
	}
	if err := os.WriteFile(entry, []byte("starperf-cache v2 garbage\nnot the payload"), 0o644); err != nil {
		t.Fatal(err)
	}

	j2, rec, err := journal.Open(journal.Options{Dir: jdir})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if len(rec.Incomplete) != 1 {
		t.Fatalf("recovery = %+v, want 1 incomplete", rec.Incomplete)
	}
	s2, err := New(Config{Workers: 1, Cache: cacheCfgDir(cdir), Journal: j2})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	recov := s2.Recover(rec)
	if recov.Requeued != 1 || recov.Skipped != 0 {
		t.Fatalf("recovery with corrupt cache = %+v, want 1 requeued (a stat-only check would skip it)", recov)
	}
	if q := s2.Cache().Stats().Quarantined; q < 1 {
		t.Fatalf("corrupt entry not quarantined (quarantined = %d)", q)
	}
	got := jobResultBody(t, ts2.URL, jb.ID)
	if string(got) != string(want) {
		t.Fatalf("recomputed result differs:\n %s\n %s", got, want)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s2.Close(ctx); err != nil {
		t.Fatal(err)
	}

	// Books closed: the requeued job reached done, nothing replays.
	j3, rec3, err := journal.Open(journal.Options{Dir: jdir})
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	if len(rec3.Incomplete) != 0 {
		t.Fatalf("after corrupt-entry recovery, still incomplete: %+v", rec3.Incomplete)
	}
}

func cacheCfgDir(dir string) cache.Config {
	return cache.Config{Dir: dir}
}

// mustSimReq parses recoverySim into its typed, defaulted request.
func mustSimReq(t *testing.T) SimulateRequest {
	t.Helper()
	var r SimulateRequest
	if err := json.Unmarshal([]byte(recoverySim), &r); err != nil {
		t.Fatal(err)
	}
	return r.withDefaults()
}
