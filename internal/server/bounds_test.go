package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
)

const boundsS4 = `{"topo":{"kind":"star","n":4},"v":6,"msg_len":32,"rate":0.004}`

// TestBoundsEndToEnd drives the synchronous /v1/bounds path: a cold
// request (miss), the identical request again (hit, byte-identical),
// an unboundable operating point as a valid 200 body, and the wire
// error contract for invalid configs.
func TestBoundsEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})

	resp := postJSON(t, ts.URL+"/v1/bounds", boundsS4)
	first := readBody(t, resp)
	if resp.StatusCode != 200 {
		t.Fatalf("bounds: %d %s", resp.StatusCode, first)
	}
	if got := resp.Header.Get("X-Starperf-Cache"); got != "miss" {
		t.Fatalf("cold bounds cache header %q, want miss", got)
	}
	id := resp.Header.Get("X-Starperf-Job")
	if !strings.HasPrefix(id, "sha256:") {
		t.Fatalf("job header %q not a content hash", id)
	}
	var res BoundsResult
	if err := json.Unmarshal(first, &res); err != nil {
		t.Fatal(err)
	}
	if res.Unboundable || !(res.WorstBound > 0) || len(res.Classes) == 0 {
		t.Fatalf("implausible bounds result: %+v", res)
	}
	if res.Classes[len(res.Classes)-1].Bound != res.WorstBound {
		t.Fatalf("worst bound %v != deepest class %v", res.WorstBound, res.Classes)
	}

	// Identical request → cache hit, byte-identical body, same id.
	resp = postJSON(t, ts.URL+"/v1/bounds", boundsS4)
	second := readBody(t, resp)
	if got := resp.Header.Get("X-Starperf-Cache"); got != "hit" {
		t.Fatalf("warm bounds cache header %q, want hit", got)
	}
	if resp.Header.Get("X-Starperf-Job") != id {
		t.Fatal("same request produced a different job id")
	}
	if !bytes.Equal(first, second) {
		t.Fatalf("cache hit not byte-identical:\n %s\n %s", first, second)
	}

	// An unboundable operating point is a valid 200, not an error —
	// mirroring /v1/predict's saturated:true.
	resp = postJSON(t, ts.URL+"/v1/bounds",
		`{"topo":{"kind":"star","n":4},"v":6,"msg_len":32,"rate":0.03}`)
	body := readBody(t, resp)
	if resp.StatusCode != 200 {
		t.Fatalf("unboundable point: %d %s", resp.StatusCode, body)
	}
	var ub BoundsResult
	if err := json.Unmarshal(body, &ub); err != nil {
		t.Fatal(err)
	}
	if !ub.Unboundable || ub.WorstBound != 0 {
		t.Fatalf("unboundable point: %+v, want unboundable:true with zero bound", ub)
	}

	// Invalid configs are 400 invalid_config; typos are strict-decode
	// 400s.
	resp = postJSON(t, ts.URL+"/v1/bounds",
		`{"topo":{"kind":"ring","n":4},"v":6,"msg_len":32,"rate":0.004}`)
	body = readBody(t, resp)
	if resp.StatusCode != 400 || !bytes.Contains(body, []byte("invalid_config")) {
		t.Fatalf("bad topology: %d %s", resp.StatusCode, body)
	}
	resp = postJSON(t, ts.URL+"/v1/bounds", `{"topo":{"kind":"star","n":4},"vee":6}`)
	body = readBody(t, resp)
	if resp.StatusCode != 400 || !bytes.Contains(body, []byte("invalid_config")) {
		t.Fatalf("unknown field: %d %s", resp.StatusCode, body)
	}
}

// TestBoundsGoldenWire pins /v1/bounds's canonical job hash and the
// defaults-normalisation invariant: explicit defaults must not mint a
// different job than omitted ones. A changed hash here is a
// cache-compatibility break — bump jobs.SchemaVersion instead.
func TestBoundsGoldenWire(t *testing.T) {
	var req BoundsRequest
	if err := json.Unmarshal([]byte(boundsS4), &req); err != nil {
		t.Fatal(err)
	}
	h, err := req.withDefaults().hash()
	if err != nil {
		t.Fatal(err)
	}
	const want = "sha256:53e5779ad55c0ee2b7a6fa10227ae1c1a6789175dbff3130dd6851e08e3089e9"
	if h != want {
		t.Errorf("bounds hash = %q, want %q", h, want)
	}
	explicit := BoundsRequest{
		Topo: TopoSpec{Kind: "star", N: 4}, Routing: "enbc",
		V: 6, MsgLen: 32, Rate: 0.004, BufCap: 2, LinkBW: 1,
	}
	he, err := explicit.withDefaults().hash()
	if err != nil {
		t.Fatal(err)
	}
	if he != h {
		t.Fatalf("explicit defaults hash %q != omitted defaults %q", he, h)
	}
}

// controlBounds computes boundsS4 on a pristine single-node server:
// the byte-identical reference every cluster answer must match.
func controlBounds(t *testing.T) []byte {
	t.Helper()
	_, ts := newTestServer(t, Config{Workers: 2})
	resp := postJSON(t, ts.URL+"/v1/bounds", boundsS4)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("control bounds: %d", resp.StatusCode)
	}
	return readBody(t, resp)
}

// boundsID hashes boundsS4 the way the handler does.
func boundsID(t *testing.T) string {
	t.Helper()
	var req BoundsRequest
	if err := json.Unmarshal([]byte(boundsS4), &req); err != nil {
		t.Fatal(err)
	}
	id, err := req.withDefaults().hash()
	if err != nil {
		t.Fatal(err)
	}
	return id
}

// TestClusterBoundsForwardRelayVerbatim: a /v1/bounds request sent to
// a non-owner is relayed to the ring owner and the relayed body is
// byte-identical to a single-node control — the forward path never
// re-encodes the result.
func TestClusterBoundsForwardRelayVerbatim(t *testing.T) {
	want := controlBounds(t)
	tc := newTestCluster(t, 3, nil)
	order := tc.order(boundsID(t))
	owner, nonOwner := order[0], order[1]

	resp := postJSON(t, tc.url(nonOwner)+"/v1/bounds", boundsS4)
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("forwarded bounds: %d %s", resp.StatusCode, body)
	}
	if !bytes.Equal(body, want) {
		t.Fatalf("forwarded result differs from control:\n %s\n %s", body, want)
	}
	if got := resp.Header.Get(nodeHeader); got != owner {
		t.Fatalf("served by %q, want owner %q", got, owner)
	}
	if got := tc.srvs[nonOwner].cluster.forwarded.Load(); got != 1 {
		t.Fatalf("non-owner forwarded counter = %d, want 1", got)
	}

	// The cached result now lives on the owner; the same request via
	// the non-owner again is still byte-identical (relayed hit).
	resp = postJSON(t, tc.url(nonOwner)+"/v1/bounds", boundsS4)
	body = readBody(t, resp)
	if !bytes.Equal(body, want) {
		t.Fatalf("relayed hit differs from control:\n %s\n %s", body, want)
	}
}
