package server

// The X-Starperf-* header contract (PR 10 header audit). Every custom
// header the server or the public client speaks is declared in this
// one block and documented in DESIGN.md's header table; the
// TestStarperfHeaderSet source scan fails the build's tests when a
// new X-Starperf-* literal appears anywhere else, so a header cannot
// ship undeclared or undocumented.
const (
	// jobHeader names the content-hash job id a submission resolved
	// to, on every 200/202 from a compute route.
	jobHeader = "X-Starperf-Job"
	// cacheHeader reports whether the response bytes came from the
	// result cache ("hit") or fresh computation ("miss").
	cacheHeader = "X-Starperf-Cache"
	// deadlineHeader lets a client state its patience explicitly
	// (Go duration string); a context/transport deadline on the
	// request, when present, wins. Admission control sheds requests
	// whose estimated queue wait exceeds it.
	deadlineHeader = "X-Starperf-Deadline"
	// nodeHeader names the cluster node that actually served a
	// response (set on forwarded replies).
	nodeHeader = "X-Starperf-Node"
	// forwardedHeader marks a peer-relayed request (value: the
	// forwarding node's address). Receivers serve it locally —
	// forwarding depth is structurally one.
	forwardedHeader = "X-Starperf-Forwarded"
	// resultSumHeader carries the sha256 of a returned result body,
	// so a peer filling its cache can verify the bytes it received
	// are the bytes the owner stored.
	resultSumHeader = "X-Starperf-Result-Sum"
)
