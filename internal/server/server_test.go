package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"starperf/internal/cache"
)

// newTestServer builds a Server plus an httptest front end, torn down
// with the test.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Cache.Dir == "" {
		cfg.Cache.Dir = t.TempDir()
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Close(ctx); err != nil {
			t.Errorf("server close: %v", err)
		}
	})
	return s, ts
}

func postJSON(t *testing.T, url, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func readBody(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

const predictS4 = `{"topo":{"kind":"star","n":4},"v":4,"msg_len":16,"rate":0.004}`

// TestPredictEndToEnd drives the synchronous path: healthz, a cold
// predict (miss), and the identical request again — which must be a
// cache hit with a byte-identical body.
func TestPredictEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if body := readBody(t, resp); resp.StatusCode != 200 || !bytes.Contains(body, []byte("true")) {
		t.Fatalf("healthz: %d %s", resp.StatusCode, body)
	}

	resp = postJSON(t, ts.URL+"/v1/predict", predictS4)
	first := readBody(t, resp)
	if resp.StatusCode != 200 {
		t.Fatalf("predict: %d %s", resp.StatusCode, first)
	}
	if got := resp.Header.Get("X-Starperf-Cache"); got != "miss" {
		t.Fatalf("cold predict cache header %q, want miss", got)
	}
	id := resp.Header.Get("X-Starperf-Job")
	if !strings.HasPrefix(id, "sha256:") {
		t.Fatalf("job header %q not a content hash", id)
	}
	var res PredictResult
	if err := json.Unmarshal(first, &res); err != nil {
		t.Fatal(err)
	}
	if res.Saturated || !(res.LatencyCycles > 0) || !res.Converged {
		t.Fatalf("implausible predict result: %+v", res)
	}

	resp = postJSON(t, ts.URL+"/v1/predict", predictS4)
	second := readBody(t, resp)
	if got := resp.Header.Get("X-Starperf-Cache"); got != "hit" {
		t.Fatalf("warm predict cache header %q, want hit", got)
	}
	if resp.Header.Get("X-Starperf-Job") != id {
		t.Fatal("same request produced a different job id")
	}
	if !bytes.Equal(first, second) {
		t.Fatalf("cache hit not byte-identical:\n %s\n %s", first, second)
	}
}

// TestPredictErrors covers the wire error contract: invalid configs
// are 400 invalid_config, typos are 400 invalid_config (strict
// decoding), saturation is a 200 with saturated:true.
func TestPredictErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	resp := postJSON(t, ts.URL+"/v1/predict", `{"topo":{"kind":"ring","n":4},"v":4,"msg_len":16,"rate":0.004}`)
	body := readBody(t, resp)
	if resp.StatusCode != 400 || !bytes.Contains(body, []byte("invalid_config")) {
		t.Fatalf("bad topology: %d %s", resp.StatusCode, body)
	}

	resp = postJSON(t, ts.URL+"/v1/predict", `{"topo":{"kind":"star","n":4},"vee":4}`)
	body = readBody(t, resp)
	if resp.StatusCode != 400 || !bytes.Contains(body, []byte("invalid_config")) {
		t.Fatalf("unknown field: %d %s", resp.StatusCode, body)
	}

	resp = postJSON(t, ts.URL+"/v1/predict", `{"topo":{"kind":"star","n":4},"v":4,"msg_len":16,"rate":5}`)
	body = readBody(t, resp)
	if resp.StatusCode != 200 {
		t.Fatalf("saturated predict: %d %s", resp.StatusCode, body)
	}
	var res PredictResult
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if !res.Saturated {
		t.Fatalf("rate 5 msgs/node/cycle not saturated: %+v", res)
	}

	resp, err := http.Get(ts.URL + "/v1/jobs/sha256:doesnotexist")
	if err != nil {
		t.Fatal(err)
	}
	if body := readBody(t, resp); resp.StatusCode != 404 {
		t.Fatalf("unknown job: %d %s", resp.StatusCode, body)
	}
}

// pollJob polls GET /v1/jobs/{id} until the job leaves the queue,
// failing the test on timeout.
func pollJob(t *testing.T, base, id string) jobBody {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for {
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		body := readBody(t, resp)
		if resp.StatusCode != 200 {
			t.Fatalf("poll %s: %d %s", id, resp.StatusCode, body)
		}
		var jb jobBody
		if err := json.Unmarshal(body, &jb); err != nil {
			t.Fatal(err)
		}
		if jb.Status == "done" || jb.Status == "failed" {
			return jb
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s at deadline", id, jb.Status)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

const simulateS4 = `{"topo":{"kind":"star","n":4},"v":4,"msg_len":16,"rate":0.01,"warmup":500,"measure":2000}`

// TestSimulateLifecycle drives the async path end to end: submit,
// poll to completion, fetch the result, and resubmit — which must
// answer done immediately from the cache.
func TestSimulateLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})

	resp := postJSON(t, ts.URL+"/v1/simulate", simulateS4)
	body := readBody(t, resp)
	if resp.StatusCode != 202 {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var sub jobBody
	if err := json.Unmarshal(body, &sub); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(sub.ID, "sha256:") {
		t.Fatalf("job id %q not a content hash", sub.ID)
	}

	jb := pollJob(t, ts.URL, sub.ID)
	if jb.Status != "done" {
		t.Fatalf("job failed: %s", jb.Error)
	}
	var res SimulateResult
	if err := json.Unmarshal(jb.Result, &res); err != nil {
		t.Fatal(err)
	}
	if !(res.MeanLatency > 0) || res.Measured == 0 {
		t.Fatalf("implausible simulate result: %+v", res)
	}

	// Resubmitting the identical request answers from the cache.
	resp = postJSON(t, ts.URL+"/v1/simulate", simulateS4)
	body = readBody(t, resp)
	if resp.StatusCode != 200 {
		t.Fatalf("resubmit: %d %s", resp.StatusCode, body)
	}
	var again jobBody
	if err := json.Unmarshal(body, &again); err != nil {
		t.Fatal(err)
	}
	if again.ID != sub.ID || again.Status != "done" {
		t.Fatalf("resubmit = %+v, want done %s", again, sub.ID)
	}

	// And a fresh poll returns the same result bytes.
	jb2 := pollJob(t, ts.URL, sub.ID)
	if !bytes.Equal(jb.Result, jb2.Result) {
		t.Fatalf("result bytes changed between polls:\n %s\n %s", jb.Result, jb2.Result)
	}
}

// TestSweepEndpoint runs a tiny Figure 1 panel through /v1/sweep and
// checks the panel structure comes back.
func TestSweepEndpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a (small) simulation sweep")
	}
	_, ts := newTestServer(t, Config{Workers: 2})

	resp := postJSON(t, ts.URL+"/v1/sweep",
		`{"panel":"a","points":1,"seeds":[1],"warmup":300,"measure":1000,"workers":2}`)
	body := readBody(t, resp)
	if resp.StatusCode != 202 {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var sub jobBody
	if err := json.Unmarshal(body, &sub); err != nil {
		t.Fatal(err)
	}
	jb := pollJob(t, ts.URL, sub.ID)
	if jb.Status != "done" {
		t.Fatalf("sweep failed: %s", jb.Error)
	}
	var panel SweepResult
	if err := json.Unmarshal(jb.Result, &panel); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(panel.Title, "Figure 1(a)") || len(panel.Series) != 2 {
		t.Fatalf("implausible panel: title %q, %d series", panel.Title, len(panel.Series))
	}
	for _, s := range panel.Series {
		if len(s.Points) != 1 {
			t.Fatalf("series %s has %d points, want 1", s.Name, len(s.Points))
		}
	}
}

// TestSingleflightOverHTTP is the serving layer's dedup guarantee:
// concurrent identical requests share one computation, observed
// through the pool's dedup counter, and every caller reads the same
// bytes.
func TestSingleflightOverHTTP(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})

	// Heavy enough that it is still in flight while the duplicates
	// arrive (S5 is 120 nodes; this runs for well over the handful of
	// milliseconds four local POSTs take).
	const heavy = `{"topo":{"kind":"star","n":5},"v":6,"msg_len":32,"rate":0.01,"warmup":8000,"measure":30000}`

	resp := postJSON(t, ts.URL+"/v1/simulate", heavy)
	body := readBody(t, resp)
	if resp.StatusCode != 202 {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var sub jobBody
	if err := json.Unmarshal(body, &sub); err != nil {
		t.Fatal(err)
	}

	const dups = 4
	for i := 0; i < dups; i++ {
		resp := postJSON(t, ts.URL+"/v1/simulate", heavy)
		db := readBody(t, resp)
		var d jobBody
		if err := json.Unmarshal(db, &d); err != nil {
			t.Fatal(err)
		}
		if d.ID != sub.ID {
			t.Fatalf("duplicate %d got id %s, want %s", i, d.ID, sub.ID)
		}
	}

	st := s.Pool().Stats()
	if st.Submitted != 1 || st.Deduped != dups {
		t.Fatalf("pool stats %+v, want 1 submitted / %d deduped", st, dups)
	}

	jb := pollJob(t, ts.URL, sub.ID)
	if jb.Status != "done" {
		t.Fatalf("job failed: %s", jb.Error)
	}
	jb2 := pollJob(t, ts.URL, sub.ID)
	if !bytes.Equal(jb.Result, jb2.Result) {
		t.Fatal("deduplicated result not byte-stable")
	}

	// The dedup is visible on the public metrics surface too.
	mresp, err := http.Get(ts.URL + "/metricsz")
	if err != nil {
		t.Fatal(err)
	}
	mbody := readBody(t, mresp)
	var m Metricsz
	if err := json.Unmarshal(mbody, &m); err != nil {
		t.Fatal(err)
	}
	if m.Pool.Deduped != dups || m.Cache.Puts == 0 {
		t.Fatalf("metricsz %s", mbody)
	}
	if len(m.Routes) == 0 {
		t.Fatal("metricsz reports no routes")
	}
}

// TestConcurrencyCap: requests past MaxInFlight shed with 503 instead
// of queueing without bound.
func TestConcurrencyCap(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, MaxInFlight: 1})
	// Saturate the one slot from inside the handler semaphore by
	// occupying it directly.
	s.sem <- struct{}{}
	defer func() { <-s.sem }()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body := readBody(t, resp)
	if resp.StatusCode != 503 || !bytes.Contains(body, []byte("queue_full")) {
		t.Fatalf("capped request: %d %s", resp.StatusCode, body)
	}
}

// TestBodyLimit: oversized request bodies are refused with 413.
func TestBodyLimit(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, MaxBodyBytes: 64})
	resp := postJSON(t, ts.URL+"/v1/predict",
		`{"topo":{"kind":"star","n":4},"v":4,"msg_len":16,"rate":0.004,"routing":"`+strings.Repeat("x", 256)+`"}`)
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: %d %s", resp.StatusCode, body)
	}
}

// TestGoldenWireHashes pins the canonical job-hash strings of the
// wire schema. A change here is a cache-compatibility break: bump
// jobs.SchemaVersion rather than silently re-keying every deployed
// result store.
func TestGoldenWireHashes(t *testing.T) {
	predict := PredictRequest{
		Topo: TopoSpec{Kind: "star", N: 4}, V: 4, MsgLen: 16, Rate: 0.004,
	}.withDefaults()
	simulate := SimulateRequest{
		Topo: TopoSpec{Kind: "star", N: 4}, V: 4, MsgLen: 16, Rate: 0.01,
		Warmup: 500, Measure: 2000,
	}.withDefaults()
	sweep := SweepRequest{Panel: "a"}.withDefaults()

	cases := []struct {
		name string
		got  func() (string, error)
		want string
	}{
		{"predict", predict.hash, "sha256:5075bd4abcf14192c577f92fa4656b6ff1770e091b263ba3fe9b07df4e1671a9"},
		{"simulate", simulate.hash, "sha256:5e2279015da3cec015a7a6ae5096df32f321e3699ab468d60a23bb6c64dd4955"},
		{"sweep", sweep.hash, "sha256:161a21697db35546f1d8472c3302307272815a79013fc2c5dfb747310729e856"},
	}
	for _, c := range cases {
		h, err := c.got()
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if h != c.want {
			t.Errorf("%s hash = %q, want %q", c.name, h, c.want)
		}
	}

	// Defaults are normalised before hashing: spelling a default
	// explicitly must not mint a different job.
	explicit := SimulateRequest{
		Topo: TopoSpec{Kind: "star", N: 4}, Routing: "enbc", V: 4, MsgLen: 16, Rate: 0.01,
		BufCap: 2, Seed: 1, Warmup: 500, Measure: 2000, Drain: 120000,
	}.withDefaults()
	he, err := explicit.hash()
	if err != nil {
		t.Fatal(err)
	}
	hs, err := simulate.hash()
	if err != nil {
		t.Fatal(err)
	}
	if he != hs {
		t.Fatalf("explicit defaults hash %q != omitted defaults %q", he, hs)
	}
}

// TestServerRejectsBadCacheConfig: construction surfaces cache config
// errors instead of serving with a broken store.
func TestServerRejectsBadCacheConfig(t *testing.T) {
	if _, err := New(Config{Cache: cache.Config{MaxBytes: -1}}); err == nil {
		t.Fatal("negative cache bound accepted")
	}
}

// TestRouteMetricsAccumulate: the per-route histogram surfaces
// request counts and a plausible latency sketch.
func TestRouteMetricsAccumulate(t *testing.T) {
	m := newMetrics()
	for i := 0; i < 100; i++ {
		m.observe("/v1/predict", 200, time.Duration(i)*time.Microsecond)
	}
	m.observe("/v1/predict", 400, 5*time.Millisecond)
	m.observe("/healthz", 200, 10*time.Microsecond)
	rep := m.report()
	if len(rep) != 2 {
		t.Fatalf("%d routes, want 2", len(rep))
	}
	// report is sorted by route name
	if rep[0].Route != "/healthz" || rep[1].Route != "/v1/predict" {
		t.Fatalf("route order %q, %q", rep[0].Route, rep[1].Route)
	}
	p := rep[1]
	if p.Count != 101 || p.Errors != 1 {
		t.Fatalf("predict route stats %+v", p)
	}
	if p.MaxMicros != 5000 || !(p.MeanMicros > 0) {
		t.Fatalf("latency stats %+v", p)
	}
	if p.P99Micros < p.P50Micros || p.P50Micros == 0 {
		t.Fatalf("quantiles not ordered: %+v", p)
	}
}
