// Package routing implements the family of deadlock-free fully
// adaptive wormhole routing algorithms for bipartite symmetric
// networks that the paper builds on:
//
//   - NHop — the negative-hop scheme of Boppana & Chalasani: virtual
//     channels are partitioned into levels and a message that has
//     taken l negative hops (hops from a colour-1 node to a colour-0
//     node) must occupy exactly the level-l virtual channel.
//   - Nbc — NHop augmented with bonus cards: unused level slack lets
//     a message occupy any level in a feasibility window instead of
//     exactly one, balancing virtual-channel utilisation.
//   - Enhanced-Nbc — the algorithm the paper models: V1 fully
//     adaptive class-a virtual channels usable at any time on any
//     minimal channel, plus a V2-level class-b Nbc escape subnetwork.
//
// The eligibility rules here are the single source of truth shared by
// the flit-level simulator (internal/desim) and the analytical model
// (internal/model), so the two cannot drift apart.
//
// Deadlock freedom. Class b alone is deadlock-free: a message's
// class-b level never decreases and strictly increases on negative
// hops, and within one level every waiting chain has length ≤ 1
// because two consecutive positive hops are impossible in a bipartite
// network (colours alternate). The feasibility upper bound
// level ≤ V2−1−R′ (R′ = negative hops still required) guarantees a
// message never runs out of levels. Class a adds adaptive channels
// that can always drain into class b (a Duato-style escape argument).
// The simulator's deadlock detector is used in tests to falsify
// deliberately broken variants of these rules.
package routing

import (
	"fmt"

	"starperf/internal/cfgerr"
	"starperf/internal/topology"
)

// Kind enumerates the implemented routing algorithms.
type Kind int

const (
	// NHop is the pure negative-hop scheme (class b only, no bonus
	// cards: exact level per negative-hop count).
	NHop Kind = iota
	// Nbc is negative-hop with bonus cards (class b only, level
	// window instead of exact level).
	Nbc
	// EnhancedNbc is Nbc plus V1 fully adaptive class-a virtual
	// channels — the algorithm the paper models.
	EnhancedNbc
)

// String returns the conventional algorithm name.
func (k Kind) String() string {
	switch k {
	case NHop:
		return "NHop"
	case Nbc:
		return "Nbc"
	case EnhancedNbc:
		return "Enhanced-Nbc"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Spec is a routing algorithm resolved against a topology and a
// virtual-channel budget. Virtual channels 0..V1-1 are class a
// (fully adaptive); V1..V1+V2-1 are class b (escape), with class-b
// VC index V1+l carrying level l.
type Spec struct {
	Kind Kind
	// V1 is the number of fully adaptive class-a VCs (0 except for
	// EnhancedNbc).
	V1 int
	// V2 is the number of class-b escape levels.
	V2 int
	// MaxNeg is the worst-case negative-hop requirement of the
	// topology, ⌈H/2⌉.
	MaxNeg int
}

// New resolves kind against a topology and a total VC budget V,
// validating that V covers the scheme's minimum requirement
// (V2min = ⌈H/2⌉+1 escape levels; EnhancedNbc additionally needs
// V1 ≥ 1). For NHop and Nbc all V channels are escape levels; for
// EnhancedNbc exactly V2min channels are reserved for the escape
// class — the paper's "minimum virtual channel requirement" — and the
// remaining V−V2min are class a.
func New(kind Kind, top topology.Topology, v int) (Spec, error) {
	v2min := topology.MinEscapeVCs(top.Diameter())
	s := Spec{Kind: kind, MaxNeg: topology.MaxNegativeHops(top.Diameter())}
	switch kind {
	case NHop, Nbc:
		if v < v2min {
			return Spec{}, cfgerr.Errorf("routing: %s on %s needs ≥%d VCs, got %d",
				kind, top.Name(), v2min, v)
		}
		s.V1, s.V2 = 0, v
	case EnhancedNbc:
		if v < v2min+1 {
			return Spec{}, cfgerr.Errorf("routing: %s on %s needs ≥%d VCs, got %d",
				kind, top.Name(), v2min+1, v)
		}
		s.V1, s.V2 = v-v2min, v2min
	default:
		return Spec{}, cfgerr.Errorf("routing: unknown kind %d", int(kind))
	}
	return s, nil
}

// MustNew is New but panics on error.
func MustNew(kind Kind, top topology.Topology, v int) Spec {
	s, err := New(kind, top, v)
	if err != nil {
		panic(err)
	}
	return s
}

// V returns the total number of virtual channels per physical channel.
func (s Spec) V() int { return s.V1 + s.V2 }

// IsClassA reports whether VC index vc is a fully adaptive class-a
// channel.
func (s Spec) IsClassA(vc int) bool { return vc < s.V1 }

// LevelOf returns the class-b level of VC index vc; panics if vc is
// class a.
func (s Spec) LevelOf(vc int) int {
	if vc < s.V1 || vc >= s.V() {
		panic(fmt.Sprintf("routing: LevelOf(%d) outside class b [%d,%d)", vc, s.V1, s.V()))
	}
	return vc - s.V1
}

// VCOfLevel returns the VC index of class-b level l.
func (s Spec) VCOfLevel(l int) int { return s.V1 + l }

// State is the per-message routing state threaded through the network.
type State struct {
	// NegHops is the number of negative hops taken so far.
	NegHops int
	// Level is the highest class-b level occupied so far (0 if the
	// message has only used class-a channels). It never decreases.
	Level int
}

// InitialState returns the state of a freshly injected message. The
// feasibility invariant Level + required ≤ V2−1 holds at injection
// because required ≤ MaxNeg = V2min−1 ≤ V2−1.
func InitialState() State { return State{} }

// ClassBWindow returns the inclusive range [lo, hi] of class-b levels
// a message in state st may occupy when taking a hop described by
// hopNeg (whether the hop is negative, i.e. leaves a colour-1 node)
// into a node of colour nextColor with dRemaining hops still to go
// after the hop. An empty window is returned as lo > hi.
//
// The lower bound enforces the deadlock-ordering invariant (levels
// never decrease; strictly increase on negative hops). For NHop the
// window collapses to the single exact level NegHops+hopNeg. The
// upper bound V2−1−R′ keeps enough headroom for the R′ negative hops
// the message must still take — the message's remaining "bonus
// cards" are exactly hi−lo.
func (s Spec) ClassBWindow(st State, hopNeg bool, nextColor, dRemaining int) (lo, hi int) {
	neg := 0
	if hopNeg {
		neg = 1
	}
	if s.Kind == NHop {
		l := st.NegHops + neg
		return l, l
	}
	lo = st.Level + neg
	hi = s.V2 - 1 - topology.RequiredNegativeHops(nextColor, dRemaining)
	return lo, hi
}

// EligibleVCs appends the VC indices a message in state st may occupy
// on a candidate next channel, and returns the extended slice.
// Class-a channels (EnhancedNbc only) are always eligible; class-b
// channels are eligible within ClassBWindow. The result is never
// empty for a live message on a minimal path: the escape window
// always contains at least one level (feasibility invariant,
// verified by TestWindowNeverEmpty).
func (s Spec) EligibleVCs(st State, hopNeg bool, nextColor, dRemaining int, buf []int) []int {
	for vc := 0; vc < s.V1; vc++ {
		buf = append(buf, vc)
	}
	lo, hi := s.ClassBWindow(st, hopNeg, nextColor, dRemaining)
	if lo < 0 {
		lo = 0
	}
	for l := lo; l <= hi && l < s.V2; l++ {
		buf = append(buf, s.VCOfLevel(l))
	}
	return buf
}

// Advance returns the message state after taking a hop on virtual
// channel vc, where hopNeg reports whether the hop was negative.
func (s Spec) Advance(st State, hopNeg bool, vc int) State {
	if hopNeg {
		st.NegHops++
	}
	if !s.IsClassA(vc) {
		st.Level = s.LevelOf(vc)
	}
	return st
}

// UnreachableError reports an injection-time routing failure: the
// destination cannot be reached from the source in the (possibly
// degraded) topology. The simulator returns it when a traffic pattern
// addresses a node stranded by a fault plan — rejecting the message
// at injection, before it can occupy channels it could never release.
type UnreachableError struct {
	// Top names the topology instance.
	Top string
	// Src and Dst are the unroutable pair.
	Src, Dst int
}

// Error formats the unreachable pair.
func (e *UnreachableError) Error() string {
	return fmt.Sprintf("routing: %s: no path from node %d to node %d", e.Top, e.Src, e.Dst)
}

// MisrouteVCs appends the VC indices a message in state st may occupy
// on a non-minimal (misroute) hop described by hopNeg/nextColor, with
// dRemaining hops still to go after the hop — for a misroute that is
// the distance from the hop's target, typically one more than before
// the hop. The simulator falls back to this when transient faults
// take down every profitable channel of the current hop.
//
// Deadlock freedom is preserved by a headroom rule: the hop is
// permitted only when the class-b feasibility window for the longer
// remaining journey is non-empty (lo ≤ V2−1−R′, with R′ the exact
// negative-hop requirement from the hop's target). Misrouting
// consumes that headroom — each detour adds distance, hence future
// negative hops, hence a tighter window — so a message can only
// detour finitely often before MisrouteVCs returns empty and the
// message must wait for a profitable channel to come back up. Waiting
// is safe: transient flaps end by construction (Down < Period), and a
// message that waits holds only channels ordered below the level it
// still has headroom to claim, so the class-b ordering argument of
// the package comment is untouched. For NHop the same rule applies to
// the exact level NegHops+neg. An empty result means "wait".
func (s Spec) MisrouteVCs(st State, hopNeg bool, nextColor, dRemaining int, buf []int) []int {
	neg := 0
	if hopNeg {
		neg = 1
	}
	lo := st.Level + neg
	if s.Kind == NHop {
		lo = st.NegHops + neg
	}
	if lo > s.V2-1-topology.RequiredNegativeHops(nextColor, dRemaining) {
		return buf
	}
	return s.EligibleVCs(st, hopNeg, nextColor, dRemaining, buf)
}

// BlockReason tags why a header's virtual-channel allocation attempt
// failed, so blocking can be attributed to the right term of the
// model: VC contention feeds the P_block·w̄ waiting term of eqs. 6 and
// 15, while fault-induced denials are outside the model entirely and
// must be separated before comparing model to simulation.
type BlockReason uint8

const (
	// BlockNone marks events that are not blocks (grants, lifecycle).
	BlockNone BlockReason = iota
	// BlockVCsBusy: at least one profitable channel was up, but every
	// eligible virtual channel on every candidate was occupied — the
	// contention the model's P_block (eqs. 6, 9–11) describes.
	BlockVCsBusy
	// BlockEjectionBusy: the message is at its destination and all V
	// ejection-channel VCs are occupied (the model treats ejection as
	// contention-free; a high count localises that approximation).
	BlockEjectionBusy
	// BlockLinkDown is a flap denial: every profitable channel's
	// physical link was transiently down and the misroute fallback had
	// no class-b headroom, so the header must wait for a link to come
	// back up. Only possible on fault-injected topologies.
	BlockLinkDown
)

// String names the block reason (stable identifiers used by the JSONL
// trace exporter).
func (r BlockReason) String() string {
	switch r {
	case BlockNone:
		return "none"
	case BlockVCsBusy:
		return "vcs-busy"
	case BlockEjectionBusy:
		return "ejection-busy"
	case BlockLinkDown:
		return "link-down"
	default:
		return fmt.Sprintf("BlockReason(%d)", uint8(r))
	}
}

// NumBlockReasons bounds the BlockReason enum for array-indexed
// per-reason counters.
const NumBlockReasons = 4

// Policy selects among free eligible virtual channels; it must match
// between the simulator and the analytical model's class-occupancy
// estimate.
type Policy int

const (
	// PreferClassA takes a random free class-a VC when one exists,
	// otherwise the lowest free eligible class-b level. This is the
	// default policy assumed by the model (adaptive first, escape as
	// fallback) and gives Enhanced-Nbc its performance edge.
	PreferClassA Policy = iota
	// RandomAny picks uniformly among all free eligible VCs.
	RandomAny
	// LowestEscapeFirst exhausts class-b levels bottom-up before
	// touching class a (an intentionally poor policy used in
	// ablation A2).
	LowestEscapeFirst
	// FirstProfitable restricts the header to the first profitable
	// output channel (deterministic minimal path, adaptivity degree
	// one) while keeping the usual VC preference on that channel. It
	// is the deterministic-routing baseline the adaptive schemes are
	// measured against.
	FirstProfitable
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case PreferClassA:
		return "prefer-class-a"
	case RandomAny:
		return "random-any"
	case LowestEscapeFirst:
		return "lowest-escape-first"
	case FirstProfitable:
		return "first-profitable"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}
