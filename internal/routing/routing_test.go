package routing

import (
	"math/rand"
	"testing"
	"testing/quick"

	"starperf/internal/stargraph"
	"starperf/internal/topology"
)

func s5() *stargraph.Graph { return stargraph.MustNew(5) }

func TestNewLayouts(t *testing.T) {
	g := s5() // H=6, V2min=4
	cases := []struct {
		kind   Kind
		v      int
		ok     bool
		v1, v2 int
	}{
		{NHop, 4, true, 0, 4},
		{NHop, 3, false, 0, 0},
		{Nbc, 4, true, 0, 4},
		{Nbc, 6, true, 0, 6},
		{EnhancedNbc, 6, true, 2, 4},
		{EnhancedNbc, 9, true, 5, 4},
		{EnhancedNbc, 12, true, 8, 4},
		{EnhancedNbc, 4, false, 0, 0},
	}
	for _, c := range cases {
		s, err := New(c.kind, g, c.v)
		if (err == nil) != c.ok {
			t.Fatalf("New(%v,%d): err=%v, want ok=%v", c.kind, c.v, err, c.ok)
		}
		if err == nil && (s.V1 != c.v1 || s.V2 != c.v2 || s.V() != c.v) {
			t.Fatalf("New(%v,%d): V1=%d V2=%d, want %d,%d", c.kind, c.v, s.V1, s.V2, c.v1, c.v2)
		}
	}
}

func TestClassHelpers(t *testing.T) {
	s := MustNew(EnhancedNbc, s5(), 6) // V1=2, V2=4
	for vc := 0; vc < 2; vc++ {
		if !s.IsClassA(vc) {
			t.Fatalf("vc %d should be class a", vc)
		}
	}
	for vc := 2; vc < 6; vc++ {
		if s.IsClassA(vc) {
			t.Fatalf("vc %d should be class b", vc)
		}
		if s.LevelOf(vc) != vc-2 || s.VCOfLevel(vc-2) != vc {
			t.Fatalf("level mapping broken at vc %d", vc)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("LevelOf(class a) did not panic")
		}
	}()
	s.LevelOf(0)
}

func TestNHopExactLevel(t *testing.T) {
	s := MustNew(NHop, s5(), 4)
	st := InitialState()
	lo, hi := s.ClassBWindow(st, true, 0, 3)
	if lo != 1 || hi != 1 {
		t.Fatalf("NHop window [%d,%d], want [1,1]", lo, hi)
	}
	st = s.Advance(st, true, s.VCOfLevel(1))
	lo, hi = s.ClassBWindow(st, false, 1, 2)
	if lo != 1 || hi != 1 {
		t.Fatalf("NHop window after neg hop [%d,%d], want [1,1]", lo, hi)
	}
}

func TestNbcWindowBounds(t *testing.T) {
	s := MustNew(Nbc, s5(), 6) // V2=6 levels, MaxNeg=3
	st := InitialState()
	// first hop, negative, entering colour-0 node with 5 hops left:
	// R' = ⌊5/2⌋ = 2, window = [1, 6-1-2] = [1,3]
	lo, hi := s.ClassBWindow(st, true, 0, 5)
	if lo != 1 || hi != 3 {
		t.Fatalf("window [%d,%d], want [1,3]", lo, hi)
	}
	// positive hop into colour-1 node, 4 left: R' = ⌈4/2⌉ = 2,
	// window = [0, 3]
	lo, hi = s.ClassBWindow(st, false, 1, 4)
	if lo != 0 || hi != 3 {
		t.Fatalf("window [%d,%d], want [0,3]", lo, hi)
	}
}

// TestWindowNeverEmpty walks random minimal paths under every
// algorithm, always taking the *highest* eligible class-b level (the
// adversarial choice for feasibility), and asserts the escape window
// never empties and the ordering invariants hold.
func TestWindowNeverEmpty(t *testing.T) {
	g := s5()
	rng := rand.New(rand.NewSource(42))
	for _, kind := range []Kind{NHop, Nbc, EnhancedNbc} {
		v := 4
		if kind == EnhancedNbc {
			v = 6
		}
		s := MustNew(kind, g, v)
		for trial := 0; trial < 4000; trial++ {
			src, dst := rng.Intn(g.N()), rng.Intn(g.N())
			cur, st := src, InitialState()
			prevLevel := -1
			for cur != dst {
				dims := g.ProfitableDims(cur, dst, nil)
				dim := dims[rng.Intn(len(dims))]
				next := g.Neighbor(cur, dim)
				hopNeg := g.Color(cur) == 1
				dRem := g.Distance(next, dst)
				lo, hi := s.ClassBWindow(st, hopNeg, g.Color(next), dRem)
				if lo > hi {
					t.Fatalf("%v: empty window at %d->%d (st=%+v, dRem=%d)",
						kind, cur, next, st, dRem)
				}
				if hi > s.V2-1 || lo < 0 {
					t.Fatalf("%v: window [%d,%d] outside [0,%d]", kind, lo, hi, s.V2-1)
				}
				// adversarial: occupy the highest level
				vc := s.VCOfLevel(hi)
				if hopNeg && hi < prevLevel+1 {
					t.Fatalf("%v: level did not increase on negative hop", kind)
				}
				if hi < prevLevel {
					t.Fatalf("%v: level decreased %d -> %d", kind, prevLevel, hi)
				}
				st = s.Advance(st, hopNeg, vc)
				prevLevel = st.Level
				cur = next
			}
			if st.NegHops != topology.RequiredNegativeHops(g.Color(src), g.Distance(src, dst)) {
				t.Fatalf("%v: neg hops %d, want %d", kind, st.NegHops,
					topology.RequiredNegativeHops(g.Color(src), g.Distance(src, dst)))
			}
		}
	}
}

// TestEligibleInvariants property-checks EligibleVCs: class-a always
// present for EnhancedNbc, all indices in range, sorted, no
// duplicates, and consistent with ClassBWindow.
func TestEligibleInvariants(t *testing.T) {
	g := s5()
	specs := []Spec{
		MustNew(NHop, g, 4),
		MustNew(Nbc, g, 5),
		MustNew(EnhancedNbc, g, 6),
		MustNew(EnhancedNbc, g, 12),
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := specs[rng.Intn(len(specs))]
		// Level may lag NegHops (class-a hops) or lead it (bonus
		// cards); both orders are legal states.
		st := State{NegHops: rng.Intn(4), Level: rng.Intn(s.V2)}
		hopNeg := rng.Intn(2) == 1
		nextColor := rng.Intn(2)
		dRem := rng.Intn(7)
		// colour consistency: a negative hop lands on colour 0
		if hopNeg {
			nextColor = 0
		} else {
			nextColor = 1
		}
		buf := s.EligibleVCs(st, hopNeg, nextColor, dRem, nil)
		seen := map[int]bool{}
		for i, vc := range buf {
			if vc < 0 || vc >= s.V() || seen[vc] {
				return false
			}
			seen[vc] = true
			if i > 0 && buf[i-1] >= vc {
				return false
			}
		}
		for vc := 0; vc < s.V1; vc++ {
			if !seen[vc] {
				return false
			}
		}
		lo, hi := s.ClassBWindow(st, hopNeg, nextColor, dRem)
		for l := 0; l < s.V2; l++ {
			want := l >= lo && l <= hi
			if seen[s.VCOfLevel(l)] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

func TestAdvance(t *testing.T) {
	s := MustNew(EnhancedNbc, s5(), 6)
	st := InitialState()
	st = s.Advance(st, true, 0) // class-a negative hop
	if st.NegHops != 1 || st.Level != 0 {
		t.Fatalf("after class-a neg hop: %+v", st)
	}
	st = s.Advance(st, false, s.VCOfLevel(2))
	if st.NegHops != 1 || st.Level != 2 {
		t.Fatalf("after class-b level-2 hop: %+v", st)
	}
}

func TestKindPolicyStrings(t *testing.T) {
	if NHop.String() != "NHop" || Nbc.String() != "Nbc" || EnhancedNbc.String() != "Enhanced-Nbc" {
		t.Fatal("Kind.String broken")
	}
	if PreferClassA.String() != "prefer-class-a" || RandomAny.String() != "random-any" ||
		LowestEscapeFirst.String() != "lowest-escape-first" {
		t.Fatal("Policy.String broken")
	}
	if Kind(99).String() == "" || Policy(99).String() == "" {
		t.Fatal("unknown enum String empty")
	}
}
