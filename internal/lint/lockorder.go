package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// lockOrder enforces a consistent global mutex acquisition order and
// flags the two deadlock shapes a single goroutine can author: an
// AB/BA inversion (one code path acquires A then B, another B then A
// — two goroutines interleaving those paths deadlock), and a
// double-acquire (taking a lock already held, directly or through a
// call chain — Go mutexes are not reentrant, so this deadlocks
// single-handedly). It also reports a lock still held when control
// leaves the function with no pending defer Unlock: a leaked critical
// section pins every future contender, the mutex sibling of the
// half-open breaker probe slot PR 5 leaked on panic.
//
// Lock identity is the declaring struct type plus field name
// (jobs.Pool.mu), which conflates instances of the same type. That is
// deliberately conservative: an ordering that is only safe because
// two instances are known distinct deserves a //lint:ignore with the
// argument written down.
type lockOrder struct {
	applies func(string) bool
}

// NewLockOrder returns the lockorder rule restricted to packages
// matched by applies.
func NewLockOrder(applies func(string) bool) Rule { return &lockOrder{applies: applies} }

func (r *lockOrder) Name() string { return "lockorder" }

func (r *lockOrder) Doc() string {
	return "consistent global lock order; no double-acquire or lock leaked past return"
}

func (r *lockOrder) Applies(p string) bool { return r.applies(p) }

// Check is unused: the engine dispatches ProgramRules to CheckProgram.
func (r *lockOrder) Check(pkg *Package, report ReportFunc) {}

// lockEdge is one observed acquisition order: to was acquired (or is
// acquirable through a call) while from was held.
type lockEdge struct {
	from, to   string // lock keys
	fromD, toD string // displays
	pkg        *Package
	pos        token.Pos
	via        string // call-chain suffix for interprocedural edges
}

func (r *lockOrder) CheckProgram(prog *Program, report ProgramReportFunc) {
	edges := make(map[[2]string]lockEdge) // first witness per ordered pair
	addEdge := func(e lockEdge) {
		k := [2]string{e.from, e.to}
		if _, ok := edges[k]; !ok {
			edges[k] = e
		}
	}

	for _, key := range prog.sortedFuncKeys() {
		ff := prog.Funcs[key]
		if !r.applies(ff.Pkg.Path) {
			continue
		}
		scanCritical(ff.Pkg, ff.Decl, csCallbacks{
			onAcquire: func(lock LockFact, held []heldLock) {
				for _, h := range held {
					if h.Key == lock.Key {
						report(ff.Pkg, lock.Pos, fmt.Sprintf(
							"%s acquired while already held: Go mutexes are not reentrant, "+
								"this deadlocks", lock.Display))
						continue
					}
					addEdge(lockEdge{
						from: h.Key, to: lock.Key, fromD: h.Display, toD: lock.Display,
						pkg: ff.Pkg, pos: lock.Pos,
					})
				}
			},
			onCall: func(call *ast.CallExpr, fn *types.Func, held []heldLock) {
				for _, lr := range prog.ReachAcquires(funcKey(fn)) {
					for _, h := range held {
						if h.Key == lr.Lock.Key {
							report(ff.Pkg, call.Pos(), fmt.Sprintf(
								"call acquires %s (via %s) while it is already held: "+
									"Go mutexes are not reentrant, this deadlocks",
								lr.Lock.Display, chainString(lr.Chain)))
							continue
						}
						addEdge(lockEdge{
							from: h.Key, to: lr.Lock.Key, fromD: h.Display, toD: lr.Lock.Display,
							pkg: ff.Pkg, pos: call.Pos(), via: " via " + chainString(lr.Chain),
						})
					}
				}
			},
			onLeak: func(pos token.Pos, lock LockFact) {
				report(ff.Pkg, pos, fmt.Sprintf(
					"%s still held when the function can return and no defer releases it: "+
						"a panic or early return here pins the lock forever (the probe-slot "+
						"leak shape); unlock on every path or defer the unlock", lock.Display))
			},
		})
	}

	// Inversions: both orders of the same unordered pair observed.
	keys := make([][2]string, 0, len(edges))
	for k := range edges {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, k := range keys {
		if k[0] >= k[1] {
			continue // report each unordered pair once, from its lesser key
		}
		fwd := edges[k]
		rev, ok := edges[[2]string{k[1], k[0]}]
		if !ok {
			continue
		}
		fp := fwd.pkg.Fset.Position(fwd.pos)
		rp := rev.pkg.Fset.Position(rev.pos)
		report(fwd.pkg, fwd.pos, fmt.Sprintf(
			"lock order inversion: %s is acquired while %s is held here%s, but the "+
				"reverse order occurs at %s:%d%s — two goroutines interleaving these "+
				"paths deadlock; pick one global order",
			fwd.toD, fwd.fromD, fwd.via, rp.Filename, rp.Line, rev.via))
		report(rev.pkg, rev.pos, fmt.Sprintf(
			"lock order inversion: %s is acquired while %s is held here%s, but the "+
				"reverse order occurs at %s:%d%s — two goroutines interleaving these "+
				"paths deadlock; pick one global order",
			rev.toD, rev.fromD, rev.via, fp.Filename, fp.Line, fwd.via))
	}
}
