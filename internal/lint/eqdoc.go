package lint

import (
	"fmt"
	"go/ast"
	"strings"
)

// eqDoc requires every exported function and method in the model and
// topology packages to carry a doc comment that begins with the
// function's name (the godoc convention), stating the paper equation
// or section it implements where applicable. The analytical model is
// only auditable against the paper if each entry point says which
// formula it claims to be.
type eqDoc struct {
	applies func(string) bool
}

// NewEqDoc returns the eqdoc rule restricted to packages matched by
// applies.
func NewEqDoc(applies func(string) bool) Rule { return &eqDoc{applies: applies} }

func (r *eqDoc) Name() string { return "eqdoc" }

func (r *eqDoc) Doc() string {
	return "exported model/topology functions carry godoc naming their paper equation"
}

func (r *eqDoc) Applies(p string) bool { return r.applies(p) }

func (r *eqDoc) Check(pkg *Package, report ReportFunc) {
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || !fd.Name.IsExported() {
				continue
			}
			if fd.Recv != nil && !exportedReceiver(fd.Recv) {
				continue // method on an unexported type: not API surface
			}
			doc := strings.TrimSpace(docText(fd))
			switch {
			case doc == "":
				report(fd.Name.Pos(), fmt.Sprintf(
					"exported function %s has no doc comment: document it, citing the "+
						"paper equation or section it implements where applicable", fd.Name.Name))
			case !strings.HasPrefix(doc, fd.Name.Name) ||
				(len(doc) > len(fd.Name.Name) && isIdentChar(doc[len(fd.Name.Name)])):
				report(fd.Name.Pos(), fmt.Sprintf(
					"doc comment of exported function %s should start with %q (godoc convention)",
					fd.Name.Name, fd.Name.Name))
			}
		}
	}
}

// docText returns fd's doc comment with //lint: directives stripped,
// so a suppression comment is not mistaken for documentation.
func docText(fd *ast.FuncDecl) string {
	if fd.Doc == nil {
		return ""
	}
	var kept []*ast.Comment
	for _, c := range fd.Doc.List {
		if strings.HasPrefix(c.Text, "//lint:") {
			continue
		}
		kept = append(kept, c)
	}
	if len(kept) == 0 {
		return ""
	}
	return (&ast.CommentGroup{List: kept}).Text()
}

func exportedReceiver(recv *ast.FieldList) bool {
	if len(recv.List) == 0 {
		return false
	}
	t := recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr: // generic receiver
			t = x.X
		case *ast.Ident:
			return x.IsExported()
		default:
			return false
		}
	}
}

func isIdentChar(b byte) bool {
	return b == '_' || (b >= 'a' && b <= 'z') || (b >= 'A' && b <= 'Z') || (b >= '0' && b <= '9')
}
