package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// errClass turns PR 3's runtime errors_test.go sweep into a static
// guarantee: every error that an exported function of the public
// surface (the root starperf package and client) can return must be
// classifiable — wrapping a declared sentinel (cfgerr.ErrInvalid, a
// package-level Err… variable), carried by a named error type
// (UnreachableError, *client.APIError), or propagated with
// fmt.Errorf("…: %w", err). What it hunts is the unclassifiable leaf:
// an inline errors.New or a fmt.Errorf without %w created inside a
// function body, which callers can match only by string.
//
// The analysis is a reachability question over the phase-one call
// graph: a leaf is a violation when some exported, error-returning
// function in scope transitively calls the function that mints it.
// Package-level `var ErrX = errors.New(…)` declarations are never
// leaves — they are the sentinels; only function-body creations
// count. Classifier packages (cfgerr, whose constructors exist to
// mint classified errors) are exempt wholesale.
type errClass struct {
	applies func(string) bool
	exempt  func(string) bool
}

// NewErrClass returns the errclass rule. applies selects the packages
// whose exported functions anchor the reachability sweep; exempt
// names classifier packages whose function-body error creations are
// the classification mechanism itself.
func NewErrClass(applies, exempt func(string) bool) Rule {
	return &errClass{applies: applies, exempt: exempt}
}

func (r *errClass) Name() string { return "errclass" }

func (r *errClass) Doc() string {
	return "errors returned by the exported API must wrap a declared sentinel or typed error"
}

func (r *errClass) Applies(p string) bool { return r.applies(p) }

// Check is unused: the engine dispatches ProgramRules to CheckProgram.
func (r *errClass) Check(pkg *Package, report ReportFunc) {}

// errLeaf is one unclassifiable error creation.
type errLeaf struct {
	pkg  *Package
	pos  token.Pos
	desc string
}

// errSummary caches one function's leaves.
type errSummary struct {
	leaves []errLeaf
}

func (r *errClass) CheckProgram(prog *Program, report ProgramReportFunc) {
	type hit struct {
		leaf  errLeaf
		entry string // display of the first exported entry point reaching it
		chain []string
	}
	reported := make(map[token.Pos]*hit)
	var order []token.Pos

	for _, key := range prog.sortedFuncKeys() {
		ff := prog.Funcs[key]
		if !r.applies(ff.Pkg.Path) || !ff.Decl.Name.IsExported() {
			continue
		}
		obj, _ := ff.Pkg.Info.Defs[ff.Decl.Name].(*types.Func)
		if obj == nil || errorResultIndices(obj.Type().(*types.Signature)) == nil {
			continue
		}
		// Walk every function reachable from this entry point and
		// collect their leaves.
		seen := map[string]bool{}
		var walk func(k string, chain []string)
		walk = func(k string, chain []string) {
			if seen[k] {
				return
			}
			seen[k] = true
			f := prog.Funcs[k]
			if f == nil {
				return
			}
			for _, leaf := range r.summary(prog, f).leaves {
				if _, ok := reported[leaf.pos]; !ok {
					reported[leaf.pos] = &hit{leaf: leaf, entry: ff.Display,
						chain: append(append([]string{}, chain...), f.Display)}
					order = append(order, leaf.pos)
				}
			}
			for _, call := range f.Calls {
				// Only an error-returning callee can propagate its leaf
				// back through the return path this rule models.
				if callee := prog.Funcs[call.Key]; callee != nil && returnsError(callee) {
					walk(call.Key, append(append([]string{}, chain...), f.Display))
				}
			}
		}
		walk(key, nil)
	}

	for _, pos := range order {
		h := reported[pos]
		report(h.leaf.pkg, pos, fmt.Sprintf(
			"%s reaches the exported API (%s via %s) without wrapping a declared "+
				"sentinel or typed error: callers can only match it by string; wrap "+
				"cfgerr.ErrInvalid, a package Err… sentinel, or return a typed error",
			h.leaf.desc, h.entry, chainString(h.chain)))
	}
}

// returnsError reports whether ff's signature includes an error
// result.
func returnsError(ff *FuncFacts) bool {
	obj, _ := ff.Pkg.Info.Defs[ff.Decl.Name].(*types.Func)
	return obj != nil && errorResultIndices(obj.Type().(*types.Signature)) != nil
}

// summary computes (and caches) the unclassifiable leaves of one
// function: errors.New calls and fmt.Errorf calls whose format string
// has no %w verb, skipping exempt classifier packages and functions
// that cannot return an error at all.
func (r *errClass) summary(prog *Program, ff *FuncFacts) *errSummary {
	if s, ok := prog.errMemo[ff.Key]; ok {
		return s
	}
	s := &errSummary{}
	prog.errMemo[ff.Key] = s
	if r.exempt(ff.Pkg.Path) {
		return s
	}
	obj, _ := ff.Pkg.Info.Defs[ff.Decl.Name].(*types.Func)
	if obj == nil || errorResultIndices(obj.Type().(*types.Signature)) == nil {
		// A function with no error result cannot propagate its leaf to
		// the API through the return path this rule models.
		return s
	}
	ast.Inspect(ff.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(ff.Pkg, call)
		if fn == nil {
			return true
		}
		switch fn.FullName() {
		case "errors.New":
			s.leaves = append(s.leaves, errLeaf{
				pkg: ff.Pkg, pos: call.Pos(), desc: "errors.New in " + ff.Display})
		case "fmt.Errorf":
			if !errorfWraps(call) {
				s.leaves = append(s.leaves, errLeaf{
					pkg: ff.Pkg, pos: call.Pos(), desc: "fmt.Errorf without %w in " + ff.Display})
			}
		}
		return true
	})
	return s
}

// errorfWraps reports whether a fmt.Errorf call's format string
// (when it is a literal) contains a %w verb. Non-literal formats are
// treated as wrapping: the rule cannot judge them, and a false
// negative beats demanding a suppression for dynamic formats.
func errorfWraps(call *ast.CallExpr) bool {
	if len(call.Args) == 0 {
		return true
	}
	lit, ok := call.Args[0].(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return true
	}
	return strings.Contains(lit.Value, "%w")
}
