// Package eqdoc is a starlint test fixture. Lines tagged
// "// want eqdoc" must produce exactly one eqdoc finding.
package eqdoc

// Documented implements the fixture analogue of the paper's eq. 7.
func Documented() int { return 7 }

// MeanLatency returns the fixture's mean latency (paper section 3.2).
func MeanLatency() float64 { return 0 }

func Missing() int { return 0 } // want eqdoc

// This comment does not start with the function name.
func BadStart() int { return 0 } // want eqdoc

func unexported() int { return 0 }

// Thing is an exported carrier type for method checks.
type Thing struct{}

// Touch documents the exported method.
func (Thing) Touch() {}

func (Thing) Bare() {} // want eqdoc

type hidden struct{}

func (hidden) Method() int { return 0 } // method on unexported type: exempt

//lint:ignore eqdoc fixture demonstrating the suppression syntax
func Suppressed() int { return 0 }
