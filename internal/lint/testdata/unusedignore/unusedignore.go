// Package unusedignore carries a stale suppression: the directive
// names a rule that fires on nothing here, so -unused-ignores must
// flag it.
package unusedignore

import "errors"

// Err keeps the file non-trivial.
var Err = errors.New("unusedignore: x")

// F once read the wall clock; the read was removed and the directive
// stayed behind.
func F() error {
	//lint:ignore seedrand fixture: stale — the clock read was removed
	return Err
}
