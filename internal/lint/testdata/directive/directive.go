// Package directive is a starlint test fixture holding exactly one
// malformed suppression directive (missing its mandatory reason).
package directive

func noop() {
	//lint:ignore floateq
	_ = 0
}
