// Package api is the fixture's public surface: every error its
// exported functions can return must wrap a declared sentinel or
// typed error.
package api

import (
	"errors"
	"fmt"

	"fix/errclass/impl"
)

// ErrInvalid is the API's declared configuration sentinel.
var ErrInvalid = errors.New("api: invalid")

// Validate returns only classified errors: fine.
func Validate(ok bool) error {
	if !ok {
		return fmt.Errorf("%w: validate", ErrInvalid)
	}
	return impl.Classified()
}

// Run reaches the unclassified leaves in impl (reported there).
func Run(n int) error {
	if err := impl.Leaf(); err != nil {
		return err
	}
	return impl.DeepLeaf(n)
}

// Inline mints a leaf right in the exported function.
func Inline() error {
	return errors.New("api: inline failure") // want errclass
}

// Waived keeps a string-matched error with a written-down reason.
func Waived() error {
	//lint:ignore errclass fixture: legacy callers match this string; migration tracked
	return errors.New("api: legacy string error")
}

// unreached has a leaf no exported function can return; it must stay
// unreported.
func unreached() error { return errors.New("api: internal only") }
