// Package impl is the fixture's internal implementation package: its
// unclassifiable error leaves are violations only because the api
// package's exported functions reach them.
package impl

import (
	"errors"
	"fmt"
)

// ErrBad is this package's declared sentinel.
var ErrBad = errors.New("impl: bad")

// Classified wraps the sentinel: fine.
func Classified() error { return fmt.Errorf("%w: details", ErrBad) }

// Leaf mints an unclassifiable error the API can return.
func Leaf() error {
	return errors.New("impl: anonymous failure") // want errclass
}

// DeepLeaf formats without wrapping anything.
func DeepLeaf(n int) error {
	if n > 0 {
		return fmt.Errorf("impl: n=%d out of range", n) // want errclass
	}
	return nil
}
