// Package api is the stand-in API surface for the apierr fixture.
package api

import "errors"

var errBoom = errors.New("boom")

// Run always fails.
func Run() error { return errBoom }

// Value returns a value and an error.
func Value() (int, error) { return 7, errBoom }

// Pure returns no error and may be called bare.
func Pure() int { return 1 }
