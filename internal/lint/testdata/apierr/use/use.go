// Package use is a starlint test fixture. Lines tagged
// "// want apierr" must produce exactly one apierr finding.
package use

import "fix/apierr/api"

func badBare() {
	api.Run() // want apierr
}

func badBlank() int {
	v, _ := api.Value() // want apierr
	return v
}

func badDefer() {
	defer api.Run() // want apierr
}

func badGo() {
	go api.Run() // want apierr
}

func goodPropagate() error {
	return api.Run()
}

func goodHandled() int {
	v, err := api.Value()
	if err != nil {
		return -1
	}
	return v
}

func goodPure() {
	api.Pure()
}

func goodLocalDiscard() {
	local() // not the API surface
}

func local() error { return nil }

func suppressed() {
	//lint:ignore apierr fixture demonstrating the suppression syntax
	api.Run()
}
