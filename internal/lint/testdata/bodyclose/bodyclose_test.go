package bodyclose

import (
	"net/http"
	"testing"
)

// post is the ownership-transfer idiom: it returns the response, so
// its callers own the close.
func post(t *testing.T, url string) *http.Response {
	resp, err := http.Post(url, "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// drain is a closer helper: passing a response to it satisfies the
// rule.
func drain(t *testing.T, resp *http.Response) {
	defer resp.Body.Close()
}

func use(int) {}

func TestLeaks(t *testing.T) {
	resp := post(t, "http://example.invalid") // want bodyclose
	use(resp.StatusCode)
}

func TestHelperCloses(t *testing.T) {
	resp := post(t, "http://example.invalid")
	drain(t, resp)
}

func TestDirectClose(t *testing.T) {
	resp := post(t, "http://example.invalid")
	resp.Body.Close()
}

func TestDoLeaks(t *testing.T) {
	client := &http.Client{}
	req, err := http.NewRequest("GET", "http://example.invalid", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Do(req) // want bodyclose
	if err != nil {
		t.Fatal(err)
	}
	use(resp.StatusCode)
}

func TestWaived(t *testing.T) {
	//lint:ignore bodyclose fixture: closed by the server shutdown hook
	resp := post(t, "http://example.invalid")
	use(resp.StatusCode)
}
