// Package bodyclose seeds leaked and properly-handled http.Response
// bodies in typed (non-test) code; the _test.go sibling exercises the
// untyped heuristics.
package bodyclose

import "net/http"

// Fetch leaks the response body.
func Fetch(url string) (int, error) {
	resp, err := http.Get(url) // want bodyclose
	if err != nil {
		return 0, err
	}
	return resp.StatusCode, nil
}

// FetchClosed closes it: fine.
func FetchClosed(url string) (int, error) {
	resp, err := http.Get(url)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	return resp.StatusCode, nil
}

// Open transfers ownership to the caller: fine, the caller closes.
func Open(url string) (*http.Response, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	return resp, nil
}

// Discarded drops the response entirely.
func Discarded(url string) {
	http.Get(url) // want bodyclose
}

// Blank throws the response away while keeping the error.
func Blank(url string) error {
	_, err := http.Get(url) // want bodyclose
	return err
}

// Waived leaks with a written-down reason.
func Waived(url string) (int, error) {
	//lint:ignore bodyclose fixture: connection torn down by the test server
	resp, err := http.Get(url)
	if err != nil {
		return 0, err
	}
	return resp.StatusCode, nil
}
