// Package floateq is a starlint test fixture. Lines tagged
// "// want floateq" must produce exactly one floateq finding.
package floateq

type temp float64

func badEq(a, b float64) bool {
	return a == b // want floateq
}

func badNeq(a, b float32) bool {
	return a != b // want floateq
}

func badZeroSentinel(x float64) bool {
	return x == 0 // want floateq
}

func badNamedFloat(a, b temp) bool {
	return a == b // want floateq
}

func badNested(xs []float64) int {
	n := 0
	for _, x := range xs {
		if x != 1.5 { // want floateq
			n++
		}
	}
	return n
}

func goodInt(a, b int) bool { return a == b }

func goodInequality(a, b float64) bool { return a <= b || a > b }

func goodNaNIdiom(x float64) bool { return x != x }

// EqualWithin is the allowlisted tolerance helper: exact comparisons
// are its fast path.
func EqualWithin(a, b, tol float64) bool {
	if a == b {
		return true
	}
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= tol
}

func suppressed(a, b float64) bool {
	//lint:ignore floateq fixture demonstrating the suppression syntax
	return a == b
}
