// Package lockorder seeds the three deadlock shapes the rule hunts:
// an AB/BA inversion, a double-acquire through a call chain, and the
// probe-leak shape — a lock still held on an early-return path.
package lockorder

import (
	"errors"
	"sync"
)

// A and B are two independently locked structures.
type A struct{ mu sync.Mutex }

// B is the second lock of the inversion pair.
type B struct{ mu sync.Mutex }

var (
	ga A
	gb B

	errInjected = errors.New("injected")
)

// LockAB acquires A then B.
func LockAB() {
	ga.mu.Lock()
	defer ga.mu.Unlock()
	gb.mu.Lock() // want lockorder
	defer gb.mu.Unlock()
}

// LockBA acquires B then A — the inversion.
func LockBA() {
	gb.mu.Lock()
	defer gb.mu.Unlock()
	ga.mu.Lock() // want lockorder
	defer ga.mu.Unlock()
}

// C demonstrates the non-reentrancy shapes.
type C struct {
	mu sync.Mutex
	n  int
}

func (c *C) get() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// Reacquire deadlocks itself: get retakes c.mu through the call.
func (c *C) Reacquire() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.get() // want lockorder
}

// DoubleDirect retakes the lock with no call chain at all.
func (c *C) DoubleDirect() {
	c.mu.Lock()
	c.mu.Lock() // want lockorder
	c.mu.Unlock()
	c.mu.Unlock()
}

// Probe models the PR 5 probe-slot leak: the error path returns with
// the lock still held and no defer to release it.
type Probe struct {
	mu      sync.Mutex
	probing bool
}

// Acquire leaks p.mu when fail is set.
func (p *Probe) Acquire(fail bool) error {
	p.mu.Lock()
	p.probing = true
	if fail {
		return errInjected // want lockorder
	}
	p.mu.Unlock()
	return nil
}

// AcquireWaived hands the lock to its caller by documented contract.
func (p *Probe) AcquireWaived() {
	p.mu.Lock()
	p.probing = true
	//lint:ignore lockorder fixture: lock intentionally handed to the caller
	return
}
