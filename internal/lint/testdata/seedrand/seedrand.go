// Package seedrand is a starlint test fixture. Lines tagged
// "// want seedrand" must produce exactly one seedrand finding.
package seedrand

import (
	mrand "math/rand"
	"time"
)

func badGlobalInt() int {
	return mrand.Intn(10) // want seedrand
}

func badGlobalFloat() float64 {
	return mrand.Float64() // want seedrand
}

func badShuffle(xs []int) {
	mrand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want seedrand
}

func badNow() int64 {
	return time.Now().UnixNano() // want seedrand
}

func badSince(t0 time.Time) time.Duration {
	return time.Since(t0) // want seedrand
}

func goodSeeded(seed int64) int {
	rng := mrand.New(mrand.NewSource(seed))
	return rng.Intn(10)
}

func goodInjected(rng *mrand.Rand) float64 {
	return rng.Float64()
}

func goodDuration() time.Duration {
	return 3 * time.Second
}

func suppressed() int {
	//lint:ignore seedrand fixture demonstrating the suppression syntax
	return mrand.Int()
}
