// Test files are scanned too (syntactically): a test drawing from the
// global source is flaky by construction.
package seedrand

import (
	"math/rand"
	"testing"
)

func TestFixtureBad(t *testing.T) {
	if rand.Float64() < -1 { // want seedrand
		t.Fatal("impossible")
	}
}

func TestFixtureGood(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	if rng.Float64() < -1 {
		t.Fatal("impossible")
	}
}
