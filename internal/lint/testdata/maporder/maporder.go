// Package maporder is a starlint test fixture. Lines tagged
// "// want maporder" must produce exactly one maporder finding.
package maporder

import "sort"

type state struct{ total float64 }

func badAppendAndField(m map[string]float64, s *state) []string {
	var out []string
	for k, v := range m {
		out = append(out, k) // want maporder
		s.total += v         // want maporder
	}
	return out
}

func badFloatSum(m map[int]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want maporder
	}
	return sum
}

func badDelete(m, other map[int]int) {
	for k := range m {
		delete(other, 0) // want maporder
		_ = k
	}
}

func badIndirectIndex(m map[int]int, out []int) {
	i := 0
	for _, v := range m {
		out[i] = v // want maporder
		i++
	}
}

func goodCounter(m map[int]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

func goodKeyIndex(m map[int]float64, out []float64) {
	for k, v := range m {
		out[k] = v
	}
}

func goodLocal(m map[int]int) int {
	best := 0
	for _, v := range m {
		x := v * v
		if x > best {
			best = x
		}
	}
	return best
}

func goodSortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func goodSliceRange(xs []float64) float64 {
	var sum float64
	for _, v := range xs {
		sum += v // slices iterate in order: not a map-order hazard
	}
	return sum
}

func suppressed(m map[string]int) []string {
	var out []string
	for k := range m {
		//lint:ignore maporder fixture demonstrating the suppression syntax
		out = append(out, k)
	}
	return out
}
