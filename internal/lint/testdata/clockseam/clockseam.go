// Package clockseam seeds the determinism hazards: direct wall-clock
// reads, clock reads reached through an out-of-scope helper, draws
// from the global rand source, and time.Now escaping as a value — and
// the one sanctioned escape, defaulting an injected Now seam.
package clockseam

import (
	"math/rand"
	"time"

	"fix/clockseam/clk"
)

// Config carries the injected clock seam.
type Config struct {
	Now func() time.Time
}

// Direct reads the clock inline.
func Direct() int64 {
	return time.Now().UnixNano() // want clockseam
}

// Reach reads it through a helper outside the deterministic core.
func Reach() int64 {
	return clk.Stamp() // want clockseam
}

// Draw uses the unseeded global source.
func Draw() int {
	return rand.Intn(6) // want clockseam
}

// WithDefaults assigns the production clock through the named seam —
// the sanctioned escape, exactly how PoolConfig.Now is defaulted.
func WithDefaults(c Config) Config {
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Escape captures the clock as a value outside any seam.
func Escape() func() time.Time {
	f := time.Now // want clockseam
	return f
}

// Waived reads the clock with a justified suppression.
func Waived() int64 {
	//lint:ignore clockseam fixture: boundary timestamp, never feeds event order
	return time.Now().UnixNano()
}
