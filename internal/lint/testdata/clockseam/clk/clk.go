// Package clk is the fixture's wall-clock helper living outside the
// deterministic core: reaching it from a scoped package is the
// violation.
package clk

import "time"

// Stamp reads the wall clock.
func Stamp() int64 { return time.Now().UnixNano() }
