// Package iounderlock seeds the regression shape of the PR 5
// journal-under-mutex bug: a pool that journals (which fsyncs two
// frames down) while holding its own lock.
package iounderlock

import (
	"os"
	"sync"

	"fix/iounderlock/wal"
)

// Pool guards its counters with mu.
type Pool struct {
	mu   sync.Mutex
	log  *wal.Log
	next int
}

// SubmitBad reproduces the PR 5 bug: the journal append — an fsync
// two calls down — runs while p.mu is held.
func (p *Pool) SubmitBad(rec []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.next++
	return p.log.Append(rec) // want iounderlock
}

// SubmitGood is the fixed shape: reserve under the lock, write
// outside it.
func (p *Pool) SubmitGood(rec []byte) error {
	p.mu.Lock()
	p.next++
	p.mu.Unlock()
	return p.log.Append(rec)
}

// DirectBad performs primitive I/O under the lock with no call chain
// at all.
func (p *Pool) DirectBad(path string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return os.WriteFile(path, nil, 0o644) // want iounderlock
}

// SubmitWaived is the bad shape with a justified suppression.
func (p *Pool) SubmitWaived(rec []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	//lint:ignore iounderlock fixture: single-writer log serialised by this lock by design
	return p.log.Append(rec)
}
