// Package wal is the fixture's stand-in for the real journal: its
// Append writes and fsyncs, so any caller holding a mutex across it
// reproduces the PR 5 fsync-under-p.mu bug.
package wal

import "os"

// Log is a minimal write-ahead log.
type Log struct{ f *os.File }

// Append writes one record and fsyncs it.
func (l *Log) Append(rec []byte) error {
	if _, err := l.f.Write(rec); err != nil {
		return err
	}
	return l.f.Sync()
}
