package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file is phase one of the two-phase analyzer: it compresses
// every function of the module into a fact summary — which mutexes it
// acquires, whether it performs disk or network I/O, whether it reads
// the wall clock or the global rand source, and which module-local
// functions it calls — and builds the intra-module call graph over
// those summaries. Phase two (iounderlock.go, lockorder.go,
// clockseam.go, errclass.go) asks reachability questions of the graph
// instead of re-walking every AST per rule.
//
// The summaries are deliberately conservative approximations:
//
//   - Calls through function values and non-fsx interfaces are
//     opaque (no edge). The fsx.FS/fsx.File seam is the exception —
//     its whole purpose is to be the I/O boundary, so every method on
//     it counts as primitive I/O wherever it is dispatched.
//   - Function literals are not scanned as separate functions; a
//     closure body contributes no facts to its enclosing function
//     (it usually runs on another goroutine or after return).
//   - Lock identity is the declaring struct type plus field name
//     (jobs.Pool.mu), which conflates instances of the same type —
//     the standard approximation for static lock-order analysis.

// Fact kinds a function summary can carry.
const (
	factIO    = iota // disk or network I/O
	factClock        // wall-clock read or global-rand draw
)

// Fact is one primitive effect observed in a function body.
type Fact struct {
	// Kind is factIO or factClock.
	Kind int
	// Pos locates the call (or value escape) in its package.
	Pos token.Pos
	// Desc names the primitive, e.g. "fsx.File.Sync" or "time.Now".
	Desc string
}

// LockFact is one direct mutex acquisition or release.
type LockFact struct {
	// Key is the global lock identity: declaring struct type + field
	// ("starperf/internal/jobs.Pool.mu") or package-level variable
	// path. Locals are position-qualified so they never collide.
	Key string
	// Display is the short human form ("jobs.Pool.mu").
	Display string
	// Pos locates the Lock/RLock call.
	Pos token.Pos
	// Shared is true for RLock.
	Shared bool
}

// CallFact is one static call edge to a module-local function.
type CallFact struct {
	// Key is the callee's funcKey.
	Key string
	// Display is the callee's short name.
	Display string
	// Pos locates the call site.
	Pos token.Pos
}

// FuncFacts is one function's summary.
type FuncFacts struct {
	Key     string
	Display string
	Pkg     *Package
	Decl    *ast.FuncDecl

	IO       []Fact
	Clock    []Fact
	Acquires []LockFact
	Calls    []CallFact
}

// Program is the phase-one product: every loaded package plus the
// fact summaries and call graph over them. Build once per Run.
type Program struct {
	Pkgs  []*Package
	Funcs map[string]*FuncFacts

	ioMemo    map[string]*reach
	clockMemo map[string]*reach
	acqMemo   map[string][]lockReach

	errMemo map[string]*errSummary // errclass summaries, computed lazily
}

// reach is one answer to "is a fact of this kind reachable": the fact
// plus the call chain (display names, caller first) that reaches it.
// A nil *reach means unreachable.
type reach struct {
	Fact  Fact
	Chain []string
}

// lockReach is one transitively-acquirable lock with its chain.
type lockReach struct {
	Lock  LockFact
	Chain []string
}

// BuildProgram summarises every function of pkgs and returns the
// program graph. pkgs should be the full module so cross-package
// reachability sees every callee; packages whose facts you do not
// want scanned are excluded by rule scope, not by omission here.
func BuildProgram(pkgs []*Package) *Program {
	p := &Program{
		Pkgs:      pkgs,
		Funcs:     make(map[string]*FuncFacts),
		ioMemo:    make(map[string]*reach),
		clockMemo: make(map[string]*reach),
		acqMemo:   make(map[string][]lockReach),
		errMemo:   make(map[string]*errSummary),
	}
	for _, pkg := range pkgs {
		if pkg.Info == nil {
			continue
		}
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				ff := &FuncFacts{
					Key:     funcKey(obj),
					Display: funcDisplay(obj),
					Pkg:     pkg,
					Decl:    fd,
				}
				p.collectFacts(pkg, fd, ff)
				p.Funcs[ff.Key] = ff
			}
		}
	}
	return p
}

// funcKey is the canonical, module-unique function identity.
func funcKey(fn *types.Func) string { return fn.FullName() }

// pkgBase is the last path element of a package, for display.
func pkgBase(p *types.Package) string {
	if p == nil {
		return ""
	}
	path := p.Path()
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// funcDisplay renders a short human-readable function name:
// "jobs.NewPool", "(*jobs.Pool).SubmitMeta", "(fsx.FS).SyncDir".
func funcDisplay(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return pkgBase(fn.Pkg()) + "." + fn.Name()
	}
	t := sig.Recv().Type()
	ptr := ""
	if pt, isPtr := t.(*types.Pointer); isPtr {
		t = pt.Elem()
		ptr = "*"
	}
	if named, isNamed := t.(*types.Named); isNamed {
		return "(" + ptr + pkgBase(named.Obj().Pkg()) + "." + named.Obj().Name() + ")." + fn.Name()
	}
	return pkgBase(fn.Pkg()) + "." + fn.Name()
}

// collectFacts walks one function body recording primitives and call
// edges. Function literals are skipped (see the file comment).
func (p *Program) collectFacts(pkg *Package, fd *ast.FuncDecl, ff *FuncFacts) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			p.recordCall(pkg, x, ff)
		case *ast.SelectorExpr:
			// time.Now escaping as a value (not called) is a clock
			// fact unless it feeds a named clock seam.
			if fn := usedFunc(pkg, x.Sel); fn != nil && isClockFunc(fn) {
				// Whether this selector is a call's Fun is decided in
				// recordCall; value escapes are found by a dedicated
				// pass below because they need parent context.
				return true
			}
		}
		return true
	})
	p.collectClockEscapes(pkg, fd, ff)
}

// usedFunc resolves an identifier to the *types.Func it uses, if any.
func usedFunc(pkg *Package, id *ast.Ident) *types.Func {
	fn, _ := pkg.Info.Uses[id].(*types.Func)
	return fn
}

// calleeFunc resolves a call expression's static callee.
func calleeFunc(pkg *Package, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return usedFunc(pkg, fun)
	case *ast.SelectorExpr:
		return usedFunc(pkg, fun.Sel)
	}
	return nil
}

// recordCall classifies one call: primitive I/O, clock read, global
// rand draw, or a module-local edge.
func (p *Program) recordCall(pkg *Package, call *ast.CallExpr, ff *FuncFacts) {
	fn := calleeFunc(pkg, call)
	if fn == nil {
		return // func value, interface with no static callee, builtin
	}
	switch {
	case isIOFunc(fn):
		ff.IO = append(ff.IO, Fact{Kind: factIO, Pos: call.Pos(), Desc: funcDisplay(fn)})
	case isClockFunc(fn):
		ff.Clock = append(ff.Clock, Fact{Kind: factClock, Pos: call.Pos(), Desc: "time." + fn.Name()})
	case isGlobalRandFunc(fn):
		ff.Clock = append(ff.Clock, Fact{Kind: factClock, Pos: call.Pos(), Desc: "rand." + fn.Name() + " (global source)"})
	case fn.Pkg() != nil && isModulePath(p, fn.Pkg().Path()):
		ff.Calls = append(ff.Calls, CallFact{Key: funcKey(fn), Display: funcDisplay(fn), Pos: call.Pos()})
	}
	if op, lock, ok := lockOp(pkg, call); ok && (op == opLock || op == opRLock) {
		lock.Shared = op == opRLock
		ff.Acquires = append(ff.Acquires, lock)
	}
}

// isModulePath reports whether path belongs to a package loaded into
// the program (i.e. module-local).
func isModulePath(p *Program, path string) bool {
	for _, pkg := range p.Pkgs {
		if pkg.Path == path {
			return true
		}
	}
	return false
}

// ---- primitive classification ----

// osIOFuncs are the package-level os functions that touch the
// filesystem (predicates like IsNotExist and accessors like Getenv
// deliberately excluded).
var osIOFuncs = map[string]bool{
	"Create": true, "CreateTemp": true, "Open": true, "OpenFile": true,
	"ReadFile": true, "WriteFile": true, "Remove": true, "RemoveAll": true,
	"Rename": true, "Mkdir": true, "MkdirAll": true, "MkdirTemp": true,
	"ReadDir": true, "Stat": true, "Lstat": true, "Truncate": true,
	"Chmod": true, "Chown": true, "Link": true, "Symlink": true, "Pipe": true,
	"ReadLink": true,
}

// netIOFuncs are the package-level net dial/listen entry points.
var netIOFuncs = map[string]bool{
	"Dial": true, "DialTimeout": true, "DialTCP": true, "DialUDP": true,
	"DialUnix": true, "DialIP": true, "Listen": true, "ListenPacket": true,
	"ListenTCP": true, "ListenUDP": true, "ListenUnix": true, "LookupHost": true,
	"LookupAddr": true, "LookupIP": true,
}

// httpIOFuncs are the package-level net/http client entry points.
var httpIOFuncs = map[string]bool{
	"Get": true, "Post": true, "Head": true, "PostForm": true,
}

// isFsxPath matches the repo's filesystem seam package (and a
// fixture's local equivalent): every method on it is I/O by
// definition.
func isFsxPath(path string) bool {
	return path == "fsx" || strings.HasSuffix(path, "/fsx")
}

// recvNamed returns the named type of fn's receiver (pointers
// dereferenced), or nil for package functions.
func recvNamed(fn *types.Func) *types.Named {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if pt, ok := t.(*types.Pointer); ok {
		t = pt.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// isIOFunc reports whether fn is a primitive disk/network operation.
func isIOFunc(fn *types.Func) bool {
	pkg := fn.Pkg()
	if pkg == nil {
		return false
	}
	path := pkg.Path()
	if isFsxPath(path) {
		return true // the seam: every method and helper is I/O
	}
	named := recvNamed(fn)
	switch path {
	case "os":
		if named != nil {
			return named.Obj().Name() == "File" // every *os.File method
		}
		return osIOFuncs[fn.Name()]
	case "syscall":
		return true
	case "net":
		if named != nil {
			return true // Conn, Listener, Dialer, Resolver methods
		}
		return netIOFuncs[fn.Name()]
	case "net/http":
		if named != nil {
			n := named.Obj().Name()
			return n == "Client" || n == "Transport"
		}
		return httpIOFuncs[fn.Name()]
	}
	return false
}

// isClockFunc reports whether fn is a wall-clock read.
func isClockFunc(fn *types.Func) bool {
	return fn.Pkg() != nil && fn.Pkg().Path() == "time" && bannedTime[fn.Name()]
}

// isGlobalRandFunc reports whether fn draws from math/rand's (or
// v2's) unseeded global source.
func isGlobalRandFunc(fn *types.Func) bool {
	if fn.Pkg() == nil || recvNamed(fn) != nil {
		return false
	}
	path := fn.Pkg().Path()
	return (path == "math/rand" || path == "math/rand/v2") && bannedRand[fn.Name()]
}

// collectClockEscapes finds time.Now (et al.) used as a *value* —
// assigned, passed, stored — rather than called. Feeding a named
// clock seam (a field or key called Now or Clock) is the one
// sanctioned escape: that is how the injectable clock is defaulted.
func (p *Program) collectClockEscapes(pkg *Package, fd *ast.FuncDecl, ff *FuncFacts) {
	seam := make(map[ast.Expr]bool)
	calls := make(map[ast.Expr]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			calls[ast.Unparen(x.Fun)] = true
		case *ast.AssignStmt:
			for i, rhs := range x.Rhs {
				if i < len(x.Lhs) && isSeamTarget(x.Lhs[i]) {
					seam[ast.Unparen(rhs)] = true
				}
			}
		case *ast.KeyValueExpr:
			if key, ok := x.Key.(*ast.Ident); ok && isSeamName(key.Name) {
				seam[ast.Unparen(x.Value)] = true
			}
		}
		return true
	})
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn := usedFunc(pkg, sel.Sel)
		if fn == nil || !isClockFunc(fn) {
			return true
		}
		if calls[ast.Expr(sel)] || seam[ast.Expr(sel)] {
			return true
		}
		ff.Clock = append(ff.Clock, Fact{
			Kind: factClock, Pos: sel.Pos(),
			Desc: "time." + fn.Name() + " captured as a value outside a Now/Clock seam",
		})
		return true
	})
}

// isSeamTarget reports whether an assignment target is a named clock
// seam (x.Now = ..., cfg.Clock = ...).
func isSeamTarget(e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.SelectorExpr:
		return isSeamName(x.Sel.Name)
	case *ast.Ident:
		return isSeamName(x.Name)
	}
	return false
}

func isSeamName(name string) bool { return name == "Now" || name == "Clock" }

// ---- lock identity ----

// Lock operation kinds.
const (
	opLock = iota
	opRLock
	opUnlock
	opRUnlock
)

// lockMethods maps sync method identities to operations.
var lockMethods = map[string]int{
	"(*sync.Mutex).Lock":      opLock,
	"(*sync.Mutex).Unlock":    opUnlock,
	"(*sync.RWMutex).Lock":    opLock,
	"(*sync.RWMutex).Unlock":  opUnlock,
	"(*sync.RWMutex).RLock":   opRLock,
	"(*sync.RWMutex).RUnlock": opRUnlock,
}

// lockOp decides whether call is a mutex operation and, if so,
// resolves the lock's identity.
func lockOp(pkg *Package, call *ast.CallExpr) (op int, lock LockFact, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return 0, LockFact{}, false
	}
	fn := usedFunc(pkg, sel.Sel)
	if fn == nil {
		return 0, LockFact{}, false
	}
	op, isLock := lockMethods[fn.FullName()]
	if !isLock {
		return 0, LockFact{}, false
	}
	key, display := lockIdentity(pkg, sel.X)
	return op, LockFact{Key: key, Display: display, Pos: call.Pos()}, true
}

// lockIdentity names the mutex behind a receiver expression. Field
// selectors resolve to "declaring-type.field"; package-level
// variables to their path; locals are position-qualified. The
// fallback renders the expression text, which still gives stable
// within-function pairing.
func lockIdentity(pkg *Package, e ast.Expr) (key, display string) {
	e = ast.Unparen(e)
	switch x := e.(type) {
	case *ast.SelectorExpr:
		if sel := pkg.Info.Selections[x]; sel != nil {
			recv := sel.Recv()
			if pt, ok := recv.(*types.Pointer); ok {
				recv = pt.Elem()
			}
			if named, ok := recv.(*types.Named); ok {
				obj := named.Obj()
				key = obj.Pkg().Path() + "." + obj.Name() + "." + sel.Obj().Name()
				display = pkgBase(obj.Pkg()) + "." + obj.Name() + "." + sel.Obj().Name()
				return key, display
			}
		}
		if obj, ok := pkg.Info.Uses[x.Sel].(*types.Var); ok && obj.Pkg() != nil {
			key = obj.Pkg().Path() + "." + obj.Name()
			return key, pkgBase(obj.Pkg()) + "." + obj.Name()
		}
	case *ast.Ident:
		if obj, ok := pkg.Info.Uses[x].(*types.Var); ok {
			// An identifier whose type is a named struct embedding the
			// mutex (t.Lock() via promotion) keys on the struct type.
			t := obj.Type()
			if pt, ok := t.(*types.Pointer); ok {
				t = pt.Elem()
			}
			if named, ok := t.(*types.Named); ok && !isSyncMutex(named) {
				key = named.Obj().Pkg().Path() + "." + named.Obj().Name() + ".(embedded)"
				return key, pkgBase(named.Obj().Pkg()) + "." + named.Obj().Name() + ".(embedded)"
			}
			if obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
				key = obj.Pkg().Path() + "." + obj.Name()
				return key, pkgBase(obj.Pkg()) + "." + obj.Name()
			}
			// Local mutex: position-qualified so distinct locals never
			// alias.
			key = fmt.Sprintf("local.%s@%d", obj.Name(), obj.Pos())
			return key, obj.Name()
		}
	}
	text := types.ExprString(e)
	return "expr." + text, text
}

// isSyncMutex reports whether named is sync.Mutex or sync.RWMutex.
func isSyncMutex(named *types.Named) bool {
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// ---- reachability ----

// ReachIO answers whether disk/network I/O is reachable from the
// function with the given key, with the witness chain.
func (p *Program) ReachIO(key string) *reach {
	return p.reachFact(key, factIO, p.ioMemo, make(map[string]bool))
}

// ReachClock answers whether a wall-clock read or global-rand draw is
// reachable from key.
func (p *Program) ReachClock(key string) *reach {
	return p.reachFact(key, factClock, p.clockMemo, make(map[string]bool))
}

func (p *Program) reachFact(key string, kind int, memo map[string]*reach, visiting map[string]bool) *reach {
	if r, ok := memo[key]; ok {
		return r
	}
	if visiting[key] {
		return nil // cycle: resolved by the first frame
	}
	visiting[key] = true
	defer delete(visiting, key)
	ff := p.Funcs[key]
	if ff == nil {
		memo[key] = nil
		return nil
	}
	facts := ff.IO
	if kind == factClock {
		facts = ff.Clock
	}
	if len(facts) > 0 {
		r := &reach{Fact: facts[0], Chain: []string{ff.Display}}
		memo[key] = r
		return r
	}
	for _, call := range ff.Calls {
		if sub := p.reachFact(call.Key, kind, memo, visiting); sub != nil {
			r := &reach{Fact: sub.Fact, Chain: append([]string{ff.Display}, sub.Chain...)}
			memo[key] = r
			return r
		}
	}
	memo[key] = nil
	return nil
}

// ReachAcquires returns every lock transitively acquirable from key
// (direct acquisitions included), deduped by lock key, in first-seen
// (source) order, each with its witness chain.
func (p *Program) ReachAcquires(key string) []lockReach {
	if r, ok := p.acqMemo[key]; ok {
		return r
	}
	out := p.reachAcquires(key, make(map[string]bool))
	p.acqMemo[key] = out
	return out
}

func (p *Program) reachAcquires(key string, visiting map[string]bool) []lockReach {
	if visiting[key] {
		return nil
	}
	visiting[key] = true
	defer delete(visiting, key)
	ff := p.Funcs[key]
	if ff == nil {
		return nil
	}
	var out []lockReach
	seen := make(map[string]bool)
	for _, l := range ff.Acquires {
		if !seen[l.Key] {
			seen[l.Key] = true
			out = append(out, lockReach{Lock: l, Chain: []string{ff.Display}})
		}
	}
	for _, call := range ff.Calls {
		for _, sub := range p.reachAcquires(call.Key, visiting) {
			if !seen[sub.Lock.Key] {
				seen[sub.Lock.Key] = true
				out = append(out, lockReach{Lock: sub.Lock, Chain: append([]string{ff.Display}, sub.Chain...)})
			}
		}
	}
	return out
}

// chainString renders a witness chain for a finding message.
func chainString(chain []string) string { return strings.Join(chain, " → ") }

// ---- critical-section scanning ----

// heldLock is one lock currently held during the scan.
type heldLock struct {
	LockFact
	deferred bool // a defer Unlock is pending; released at return
}

// csCallbacks receives critical-section events from scanCritical.
type csCallbacks struct {
	// onCall fires for every statically-resolvable call made while at
	// least one lock is held (the lock/unlock operations themselves
	// excluded). held is a snapshot in acquisition order.
	onCall func(call *ast.CallExpr, fn *types.Func, held []heldLock)
	// onAcquire fires for every direct acquisition, with the locks
	// already held at that point (possibly none).
	onAcquire func(lock LockFact, held []heldLock)
	// onLeak fires when control can leave the function (return or
	// falling off the end) while a non-deferred lock acquired in this
	// function is still held.
	onLeak func(pos token.Pos, lock LockFact)
}

// scanCritical walks fd's body in statement order, tracking which
// mutexes are held, and reports calls made under them. The walk is a
// linear approximation: branch bodies are scanned with a copy of the
// held set and the parent continues with its own — the early
// unlock-and-return idiom is tracked exactly; an unlock on a
// fall-through branch is missed (rare; suppress with //lint:ignore).
func scanCritical(pkg *Package, fd *ast.FuncDecl, cb csCallbacks) {
	held := []heldLock{}
	terminated := scanStmts(pkg, fd.Body.List, &held, cb)
	if !terminated {
		leakCheck(fd.Body.Rbrace, held, cb)
	}
}

func leakCheck(pos token.Pos, held []heldLock, cb csCallbacks) {
	if cb.onLeak == nil {
		return
	}
	for _, h := range held {
		if !h.deferred {
			cb.onLeak(pos, h.LockFact)
		}
	}
}

func cloneHeld(held []heldLock) []heldLock {
	return append([]heldLock(nil), held...)
}

// scanStmts processes one statement list; it returns true when the
// list cannot fall through to the statement after it (ends in
// return/branch).
func scanStmts(pkg *Package, list []ast.Stmt, held *[]heldLock, cb csCallbacks) bool {
	for _, s := range list {
		if scanStmt(pkg, s, held, cb) {
			return true
		}
	}
	return false
}

func scanStmt(pkg *Package, s ast.Stmt, held *[]heldLock, cb csCallbacks) bool {
	switch st := s.(type) {
	case *ast.ExprStmt:
		if call, ok := st.X.(*ast.CallExpr); ok {
			if op, lock, ok := lockOp(pkg, call); ok {
				applyLockOp(op, lock, held, cb)
				return false
			}
		}
		scanExpr(pkg, st.X, *held, cb)
	case *ast.DeferStmt:
		if op, lock, ok := lockOp(pkg, st.Call); ok && (op == opUnlock || op == opRUnlock) {
			for i := range *held {
				if (*held)[i].Key == lock.Key {
					(*held)[i].deferred = true
				}
			}
			return false
		}
		// Deferred non-unlock calls run at return; their lock context
		// is ambiguous, so they are not treated as under-lock events.
		for _, arg := range st.Call.Args {
			scanExpr(pkg, arg, *held, cb)
		}
	case *ast.GoStmt:
		// The spawned function runs without inheriting the lock; only
		// its argument expressions evaluate here.
		for _, arg := range st.Call.Args {
			scanExpr(pkg, arg, *held, cb)
		}
	case *ast.ReturnStmt:
		for _, r := range st.Results {
			scanExpr(pkg, r, *held, cb)
		}
		leakCheck(st.Pos(), *held, cb)
		return true
	case *ast.BranchStmt:
		return true // break/continue/goto end this path
	case *ast.BlockStmt:
		return scanStmts(pkg, st.List, held, cb)
	case *ast.LabeledStmt:
		return scanStmt(pkg, st.Stmt, held, cb)
	case *ast.IfStmt:
		if st.Init != nil {
			scanStmt(pkg, st.Init, held, cb)
		}
		scanExpr(pkg, st.Cond, *held, cb)
		branch := cloneHeld(*held)
		scanStmts(pkg, st.Body.List, &branch, cb)
		if st.Else != nil {
			branch = cloneHeld(*held)
			scanStmt(pkg, st.Else, &branch, cb)
		}
	case *ast.ForStmt:
		if st.Init != nil {
			scanStmt(pkg, st.Init, held, cb)
		}
		if st.Cond != nil {
			scanExpr(pkg, st.Cond, *held, cb)
		}
		branch := cloneHeld(*held)
		scanStmts(pkg, st.Body.List, &branch, cb)
	case *ast.RangeStmt:
		scanExpr(pkg, st.X, *held, cb)
		branch := cloneHeld(*held)
		scanStmts(pkg, st.Body.List, &branch, cb)
	case *ast.SwitchStmt:
		if st.Init != nil {
			scanStmt(pkg, st.Init, held, cb)
		}
		if st.Tag != nil {
			scanExpr(pkg, st.Tag, *held, cb)
		}
		scanClauses(pkg, st.Body, held, cb)
	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			scanStmt(pkg, st.Init, held, cb)
		}
		scanClauses(pkg, st.Body, held, cb)
	case *ast.SelectStmt:
		for _, clause := range st.Body.List {
			comm, ok := clause.(*ast.CommClause)
			if !ok {
				continue
			}
			branch := cloneHeld(*held)
			if comm.Comm != nil {
				scanStmt(pkg, comm.Comm, &branch, cb)
			}
			scanStmts(pkg, comm.Body, &branch, cb)
		}
	default:
		// Assignments, declarations, sends, inc/dec: scan embedded
		// calls.
		scanNodeExprs(pkg, s, *held, cb)
	}
	return false
}

func scanClauses(pkg *Package, body *ast.BlockStmt, held *[]heldLock, cb csCallbacks) {
	for _, clause := range body.List {
		cc, ok := clause.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			scanExpr(pkg, e, *held, cb)
		}
		branch := cloneHeld(*held)
		scanStmts(pkg, cc.Body, &branch, cb)
	}
}

// applyLockOp mutates the held set for one statement-level lock call.
func applyLockOp(op int, lock LockFact, held *[]heldLock, cb csCallbacks) {
	switch op {
	case opLock, opRLock:
		lock.Shared = op == opRLock
		if cb.onAcquire != nil {
			cb.onAcquire(lock, cloneHeld(*held))
		}
		*held = append(*held, heldLock{LockFact: lock})
	case opUnlock, opRUnlock:
		for i := len(*held) - 1; i >= 0; i-- {
			if (*held)[i].Key == lock.Key {
				*held = append((*held)[:i], (*held)[i+1:]...)
				break
			}
		}
	}
}

// scanExpr reports resolvable calls inside e with the current held
// set, skipping function literal bodies.
func scanExpr(pkg *Package, e ast.Expr, held []heldLock, cb csCallbacks) {
	if e == nil {
		return
	}
	scanNodeExprs(pkg, e, held, cb)
}

func scanNodeExprs(pkg *Package, n ast.Node, held []heldLock, cb csCallbacks) {
	ast.Inspect(n, func(x ast.Node) bool {
		switch c := x.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if op, lock, ok := lockOp(pkg, c); ok {
				// A nested acquisition (rare) still records an order
				// event; nested releases are ignored by the linear scan.
				if op == opLock || op == opRLock {
					lock.Shared = op == opRLock
					if cb.onAcquire != nil {
						cb.onAcquire(lock, cloneHeld(held))
					}
				}
				return true
			}
			if len(held) == 0 || cb.onCall == nil {
				return true
			}
			if fn := calleeFunc(pkg, c); fn != nil {
				cb.onCall(c, fn, cloneHeld(held))
			}
		}
		return true
	})
}

// sortedFuncKeys returns the program's function keys sorted, for
// deterministic rule iteration.
func (p *Program) sortedFuncKeys() []string {
	keys := make([]string, 0, len(p.Funcs))
	for k := range p.Funcs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
