// Package lint implements starlint, the repo-specific static-analysis
// pass behind cmd/starlint. It walks every package of the module with
// go/parser and go/types (standard library only) and enforces the
// correctness invariants the paper reproduction depends on: the
// flit-level simulator and the analytical model must agree bit-for-bit
// run over run, so map-iteration order must never feed event order,
// randomness must flow through injected seeded sources, floats must
// not be compared exactly, errors from the public API must not be
// dropped, and the model's exported surface must be traceable to the
// paper's equations.
//
// A finding can be suppressed in place with
//
//	//lint:ignore rule1[,rule2] reason
//
// placed on, or on the line directly above, the offending line. The
// reason is mandatory; a directive without one is itself reported
// (rule "directive").
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Finding is one diagnostic produced by a rule.
type Finding struct {
	// Rule is the name of the rule that fired.
	Rule string `json:"rule"`
	// File, Line and Col locate the finding (1-based line and column).
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
	// Message explains the violation and how to fix it.
	Message string `json:"message"`
}

// String renders the finding in the conventional file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", f.File, f.Line, f.Col, f.Message, f.Rule)
}

// ReportFunc is how rules emit findings.
type ReportFunc func(pos token.Pos, msg string)

// Rule is one self-contained checker.
type Rule interface {
	// Name is the short identifier used in output and in
	// //lint:ignore directives.
	Name() string
	// Doc is a one-line description for -list.
	Doc() string
	// Applies reports whether the rule runs on the given import path.
	Applies(pkgPath string) bool
	// Check analyses one package and reports findings.
	Check(pkg *Package, report ReportFunc)
}

// ProgramReportFunc is how program-wide rules emit findings: the
// package is needed to resolve positions and suppressions for the
// file being reported into (which, for interprocedural rules, is not
// necessarily the rule's entry-point package).
type ProgramReportFunc func(pkg *Package, pos token.Pos, msg string)

// ProgramRule is a rule that analyses the whole module at once over
// the phase-one call graph (Program) instead of package by package.
// Its Check method is never called by the engine; Applies declares
// where the rule's entry points live (the rule consults its own scope
// when walking the program, and may report findings outside it — an
// errclass leaf can sit in a package the rule does not scan).
type ProgramRule interface {
	Rule
	CheckProgram(prog *Program, report ProgramReportFunc)
}

// Result is the full outcome of a lint run.
type Result struct {
	// Findings are the surviving diagnostics, sorted by position.
	Findings []Finding
	// Suppressed counts findings silenced by //lint:ignore.
	Suppressed int
	// UnusedIgnores lists //lint:ignore directives (rule
	// "unused-ignore") that silenced nothing in this run and whose
	// every named rule actually ran — stale suppressions that outlive
	// the code they excused.
	UnusedIgnores []Finding
}

// Run executes every applicable rule over every package, drops
// suppressed findings, and returns the rest sorted by position. The
// returned slice also contains a "directive" finding for every
// malformed //lint:ignore comment.
func Run(pkgs []*Package, rules []Rule) []Finding {
	return RunDetail(pkgs, rules).Findings
}

// RunDetail is Run with the suppression accounting exposed: how many
// findings //lint:ignore silenced, and which directives are stale.
func RunDetail(pkgs []*Package, rules []Rule) Result {
	var res Result
	tables := make(map[string]*supTable, len(pkgs))
	for _, pkg := range pkgs {
		sup, bad := collectSuppressions(pkg)
		tables[pkg.Path] = sup
		res.Findings = append(res.Findings, bad...)
	}
	record := func(rule Rule, pkg *Package, pos token.Pos, msg string) {
		p := pkg.Fset.Position(pos)
		if tables[pkg.Path].suppress(p.Filename, p.Line, rule.Name()) {
			res.Suppressed++
			return
		}
		res.Findings = append(res.Findings, Finding{
			Rule:    rule.Name(),
			File:    p.Filename,
			Line:    p.Line,
			Col:     p.Column,
			Message: msg,
		})
	}

	var progRules []ProgramRule
	for _, rule := range rules {
		if pr, ok := rule.(ProgramRule); ok {
			progRules = append(progRules, pr)
			continue
		}
		for _, pkg := range pkgs {
			if !rule.Applies(pkg.Path) {
				continue
			}
			pkg := pkg
			rule := rule
			rule.Check(pkg, func(pos token.Pos, msg string) {
				record(rule, pkg, pos, msg)
			})
		}
	}
	if len(progRules) > 0 {
		prog := BuildProgram(pkgs)
		for _, rule := range progRules {
			rule := rule
			rule.CheckProgram(prog, func(pkg *Package, pos token.Pos, msg string) {
				record(rule, pkg, pos, msg)
			})
		}
	}

	sortFindings(res.Findings)
	res.UnusedIgnores = unusedIgnores(pkgs, tables, rules)
	return res
}

func sortFindings(out []Finding) {
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Message < b.Message
	})
}

// unusedIgnores reports directives that suppressed nothing. A
// directive is only judged when every rule it names ran in this
// invocation (a -rules subset must not flag suppressions for the
// rules it skipped); per-package rules additionally must apply to the
// directive's package, while program rules see the whole module.
func unusedIgnores(pkgs []*Package, tables map[string]*supTable, rules []Rule) []Finding {
	byName := make(map[string]Rule, len(rules))
	for _, r := range rules {
		byName[r.Name()] = r
	}
	var out []Finding
	for _, pkg := range pkgs {
		for _, e := range tables[pkg.Path].entries {
			if e.used {
				continue
			}
			judgeable := true
			for rname := range e.rules {
				r, ok := byName[rname]
				if !ok {
					judgeable = false
					break
				}
				if _, isProg := r.(ProgramRule); !isProg && !r.Applies(pkg.Path) {
					judgeable = false
					break
				}
			}
			if !judgeable {
				continue
			}
			out = append(out, Finding{
				Rule: "unused-ignore", File: e.file, Line: e.line, Col: e.col,
				Message: fmt.Sprintf("//lint:ignore %s suppresses nothing: delete it or re-justify it",
					e.ruleList),
			})
		}
	}
	sortFindings(out)
	return out
}

// supEntry is one //lint:ignore directive with its usage flag.
type supEntry struct {
	rules    map[string]bool
	ruleList string // the comma list as written, for messages
	file     string
	line     int
	col      int
	used     bool
}

// supTable indexes a package's directives by the lines they cover
// (the directive's own line and the line below it).
type supTable struct {
	byLine  map[string]map[int][]*supEntry
	entries []*supEntry
}

// suppress reports whether rule is silenced at file:line, marking
// every covering directive used.
func (t *supTable) suppress(file string, line int, rule string) bool {
	hit := false
	for _, e := range t.byLine[file][line] {
		if e.rules[rule] {
			e.used = true
			hit = true
		}
	}
	return hit
}

const ignorePrefix = "//lint:ignore"

// collectSuppressions scans every comment of the package (test files
// included) for //lint:ignore directives. A well-formed directive
// suppresses the named rules on its own line and on the line directly
// below it; malformed directives are returned as findings.
func collectSuppressions(pkg *Package) (*supTable, []Finding) {
	sup := &supTable{byLine: make(map[string]map[int][]*supEntry)}
	var bad []Finding
	for _, f := range pkg.AllFiles() {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				p := pkg.Fset.Position(c.Pos())
				rest := strings.TrimPrefix(c.Text, ignorePrefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // e.g. //lint:ignorefoo — not ours
				}
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					bad = append(bad, Finding{
						Rule: "directive", File: p.Filename, Line: p.Line, Col: p.Column,
						Message: "malformed //lint:ignore: want \"//lint:ignore rule[,rule] reason\"",
					})
					continue
				}
				e := &supEntry{
					rules:    make(map[string]bool),
					ruleList: fields[0],
					file:     p.Filename,
					line:     p.Line,
					col:      p.Column,
				}
				for _, rule := range strings.Split(fields[0], ",") {
					e.rules[rule] = true
				}
				sup.entries = append(sup.entries, e)
				byFile := sup.byLine[p.Filename]
				if byFile == nil {
					byFile = make(map[int][]*supEntry)
					sup.byLine[p.Filename] = byFile
				}
				for _, line := range []int{p.Line, p.Line + 1} {
					byFile[line] = append(byFile[line], e)
				}
			}
		}
	}
	return sup, bad
}

// inPackages returns a scope predicate matching exactly the given
// import paths.
func inPackages(paths ...string) func(string) bool {
	set := make(map[string]bool, len(paths))
	for _, p := range paths {
		set[p] = true
	}
	return func(p string) bool { return set[p] }
}

// anyPackage matches every package.
func anyPackage(string) bool { return true }

// DefaultRules returns the repo's rule set with its production
// scopes. The scopes track the blast radius of each failure mode:
// map-order and seeded-randomness hazards invalidate simulator
// reproducibility, float equality destabilises the model's
// fixed-point iteration, and the documentation rule keeps the
// model/topology surface traceable to the paper.
func DefaultRules() []Rule {
	simulation := inPackages(
		"starperf/internal/desim",
		"starperf/internal/routing",
		"starperf/internal/experiments",
		"starperf/internal/faults",
		"starperf/internal/obs",
		"starperf/internal/jobs",
		"starperf/internal/cache",
		"starperf/internal/server",
		"starperf/internal/journal",
		"starperf/internal/fsx",
		"starperf/internal/cluster",
		"starperf/internal/bounds",
		"starperf/internal/netx",
		"starperf/internal/soak",
		"starperf/client",
	)
	numerical := inPackages(
		"starperf/internal/model",
		"starperf/internal/queueing",
		"starperf/internal/bounds",
	)
	deterministic := func(p string) bool {
		// The serving layer, the journal and the public client are the
		// internal-facing packages allowed the wall clock: request
		// latency histograms measure real time by definition, the
		// journal stamps fsync timing, and the client seeds retry
		// jitter. The engine they schedule (jobs, cache, experiments,
		// desim) stays clock-free; the chaos seam (fsx) draws only
		// from explicitly seeded fault plans.
		return strings.HasPrefix(p, "starperf/internal/") &&
			p != "starperf/internal/lint" &&
			p != "starperf/internal/server" &&
			p != "starperf/internal/journal"
	}
	documented := inPackages(
		"starperf/internal/model",
		"starperf/internal/stargraph",
	)
	// The interprocedural rules (phase two over the call graph).
	// iounderlock exempts the two packages whose contract is I/O under
	// their own lock: the journal's WAL serialises writers through
	// j.mu by design, and fsx.Faulty brackets injected faults with a
	// bookkeeping mutex. Everyone else holding a lock across I/O —
	// including a lock held across a *call into* those packages — is
	// the PR 5 fsync-under-p.mu bug and gets flagged.
	ioScope := func(p string) bool {
		return p != "starperf/internal/journal" && p != "starperf/internal/fsx"
	}
	// clockseam guards the deterministic core: the packages whose
	// behaviour TestDeterminismByteIdentical freezes byte-for-byte,
	// plus the consistent-hash ring — every node and client must
	// compute identical placement from the member list alone. The
	// chaos fabric (netx) and the soak harness join the scope because
	// their whole value is replayability: fault schedules and op
	// sequences must derive from seeds, never the wall clock (sleeping
	// and deadlines are fine; reading the clock is not).
	clockCore := inPackages(
		"starperf/internal/desim",
		"starperf/internal/jobs",
		"starperf/internal/journal",
		"starperf/internal/cluster",
		"starperf/internal/bounds",
		"starperf/internal/netx",
		"starperf/internal/soak",
	)
	// errclass anchors at the public surface: the root api.go package,
	// the HTTP client, and the ring package the client re-exposes
	// through LearnRing. cfgerr is the classifier, so its own
	// constructors are exempt leaves.
	// netx and soak join the anchor set: netx's RoundTripper surfaces
	// errors straight to retry classification, and soak's report is
	// consumed by CI — neither may mint unclassifiable errors.
	errSurface := inPackages("starperf", "starperf/client", "starperf/internal/cluster",
		"starperf/internal/bounds", "starperf/internal/netx", "starperf/internal/soak")
	errClassifier := inPackages("starperf/internal/cfgerr")
	// bodyclose covers everything that does HTTP: the client, the
	// serving/forwarding layer, and now the fault fabric (which wraps
	// and re-bodies responses) and the soak driver.
	httpScope := inPackages("starperf/client", "starperf/internal/server", "starperf/internal/cluster",
		"starperf/internal/netx", "starperf/internal/soak")
	return []Rule{
		NewMapOrder(simulation),
		NewFloatEq(numerical, "EqualWithin", "Close", "approxEq"),
		NewSeedRand(deterministic),
		NewAPIErr("starperf", anyPackage),
		NewEqDoc(documented),
		NewIOUnderLock(ioScope),
		NewLockOrder(anyPackage),
		NewClockSeam(clockCore),
		NewErrClass(errSurface, errClassifier),
		NewBodyClose(httpScope),
	}
}

// rootIdent unwraps selectors, indexing, dereferences and parens down
// to the base identifier of an lvalue, or nil when the base is not an
// identifier (e.g. a call result).
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		default:
			return nil
		}
	}
}
