// Package lint implements starlint, the repo-specific static-analysis
// pass behind cmd/starlint. It walks every package of the module with
// go/parser and go/types (standard library only) and enforces the
// correctness invariants the paper reproduction depends on: the
// flit-level simulator and the analytical model must agree bit-for-bit
// run over run, so map-iteration order must never feed event order,
// randomness must flow through injected seeded sources, floats must
// not be compared exactly, errors from the public API must not be
// dropped, and the model's exported surface must be traceable to the
// paper's equations.
//
// A finding can be suppressed in place with
//
//	//lint:ignore rule1[,rule2] reason
//
// placed on, or on the line directly above, the offending line. The
// reason is mandatory; a directive without one is itself reported
// (rule "directive").
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Finding is one diagnostic produced by a rule.
type Finding struct {
	// Rule is the name of the rule that fired.
	Rule string `json:"rule"`
	// File, Line and Col locate the finding (1-based line and column).
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
	// Message explains the violation and how to fix it.
	Message string `json:"message"`
}

// String renders the finding in the conventional file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", f.File, f.Line, f.Col, f.Message, f.Rule)
}

// ReportFunc is how rules emit findings.
type ReportFunc func(pos token.Pos, msg string)

// Rule is one self-contained checker.
type Rule interface {
	// Name is the short identifier used in output and in
	// //lint:ignore directives.
	Name() string
	// Doc is a one-line description for -list.
	Doc() string
	// Applies reports whether the rule runs on the given import path.
	Applies(pkgPath string) bool
	// Check analyses one package and reports findings.
	Check(pkg *Package, report ReportFunc)
}

// Run executes every applicable rule over every package, drops
// suppressed findings, and returns the rest sorted by position. The
// returned slice also contains a "directive" finding for every
// malformed //lint:ignore comment.
func Run(pkgs []*Package, rules []Rule) []Finding {
	var out []Finding
	for _, pkg := range pkgs {
		sup, bad := collectSuppressions(pkg)
		out = append(out, bad...)
		for _, rule := range rules {
			if !rule.Applies(pkg.Path) {
				continue
			}
			rule.Check(pkg, func(pos token.Pos, msg string) {
				p := pkg.Fset.Position(pos)
				if sup.suppressed(p.Filename, p.Line, rule.Name()) {
					return
				}
				out = append(out, Finding{
					Rule:    rule.Name(),
					File:    p.Filename,
					Line:    p.Line,
					Col:     p.Column,
					Message: msg,
				})
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Message < b.Message
	})
	return out
}

// suppressions maps file -> line -> the set of rule names suppressed
// on that line.
type suppressions map[string]map[int]map[string]bool

func (s suppressions) suppressed(file string, line int, rule string) bool {
	return s[file][line][rule]
}

const ignorePrefix = "//lint:ignore"

// collectSuppressions scans every comment of the package (test files
// included) for //lint:ignore directives. A well-formed directive
// suppresses the named rules on its own line and on the line directly
// below it; malformed directives are returned as findings.
func collectSuppressions(pkg *Package) (suppressions, []Finding) {
	sup := make(suppressions)
	var bad []Finding
	for _, f := range pkg.AllFiles() {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				p := pkg.Fset.Position(c.Pos())
				rest := strings.TrimPrefix(c.Text, ignorePrefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // e.g. //lint:ignorefoo — not ours
				}
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					bad = append(bad, Finding{
						Rule: "directive", File: p.Filename, Line: p.Line, Col: p.Column,
						Message: "malformed //lint:ignore: want \"//lint:ignore rule[,rule] reason\"",
					})
					continue
				}
				byFile := sup[p.Filename]
				if byFile == nil {
					byFile = make(map[int]map[string]bool)
					sup[p.Filename] = byFile
				}
				for _, rule := range strings.Split(fields[0], ",") {
					for _, line := range []int{p.Line, p.Line + 1} {
						if byFile[line] == nil {
							byFile[line] = make(map[string]bool)
						}
						byFile[line][rule] = true
					}
				}
			}
		}
	}
	return sup, bad
}

// inPackages returns a scope predicate matching exactly the given
// import paths.
func inPackages(paths ...string) func(string) bool {
	set := make(map[string]bool, len(paths))
	for _, p := range paths {
		set[p] = true
	}
	return func(p string) bool { return set[p] }
}

// anyPackage matches every package.
func anyPackage(string) bool { return true }

// DefaultRules returns the repo's rule set with its production
// scopes. The scopes track the blast radius of each failure mode:
// map-order and seeded-randomness hazards invalidate simulator
// reproducibility, float equality destabilises the model's
// fixed-point iteration, and the documentation rule keeps the
// model/topology surface traceable to the paper.
func DefaultRules() []Rule {
	simulation := inPackages(
		"starperf/internal/desim",
		"starperf/internal/routing",
		"starperf/internal/experiments",
		"starperf/internal/faults",
		"starperf/internal/obs",
		"starperf/internal/jobs",
		"starperf/internal/cache",
		"starperf/internal/server",
		"starperf/internal/journal",
		"starperf/internal/fsx",
		"starperf/client",
	)
	numerical := inPackages(
		"starperf/internal/model",
		"starperf/internal/queueing",
	)
	deterministic := func(p string) bool {
		// The serving layer, the journal and the public client are the
		// internal-facing packages allowed the wall clock: request
		// latency histograms measure real time by definition, the
		// journal stamps fsync timing, and the client seeds retry
		// jitter. The engine they schedule (jobs, cache, experiments,
		// desim) stays clock-free; the chaos seam (fsx) draws only
		// from explicitly seeded fault plans.
		return strings.HasPrefix(p, "starperf/internal/") &&
			p != "starperf/internal/lint" &&
			p != "starperf/internal/server" &&
			p != "starperf/internal/journal"
	}
	documented := inPackages(
		"starperf/internal/model",
		"starperf/internal/stargraph",
	)
	return []Rule{
		NewMapOrder(simulation),
		NewFloatEq(numerical, "EqualWithin", "Close", "approxEq"),
		NewSeedRand(deterministic),
		NewAPIErr("starperf", anyPackage),
		NewEqDoc(documented),
	}
}

// rootIdent unwraps selectors, indexing, dereferences and parens down
// to the base identifier of an lvalue, or nil when the base is not an
// identifier (e.g. a call result).
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		default:
			return nil
		}
	}
}
