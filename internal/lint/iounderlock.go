package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// ioUnderLock flags disk or network I/O that is reachable while a
// mutex is held. Holding a lock across an fsync or a dial turns every
// contender into a disk-latency victim — PR 5 shipped exactly this
// bug (the job journal's fsync ran under jobs.Pool.mu until review
// caught it), and the fix (reserve under the lock, write outside,
// re-lock to publish) is the shape this rule now enforces mechanically.
//
// The scan is interprocedural: a call made under a lock is resolved
// through the program call graph, so the I/O may be buried several
// frames deep (Submit → journal.Append → file.Sync). Packages whose
// whole point is I/O under their own lock — the journal's WAL
// serialises writers by design, and fsx.Faulty brackets injected
// faults with a bookkeeping mutex — are excluded by scope, not by
// special cases here.
type ioUnderLock struct {
	applies func(string) bool
}

// NewIOUnderLock returns the iounderlock rule restricted to packages
// matched by applies. Reachability still spans the whole module: a
// scoped function holding its lock across a call into an exempt
// package is the bug, and is reported.
func NewIOUnderLock(applies func(string) bool) Rule {
	return &ioUnderLock{applies: applies}
}

func (r *ioUnderLock) Name() string { return "iounderlock" }

func (r *ioUnderLock) Doc() string {
	return "no disk or network I/O reachable while a sync.Mutex/RWMutex is held"
}

func (r *ioUnderLock) Applies(p string) bool { return r.applies(p) }

// Check is unused: the engine dispatches ProgramRules to CheckProgram.
func (r *ioUnderLock) Check(pkg *Package, report ReportFunc) {}

func (r *ioUnderLock) CheckProgram(prog *Program, report ProgramReportFunc) {
	for _, key := range prog.sortedFuncKeys() {
		ff := prog.Funcs[key]
		if !r.applies(ff.Pkg.Path) {
			continue
		}
		scanCritical(ff.Pkg, ff.Decl, csCallbacks{
			onCall: func(call *ast.CallExpr, fn *types.Func, held []heldLock) {
				r.checkCall(prog, ff, call, fn, held, report)
			},
		})
	}
}

func (r *ioUnderLock) checkCall(prog *Program, ff *FuncFacts, call *ast.CallExpr,
	fn *types.Func, held []heldLock, report ProgramReportFunc) {
	var desc, via string
	switch {
	case isIOFunc(fn):
		desc = funcDisplay(fn)
	default:
		reach := prog.ReachIO(funcKey(fn))
		if reach == nil {
			return
		}
		desc = reach.Fact.Desc
		via = " (via " + chainString(reach.Chain) + ")"
	}
	report(ff.Pkg, call.Pos(), fmt.Sprintf(
		"I/O (%s) reachable while %s is held%s: release the lock around the I/O "+
			"— reserve state under the lock, do the I/O outside, re-lock to publish",
		desc, heldNames(held), via))
}

// heldNames renders the held-lock set for a message.
func heldNames(held []heldLock) string {
	if len(held) == 1 {
		return held[0].Display
	}
	s := ""
	for i, h := range held {
		if i > 0 {
			s += ", "
		}
		s += h.Display
	}
	return s
}
