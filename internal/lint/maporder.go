package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// mapOrder flags `range` loops over maps whose bodies perform
// order-sensitive writes to state declared outside the loop. Go
// randomises map iteration order, so any such write makes event
// order — and with it every simulator statistic — differ run to run.
//
// Allowed inside a map-range body:
//   - writes to variables declared inside the loop;
//   - integer/bool accumulation into a plain local variable
//     (count++, seen = true): commutative, hence order-insensitive;
//   - indexed writes whose index is the range key (out[k] = v):
//     distinct keys touch distinct elements;
//   - the collect-then-sort idiom: appending the key or value to a
//     function-local slice that is sorted after the loop.
//
// Everything else — appends, float accumulation, writes through
// selectors or pointers — is reported.
type mapOrder struct {
	applies func(string) bool
}

// NewMapOrder returns the maporder rule restricted to packages
// matched by applies.
func NewMapOrder(applies func(string) bool) Rule { return &mapOrder{applies: applies} }

func (r *mapOrder) Name() string { return "maporder" }

func (r *mapOrder) Doc() string {
	return "no order-sensitive writes inside range-over-map loops (simulator determinism)"
}

func (r *mapOrder) Applies(p string) bool { return r.applies(p) }

func (r *mapOrder) Check(pkg *Package, report ReportFunc) {
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				t := pkg.Info.TypeOf(rs.X)
				if t == nil {
					return true
				}
				if _, isMap := t.Underlying().(*types.Map); !isMap {
					return true
				}
				r.checkBody(pkg, fd, rs, report)
				return true
			})
		}
	}
}

func (r *mapOrder) checkBody(pkg *Package, fd *ast.FuncDecl, rs *ast.RangeStmt, report ReportFunc) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range st.Lhs {
				var rhs ast.Expr
				if len(st.Rhs) == len(st.Lhs) {
					rhs = st.Rhs[i]
				}
				r.checkWrite(pkg, fd, rs, lhs, rhs, report)
			}
		case *ast.IncDecStmt:
			r.checkWrite(pkg, fd, rs, st.X, nil, report)
		case *ast.CallExpr:
			if id, ok := st.Fun.(*ast.Ident); ok && id.Name == "delete" &&
				pkg.Info.Uses[id] == types.Universe.Lookup("delete") && len(st.Args) > 0 {
				r.checkWrite(pkg, fd, rs, st.Args[0], nil, report)
			}
		}
		return true
	})
}

// checkWrite reports lhs if it writes order-sensitively to state
// declared outside the range statement. rhs is the assigned
// expression when the write comes from an assignment (nil otherwise).
func (r *mapOrder) checkWrite(pkg *Package, fd *ast.FuncDecl, rs *ast.RangeStmt,
	lhs, rhs ast.Expr, report ReportFunc) {
	root := rootIdent(lhs)
	if root == nil || root.Name == "_" {
		return
	}
	obj := pkg.Info.ObjectOf(root)
	if obj == nil || declaredWithin(obj, rs) {
		return
	}
	// out[k] = v with the range key as index: distinct keys touch
	// distinct elements, so the write order cannot matter.
	if ix, ok := lhs.(*ast.IndexExpr); ok && r.isRangeVar(pkg, rs, ix.Index) {
		return
	}
	if id, ok := lhs.(*ast.Ident); ok {
		// Plain integer/bool accumulators are commutative.
		if isOrderFree(obj.Type()) {
			return
		}
		// keys = append(keys, k) followed by a sort of keys after the
		// loop: the canonical deterministic-iteration idiom.
		if rhs != nil && r.isSortedAppend(pkg, fd, rs, id, rhs) {
			return
		}
	}
	report(lhs.Pos(), fmt.Sprintf(
		"write to %q inside range over map %s: map iteration order is randomised, "+
			"so this makes simulator state depend on it; iterate over sorted keys instead",
		exprString(lhs), exprString(rs.X)))
}

// declaredWithin reports whether obj's declaration lies inside the
// range statement (loop variables and body-local declarations).
func declaredWithin(obj types.Object, rs *ast.RangeStmt) bool {
	return obj.Pos() >= rs.Pos() && obj.Pos() <= rs.End()
}

// isOrderFree reports whether accumulating into a value of type t is
// commutative: integers and booleans are, floats/strings/slices are
// not.
func isOrderFree(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return b.Info()&(types.IsInteger|types.IsBoolean) != 0
}

// isRangeVar reports whether e is exactly one of the loop variables
// of rs.
func (r *mapOrder) isRangeVar(pkg *Package, rs *ast.RangeStmt, e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	obj := pkg.Info.ObjectOf(id)
	if obj == nil {
		return false
	}
	for _, v := range []ast.Expr{rs.Key, rs.Value} {
		vid, ok := v.(*ast.Ident)
		if !ok {
			continue
		}
		if vobj := pkg.Info.ObjectOf(vid); vobj != nil && vobj == obj {
			return true
		}
	}
	return false
}

// isSortedAppend recognises `x = append(x, k)` (or `, v`) into a
// function-local slice x that is passed to a sort or slices call
// after the loop ends — collect-then-sort, which is deterministic
// overall.
func (r *mapOrder) isSortedAppend(pkg *Package, fd *ast.FuncDecl, rs *ast.RangeStmt,
	lhs *ast.Ident, rhs ast.Expr) bool {
	call, ok := rhs.(*ast.CallExpr)
	if !ok {
		return false
	}
	fun, ok := call.Fun.(*ast.Ident)
	if !ok || fun.Name != "append" || pkg.Info.Uses[fun] != types.Universe.Lookup("append") {
		return false
	}
	if len(call.Args) < 2 {
		return false
	}
	base, ok := call.Args[0].(*ast.Ident)
	if !ok || pkg.Info.ObjectOf(base) != pkg.Info.ObjectOf(lhs) {
		return false
	}
	for _, arg := range call.Args[1:] {
		if !r.isRangeVar(pkg, rs, arg) {
			return false
		}
	}
	obj := pkg.Info.ObjectOf(lhs)
	// Look for sort.X(x, ...) / slices.SortX(x, ...) after the loop.
	sorted := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if sorted {
			return false
		}
		c, ok := n.(*ast.CallExpr)
		if !ok || c.Pos() < rs.End() {
			return true
		}
		sel, ok := c.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkgID, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pn, ok := pkg.Info.Uses[pkgID].(*types.PkgName)
		if !ok {
			return true
		}
		path := pn.Imported().Path()
		if path != "sort" && path != "slices" {
			return true
		}
		for _, arg := range c.Args {
			if ai := rootIdent(arg); ai != nil && pkg.Info.ObjectOf(ai) == obj {
				sorted = true
				return false
			}
		}
		return true
	})
	return sorted
}

// exprString renders a short source form of e for diagnostics.
func exprString(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprString(x.X) + "." + x.Sel.Name
	case *ast.IndexExpr:
		return exprString(x.X) + "[" + exprString(x.Index) + "]"
	case *ast.StarExpr:
		return "*" + exprString(x.X)
	case *ast.ParenExpr:
		return "(" + exprString(x.X) + ")"
	case *ast.CallExpr:
		return exprString(x.Fun) + "(…)"
	case *ast.BasicLit:
		return x.Value
	default:
		return "expr"
	}
}
