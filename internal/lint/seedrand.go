package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strconv"
	"strings"
)

// seedRand flags calls that smuggle ambient nondeterminism into the
// simulation and model packages: math/rand's package-level functions
// (they draw from the unseeded global source) and time.Now/Since/
// Until (wall-clock reads). All randomness must flow through an
// injected seeded generator (traffic.RNG or a *rand.Rand built with
// rand.New(rand.NewSource(seed))), so that a Config plus a Seed fully
// determines a run.
//
// This rule also covers _test.go files: a test drawing from the
// global source is flaky by construction. Test files carry no type
// information, so for them the check falls back to matching the
// file's import table.
type seedRand struct {
	applies func(string) bool
}

// NewSeedRand returns the seedrand rule restricted to packages
// matched by applies.
func NewSeedRand(applies func(string) bool) Rule { return &seedRand{applies: applies} }

func (r *seedRand) Name() string { return "seedrand" }

func (r *seedRand) Doc() string {
	return "no math/rand global-source calls or wall-clock reads in simulation/model code"
}

func (r *seedRand) Applies(p string) bool { return r.applies(p) }

// bannedRand are the math/rand (and v2) package-level functions that
// draw from the global source. Constructors (New, NewSource, NewZipf,
// NewPCG, NewChaCha8) and *rand.Rand methods stay allowed.
var bannedRand = map[string]bool{
	"Seed": true, "Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Read": true,
	// math/rand/v2 spellings
	"N": true, "IntN": true, "Int32N": true, "Int64N": true,
	"UintN": true, "Uint32N": true, "Uint64N": true,
}

var bannedTime = map[string]bool{"Now": true, "Since": true, "Until": true}

func (r *seedRand) Check(pkg *Package, report ReportFunc) {
	for _, file := range pkg.Files {
		r.checkFile(pkg, file, true, report)
	}
	for _, file := range pkg.TestFiles {
		r.checkFile(pkg, file, false, report)
	}
}

func (r *seedRand) checkFile(pkg *Package, file *ast.File, typed bool, report ReportFunc) {
	imports := importTable(file)
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		base, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		path, ok := r.resolvePackage(pkg, base, imports, typed)
		if !ok {
			return true
		}
		switch {
		case (path == "math/rand" || path == "math/rand/v2") && bannedRand[sel.Sel.Name]:
			report(call.Pos(), fmt.Sprintf(
				"%s.%s draws from the unseeded global source: inject a seeded *rand.Rand "+
					"(rand.New(rand.NewSource(seed))) so the run is reproducible",
				base.Name, sel.Sel.Name))
		case path == "time" && bannedTime[sel.Sel.Name]:
			report(call.Pos(), fmt.Sprintf(
				"time.%s reads the wall clock: simulation/model code must be a pure "+
					"function of its Config; use the simulated clock or inject the time",
				sel.Sel.Name))
		}
		return true
	})
}

// resolvePackage maps the base identifier of a selector to an import
// path: through type information when available, otherwise through
// the file's import table (which cannot be fooled by shadowing but
// suffices for test files).
func (r *seedRand) resolvePackage(pkg *Package, base *ast.Ident,
	imports map[string]string, typed bool) (string, bool) {
	if typed {
		pn, ok := pkg.Info.Uses[base].(*types.PkgName)
		if !ok {
			return "", false
		}
		return pn.Imported().Path(), true
	}
	path, ok := imports[base.Name]
	return path, ok
}

// importTable maps local package names to import paths for one file.
func importTable(file *ast.File) map[string]string {
	t := make(map[string]string, len(file.Imports))
	for _, imp := range file.Imports {
		path, err := strconv.Unquote(imp.Path.Value)
		if err != nil {
			continue
		}
		name := path
		if i := strings.LastIndexByte(path, '/'); i >= 0 {
			name = path[i+1:]
		}
		if path == "math/rand/v2" {
			name = "rand"
		}
		if imp.Name != nil {
			name = imp.Name.Name
		}
		t[name] = path
	}
	return t
}
