package lint

import "fmt"

// clockSeam is the static twin of TestDeterminismByteIdentical: in
// the deterministic core (desim, jobs, journal) no wall-clock read
// and no draw from the global rand source may be *reachable*, not
// merely present — a time.Now three frames down a helper chain breaks
// byte-identical replay exactly as thoroughly as an inline one. The
// sanctioned escape is the injected seam: assigning time.Now as the
// default of a field named Now or Clock (PoolConfig.Now) is how the
// production clock enters, and calls through that seam are function
// values the analysis deliberately treats as opaque.
//
// The syntactic seedrand rule stays on: it covers test files (which
// carry no types and thus no call graph) and packages outside this
// rule's reachability scope.
type clockSeam struct {
	applies func(string) bool
}

// NewClockSeam returns the clockseam rule restricted to packages
// matched by applies.
func NewClockSeam(applies func(string) bool) Rule { return &clockSeam{applies: applies} }

func (r *clockSeam) Name() string { return "clockseam" }

func (r *clockSeam) Doc() string {
	return "no wall-clock or global-rand reachable from the deterministic core except through a Now/Clock seam"
}

func (r *clockSeam) Applies(p string) bool { return r.applies(p) }

// Check is unused: the engine dispatches ProgramRules to CheckProgram.
func (r *clockSeam) Check(pkg *Package, report ReportFunc) {}

func (r *clockSeam) CheckProgram(prog *Program, report ProgramReportFunc) {
	for _, key := range prog.sortedFuncKeys() {
		ff := prog.Funcs[key]
		if !r.applies(ff.Pkg.Path) {
			continue
		}
		// Direct facts are reported where they occur.
		for _, f := range ff.Clock {
			report(ff.Pkg, f.Pos, fmt.Sprintf(
				"%s in the deterministic core: a Config plus a Seed must fully determine "+
					"a run; route it through an injected Now/Clock seam or a seeded source",
				f.Desc))
		}
		// Reach-through-call facts are reported at the call site, but
		// only when the callee's package is outside this rule's scope —
		// a scoped callee is reported directly at its own fact.
		for _, call := range ff.Calls {
			callee := prog.Funcs[call.Key]
			if callee != nil && r.applies(callee.Pkg.Path) {
				continue
			}
			if reach := prog.ReachClock(call.Key); reach != nil {
				report(ff.Pkg, call.Pos, fmt.Sprintf(
					"%s reachable from the deterministic core via %s: a Config plus a Seed "+
						"must fully determine a run; inject the clock/seed through the seam "+
						"instead of calling into wall-clock code",
					reach.Fact.Desc, chainString(append([]string{ff.Display}, reach.Chain...))))
			}
		}
	}
}
