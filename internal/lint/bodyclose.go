package lint

import (
	"fmt"
	"go/ast"
	"strings"
)

// bodyClose flags *http.Response values whose Body is never closed.
// A leaked body pins its keep-alive connection; in the server and
// client test suites — which spin up real httptest servers — enough
// leaks exhaust the default transport's connection pool and turn the
// suite flaky under -parallel.
//
// The analysis is syntactic by necessity: _test.go files are parsed
// but not type-checked (see Package), so there is no type information
// to lean on. A response is "produced" by net/http's package-level
// helpers (Get, Post, Head, PostForm), by a Do/RoundTrip method call,
// or by a same-package function whose declared results include
// *http.Response (the ownership-transfer idiom: a postJSON helper
// returns the response, its caller owns the close). A produced
// response is satisfied when the enclosing function closes its Body
// (deferred or not), returns it, passes it to a same-package closer —
// a function that closes the corresponding parameter's Body, computed
// package-wide to a fixpoint so helpers of helpers count — or stores
// it into a struct or another variable (escape: ownership moved
// somewhere this pass cannot follow).
type bodyClose struct {
	applies func(string) bool
}

// NewBodyClose returns the bodyclose rule restricted to packages
// matched by applies.
func NewBodyClose(applies func(string) bool) Rule { return &bodyClose{applies: applies} }

func (r *bodyClose) Name() string { return "bodyclose" }

func (r *bodyClose) Doc() string {
	return "every *http.Response produced in client/server code and tests is closed on all paths"
}

func (r *bodyClose) Applies(p string) bool { return r.applies(p) }

func (r *bodyClose) Check(pkg *Package, report ReportFunc) {
	closers := collectClosers(pkg)
	producers := collectProducers(pkg)
	for _, file := range pkg.AllFiles() {
		httpName := httpImportName(file)
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			r.checkFunc(pkg, fd, httpName, producers, closers, report)
		}
	}
}

// httpImportName returns the local name net/http is imported under in
// file, or "" when it is not imported.
func httpImportName(file *ast.File) string {
	for name, path := range importTable(file) {
		if path == "net/http" {
			return name
		}
	}
	return ""
}

// respResultIndex returns the index of the first declared result
// whose type reads *http.Response (under any import alias this stays
// a suffix match on the rendered type), or -1.
func respResultIndex(fd *ast.FuncDecl) int {
	if fd.Type.Results == nil {
		return -1
	}
	idx := 0
	for _, field := range fd.Type.Results.List {
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		if isRespType(field.Type) {
			return idx
		}
		idx += n
	}
	return -1
}

func isRespType(e ast.Expr) bool {
	star, ok := e.(*ast.StarExpr)
	if !ok {
		return false
	}
	sel, ok := star.X.(*ast.SelectorExpr)
	return ok && sel.Sel.Name == "Response"
}

// collectProducers maps same-package function names to the result
// index of the *http.Response they return.
func collectProducers(pkg *Package) map[string]int {
	out := make(map[string]int)
	for _, file := range pkg.AllFiles() {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv != nil {
				continue
			}
			if i := respResultIndex(fd); i >= 0 {
				out[fd.Name.Name] = i
			}
		}
	}
	return out
}

// collectClosers maps same-package function names to the set of
// parameter indices whose Body they close, to a fixpoint so a helper
// that hands its parameter to another closer counts too.
func collectClosers(pkg *Package) map[string]map[int]bool {
	type fn struct {
		decl   *ast.FuncDecl
		params []string
	}
	var fns []fn
	for _, file := range pkg.AllFiles() {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv != nil || fd.Body == nil || fd.Type.Params == nil {
				continue
			}
			var params []string
			for _, field := range fd.Type.Params.List {
				for _, name := range field.Names {
					params = append(params, name.Name)
				}
			}
			fns = append(fns, fn{decl: fd, params: params})
		}
	}
	out := make(map[string]map[int]bool)
	for changed := true; changed; {
		changed = false
		for _, f := range fns {
			for i, p := range f.params {
				if p == "_" || out[f.decl.Name.Name][i] {
					continue
				}
				if closesVar(f.decl.Body, p, out) {
					if out[f.decl.Name.Name] == nil {
						out[f.decl.Name.Name] = make(map[int]bool)
					}
					out[f.decl.Name.Name][i] = true
					changed = true
				}
			}
		}
	}
	return out
}

// closesVar reports whether body contains v.Body.Close() (deferred or
// not) or passes v to a known closer at a closing parameter index.
func closesVar(body ast.Node, v string, closers map[string]map[int]bool) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		if isBodyCloseOn(call, v) {
			found = true
			return false
		}
		if id, ok := call.Fun.(*ast.Ident); ok {
			for i, arg := range call.Args {
				if aid, ok := arg.(*ast.Ident); ok && aid.Name == v && closers[id.Name][i] {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}

// isBodyCloseOn matches v.Body.Close().
func isBodyCloseOn(call *ast.CallExpr, v string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Close" {
		return false
	}
	inner, ok := sel.X.(*ast.SelectorExpr)
	if !ok || inner.Sel.Name != "Body" {
		return false
	}
	id, ok := inner.X.(*ast.Ident)
	return ok && id.Name == v
}

// checkFunc analyses one function body for produced-but-unclosed
// responses.
func (r *bodyClose) checkFunc(pkg *Package, fd *ast.FuncDecl, httpName string,
	producers map[string]int, closers map[string]map[int]bool, report ReportFunc) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.ExprStmt:
			if call, ok := st.X.(*ast.CallExpr); ok {
				if _, ok := r.producerCall(call, httpName, producers); ok {
					report(call.Pos(), "http.Response discarded without closing its Body: "+
						"assign it and defer resp.Body.Close()")
				}
			}
		case *ast.AssignStmt:
			r.checkAssign(fd, st, httpName, producers, closers, report)
		}
		return true
	})
}

// producerCall decides whether call yields an *http.Response and at
// which tuple index.
func (r *bodyClose) producerCall(call *ast.CallExpr, httpName string,
	producers map[string]int) (int, bool) {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if i, ok := producers[fun.Name]; ok {
			return i, true
		}
	case *ast.SelectorExpr:
		if base, ok := fun.X.(*ast.Ident); ok && httpName != "" && base.Name == httpName {
			switch fun.Sel.Name {
			case "Get", "Post", "Head", "PostForm":
				return 0, true
			}
		}
		switch fun.Sel.Name {
		case "Do", "RoundTrip":
			// Client.Do / Transport.RoundTrip. The receiver is matched
			// loosely (anything ending in a client/transport spelling or
			// http.DefaultClient) to keep unrelated Do methods out.
			recv := strings.ToLower(exprText(fun.X))
			if strings.Contains(recv, "client") || strings.Contains(recv, "transport") {
				return 0, true
			}
		}
	}
	return -1, false
}

// exprText renders a short expression for the heuristics above.
func exprText(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprText(x.X) + "." + x.Sel.Name
	case *ast.CallExpr:
		return exprText(x.Fun) + "()"
	case *ast.ParenExpr:
		return exprText(x.X)
	case *ast.StarExpr:
		return exprText(x.X)
	}
	return ""
}

func (r *bodyClose) checkAssign(fd *ast.FuncDecl, st *ast.AssignStmt, httpName string,
	producers map[string]int, closers map[string]map[int]bool, report ReportFunc) {
	if len(st.Rhs) != 1 {
		return
	}
	call, ok := st.Rhs[0].(*ast.CallExpr)
	if !ok {
		return
	}
	idx, ok := r.producerCall(call, httpName, producers)
	if !ok || idx >= len(st.Lhs) {
		return
	}
	id, ok := st.Lhs[idx].(*ast.Ident)
	if !ok {
		return
	}
	if id.Name == "_" {
		report(id.Pos(), "http.Response assigned to _: its Body leaks the connection; "+
			"assign it and defer resp.Body.Close()")
		return
	}
	if !r.satisfied(fd.Body, id.Name, closers) {
		report(call.Pos(), fmt.Sprintf(
			"%s's Body is never closed in this function: defer %s.Body.Close(), return "+
				"it, or hand it to a helper that closes it", id.Name, id.Name))
	}
}

// satisfied reports whether v's body is closed, returned, passed to a
// closer, or escapes into another variable or composite literal.
func (r *bodyClose) satisfied(body ast.Node, v string, closers map[string]map[int]bool) bool {
	if closesVar(body, v, closers) {
		return true
	}
	ok := false
	ast.Inspect(body, func(n ast.Node) bool {
		if ok {
			return false
		}
		switch st := n.(type) {
		case *ast.ReturnStmt:
			for _, res := range st.Results {
				if id, isID := res.(*ast.Ident); isID && id.Name == v {
					ok = true
					return false
				}
			}
		case *ast.AssignStmt:
			for _, rhs := range st.Rhs {
				if id, isID := rhs.(*ast.Ident); isID && id.Name == v {
					ok = true // ownership moved to another variable
					return false
				}
			}
		case *ast.KeyValueExpr:
			if id, isID := st.Value.(*ast.Ident); isID && id.Name == v {
				ok = true // stored in a struct; lifetime unknown
				return false
			}
		case *ast.SendStmt:
			if id, isID := st.Value.(*ast.Ident); isID && id.Name == v {
				ok = true
				return false
			}
		}
		return true
	})
	return ok
}
