package lint

import (
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// fixtureLoader is shared across tests so the standard library is
// source-imported only once.
var (
	fixtureOnce   sync.Once
	fixtureLoader *Loader
)

func loadFixture(t *testing.T, path string) *Package {
	t.Helper()
	fixtureOnce.Do(func() {
		fixtureLoader = NewLoader("testdata", "fix")
	})
	pkg, err := fixtureLoader.Load(path)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", path, err)
	}
	return pkg
}

// scanWants collects the "// want <rule>" markers of a fixture
// package as "file:line:rule" keys.
func scanWants(pkg *Package) map[string]int {
	wants := make(map[string]int)
	for _, f := range pkg.AllFiles() {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				rule := strings.TrimSpace(rest)
				p := pkg.Fset.Position(c.Pos())
				wants[fmt.Sprintf("%s:%d:%s", filepath.Base(p.Filename), p.Line, rule)]++
			}
		}
	}
	return wants
}

// checkFixture runs one rule over the given fixture packages and
// compares the findings against their // want markers, proving both
// that the rule fires on violations and that //lint:ignore suppresses
// it. Interprocedural rules pass every package of their fixture call
// graph; per-package rules pass one.
func checkFixture(t *testing.T, rule Rule, pkgPaths ...string) {
	t.Helper()
	pkgs := make([]*Package, 0, len(pkgPaths))
	wants := make(map[string]int)
	for _, path := range pkgPaths {
		pkg := loadFixture(t, path)
		pkgs = append(pkgs, pkg)
		for k, n := range scanWants(pkg) {
			wants[k] += n
		}
	}
	got := make(map[string]int)
	for _, f := range Run(pkgs, []Rule{rule}) {
		if f.Rule != rule.Name() {
			t.Errorf("unexpected finding from rule %q: %s", f.Rule, f)
			continue
		}
		got[fmt.Sprintf("%s:%d:%s", filepath.Base(f.File), f.Line, f.Rule)]++
	}
	for key, n := range wants {
		if got[key] != n {
			t.Errorf("want %d finding(s) at %s, got %d", n, key, got[key])
		}
	}
	for key, n := range got {
		if wants[key] == 0 {
			t.Errorf("unexpected finding(s) at %s (×%d)", key, n)
		}
	}
}

func TestMapOrderFixture(t *testing.T) {
	checkFixture(t, NewMapOrder(anyPackage), "fix/maporder")
}

func TestFloatEqFixture(t *testing.T) {
	checkFixture(t, NewFloatEq(anyPackage, "EqualWithin"), "fix/floateq")
}

func TestSeedRandFixture(t *testing.T) {
	checkFixture(t, NewSeedRand(anyPackage), "fix/seedrand")
}

func TestAPIErrFixture(t *testing.T) {
	checkFixture(t, NewAPIErr("fix/apierr/api", anyPackage), "fix/apierr/use")
}

func TestEqDocFixture(t *testing.T) {
	checkFixture(t, NewEqDoc(anyPackage), "fix/eqdoc")
}

func TestIOUnderLockFixture(t *testing.T) {
	checkFixture(t, NewIOUnderLock(anyPackage), "fix/iounderlock", "fix/iounderlock/wal")
}

func TestLockOrderFixture(t *testing.T) {
	checkFixture(t, NewLockOrder(anyPackage), "fix/lockorder")
}

func TestClockSeamFixture(t *testing.T) {
	checkFixture(t, NewClockSeam(inPackages("fix/clockseam")),
		"fix/clockseam", "fix/clockseam/clk")
}

func TestErrClassFixture(t *testing.T) {
	checkFixture(t, NewErrClass(inPackages("fix/errclass/api"), inPackages()),
		"fix/errclass/api", "fix/errclass/impl")
}

func TestBodyCloseFixture(t *testing.T) {
	checkFixture(t, NewBodyClose(anyPackage), "fix/bodyclose")
}

func TestSuppressedCount(t *testing.T) {
	pkgs := []*Package{
		loadFixture(t, "fix/iounderlock"),
		loadFixture(t, "fix/iounderlock/wal"),
	}
	res := RunDetail(pkgs, []Rule{NewIOUnderLock(anyPackage)})
	if res.Suppressed != 1 {
		t.Errorf("Suppressed = %d, want 1 (the SubmitWaived directive)", res.Suppressed)
	}
	if len(res.UnusedIgnores) != 0 {
		t.Errorf("used directive flagged as unused: %v", res.UnusedIgnores)
	}
}

func TestUnusedIgnores(t *testing.T) {
	pkg := loadFixture(t, "fix/unusedignore")
	res := RunDetail([]*Package{pkg}, []Rule{NewSeedRand(anyPackage)})
	if len(res.Findings) != 0 {
		t.Errorf("unexpected findings: %v", res.Findings)
	}
	if len(res.UnusedIgnores) != 1 {
		t.Fatalf("UnusedIgnores = %v, want exactly one", res.UnusedIgnores)
	}
	if got := res.UnusedIgnores[0]; got.Rule != "unused-ignore" ||
		!strings.Contains(got.Message, "seedrand") {
		t.Errorf("unhelpful unused-ignore finding: %v", got)
	}
	// A directive naming a rule that did not run in this invocation
	// cannot be judged stale.
	res = RunDetail([]*Package{pkg}, []Rule{NewMapOrder(anyPackage)})
	if len(res.UnusedIgnores) != 0 {
		t.Errorf("directive for a skipped rule flagged as unused: %v", res.UnusedIgnores)
	}
}

func TestMalformedDirective(t *testing.T) {
	pkg := loadFixture(t, "fix/directive")
	findings := Run([]*Package{pkg}, nil)
	if len(findings) != 1 || findings[0].Rule != "directive" {
		t.Fatalf("want exactly one directive finding, got %v", findings)
	}
	if !strings.Contains(findings[0].Message, "malformed") {
		t.Errorf("unhelpful message: %s", findings[0].Message)
	}
}

func TestSuppressionSameLineAndAbove(t *testing.T) {
	pkg := loadFixture(t, "fix/floateq")
	sup, bad := collectSuppressions(pkg)
	if len(bad) != 0 {
		t.Fatalf("fixture has malformed directives: %v", bad)
	}
	var file string
	var line int
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if strings.HasPrefix(c.Text, ignorePrefix) {
					p := pkg.Fset.Position(c.Pos())
					file, line = p.Filename, p.Line
				}
			}
		}
	}
	if file == "" {
		t.Fatal("fixture has no //lint:ignore directive")
	}
	if !sup.suppress(file, line, "floateq") || !sup.suppress(file, line+1, "floateq") {
		t.Error("directive must suppress its own line and the next")
	}
	if sup.suppress(file, line+2, "floateq") {
		t.Error("directive must not leak past the next line")
	}
	if sup.suppress(file, line, "maporder") {
		t.Error("directive must only suppress the named rule")
	}
}

func TestFindModule(t *testing.T) {
	root, modPath, err := FindModule(".")
	if err != nil {
		t.Fatal(err)
	}
	if modPath != "starperf" {
		t.Errorf("module path %q, want starperf", modPath)
	}
	if filepath.Base(filepath.Dir(filepath.Dir(root))) == "" {
		t.Errorf("implausible root %q", root)
	}
}

func TestDefaultRulesScopes(t *testing.T) {
	byName := make(map[string]Rule)
	for _, r := range DefaultRules() {
		if r.Doc() == "" {
			t.Errorf("rule %s has no doc", r.Name())
		}
		byName[r.Name()] = r
	}
	cases := []struct {
		rule, pkg string
		want      bool
	}{
		{"maporder", "starperf/internal/desim", true},
		{"maporder", "starperf/internal/obs", true},
		{"maporder", "starperf/internal/jobs", true},
		{"maporder", "starperf/internal/cache", true},
		{"maporder", "starperf/internal/server", true},
		{"maporder", "starperf/internal/journal", true},
		{"maporder", "starperf/internal/fsx", true},
		{"maporder", "starperf/internal/cluster", true},
		{"maporder", "starperf/client", true},
		{"maporder", "starperf/internal/bounds", true},
		{"maporder", "starperf/internal/model", false},
		{"floateq", "starperf/internal/model", true},
		{"floateq", "starperf/internal/bounds", true},
		{"floateq", "starperf/internal/desim", false},
		{"seedrand", "starperf/internal/traffic", true},
		{"seedrand", "starperf/internal/jobs", true},
		{"seedrand", "starperf/internal/cache", true},
		{"seedrand", "starperf/internal/fsx", true},
		{"seedrand", "starperf/internal/server", false},
		{"seedrand", "starperf/internal/journal", false},
		{"seedrand", "starperf/client", false},
		{"seedrand", "starperf/internal/lint", false},
		{"seedrand", "starperf/cmd/starsim", false},
		{"apierr", "starperf/examples/quickstart", true},
		{"eqdoc", "starperf/internal/stargraph", true},
		{"eqdoc", "starperf/internal/desim", false},
		{"iounderlock", "starperf/internal/jobs", true},
		{"iounderlock", "starperf/internal/server", true},
		{"iounderlock", "starperf/internal/cache", true},
		{"iounderlock", "starperf/internal/journal", false},
		{"iounderlock", "starperf/internal/fsx", false},
		{"lockorder", "starperf/internal/jobs", true},
		{"lockorder", "starperf/internal/journal", true},
		{"lockorder", "starperf/client", true},
		{"clockseam", "starperf/internal/desim", true},
		{"clockseam", "starperf/internal/jobs", true},
		{"clockseam", "starperf/internal/journal", true},
		{"clockseam", "starperf/internal/cluster", true},
		{"clockseam", "starperf/internal/bounds", true},
		{"clockseam", "starperf/internal/server", false},
		{"clockseam", "starperf/client", false},
		{"clockseam", "starperf/internal/cache", false},
		{"errclass", "starperf", true},
		{"errclass", "starperf/client", true},
		{"errclass", "starperf/internal/cluster", true},
		{"errclass", "starperf/internal/bounds", true},
		{"errclass", "starperf/internal/model", false},
		{"bodyclose", "starperf/client", true},
		{"bodyclose", "starperf/internal/server", true},
		{"bodyclose", "starperf/internal/cluster", true},
		{"bodyclose", "starperf/internal/desim", false},
	}
	for _, c := range cases {
		r, ok := byName[c.rule]
		if !ok {
			t.Fatalf("rule %s missing from DefaultRules", c.rule)
		}
		if got := r.Applies(c.pkg); got != c.want {
			t.Errorf("%s.Applies(%s) = %v, want %v", c.rule, c.pkg, got, c.want)
		}
	}
}

func TestFindingString(t *testing.T) {
	f := Finding{Rule: "floateq", File: "a.go", Line: 3, Col: 9, Message: "m"}
	if got := f.String(); got != "a.go:3:9: m [floateq]" {
		t.Errorf("Finding.String() = %q", got)
	}
}

// TestRepoIsClean lints the real module with the production rule set:
// the tree must stay free of findings so CI's starlint gate holds.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("source-imports the standard library; slow")
	}
	root, modPath, err := FindModule(".")
	if err != nil {
		t.Fatal(err)
	}
	loader := NewLoader(root, modPath)
	pkgs, err := loader.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 15 {
		t.Fatalf("only %d packages loaded — loader lost part of the module", len(pkgs))
	}
	for _, f := range Run(pkgs, DefaultRules()) {
		t.Errorf("%s", f)
	}
}
