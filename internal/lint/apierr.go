package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// apiErr flags discarded error results from the public API surface
// (the root starperf package, defined in api.go): a bare call
// statement, a blank-assigned error, or a go/defer of such a call.
// Model evaluation and simulation runs signal saturation and invalid
// configurations through errors; dropping one silently turns a
// refused operating point into a fabricated data point.
type apiErr struct {
	apiPkg  string
	applies func(string) bool
}

// NewAPIErr returns the apierr rule: calls into apiPkg whose error
// results are discarded are reported in every package matched by
// applies.
func NewAPIErr(apiPkg string, applies func(string) bool) Rule {
	return &apiErr{apiPkg: apiPkg, applies: applies}
}

func (r *apiErr) Name() string { return "apierr" }

func (r *apiErr) Doc() string {
	return "no ignored error returns from the public api.go surface"
}

func (r *apiErr) Applies(p string) bool { return r.applies(p) }

func (r *apiErr) Check(pkg *Package, report ReportFunc) {
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.ExprStmt:
				if call, ok := st.X.(*ast.CallExpr); ok {
					r.checkDiscarded(pkg, call, report)
				}
			case *ast.GoStmt:
				r.checkDiscarded(pkg, st.Call, report)
			case *ast.DeferStmt:
				r.checkDiscarded(pkg, st.Call, report)
			case *ast.AssignStmt:
				r.checkBlank(pkg, st, report)
			}
			return true
		})
	}
}

// checkDiscarded reports call if it is an API call returning an error
// that the statement form throws away entirely.
func (r *apiErr) checkDiscarded(pkg *Package, call *ast.CallExpr, report ReportFunc) {
	name, sig := r.apiCallee(pkg, call)
	if sig == nil {
		return
	}
	if errorResultIndices(sig) == nil {
		return
	}
	report(call.Pos(), fmt.Sprintf(
		"error result of %s.%s is discarded: saturation and invalid configs "+
			"are reported through it", r.apiPkg, name))
}

// checkBlank reports assignments that single out the error result of
// an API call into the blank identifier, e.g. v, _ := api.Value().
func (r *apiErr) checkBlank(pkg *Package, st *ast.AssignStmt, report ReportFunc) {
	if len(st.Rhs) != 1 {
		return
	}
	call, ok := st.Rhs[0].(*ast.CallExpr)
	if !ok {
		return
	}
	name, sig := r.apiCallee(pkg, call)
	if sig == nil {
		return
	}
	for _, i := range errorResultIndices(sig) {
		if i >= len(st.Lhs) {
			continue
		}
		if id, ok := st.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
			report(st.Lhs[i].Pos(), fmt.Sprintf(
				"error result of %s.%s is assigned to _: handle it or propagate it",
				r.apiPkg, name))
		}
	}
}

// apiCallee resolves call's callee; it returns its name and signature
// when the callee is declared in the API package, and a nil signature
// otherwise.
func (r *apiErr) apiCallee(pkg *Package, call *ast.CallExpr) (string, *types.Signature) {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return "", nil
	}
	obj := pkg.Info.Uses[id]
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != r.apiPkg {
		return "", nil
	}
	sig, ok := obj.Type().Underlying().(*types.Signature)
	if !ok {
		return "", nil // type conversion or non-func object
	}
	return obj.Name(), sig
}

// errorResultIndices returns the indices of sig's results whose type
// is error (nil when there are none).
func errorResultIndices(sig *types.Signature) []int {
	var out []int
	errType := types.Universe.Lookup("error").Type()
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if types.Identical(res.At(i).Type(), errType) {
			out = append(out, i)
		}
	}
	return out
}
