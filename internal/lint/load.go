package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one analysed package: its non-test files carry full type
// information; its _test.go files are parsed (for the syntactic rules
// and suppression directives) but not type-checked, so test-only
// idioms never have to satisfy the type-checker twice.
type Package struct {
	// Path is the import path.
	Path string
	// Dir is the directory holding the sources.
	Dir string
	// Fset positions every file in the package.
	Fset *token.FileSet
	// Files are the type-checked non-test files.
	Files []*ast.File
	// TestFiles are the parsed-only _test.go files.
	TestFiles []*ast.File
	// Types and Info hold the type-checking results for Files; they
	// are nil only if type-checking was skipped.
	Types *types.Package
	// Info records the type and object resolution for Files.
	Info *types.Info
}

// AllFiles returns Files followed by TestFiles.
func (p *Package) AllFiles() []*ast.File {
	out := make([]*ast.File, 0, len(p.Files)+len(p.TestFiles))
	out = append(out, p.Files...)
	return append(out, p.TestFiles...)
}

// FindModule walks up from dir to the enclosing go.mod and returns
// the module root directory and module path.
func FindModule(dir string) (root, modPath string, err error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module directive", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		d = parent
	}
}

// Loader parses and type-checks the packages of one module using only
// the standard library: module-local imports are resolved by
// recursive loading, standard-library imports through the source
// importer (go/importer with compiler "source"), keeping the repo
// dependency-free.
type Loader struct {
	// Fset positions all loaded files.
	Fset *token.FileSet

	root    string
	modPath string
	std     types.ImporterFrom
	pkgs    map[string]*Package
	loading map[string]bool
}

// NewLoader returns a Loader for the module rooted at root with
// module path modPath.
func NewLoader(root, modPath string) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Fset:    fset,
		root:    root,
		modPath: modPath,
		std:     importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, "", 0)
}

// ImportFrom implements types.ImporterFrom: module-local paths load
// recursively, everything else is delegated to the source importer.
func (l *Loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == l.modPath || strings.HasPrefix(path, l.modPath+"/") {
		p, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.ImportFrom(path, dir, mode)
}

// Load parses and type-checks the module-local package with the given
// import path (the module path itself or a path below it), caching
// the result.
func (l *Loader) Load(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.modPath), "/")
	dir := filepath.Join(l.root, filepath.FromSlash(rel))
	pkg, err := l.loadDir(path, dir)
	if err != nil {
		return nil, err
	}
	l.pkgs[path] = pkg
	return pkg, nil
}

func (l *Loader) loadDir(path, dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %s: %w", path, err)
	}
	pkg := &Package{Path: path, Dir: dir, Fset: l.Fset}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		if strings.HasSuffix(name, "_test.go") {
			pkg.TestFiles = append(pkg.TestFiles, f)
		} else {
			pkg.Files = append(pkg.Files, f)
		}
	}
	if len(pkg.Files) == 0 {
		return nil, fmt.Errorf("lint: %s: no non-test Go files in %s", path, dir)
	}
	pkg.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.Fset, pkg.Files, pkg.Info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	pkg.Types = tpkg
	return pkg, nil
}

// LoadAll loads every package of the module: each directory under the
// module root that holds at least one non-test .go file, skipping
// testdata, hidden directories and the results tree. Packages are
// returned sorted by import path.
func (l *Loader) LoadAll() ([]*Package, error) {
	var paths []string
	err := filepath.WalkDir(l.root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if p != l.root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor" || name == "results") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), ".go") || strings.HasSuffix(d.Name(), "_test.go") ||
			strings.HasPrefix(d.Name(), ".") {
			return nil
		}
		rel, err := filepath.Rel(l.root, filepath.Dir(p))
		if err != nil {
			return err
		}
		ip := l.modPath
		if rel != "." {
			ip = l.modPath + "/" + filepath.ToSlash(rel)
		}
		paths = append(paths, ip)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	paths = dedup(paths)
	pkgs := make([]*Package, 0, len(paths))
	for _, p := range paths {
		pkg, err := l.Load(p)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

func dedup(sorted []string) []string {
	out := sorted[:0]
	for i, s := range sorted {
		if i == 0 || s != sorted[i-1] {
			out = append(out, s)
		}
	}
	return out
}
