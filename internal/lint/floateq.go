package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// floatEq flags == and != between floating-point operands. The
// model's fixed-point iteration (paper eqs. 6–17) is evaluated in
// floating point, where the result of a comparison can flip with the
// summation order, the optimisation level or the FPU's intermediate
// precision — an exact comparison is therefore a latent
// nondeterminism bug. Comparisons are allowed inside designated
// tolerance helpers (floats.EqualWithin and friends) and in the
// x != x NaN test.
type floatEq struct {
	applies func(string) bool
	allowed map[string]bool
}

// NewFloatEq returns the floateq rule restricted to packages matched
// by applies; comparisons inside functions named in allowFuncs are
// exempt (the tolerance helpers themselves).
func NewFloatEq(applies func(string) bool, allowFuncs ...string) Rule {
	allowed := make(map[string]bool, len(allowFuncs))
	for _, f := range allowFuncs {
		allowed[f] = true
	}
	return &floatEq{applies: applies, allowed: allowed}
}

func (r *floatEq) Name() string { return "floateq" }

func (r *floatEq) Doc() string {
	return "no exact float ==/!= outside allowlisted tolerance helpers (numerical safety)"
}

func (r *floatEq) Applies(p string) bool { return r.applies(p) }

func (r *floatEq) Check(pkg *Package, report ReportFunc) {
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if r.allowed[fd.Name.Name] {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				be, ok := n.(*ast.BinaryExpr)
				if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
					return true
				}
				if !isFloat(pkg.Info.TypeOf(be.X)) && !isFloat(pkg.Info.TypeOf(be.Y)) {
					return true
				}
				if be.Op == token.NEQ && sameIdent(pkg, be.X, be.Y) {
					return true // x != x: the NaN test
				}
				report(be.OpPos, fmt.Sprintf(
					"exact float comparison %s %s %s: rounding makes this unstable; "+
						"use floats.EqualWithin or an inequality",
					exprString(be.X), be.Op, exprString(be.Y)))
				return true
			})
		}
	}
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// sameIdent reports whether a and b are the same identifier resolving
// to the same object.
func sameIdent(pkg *Package, a, b ast.Expr) bool {
	ia, ok1 := a.(*ast.Ident)
	ib, ok2 := b.(*ast.Ident)
	if !ok1 || !ok2 {
		return false
	}
	oa := pkg.Info.ObjectOf(ia)
	return oa != nil && oa == pkg.Info.ObjectOf(ib)
}
