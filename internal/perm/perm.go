// Package perm implements the permutation algebra underlying the star
// interconnection network: permutation values on the symbol set
// {1, 2, …, n}, ranking and unranking in the factorial number system,
// composition, inversion, cycle-structure analysis and parity.
//
// A Permutation is stored one-based: p[i] is the symbol at position
// i+1. The identity on n symbols is 1 2 3 … n. Star-graph generators
// are exposed as SwapFirst (exchange the symbols at positions 1 and i).
package perm

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// Permutation is a permutation of the symbols 1..n, stored as the
// sequence of symbols by position: p[i] holds the symbol at position
// i+1. The zero-length permutation is valid and represents the empty
// permutation.
type Permutation []uint8

// MaxN is the largest supported number of symbols. 20! overflows
// uint64 ranks, so ranks are only defined for n ≤ 20; topology code
// additionally keeps node counts within int range.
const MaxN = 20

// Identity returns the identity permutation 1 2 … n.
func Identity(n int) Permutation {
	if n < 0 || n > MaxN {
		panic(fmt.Sprintf("perm: Identity(%d) out of range [0,%d]", n, MaxN))
	}
	p := make(Permutation, n)
	for i := range p {
		p[i] = uint8(i + 1)
	}
	return p
}

// New validates and copies symbols into a Permutation. It returns an
// error unless symbols is a permutation of 1..len(symbols).
func New(symbols []int) (Permutation, error) {
	n := len(symbols)
	if n > MaxN {
		return nil, fmt.Errorf("perm: length %d exceeds MaxN=%d", n, MaxN)
	}
	seen := make([]bool, n+1)
	p := make(Permutation, n)
	for i, s := range symbols {
		if s < 1 || s > n {
			return nil, fmt.Errorf("perm: symbol %d out of range 1..%d", s, n)
		}
		if seen[s] {
			return nil, fmt.Errorf("perm: duplicate symbol %d", s)
		}
		seen[s] = true
		p[i] = uint8(s)
	}
	return p, nil
}

// MustNew is New but panics on invalid input; for tests and literals.
func MustNew(symbols []int) Permutation {
	p, err := New(symbols)
	if err != nil {
		panic(err)
	}
	return p
}

// N returns the number of symbols.
func (p Permutation) N() int { return len(p) }

// Clone returns an independent copy of p.
func (p Permutation) Clone() Permutation {
	q := make(Permutation, len(p))
	copy(q, p)
	return q
}

// Equal reports whether p and q are the same permutation.
func (p Permutation) Equal(q Permutation) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// IsIdentity reports whether p is the identity permutation.
func (p Permutation) IsIdentity() bool {
	for i, s := range p {
		if int(s) != i+1 {
			return false
		}
	}
	return true
}

// String renders the permutation as its symbol sequence, e.g. "21345".
// Symbols ≥ 10 are rendered space-separated to stay unambiguous.
func (p Permutation) String() string {
	if len(p) == 0 {
		return "ε"
	}
	if len(p) < 10 {
		var b strings.Builder
		for _, s := range p {
			b.WriteByte('0' + s)
		}
		return b.String()
	}
	parts := make([]string, len(p))
	for i, s := range p {
		parts[i] = strconv.Itoa(int(s))
	}
	return strings.Join(parts, " ")
}

// Parse inverts String for the compact (n < 10) form, e.g. "21345".
func Parse(s string) (Permutation, error) {
	if s == "ε" {
		return Permutation{}, nil
	}
	syms := make([]int, 0, len(s))
	for _, r := range s {
		if r == ' ' {
			continue
		}
		if r < '1' || r > '9' {
			return nil, fmt.Errorf("perm: bad symbol %q in %q", r, s)
		}
		syms = append(syms, int(r-'0'))
	}
	return New(syms)
}

// SwapFirst returns a copy of p with the symbols at positions 1 and i
// exchanged — the star-graph generator g_i. It panics unless
// 2 ≤ i ≤ n.
func (p Permutation) SwapFirst(i int) Permutation {
	if i < 2 || i > len(p) {
		panic(fmt.Sprintf("perm: SwapFirst(%d) out of range 2..%d", i, len(p)))
	}
	q := p.Clone()
	q[0], q[i-1] = q[i-1], q[0]
	return q
}

// SwapFirstInPlace applies the star-graph generator g_i to p itself.
func (p Permutation) SwapFirstInPlace(i int) {
	if i < 2 || i > len(p) {
		panic(fmt.Sprintf("perm: SwapFirstInPlace(%d) out of range 2..%d", i, len(p)))
	}
	p[0], p[i-1] = p[i-1], p[0]
}

// PositionOf returns the position (1-based) holding symbol s.
func (p Permutation) PositionOf(s uint8) int {
	for i, v := range p {
		if v == s {
			return i + 1
		}
	}
	panic(fmt.Sprintf("perm: symbol %d not present in %v", s, p))
}

// Inverse returns q with q[p[i]-1] = i+1, i.e. the inverse mapping
// from symbol to position.
func (p Permutation) Inverse() Permutation {
	q := make(Permutation, len(p))
	for i, s := range p {
		q[s-1] = uint8(i + 1)
	}
	return q
}

// Compose returns the permutation r = p∘q defined by r[i] = p[q[i]-1]:
// apply q first, then p, reading permutations as maps from positions
// to symbols. Panics if lengths differ.
func (p Permutation) Compose(q Permutation) Permutation {
	if len(p) != len(q) {
		panic("perm: Compose length mismatch")
	}
	r := make(Permutation, len(p))
	for i := range r {
		r[i] = p[q[i]-1]
	}
	return r
}

// RelabelTo returns the permutation that maps src to dst in the star
// graph's vertex-transitive sense: routing from src to dst is
// isomorphic to routing from RelabelTo(src,dst) to the identity.
// Concretely it returns dst⁻¹ ∘ src.
func RelabelTo(src, dst Permutation) Permutation {
	return dst.Inverse().Compose(src)
}

// Parity returns 0 for even permutations and 1 for odd ones.
// Each star-graph generator is a transposition, so Parity is the
// bipartition colour of the node.
func (p Permutation) Parity() int {
	// Count transpositions via cycle structure: parity = (m - c) mod 2
	// summed over non-trivial cycles, i.e. n minus the number of
	// cycles (including fixed points), mod 2.
	var visited [MaxN]bool
	cycles := 0
	for i := 0; i < len(p); i++ {
		if visited[i] {
			continue
		}
		cycles++
		for j := i; !visited[j]; j = int(p[j]) - 1 {
			visited[j] = true
		}
	}
	return (len(p) - cycles) % 2
}

// CycleInfo summarises the cycle structure of a permutation relative
// to the identity, in the form used by star-graph distance and
// routing computations.
type CycleInfo struct {
	// Displaced is the number of positions i with p[i] != i (symbols
	// out of place), counting position 1.
	Displaced int
	// Cycles is the number of non-trivial cycles (length ≥ 2).
	Cycles int
	// FirstHome reports whether position 1 holds symbol 1.
	FirstHome bool
	// FirstCycleLen is the length of the cycle containing position 1,
	// or 0 when FirstHome.
	FirstCycleLen int
}

// Cycles computes the permutation's CycleInfo.
func (p Permutation) Cycles() CycleInfo {
	var info CycleInfo
	info.FirstHome = len(p) == 0 || p[0] == 1
	var visited [MaxN]bool
	for i := 0; i < len(p); i++ {
		if visited[i] || int(p[i]) == i+1 {
			visited[i] = true
			continue
		}
		// walk the cycle through i
		length := 0
		first := false
		for j := i; !visited[j]; j = int(p[j]) - 1 {
			visited[j] = true
			length++
			if j == 0 {
				first = true
			}
		}
		info.Cycles++
		info.Displaced += length
		if first {
			info.FirstCycleLen = length
		}
	}
	return info
}

// CycleType returns the multiset of non-trivial cycle lengths sorted
// descending, with the cycle containing position 1 (if any) reported
// separately. It is the canonical state used by the model's
// cycle-type dynamic program.
type CycleType struct {
	// FirstLen is the length of the cycle through position 1, or 0 if
	// position 1 is a fixed point.
	FirstLen int
	// Others holds the lengths of the remaining non-trivial cycles in
	// descending order.
	Others []int
}

// Key returns a compact canonical string for use as a map key.
func (t CycleType) Key() string {
	var b strings.Builder
	b.WriteString(strconv.Itoa(t.FirstLen))
	for _, l := range t.Others {
		b.WriteByte(':')
		b.WriteString(strconv.Itoa(l))
	}
	return b.String()
}

// Type computes the CycleType of p.
func (p Permutation) Type() CycleType {
	var t CycleType
	var visited [MaxN]bool
	for i := 0; i < len(p); i++ {
		if visited[i] || int(p[i]) == i+1 {
			visited[i] = true
			continue
		}
		length := 0
		first := false
		for j := i; !visited[j]; j = int(p[j]) - 1 {
			visited[j] = true
			length++
			if j == 0 {
				first = true
			}
		}
		if first {
			t.FirstLen = length
		} else {
			t.Others = append(t.Others, length)
		}
	}
	// insertion sort descending; cycle counts are tiny
	for i := 1; i < len(t.Others); i++ {
		for j := i; j > 0 && t.Others[j] > t.Others[j-1]; j-- {
			t.Others[j], t.Others[j-1] = t.Others[j-1], t.Others[j]
		}
	}
	return t
}

// ErrRankRange reports a rank outside [0, n!).
var ErrRankRange = errors.New("perm: rank out of range")

// Factorial returns n! as uint64; panics for n > 20.
func Factorial(n int) uint64 {
	if n < 0 || n > MaxN {
		panic(fmt.Sprintf("perm: Factorial(%d) out of range", n))
	}
	f := uint64(1)
	for i := 2; i <= n; i++ {
		f *= uint64(i)
	}
	return f
}

// Rank returns the lexicographic rank of p in [0, n!), using the
// factorial number system. The identity has rank 0.
func (p Permutation) Rank() uint64 {
	n := len(p)
	var rank uint64
	fact := Factorial(n)
	var used [MaxN + 1]bool
	for i := 0; i < n; i++ {
		fact /= uint64(n - i)
		smaller := 0
		for s := 1; s < int(p[i]); s++ {
			if !used[s] {
				smaller++
			}
		}
		rank += uint64(smaller) * fact
		used[p[i]] = true
	}
	return rank
}

// Unrank returns the permutation of n symbols with lexicographic rank
// r; it is the inverse of Rank.
func Unrank(n int, r uint64) (Permutation, error) {
	if n < 0 || n > MaxN {
		return nil, fmt.Errorf("perm: Unrank n=%d out of range", n)
	}
	if r >= Factorial(n) {
		return nil, ErrRankRange
	}
	p := make(Permutation, n)
	var used [MaxN + 1]bool
	fact := Factorial(n)
	for i := 0; i < n; i++ {
		fact /= uint64(n - i)
		k := int(r / fact)
		r %= fact
		for s := 1; s <= n; s++ {
			if used[s] {
				continue
			}
			if k == 0 {
				p[i] = uint8(s)
				used[s] = true
				break
			}
			k--
		}
	}
	return p, nil
}

// MustUnrank is Unrank but panics on error.
func MustUnrank(n int, r uint64) Permutation {
	p, err := Unrank(n, r)
	if err != nil {
		panic(err)
	}
	return p
}

// ForEach enumerates all n! permutations of n symbols in lexicographic
// order, invoking fn with a reused buffer (clone it to retain). It
// stops early if fn returns false.
func ForEach(n int, fn func(Permutation) bool) {
	p := Identity(n)
	for {
		if !fn(p) {
			return
		}
		if !nextLex(p) {
			return
		}
	}
}

// nextLex advances p to the next lexicographic permutation in place,
// returning false when p was the last one.
func nextLex(p Permutation) bool {
	n := len(p)
	i := n - 2
	for i >= 0 && p[i] >= p[i+1] {
		i--
	}
	if i < 0 {
		return false
	}
	j := n - 1
	for p[j] <= p[i] {
		j--
	}
	p[i], p[j] = p[j], p[i]
	for l, r := i+1, n-1; l < r; l, r = l+1, r-1 {
		p[l], p[r] = p[r], p[l]
	}
	return true
}
