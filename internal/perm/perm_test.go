package perm

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIdentity(t *testing.T) {
	for n := 0; n <= 8; n++ {
		p := Identity(n)
		if p.N() != n {
			t.Fatalf("Identity(%d).N() = %d", n, p.N())
		}
		if !p.IsIdentity() {
			t.Fatalf("Identity(%d) not identity: %v", n, p)
		}
		if p.Rank() != 0 {
			t.Fatalf("Identity(%d).Rank() = %d, want 0", n, p.Rank())
		}
	}
}

func TestNewValidation(t *testing.T) {
	cases := []struct {
		in []int
		ok bool
	}{
		{[]int{}, true},
		{[]int{1}, true},
		{[]int{2, 1, 3}, true},
		{[]int{1, 1}, false},
		{[]int{0, 1}, false},
		{[]int{3, 1}, false},
		{[]int{1, 2, 4}, false},
	}
	for _, c := range cases {
		_, err := New(c.in)
		if (err == nil) != c.ok {
			t.Errorf("New(%v): err=%v, want ok=%v", c.in, err, c.ok)
		}
	}
}

func TestSwapFirst(t *testing.T) {
	p := MustNew([]int{1, 2, 3, 4})
	q := p.SwapFirst(3)
	if got, want := q.String(), "3214"; got != want {
		t.Fatalf("SwapFirst(3) = %s, want %s", got, want)
	}
	if p.String() != "1234" {
		t.Fatalf("SwapFirst mutated receiver: %s", p)
	}
	// involution: applying the same generator twice restores p
	if !q.SwapFirst(3).Equal(p) {
		t.Fatal("SwapFirst(3) twice is not identity")
	}
}

func TestSwapFirstPanics(t *testing.T) {
	p := Identity(4)
	for _, i := range []int{0, 1, 5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SwapFirst(%d) did not panic", i)
				}
			}()
			p.SwapFirst(i)
		}()
	}
}

func TestRankUnrankRoundTripExhaustive(t *testing.T) {
	for n := 0; n <= 7; n++ {
		want := uint64(0)
		ForEach(n, func(p Permutation) bool {
			r := p.Rank()
			if r != want {
				t.Fatalf("n=%d perm %v rank=%d, want %d (lex order)", n, p, r, want)
			}
			q := MustUnrank(n, r)
			if !q.Equal(p) {
				t.Fatalf("Unrank(Rank(%v)) = %v", p, q)
			}
			want++
			return true
		})
		if want != Factorial(n) {
			t.Fatalf("n=%d enumerated %d perms, want %d", n, want, Factorial(n))
		}
	}
}

func TestUnrankRange(t *testing.T) {
	if _, err := Unrank(3, 6); err != ErrRankRange {
		t.Fatalf("Unrank(3,6) err = %v, want ErrRankRange", err)
	}
	if _, err := Unrank(3, 5); err != nil {
		t.Fatalf("Unrank(3,5) err = %v", err)
	}
}

func TestRankUnrankQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(12)
		r := uint64(rng.Int63n(int64(Factorial(n))))
		p, err := Unrank(n, r)
		return err == nil && p.Rank() == r
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestInverseCompose(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(10)
		p := MustUnrank(n, uint64(rng.Int63n(int64(Factorial(n)))))
		q := MustUnrank(n, uint64(rng.Int63n(int64(Factorial(n)))))
		// p ∘ p⁻¹ = id, (p∘q)⁻¹ = q⁻¹∘p⁻¹
		if !p.Compose(p.Inverse()).IsIdentity() {
			return false
		}
		if !p.Inverse().Compose(p).IsIdentity() {
			return false
		}
		lhs := p.Compose(q).Inverse()
		rhs := q.Inverse().Compose(p.Inverse())
		return lhs.Equal(rhs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRelabelTo(t *testing.T) {
	// RelabelTo(src, dst) must map dst to identity under the same group
	// action: dst⁻¹∘dst = id, and applying generators commutes with
	// relabelling (left-invariance of the Cayley graph).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		src := MustUnrank(n, uint64(rng.Int63n(int64(Factorial(n)))))
		dst := MustUnrank(n, uint64(rng.Int63n(int64(Factorial(n)))))
		rel := RelabelTo(src, dst)
		if !RelabelTo(dst, dst).IsIdentity() {
			return false
		}
		// moving src by generator g_i relabels to rel.SwapFirst(i):
		// the group action is right-multiplication by the generator.
		i := 2 + rng.Intn(n-1)
		lhs := RelabelTo(src.SwapFirst(i), dst)
		rhs := rel.SwapFirst(i)
		return lhs.Equal(rhs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestParityGeneratorFlips(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		p := MustUnrank(n, uint64(rng.Int63n(int64(Factorial(n)))))
		i := 2 + rng.Intn(n-1)
		return p.Parity() != p.SwapFirst(i).Parity()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
	if Identity(5).Parity() != 0 {
		t.Fatal("identity parity must be 0")
	}
}

func TestCyclesKnownCases(t *testing.T) {
	cases := []struct {
		p         string
		displaced int
		cycles    int
		firstHome bool
		firstLen  int
	}{
		{"1234", 0, 0, true, 0},
		{"2134", 2, 1, false, 2},
		{"1324", 2, 1, true, 0},
		{"2143", 4, 2, false, 2},
		{"2341", 4, 1, false, 4},
		{"13254", 4, 2, true, 0},
		{"21435", 4, 2, false, 2},
	}
	for _, c := range cases {
		p, err := Parse(c.p)
		if err != nil {
			t.Fatal(err)
		}
		info := p.Cycles()
		if info.Displaced != c.displaced || info.Cycles != c.cycles ||
			info.FirstHome != c.firstHome || info.FirstCycleLen != c.firstLen {
			t.Errorf("%s: got %+v, want %+v", c.p, info, c)
		}
	}
}

func TestCyclesConsistentWithType(t *testing.T) {
	ForEach(6, func(p Permutation) bool {
		info := p.Cycles()
		typ := p.Type()
		if (typ.FirstLen > 0) == info.FirstHome {
			t.Fatalf("%v: FirstLen %d vs FirstHome %v", p, typ.FirstLen, info.FirstHome)
		}
		if typ.FirstLen != info.FirstCycleLen {
			t.Fatalf("%v: FirstLen mismatch", p)
		}
		sum, cnt := typ.FirstLen, 0
		if typ.FirstLen > 0 {
			cnt = 1
		}
		for _, l := range typ.Others {
			sum += l
			cnt++
			if l < 2 {
				t.Fatalf("%v: trivial cycle in Others", p)
			}
		}
		if sum != info.Displaced || cnt != info.Cycles {
			t.Fatalf("%v: type %v inconsistent with info %+v", p, typ, info)
		}
		return true
	})
}

func TestTypeKeyCanonical(t *testing.T) {
	a := CycleType{FirstLen: 2, Others: []int{3, 2}}
	b := CycleType{FirstLen: 2, Others: []int{3, 2}}
	if a.Key() != b.Key() {
		t.Fatal("equal types produced different keys")
	}
	c := CycleType{FirstLen: 0, Others: []int{2, 3, 2}}
	if a.Key() == c.Key() {
		t.Fatal("distinct types produced equal keys")
	}
}

func TestTypeOthersSortedDescending(t *testing.T) {
	ForEach(7, func(p Permutation) bool {
		typ := p.Type()
		for i := 1; i < len(typ.Others); i++ {
			if typ.Others[i] > typ.Others[i-1] {
				t.Fatalf("%v: Others not descending: %v", p, typ.Others)
			}
		}
		return true
	})
}

func TestStringParseRoundTrip(t *testing.T) {
	ForEach(5, func(p Permutation) bool {
		q, err := Parse(p.String())
		if err != nil || !q.Equal(p) {
			t.Fatalf("Parse(String(%v)) = %v, %v", p, q, err)
		}
		return true
	})
}

func TestPositionOf(t *testing.T) {
	p := MustNew([]int{3, 1, 4, 2})
	for s := uint8(1); s <= 4; s++ {
		pos := p.PositionOf(s)
		if p[pos-1] != s {
			t.Errorf("PositionOf(%d) = %d but p[%d]=%d", s, pos, pos-1, p[pos-1])
		}
	}
}

func TestFactorial(t *testing.T) {
	want := []uint64{1, 1, 2, 6, 24, 120, 720, 5040}
	for n, w := range want {
		if got := Factorial(n); got != w {
			t.Errorf("Factorial(%d) = %d, want %d", n, got, w)
		}
	}
	if Factorial(20) != 2432902008176640000 {
		t.Error("Factorial(20) wrong")
	}
}

func TestForEachEarlyStop(t *testing.T) {
	count := 0
	ForEach(5, func(Permutation) bool {
		count++
		return count < 10
	})
	if count != 10 {
		t.Fatalf("early stop after %d, want 10", count)
	}
}

func BenchmarkRank(b *testing.B) {
	p := MustUnrank(12, 123456789)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = p.Rank()
	}
}

func BenchmarkUnrank(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, _ = Unrank(12, uint64(i)%Factorial(12))
	}
}

func BenchmarkCycles(b *testing.B) {
	p := MustUnrank(12, 400000001) // < 12! = 479001600
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = p.Cycles()
	}
}
