package perm

import "testing"

// FuzzParse checks that Parse never panics and that accepted inputs
// round-trip through String.
func FuzzParse(f *testing.F) {
	f.Add("12345")
	f.Add("1")
	f.Add("21")
	f.Add("")
	f.Add("99")
	f.Add("ε")
	f.Fuzz(func(t *testing.T, s string) {
		p, err := Parse(s)
		if err != nil {
			return
		}
		q, err := Parse(p.String())
		if err != nil || !q.Equal(p) {
			t.Fatalf("round trip failed for %q -> %v", s, p)
		}
	})
}

// FuzzRankUnrank checks the rank/unrank bijection for arbitrary
// inputs.
func FuzzRankUnrank(f *testing.F) {
	f.Add(uint8(5), uint64(100))
	f.Add(uint8(1), uint64(0))
	f.Add(uint8(12), uint64(479001599))
	f.Fuzz(func(t *testing.T, n uint8, r uint64) {
		nn := int(n % 13)
		p, err := Unrank(nn, r)
		if err != nil {
			if r < Factorial(nn) {
				t.Fatalf("Unrank(%d,%d) rejected an in-range rank", nn, r)
			}
			return
		}
		if got := p.Rank(); got != r {
			t.Fatalf("Rank(Unrank(%d,%d)) = %d", nn, r, got)
		}
	})
}
