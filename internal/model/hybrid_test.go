package model

import (
	"math"
	"testing"

	"starperf/internal/desim"
	"starperf/internal/routing"
	"starperf/internal/stargraph"
)

func TestSingleOutputBaseline(t *testing.T) {
	adaptive, err := EvaluateStar(5, 6, 32, 0.01, routing.EnhancedNbc, Window)
	if err != nil {
		t.Fatal(err)
	}
	sp := mustStarPaths(t, 5)
	det, err := Evaluate(Config{
		Paths: sp, Top: stargraph.MustNew(5), Kind: routing.EnhancedNbc,
		V: 6, MsgLen: 32, Rate: 0.01, SingleOutput: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if det.MeanBlocking <= adaptive.MeanBlocking {
		t.Fatalf("deterministic blocking %v not above adaptive %v",
			det.MeanBlocking, adaptive.MeanBlocking)
	}
	if det.Latency <= adaptive.Latency {
		t.Fatalf("deterministic latency %v not above adaptive %v",
			det.Latency, adaptive.Latency)
	}
}

func TestFixedOccupancyValidation(t *testing.T) {
	sp := mustStarPaths(t, 5)
	g := stargraph.MustNew(5)
	base := Config{Paths: sp, Top: g, Kind: routing.EnhancedNbc, V: 6, MsgLen: 32, Rate: 0.005}
	bad := base
	bad.FixedOccupancy = []float64{0.5, 0.5} // wrong length
	if _, err := Evaluate(bad); err == nil {
		t.Fatal("wrong-length occupancy accepted")
	}
	bad = base
	bad.FixedOccupancy = []float64{0.9, 0.2, 0, 0, 0, 0, 0} // sums to 1.1
	if _, err := Evaluate(bad); err == nil {
		t.Fatal("non-normalised occupancy accepted")
	}
	bad = base
	bad.FixedOccupancy = []float64{1.2, -0.2, 0, 0, 0, 0, 0}
	if _, err := Evaluate(bad); err == nil {
		t.Fatal("negative occupancy accepted")
	}
}

// TestHybridOccupancy feeds the simulator's measured VC-occupancy
// distribution into the model and checks that the hybrid prediction
// is a valid operating point; this is the error-decomposition
// diagnostic described in the Config docs.
func TestHybridOccupancy(t *testing.T) {
	const rate = 0.01
	g := stargraph.MustNew(5)
	res, err := desim.Run(desim.Config{
		Top: g, Spec: routing.MustNew(routing.EnhancedNbc, g, 6),
		Rate: rate, MsgLen: 32, Seed: 21,
		WarmupCycles: 8000, MeasureCycles: 30000,
	})
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	occ := make([]float64, len(res.VCBusyHist))
	for i, c := range res.VCBusyHist {
		occ[i] = float64(c)
		total += float64(c)
	}
	for i := range occ {
		occ[i] /= total
	}
	sp := mustStarPaths(t, 5)
	pure, err := Evaluate(Config{
		Paths: sp, Top: g, Kind: routing.EnhancedNbc, V: 6, MsgLen: 32, Rate: rate,
	})
	if err != nil {
		t.Fatal(err)
	}
	hybrid, err := Evaluate(Config{
		Paths: sp, Top: g, Kind: routing.EnhancedNbc, V: 6, MsgLen: 32, Rate: rate,
		FixedOccupancy: occ,
	})
	if err != nil {
		t.Fatal(err)
	}
	simLat := res.Latency.Mean()
	for _, r := range []*Result{pure, hybrid} {
		if r.Latency < 33 || r.Latency > 3*simLat {
			t.Fatalf("implausible latency %v (sim %v)", r.Latency, simLat)
		}
	}
	// the hybrid multiplexing factor must equal the measured one
	if math.Abs(hybrid.Multiplexing-res.Multiplexing) > 1e-9 {
		t.Fatalf("hybrid multiplexing %v, measured %v", hybrid.Multiplexing, res.Multiplexing)
	}
}

func TestMsgLenVarRaisesWaits(t *testing.T) {
	sp := mustStarPaths(t, 5)
	g := stargraph.MustNew(5)
	base := Config{Paths: sp, Top: g, Kind: routing.EnhancedNbc, V: 6, MsgLen: 32, Rate: 0.012}
	r0, err := Evaluate(base)
	if err != nil {
		t.Fatal(err)
	}
	varied := base
	varied.MsgLenVar = 1728 // the 8/104 @ 25% bimodal mix
	r1, err := Evaluate(varied)
	if err != nil {
		t.Fatal(err)
	}
	if r1.ChannelWait <= r0.ChannelWait || r1.Latency <= r0.Latency {
		t.Fatalf("length variance did not raise waits: w %v vs %v, latency %v vs %v",
			r1.ChannelWait, r0.ChannelWait, r1.Latency, r0.Latency)
	}
	bad := base
	bad.MsgLenVar = -1
	if _, err := Evaluate(bad); err == nil {
		t.Fatal("negative variance accepted")
	}
}

func TestCutThroughModel(t *testing.T) {
	sp := mustStarPaths(t, 5)
	g := stargraph.MustNew(5)
	base := Config{Paths: sp, Top: g, Kind: routing.EnhancedNbc, V: 6, MsgLen: 32}
	// at a rate where the wormhole model has saturated, the VCT model
	// must still converge (channels are held for only M cycles)
	whSat := mustSat(t, base, 1e-4, 0.1)
	vct := base
	vct.Switching = CutThrough
	vct.Rate = whSat * 1.3
	r, err := Evaluate(vct)
	if err != nil {
		t.Fatalf("VCT model saturated at 1.3x wormhole saturation: %v", err)
	}
	if r.Latency <= 32+g.AvgDistance() {
		t.Fatalf("VCT latency %v below zero load", r.Latency)
	}
	vctSat := mustSat(t, vct, 1e-4, 0.2)
	if vctSat <= whSat*1.2 {
		t.Fatalf("VCT saturation %v not well above wormhole's %v", vctSat, whSat)
	}
	// and below the physical ceiling
	if vctSat >= 4/(g.AvgDistance()*32) {
		t.Fatalf("VCT saturation %v above channel capacity", vctSat)
	}
	if Wormhole.String() != "wormhole" || CutThrough.String() != "cut-through" ||
		SwitchingMode(7).String() != "unknown" {
		t.Fatal("SwitchingMode strings broken")
	}
}
