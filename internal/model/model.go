// Package model implements the paper's analytical performance model
// for fully adaptive wormhole routing in star (and, as an extension,
// hypercube) interconnection networks. It predicts the mean message
// latency
//
//	Latency = (S̄ + W̄s) · V̄                        (eq. 1)
//
// where S̄ is the mean network latency, W̄s the mean source-queue
// wait and V̄ the average virtual-channel multiplexing degree. The
// network latency of a destination at distance h is
//
//	S_i = M + h + Σ_k P_block(i,k) · w̄             (eqs. 4–6)
//
// with blocking probabilities computed per hop over the adaptivity
// structure of the minimal paths (eqs. 7–11, via PathStructure and
// blockingState), the channel wait w̄ from an M/G/1 queue with the
// paper's variance approximation (eqs. 12–15), the source wait from
// an M/G/1 queue at rate λg/V (eq. 16), the VC occupancy from a
// truncated birth–death chain (eq. 18) and V̄ from Dally's formula
// (eq. 19). The interdependent quantities are solved by damped
// fixed-point iteration, exactly as the paper prescribes.
package model

import (
	"errors"
	"fmt"
	"math"

	"starperf/internal/cfgerr"
	"starperf/internal/queueing"
	"starperf/internal/routing"
	"starperf/internal/stargraph"
	"starperf/internal/topology"
)

// Config describes one model evaluation.
type Config struct {
	// Paths is the minimal-path structure of the topology (use
	// NewStarPaths or NewCubePaths).
	Paths PathStructure
	// Top supplies degree/diameter/average distance; it must be the
	// same network Paths was built for.
	Top topology.Topology
	// Kind is the routing algorithm (default EnhancedNbc).
	Kind routing.Kind
	// V is the number of virtual channels per physical channel.
	V int
	// MsgLen is the (mean) message length M in flits.
	MsgLen int
	// MsgLenVar is the variance of the message length when lengths
	// are drawn from a distribution (0 for the paper's fixed M). It
	// widens the service-time variance from the paper's (S̄−M)² to
	// (S̄−M)² + Var(M), since the minimum service time shifts with
	// the message's own length.
	MsgLenVar float64
	// Rate is the per-node generation rate λg (messages/cycle).
	Rate float64
	// Blocking selects the blocking-probability assembly (default
	// Window).
	Blocking BlockingModel
	// Switching selects the flow-control discipline the channel
	// holding times are derived from (default Wormhole).
	Switching SwitchingMode
	// Variance selects the service-time variance approximation used
	// in the M/G/1 waits (default PaperVariance, the paper's
	// σ² = (S̄−M)²). The paper's §5 attributes its saturation-region
	// error to this approximation; the ablation A4 quantifies that
	// claim.
	Variance VarianceModel
	// OmitInjectionCycle drops the one-cycle injection-channel
	// pipeline offset that the simulator (and any real router)
	// exhibits; the paper's eq. 4 omits it. The default (false)
	// includes it, so zero-load latency is M + d̄ + 1.
	OmitInjectionCycle bool
	// SingleOutput models deterministic minimal routing (the
	// routing.FirstProfitable baseline): the header has exactly one
	// candidate channel per hop, so every hop's adaptivity degree is
	// forced to 1 regardless of the path structure.
	SingleOutput bool
	// FixedOccupancy, when non-nil, replaces the eq.-18 birth–death
	// virtual-channel occupancy with a measured distribution (len
	// V+1, e.g. a simulator's normalised VCBusyHist). This hybrid
	// mode isolates how much model error stems from the occupancy
	// approximation versus the blocking analysis.
	FixedOccupancy []float64
	// Damping is the fixed-point damping factor in (0,1]; 0 selects
	// the default 0.5.
	Damping float64
	// Tol is the relative convergence tolerance; 0 selects 1e-10.
	Tol float64
	// MaxIter bounds the iteration count; 0 selects 10000.
	MaxIter int
}

// Result is one model evaluation.
type Result struct {
	// Latency is the predicted mean message latency (eq. 1).
	Latency float64
	// NetLatency is S̄, the mean network latency.
	NetLatency float64
	// SourceWait is W̄s.
	SourceWait float64
	// ChannelWait is w̄, the mean wait to acquire a virtual channel.
	ChannelWait float64
	// Multiplexing is V̄.
	Multiplexing float64
	// ChannelRate is λc (eq. 3) and Utilization λc·S̄.
	ChannelRate, Utilization float64
	// MeanBlocking is the traffic-weighted mean per-hop blocking
	// probability (a diagnostic comparable to the simulator's
	// BlockedAttempts/Attempts ratio).
	MeanBlocking float64
	// VCOccupancy is the converged P_v distribution (eq. 18).
	VCOccupancy []float64
	// Iterations is the number of fixed-point steps performed;
	// Converged reports whether the tolerance was met.
	Iterations int
	Converged  bool
	// PerClass decomposes the converged network latency by
	// destination class (eq. 4 per class), ordered as
	// Config.Paths.Classes().
	PerClass []ClassLatency
}

// ClassLatency is the converged latency decomposition of one
// destination class.
type ClassLatency struct {
	// Label and H identify the class (see PathClass).
	Label string
	H     int
	// Weight is the class's share of the traffic.
	Weight float64
	// NetLatency is S_i = M + h + B for this class; Blocking the
	// expected total blocking time B along the path.
	NetLatency, Blocking float64
}

// VarianceModel selects the service-time variance approximation.
type VarianceModel int

const (
	// PaperVariance is the paper's σ² = (S̄−M)² (eq. 14 with the
	// suggestion of Draper & Ghosh): zero at zero load, growing with
	// congestion.
	PaperVariance VarianceModel = iota
	// ExponentialVariance assumes exponentially distributed service,
	// σ² = S̄² (the heaviest standard assumption).
	ExponentialVariance
	// DeterministicVariance assumes fixed service, σ² = 0 (the
	// lightest: M/D/1 waits).
	DeterministicVariance
)

// String names the variance model.
func (v VarianceModel) String() string {
	switch v {
	case PaperVariance:
		return "paper"
	case ExponentialVariance:
		return "exponential"
	case DeterministicVariance:
		return "deterministic"
	default:
		return "unknown"
	}
}

// variance evaluates the selected approximation for mean service s
// and message length m.
func (v VarianceModel) variance(s, m float64) float64 {
	switch v {
	case ExponentialVariance:
		return s * s
	case DeterministicVariance:
		return 0
	default:
		d := s - m
		return d * d
	}
}

// SwitchingMode selects the flow-control discipline modelled.
type SwitchingMode int

const (
	// Wormhole is the paper's discipline: blocked messages stall in
	// place across a chain of channels, so a channel's holding time
	// is approximated by the whole network latency (eq. 13).
	Wormhole SwitchingMode = iota
	// CutThrough is virtual cut-through: blocked messages are
	// buffered whole at the router, so a channel is held for just
	// the M-flit transmission. The simulator's counterpart is
	// desim.Config.CutThrough.
	CutThrough
)

// String names the switching mode.
func (s SwitchingMode) String() string {
	switch s {
	case Wormhole:
		return "wormhole"
	case CutThrough:
		return "cut-through"
	default:
		return "unknown"
	}
}

// ErrSaturated is returned when the requested operating point lies at
// or beyond saturation (channel or source utilisation ≥ 1): the
// model's queues have no steady state there, matching the vertical
// asymptote of the latency curves.
var ErrSaturated = errors.New("model: operating point beyond saturation")

// Evaluate solves the model at cfg's operating point.
func Evaluate(cfg Config) (*Result, error) {
	if cfg.Paths == nil || cfg.Top == nil {
		return nil, cfgerr.New("model: nil path structure or topology")
	}
	if cfg.MsgLen <= 0 {
		return nil, cfgerr.Errorf("model: message length %d", cfg.MsgLen)
	}
	if cfg.MsgLenVar < 0 {
		return nil, cfgerr.Errorf("model: negative message-length variance %v", cfg.MsgLenVar)
	}
	if cfg.Rate < 0 {
		return nil, cfgerr.Errorf("model: negative rate %v", cfg.Rate)
	}
	spec, err := routing.New(cfg.Kind, cfg.Top, cfg.V)
	if err != nil {
		return nil, err
	}
	damping := cfg.Damping
	if damping < 0 || damping > 1 {
		return nil, cfgerr.Errorf("model: damping %v outside (0,1]", damping)
	}
	if damping <= 0 { // unset: negatives were rejected above
		damping = 0.5
	}
	tol := cfg.Tol
	if tol <= 0 {
		tol = 1e-10
	}
	maxIter := cfg.MaxIter
	if maxIter == 0 {
		maxIter = 10000
	}
	if cfg.FixedOccupancy != nil {
		if len(cfg.FixedOccupancy) != cfg.V+1 {
			return nil, cfgerr.Errorf("model: FixedOccupancy has %d entries, want V+1=%d",
				len(cfg.FixedOccupancy), cfg.V+1)
		}
		var s float64
		for _, p := range cfg.FixedOccupancy {
			if p < 0 {
				return nil, cfgerr.New("model: negative FixedOccupancy entry")
			}
			s += p
		}
		if math.Abs(s-1) > 1e-6 {
			return nil, cfgerr.Errorf("model: FixedOccupancy sums to %v", s)
		}
	}

	classes := cfg.Paths.Classes()
	var totalDst float64
	for _, c := range classes {
		totalDst += float64(c.Count)
	}
	m := float64(cfg.MsgLen)
	inj := 1.0
	if cfg.OmitInjectionCycle {
		inj = 0
	}
	dbar := cfg.Top.AvgDistance()
	lambdaC := cfg.Rate * dbar / float64(cfg.Top.Degree()) // eq. 3

	s := m + dbar + inj // zero-load starting point
	res := &Result{ChannelRate: lambdaC}

	for iter := 1; iter <= maxIter; iter++ {
		res.Iterations = iter
		stability := s
		if cfg.Switching == CutThrough {
			stability = m
		}
		if lambdaC*stability >= 1 {
			return res, fmt.Errorf("%w (λc·hold = %.4f at iteration %d)",
				ErrSaturated, lambdaC*stability, iter)
		}
		// The channel holding time: under wormhole switching a blocked
		// message holds its chain of virtual channels, so the paper
		// approximates the service time by the whole network latency
		// S̄ (eq. 13); under virtual cut-through a blocked message is
		// absorbed by the router and a channel is held only for its
		// own M-flit transmission.
		hold := s
		if cfg.Switching == CutThrough {
			hold = m
		}
		occ := cfg.FixedOccupancy
		if occ == nil {
			occ = queueing.VCOccupancy(lambdaC, hold, cfg.V) // eq. 18
		}
		// eq. 15, with the variance widened by Var(M) when message
		// lengths are drawn from a distribution
		w, err := queueing.MG1Wait(lambdaC, hold, cfg.Variance.variance(hold, m)+cfg.MsgLenVar)
		if err != nil {
			return res, fmt.Errorf("%w: %v", ErrSaturated, err)
		}
		bs := newBlockingState(spec, occ, cfg.Blocking)
		eval := bs.Eval
		if cfg.SingleOutput {
			eval = func(h Hop) float64 {
				h.F = 1
				return bs.Eval(h)
			}
		}

		// eqs. 4–7: average network latency over destination classes
		// and the two source colours.
		if res.PerClass == nil {
			res.PerClass = make([]ClassLatency, len(classes))
		}
		var sNew, blockSum, hopSum float64
		for idx, c := range classes {
			var bsum float64
			for c0 := 0; c0 <= 1; c0++ {
				bsum += 0.5 * cfg.Paths.BlockSum(idx, c0, eval)
			}
			w8 := float64(c.Count) / totalDst
			si := m + float64(c.H) + inj + bsum*w
			res.PerClass[idx] = ClassLatency{
				Label: c.Label, H: c.H, Weight: w8,
				NetLatency: si, Blocking: bsum * w,
			}
			sNew += w8 * si
			blockSum += w8 * bsum
			hopSum += w8 * float64(c.H)
		}
		res.ChannelWait = w
		res.VCOccupancy = occ
		res.MeanBlocking = blockSum / hopSum

		prev := s
		s = damping*sNew + (1-damping)*s
		if math.Abs(s-prev) <= tol*prev {
			res.Converged = true
			break
		}
	}

	res.NetLatency = s
	hold := s
	if cfg.Switching == CutThrough {
		hold = m
	}
	res.Utilization = lambdaC * hold
	if res.Utilization >= 1 {
		return res, fmt.Errorf("%w (λc·hold = %.4f)", ErrSaturated, res.Utilization)
	}
	// eq. 16, same variance widening as the channel queue; under
	// cut-through the injection channel is likewise held only for the
	// message's own transmission
	ws, err := queueing.MG1Wait(cfg.Rate/float64(cfg.V), hold,
		cfg.Variance.variance(hold, m)+cfg.MsgLenVar)
	if err != nil {
		return res, fmt.Errorf("%w: source queue: %v", ErrSaturated, err)
	}
	res.SourceWait = ws
	res.Multiplexing = queueing.Multiplexing(res.VCOccupancy) // eq. 19
	res.Latency = (s + ws) * res.Multiplexing                 // eq. 1
	if !res.Converged {
		return res, fmt.Errorf("%w: no convergence in %d iterations (ΔS̄ at %.3g)", ErrSaturated, maxIter, s)
	}
	return res, nil
}

// EvaluateStar is a convenience wrapper: it builds S_n structures and
// evaluates the model for the paper's setting.
func EvaluateStar(n, v, msgLen int, rate float64, kind routing.Kind, blocking BlockingModel) (*Result, error) {
	sp, err := NewStarPaths(n)
	if err != nil {
		return nil, err
	}
	g, err := stargraph.New(n)
	if err != nil {
		return nil, err
	}
	return Evaluate(Config{
		Paths:    sp,
		Top:      g,
		Kind:     kind,
		V:        v,
		MsgLen:   msgLen,
		Rate:     rate,
		Blocking: blocking,
	})
}

// SaturationRate finds (by bisection) the largest per-node rate at
// which the model still converges to a stable operating point, a
// useful summary of each configuration's capacity. Saturation and
// non-convergence are what the bisection probes for and mark a rate
// unstable; an invalid base Config (matching cfgerr.ErrInvalid) is an
// error — every probe would fail identically, so the bisection would
// silently report lo as the capacity.
func SaturationRate(base Config, lo, hi float64) (float64, error) {
	stable := func(r float64) (bool, error) {
		c := base
		c.Rate = r
		_, err := Evaluate(c)
		switch {
		case err == nil:
			return true, nil
		case errors.Is(err, cfgerr.ErrInvalid):
			return false, err
		default:
			return false, nil // saturated or non-convergent
		}
	}
	ok, err := stable(lo)
	if err != nil {
		return 0, err
	}
	if !ok {
		return lo, nil
	}
	for hi-lo > 1e-6*hi {
		mid := (lo + hi) / 2
		ok, err := stable(mid)
		if err != nil {
			return 0, err
		}
		if ok {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, nil
}
