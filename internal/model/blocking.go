package model

import (
	"math"

	"starperf/internal/queueing"
	"starperf/internal/routing"
)

// BlockingModel selects how per-hop blocking probabilities are
// assembled from the virtual-channel occupancy distribution
// (the paper's eqs. 8–11 and the corrected variants).
type BlockingModel int

const (
	// Window (default) matches the implemented algorithm exactly:
	// eligibility does not depend on the class used on the previous
	// hop, only on the message's negative-hop level, so the per-hop
	// blocking probability is P(all eligible VCs busy)^f with the
	// eligible set given by routing.Spec.ClassBWindow at the
	// deterministic level implied by the hop position.
	Window BlockingModel = iota
	// PaperInsidePower reproduces the paper's eq. 8 literally: the
	// per-channel blocking probability is the class-weighted mixture
	// (group A and the two class-b groups), and the mixture is raised
	// to the power f.
	PaperInsidePower
	// PaperOutsidePower keeps the paper's three-group structure but
	// places the mixture outside the power: the tagged message's
	// class is a property of the message, identical across its f
	// candidate channels, so Σ_g P(g)·P_block(g)^f.
	PaperOutsidePower
)

// String names the blocking model.
func (b BlockingModel) String() string {
	switch b {
	case Window:
		return "window"
	case PaperInsidePower:
		return "paper-inside-power"
	case PaperOutsidePower:
		return "paper-outside-power"
	default:
		return "unknown"
	}
}

// blockingState carries the per-iteration quantities the hop
// evaluator needs: the busy-count distribution of a physical
// channel's VCs and the class-a usage probability estimate.
type blockingState struct {
	spec routing.Spec
	occ  []float64 // P_v, v = 0..V
	pvc0 float64   // P(message used a class-a VC on its previous hop)
	mode BlockingModel
}

func newBlockingState(spec routing.Spec, occ []float64, mode BlockingModel) *blockingState {
	bs := &blockingState{spec: spec, occ: occ, mode: mode}
	if spec.V1 > 0 {
		// Under the prefer-class-a policy a message acquires class a
		// whenever not all V1 adaptive VCs of the chosen channel are
		// busy.
		bs.pvc0 = 1 - queueing.AllBusyProb(occ, spec.V1)
	}
	return bs
}

// eligibleCount returns the number of virtual channels a message at
// class-b level lvl may use on a hop (class a plus the class-b
// feasibility window).
func (bs *blockingState) eligibleCount(lvl int, hop Hop) int {
	st := routing.State{NegHops: hop.NegTaken, Level: lvl}
	lo, hi := bs.spec.ClassBWindow(st, hop.HopNeg, nextColor(hop), hop.D-1)
	if lo < 0 {
		lo = 0
	}
	if hi > bs.spec.V2-1 {
		hi = bs.spec.V2 - 1
	}
	w := hi - lo + 1
	if w < 0 {
		w = 0
	}
	return bs.spec.V1 + w
}

// nextColor returns the colour of the node the hop enters: negative
// hops land on colour 0, positive hops on colour 1.
func nextColor(h Hop) int {
	if h.HopNeg {
		return 0
	}
	return 1
}

// Eval returns the blocking probability of one hop: the probability
// that every one of the hop's F candidate output channels has all of
// the message's eligible virtual channels busy.
func (bs *blockingState) Eval(hop Hop) float64 {
	if hop.F <= 0 {
		return 0
	}
	switch bs.mode {
	case PaperInsidePower, PaperOutsidePower:
		// Three-group structure (paper eqs. 8–11). Group A messages
		// are treated at class-b level 0 as in the paper's eq. 9;
		// group B messages sit at the level equal to their
		// negative-hop count (the exact level under lowest-eligible
		// selection). The B−/B+ halves of eq. 8 arise from the two
		// source colours, which the solver already averages over, so
		// here the hop's own sign decides which of the two applies.
		pa := queueing.AllBusyProb(bs.occ, bs.eligibleCount(0, hop))
		pb := queueing.AllBusyProb(bs.occ, bs.eligibleCount(hop.NegTaken, hop))
		f := float64(hop.F)
		if bs.mode == PaperInsidePower {
			mix := bs.pvc0*pa + (1-bs.pvc0)*pb
			return math.Pow(mix, f)
		}
		return bs.pvc0*math.Pow(pa, f) + (1-bs.pvc0)*math.Pow(pb, f)
	default: // Window
		p := queueing.AllBusyProb(bs.occ, bs.eligibleCount(hop.NegTaken, hop))
		return math.Pow(p, float64(hop.F))
	}
}
