package model

import (
	"sort"
	"strconv"
	"strings"

	"starperf/internal/cfgerr"
)

// TorusPaths is the k-ary n-cube PathStructure. A destination is
// characterised by the sorted vector of per-dimension minimal ring
// offsets m_i ∈ [0, k/2]; the adaptivity degree at a node is the
// number of unfinished dimensions, counting twice any dimension whose
// remaining offset is exactly k/2 (both ring directions are then
// minimal). Minimal hops decrement one offset, which induces a small
// transition system over sorted offset vectors — the same dynamic
// program shape as the star graph's cycle types.
type TorusPaths struct {
	k, n      int
	classes   []PathClass
	vecs      [][]int
	pathCount map[string]float64
}

// NewTorusPaths builds the path structure of the k-ary n-cube
// (k even, as required by the negative-hop schemes).
func NewTorusPaths(k, n int) (*TorusPaths, error) {
	if k < 2 || k%2 != 0 || n < 1 {
		return nil, cfgerr.Errorf("model: torus paths need even k ≥ 2 and n ≥ 1 (got k=%d n=%d)", k, n)
	}
	if n > 8 || k > 64 {
		return nil, cfgerr.Errorf("model: torus k=%d n=%d too large", k, n)
	}
	tp := &TorusPaths{k: k, n: n, pathCount: make(map[string]float64)}
	// enumerate non-increasing offset vectors of length n over [0,k/2]
	half := k / 2
	vec := make([]int, n)
	var rec func(i, maxV int)
	rec = func(i, maxV int) {
		if i == n {
			allZero := true
			for _, m := range vec {
				if m != 0 {
					allZero = false
					break
				}
			}
			if allZero {
				return
			}
			v := append([]int(nil), vec...)
			tp.vecs = append(tp.vecs, v)
			tp.classes = append(tp.classes, PathClass{
				H:     sum(v),
				Count: tp.countOf(v),
				Label: vecKey(v),
			})
			return
		}
		for m := 0; m <= maxV; m++ {
			vec[i] = m
			rec(i+1, m)
		}
		vec[i] = 0
	}
	rec(0, half)
	sort.Slice(tp.classes, func(i, j int) bool {
		if tp.classes[i].H != tp.classes[j].H {
			return tp.classes[i].H < tp.classes[j].H
		}
		return tp.classes[i].Label < tp.classes[j].Label
	})
	// keep vecs aligned with the sorted classes
	sort.Slice(tp.vecs, func(i, j int) bool {
		if sum(tp.vecs[i]) != sum(tp.vecs[j]) {
			return sum(tp.vecs[i]) < sum(tp.vecs[j])
		}
		return vecKey(tp.vecs[i]) < vecKey(tp.vecs[j])
	})
	return tp, nil
}

func sum(v []int) int {
	s := 0
	for _, x := range v {
		s += x
	}
	return s
}

func vecKey(v []int) string {
	var b strings.Builder
	for i, x := range v {
		if i > 0 {
			b.WriteByte(':')
		}
		b.WriteString(strconv.Itoa(x))
	}
	return b.String()
}

// countOf returns the number of destinations with this sorted offset
// vector: the number of ways to assign the offsets to dimensions
// (multinomial over repeated values) times, per dimension, the number
// of ring digits realising that minimal offset (one for 0 and k/2,
// two otherwise).
func (tp *TorusPaths) countOf(v []int) uint64 {
	half := tp.k / 2
	assign := factF(tp.n)
	mult := map[int]int{}
	digits := 1.0
	for _, m := range v {
		mult[m]++
		if m != 0 && m != half {
			digits *= 2
		}
	}
	for _, c := range mult {
		assign /= factF(c)
	}
	return uint64(assign*digits + 0.5)
}

// Classes implements PathStructure.
func (tp *TorusPaths) Classes() []PathClass { return tp.classes }

// fanout returns the adaptivity degree of a state: one profitable
// channel per unfinished dimension, two when the remaining offset is
// the half-ring tie.
func (tp *TorusPaths) fanout(v []int) int {
	half := tp.k / 2
	f := 0
	for _, m := range v {
		switch {
		case m == 0:
		case m == half:
			f += 2
		default:
			f++
		}
	}
	return f
}

// paths counts minimal paths from a state, memoised.
func (tp *TorusPaths) paths(v []int) float64 {
	if sum(v) == 0 {
		return 1
	}
	key := vecKey(v)
	if c, ok := tp.pathCount[key]; ok {
		return c
	}
	var total float64
	tp.eachTransition(v, func(mult int, child []int) {
		total += float64(mult) * tp.paths(child)
	})
	tp.pathCount[key] = total
	return total
}

// eachTransition visits the distinct decrement moves out of state v:
// for each distinct non-zero offset value, decrementing one dimension
// holding it. mult counts the generator channels realising the move
// (dimensions holding the value, doubled at the half-ring tie).
func (tp *TorusPaths) eachTransition(v []int, fn func(mult int, child []int)) {
	half := tp.k / 2
	seen := map[int]int{}
	for _, m := range v {
		if m > 0 {
			seen[m]++
		}
	}
	for m, c := range seen {
		ways := c
		if m == half {
			ways = 2 * c
		}
		child := append([]int(nil), v...)
		for i, x := range child {
			if x == m {
				child[i] = m - 1
				break
			}
		}
		sort.Sort(sort.Reverse(sort.IntSlice(child)))
		fn(ways, child)
	}
}

// BlockSum implements PathStructure by the same uniform-over-paths
// dynamic program as StarPaths.
func (tp *TorusPaths) BlockSum(idx, c0 int, eval HopEvaluator) float64 {
	start := tp.vecs[idx]
	h0 := sum(start)
	memo := make(map[string]float64)
	var rec func(v []int) float64
	rec = func(v []int) float64 {
		d := sum(v)
		if d == 0 {
			return 0
		}
		key := vecKey(v)
		if r, ok := memo[key]; ok {
			return r
		}
		k := h0 - d + 1
		s := eval(Hop{
			F:        tp.fanout(v),
			D:        d,
			NegTaken: negsAfter(c0, k-1),
			HopNeg:   hopNegAt(c0, k),
		})
		total := tp.paths(v)
		tp.eachTransition(v, func(mult int, child []int) {
			s += float64(mult) * tp.paths(child) / total * rec(child)
		})
		memo[key] = s
		return s
	}
	return rec(start)
}

// NumPaths exposes the minimal-path count of a class.
func (tp *TorusPaths) NumPaths(idx int) float64 { return tp.paths(tp.vecs[idx]) }
