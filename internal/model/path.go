package model

import (
	"fmt"

	"starperf/internal/cfgerr"
	"starperf/internal/hypercube"
	"starperf/internal/stargraph"
	"starperf/internal/topology"
)

// Hop describes one hop of a minimal path as seen by the blocking
// model: the adaptivity degree F (number of profitable output
// channels the header may choose from), the distance D from the
// current node to the destination (so D−1 remains after the hop),
// the number of negative hops NegTaken already behind the message,
// and whether this hop itself is negative.
type Hop struct {
	F        int
	D        int
	NegTaken int
	HopNeg   bool
}

// HopEvaluator maps one hop to its blocking probability under the
// current iterate of the model (virtual-channel occupancy and
// routing spec); see blocking.go.
type HopEvaluator func(h Hop) float64

// PathStructure abstracts the minimal-path combinatorics of a
// topology for the latency model: the destination equivalence
// classes and, per class, the expected sum of per-hop blocking
// probabilities over a uniformly chosen minimal path.
type PathStructure interface {
	// Classes returns the destination classes with their distance h
	// and population; Σ count = N−1 (the identity/self class is
	// excluded).
	Classes() []PathClass
	// BlockSum returns E[Σ_k P_block(hop k)] for a message to class
	// idx from a source of colour c0, averaging uniformly over the
	// class's minimal paths and evaluating each hop with eval.
	BlockSum(idx int, c0 int, eval HopEvaluator) float64
}

// PathClass is one destination equivalence class.
type PathClass struct {
	// H is the distance to destinations of this class.
	H int
	// Count is the number of such destinations.
	Count uint64
	// Label identifies the class (a cycle-type key for star graphs,
	// a distance for hypercubes).
	Label string
}

// negsAfter returns the number of negative hops among the first j
// hops of any minimal path leaving a colour-c0 source (exact in a
// bipartite network: colours strictly alternate).
func negsAfter(c0, j int) int { return topology.RequiredNegativeHops(c0, j) }

// hopNegAt reports whether hop number k (1-based) of a path from a
// colour-c0 source is negative: the node before hop k has colour
// c0 ⊕ (k−1 mod 2) and negative hops leave colour-1 nodes.
func hopNegAt(c0, k int) bool { return (c0+(k-1))&1 == 1 }

// StarPaths is the star-graph PathStructure: destination classes are
// residual-permutation cycle types, and per-class expected blocking
// sums are computed by dynamic programming over the type-transition
// graph instead of enumerating the (potentially exponential) set of
// minimal paths. Both views agree exactly; see TestDPMatchesExact.
type StarPaths struct {
	n       int
	classes []PathClass
	types   []ctype
	// pathCount memoises the number of minimal paths per type key.
	pathCount map[string]float64
}

// NewStarPaths builds the path structure of S_n. It validates the
// combinatorial type table against the closed-form distance
// distribution.
func NewStarPaths(n int) (*StarPaths, error) {
	if n < 2 || n > 12 {
		return nil, cfgerr.Errorf("model: star paths for n=%d outside [2,12]", n)
	}
	all := enumerateTypes(n)
	if err := checkTypeTable(n, all); err != nil {
		return nil, err
	}
	sp := &StarPaths{n: n, pathCount: make(map[string]float64)}
	for _, c := range all {
		if c.t.isTerminal() {
			continue // the source itself is not a destination
		}
		sp.classes = append(sp.classes, PathClass{H: c.h, Count: c.count, Label: c.t.key()})
		sp.types = append(sp.types, c.t)
	}
	return sp, nil
}

// Classes implements PathStructure.
func (sp *StarPaths) Classes() []PathClass { return sp.classes }

// paths returns the number of minimal paths from a permutation of
// type t to the identity, memoised across calls.
func (sp *StarPaths) paths(t ctype) float64 {
	if t.isTerminal() {
		return 1
	}
	k := t.key()
	if v, ok := sp.pathCount[k]; ok {
		return v
	}
	var n float64
	for _, tr := range t.transitions() {
		n += float64(tr.mult) * sp.paths(tr.to)
	}
	sp.pathCount[k] = n
	return n
}

// BlockSum implements PathStructure by a depth-first dynamic program
// over cycle types. For a fixed destination class the hop index k is
// recoverable from the state's distance (k = h0 − d + 1), so the
// memo key is the type alone.
func (sp *StarPaths) BlockSum(idx, c0 int, eval HopEvaluator) float64 {
	t := sp.types[idx]
	h0 := sp.classes[idx].H
	memo := make(map[string]float64)
	var rec func(t ctype) float64
	rec = func(t ctype) float64 {
		if t.isTerminal() {
			return 0
		}
		key := t.key()
		if v, ok := memo[key]; ok {
			return v
		}
		d := t.dist()
		k := h0 - d + 1
		hop := Hop{
			F:        t.fanout(),
			D:        d,
			NegTaken: negsAfter(c0, k-1),
			HopNeg:   hopNegAt(c0, k),
		}
		sum := eval(hop)
		total := sp.paths(t)
		for _, tr := range t.transitions() {
			w := float64(tr.mult) * sp.paths(tr.to) / total
			sum += w * rec(tr.to)
		}
		memo[key] = sum
		return sum
	}
	return rec(t)
}

// NumPaths exposes the minimal-path count of a class (used by tests
// and by cmd/starinfo).
func (sp *StarPaths) NumPaths(idx int) float64 { return sp.paths(sp.types[idx]) }

// CubePaths is the hypercube PathStructure: a destination at Hamming
// distance h presents exactly d profitable dimensions when d hops
// remain, on every minimal path, so no averaging is needed.
type CubePaths struct {
	m       int
	classes []PathClass
}

// NewCubePaths builds the path structure of Q_m.
func NewCubePaths(m int) (*CubePaths, error) {
	if m < 1 || m > hypercube.MaxM {
		return nil, cfgerr.Errorf("model: cube paths for m=%d out of range", m)
	}
	cp := &CubePaths{m: m}
	for h := 1; h <= m; h++ {
		cp.classes = append(cp.classes, PathClass{
			H:     h,
			Count: uint64(binomF(m, h) + 0.5),
			Label: fmt.Sprintf("h=%d", h),
		})
	}
	return cp, nil
}

// Classes implements PathStructure.
func (cp *CubePaths) Classes() []PathClass { return cp.classes }

// BlockSum implements PathStructure.
func (cp *CubePaths) BlockSum(idx, c0 int, eval HopEvaluator) float64 {
	h0 := cp.classes[idx].H
	var sum float64
	for k := 1; k <= h0; k++ {
		d := h0 - k + 1
		sum += eval(Hop{
			F:        d,
			D:        d,
			NegTaken: negsAfter(c0, k-1),
			HopNeg:   hopNegAt(c0, k),
		})
	}
	return sum
}

// ExactStarBlockSum enumerates every minimal path of the concrete
// star graph from src-relative permutations of class idx and averages
// Σ_k P_block over them directly. It is exponential and exists to
// validate the DP (TestDPMatchesExact) and for the ablation bench;
// use BlockSum for real evaluations.
func (sp *StarPaths) ExactStarBlockSum(g *stargraph.Graph, idx, c0 int, eval HopEvaluator) float64 {
	// pick any representative destination of the class
	t := sp.types[idx]
	rep := -1
	for v := 1; v < g.N(); v++ {
		if typeOf(g.Perm(v)).key() == t.key() {
			rep = v
			break
		}
	}
	if rep < 0 {
		panic("model: class without representative")
	}
	var paths, total float64
	var dfs func(cur, k int, acc float64)
	dfs = func(cur, k int, acc float64) {
		if cur == rep {
			paths++
			total += acc
			return
		}
		dims := g.ProfitableDims(cur, rep, nil)
		d := g.Distance(cur, rep)
		hop := Hop{F: len(dims), D: d, NegTaken: negsAfter(c0, k-1), HopNeg: hopNegAt(c0, k)}
		p := eval(hop)
		for _, dim := range dims {
			dfs(g.Neighbor(cur, dim), k+1, acc+p)
		}
	}
	dfs(0, 1, 0)
	return total / paths
}
