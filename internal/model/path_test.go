package model

import (
	"math"
	"testing"

	"starperf/internal/perm"
	"starperf/internal/stargraph"
)

func TestStarPathsClasses(t *testing.T) {
	for n := 2; n <= 8; n++ {
		sp, err := NewStarPaths(n)
		if err != nil {
			t.Fatal(err)
		}
		var sum uint64
		for _, c := range sp.Classes() {
			if c.H < 1 || c.H > stargraph.Diameter(n) {
				t.Fatalf("class %s at distance %d", c.Label, c.H)
			}
			sum += c.Count
		}
		if sum != perm.Factorial(n)-1 {
			t.Fatalf("n=%d class populations sum to %d, want n!-1=%d",
				n, sum, perm.Factorial(n)-1)
		}
	}
	if _, err := NewStarPaths(1); err == nil {
		t.Fatal("n=1 accepted")
	}
	if _, err := NewStarPaths(13); err == nil {
		t.Fatal("n=13 accepted")
	}
}

// TestPathCountsMatchDFS verifies the DP's minimal-path counts
// against explicit DFS enumeration on the real graph.
func TestPathCountsMatchDFS(t *testing.T) {
	g := stargraph.MustNew(5)
	sp, err := NewStarPaths(5)
	if err != nil {
		t.Fatal(err)
	}
	countPaths := func(dst int) float64 {
		var dfs func(cur int) float64
		dfs = func(cur int) float64 {
			if cur == dst {
				return 1
			}
			var n float64
			for _, dim := range g.ProfitableDims(cur, dst, nil) {
				n += dfs(g.Neighbor(cur, dim))
			}
			return n
		}
		return dfs(0)
	}
	for idx, c := range sp.Classes() {
		// find a representative destination of this class
		rep := -1
		for v := 1; v < g.N(); v++ {
			if typeOf(g.Perm(v)).key() == c.Label {
				rep = v
				break
			}
		}
		if rep < 0 {
			t.Fatalf("class %s unpopulated", c.Label)
		}
		want := countPaths(rep)
		if got := sp.NumPaths(idx); math.Abs(got-want) > 1e-9 {
			t.Fatalf("class %s: %v paths by DP, %v by DFS", c.Label, got, want)
		}
	}
}

// TestDPMatchesExact is the central correctness test of the model's
// path machinery: the cycle-type dynamic program must agree exactly
// with brute-force enumeration of all minimal paths, for a
// non-trivial evaluator that uses every Hop field.
func TestDPMatchesExact(t *testing.T) {
	g := stargraph.MustNew(5)
	sp, err := NewStarPaths(5)
	if err != nil {
		t.Fatal(err)
	}
	eval := func(h Hop) float64 {
		v := 0.03*float64(h.F) + 0.011*float64(h.D) + 0.007*float64(h.NegTaken)
		if h.HopNeg {
			v += 0.0042
		}
		return v
	}
	for idx, c := range sp.Classes() {
		for c0 := 0; c0 <= 1; c0++ {
			dp := sp.BlockSum(idx, c0, eval)
			exact := sp.ExactStarBlockSum(g, idx, c0, eval)
			if math.Abs(dp-exact) > 1e-9 {
				t.Fatalf("class %s c0=%d: DP %v, exact %v", c.Label, c0, dp, exact)
			}
		}
	}
}

func TestBlockSumZeroEval(t *testing.T) {
	sp, _ := NewStarPaths(6)
	for idx := range sp.Classes() {
		if got := sp.BlockSum(idx, 0, func(Hop) float64 { return 0 }); got != 0 {
			t.Fatalf("zero evaluator produced %v", got)
		}
	}
}

func TestBlockSumCountsHops(t *testing.T) {
	// An evaluator returning 1 per hop must sum to the class distance.
	sp, _ := NewStarPaths(6)
	for idx, c := range sp.Classes() {
		got := sp.BlockSum(idx, 1, func(Hop) float64 { return 1 })
		if math.Abs(got-float64(c.H)) > 1e-9 {
			t.Fatalf("class %s: hop count %v, want %d", c.Label, got, c.H)
		}
	}
}

func TestHopFieldConsistency(t *testing.T) {
	// Within BlockSum, D must run h, h-1, …, 1 and NegTaken must
	// follow the alternation law for the source colour.
	sp, _ := NewStarPaths(5)
	for idx, c := range sp.Classes() {
		for c0 := 0; c0 <= 1; c0++ {
			// F varies across path sets at the same depth (the whole
			// point of eq. 7); NegTaken and HopNeg are functions of
			// depth alone via colour alternation.
			seen := map[int]bool{}
			sp.BlockSum(idx, c0, func(h Hop) float64 {
				seen[h.D] = true
				k := c.H - h.D + 1
				if h.NegTaken != negsAfter(c0, k-1) || h.HopNeg != hopNegAt(c0, k) {
					t.Fatalf("class %s c0=%d hop k=%d: %+v", c.Label, c0, k, h)
				}
				if h.F < 1 {
					t.Fatalf("class %s: non-positive fanout %+v", c.Label, h)
				}
				return 0
			})
			for d := 1; d <= c.H; d++ {
				if !seen[d] {
					t.Fatalf("class %s c0=%d: no hop at D=%d", c.Label, c0, d)
				}
			}
		}
	}
}

func TestCubePaths(t *testing.T) {
	cp, err := NewCubePaths(7)
	if err != nil {
		t.Fatal(err)
	}
	var sum uint64
	for _, c := range cp.Classes() {
		sum += c.Count
	}
	if sum != 127 {
		t.Fatalf("Q7 class populations sum to %d, want 127", sum)
	}
	// h=3 class: F must equal D at every hop, and hops sum to 3.
	idx := 2
	if cp.Classes()[idx].H != 3 {
		t.Fatalf("class order unexpected")
	}
	hops := 0
	cp.BlockSum(idx, 0, func(h Hop) float64 {
		hops++
		if h.F != h.D {
			t.Fatalf("cube hop F=%d D=%d", h.F, h.D)
		}
		return 0
	})
	if hops != 3 {
		t.Fatalf("cube class h=3 evaluated %d hops", hops)
	}
	if _, err := NewCubePaths(0); err == nil {
		t.Fatal("m=0 accepted")
	}
}

func TestNegsAlternation(t *testing.T) {
	// negsAfter(c0, j) − negsAfter(c0, j−1) must be 1 exactly when
	// hop j is negative.
	for c0 := 0; c0 <= 1; c0++ {
		for j := 1; j <= 10; j++ {
			delta := negsAfter(c0, j) - negsAfter(c0, j-1)
			neg := hopNegAt(c0, j)
			if (delta == 1) != neg || delta < 0 || delta > 1 {
				t.Fatalf("c0=%d j=%d delta=%d neg=%v", c0, j, delta, neg)
			}
		}
	}
}

func BenchmarkStarPathsBuildS8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := NewStarPaths(8); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBlockSumS8(b *testing.B) {
	sp, _ := NewStarPaths(8)
	eval := func(h Hop) float64 { return 0.01 * float64(h.F) }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for idx := range sp.Classes() {
			sp.BlockSum(idx, i&1, eval)
		}
	}
}
