package model

import (
	"math"
	"testing"

	"starperf/internal/routing"
	"starperf/internal/torus"
)

func TestTorusClassesPopulation(t *testing.T) {
	for _, kn := range [][2]int{{4, 1}, {4, 2}, {6, 2}, {4, 3}, {8, 3}} {
		k, n := kn[0], kn[1]
		tp, err := NewTorusPaths(k, n)
		if err != nil {
			t.Fatal(err)
		}
		var sum uint64
		nodes := uint64(1)
		for i := 0; i < n; i++ {
			nodes *= uint64(k)
		}
		for _, c := range tp.Classes() {
			sum += c.Count
		}
		if sum != nodes-1 {
			t.Fatalf("T%dx%d class populations sum to %d, want %d", k, n, sum, nodes-1)
		}
	}
	if _, err := NewTorusPaths(5, 2); err == nil {
		t.Fatal("odd radix accepted")
	}
	if _, err := NewTorusPaths(4, 0); err == nil {
		t.Fatal("n=0 accepted")
	}
}

// TestTorusClassHistogramMatchesGraph compares the class populations
// per distance with the concrete torus graph.
func TestTorusClassHistogramMatchesGraph(t *testing.T) {
	g := torus.MustNew(6, 2)
	tp, err := NewTorusPaths(6, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := map[int]uint64{}
	for v := 1; v < g.N(); v++ {
		want[g.Distance(0, v)]++
	}
	got := map[int]uint64{}
	for _, c := range tp.Classes() {
		got[c.H] += c.Count
	}
	for h, w := range want {
		if got[h] != w {
			t.Fatalf("distance %d: %d destinations, want %d", h, got[h], w)
		}
	}
}

// TestTorusDPMatchesExact validates the offset-vector DP against
// brute-force path enumeration on real tori.
func TestTorusDPMatchesExact(t *testing.T) {
	for _, kn := range [][2]int{{4, 2}, {6, 2}} {
		k, n := kn[0], kn[1]
		g := torus.MustNew(k, n)
		tp, err := NewTorusPaths(k, n)
		if err != nil {
			t.Fatal(err)
		}
		eval := func(h Hop) float64 {
			v := 0.021*float64(h.F) + 0.013*float64(h.D) + 0.005*float64(h.NegTaken)
			if h.HopNeg {
				v += 0.003
			}
			return v
		}
		for idx, c := range tp.Classes() {
			// find a destination matching this class's offset vector
			rep := -1
			for v := 1; v < g.N(); v++ {
				if g.Distance(0, v) == c.H && torusVecOf(g, v, n) == c.Label {
					rep = v
					break
				}
			}
			if rep < 0 {
				t.Fatalf("class %s unpopulated", c.Label)
			}
			for c0 := 0; c0 <= 1; c0++ {
				var paths, total float64
				var dfs func(cur, k int, acc float64)
				dfs = func(cur, kk int, acc float64) {
					if cur == rep {
						paths++
						total += acc
						return
					}
					dims := g.ProfitableDims(cur, rep, nil)
					hop := Hop{
						F: len(dims), D: g.Distance(cur, rep),
						NegTaken: negsAfter(c0, kk-1), HopNeg: hopNegAt(c0, kk),
					}
					p := eval(hop)
					for _, dim := range dims {
						dfs(g.Neighbor(cur, dim), kk+1, acc+p)
					}
				}
				dfs(0, 1, 0)
				exact := total / paths
				dp := tp.BlockSum(idx, c0, eval)
				if math.Abs(dp-exact) > 1e-9 {
					t.Fatalf("T%dx%d class %s c0=%d: DP %v, exact %v (paths %v vs %v)",
						k, n, c.Label, c0, dp, exact, tp.NumPaths(idx), paths)
				}
			}
		}
	}
}

// torusVecOf recovers the sorted per-dimension minimal offset vector
// of a destination, as a class label.
func torusVecOf(g *torus.Graph, dst, n int) string {
	offs := make([]int, n)
	// derive digits arithmetically (same address layout as torus.New)
	pow := 1
	for i := 0; i < n; i++ {
		digit := dst / pow % g.Radix()
		o := digit
		if o > g.Radix()-o {
			o = g.Radix() - o
		}
		offs[i] = o
		pow *= g.Radix()
	}
	// sort descending
	for i := 1; i < len(offs); i++ {
		for j := i; j > 0 && offs[j] > offs[j-1]; j-- {
			offs[j], offs[j-1] = offs[j-1], offs[j]
		}
	}
	return vecKey(offs)
}

func TestTorusBlockSumHopCount(t *testing.T) {
	tp, err := NewTorusPaths(8, 3)
	if err != nil {
		t.Fatal(err)
	}
	for idx, c := range tp.Classes() {
		got := tp.BlockSum(idx, 0, func(Hop) float64 { return 1 })
		if math.Abs(got-float64(c.H)) > 1e-9 {
			t.Fatalf("class %s: hop count %v, want %d", c.Label, got, c.H)
		}
	}
}

// TestTorusModelEndToEnd evaluates the full latency model on a torus.
func TestTorusModelEndToEnd(t *testing.T) {
	g := torus.MustNew(4, 2)
	tp, err := NewTorusPaths(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Evaluate(Config{
		Paths: tp, Top: g, Kind: routing.EnhancedNbc, V: 4, MsgLen: 16, Rate: 0.004,
	})
	if err != nil {
		t.Fatal(err)
	}
	zero := 16 + g.AvgDistance() + 1
	if r.Latency <= zero || r.Latency > 4*zero {
		t.Fatalf("torus latency %v implausible (zero-load %v)", r.Latency, zero)
	}
}
