package model

import (
	"errors"
	"math"
	"testing"

	"starperf/internal/hypercube"
	"starperf/internal/queueing"
	"starperf/internal/routing"
	"starperf/internal/stargraph"
)

func TestZeroLoadClosedForm(t *testing.T) {
	g := stargraph.MustNew(5)
	r, err := EvaluateStar(5, 6, 32, 0, routing.EnhancedNbc, Window)
	if err != nil {
		t.Fatal(err)
	}
	want := 32 + g.AvgDistance() + 1
	if math.Abs(r.Latency-want) > 1e-6 {
		t.Fatalf("zero-load latency %v, want %v", r.Latency, want)
	}
	if r.Multiplexing != 1 || r.SourceWait != 0 || r.ChannelWait != 0 || r.MeanBlocking != 0 {
		t.Fatalf("zero-load result not clean: %+v", r)
	}
	if !r.Converged {
		t.Fatal("zero load did not converge")
	}
}

func TestOmitInjectionCycle(t *testing.T) {
	sp, _ := NewStarPaths(5)
	g := stargraph.MustNew(5)
	r, err := Evaluate(Config{
		Paths: sp, Top: g, Kind: routing.EnhancedNbc, V: 6, MsgLen: 32,
		Rate: 0, OmitInjectionCycle: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := 32 + g.AvgDistance()
	if math.Abs(r.Latency-want) > 1e-6 {
		t.Fatalf("paper-form zero-load latency %v, want %v", r.Latency, want)
	}
}

func TestLatencyMonotoneInRate(t *testing.T) {
	prev := 0.0
	for _, rate := range []float64{0.001, 0.004, 0.008, 0.012} {
		r, err := EvaluateStar(5, 6, 32, rate, routing.EnhancedNbc, Window)
		if err != nil {
			t.Fatalf("rate %v: %v", rate, err)
		}
		if r.Latency <= prev {
			t.Fatalf("latency %v at rate %v not above %v", r.Latency, rate, prev)
		}
		prev = r.Latency
	}
}

func TestSaturationError(t *testing.T) {
	_, err := EvaluateStar(5, 6, 32, 0.05, routing.EnhancedNbc, Window)
	if !errors.Is(err, ErrSaturated) {
		t.Fatalf("err = %v, want ErrSaturated", err)
	}
}

func TestLongerMessagesSaturateEarlier(t *testing.T) {
	s32 := mustSat(t, Config{
		Paths: mustStarPaths(t, 5), Top: stargraph.MustNew(5),
		Kind: routing.EnhancedNbc, V: 6, MsgLen: 32,
	}, 0.0005, 0.05)
	s64 := mustSat(t, Config{
		Paths: mustStarPaths(t, 5), Top: stargraph.MustNew(5),
		Kind: routing.EnhancedNbc, V: 6, MsgLen: 64,
	}, 0.0005, 0.05)
	if s64 >= s32 {
		t.Fatalf("M=64 saturation %v not below M=32's %v", s64, s32)
	}
	// both must lie below the physical bisection bandwidth bound
	// λg_max = (n−1)/(d̄·M)
	g := stargraph.MustNew(5)
	if s32 >= 4/(g.AvgDistance()*32) || s64 >= 4/(g.AvgDistance()*64) {
		t.Fatalf("saturation rates exceed channel capacity: %v %v", s32, s64)
	}
}

func TestMoreVCsRaiseSaturation(t *testing.T) {
	base := Config{
		Paths: mustStarPaths(t, 5), Top: stargraph.MustNew(5),
		Kind: routing.EnhancedNbc, MsgLen: 32,
	}
	b6, b12 := base, base
	b6.V, b12.V = 6, 12
	s6 := mustSat(t, b6, 0.0005, 0.05)
	s12 := mustSat(t, b12, 0.0005, 0.05)
	if s12 <= s6 {
		t.Fatalf("V=12 saturation %v not above V=6's %v", s12, s6)
	}
}

func mustSat(t *testing.T, cfg Config, lo, hi float64) float64 {
	t.Helper()
	s, err := SaturationRate(cfg, lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func mustStarPaths(t *testing.T, n int) *StarPaths {
	t.Helper()
	sp, err := NewStarPaths(n)
	if err != nil {
		t.Fatal(err)
	}
	return sp
}

func TestValidationErrors(t *testing.T) {
	sp := mustStarPaths(t, 4)
	g := stargraph.MustNew(4)
	cases := []Config{
		{},
		{Paths: sp},
		{Paths: sp, Top: g, V: 4, MsgLen: 0, Rate: 0.001},
		{Paths: sp, Top: g, V: 4, MsgLen: 16, Rate: -0.001},
		{Paths: sp, Top: g, V: 1, MsgLen: 16, Rate: 0.001}, // V below minimum
		{Paths: sp, Top: g, V: 4, MsgLen: 16, Rate: 0.001, Damping: 2},
	}
	for i, cfg := range cases {
		if _, err := Evaluate(cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

func TestBlockingModelVariants(t *testing.T) {
	// All three variants must agree at zero load and stay ordered by
	// Jensen's inequality at moderate load: for f ≥ 1 and a fixed
	// mixture, mean^f ≤ mean of powers, so the inside-power variant
	// predicts less blocking and hence lower latency.
	var lat [3]float64
	for i, b := range []BlockingModel{Window, PaperInsidePower, PaperOutsidePower} {
		r, err := EvaluateStar(5, 6, 32, 0.01, routing.EnhancedNbc, b)
		if err != nil {
			t.Fatalf("%v: %v", b, err)
		}
		lat[i] = r.Latency
	}
	if lat[1] > lat[2]+1e-9 {
		t.Fatalf("inside-power latency %v above outside-power %v", lat[1], lat[2])
	}
	// sanity: all within a factor of 2 of each other at this load
	for i := 1; i < 3; i++ {
		if lat[i] < lat[0]/2 || lat[i] > lat[0]*2 {
			t.Fatalf("variant %d latency %v wildly different from window %v", i, lat[i], lat[0])
		}
	}
	if Window.String() == "" || PaperInsidePower.String() == "" ||
		PaperOutsidePower.String() == "" || BlockingModel(9).String() != "unknown" {
		t.Fatal("BlockingModel.String broken")
	}
}

func TestNHopAndNbcModels(t *testing.T) {
	// The model must also evaluate the escape-only schemes; Nbc's
	// windows dominate NHop's single level, so NHop blocks at least
	// as often and is at least as slow.
	rNH, err := EvaluateStar(5, 4, 32, 0.006, routing.NHop, Window)
	if err != nil {
		t.Fatal(err)
	}
	rNbc, err := EvaluateStar(5, 4, 32, 0.006, routing.Nbc, Window)
	if err != nil {
		t.Fatal(err)
	}
	rEn, err := EvaluateStar(5, 6, 32, 0.006, routing.EnhancedNbc, Window)
	if err != nil {
		t.Fatal(err)
	}
	if rNH.MeanBlocking < rNbc.MeanBlocking-1e-12 {
		t.Fatalf("NHop blocking %v below Nbc %v", rNH.MeanBlocking, rNbc.MeanBlocking)
	}
	if rNH.Latency < rNbc.Latency-1e-9 {
		t.Fatalf("NHop latency %v below Nbc %v", rNH.Latency, rNbc.Latency)
	}
	if rEn.MeanBlocking > rNbc.MeanBlocking+1e-12 {
		t.Fatalf("Enhanced-Nbc blocking %v above Nbc %v", rEn.MeanBlocking, rNbc.MeanBlocking)
	}
}

func TestHypercubeModel(t *testing.T) {
	cp, err := NewCubePaths(7)
	if err != nil {
		t.Fatal(err)
	}
	g := hypercube.MustNew(7)
	r, err := Evaluate(Config{
		Paths: cp, Top: g, Kind: routing.EnhancedNbc, V: 6, MsgLen: 32, Rate: 0.004,
	})
	if err != nil {
		t.Fatal(err)
	}
	zero := 32 + g.AvgDistance() + 1
	if r.Latency <= zero || r.Latency > 4*zero {
		t.Fatalf("Q7 latency %v implausible (zero-load %v)", r.Latency, zero)
	}
}

func TestResultDiagnostics(t *testing.T) {
	r, err := EvaluateStar(5, 9, 32, 0.012, routing.EnhancedNbc, Window)
	if err != nil {
		t.Fatal(err)
	}
	if r.Utilization <= 0 || r.Utilization >= 1 {
		t.Fatalf("utilization %v", r.Utilization)
	}
	var sum float64
	for _, p := range r.VCOccupancy {
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("occupancy sums to %v", sum)
	}
	if r.Multiplexing < 1 || r.Multiplexing > 9 {
		t.Fatalf("multiplexing %v", r.Multiplexing)
	}
	if r.MeanBlocking < 0 || r.MeanBlocking > 1 {
		t.Fatalf("mean blocking %v", r.MeanBlocking)
	}
	if got := queueing.Multiplexing(r.VCOccupancy); math.Abs(got-r.Multiplexing) > 1e-12 {
		t.Fatal("multiplexing inconsistent with occupancy")
	}
}

func TestEligibleCountBounds(t *testing.T) {
	g := stargraph.MustNew(5)
	spec := routing.MustNew(routing.EnhancedNbc, g, 6)
	occ := queueing.VCOccupancy(0.01, 40, 6)
	bs := newBlockingState(spec, occ, Window)
	for d := 1; d <= 6; d++ {
		for lvl := 0; lvl <= 3; lvl++ {
			for _, neg := range []bool{true, false} {
				h := Hop{F: 2, D: d, NegTaken: lvl, HopNeg: neg}
				s := bs.eligibleCount(lvl, h)
				if s < spec.V1 || s > spec.V() {
					t.Fatalf("eligible count %d outside [V1,V] for %+v", s, h)
				}
			}
		}
	}
	if bs.pvc0 <= 0 || bs.pvc0 > 1 {
		t.Fatalf("pvc0 %v", bs.pvc0)
	}
}

func TestEvalBlockingBounds(t *testing.T) {
	g := stargraph.MustNew(5)
	spec := routing.MustNew(routing.EnhancedNbc, g, 6)
	for _, mode := range []BlockingModel{Window, PaperInsidePower, PaperOutsidePower} {
		bs := newBlockingState(spec, queueing.VCOccupancy(0.02, 50, 6), mode)
		for f := 0; f <= 4; f++ {
			for d := 1; d <= 6; d++ {
				p := bs.Eval(Hop{F: f, D: d, NegTaken: 1, HopNeg: d%2 == 0})
				if p < 0 || p > 1 {
					t.Fatalf("%v: blocking %v for f=%d d=%d", mode, p, f, d)
				}
				if f == 0 && p != 0 {
					t.Fatalf("f=0 must not block")
				}
			}
		}
	}
}

func BenchmarkEvaluateS5(b *testing.B) {
	sp, _ := NewStarPaths(5)
	g := stargraph.MustNew(5)
	cfg := Config{Paths: sp, Top: g, Kind: routing.EnhancedNbc, V: 6, MsgLen: 32, Rate: 0.01}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Evaluate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvaluateS7(b *testing.B) {
	sp, _ := NewStarPaths(7)
	g := stargraph.MustNew(7)
	cfg := Config{Paths: sp, Top: g, Kind: routing.EnhancedNbc, V: 8, MsgLen: 32, Rate: 0.002}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Evaluate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func TestPerClassDecomposition(t *testing.T) {
	r, err := EvaluateStar(5, 6, 32, 0.01, routing.EnhancedNbc, Window)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.PerClass) == 0 {
		t.Fatal("no per-class decomposition")
	}
	var weighted, wsum float64
	prevByH := map[int]float64{}
	for _, c := range r.PerClass {
		if c.NetLatency < 32+float64(c.H) {
			t.Fatalf("class %s latency %v below M+h", c.Label, c.NetLatency)
		}
		if c.Blocking < 0 {
			t.Fatalf("class %s negative blocking %v", c.Label, c.Blocking)
		}
		weighted += c.Weight * c.NetLatency
		wsum += c.Weight
		if c.NetLatency > prevByH[c.H] {
			prevByH[c.H] = c.NetLatency
		}
	}
	if math.Abs(wsum-1) > 1e-9 {
		t.Fatalf("class weights sum to %v", wsum)
	}
	if math.Abs(weighted-r.NetLatency) > 0.5 {
		t.Fatalf("weighted class latency %v vs S̄ %v (damped iterate)", weighted, r.NetLatency)
	}
	// farther classes must cost at least as much as the nearest ones
	if prevByH[1] >= prevByH[6] {
		t.Fatalf("distance-1 classes (%v) not cheaper than distance-6 (%v)",
			prevByH[1], prevByH[6])
	}
}
