package model

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"starperf/internal/perm"
	"starperf/internal/stargraph"
)

// ErrSelfCheck classifies failures of the model's internal
// cross-validation (the combinatorial type table against the
// closed-form distance distribution): a wrapped ErrSelfCheck means
// the model's own tables are inconsistent, not that the caller's
// configuration was wrong.
var ErrSelfCheck = errors.New("model: self-check failed")

// ctype is the canonical residual-permutation state used by the
// star-graph path dynamic program: the length of the cycle through
// position 1 (0 when position 1 is home) and the multiset of the
// remaining non-trivial cycle lengths, sorted descending. The
// profitable-move structure of minimal star-graph routing — how many
// moves exist and which state each leads to — depends only on this
// type, which is what makes the model polynomial instead of
// enumerating up to n! paths.
type ctype struct {
	first  int
	others []int // descending, each ≥ 2
}

func (t ctype) key() string {
	var b strings.Builder
	b.WriteString(strconv.Itoa(t.first))
	for _, l := range t.others {
		b.WriteByte(':')
		b.WriteString(strconv.Itoa(l))
	}
	return b.String()
}

// displaced returns m, the number of displaced symbols.
func (t ctype) displaced() int {
	m := t.first
	for _, l := range t.others {
		m += l
	}
	return m
}

// cycles returns c, the number of non-trivial cycles.
func (t ctype) cycles() int {
	c := len(t.others)
	if t.first > 0 {
		c++
	}
	return c
}

// dist returns the star-graph distance of any permutation of this
// type: m+c when position 1 is home, m+c−2 otherwise.
func (t ctype) dist() int {
	m := t.displaced()
	if m == 0 {
		return 0
	}
	if t.first == 0 {
		return m + t.cycles()
	}
	return m + t.cycles() - 2
}

// fanout returns f, the number of profitable moves: m when position 1
// is home, 1 + (m − L) otherwise.
func (t ctype) fanout() int {
	if t.first == 0 {
		return t.displaced()
	}
	return 1 + t.displaced() - t.first
}

// isTerminal reports whether the type is the identity.
func (t ctype) isTerminal() bool { return t.first == 0 && len(t.others) == 0 }

func typeOf(p perm.Permutation) ctype {
	pt := p.Type()
	return ctype{first: pt.FirstLen, others: pt.Others}
}

// transition is one class of profitable moves out of a type: mult
// distinct generator moves each leading to a permutation of type to.
type transition struct {
	to   ctype
	mult int
}

// withoutOne returns others with one occurrence of l removed,
// preserving descending order.
func withoutOne(others []int, l int) []int {
	out := make([]int, 0, len(others)-1)
	removed := false
	for _, x := range others {
		if !removed && x == l {
			removed = true
			continue
		}
		out = append(out, x)
	}
	return out
}

// withAdded returns others with l inserted, preserving descending
// order.
func withAdded(others []int, l int) []int {
	out := make([]int, 0, len(others)+1)
	placed := false
	for _, x := range others {
		if !placed && l > x {
			out = append(out, l)
			placed = true
		}
		out = append(out, x)
	}
	if !placed {
		out = append(out, l)
	}
	return out
}

// transitions enumerates the profitable-move classes out of t,
// derived from the case analysis of the star-graph distance formula
// (see stargraph.ProfitableDims):
//
//   - position 1 home: swapping with any position of a cycle of
//     length L (L moves per such cycle) pulls position 1 into that
//     cycle → first = L+1;
//   - otherwise: the single move g_x sends the front symbol home,
//     shortening the first cycle (or closing it when L = 2); and
//     swapping with any position of a different non-trivial cycle
//     (L_c moves each) merges it into the first cycle.
//
// The multiplicities sum to fanout(), asserted in tests.
func (t ctype) transitions() []transition {
	var out []transition
	if t.first == 0 {
		seen := map[int]int{}
		for _, l := range t.others {
			seen[l]++
		}
		for l, mu := range seen {
			out = append(out, transition{
				to:   ctype{first: l + 1, others: withoutOne(t.others, l)},
				mult: mu * l,
			})
		}
		sortTransitions(out)
		return out
	}
	// (a) send the front symbol home
	if t.first == 2 {
		out = append(out, transition{to: ctype{first: 0, others: t.others}, mult: 1})
	} else {
		out = append(out, transition{to: ctype{first: t.first - 1, others: t.others}, mult: 1})
	}
	// (b) merge another cycle into the first one
	seen := map[int]int{}
	for _, l := range t.others {
		seen[l]++
	}
	for l, mu := range seen {
		out = append(out, transition{
			to:   ctype{first: t.first + l, others: withoutOne(t.others, l)},
			mult: mu * l,
		})
	}
	sortTransitions(out)
	return out
}

func sortTransitions(ts []transition) {
	sort.Slice(ts, func(i, j int) bool { return ts[i].to.key() < ts[j].to.key() })
}

// destClass is one equivalence class of destinations: all
// destinations whose relative permutation has the given type are at
// the same distance and expose the same minimal-path structure.
type destClass struct {
	t     ctype
	h     int
	count uint64 // permutations of this type among the n! nodes
}

// enumerateTypes generates every cycle type of permutations of n
// symbols together with its exact population, combinatorially:
//
//	count(first=a≥2, others) = C(n−1,a−1)·(a−1)! · place(n−a, others)
//	count(first=0,  others) =                    place(n−1, others)
//
// where place(ν, {l^μ_l}) = ν! / ((ν−Σl)! · Π l^{μ_l} · Π μ_l!) is
// the number of permutations of ν elements whose non-trivial cycles
// are exactly the multiset. Σ count = n! (asserted in tests).
func enumerateTypes(n int) []destClass {
	var out []destClass
	addWithFirst := func(a int, avail int, prefixCount float64) {
		// enumerate partitions of subsets of avail into parts ≥ 2
		var rec func(maxPart, used int, parts []int, ways float64)
		rec = func(maxPart, used int, parts []int, ways float64) {
			t := ctype{first: a, others: append([]int(nil), parts...)}
			out = append(out, destClass{t: t, h: t.dist(), count: uint64(prefixCount*ways + 0.5)})
			for l := 2; l <= maxPart && used+l <= avail; l++ {
				// count multiplicity handling: divide by μ! lazily —
				// enforce descending parts and divide by the number of
				// equal predecessors instead.
				run := 1
				for i := len(parts) - 1; i >= 0 && parts[i] == l; i-- {
					run++
				}
				// ways multiplier for adding one cycle of length l on
				// the remaining (avail−used) elements:
				// C(avail−used, l)·(l−1)! / run
				w := ways * binomF(avail-used, l) * factF(l-1) / float64(run)
				rec(l, used+l, append(parts, l), w)
			}
		}
		rec(avail, 0, nil, 1)
	}
	// position 1 home
	addWithFirst(0, n-1, 1)
	// position 1 in a cycle of length a
	for a := 2; a <= n; a++ {
		prefix := binomF(n-1, a-1) * factF(a-1)
		addWithFirst(a, n-a, prefix)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].h != out[j].h {
			return out[i].h < out[j].h
		}
		return out[i].t.key() < out[j].t.key()
	})
	return out
}

func factF(k int) float64 {
	f := 1.0
	for i := 2; i <= k; i++ {
		f *= float64(i)
	}
	return f
}

func binomF(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	r := 1.0
	for i := 1; i <= k; i++ {
		r = r * float64(n-k+i) / float64(i)
	}
	return r
}

// checkTypeTable validates the enumeration against the closed-form
// distance distribution; it is exercised directly by tests and cheap
// enough to run at model construction for small n.
func checkTypeTable(n int, classes []destClass) error {
	dist := stargraph.DistanceDistribution(n)
	got := make([]uint64, len(dist))
	var total uint64
	for _, c := range classes {
		if c.h >= len(got) {
			return fmt.Errorf("%w: type %s at distance %d beyond diameter", ErrSelfCheck, c.t.key(), c.h)
		}
		got[c.h] += c.count
		total += c.count
	}
	if total != perm.Factorial(n) {
		return fmt.Errorf("%w: type counts sum to %d, want %d", ErrSelfCheck, total, perm.Factorial(n))
	}
	for h := range dist {
		if got[h] != dist[h] {
			return fmt.Errorf("%w: %d permutations at distance %d, want %d", ErrSelfCheck, got[h], h, dist[h])
		}
	}
	return nil
}
