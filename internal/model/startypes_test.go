package model

import (
	"testing"

	"starperf/internal/perm"
	"starperf/internal/stargraph"
)

// TestEnumerateTypesMatchesBruteForce compares the combinatorial type
// table against direct enumeration of all n! permutations.
func TestEnumerateTypesMatchesBruteForce(t *testing.T) {
	for n := 2; n <= 7; n++ {
		want := map[string]uint64{}
		perm.ForEach(n, func(p perm.Permutation) bool {
			want[typeOf(p).key()]++
			return true
		})
		got := map[string]uint64{}
		for _, c := range enumerateTypes(n) {
			if _, dup := got[c.t.key()]; dup {
				t.Fatalf("n=%d duplicate type %s", n, c.t.key())
			}
			got[c.t.key()] = c.count
		}
		if len(got) != len(want) {
			t.Fatalf("n=%d: %d types, want %d", n, len(got), len(want))
		}
		for k, w := range want {
			if got[k] != w {
				t.Fatalf("n=%d type %s count %d, want %d", n, k, got[k], w)
			}
		}
	}
}

func TestCheckTypeTable(t *testing.T) {
	for n := 2; n <= 10; n++ {
		if err := checkTypeTable(n, enumerateTypes(n)); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestTypeDistAndFanout(t *testing.T) {
	// spot values
	id := ctype{}
	if id.dist() != 0 || !id.isTerminal() {
		t.Fatal("identity type broken")
	}
	swap := ctype{first: 2} // q = (1 x)
	if swap.dist() != 1 || swap.fanout() != 1 {
		t.Fatalf("transposition through 1: d=%d f=%d", swap.dist(), swap.fanout())
	}
	pair := ctype{first: 0, others: []int{2}} // 1 fixed, one 2-cycle
	if pair.dist() != 3 || pair.fanout() != 2 {
		t.Fatalf("remote transposition: d=%d f=%d", pair.dist(), pair.fanout())
	}
}

// TestTransitionsMatchGraph exhaustively verifies the type-transition
// rules against the concrete star graph: for every node, the
// multiset of profitable-successor types must equal transitions().
func TestTransitionsMatchGraph(t *testing.T) {
	for n := 2; n <= 6; n++ {
		g := stargraph.MustNew(n)
		for v := 1; v < g.N(); v++ {
			typ := typeOf(g.Perm(v))
			want := map[string]int{}
			for _, dim := range g.ProfitableDims(v, 0, nil) {
				next := g.Neighbor(v, dim)
				want[typeOf(g.Perm(next)).key()]++
			}
			trs := typ.transitions()
			if len(trs) != len(want) {
				t.Fatalf("n=%d %v: %d transition classes, want %d",
					n, g.Perm(v), len(trs), len(want))
			}
			fsum := 0
			for _, tr := range trs {
				if want[tr.to.key()] != tr.mult {
					t.Fatalf("n=%d %v -> %s: mult %d, want %d",
						n, g.Perm(v), tr.to.key(), tr.mult, want[tr.to.key()])
				}
				if tr.to.dist() != typ.dist()-1 {
					t.Fatalf("transition does not reduce distance by 1")
				}
				fsum += tr.mult
			}
			if fsum != typ.fanout() {
				t.Fatalf("n=%d %v: mult sum %d != fanout %d", n, g.Perm(v), fsum, typ.fanout())
			}
		}
	}
}

func TestMultisetHelpers(t *testing.T) {
	o := []int{4, 3, 3, 2}
	got := withoutOne(o, 3)
	if len(got) != 3 || got[0] != 4 || got[1] != 3 || got[2] != 2 {
		t.Fatalf("withoutOne: %v", got)
	}
	got = withAdded(got, 5)
	if got[0] != 5 || len(got) != 4 {
		t.Fatalf("withAdded: %v", got)
	}
	got = withAdded([]int{4, 2}, 3)
	if got[0] != 4 || got[1] != 3 || got[2] != 2 {
		t.Fatalf("withAdded middle: %v", got)
	}
}

func TestTypeKeyStable(t *testing.T) {
	a := ctype{first: 3, others: []int{4, 2}}
	b := ctype{first: 3, others: []int{4, 2}}
	if a.key() != b.key() {
		t.Fatal("equal types different keys")
	}
	c := ctype{first: 0, others: []int{3, 4, 2}}
	if a.key() == c.key() {
		t.Fatal("distinct types same key")
	}
}
