package desim

import (
	"testing"

	"starperf/internal/hypercube"
	"starperf/internal/mesh"
	"starperf/internal/routing"
	"starperf/internal/stargraph"
	"starperf/internal/topology"
	"starperf/internal/torus"
	"starperf/internal/traffic"
)

// TestRandomConfigSoak runs the simulator with paranoid invariant
// checking across a randomised matrix of topologies, algorithms,
// policies, VC budgets, buffer depths and length distributions —
// the broad-spectrum robustness net behind the targeted tests.
func TestRandomConfigSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak is slow")
	}
	rng := traffic.NewRNG(20240707)
	tops := []topology.Topology{
		stargraph.MustNew(4),
		stargraph.MustNew(5),
		hypercube.MustNew(4),
		torus.MustNew(4, 2),
		torus.MustNew(6, 2),
		mesh.MustNew(4, 2),
		mesh.MustNew(3, 3),
	}
	kinds := []routing.Kind{routing.NHop, routing.Nbc, routing.EnhancedNbc}
	policies := []routing.Policy{
		routing.PreferClassA, routing.RandomAny,
		routing.LowestEscapeFirst, routing.FirstProfitable,
	}
	lens := []traffic.LengthDist{
		nil,
		traffic.BimodalLen{Short: 4, Long: 28, PLong: 0.5},
		traffic.UniformLen{Min: 2, Max: 30},
	}
	for trial := 0; trial < 24; trial++ {
		top := tops[rng.Intn(len(tops))]
		kind := kinds[rng.Intn(len(kinds))]
		vmin := topology.MinEscapeVCs(top.Diameter())
		if kind == routing.EnhancedNbc {
			vmin++
		}
		v := vmin + rng.Intn(3)
		spec, err := routing.New(kind, top, v)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		cfg := Config{
			Top:           top,
			Spec:          spec,
			Policy:        policies[rng.Intn(len(policies))],
			Rate:          0.001 + 0.02*rng.Float64(),
			MsgLen:        4 + rng.Intn(28),
			LenDist:       lens[rng.Intn(len(lens))],
			BufCap:        1 + rng.Intn(3),
			Seed:          rng.Uint64(),
			WarmupCycles:  500,
			MeasureCycles: 3000,
			DrainCycles:   30000,
			Paranoid:      true,
			ParanoidEvery: 32,
		}
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("trial %d (%s %v %v V=%d): %v",
				trial, top.Name(), kind, cfg.Policy, v, err)
		}
		if res.Deadlocked {
			t.Fatalf("trial %d (%s %v %v V=%d) deadlocked",
				trial, top.Name(), kind, cfg.Policy, v)
		}
		if res.Delivered == 0 && res.Generated > 10 {
			t.Fatalf("trial %d: generated %d, delivered none", trial, res.Generated)
		}
	}
}
