package desim

import (
	"strings"
	"testing"

	"starperf/internal/hypercube"
	"starperf/internal/routing"
)

// wireRingDeadlock hand-builds a genuine circular wait on the 4-cycle
// Q2 that the eligibility rules themselves can never produce: four
// messages around the ring 0→1→3→2→0, each owning the single class-b
// virtual channel the next message's NHop state makes it request. The
// level pattern 0,1,0,1 matches each requester's colour (a colour-1
// router forces level NegHops+1, a colour-0 router level NegHops), so
// every message's unique profitable channel offers exactly one
// eligible VC — the one held by its neighbour. No flit can ever
// advance; only the watchdog can end the run.
func wireRingDeadlock(t *testing.T, cfg Config) *network {
	t.Helper()
	nw, err := newNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ring := []int{0, 1, 3, 2}
	dims := []int{0, 1, 0, 1} // channel ring[i] → ring[i+1]
	vcOf := []int{0, 1, 0, 1} // class-b level each message holds
	for i := range ring {
		node, next := ring[i], ring[(i+1)%4]
		if got := cfg.Top.Neighbor(node, dims[i]); got != next {
			t.Fatalf("ring wiring: Neighbor(%d,%d) = %d, want %d", node, dims[i], got, next)
		}
		m := nw.newMessage()
		m.id = uint64(i)
		m.src = node
		m.dst = ring[(i+2)%4]
		m.length = 2
		m.genCycle = 0
		m.injCycle = 0
		m.waitStart = -1
		m.measured = true
		m.routing = true
		m.st = routing.State{NegHops: 0, Level: vcOf[i]}
		gvc := nw.chanIdx(node, dims[i])*int32(nw.v) + int32(vcOf[i])
		m.headVC = gvc
		m.curNode = int32(next)
		nw.owner[gvc] = m
		nw.prev[gvc] = -1
		nw.buf[gvc] = m.length  // head flit buffered at the router
		nw.sent[gvc] = m.length // nothing left to send on this channel
		nw.grantCycle[gvc] = 0
		nw.markBusy(gvc)
		nw.res.Generated++
		nw.measuredInFly++
		nw.routePending = append(nw.routePending, m)
	}
	return nw
}

func deadlockConfig() Config {
	return Config{
		Top:           hypercube.MustNew(2),
		Spec:          routing.Spec{Kind: routing.NHop, V1: 0, V2: 2, MaxNeg: 1},
		Rate:          0, // traffic is hand-wired, not generated
		MsgLen:        2,
		MeasureCycles: 1,
		DrainCycles:   1 << 20,
	}
}

// TestWatchdogDetectsWiredDeadlock injects an artificial cyclic
// channel dependency and checks the progress watchdog converts it
// into a graceful diagnosis within bounded cycles, instead of burning
// the full million-cycle drain window.
func TestWatchdogDetectsWiredDeadlock(t *testing.T) {
	cfg := deadlockConfig()
	cfg.DeadlockThreshold = 300
	nw := wireRingDeadlock(t, cfg)
	if err := nw.loop(); err != nil {
		t.Fatal(err)
	}
	nw.finish()
	res := &nw.res
	if !res.Deadlocked || !res.Aborted {
		t.Fatalf("watchdog missed the deadlock: Deadlocked=%v Aborted=%v", res.Deadlocked, res.Aborted)
	}
	if res.Cycles > cfg.DeadlockThreshold+16 {
		t.Fatalf("abort took %d cycles, threshold %d", res.Cycles, cfg.DeadlockThreshold)
	}
	if res.StallCycle <= 0 || res.StallCycle >= res.Cycles {
		t.Fatalf("StallCycle %d outside run of %d cycles", res.StallCycle, res.Cycles)
	}
	if !strings.Contains(res.AbortReason, "no flit advanced") {
		t.Fatalf("AbortReason %q", res.AbortReason)
	}
	// the trace names the oldest message's route: generation and
	// injection of message 0 at node 0
	if len(res.StallTrace) < 2 ||
		res.StallTrace[0].Kind != EvGenerate || res.StallTrace[0].Msg != 0 ||
		res.StallTrace[1].Kind != EvInject || res.StallTrace[1].Node != 0 {
		t.Fatalf("StallTrace %+v", res.StallTrace)
	}
	if !res.Saturated() {
		t.Fatal("an aborted run must report Saturated")
	}
}

// TestWatchdogOverAge arms only the per-message age limit on the same
// wired deadlock: with the no-progress threshold out of reach, the
// over-age scan must abort the run near its 1024-cycle cadence and
// without flagging Deadlocked.
func TestWatchdogOverAge(t *testing.T) {
	cfg := deadlockConfig()
	cfg.DeadlockThreshold = 1 << 30
	cfg.MaxMsgAge = 100
	nw := wireRingDeadlock(t, cfg)
	if err := nw.loop(); err != nil {
		t.Fatal(err)
	}
	nw.finish()
	res := &nw.res
	if !res.Aborted || res.Deadlocked {
		t.Fatalf("over-age watchdog: Aborted=%v Deadlocked=%v (%s)",
			res.Aborted, res.Deadlocked, res.AbortReason)
	}
	if res.Cycles > 2*watchdogEvery {
		t.Fatalf("abort took %d cycles, expected within ~%d", res.Cycles, watchdogEvery)
	}
	if !strings.Contains(res.AbortReason, "in flight for") {
		t.Fatalf("AbortReason %q", res.AbortReason)
	}
	if len(res.StallTrace) == 0 {
		t.Fatal("empty StallTrace")
	}
}

// TestWatchdogQuietOnHealthyRun guards against false positives: a
// normal light-load run with the age watchdog armed must complete
// unaborted.
func TestWatchdogQuietOnHealthyRun(t *testing.T) {
	top := hypercube.MustNew(3)
	res, err := Run(Config{
		Top:           top,
		Spec:          routing.MustNew(routing.EnhancedNbc, top, 4),
		Rate:          0.02,
		MsgLen:        8,
		Seed:          9,
		WarmupCycles:  1000,
		MeasureCycles: 4000,
		MaxMsgAge:     20000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Aborted || res.Deadlocked {
		t.Fatalf("healthy run aborted: %s", res.AbortReason)
	}
	if res.Misroutes != 0 {
		t.Fatalf("misroutes on a fault-free topology: %d", res.Misroutes)
	}
}
