package desim

import (
	"strings"
	"testing"

	"starperf/internal/routing"
	"starperf/internal/stargraph"
)

// TestTraceWormholeOrdering audits the full life of every traced
// message: generate ≤ inject < grants < deliver, grant count equal to
// injection + hops + ejection, strictly one hop per grant, and the
// last grant on the destination's ejection channel.
func TestTraceWormholeOrdering(t *testing.T) {
	g := stargraph.MustNew(4)
	cfg := Config{
		Top:           g,
		Spec:          routing.MustNew(routing.EnhancedNbc, g, 5),
		Rate:          0.004,
		MsgLen:        8,
		Seed:          6,
		WarmupCycles:  0,
		MeasureCycles: 4000,
		TraceCap:      200000,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) == 0 || res.TraceDropped != 0 {
		t.Fatalf("trace empty or truncated (%d events, %d dropped)",
			len(res.Trace), res.TraceDropped)
	}
	type life struct {
		gen, inj, del    *Event
		grants           []Event
		src, dst         int32
		prevGrantCycle   int64
		sawEjectionGrant bool
	}
	lives := map[uint64]*life{}
	for i := range res.Trace {
		e := res.Trace[i]
		l := lives[e.Msg]
		if l == nil {
			l = &life{prevGrantCycle: -1}
			lives[e.Msg] = l
		}
		switch e.Kind {
		case EvGenerate:
			l.gen = &res.Trace[i]
			l.src = e.Node
		case EvInject:
			l.inj = &res.Trace[i]
		case EvGrant:
			l.grants = append(l.grants, e)
			if e.Cycle < l.prevGrantCycle {
				t.Fatalf("msg %d grants out of order", e.Msg)
			}
			l.prevGrantCycle = e.Cycle
		case EvDeliver:
			l.del = &res.Trace[i]
			l.dst = e.Node
		}
	}
	audited := 0
	slots := g.Degree() + 2
	for id, l := range lives {
		if l.del == nil {
			continue // still in flight at the end of the run
		}
		if l.gen == nil || l.inj == nil {
			t.Fatalf("msg %d delivered without generate/inject", id)
		}
		if l.gen.Cycle > l.inj.Cycle || l.inj.Cycle >= l.del.Cycle {
			t.Fatalf("msg %d timeline broken: gen %d inj %d del %d",
				id, l.gen.Cycle, l.inj.Cycle, l.del.Cycle)
		}
		// reconstruct the path from the grant list: h network grants
		// then one ejection grant (the injection grant is the EvInject
		// event itself)
		if len(l.grants) < 1 {
			t.Fatalf("msg %d has %d grants", id, len(l.grants))
		}
		if int(l.inj.VC)/cfg.Spec.V()%slots != g.Degree()+1 || l.inj.Node != l.src {
			t.Fatalf("msg %d inject event not on source injection channel", id)
		}
		first := l.grants[0]
		if first.Node != l.src || int(first.VC)/cfg.Spec.V()%slots >= g.Degree() {
			t.Fatalf("msg %d first grant not a network channel at the source", id)
		}
		last := l.grants[len(l.grants)-1]
		if last.Node != l.dst || int(last.VC)/cfg.Spec.V()%slots != g.Degree() {
			t.Fatalf("msg %d last grant not on destination ejection channel", id)
		}
		hops := len(l.grants) - 1
		wantHops := g.Distance(int(l.src), int(l.dst))
		if hops != wantHops {
			t.Fatalf("msg %d took %d hops, distance is %d", id, hops, wantHops)
		}
		audited++
	}
	if audited < 50 {
		t.Fatalf("only %d complete message lives audited", audited)
	}
}

func TestTraceCapacity(t *testing.T) {
	g := stargraph.MustNew(4)
	cfg := Config{
		Top:           g,
		Spec:          routing.MustNew(routing.EnhancedNbc, g, 5),
		Rate:          0.02,
		MsgLen:        8,
		Seed:          6,
		WarmupCycles:  0,
		MeasureCycles: 4000,
		TraceCap:      100,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) != 100 || res.TraceDropped == 0 {
		t.Fatalf("capacity not enforced: %d events, %d dropped",
			len(res.Trace), res.TraceDropped)
	}
}

func TestEventString(t *testing.T) {
	e := Event{Cycle: 5, Kind: EvGrant, Msg: 3, Node: 2, VC: 7}
	s := e.String()
	if !strings.Contains(s, "grant") || !strings.Contains(s, "msg=3") {
		t.Fatalf("event string %q", s)
	}
	if EvGenerate.String() != "generate" || EvDeliver.String() != "deliver" ||
		EvInject.String() != "inject" || EventKind(9).String() == "" {
		t.Fatal("EventKind strings broken")
	}
}
