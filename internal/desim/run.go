package desim

import (
	"fmt"
	"math"

	"starperf/internal/cfgerr"
	"starperf/internal/routing"
	"starperf/internal/stats"
	"starperf/internal/topology"
	"starperf/internal/traffic"
)

// Run executes one simulation described by cfg and returns its
// measurements. It is deterministic for a fixed cfg, and byte-for-byte
// independent of whether a Config.Observer is attached.
func Run(cfg Config) (*Result, error) {
	nw, err := newNetwork(cfg)
	if err != nil {
		return nil, err
	}
	if nw.obs != nil {
		nw.obs.BeginRun(RunInfo{
			Topology: nw.top.Name(),
			Nodes:    nw.top.N(),
			Degree:   nw.deg,
			Slots:    nw.slots,
			V:        nw.v,
			Cfg:      nw.cfg,
			Probe:    nw,
		})
	}
	if err := nw.loop(); err != nil {
		return nil, err
	}
	nw.finish()
	if nw.obs != nil {
		nw.obs.EndRun(&nw.res)
	}
	return &nw.res, nil
}

func newNetwork(cfg Config) (*network, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.BufCap == 0 {
		cfg.BufCap = 2
		if cfg.CutThrough {
			cfg.BufCap = cfg.MsgLen
		}
	}
	if cfg.CutThrough && cfg.BufCap < cfg.MsgLen {
		return nil, cfgerr.Errorf("desim: cut-through needs BufCap ≥ MsgLen (%d < %d)",
			cfg.BufCap, cfg.MsgLen)
	}
	if cfg.BufCap < 1 || cfg.BufCap > 1<<14 {
		return nil, cfgerr.Errorf("desim: buffer depth %d out of range", cfg.BufCap)
	}
	if cfg.DrainCycles == 0 {
		cfg.DrainCycles = 4 * (cfg.WarmupCycles + cfg.MeasureCycles)
	}
	if cfg.DeadlockThreshold == 0 {
		cfg.DeadlockThreshold = 50000
	}
	top := cfg.Top
	n := top.N()
	deg := top.Degree()
	v := cfg.Spec.V()
	slots := deg + 2
	numVC := n * slots * v
	nw := &network{
		cfg:          cfg,
		top:          top,
		spec:         cfg.Spec,
		deg:          deg,
		slots:        slots,
		v:            v,
		bufCap:       int16(cfg.BufCap),
		msgLen:       int16(cfg.MsgLen),
		pattern:      cfg.Pattern,
		owner:        make([]*message, numVC),
		prev:         make([]int32, numVC),
		buf:          make([]int16, numVC),
		sent:         make([]int16, numVC),
		drained:      make([]int16, numVC),
		rr:           make([]uint8, n*slots),
		queueHead:    make([]*message, n),
		queueTail:    make([]*message, n),
		queueLen:     make([]int, n),
		rng:          traffic.NewRNG(cfg.Seed),
		dimBuf:       make([]int, 0, deg),
		eligBuf:      make([]int, 0, v),
		pairBuf:      make([]pair, 0, deg*v),
		obs:          cfg.Observer,
		wantEvents:   cfg.TraceCap > 0 || cfg.Observer != nil,
		measureStart: cfg.WarmupCycles,
		measureEnd:   cfg.WarmupCycles + cfg.MeasureCycles,
	}
	for i := range nw.prev {
		nw.prev[i] = -1
	}
	if nw.pattern == nil {
		nw.pattern = traffic.Uniform{N: n}
	}
	if cfg.Rate > 0 {
		nw.arrivals = make([]traffic.Arrivals, n)
		for i := range nw.arrivals {
			rng := nw.rng.Split()
			if cfg.NewArrivals != nil {
				nw.arrivals[i] = cfg.NewArrivals(rng, cfg.Rate)
			} else {
				nw.arrivals[i] = traffic.NewPoisson(rng, cfg.Rate)
			}
		}
	}
	nw.res.VCBusyHist = make([]uint64, v+1)
	nw.res.ClassBLevelUse = make([]uint64, cfg.Spec.V2)
	nw.res.LatencyHist = stats.NewHistogram(1 << 14)
	nw.grantCount = make([]uint32, n*slots)
	nw.grantCycle = make([]int64, numVC)
	nw.busyVCs = make([]int16, n*slots)
	nw.activePos = make([]int32, n*slots)
	for i := range nw.activePos {
		nw.activePos[i] = -1
	}
	nw.chanExists = make([]bool, n*slots)
	for node := 0; node < n; node++ {
		for slot := 0; slot < slots; slot++ {
			ch := int(nw.chanIdx(node, slot))
			nw.chanExists[ch] = slot >= deg || topology.HasChannel(top, node, slot)
		}
	}
	if err := nw.wireFaults(); err != nil {
		return nil, err
	}
	return nw, nil
}

// wireFaults resolves the fault view of the topology, when it has
// one: per-channel transient flap windows (ChannelFlapper), the node
// liveness mask and a live-nodes-only default traffic pattern
// (NodeHealth), and the injection-time reachability check. Fault-free
// topologies leave every field nil and the hot loops untouched.
func (nw *network) wireFaults() error {
	n := nw.top.N()
	if f, ok := nw.top.(ChannelFlapper); ok {
		for node := 0; node < n; node++ {
			for dim := 0; dim < nw.deg; dim++ {
				period, down, phase, has := f.FlapWindow(node, dim)
				if !has {
					continue
				}
				if period <= 0 || down < 0 || down >= period || phase < 0 {
					return cfgerr.Errorf("desim: invalid flap window %d/%d/%d on channel (%d,%d)",
						down, period, phase, node, dim)
				}
				if nw.flapOfChan == nil {
					nw.flapOfChan = make([]int32, n*nw.slots)
					for i := range nw.flapOfChan {
						nw.flapOfChan[i] = -1
					}
				}
				nw.flapOfChan[nw.chanIdx(node, dim)] = int32(len(nw.flapWindows))
				nw.flapWindows = append(nw.flapWindows, flapWindow{period, down, phase})
			}
		}
	}
	if h, ok := nw.top.(NodeHealth); ok {
		nw.checkReach = true
		nw.nodeUp = make([]bool, n)
		var live []int
		for node := 0; node < n; node++ {
			nw.nodeUp[node] = h.NodeUp(node)
			if nw.nodeUp[node] {
				live = append(live, node)
			}
		}
		if nw.cfg.Rate > 0 && len(live) < 2 {
			return cfgerr.Errorf("desim: %s has %d live node(s); traffic needs at least 2",
				nw.top.Name(), len(live))
		}
		if nw.cfg.Pattern == nil {
			nw.pattern = uniformLive{nodes: live}
		}
		// dead nodes generate nothing: drop their arrival processes
		for node := 0; node < n && nw.arrivals != nil; node++ {
			if !nw.nodeUp[node] {
				nw.arrivals[node] = nil
			}
		}
	}
	return nil
}

// uniformLive draws destinations uniformly over the live nodes of a
// degraded topology, excluding the source — the fault-aware
// counterpart of traffic.Uniform.
type uniformLive struct{ nodes []int }

// Name identifies the pattern.
func (u uniformLive) Name() string { return "uniform-live" }

// Destination draws a live destination other than src.
func (u uniformLive) Destination(src int, rng *traffic.RNG) int {
	for {
		d := u.nodes[rng.Intn(len(u.nodes))]
		if d != src {
			return d
		}
	}
}

// linkUpChan reports whether channel ch's physical link is up this
// cycle (always true without a flap schedule).
func (nw *network) linkUpChan(ch int32) bool {
	fi := nw.flapOfChan[ch]
	if fi < 0 {
		return true
	}
	w := nw.flapWindows[fi]
	return (nw.cycle+w.phase)%w.period >= w.down
}

func (nw *network) loop() error {
	limit := nw.measureEnd + nw.cfg.DrainCycles
	paranoidEvery := nw.cfg.ParanoidEvery
	if paranoidEvery <= 0 {
		paranoidEvery = 64
	}
	for nw.cycle = 0; ; nw.cycle++ {
		if err := nw.doArrivals(); err != nil {
			return err
		}
		grants := nw.doInjection()
		grants += nw.doRouting()
		moved := nw.doTransfers()
		nw.doSampling()
		if nw.obs != nil {
			nw.obs.EndCycle(nw.cycle)
		}
		if nw.cfg.Paranoid && nw.cycle%paranoidEvery == 0 {
			if err := nw.checkInvariants(); err != nil {
				return fmt.Errorf("cycle %d: %w", nw.cycle, err)
			}
		}
		if (nw.cycle+1)%latencyInterval == 0 {
			nw.rollInterval()
		}
		if moved+grants > 0 {
			nw.lastProgress = nw.cycle
		} else if nw.res.Generated > nw.res.Delivered+uint64(nw.totalQueued) &&
			nw.cycle-nw.lastProgress > nw.cfg.DeadlockThreshold {
			nw.res.Deadlocked = true
			nw.abortRun(fmt.Sprintf("no flit advanced for %d cycles with %d messages in flight",
				nw.cycle-nw.lastProgress,
				nw.res.Generated-nw.res.Delivered-uint64(nw.totalQueued)))
			return nil
		}
		if nw.cfg.MaxMsgAge > 0 && (nw.cycle+1)%watchdogEvery == 0 && nw.checkOverAge() {
			return nil
		}
		if nw.cycle+1 >= nw.measureEnd {
			if nw.measuredInFly == 0 {
				nw.res.Drained = true
				return nil
			}
			if nw.cycle+1 >= limit {
				nw.res.Drained = nw.measuredInFly == 0
				return nil
			}
		}
	}
}

// rollInterval closes the current latency interval, carrying the
// previous mean forward through empty intervals.
func (nw *network) rollInterval() {
	mean := math.NaN()
	if nw.intervalCount > 0 {
		mean = nw.intervalSum / float64(nw.intervalCount)
	} else if n := len(nw.res.IntervalLatency); n > 0 {
		mean = nw.res.IntervalLatency[n-1]
	}
	if !math.IsNaN(mean) {
		nw.res.IntervalLatency = append(nw.res.IntervalLatency, mean)
	}
	nw.intervalSum, nw.intervalCount = 0, 0
}

func (nw *network) finish() {
	nw.res.Cycles = nw.cycle + 1
	nw.res.SuggestedWarmup = -1
	if d, ok := stats.MSER(nw.res.IntervalLatency); ok {
		nw.res.SuggestedWarmup = int64(d) * latencyInterval
	}
	nw.res.EndQueueLen = nw.totalQueued
	nw.res.Nodes = nw.top.N()
	var sumV, sumV2 float64
	for v, c := range nw.res.VCBusyHist {
		sumV += float64(v) * float64(c)
		sumV2 += float64(v*v) * float64(c)
	}
	if sumV > 0 {
		nw.res.Multiplexing = sumV2 / sumV
	} else {
		nw.res.Multiplexing = 1
	}
	// per-channel balance over existing network channels only
	var st stats.Stream
	for ch, c := range nw.grantCount {
		if ch%nw.slots < nw.deg && nw.chanExists[ch] {
			st.Add(float64(c))
		}
	}
	if st.Mean() > 0 {
		nw.res.ChannelGrantCV = st.StdDev() / st.Mean()
		window := nw.cycle + 1 - nw.measureStart
		if window > 0 {
			nw.res.ChannelRate = st.Mean() / float64(window)
		}
	}
}

// newMessage takes a message from the free list or allocates one.
func (nw *network) newMessage() *message {
	if m := nw.freeList; m != nil {
		nw.freeList = m.nextQueue
		*m = message{}
		return m
	}
	return &message{}
}

func (nw *network) doArrivals() error {
	if nw.arrivals == nil {
		return nil
	}
	now := float64(nw.cycle)
	for node, p := range nw.arrivals {
		if p == nil { // failed node: generates no traffic
			continue
		}
		for p.NextArrival() <= now {
			p.Pop()
			m := nw.newMessage()
			m.src = node
			m.dst = nw.pattern.Destination(node, nw.rng)
			if nw.checkReach && nw.top.Distance(node, m.dst) < 0 {
				// reject at injection: the destination is stranded
				// by the fault plan and the message could never
				// release the channels it would acquire
				return &routing.UnreachableError{Top: nw.top.Name(), Src: node, Dst: m.dst}
			}
			m.length = nw.msgLen
			if nw.cfg.LenDist != nil {
				l := nw.cfg.LenDist.Sample(nw.rng)
				if l < 1 {
					l = 1
				}
				if l > 1<<14 {
					l = 1 << 14
				}
				m.length = int16(l)
			}
			m.genCycle = nw.cycle
			m.measured = nw.cycle >= nw.measureStart && nw.cycle < nw.measureEnd
			m.id = nw.res.Generated
			nw.res.Generated++
			if nw.wantEvents {
				nw.traceEvent(Event{Cycle: nw.cycle, Kind: EvGenerate, Msg: m.id,
					Node: int32(node), VC: -1})
			}
			if m.measured {
				nw.measuredInFly++
			}
			nw.pushQueue(node, m)
		}
	}
	return nil
}

func (nw *network) pushQueue(node int, m *message) {
	if nw.queueTail[node] == nil {
		nw.queueHead[node] = m
	} else {
		nw.queueTail[node].nextQueue = m
	}
	nw.queueTail[node] = m
	m.nextQueue = nil
	nw.queueLen[node]++
	nw.totalQueued++
	if nw.queueLen[node] > nw.res.MaxQueueLen {
		nw.res.MaxQueueLen = nw.queueLen[node]
	}
}

func (nw *network) popQueue(node int) *message {
	m := nw.queueHead[node]
	nw.queueHead[node] = m.nextQueue
	if nw.queueHead[node] == nil {
		nw.queueTail[node] = nil
	}
	m.nextQueue = nil
	nw.queueLen[node]--
	nw.totalQueued--
	return m
}

// doInjection grants injection-channel VCs to source-queue heads.
// Nodes are visited from a rotating offset so no node is permanently
// favoured by iteration order.
func (nw *network) doInjection() int {
	if nw.totalQueued == 0 {
		return 0
	}
	n := nw.top.N()
	start := int(nw.cycle % int64(n))
	grants := 0
	for k := 0; k < n; k++ {
		node := start + k
		if node >= n {
			node -= n
		}
		m := nw.queueHead[node]
		if m == nil {
			continue
		}
		ch := nw.chanIdx(node, nw.deg+1)
		gvc := int32(-1)
		base := int(ch) * nw.v
		for vc := 0; vc < nw.v; vc++ {
			if nw.owner[base+vc] == nil {
				gvc = int32(base + vc)
				break
			}
		}
		if gvc < 0 {
			continue
		}
		nw.popQueue(node)
		m.injCycle = nw.cycle
		m.headVC = gvc
		m.curNode = int32(node)
		m.st = routing.InitialState()
		nw.owner[gvc] = m
		nw.prev[gvc] = -1
		nw.markBusy(gvc)
		if m.measured {
			nw.res.QueueTime.Add(float64(nw.cycle - m.genCycle))
		}
		if nw.wantEvents {
			nw.traceEvent(Event{Cycle: nw.cycle, Kind: EvInject, Msg: m.id,
				Node: int32(node), VC: gvc})
		}
		m.waitStart = -1
		m.routing = true
		nw.routePending = append(nw.routePending, m)
		grants++
	}
	return grants
}

// doRouting attempts next-channel allocation for every message whose
// head flit is buffered at a router. The pending list is compacted in
// place; a rotating offset removes ordering bias between messages.
func (nw *network) doRouting() int {
	if len(nw.routePending) == 0 {
		return 0
	}
	grants := 0
	pend := nw.routePending
	// rotate the processing origin to avoid systematic priority
	if len(pend) > 1 {
		off := int(nw.cycle % int64(len(pend)))
		rotate(pend, off)
	}
	out := pend[:0]
	for _, m := range pend {
		hv := m.headVC
		if nw.drained[hv] != 0 || nw.buf[hv] == 0 {
			// head flit not (yet) buffered at the router
			out = append(out, m)
			continue
		}
		if nw.allocate(m) {
			grants++
			if !m.routing {
				continue // ejection granted; no more routing needed
			}
		}
		out = append(out, m)
	}
	nw.routePending = out
	return grants
}

func rotate(s []*message, k int) {
	if k == 0 {
		return
	}
	reverse(s[:k])
	reverse(s[k:])
	reverse(s)
}

func reverse(s []*message) {
	for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
		s[i], s[j] = s[j], s[i]
	}
}

// allocate tries to acquire the next virtual channel for m, whose
// head flit sits at router m.curNode. It returns true on a grant.
func (nw *network) allocate(m *message) bool {
	node := int(m.curNode)
	if node == m.dst {
		// ejection channel: all V virtual channels are eligible
		ch := nw.chanIdx(node, nw.deg)
		base := int(ch) * nw.v
		for vc := 0; vc < nw.v; vc++ {
			gvc := int32(base + vc)
			if nw.owner[gvc] == nil {
				wait := int64(0)
				if m.waitStart >= 0 {
					wait = nw.cycle - m.waitStart
					m.waitStart = -1
				}
				nw.grantVC(m, gvc)
				m.routing = false
				if nw.wantEvents {
					nw.traceEvent(Event{Cycle: nw.cycle, Kind: EvGrant, Msg: m.id,
						Node: int32(node), VC: gvc, Hop: int32(m.hops), Wait: int32(wait)})
				}
				return true
			}
		}
		// Every ejection VC is occupied. One EvBlock per blocking
		// episode (first failed attempt), mirroring the network hops;
		// waitStart here feeds only the Wait of the eventual ejection
		// grant, never Result.HopWait.
		if m.waitStart < 0 {
			m.waitStart = nw.cycle
			if nw.wantEvents {
				nw.traceEvent(Event{Cycle: nw.cycle, Kind: EvBlock, Msg: m.id,
					Node: int32(node), VC: -1, Hop: int32(m.hops),
					Reason: routing.BlockEjectionBusy})
			}
		}
		return false
	}

	nw.res.Attempts++
	firstAttempt := m.waitStart < 0
	if firstAttempt {
		m.waitStart = nw.cycle
	}
	dims := nw.top.ProfitableDims(node, m.dst, nw.dimBuf[:0])
	if nw.flapOfChan != nil {
		// transient faults: a profitable channel whose link is down
		// this cycle cannot be granted
		live := dims[:0]
		for _, dim := range dims {
			if nw.linkUpChan(nw.chanIdx(node, dim)) {
				live = append(live, dim)
			}
		}
		dims = live
	}
	if nw.cfg.Policy == routing.FirstProfitable && len(dims) > 1 {
		dims = dims[:1] // deterministic minimal path baseline
	}
	hopNeg := nw.top.Color(node) == 1
	nextColor := 1 - nw.top.Color(node)
	misroute := false
	pairs := nw.pairBuf[:0]
	if len(dims) > 0 {
		dRem := nw.top.Distance(node, m.dst) - 1
		elig := nw.spec.EligibleVCs(m.st, hopNeg, nextColor, dRem, nw.eligBuf[:0])
		for _, dim := range dims {
			base := int(nw.chanIdx(node, dim)) * nw.v
			for _, vc := range elig {
				gvc := int32(base + vc)
				if nw.owner[gvc] == nil {
					pairs = append(pairs, pair{gvc: gvc, vc: vc})
				}
			}
		}
	} else if nw.flapOfChan != nil {
		// Every profitable channel of this hop is transiently down:
		// fall back to a misroute over the live non-minimal channels.
		// routing.MisrouteVCs only admits hops with class-b headroom
		// for the longer remaining journey, so deadlock freedom is
		// preserved; with no headroom the message waits for a link to
		// come back up (flaps always do: Down < Period).
		misroute = true
		for dim := 0; dim < nw.deg; dim++ {
			ch := nw.chanIdx(node, dim)
			if !nw.chanExists[ch] || !nw.linkUpChan(ch) {
				continue
			}
			nbr := nw.top.Neighbor(node, dim)
			if nbr < 0 {
				continue
			}
			dRem := nw.top.Distance(nbr, m.dst)
			if dRem < 0 {
				continue
			}
			elig := nw.spec.MisrouteVCs(m.st, hopNeg, nextColor, dRem, nw.eligBuf[:0])
			base := int(ch) * nw.v
			for _, vc := range elig {
				gvc := int32(base + vc)
				if nw.owner[gvc] == nil {
					pairs = append(pairs, pair{gvc: gvc, vc: vc})
				}
			}
		}
	}
	nw.pairBuf = pairs[:0]
	if len(pairs) == 0 {
		nw.res.BlockedAttempts++
		// One EvBlock per blocking episode. An empty dims means the
		// flap filter (or the misroute headroom rule) removed every
		// candidate link — a fault denial, not the VC contention the
		// model's P_block describes.
		if nw.wantEvents && firstAttempt {
			reason := routing.BlockVCsBusy
			if len(dims) == 0 {
				reason = routing.BlockLinkDown
			}
			nw.traceEvent(Event{Cycle: nw.cycle, Kind: EvBlock, Msg: m.id,
				Node: int32(node), VC: -1, Hop: int32(m.hops), Reason: reason})
		}
		return false
	}

	chosen := nw.choose(pairs)
	vc := chosen.vc
	if misroute {
		nw.res.Misroutes++
	}
	if nw.spec.IsClassA(vc) {
		nw.res.ClassAUse++
	} else {
		nw.res.ClassBUse++
		nw.res.ClassBLevelUse[nw.spec.LevelOf(vc)]++
	}
	if m.measured {
		nw.res.HopWait.Add(float64(nw.cycle - m.waitStart))
	}
	wait := nw.cycle - m.waitStart
	hop := int32(m.hops)
	m.waitStart = -1
	m.st = nw.spec.Advance(m.st, hopNeg, vc)
	m.curNode = int32(nw.downstreamNode(chosen.gvc / int32(nw.v)))
	if nw.cycle >= nw.measureStart {
		nw.grantCount[chosen.gvc/int32(nw.v)]++
	}
	nw.grantVC(m, chosen.gvc)
	m.hops++
	if nw.wantEvents {
		nw.traceEvent(Event{Cycle: nw.cycle, Kind: EvGrant, Msg: m.id,
			Node: int32(nw.nodeOfChan(chosen.gvc / int32(nw.v))), VC: chosen.gvc,
			Hop: hop, Wait: int32(wait), Misroute: misroute})
	}
	return true
}

// choose applies the configured selection policy to the free eligible
// (channel, vc) pairs.
func (nw *network) choose(pairs []pair) pair {
	switch nw.cfg.Policy {
	case routing.RandomAny:
		return pairs[nw.rng.Intn(len(pairs))]
	case routing.LowestEscapeFirst:
		best, bestLevel := -1, 1<<30
		for i, p := range pairs {
			if nw.spec.IsClassA(p.vc) {
				continue
			}
			if l := nw.spec.LevelOf(p.vc); l < bestLevel {
				best, bestLevel = i, l
			}
		}
		if best >= 0 {
			return pairs[best]
		}
		return pairs[nw.rng.Intn(len(pairs))]
	default: // PreferClassA
		nA := 0
		for i, p := range pairs {
			if nw.spec.IsClassA(p.vc) {
				pairs[nA], pairs[i] = pairs[i], pairs[nA]
				nA++
			}
		}
		if nA > 0 {
			return pairs[nw.rng.Intn(nA)]
		}
		best, bestLevel := -1, 1<<30
		count := 0
		for i, p := range pairs {
			l := nw.spec.LevelOf(p.vc)
			switch {
			case l < bestLevel:
				best, bestLevel, count = i, l, 1
			case l == bestLevel:
				// reservoir-sample among equal-level channels
				count++
				if nw.rng.Intn(count) == 0 {
					best = i
				}
			}
		}
		return pairs[best]
	}
}

// grantVC records that m now owns gvc, linked after its previous
// head channel. Event emission stays with the callers in allocate,
// which know the hop index and accumulated wait.
func (nw *network) grantVC(m *message, gvc int32) {
	nw.owner[gvc] = m
	nw.prev[gvc] = m.headVC
	m.headVC = gvc
	nw.grantCycle[gvc] = nw.cycle
	nw.markBusy(gvc)
}

// markBusy accounts a newly owned VC, activating its channel when it
// was idle.
func (nw *network) markBusy(gvc int32) {
	ch := gvc / int32(nw.v)
	nw.busyVCs[ch]++
	if nw.busyVCs[ch] == 1 {
		nw.activePos[ch] = int32(len(nw.active))
		nw.active = append(nw.active, ch)
	}
}

// doTransfers performs the per-cycle flit movement. Decisions are
// taken against the cycle-start state (two-phase update), so a flit
// advances at most one channel per cycle; with the default 2-flit
// buffers a wormhole streams at full channel rate.
func (nw *network) doTransfers() int {
	nw.decisions = nw.decisions[:0]
	for _, ch32 := range nw.active {
		ch := int(ch32)
		if nw.flapOfChan != nil && ch%nw.slots < nw.deg && !nw.linkUpChan(ch32) {
			continue // link transiently down: flits hold their buffers
		}
		base := ch * nw.v
		start := int(nw.rr[ch])
		eject := ch%nw.slots == nw.deg
		for k := 0; k < nw.v; k++ {
			vc := start + k
			if vc >= nw.v {
				vc -= nw.v
			}
			gvc := int32(base + vc)
			m := nw.owner[gvc]
			if m == nil || nw.sent[gvc] >= m.length {
				continue
			}
			if p := nw.prev[gvc]; p >= 0 && nw.buf[p] == 0 {
				continue
			}
			if !eject && nw.buf[gvc] >= nw.bufCap {
				continue
			}
			nw.decisions = append(nw.decisions, gvc)
			nw.rr[ch] = uint8((vc + 1) % nw.v)
			break
		}
	}
	for _, gvc := range nw.decisions {
		m := nw.owner[gvc]
		nw.sent[gvc]++
		if p := nw.prev[gvc]; p >= 0 {
			nw.buf[p]--
			nw.drained[p]++
			if nw.drained[p] == m.length {
				nw.freeVC(p)
			}
		}
		if nw.isEjection(gvc / int32(nw.v)) {
			if nw.sent[gvc] == m.length {
				nw.deliver(m, gvc)
			}
		} else {
			nw.buf[gvc]++
		}
	}
	return len(nw.decisions)
}

func (nw *network) freeVC(gvc int32) {
	// record the holding time of network channels granted inside the
	// measurement window (slot < deg excludes ejection/injection)
	if ch := gvc / int32(nw.v); int(ch)%nw.slots < nw.deg &&
		nw.grantCycle[gvc] >= nw.measureStart && nw.grantCycle[gvc] < nw.measureEnd {
		nw.res.VCHolding.Add(float64(nw.cycle + 1 - nw.grantCycle[gvc]))
	}
	nw.owner[gvc] = nil
	nw.prev[gvc] = -1
	nw.buf[gvc] = 0
	nw.sent[gvc] = 0
	nw.drained[gvc] = 0
	ch := gvc / int32(nw.v)
	nw.busyVCs[ch]--
	if nw.busyVCs[ch] == 0 {
		// swap-remove from the active set
		pos := nw.activePos[ch]
		lastIdx := int32(len(nw.active) - 1)
		lastCh := nw.active[lastIdx]
		nw.active[pos] = lastCh
		nw.activePos[lastCh] = pos
		nw.active = nw.active[:lastIdx]
		nw.activePos[ch] = -1
	}
}

const latencyInterval = 512

func (nw *network) deliver(m *message, gvc int32) {
	nw.freeVC(gvc)
	if nw.wantEvents {
		nw.traceEvent(Event{Cycle: nw.cycle, Kind: EvDeliver, Msg: m.id,
			Node: int32(m.dst), VC: -1, Hop: int32(m.hops)})
	}
	nw.intervalSum += float64(nw.cycle + 1 - m.genCycle)
	nw.intervalCount++
	nw.res.Delivered++
	if nw.cycle >= nw.measureStart && nw.cycle < nw.measureEnd {
		nw.res.DeliveredInWindow++
	}
	if m.measured {
		lat := float64(nw.cycle + 1 - m.genCycle)
		nw.res.Latency.Add(lat)
		nw.res.LatencyHist.Add(int(nw.cycle + 1 - m.genCycle))
		nw.res.NetLatency.Add(float64(nw.cycle + 1 - m.injCycle))
		nw.res.HopCount.Add(float64(m.hops))
		nw.res.MeasuredDelivered++
		nw.measuredInFly--
	}
	m.nextQueue = nw.freeList
	nw.freeList = m
}

// doSampling records the busy-VC distribution over network channels
// every sampleEvery cycles inside the measurement window.
const sampleEvery = 16

func (nw *network) doSampling() {
	if nw.cycle < nw.measureStart || nw.cycle >= nw.measureEnd {
		return
	}
	nw.sampleCountdown--
	if nw.sampleCountdown > 0 {
		return
	}
	nw.sampleCountdown = sampleEvery
	for node := 0; node < nw.top.N(); node++ {
		for slot := 0; slot < nw.deg; slot++ {
			ch := int(nw.chanIdx(node, slot))
			if !nw.chanExists[ch] {
				continue
			}
			nw.res.VCBusyHist[nw.busyVCs[ch]]++
		}
	}
}
