package desim

import (
	"strings"
	"testing"

	"starperf/internal/hypercube"
	"starperf/internal/routing"
	"starperf/internal/topology"
)

// emptyTop is a pathological zero-node topology used to exercise
// config validation.
type emptyTop struct{}

func (emptyTop) Name() string                             { return "empty" }
func (emptyTop) N() int                                   { return 0 }
func (emptyTop) Degree() int                              { return 0 }
func (emptyTop) Neighbor(node, dim int) int               { return -1 }
func (emptyTop) Distance(a, b int) int                    { return -1 }
func (emptyTop) ProfitableDims(c, d int, buf []int) []int { return buf }
func (emptyTop) Color(node int) int                       { return 0 }
func (emptyTop) Diameter() int                            { return 0 }
func (emptyTop) AvgDistance() float64                     { return 0 }

var _ topology.Topology = emptyTop{}

// TestConfigValidate drives every rejection branch of
// Config.validate and pins the error messages users debug against.
func TestConfigValidate(t *testing.T) {
	top := hypercube.MustNew(3)
	good := func() Config {
		return Config{
			Top:           top,
			Spec:          routing.MustNew(routing.NHop, top, 4),
			Rate:          0.01,
			MsgLen:        8,
			MeasureCycles: 1000,
		}
	}
	if _, err := Run(good()); err != nil {
		t.Fatalf("baseline config rejected: %v", err)
	}
	cases := []struct {
		name    string
		mutate  func(*Config)
		wantErr string
	}{
		{"nil topology", func(c *Config) { c.Top = nil }, "nil topology"},
		{"zero-node topology", func(c *Config) { c.Top = emptyTop{} }, `topology "empty" has no nodes`},
		{"no VCs", func(c *Config) { c.Spec = routing.Spec{} }, "no virtual channels"},
		{"negative rate", func(c *Config) { c.Rate = -0.1 }, "negative rate"},
		{"zero message length", func(c *Config) { c.MsgLen = 0 }, "message length 0"},
		{"oversize message", func(c *Config) { c.MsgLen = 1 << 15 }, "too large"},
		{"negative warmup", func(c *Config) { c.WarmupCycles = -1 }, "negative WarmupCycles -1"},
		{"zero measure window", func(c *Config) { c.MeasureCycles = 0 }, "MeasureCycles 0 must be positive"},
		{"negative measure window", func(c *Config) { c.MeasureCycles = -5 }, "MeasureCycles -5 must be positive"},
		{"negative drain", func(c *Config) { c.DrainCycles = -1 }, "negative DrainCycles -1"},
		{"negative deadlock threshold", func(c *Config) { c.DeadlockThreshold = -2 }, "negative DeadlockThreshold -2"},
		{"negative max message age", func(c *Config) { c.MaxMsgAge = -3 }, "negative MaxMsgAge -3"},
		{"negative trace cap", func(c *Config) { c.TraceCap = -4 }, "negative TraceCap -4"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := good()
			tc.mutate(&cfg)
			_, err := Run(cfg)
			if err == nil {
				t.Fatalf("validate accepted %s", tc.name)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not contain %q", err, tc.wantErr)
			}
		})
	}
}
