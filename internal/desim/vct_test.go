package desim

import (
	"testing"

	"starperf/internal/routing"
)

// TestCutThroughValidation checks the VCT configuration rules.
func TestCutThroughValidation(t *testing.T) {
	cfg := s5cfg(routing.EnhancedNbc, 6, 0.005, 32, 1)
	cfg.CutThrough = true
	cfg.BufCap = 8 // below MsgLen
	if _, err := Run(cfg); err == nil {
		t.Fatal("undersized cut-through buffers accepted")
	}
}

// TestCutThroughBeatsWormholeNearSaturation: with whole-message
// buffers a blocked message frees its upstream channels, so VCT
// sustains loads where wormhole queues explode. At wormhole's
// saturation point the VCT latency must be far lower.
func TestCutThroughBeatsWormholeNearSaturation(t *testing.T) {
	const rate = 0.026 // beyond wormhole saturation for V=6, M=32
	wh := s5cfg(routing.EnhancedNbc, 6, rate, 32, 7)
	wh.WarmupCycles = 4000
	wh.MeasureCycles = 15000
	wh.DrainCycles = 80000
	rw, err := Run(wh)
	if err != nil {
		t.Fatal(err)
	}
	if !rw.Saturated() {
		t.Fatalf("wormhole unexpectedly stable at λg=%v", rate)
	}
	vct := wh
	vct.CutThrough = true
	vct.BufCap = 0 // default to MsgLen
	rv, err := Run(vct)
	if err != nil {
		t.Fatal(err)
	}
	if rv.Deadlocked {
		t.Fatal("cut-through deadlocked")
	}
	if rv.Saturated() {
		t.Fatalf("cut-through saturated at λg=%v where it should hold", rate)
	}
	if rv.Latency.Mean() > 0.4*rw.Latency.Mean() {
		t.Fatalf("VCT latency %.1f not well below wormhole %.1f at λg=%v",
			rv.Latency.Mean(), rw.Latency.Mean(), rate)
	}
}

// TestCutThroughZeroLoadSameAsWormhole: without contention VCT
// pipelines exactly like wormhole (cut-through forwarding), so the
// zero-load latency law M+h+1 is unchanged.
func TestCutThroughZeroLoadSameAsWormhole(t *testing.T) {
	cfg := s5cfg(routing.EnhancedNbc, 6, 0.0002, 16, 5)
	cfg.CutThrough = true
	cfg.MeasureCycles = 60000
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := 16 + 1 + res.HopCount.Mean()
	if d := res.Latency.Mean() - want; d < -0.01 || d > 0.5 {
		t.Fatalf("VCT zero-load latency %.3f, want ≈%.3f", res.Latency.Mean(), want)
	}
}

// TestCutThroughParanoid runs the invariant checker under VCT.
func TestCutThroughParanoid(t *testing.T) {
	cfg := s5cfg(routing.EnhancedNbc, 6, 0.01, 32, 3)
	cfg.CutThrough = true
	cfg.Paranoid = true
	cfg.WarmupCycles = 1000
	cfg.MeasureCycles = 6000
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
}
