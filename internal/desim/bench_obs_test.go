package desim_test

// Observer-overhead benchmarks, in the external test package because
// they attach the real internal/obs Collector (obs imports desim, so
// the internal test package cannot import it back).
//
// The acceptance bar for the observability layer is ≤5% overhead with
// the observer disabled (BenchmarkSimObserver/off vs the pre-layer
// baseline) — the hooks must stay a nil check on the hot path.
// cmd/starbench runs the same matrix outside the testing framework
// and records it in BENCH_sim.json.

import (
	"testing"

	"starperf/internal/desim"
	"starperf/internal/obs"
	"starperf/internal/routing"
	"starperf/internal/stargraph"
)

// benchConfig is the fixed S_4 workload shared with the determinism
// test and cmd/starbench: EnhancedNbc, V=4, rate 0.02, M=8, 1000
// warmup + 5000 measured cycles.
func benchConfig() desim.Config {
	s4 := stargraph.MustNew(4)
	return desim.Config{
		Top:           s4,
		Spec:          routing.MustNew(routing.EnhancedNbc, s4, 4),
		Policy:        routing.PreferClassA,
		Rate:          0.02,
		MsgLen:        8,
		Seed:          12345,
		WarmupCycles:  1000,
		MeasureCycles: 5000,
	}
}

func runBench(b *testing.B, cfg desim.Config) {
	b.Helper()
	b.ReportAllocs()
	var cycles int64
	for i := 0; i < b.N; i++ {
		res, err := desim.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		cycles = res.Cycles
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(int64(b.N)*cycles), "ns/cycle")
}

// BenchmarkSimObserver measures the cost of the observer hooks:
// off (nil Observer — the ≤5% budget), counters-only (tracing
// disabled), and the full collector with trace ring.
func BenchmarkSimObserver(b *testing.B) {
	b.Run("off", func(b *testing.B) {
		runBench(b, benchConfig())
	})
	b.Run("counters", func(b *testing.B) {
		cfg := benchConfig()
		cfg.Observer = obs.New(obs.Options{TraceCap: -1})
		runBench(b, cfg)
	})
	b.Run("full", func(b *testing.B) {
		cfg := benchConfig()
		cfg.Observer = obs.New(obs.Options{})
		runBench(b, cfg)
	})
}

// BenchmarkSimTracer isolates the Result.Trace path (no observer):
// TraceCap off vs the cap used by the determinism test.
func BenchmarkSimTracer(b *testing.B) {
	b.Run("off", func(b *testing.B) {
		runBench(b, benchConfig())
	})
	b.Run("cap64", func(b *testing.B) {
		cfg := benchConfig()
		cfg.TraceCap = 64
		runBench(b, cfg)
	})
}
